# A small English fragment (section 5.1's natural-language application):
# tagging a word reveals its part of speech via the production context.
%%
sentence : np vp ;
np       : det nominal ;
det      : "the" | "a" ;
nominal  : "big" nominal | "old" nominal | noun ;
noun     : "dog" | "cat" | "router" | "packet" ;
vp       : verb object ;
verb     : "sees" | "routes" | "parses" ;
object   : | np ;
