# A delimiter-free grammar: comma-separated records. Structure comes
# entirely from tokens (commas and newlines are tokens, not delimiters),
# so %delim is pointed at a byte that never occurs in text.
FIELD  [A-Za-z0-9 .;_-]+
COMMA  ,
NL     \n
%delim [\0]
%%
file    : record records ;
records : | record records ;
record  : FIELD fields NL ;
fields  : | COMMA FIELD fields ;
