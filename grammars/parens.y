# Balanced parentheses around "0" — figure 1 of the paper. The stack-less
# engine accepts a superset (unbalanced strings still tokenize); pair it
# with the stack extension (NewCheckedTagger) for exact recognition.
%%
E : "(" E ")" | "0" ;
