# If-then-else statement — figure 9 of the paper. The generated Follow
# sets reproduce figure 10 and the wiring reproduces figure 11.
%%
E : "if" C "then" E "else" E | "go" | "stop" ;
C : "true" | "false" ;
