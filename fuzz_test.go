package cfgtag

import (
	"reflect"
	"sync"
	"testing"

	"cfgtag/internal/runtime"
	"cfgtag/internal/stream"
)

// FuzzGrammarParse throws arbitrary text at the grammar front end: parsing
// and compiling must reject garbage with an error, never a panic, and any
// source that does compile must yield an engine that can tag a probe
// stream through both the NFA and DFA paths.
//
// Seed corpus: testdata/fuzz/FuzzGrammarParse (plus the built-in grammars
// added here).
func FuzzGrammarParse(f *testing.F) {
	f.Add(BalancedParensSource)
	f.Add(IfThenElseSource)
	f.Add(XMLRPCSource)
	f.Add(XMLRPCFullSource)
	probe := []byte("if (true) then <methodCall>go</methodCall> 0 else stop")
	f.Fuzz(func(t *testing.T, src string) {
		engine, err := Compile("fuzz", src)
		if err != nil {
			return // rejecting is fine; panicking is the bug
		}
		tg := engine.NewTagger()
		tg.Write(probe)
		tg.Close()
		b, err := engine.NewBackend(DFABackend)
		if err != nil {
			t.Fatalf("compiled grammar has no dfa backend: %v", err)
		}
		b.Feed(probe)
		b.Close()
		b.Matches()
	})
}

// diffRig lazily builds the differential fuzz fixture: one engine per
// execution path over the free-running if-then-else grammar, reused (via
// Reset) across inputs. A second pair runs the recovery-enabled compile,
// whose dead-state/re-arm path random bytes exercise constantly.
type diffRig struct {
	stream, dfa, dfaTiny, gates runtime.Backend
	recStream, recDFA           runtime.Backend
}

var (
	rigOnce sync.Once
	rig     diffRig
	rigErr  error
)

func buildRig() {
	mk := func(f runtime.Factory, err error) runtime.Backend {
		if rigErr != nil {
			return nil
		}
		if err != nil {
			rigErr = err
			return nil
		}
		b, err := f(0, nil)
		if err != nil {
			rigErr = err
			return nil
		}
		return b
	}
	engine, err := Compile("fuzz-diff", IfThenElseSource, FreeRunningStart())
	if err != nil {
		rigErr = err
		return
	}
	spec := engine.Spec()
	rig.stream = mk(runtime.TaggerFactory(spec), nil)
	rig.dfa = mk(runtime.DFAFactory(spec, 0), nil)
	rig.dfaTiny = mk(runtime.DFAFactory(spec, 2), nil)
	rig.gates = mk(runtime.GateFactory(spec))
	rec, err := Compile("fuzz-diff-rec", IfThenElseSource, FreeRunningStart(), RecoverResync())
	if err != nil {
		rigErr = err
		return
	}
	rig.recStream = mk(runtime.TaggerFactory(rec.Spec()), nil)
	rig.recDFA = mk(runtime.DFAFactory(rec.Spec(), 0), nil)
}

func runDiff(b runtime.Backend, data []byte) []stream.Match {
	b.Reset()
	b.Feed(data)
	b.Close()
	return b.Matches()
}

// FuzzDifferential feeds arbitrary bytes to the stream engine, both DFA
// cache configurations and the gate-level simulation, and requires the
// exact same match sequence from all four — plus recovery/collision
// counter agreement between stream and DFA under the recovery compile.
//
// Seed corpus: testdata/fuzz/FuzzDifferential.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte("if true then go else stop"))
	f.Add([]byte("if tru# then go if false then stop else go"))
	f.Add([]byte{0, 255, 'i', 'f', ' ', 0xC3, 0x28})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return // keep the byte-per-cycle gate simulation tractable
		}
		rigOnce.Do(buildRig)
		if rigErr != nil {
			t.Fatal(rigErr)
		}
		want := runDiff(rig.stream, data)
		for name, b := range map[string]runtime.Backend{
			"dfa": rig.dfa, "dfa-tiny": rig.dfaTiny, "gates": rig.gates,
		} {
			if got := runDiff(b, data); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s diverged on %q:\n%s    %v\nstream %v", name, data, name, got, want)
			}
		}
		recWant := runDiff(rig.recStream, data)
		recGot := runDiff(rig.recDFA, data)
		if !reflect.DeepEqual(recGot, recWant) {
			t.Fatalf("recovery dfa diverged on %q:\ndfa    %v\nstream %v", data, recGot, recWant)
		}
		sc, dc := rig.recStream.Counters(), rig.recDFA.Counters()
		if sc.Recoveries != dc.Recoveries || sc.Collisions != dc.Collisions {
			t.Fatalf("recovery counters diverged on %q: stream (%d recov, %d coll), dfa (%d recov, %d coll)",
				data, sc.Recoveries, sc.Collisions, dc.Recoveries, dc.Collisions)
		}
	})
}
