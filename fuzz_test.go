package cfgtag

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"cfgtag/internal/aot"
	"cfgtag/internal/runtime"
	"cfgtag/internal/stream"
)

// FuzzGrammarParse throws arbitrary text at the grammar front end: parsing
// and compiling must reject garbage with an error, never a panic, and any
// source that does compile must yield an engine that can tag a probe
// stream through both the NFA and DFA paths.
//
// Seed corpus: testdata/fuzz/FuzzGrammarParse (plus the built-in grammars
// added here).
func FuzzGrammarParse(f *testing.F) {
	f.Add(BalancedParensSource)
	f.Add(IfThenElseSource)
	f.Add(XMLRPCSource)
	f.Add(XMLRPCFullSource)
	probe := []byte("if (true) then <methodCall>go</methodCall> 0 else stop")
	f.Fuzz(func(t *testing.T, src string) {
		engine, err := Compile("fuzz", src)
		if err != nil {
			return // rejecting is fine; panicking is the bug
		}
		tg := engine.NewTagger()
		tg.Write(probe)
		tg.Close()
		b, err := engine.NewBackend(DFABackend)
		if err != nil {
			t.Fatalf("compiled grammar has no dfa backend: %v", err)
		}
		b.Feed(probe)
		b.Close()
		b.Matches()
		// The ahead-of-time path may legitimately refuse a grammar whose
		// DFA does not close within the budget; refusing is fine,
		// panicking is the bug. A tiny budget keeps pathological fuzz
		// grammars from spending the whole run determinizing.
		if f, err := runtime.AOTFactoryConfig(engine.Spec(), aot.Config{MaxStates: 64}); err == nil {
			ab, err := f(0, nil)
			if err != nil {
				t.Fatalf("aot factory built but backend mint failed: %v", err)
			}
			ab.Feed(probe)
			ab.Close()
			ab.Matches()
		}
	})
}

// diffRig lazily builds the differential fuzz fixture: one engine per
// execution path over the free-running if-then-else grammar, reused (via
// Reset) across inputs. A second pair runs the recovery-enabled compile,
// whose dead-state/re-arm path random bytes exercise constantly.
type diffRig struct {
	stream, dfa, dfaTiny, gates runtime.Backend
	dfaNoAccel                  runtime.Backend
	recStream, recDFA           runtime.Backend
	recDFANoAccel               runtime.Backend
}

var (
	rigOnce sync.Once
	rig     diffRig
	rigErr  error
)

func buildRig() {
	mk := func(f runtime.Factory, err error) runtime.Backend {
		if rigErr != nil {
			return nil
		}
		if err != nil {
			rigErr = err
			return nil
		}
		b, err := f(0, nil)
		if err != nil {
			rigErr = err
			return nil
		}
		return b
	}
	engine, err := Compile("fuzz-diff", IfThenElseSource, FreeRunningStart())
	if err != nil {
		rigErr = err
		return
	}
	spec := engine.Spec()
	rig.stream = mk(runtime.TaggerFactory(spec), nil)
	rig.dfa = mk(runtime.DFAFactory(spec, 0), nil)
	rig.dfaTiny = mk(runtime.DFAFactory(spec, 2), nil)
	rig.dfaNoAccel = mk(runtime.DFAFactoryConfig(spec, stream.DFAConfig{NoAccel: true}), nil)
	rig.gates = mk(runtime.GateFactory(spec))
	rec, err := Compile("fuzz-diff-rec", IfThenElseSource, FreeRunningStart(), RecoverResync())
	if err != nil {
		rigErr = err
		return
	}
	rig.recStream = mk(runtime.TaggerFactory(rec.Spec()), nil)
	rig.recDFA = mk(runtime.DFAFactory(rec.Spec(), 0), nil)
	rig.recDFANoAccel = mk(runtime.DFAFactoryConfig(rec.Spec(), stream.DFAConfig{NoAccel: true}), nil)
}

func runDiff(b runtime.Backend, data []byte) []stream.Match {
	b.Reset()
	b.Feed(data)
	b.Close()
	return b.Matches()
}

// FuzzDifferential feeds arbitrary bytes to the stream engine, every DFA
// configuration (default cache, tiny cache, skip-ahead acceleration
// disabled) and the gate-level simulation, and requires the exact same
// match sequence from all of them — plus recovery/collision counter
// agreement between stream and both DFA flavors under the recovery
// compile. The run-heavy seeds park the DFA in accelerable states (long
// delimiter runs, long non-matching runs, long token-interior runs) so
// the accelerated and unaccelerated paths are differentially exercised on
// exactly the inputs where skip-ahead fires.
//
// Seed corpus: testdata/fuzz/FuzzDifferential.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte("if true then go else stop"))
	f.Add([]byte("if tru# then go if false then stop else go"))
	f.Add([]byte{0, 255, 'i', 'f', ' ', 0xC3, 0x28})
	// Accelerable-state seeds: delimiter runs, dead non-matching runs and
	// mid-token runs around real sentences.
	pad := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	rep := func(b byte, n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = b
		}
		return out
	}
	f.Add(pad(rep(' ', 600), []byte("if true then go"), rep(' ', 900), []byte("else stop"), rep(' ', 600)))
	f.Add(pad(rep('\n', 700), []byte("if true then go else stop"), rep('\t', 700)))
	f.Add(pad(rep('z', 800), []byte(" if true then go else stop "), rep('z', 800)))
	f.Add(pad(rep(0xee, 900), rep(' ', 300), []byte("if true then stop"), rep(0xee, 500)))
	f.Add(pad([]byte("if tr"), rep('u', 1200), []byte(" then go"))) // run inside a token attempt
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return // keep the byte-per-cycle gate simulation tractable
		}
		rigOnce.Do(buildRig)
		if rigErr != nil {
			t.Fatal(rigErr)
		}
		want := runDiff(rig.stream, data)
		for name, b := range map[string]runtime.Backend{
			"dfa": rig.dfa, "dfa-tiny": rig.dfaTiny, "dfa-noaccel": rig.dfaNoAccel, "gates": rig.gates,
		} {
			if got := runDiff(b, data); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s diverged on %q:\n%s    %v\nstream %v", name, data, name, got, want)
			}
		}
		recWant := runDiff(rig.recStream, data)
		sc := rig.recStream.Counters()
		for name, b := range map[string]runtime.Backend{
			"dfa": rig.recDFA, "dfa-noaccel": rig.recDFANoAccel,
		} {
			recGot := runDiff(b, data)
			if !reflect.DeepEqual(recGot, recWant) {
				t.Fatalf("recovery %s diverged on %q:\n%s    %v\nstream %v", name, data, name, recGot, recWant)
			}
			dc := b.Counters()
			if sc.Recoveries != dc.Recoveries || sc.Collisions != dc.Collisions {
				t.Fatalf("recovery counters diverged on %q: stream (%d recov, %d coll), %s (%d recov, %d coll)",
					data, sc.Recoveries, sc.Collisions, name, dc.Recoveries, dc.Collisions)
			}
		}
	})
}

// aotRig lazily builds the ahead-of-time differential fuzz fixture: the
// lazy DFA reference plus every AOT configuration (accelerated, skip-
// ahead disabled) over the free-running if-then-else grammar, and the
// same pair again under the recovery compile. Reused via Reset across
// inputs.
type aotRig struct {
	dfa, aot, aotNoAccel runtime.Backend
	recDFA, recAOT       runtime.Backend
}

var (
	aotRigOnce sync.Once
	aotRigV    aotRig
	aotRigErr  error
)

func buildAOTRig() {
	mk := func(f runtime.Factory, err error) runtime.Backend {
		if aotRigErr != nil {
			return nil
		}
		if err != nil {
			aotRigErr = err
			return nil
		}
		b, err := f(0, nil)
		if err != nil {
			aotRigErr = err
			return nil
		}
		return b
	}
	engine, err := Compile("fuzz-aot", IfThenElseSource, FreeRunningStart())
	if err != nil {
		aotRigErr = err
		return
	}
	spec := engine.Spec()
	aotRigV.dfa = mk(runtime.DFAFactory(spec, 0), nil)
	aotRigV.aot = mk(runtime.AOTFactory(spec, 0))
	aotRigV.aotNoAccel = mk(runtime.AOTFactoryConfig(spec, aot.Config{NoAccel: true}))
	rec, err := Compile("fuzz-aot-rec", IfThenElseSource, FreeRunningStart(), RecoverResync())
	if err != nil {
		aotRigErr = err
		return
	}
	aotRigV.recDFA = mk(runtime.DFAFactory(rec.Spec(), 0), nil)
	aotRigV.recAOT = mk(runtime.AOTFactory(rec.Spec(), 0))
}

// runDiffChunked is runDiff with the input split into random 1–9 byte
// chunks drawn from seed, so every chunk boundary — including ones that
// straddle the held-lookahead byte — is differentially exercised.
func runDiffChunked(b runtime.Backend, data []byte, seed uint64) []stream.Match {
	b.Reset()
	rng := rand.New(rand.NewSource(int64(seed)))
	for i := 0; i < len(data); {
		n := 1 + rng.Intn(9)
		if i+n > len(data) {
			n = len(data) - i
		}
		b.Feed(data[i : i+n])
		i += n
	}
	b.Close()
	return b.Matches()
}

// FuzzAOTDifferential feeds arbitrary bytes to the lazy DFA and the
// ahead-of-time compiled tables — whole-buffer and under random
// chunkings — and requires the exact same match sequence from all of
// them, plus recovery/collision counter agreement under the recovery
// compile. aot == dfa is the offline determinizer's contract: the AOT
// tables are the lazy DFA run to closure, so any divergence here is a
// bug in the determinizer's flat encoding or the generated hot loop.
//
// Seed corpus: testdata/fuzz/FuzzAOTDifferential.
func FuzzAOTDifferential(f *testing.F) {
	f.Add([]byte("if true then go else stop"), uint64(1))
	f.Add([]byte("if tru# then go if false then stop else go"), uint64(7))
	f.Add([]byte{0, 255, 'i', 'f', ' ', 0xC3, 0x28}, uint64(3))
	f.Add([]byte("if         true then go else stop        if"), uint64(11))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		if len(data) > 1<<16 {
			return
		}
		aotRigOnce.Do(buildAOTRig)
		if aotRigErr != nil {
			t.Fatal(aotRigErr)
		}
		want := runDiff(aotRigV.dfa, data)
		for name, got := range map[string][]stream.Match{
			"aot":               runDiff(aotRigV.aot, data),
			"aot-chunked":       runDiffChunked(aotRigV.aot, data, seed),
			"aot-noaccel":       runDiff(aotRigV.aotNoAccel, data),
			"aot-noaccel-chunk": runDiffChunked(aotRigV.aotNoAccel, data, seed),
			"dfa-chunked":       runDiffChunked(aotRigV.dfa, data, seed),
		} {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s diverged from dfa on %q (seed %d):\n%s %v\ndfa %v",
					name, data, seed, name, got, want)
			}
		}
		recWant := runDiff(aotRigV.recDFA, data)
		dc := aotRigV.recDFA.Counters()
		for name, got := range map[string][]stream.Match{
			"rec-aot":         runDiff(aotRigV.recAOT, data),
			"rec-aot-chunked": runDiffChunked(aotRigV.recAOT, data, seed),
		} {
			if !reflect.DeepEqual(got, recWant) {
				t.Fatalf("recovery %s diverged from dfa on %q (seed %d):\n%s %v\ndfa %v",
					name, data, seed, name, got, recWant)
			}
			ac := aotRigV.recAOT.Counters()
			if dc.Recoveries != ac.Recoveries || dc.Collisions != ac.Collisions {
				t.Fatalf("recovery counters diverged on %q: dfa (%d recov, %d coll), %s (%d recov, %d coll)",
					data, dc.Recoveries, dc.Collisions, name, ac.Recoveries, ac.Collisions)
			}
		}
	})
}

// earleyRig lazily builds the oracle-vs-parser fuzz fixture: earley,
// parser and stream backends over the anchored if-then-else grammar
// (LL(1), unambiguous lexicon — the class where the two exact recognizers
// must agree completely), reused via Reset across inputs.
type earleyRig struct {
	earley, parser, stream runtime.Backend
}

var (
	earleyRigOnce sync.Once
	earleyRigV    earleyRig
	earleyRigErr  error
)

func buildEarleyRig() {
	mk := func(f runtime.Factory, err error) runtime.Backend {
		if earleyRigErr != nil {
			return nil
		}
		if err != nil {
			earleyRigErr = err
			return nil
		}
		b, err := f(0, nil)
		if err != nil {
			earleyRigErr = err
			return nil
		}
		return b
	}
	engine, err := Compile("fuzz-earley", IfThenElseSource)
	if err != nil {
		earleyRigErr = err
		return
	}
	spec := engine.Spec()
	earleyRigV.earley = mk(runtime.EarleyFactory(spec))
	earleyRigV.parser = mk(runtime.ParserFactory(spec))
	earleyRigV.stream = mk(runtime.TaggerFactory(spec), nil)
}

// runVerdict is runDiff plus the Close verdict, which the exact-language
// backends use to reject non-sentences.
func runVerdict(b runtime.Backend, data []byte) ([]stream.Match, error) {
	b.Reset()
	b.Feed(data)
	err := b.Close()
	return b.Matches(), err
}

// FuzzEarleyDifferential feeds arbitrary bytes to both exact-language
// recognizers — the Earley oracle and the LL(1) predictive parser — over
// an LL(1) grammar where they must agree completely: same accept/reject
// verdict, and identical tags on accept. Accepted inputs additionally
// check the precision-rail invariant that the oracle's tags are among the
// FSA path's tags.
//
// Seed corpus: testdata/fuzz/FuzzEarleyDifferential.
func FuzzEarleyDifferential(f *testing.F) {
	f.Add([]byte("if true then go else stop"))
	f.Add([]byte("if false then if true then go else stop else go"))
	f.Add([]byte("  if   true\tthen go  "))
	f.Add([]byte("if true then go")) // missing else: both must reject
	f.Add([]byte("if tru then go"))  // lexeme near-miss
	f.Add([]byte("go stop"))         // two sentences, not one
	f.Add([]byte{0, 255, 'i', 'f', ' ', 0xC3, 0x28})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			return // quadratic-worst-case oracle chart on adversarial input
		}
		earleyRigOnce.Do(buildEarleyRig)
		if earleyRigErr != nil {
			t.Fatal(earleyRigErr)
		}
		em, eErr := runVerdict(earleyRigV.earley, data)
		pm, pErr := runVerdict(earleyRigV.parser, data)
		if (eErr == nil) != (pErr == nil) {
			t.Fatalf("verdicts diverged on %q: earley %v, parser %v", data, eErr, pErr)
		}
		if eErr != nil {
			return
		}
		if !reflect.DeepEqual(em, pm) {
			t.Fatalf("tags diverged on accepted %q:\nearley %v\nparser %v", data, em, pm)
		}
		sm, _ := runVerdict(earleyRigV.stream, data)
		fsa := make(map[stream.Match]bool, len(sm))
		for _, m := range sm {
			fsa[m] = true
		}
		for _, m := range em {
			if !fsa[m] {
				t.Fatalf("earley tag %v missing from stream tags on %q", m, data)
			}
		}
	})
}

// FuzzConfig throws arbitrary bytes at the declarative platform-config
// parser: decoding and validating must reject garbage with a clean error
// (validation failures specifically with ErrInvalidConfig), never a panic,
// and any config that validates must survive a marshal/re-parse round trip
// unchanged — so a config written back to disk keeps meaning the same
// platform.
//
// Seed corpus: testdata/fuzz/FuzzConfig.
func FuzzConfig(f *testing.F) {
	f.Add([]byte(`{"tenants":[{"name":"t","grammar":"%%\nE : \"a\" ;\n"}]}`))
	f.Add([]byte(`{"tenants":[
		{"name":"xml","grammar":"g","backend":"dfa","shards":4,"options":["free-running-start"],
		 "quarantine":"30s","batch_bytes":65536,"quota":{"max_streams":64,"bytes_per_sec":1048576}},
		{"name":"lang","grammar_file":"lang.y","backend":"stream"}]}`))
	f.Add([]byte(`{"tenants":[{"name":"t","grammar":"g","quarantine":-1}]}`))
	f.Add([]byte(`{"tenants":[{"name":"t"}]}`))
	f.Add([]byte(`{"tenants":[{"name":"t","grammar":"g","backend":"fpga"}]}`))
	f.Add([]byte(`{"tenants":[{"name":"a","grammar":"g"},{"name":"a","grammar":"g"}]}`))
	f.Add([]byte(`{"unknown_knob":1}`))
	f.Add([]byte(`{"tenants":[]}{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParsePlatformConfig(data)
		if err != nil {
			return // rejecting is fine; panicking is the bug
		}
		if err := cfg.Validate(); err != nil {
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Validate rejected without ErrInvalidConfig: %v", err)
			}
			return
		}
		out, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("valid config failed to marshal: %v", err)
		}
		cfg2, err := ParsePlatformConfig(out)
		if err != nil {
			t.Fatalf("marshaled config failed to re-parse: %v\n%s", err, out)
		}
		if err := cfg2.Validate(); err != nil {
			t.Fatalf("marshaled config failed to re-validate: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(cfg, cfg2) {
			t.Fatalf("config changed across marshal round trip:\nin  %+v\nout %+v", cfg, cfg2)
		}
	})
}
