package cfgtag

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	engine, err := Compile("demo", IfThenElseSource)
	if err != nil {
		t.Fatal(err)
	}
	tg := engine.NewTagger()
	var got []string
	tg.OnMatch = func(m Match) { got = append(got, m.Term) }
	tg.Write([]byte("if true then go else stop"))
	tg.Close()
	want := []string{"if", "true", "then", "go", "else", "stop"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tags = %v", got)
	}
}

func TestTagReturnsContexts(t *testing.T) {
	engine, err := Compile("xmlrpc", XMLRPCSource)
	if err != nil {
		t.Fatal(err)
	}
	tg := engine.NewTagger()
	ms := tg.Tag([]byte("<methodCall> <methodName>buy</methodName> <params> </params> </methodCall>"))
	if len(ms) != 7 {
		t.Fatalf("matches = %v", ms)
	}
	if ms[2].Term != "STRING" || ms[2].Context != "methodName[1]" {
		t.Errorf("service match = %+v", ms[2])
	}
	if !ms[6].SentenceEnd {
		t.Error("final match should be a sentence end")
	}
	for _, m := range ms[:6] {
		if m.SentenceEnd {
			t.Errorf("match %+v claims SentenceEnd early", m)
		}
	}
	for _, m := range ms {
		if m.Index == 0 {
			t.Errorf("match %+v has reserved index 0", m)
		}
	}
}

func TestSynthesizeBothDevices(t *testing.T) {
	engine, err := Compile("xmlrpc", XMLRPCSource)
	if err != nil {
		t.Fatal(err)
	}
	v4, err := engine.Synthesize(Virtex4LX200)
	if err != nil {
		t.Fatal(err)
	}
	ve, err := engine.Synthesize(VirtexE2000)
	if err != nil {
		t.Fatal(err)
	}
	if v4.FrequencyMHz <= ve.FrequencyMHz {
		t.Errorf("Virtex-4 (%f) should be faster than VirtexE (%f)", v4.FrequencyMHz, ve.FrequencyMHz)
	}
	if v4.LUTs != ve.LUTs {
		t.Errorf("same netlist should map to the same LUT count: %d vs %d", v4.LUTs, ve.LUTs)
	}
}

func TestVHDLEmission(t *testing.T) {
	engine, err := Compile("demo", BalancedParensSource)
	if err != nil {
		t.Fatal(err)
	}
	src, err := engine.VHDL("parens")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "entity parens is") {
		t.Error("entity name not honored")
	}
}

func TestGateRunnerAgreesWithTagger(t *testing.T) {
	engine, err := Compile("demo", IfThenElseSource)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := engine.NewGateRunner()
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("if false then stop else go")
	hw := gr.Run(input)
	sw := engine.NewTagger().Tag(input)
	if !reflect.DeepEqual(hw, sw) {
		t.Errorf("gate-level %v != stream %v", hw, sw)
	}
}

func TestPoolFacade(t *testing.T) {
	engine, err := Compile("demo", IfThenElseSource)
	if err != nil {
		t.Fatal(err)
	}
	pool := engine.NewPool(3)
	want := engine.NewTagger().Tag([]byte("if true then go"))
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := pool.Tag([]byte("if true then go")); !reflect.DeepEqual(got, want) {
				t.Error("pool result diverged")
			}
		}()
	}
	wg.Wait()
}

func TestWide2RunnerAndSelfTest(t *testing.T) {
	engine, err := Compile("demo", IfThenElseSource)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := engine.NewWide2Runner()
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("if true then stop else go")
	hw := w2.Run(input)
	sw := engine.NewTagger().Tag(input)
	if !reflect.DeepEqual(hw, sw) {
		t.Errorf("wide2 %v != sw %v", hw, sw)
	}
	n, err := engine.SelfTest(3, 15)
	if err != nil || n != 15 {
		t.Errorf("selftest n=%d err=%v", n, err)
	}
	// Recovery engines cannot build the 2-byte datapath.
	rec, err := Compile("demo", IfThenElseSource, RecoverRestart())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.NewWide2Runner(); err == nil {
		t.Error("wide2 with recovery should fail")
	}
}

func TestParserBaseline(t *testing.T) {
	engine, err := Compile("demo", IfThenElseSource)
	if err != nil {
		t.Fatal(err)
	}
	p, err := engine.NewParser()
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("if true then go else stop")
	tags, err := p.Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	sw := engine.NewTagger().Tag(input)
	if !reflect.DeepEqual(tags, sw) {
		t.Errorf("parser %v != tagger %v", tags, sw)
	}
	if p.Accepts([]byte("then go")) {
		t.Error("parser accepted junk")
	}
}

func TestOptions(t *testing.T) {
	// FreeRunningStart finds sentences mid-stream.
	anchored, err := Compile("demo", IfThenElseSource)
	if err != nil {
		t.Fatal(err)
	}
	free, err := Compile("demo", IfThenElseSource, FreeRunningStart())
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("go stop")
	if n := len(free.NewTagger().Tag(input)); n != 2 {
		t.Errorf("free-running found %d", n)
	}
	if n := len(anchored.NewTagger().Tag(input)); n != 1 {
		t.Errorf("anchored found %d (only the first sentence token)", n)
	}

	// AllEnabled fires out of context.
	naive, err := Compile("demo", IfThenElseSource, AllEnabled())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(naive.NewTagger().Tag([]byte("then"))); n != 1 {
		t.Errorf("all-enabled found %d", n)
	}

	// WithoutContextDuplication collapses instances.
	nodup, err := Compile("xmlrpc", XMLRPCSource, WithoutContextDuplication())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(nodup.Spec().Instances), len(nodup.Spec().Grammar.Tokens); got != want {
		t.Errorf("instances = %d, want %d", got, want)
	}

	// IndexBits is honored.
	wide, err := Compile("demo", IfThenElseSource, IndexBits(10))
	if err != nil {
		t.Fatal(err)
	}
	if wide.Spec().IndexBits != 10 {
		t.Errorf("IndexBits = %d", wide.Spec().IndexBits)
	}

	// WithoutLongestMatch over-tags.
	short, err := Compile("ints", "INT [0-9]+\n%%\nS : INT ;\n", WithoutLongestMatch())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(short.NewTagger().Tag([]byte("123"))); n != 3 {
		t.Errorf("no-longest-match tagged %d times, want 3", n)
	}
}

func TestRecoveryOptions(t *testing.T) {
	plain, err := Compile("demo", IfThenElseSource)
	if err != nil {
		t.Fatal(err)
	}
	restart, err := Compile("demo", IfThenElseSource, RecoverRestart())
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("@@ go")
	if n := len(plain.NewTagger().Tag(input)); n != 0 {
		t.Errorf("plain engine tagged %d after garbage", n)
	}
	tg := restart.NewTagger()
	if n := len(tg.Tag(input)); n != 1 {
		t.Errorf("restart engine tagged %d, want 1", n)
	}
	if tg.Errors() == 0 {
		t.Error("Errors() not counting")
	}

	resync, err := Compile("xmlrpc", XMLRPCSource, RecoverResync())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("<methodCall> <methodName>buy</methodName> <params> <par#m> </params> </methodCall>")
	ms := resync.NewTagger().Tag(msg)
	if len(ms) == 0 || ms[len(ms)-1].Term != "</methodCall>" {
		t.Errorf("resync did not reach message end: %v", ms)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("bad", "not a grammar"); err == nil {
		t.Error("garbage grammar accepted")
	}
	if _, err := Compile("bad", "A a*\n%%\nS : A ;\n"); err == nil {
		t.Error("nullable token accepted")
	}
}

func TestFollowTableAndWiring(t *testing.T) {
	engine, err := Compile("demo", IfThenElseSource)
	if err != nil {
		t.Fatal(err)
	}
	ft := engine.FollowTable()
	if !strings.Contains(ft, "if\t{false, true}") {
		t.Errorf("follow table:\n%s", ft)
	}
	w := engine.Wiring()
	if !strings.Contains(w, `"if"`) || !strings.Contains(w, "start") {
		t.Errorf("wiring:\n%s", w)
	}
}

func TestLexemeRecovery(t *testing.T) {
	engine, err := Compile("xmlrpc", XMLRPCSource)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("<methodCall> <methodName>deposit</methodName> <params> </params> </methodCall>")
	tg := engine.NewTagger()
	ms := tg.Tag(input)
	want := []string{"<methodCall>", "<methodName>", "deposit", "</methodName>",
		"<params>", "</params>", "</methodCall>"}
	if len(ms) != len(want) {
		t.Fatalf("matches = %v", ms)
	}
	for i, m := range ms {
		if got := engine.Lexeme(input, m); got != want[i] {
			t.Errorf("lexeme %d = %q, want %q", i, got, want[i])
		}
	}
	if got := engine.Lexeme(input[:3], ms[len(ms)-1]); got != "" {
		t.Errorf("out-of-range lexeme = %q", got)
	}
}

func TestXMLRPCFullSourceCompiles(t *testing.T) {
	engine, err := Compile("xmlrpc-full", XMLRPCFullSource)
	if err != nil {
		t.Fatal(err)
	}
	msg := "<methodCall> <methodName>buy</methodName> <params> " +
		"<param> <value> <i4>7</i4> </value> </param> </params> </methodCall>"
	ms := engine.NewTagger().Tag([]byte(msg))
	found := false
	for _, m := range ms {
		if m.Term == "<value>" {
			found = true
		}
	}
	if !found || ms[len(ms)-1].Term != "</methodCall>" {
		t.Errorf("full dialect tags = %v", ms)
	}
}

func TestCheckedTagger(t *testing.T) {
	engine, err := Compile("parens", BalancedParensSource)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := engine.NewCheckedTagger(0)
	if err != nil {
		t.Fatal(err)
	}
	var matches int
	var viols []string
	ct.OnMatch = func(Match) { matches++ }
	ct.OnViolation = func(end int64, term string, err error) {
		viols = append(viols, term)
	}
	ct.Write([]byte("( 0 ) )"))
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	if matches != 4 {
		t.Errorf("matches = %d, want 4 (the tagger accepts the superset)", matches)
	}
	if ct.Violations() != 1 || len(viols) != 1 || viols[0] != ")" {
		t.Errorf("violations = %d %v, want the stray close paren", ct.Violations(), viols)
	}
	ct.Reset()
	ct.Write([]byte("( ( 0 ) )"))
	if err := ct.Close(); err != nil {
		t.Errorf("clean close: %v", err)
	}
	if ct.Violations() != 0 {
		t.Errorf("violations after clean input: %d", ct.Violations())
	}
	if ct.StackDepth() < 3 {
		t.Errorf("stack depth = %d", ct.StackDepth())
	}
}

func TestNonLL1StillTags(t *testing.T) {
	// A grammar that is not LL(1) cannot build the baseline parser but
	// the tagger still works (the hardware never needed LL(1)).
	src := "%%\nS : \"a\" \"b\" | \"a\" \"c\" ;\n"
	engine, err := Compile("nonll1", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.NewParser(); err == nil {
		t.Error("LL(1) table should fail")
	}
	ms := engine.NewTagger().Tag([]byte("a c"))
	if len(ms) != 3 { // both "a" instances fire (ambiguous context), then "c"
		t.Errorf("matches = %v", ms)
	}
}

func TestBackendKindsAgree(t *testing.T) {
	engine, err := Compile("demo", IfThenElseSource)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("if true then go else stop")
	want := engine.NewTagger().Tag(input)
	if len(want) == 0 {
		t.Fatal("reference tagger found nothing")
	}
	for _, kind := range []BackendKind{StreamBackend, GatesBackend, ParserBackend, EarleyBackend} {
		b, err := engine.NewBackend(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if b.Kind() != kind {
			t.Errorf("Kind() = %q, want %q", b.Kind(), kind)
		}
		if err := b.Feed(input); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got := b.Matches(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: matches = %v, want %v", kind, got, want)
		}
		c := b.Counters()
		if c.Bytes != int64(len(input)) || c.Matches != int64(len(want)) {
			t.Errorf("%s: counters = %+v", kind, c)
		}
		// Drained: a second call is empty; Reset makes it reusable.
		if again := b.Matches(); again != nil {
			t.Errorf("%s: second drain = %v", kind, again)
		}
		b.Reset()
		b.Feed(input)
		b.Close()
		if got := b.Matches(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s after Reset: matches = %v", kind, got)
		}
	}
}

func TestBackendParserVerdict(t *testing.T) {
	engine, err := Compile("demo", IfThenElseSource)
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.NewBackend(ParserBackend)
	if err != nil {
		t.Fatal(err)
	}
	b.Feed([]byte("if true go")) // missing "then"
	if err := b.Close(); err == nil {
		t.Error("parser backend accepted a non-sentence")
	}
	eb, err := engine.NewBackend(EarleyBackend)
	if err != nil {
		t.Fatal(err)
	}
	eb.Feed([]byte("if true go"))
	if err := eb.Close(); err == nil {
		t.Error("earley backend accepted a non-sentence")
	}
	if _, err := engine.NewBackend(BackendKind("fpga")); err == nil {
		t.Error("unknown backend kind accepted")
	}
}

func TestPipelineFacade(t *testing.T) {
	engine, err := Compile("xmlrpc", XMLRPCSource, FreeRunningStart())
	if err != nil {
		t.Fatal(err)
	}
	var metrics Metrics
	type result struct {
		tags []Match
		data []byte
		eos  bool
	}
	results := make(map[string]*result)
	deliver := func(b *TagBatch) error {
		r := results[b.Stream]
		if r == nil {
			r = &result{}
			results[b.Stream] = r
		}
		r.tags = append(r.tags, b.Tags...)
		r.data = append(r.data, b.Data...) // Data is pooled: copy
		r.eos = r.eos || b.EOS
		return b.Err
	}
	p, err := engine.NewPipeline(PipelineConfig{Shards: 4, Metrics: &metrics}, deliver)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("<methodCall> <methodName>buy</methodName> <params> </params> </methodCall>\n")
	const streams = 6
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i))
			for lo := 0; lo < len(input); lo += 9 {
				hi := lo + 9
				if hi > len(input) {
					hi = len(input)
				}
				if err := p.Send(key, input[lo:hi]); err != nil {
					t.Error(err)
					return
				}
			}
			p.CloseStream(key)
		}(i)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	want := engine.NewTagger().Tag(input)
	for i := 0; i < streams; i++ {
		key := string(rune('a' + i))
		r := results[key]
		if r == nil || !r.eos {
			t.Fatalf("stream %s: missing or unterminated", key)
		}
		if !reflect.DeepEqual(r.data, input) {
			t.Errorf("stream %s: bytes did not reassemble", key)
		}
		if !reflect.DeepEqual(r.tags, want) {
			t.Errorf("stream %s: tags = %v, want %v", key, r.tags, want)
		}
	}
	counters, _ := metrics.Snapshot()
	if wantBytes := int64(streams * len(input)); counters.Bytes != wantBytes {
		t.Errorf("metrics saw %d bytes, want %d", counters.Bytes, wantBytes)
	}
	if counters.Matches != int64(streams*len(want)) {
		t.Errorf("metrics saw %d matches, want %d", counters.Matches, streams*len(want))
	}
	if err := p.Send("x", []byte("y")); err == nil {
		t.Error("Send after Close succeeded")
	}
}

func TestPipelineParserBackend(t *testing.T) {
	engine, err := Compile("demo", IfThenElseSource)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make(map[string]error)
	tags := make(map[string]int)
	p, err := engine.NewPipeline(PipelineConfig{Backend: ParserBackend, Shards: 2}, func(b *TagBatch) error {
		if b.EOS {
			verdicts[b.Stream] = b.Err
		}
		tags[b.Stream] += len(b.Tags)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Send("good", []byte("if true then go else stop"))
	p.Send("bad", []byte("if true go"))
	p.CloseStream("good")
	p.CloseStream("bad")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if verdicts["good"] != nil {
		t.Errorf("conforming stream: verdict %v", verdicts["good"])
	}
	if verdicts["bad"] == nil {
		t.Error("non-conforming stream: no verdict")
	}
	if tags["good"] == 0 {
		t.Error("conforming stream produced no tags")
	}
}

func TestPipelineFaultFacade(t *testing.T) {
	engine, err := Compile("demo", IfThenElseSource, FreeRunningStart())
	if err != nil {
		t.Fatal(err)
	}
	var metrics Metrics
	evicted := make(map[string]bool)
	deadLettered := 0
	failures := map[string]int{"poison": 2} // deliver fails beyond SinkAttempts
	deliver := func(b *TagBatch) error {
		if failures[b.Stream] > 0 {
			failures[b.Stream]--
			return errTransient
		}
		if b.Evicted {
			if !b.EOS {
				t.Errorf("stream %s: Evicted batch without EOS", b.Stream)
			}
			evicted[b.Stream] = true
		}
		return nil
	}
	p, err := engine.NewPipeline(PipelineConfig{
		Shards:       1,
		MaxStreams:   2,
		Quarantine:   -1, // disabled: nothing here is a backend fault
		SinkAttempts: 2,
		SinkBackoff:  time.Microsecond,
		Metrics:      &metrics,
		DeadLetter:   func(b *TagBatch, err error) { deadLettered++ },
	}, deliver)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"a", "b", "c", "poison"} {
		if err := p.Send(key, []byte("if true then go else stop ")); err != nil {
			t.Fatalf("Send %s: %v", key, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("Err = %v, want nil (failure was dead-lettered, not permanent)", err)
	}
	if len(evicted) == 0 {
		t.Error("MaxStreams cap produced no Evicted batches")
	}
	if deadLettered != 1 {
		t.Errorf("dead-lettered %d batches, want 1", deadLettered)
	}
	f := metrics.Faults()
	if f.StreamsEvicted != int64(len(evicted)) {
		t.Errorf("FaultStats.StreamsEvicted = %d, want %d", f.StreamsEvicted, len(evicted))
	}
	if f.SinkRetries == 0 || f.DeadLetters != 1 {
		t.Errorf("FaultStats = %+v, want retries > 0 and 1 dead letter", f)
	}
}

var errTransient = errors.New("transient deliver failure")

func TestPipelinePermanentFailureFacade(t *testing.T) {
	engine, err := Compile("demo", IfThenElseSource, FreeRunningStart())
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("sink gone")
	p, err := engine.NewPipeline(PipelineConfig{Shards: 1}, func(b *TagBatch) error {
		return PermanentDeliverError(cause)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("s", []byte("if ")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("permanent deliver failure never surfaced on Err")
		}
		p.Send("s", []byte("if "))
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(p.Err(), cause) {
		t.Fatalf("Err = %v, want wrapped %v", p.Err(), cause)
	}
	if err := p.Close(); !errors.Is(err, cause) {
		t.Fatalf("Close = %v, want wrapped %v", err, cause)
	}
}
