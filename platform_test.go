package cfgtag

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// platformSink collects batches per (tenant, stream) with a mutex; the
// platform's tenants deliver concurrently.
type platformSink struct {
	mu   sync.Mutex
	tags map[string][]Match
	vers map[string]map[int]bool
	eos  map[string]bool
	errs map[string]error
}

func newPlatformSink() *platformSink {
	return &platformSink{
		tags: make(map[string][]Match),
		vers: make(map[string]map[int]bool),
		eos:  make(map[string]bool),
		errs: make(map[string]error),
	}
}

func (s *platformSink) deliver(tenant string, b *TagBatch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := tenant + "/" + b.Stream
	s.tags[k] = append(s.tags[k], b.Tags...)
	if b.EOS {
		s.eos[k] = true
	}
	if b.Err != nil {
		s.errs[k] = b.Err
	}
	if s.vers[k] == nil {
		s.vers[k] = make(map[int]bool)
	}
	s.vers[k][b.Version] = true
	return nil
}

func (s *platformSink) tagsFor(tenant, stream string) []Match {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tags[tenant+"/"+stream]
}

const platformTestConfig = `{
  "tenants": [
    {
      "name": "xml",
      "grammar": %q,
      "options": ["free-running-start"],
      "backend": "dfa",
      "shards": 2,
      "quota": {"max_streams": 64}
    },
    {
      "name": "lang",
      "grammar": %q,
      "backend": "stream",
      "shards": 1
    }
  ]
}`

func testPlatformConfig(t *testing.T) *PlatformConfig {
	t.Helper()
	src := fmt.Sprintf(platformTestConfig, XMLRPCSource, IfThenElseSource)
	pc, err := ParsePlatformConfig([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.Validate(); err != nil {
		t.Fatal(err)
	}
	return pc
}

func TestPlatformMultiTenant(t *testing.T) {
	pc := testPlatformConfig(t)
	sink := newPlatformSink()
	p, err := NewPlatform(pc, sink.deliver)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Tenants(); !reflect.DeepEqual(got, []string{"lang", "xml"}) {
		t.Fatalf("Tenants = %v", got)
	}

	xmlIn := []byte("<methodCall><methodName>add</methodName><params></params></methodCall>")
	langIn := []byte("if true then go else stop")
	if err := p.Send("xml", "s1", xmlIn); err != nil {
		t.Fatal(err)
	}
	if err := p.Send("lang", "s1", langIn); err != nil {
		t.Fatal(err)
	}
	if err := p.Send("nope", "s1", langIn); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: %v", err)
	}
	if err := p.CloseStream("xml", "s1"); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseStream("lang", "s1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	xmlEngine, err := Compile("xml", XMLRPCSource, FreeRunningStart())
	if err != nil {
		t.Fatal(err)
	}
	langEngine, err := Compile("lang", IfThenElseSource)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sink.tagsFor("xml", "s1"), xmlEngine.NewTagger().Tag(xmlIn); !reflect.DeepEqual(got, want) {
		t.Fatalf("xml tags %v, want %v", got, want)
	}
	if got, want := sink.tagsFor("lang", "s1"), langEngine.NewTagger().Tag(langIn); !reflect.DeepEqual(got, want) {
		t.Fatalf("lang tags %v, want %v", got, want)
	}
}

// TestPlatformReload swaps a tenant's grammar mid-stream: the live stream
// keeps the old grammar's tags and Version 1; a stream started after the
// reload is tagged by the new grammar with Version 2; the old version
// retires once the live stream ends.
func TestPlatformReload(t *testing.T) {
	pc := testPlatformConfig(t)
	sink := newPlatformSink()
	p, err := NewPlatform(pc, sink.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	xmlIn := []byte("<methodCall><methodName>add</methodName><params></params></methodCall>")
	// Open a stream on version 1 and wait for its first batch, so the
	// stream provably binds the old grammar.
	half := len(xmlIn) / 2
	if err := p.Send("xml", "old", xmlIn[:half]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		sink.mu.Lock()
		seen := len(sink.vers["xml/old"]) > 0
		sink.mu.Unlock()
		if seen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first batch never delivered")
		}
		time.Sleep(time.Millisecond)
	}

	v, err := p.Reload("xml", XMLRPCFullSource)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("Reload returned version %d, want 2", v)
	}
	if cur, _ := p.CurrentVersion("xml"); cur != 2 {
		t.Fatalf("CurrentVersion = %d, want 2", cur)
	}
	if lv, _ := p.LiveVersions("xml"); !reflect.DeepEqual(lv, []int{1, 2}) {
		t.Fatalf("LiveVersions = %v, want [1 2]", lv)
	}

	// The live stream finishes on the old grammar.
	if err := p.Send("xml", "old", xmlIn[half:]); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseStream("xml", "old"); err != nil {
		t.Fatal(err)
	}
	// A fresh stream runs the new grammar. XMLRPCFull requires <value>
	// wrappers, so the old wire format tags differently under it.
	fullIn := []byte("<methodCall><methodName>add</methodName><params><param><value><i4>1</i4></value></param></params></methodCall>")
	if err := p.Send("xml", "new", fullIn); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseStream("xml", "new"); err != nil {
		t.Fatal(err)
	}

	// Old version retires once the old stream's final batch is out.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if lv, _ := p.LiveVersions("xml"); reflect.DeepEqual(lv, []int{2}) {
			break
		}
		if time.Now().After(deadline) {
			lv, _ := p.LiveVersions("xml")
			t.Fatalf("old version never retired: LiveVersions = %v", lv)
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	oldEngine, _ := Compile("xml", XMLRPCSource, FreeRunningStart())
	newEngine, _ := Compile("xml", XMLRPCFullSource, FreeRunningStart())
	if got, want := sink.tagsFor("xml", "old"), oldEngine.NewTagger().Tag(xmlIn); !reflect.DeepEqual(got, want) {
		t.Fatalf("old stream tags %v, want old-grammar %v", got, want)
	}
	if got, want := sink.tagsFor("xml", "new"), newEngine.NewTagger().Tag(fullIn); !reflect.DeepEqual(got, want) {
		t.Fatalf("new stream tags %v, want new-grammar %v", got, want)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if vs := sink.vers["xml/old"]; len(vs) != 1 || !vs[1] {
		t.Fatalf("old stream versions %v, want {1}", vs)
	}
	if vs := sink.vers["xml/new"]; len(vs) != 1 || !vs[2] {
		t.Fatalf("new stream versions %v, want {2}", vs)
	}
}

// ifThenElseHaltSource extends the figure 9 grammar with a "halt"
// alternative — a sentence only the reloaded version accepts.
const ifThenElseHaltSource = `
%%
E : "if" C "then" E "else" E | "go" | "stop" | "halt" ;
C : "true" | "false" ;
`

// TestPlatformReloadEarley is the reload-under-load test for an
// Earley-backed tenant: a stream opened before the reload finishes on
// version 1 with version 1's tags, streams opened after run version 2,
// the old version retires once its last stream ends, and every
// non-faulted stream's output — tags and accept/reject verdict alike —
// is byte-identical to a standalone run of the owning version's oracle.
func TestPlatformReloadEarley(t *testing.T) {
	pc := &PlatformConfig{Tenants: []TenantDef{{
		Name:    "oracle",
		Grammar: IfThenElseSource,
		Backend: "earley",
		Shards:  2,
	}}}
	if err := pc.Validate(); err != nil {
		t.Fatal(err)
	}
	sink := newPlatformSink()
	p, err := NewPlatform(pc, sink.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	oldIn := []byte("if true then go else stop")
	// Open a stream on version 1 and wait for its first batch, so the
	// stream provably binds the old recognizer.
	half := len(oldIn) / 2
	if err := p.Send("oracle", "old", oldIn[:half]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		sink.mu.Lock()
		seen := len(sink.vers["oracle/old"]) > 0
		sink.mu.Unlock()
		if seen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first batch never delivered")
		}
		time.Sleep(time.Millisecond)
	}

	v, err := p.Reload("oracle", ifThenElseHaltSource)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("Reload returned version %d, want 2", v)
	}
	if lv, _ := p.LiveVersions("oracle"); !reflect.DeepEqual(lv, []int{1, 2}) {
		t.Fatalf("LiveVersions = %v, want [1 2]", lv)
	}

	// The live stream finishes — whole-sentence recognition on version 1.
	if err := p.Send("oracle", "old", oldIn[half:]); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseStream("oracle", "old"); err != nil {
		t.Fatal(err)
	}
	// Fresh streams run version 2: "halt" is a sentence only there, and a
	// non-sentence must come back as a version-2 reject verdict, not a
	// fault.
	newIn := []byte(" halt ")
	badIn := []byte("if true then go")
	for stream, in := range map[string][]byte{"new": newIn, "bad": badIn} {
		if err := p.Send("oracle", stream, in); err != nil {
			t.Fatal(err)
		}
		if err := p.CloseStream("oracle", stream); err != nil {
			t.Fatal(err)
		}
	}

	// Version 1 retires once the old stream's final batch is out.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if lv, _ := p.LiveVersions("oracle"); reflect.DeepEqual(lv, []int{2}) {
			break
		}
		if time.Now().After(deadline) {
			lv, _ := p.LiveVersions("oracle")
			t.Fatalf("old version never retired: LiveVersions = %v", lv)
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference runs: each version's standalone oracle backend, compiled
	// under the tenant's name so reject verdicts compare verbatim.
	oracleRun := func(src string, in []byte) ([]Match, error) {
		engine, err := Compile("oracle", src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := engine.NewBackend(EarleyBackend)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Feed(in); err != nil {
			t.Fatal(err)
		}
		verdict := b.Close()
		return b.Matches(), verdict
	}
	wantOld, wantOldErr := oracleRun(IfThenElseSource, oldIn)
	if wantOldErr != nil {
		t.Fatalf("reference rejected the old sentence: %v", wantOldErr)
	}
	wantNew, wantNewErr := oracleRun(ifThenElseHaltSource, newIn)
	if wantNewErr != nil {
		t.Fatalf("reference rejected halt: %v", wantNewErr)
	}
	_, wantBadErr := oracleRun(ifThenElseHaltSource, badIn)
	if wantBadErr == nil {
		t.Fatal("reference accepted the non-sentence")
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if got := sink.tags["oracle/old"]; !reflect.DeepEqual(got, wantOld) {
		t.Fatalf("old stream tags %v, want version-1 oracle %v", got, wantOld)
	}
	if got := sink.tags["oracle/new"]; !reflect.DeepEqual(got, wantNew) {
		t.Fatalf("new stream tags %v, want version-2 oracle %v", got, wantNew)
	}
	for _, stream := range []string{"old", "new"} {
		if err := sink.errs["oracle/"+stream]; err != nil {
			t.Fatalf("%s stream carried error %v", stream, err)
		}
	}
	if err := sink.errs["oracle/bad"]; err == nil || err.Error() != wantBadErr.Error() {
		t.Fatalf("bad stream verdict %v, want %v", err, wantBadErr)
	}
	if n := len(sink.tags["oracle/bad"]); n != 0 {
		t.Fatalf("rejected stream carried %d tags", n)
	}
	if vs := sink.vers["oracle/old"]; len(vs) != 1 || !vs[1] {
		t.Fatalf("old stream versions %v, want {1}", vs)
	}
	for _, stream := range []string{"new", "bad"} {
		if vs := sink.vers["oracle/"+stream]; len(vs) != 1 || !vs[2] {
			t.Fatalf("%s stream versions %v, want {2}", stream, vs)
		}
	}
}

func TestPlatformQuota(t *testing.T) {
	pc := &PlatformConfig{Tenants: []TenantDef{{
		Name:    "q",
		Grammar: IfThenElseSource,
		Shards:  1,
		Quota:   QuotaConfig{MaxStreams: 1},
	}}}
	if err := pc.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(pc, func(string, *TagBatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Send("q", "a", []byte("if")); err != nil {
		t.Fatal(err)
	}
	if err := p.Send("q", "b", []byte("if")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota Send: %v, want ErrQuotaExceeded", err)
	}
	if n, _ := p.LiveStreams("q"); n != 1 {
		t.Fatalf("LiveStreams = %d, want 1", n)
	}
}

func TestParsePlatformConfigRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown field", `{"tenants": [], "oops": 1}`},
		{"unknown tenant field", `{"tenants": [{"name": "a", "grammar": "x", "turbo": true}]}`},
		{"trailing garbage", `{"tenants": []} {"more": 1}`},
		{"not json", `tenants: [1`},
		{"wrong type", `{"tenants": [{"name": 42}]}`},
		{"bad duration", `{"tenants": [{"name": "a", "grammar": "x", "quarantine": "soon"}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParsePlatformConfig([]byte(tc.src)); err == nil {
				t.Fatalf("ParsePlatformConfig accepted %q", tc.src)
			}
		})
	}
}

func TestPlatformConfigValidate(t *testing.T) {
	ok := func() *PlatformConfig {
		return &PlatformConfig{Tenants: []TenantDef{{Name: "a", Grammar: IfThenElseSource}}}
	}
	if err := ok().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*PlatformConfig)
	}{
		{"no tenants", func(c *PlatformConfig) { c.Tenants = nil }},
		{"empty name", func(c *PlatformConfig) { c.Tenants[0].Name = "" }},
		{"duplicate names", func(c *PlatformConfig) { c.Tenants = append(c.Tenants, c.Tenants[0]) }},
		{"no grammar", func(c *PlatformConfig) { c.Tenants[0].Grammar = "" }},
		{"both grammar sources", func(c *PlatformConfig) { c.Tenants[0].GrammarFile = "x.g" }},
		{"unknown option", func(c *PlatformConfig) { c.Tenants[0].Options = []string{"warp-speed"} }},
		{"unknown backend", func(c *PlatformConfig) { c.Tenants[0].Backend = "quantum" }},
		{"negative shards", func(c *PlatformConfig) { c.Tenants[0].Shards = -1 }},
		{"negative queue", func(c *PlatformConfig) { c.Tenants[0].Queue = -1 }},
		{"negative max streams", func(c *PlatformConfig) { c.Tenants[0].MaxStreams = -1 }},
		{"negative sink attempts", func(c *PlatformConfig) { c.Tenants[0].SinkAttempts = -1 }},
		{"negative sink workers", func(c *PlatformConfig) { c.Tenants[0].SinkWorkers = -1 }},
		{"negative quota streams", func(c *PlatformConfig) { c.Tenants[0].Quota.MaxStreams = -1 }},
		{"negative quota rate", func(c *PlatformConfig) { c.Tenants[0].Quota.BytesPerSec = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ok()
			tc.mut(cfg)
			err := cfg.Validate()
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Validate = %v, want ErrInvalidConfig", err)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate = %v, want *ConfigError", err)
			}
		})
	}
	// A bad grammar passes Validate (not compiled there) but fails
	// NewPlatform.
	bad := ok()
	bad.Tenants[0].Grammar = "%%%% not a grammar"
	if err := bad.Validate(); err != nil {
		t.Fatalf("Validate compiled the grammar: %v", err)
	}
	if _, err := NewPlatform(bad, func(string, *TagBatch) error { return nil }); err == nil {
		t.Fatal("NewPlatform accepted a bad grammar")
	}
}

func TestDurationJSON(t *testing.T) {
	var td struct {
		D Duration `json:"d"`
	}
	for src, want := range map[string]time.Duration{
		`{"d": "1500ms"}`: 1500 * time.Millisecond,
		`{"d": "-1ns"}`:   -time.Nanosecond,
		`{"d": 42}`:       42 * time.Nanosecond,
	} {
		if err := json.Unmarshal([]byte(src), &td); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if time.Duration(td.D) != want {
			t.Errorf("%s: got %v, want %v", src, time.Duration(td.D), want)
		}
	}
}

// TestPlatformDoubleClose pins Close idempotency under concurrency:
// exactly one caller wins (nil), every other racer gets the typed
// ErrPlatformClosed, and the platform's entry points fail closed after.
func TestPlatformDoubleClose(t *testing.T) {
	pc := testPlatformConfig(t)
	sink := newPlatformSink()
	p, err := NewPlatform(pc, sink.deliver)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("lang", "s1", []byte("if true then go else stop")); err != nil {
		t.Fatal(err)
	}

	const racers = 8
	errs := make(chan error, racers)
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < racers; i++ {
		go func() {
			start.Wait()
			errs <- p.Close()
		}()
	}
	start.Done()
	var wins, closed int
	for i := 0; i < racers; i++ {
		switch err := <-errs; {
		case err == nil:
			wins++
		case errors.Is(err, ErrPlatformClosed):
			closed++
		default:
			t.Errorf("concurrent Close: unexpected error %v", err)
		}
	}
	if wins != 1 || closed != racers-1 {
		t.Fatalf("concurrent Close: %d nil / %d ErrPlatformClosed, want 1 / %d",
			wins, closed, racers-1)
	}

	// Every entry point fails closed with the typed error.
	if err := p.Send("lang", "s2", []byte("x")); !errors.Is(err, ErrPlatformClosed) {
		t.Fatalf("Send after Close: %v, want ErrPlatformClosed", err)
	}
	if err := p.CloseStream("lang", "s1"); !errors.Is(err, ErrPlatformClosed) {
		t.Fatalf("CloseStream after Close: %v, want ErrPlatformClosed", err)
	}
	if err := p.Close(); !errors.Is(err, ErrPlatformClosed) {
		t.Fatalf("third Close: %v, want ErrPlatformClosed", err)
	}
	// Close flushed the open stream: its EOS batch was delivered.
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if !sink.eos["lang/s1"] {
		t.Fatal("open stream not flushed by Close")
	}
}
