// Package cfgtag is the public API of the CFG-based token tagger — a
// reproduction of "Context-Free-Grammar based Token Tagger in
// Reconfigurable Devices" (Cho, Moscola, Lockwood; ICDE 2006).
//
// An Engine is compiled from a Lex/Yacc-style grammar (see the grammar
// file format in the README). It exposes the paper's full pipeline:
//
//   - Tagger: the streaming token tagger (bit-parallel software execution
//     of the generated hardware's exact semantics),
//   - Synthesize: technology mapping + timing model for the two FPGA
//     devices of table 1,
//   - VHDL: the structural VHDL the paper's generator emits,
//   - Parser: the LL(1) predictive-parser baseline ("true parser"),
//   - GateRunner: cycle-accurate simulation of the generated netlist.
//
// The quickstart example:
//
//	engine, _ := cfgtag.Compile("demo", cfgtag.IfThenElseSource)
//	tg := engine.NewTagger()
//	tg.OnMatch = func(m cfgtag.Match) { fmt.Println(m.Term, m.Context, m.End) }
//	tg.Write([]byte("if true then go else stop"))
//	tg.Close()
package cfgtag

import (
	"fmt"
	"time"

	"cfgtag/internal/aot"
	"cfgtag/internal/core"
	"cfgtag/internal/fpga"
	"cfgtag/internal/grammar"
	"cfgtag/internal/hwgen"
	"cfgtag/internal/parser"
	"cfgtag/internal/runtime"
	"cfgtag/internal/stream"
	"cfgtag/internal/validate"
	"cfgtag/internal/vhdl"
)

// Built-in grammar sources from the paper.
const (
	// BalancedParensSource is the figure 1 grammar.
	BalancedParensSource = grammar.BalancedParensSrc
	// IfThenElseSource is the figure 9 grammar.
	IfThenElseSource = grammar.IfThenElseSrc
	// XMLRPCSource is the figure 14 grammar (XML-RPC).
	XMLRPCSource = grammar.XMLRPCSrc
	// XMLRPCFullSource is the real-wire-format XML-RPC grammar (with the
	// <value> wrapper tags figure 14 omits).
	XMLRPCFullSource = grammar.XMLRPCFullSrc
	// EnglishSource is the section 5.1 natural-language fragment
	// (examples/natlang).
	EnglishSource = grammar.EnglishSrc
)

// Option tunes compilation; the defaults select the paper's design.
type Option func(*core.Options)

// FreeRunningStart keeps the start tokenizers always enabled so sentences
// are found anywhere in the stream (section 3.3's unanchored mode). Use it
// for long-lived streams carrying many messages.
func FreeRunningStart() Option { return func(o *core.Options) { o.FreeRunningStart = true } }

// WithoutContextDuplication builds one tokenizer per terminal instead of
// one per grammar occurrence (ablation).
func WithoutContextDuplication() Option {
	return func(o *core.Options) { o.NoContextDuplication = true }
}

// WithoutLongestMatch drops the figure 7 lookahead (ablation).
func WithoutLongestMatch() Option { return func(o *core.Options) { o.NoLongestMatch = true } }

// AllEnabled discards the syntactic wiring, leaving a naive parallel
// pattern matcher (ablation).
func AllEnabled() Option { return func(o *core.Options) { o.AllEnabled = true } }

// IndexBits fixes the encoder output width.
func IndexBits(n int) Option { return func(o *core.Options) { o.IndexBits = n } }

// RecoverRestart enables the section 5.2 error recovery in its restart
// flavor: when the engine goes dead on non-conforming input, the start
// tokenizers re-arm so the next sentence is tagged. Tagger.Errors counts
// the recovery events.
func RecoverRestart() Option { return func(o *core.Options) { o.Recovery = core.RecoveryRestart } }

// RecoverResync enables the stronger section 5.2 recovery: every tokenizer
// re-arms at the error, resuming mid-structure right after the damage (at
// the cost of some noisy tags while context re-locks).
func RecoverResync() Option { return func(o *core.Options) { o.Recovery = core.RecoveryResync } }

// Engine is a compiled tagging engine for one grammar.
type Engine struct {
	spec *core.Spec
}

// Compile parses the grammar source and compiles the engine.
func Compile(name, grammarSrc string, opts ...Option) (*Engine, error) {
	g, err := grammar.Parse(name, grammarSrc)
	if err != nil {
		return nil, err
	}
	return CompileGrammar(g, opts...)
}

// CompileGrammar compiles a pre-parsed grammar.
func CompileGrammar(g *grammar.Grammar, opts ...Option) (*Engine, error) {
	var copts core.Options
	for _, o := range opts {
		o(&copts)
	}
	spec, err := core.Compile(g, copts)
	if err != nil {
		return nil, err
	}
	return &Engine{spec: spec}, nil
}

// Spec exposes the compiled specification for advanced integration
// (instance wiring, encoder indices).
func (e *Engine) Spec() *core.Spec { return e.spec }

// Match is one token detection.
type Match struct {
	// Term is the terminal name.
	Term string
	// Context is the grammatical context, e.g. "methodName[1]" — the
	// paper's semantic tag.
	Context string
	// Index is the token index the hardware encoder would emit.
	Index int
	// End is the offset of the lexeme's last byte.
	End int64
	// SentenceEnd reports that a complete sentence of the grammar may end
	// at this token (the back-end's message-boundary signal).
	SentenceEnd bool
	// InstanceID identifies the tokenizer instance (Spec().Instances).
	InstanceID int
}

// Tagger streams bytes and emits matches. Not safe for concurrent use.
type Tagger struct {
	engine *Engine
	inner  *stream.Tagger
	// OnMatch receives detections in input order.
	OnMatch func(Match)
}

// NewTagger creates a streaming tagger.
func (e *Engine) NewTagger() *Tagger {
	t := &Tagger{engine: e, inner: stream.NewTagger(e.spec)}
	t.inner.OnMatch = func(m stream.Match) {
		if t.OnMatch != nil {
			t.OnMatch(t.engine.match(m))
		}
	}
	return t
}

func (e *Engine) match(m stream.Match) Match {
	in := e.spec.Instances[m.InstanceID]
	return Match{
		Term:        in.Term,
		Context:     in.Context(e.spec.Grammar),
		Index:       in.Index,
		End:         m.End,
		SentenceEnd: in.CanEnd,
		InstanceID:  in.ID,
	}
}

// Errors returns the number of section 5.2 recovery events so far (always
// zero unless a Recover option was used at compile time).
func (t *Tagger) Errors() int64 { return t.inner.Errors }

// Write feeds stream bytes (io.Writer-compatible).
func (t *Tagger) Write(p []byte) (int, error) { return t.inner.Write(p) }

// Close flushes the final byte's pending detection.
func (t *Tagger) Close() error { return t.inner.Close() }

// Reset rewinds to stream start for reuse.
func (t *Tagger) Reset() { t.inner.Reset() }

// Tag runs a whole buffer and returns all matches (Reset + Close implied).
func (t *Tagger) Tag(data []byte) []Match {
	ms := t.inner.Tag(data)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = t.engine.match(m)
	}
	return out
}

// Pool tags independent buffers concurrently (one borrowed engine state
// per call); safe for concurrent use, unlike Tagger.
type Pool struct {
	engine *Engine
	inner  *stream.Pool
}

// NewPool builds a pool of size concurrent taggers (0 = GOMAXPROCS).
func (e *Engine) NewPool(size int) *Pool {
	return &Pool{engine: e, inner: stream.NewPool(e.spec, size)}
}

// Tag tags one buffer; concurrent calls proceed in parallel up to the pool
// size.
func (p *Pool) Tag(data []byte) []Match {
	ms := p.inner.Tag(data)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = p.engine.match(m)
	}
	return out
}

// Report is a synthesis result (a table 1 row).
type Report = fpga.Report

// Devices of table 1.
var (
	Virtex4LX200 = fpga.Virtex4LX200
	VirtexE2000  = fpga.VirtexE2000
)

// Synthesize generates the hardware netlist, maps it to 4-input LUTs on
// the device and models its clock rate — one row of table 1.
func (e *Engine) Synthesize(dev fpga.Device) (Report, error) {
	d, err := hwgen.Generate(e.spec, hwgen.Options{})
	if err != nil {
		return Report{}, err
	}
	return fpga.Synthesize(d.Netlist, dev, e.spec.PatternBytes())
}

// VHDL emits the generated design as structural VHDL.
func (e *Engine) VHDL(entity string) (string, error) {
	d, err := hwgen.Generate(e.spec, hwgen.Options{})
	if err != nil {
		return "", err
	}
	return vhdl.Emit(d.Netlist, vhdl.Options{Entity: entity, Comment: e.spec.Grammar.Name})
}

// GateRunner simulates the generated netlist cycle by cycle — the
// gate-level reference for the Tagger's semantics.
type GateRunner struct {
	engine *Engine
	runner *hwgen.Runner
}

// NewGateRunner generates and instantiates the hardware simulation.
func (e *Engine) NewGateRunner() (*GateRunner, error) {
	d, err := hwgen.Generate(e.spec, hwgen.Options{})
	if err != nil {
		return nil, err
	}
	r, err := hwgen.NewRunner(d)
	if err != nil {
		return nil, err
	}
	return &GateRunner{engine: e, runner: r}, nil
}

// Run feeds the input at one byte per cycle and returns the detections.
func (g *GateRunner) Run(input []byte) []Match {
	ms := g.runner.Run(input)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = g.engine.match(m)
	}
	return out
}

// Wide2Runner simulates the 2-bytes-per-clock datapath (the section 5.2
// scaling, actually built for the first doubling).
type Wide2Runner struct {
	engine *Engine
	runner *hwgen.RunnerWide2
}

// NewWide2Runner generates and instantiates the 2-byte datapath; not
// available with Recover options.
func (e *Engine) NewWide2Runner() (*Wide2Runner, error) {
	d, err := hwgen.GenerateWide2(e.spec, hwgen.Options{})
	if err != nil {
		return nil, err
	}
	r, err := hwgen.NewRunnerWide2(d)
	if err != nil {
		return nil, err
	}
	return &Wide2Runner{engine: e, runner: r}, nil
}

// Run feeds the input two bytes per cycle and returns the detections.
func (w *Wide2Runner) Run(input []byte) []Match {
	ms := w.runner.Run(input)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = w.engine.match(m)
	}
	return out
}

// SelfTest cross-checks both generated hardware datapaths against the
// software engine on randomly generated conforming sentences; it returns
// the number of sentences verified.
func (e *Engine) SelfTest(seed int64, sentences int) (int, error) {
	return hwgen.SelfTest(e.spec, seed, sentences)
}

// Parser is the LL(1) predictive-parser baseline.
type Parser struct {
	engine *Engine
	table  *parser.Table
}

// NewParser builds the LL(1) parse table; it fails if the grammar is not
// LL(1).
func (e *Engine) NewParser() (*Parser, error) {
	tbl, err := parser.BuildTable(e.spec)
	if err != nil {
		return nil, err
	}
	return &Parser{engine: e, table: tbl}, nil
}

// Parse validates the input as a complete sentence, returning the tagged
// tokens (comparable to Tagger output on conforming input).
func (p *Parser) Parse(input []byte) ([]Match, error) {
	tags, err := p.table.Parse(input)
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(tags))
	for _, tag := range tags {
		in := p.engine.spec.InstanceAt(tag.Rule, tag.Pos)
		if in == nil {
			return nil, fmt.Errorf("cfgtag: internal: no instance at rule %d pos %d", tag.Rule, tag.Pos)
		}
		out = append(out, Match{
			Term:        in.Term,
			Context:     in.Context(p.engine.spec.Grammar),
			Index:       in.Index,
			End:         int64(tag.End),
			SentenceEnd: in.CanEnd,
			InstanceID:  in.ID,
		})
	}
	return out, nil
}

// Accepts reports whether the input is a sentence of the grammar.
func (p *Parser) Accepts(input []byte) bool { return p.table.Accepts(input) }

// CheckedTagger is a tagger coupled with the section 5.2 stack extension:
// a bounded LL(1) stack machine audits the tag stream, restoring exact
// grammar recognition on top of the stack-less engine (nesting violations
// the parallel hardware cannot see surface on OnViolation).
type CheckedTagger struct {
	engine *Engine
	inner  *validate.CheckedTagger
	// OnMatch receives every detection, as with Tagger.
	OnMatch func(Match)
	// OnViolation receives each recursion/nesting violation: the offset of
	// the offending token's last byte (-1 at end of input), its terminal
	// name ("" at end of input) and the cause.
	OnViolation func(end int64, term string, err error)
}

// NewCheckedTagger builds the stack-extended pipeline. maxStackDepth
// bounds the modeled hardware stack (0 = 4096); the grammar must be LL(1).
func (e *Engine) NewCheckedTagger(maxStackDepth int) (*CheckedTagger, error) {
	inner, err := validate.NewCheckedTagger(e.spec, maxStackDepth)
	if err != nil {
		return nil, err
	}
	ct := &CheckedTagger{engine: e, inner: inner}
	inner.OnMatch = func(m stream.Match) {
		if ct.OnMatch != nil {
			ct.OnMatch(e.match(m))
		}
	}
	inner.Validator.OnViolation = func(v *validate.Violation) {
		if ct.OnViolation != nil {
			end := v.End
			if v.Term == "" {
				end = -1
			}
			ct.OnViolation(end, v.Term, v.Err)
		}
	}
	return ct, nil
}

// Write feeds stream bytes.
func (c *CheckedTagger) Write(p []byte) (int, error) { return c.inner.Write(p) }

// Close flushes the tagger and runs the end-of-input check; an unfinished
// sentence is returned (and reported) as a violation.
func (c *CheckedTagger) Close() error { return c.inner.Close() }

// Reset rewinds both the tagger and the stack machine.
func (c *CheckedTagger) Reset() {
	c.inner.Tagger.Reset()
	c.inner.Validator.Reset()
}

// Violations counts the nesting violations seen since Reset.
func (c *CheckedTagger) Violations() int64 { return c.inner.Validator.Violations() }

// Errors returns the tagger's section 5.2 recovery-event count (nonzero
// only when the engine was compiled with a Recover option); bytes the
// tagger could not place in any context never reach the validator, so a
// full well-formedness verdict is Violations() == 0 && Errors() == 0 &&
// Close() == nil.
func (c *CheckedTagger) Errors() int64 { return c.inner.Tagger.Errors }

// StackDepth reports the stack high-water mark — the capacity a hardware
// stack would have needed for this stream.
func (c *CheckedTagger) StackDepth() int { return c.inner.Validator.StackDepth() }

// BackendKind selects one of the engine's six execution paths when they
// are driven through the uniform Backend interface.
type BackendKind string

const (
	// StreamBackend is the bit-parallel software tagger (the default).
	StreamBackend BackendKind = "stream"
	// DFABackend lazily compiles the bit-parallel engine into a cached
	// DFA: hash-consed (active, pending) states with per-byte-class
	// transition outcomes filled on demand, RE2-style. Detections are
	// identical to StreamBackend; throughput is several times higher once
	// the cache warms. The cache is bounded (DFAMaxStates) and resets
	// wholesale on overflow, so memory never grows with input.
	DFABackend BackendKind = "dfa"
	// AOTBackend runs the lazy-DFA construction to closure ahead of time
	// and executes flat precompiled transition tables: no warmup, no
	// hash lookups, no cache resets — the software analogue of the
	// paper's synthesized hardware, and the fastest dense-input path.
	// Detections are identical to StreamBackend and DFABackend. The
	// trade is a hard compile-time state budget: a grammar that does not
	// determinize within it fails NewBackend and must use DFABackend.
	AOTBackend BackendKind = "aot"
	// GatesBackend is the cycle-accurate simulation of the generated
	// netlist — the hardware reference, byte-per-cycle slow.
	GatesBackend BackendKind = "gates"
	// ParserBackend is the LL(1) predictive-parser baseline. It buffers
	// the stream and parses at Close: one stream must be one sentence, the
	// grammar must be LL(1), and matches appear only after a successful
	// Close.
	ParserBackend BackendKind = "parser"
	// EarleyBackend is the exact-language oracle: a Leo-optimized Earley
	// recognizer handling every grammar class — left and right recursion,
	// ambiguity, ambiguous lexicons — where the FSA paths accept a
	// superset and the LL(1) parser refuses most grammars outright. Like
	// ParserBackend it buffers the stream and recognizes at Close (one
	// stream = one sentence); on ambiguous input its matches are the union
	// over all derivations. It is the reference the precision rail
	// (scripts/precision.sh) measures the hardware paths against.
	EarleyBackend BackendKind = "earley"
)

// BackendCounters reports what a Backend has processed: bytes fed, matches
// confirmed, section 5.2 recovery events, encoder index collisions and —
// on the dfa path — transition-cache hits, misses and resets.
type BackendCounters = runtime.Counters

// Backend drives any of the five execution paths through one streaming
// contract: Feed bytes, drain Matches, Close to flush the final byte (and,
// for the parser and earley paths, to obtain the verdict). Not safe for
// concurrent use.
type Backend struct {
	engine *Engine
	inner  runtime.Backend
	kind   BackendKind
}

func (e *Engine) factory(kind BackendKind) (runtime.Factory, error) {
	return e.factoryLimits(kind, runtime.Limits{})
}

// factoryLimits builds the execution path's factory with per-stream
// resource bounds baked in. The gates path has no bounded variant (it is
// the cycle-accurate reference, never a production backend); it ignores
// every limit but still counts toward tenant memory budgets via arenas.
func (e *Engine) factoryLimits(kind BackendKind, lim runtime.Limits) (runtime.Factory, error) {
	if err := lim.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case StreamBackend, "":
		return runtime.TaggerFactoryLimits(e.spec, lim), nil
	case DFABackend:
		return runtime.DFAFactoryLimits(e.spec, stream.DFAConfig{}, lim), nil
	case AOTBackend:
		return runtime.AOTFactoryLimits(e.spec, aot.Config{}, lim)
	case GatesBackend:
		return runtime.GateFactory(e.spec)
	case ParserBackend:
		return runtime.ParserFactoryLimits(e.spec, lim)
	case EarleyBackend:
		return runtime.EarleyFactoryLimits(e.spec, lim)
	default:
		return nil, fmt.Errorf("cfgtag: unknown backend kind %q", kind)
	}
}

// NewBackend instantiates one execution path behind the uniform contract.
// GatesBackend generates the netlist, ParserBackend builds the LL(1) table,
// EarleyBackend compiles the recognizer and AOTBackend determinizes the
// grammar offline, so those can fail; StreamBackend cannot.
func (e *Engine) NewBackend(kind BackendKind) (*Backend, error) {
	f, err := e.factory(kind)
	if err != nil {
		return nil, err
	}
	b, err := f(0, nil)
	if err != nil {
		return nil, err
	}
	return &Backend{engine: e, inner: b, kind: kind}, nil
}

// Kind returns which execution path this backend runs.
func (b *Backend) Kind() BackendKind { return b.kind }

// Reset rewinds to stream start for reuse.
func (b *Backend) Reset() { b.inner.Reset() }

// Feed streams bytes into the backend.
func (b *Backend) Feed(p []byte) error { return b.inner.Feed(p) }

// Close flushes the stream's end. The parser backend parses here and
// returns the reject as the error.
func (b *Backend) Close() error { return b.inner.Close() }

// Matches drains the detections confirmed since the previous call.
func (b *Backend) Matches() []Match {
	ms := b.inner.Matches()
	if len(ms) == 0 {
		return nil
	}
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = b.engine.match(m)
	}
	return out
}

// Counters reports the backend's lifetime totals.
func (b *Backend) Counters() BackendCounters { return b.inner.Counters() }

// CompileStats is the AOT path's synthesis report: closed state count,
// byte-equivalence classes, flattened table bytes and offline compile
// duration.
type CompileStats = stream.CompileStats

// CompileStats reports the aot path's offline compile cost; zero for
// every other execution path (they compile nothing ahead of time).
func (b *Backend) CompileStats() CompileStats {
	if cs, ok := b.inner.(interface{ CompileStats() stream.CompileStats }); ok {
		return cs.CompileStats()
	}
	return CompileStats{}
}

// TagBatch is one unit of pipeline output: a chunk of one stream plus the
// matches confirmed over it. Data is pooled — it is only valid during the
// deliver callback; copy it to keep it.
type TagBatch struct {
	// Stream is the key the bytes were Sent under.
	Stream string
	// Shard is the pipeline shard that processed this stream.
	Shard int
	// Data is the chunk of stream bytes this batch covers.
	Data []byte
	// Tags holds the matches confirmed while processing Data.
	Tags []Match
	// EOS marks the stream's final batch.
	EOS bool
	// Evicted marks a final batch forced by the MaxStreams idle-LRU
	// eviction rather than by CloseStream (EOS is set too).
	Evicted bool
	// Err carries the stream's backend verdict (e.g. a parser reject) or
	// the fault that quarantined the stream (test with errors.Is against
	// ErrBackendPanic).
	Err error
	// Version identifies the backend factory version that tagged this
	// batch: 1 at construction, incremented by each zero-downtime reload
	// (see Platform.Reload). Streams never change version mid-life.
	Version int
}

func (e *Engine) toTagBatch(b *runtime.Batch) *TagBatch {
	tb := &TagBatch{Stream: b.Key, Shard: b.Shard, Data: b.Data, EOS: b.EOS, Evicted: b.Evicted, Err: b.Err, Version: b.Version}
	if len(b.Tags) > 0 {
		tb.Tags = make([]Match, len(b.Tags))
		for i, m := range b.Tags {
			tb.Tags[i] = e.match(m)
		}
	}
	return tb
}

// Metrics aggregates pipeline observability counters (bytes, matches,
// recoveries, collisions, queue-depth high-water mark) atomically; safe
// for concurrent use. The zero value is ready.
type Metrics = runtime.MetricCounters

// PipelineConfig tunes a sharded pipeline.
type PipelineConfig struct {
	// Backend selects the execution path each shard runs ("" = stream).
	Backend BackendKind
	// Shards is the number of tagging shards (0 = GOMAXPROCS). Streams
	// have shard affinity: one stream is always tagged by the same shard.
	Shards int
	// Queue is each shard's input queue depth in batches (0 = 64).
	Queue int
	// Metrics, when set, receives the pipeline's observability counters.
	Metrics *Metrics
	// MaxStreams caps the live streams per shard (0 = unlimited). At the
	// cap, the least-recently-fed stream is flushed and delivered as a
	// final batch with Evicted set.
	MaxStreams int
	// Quarantine is how long a stream key is rejected after its backend
	// faults (0 = 30s default; negative disables quarantine).
	Quarantine time.Duration
	// SinkAttempts is how many times a failing deliver callback is tried
	// per batch, first attempt included (0 = 3).
	SinkAttempts int
	// SinkBackoff is the base retry delay, doubled per retry with jitter
	// and capped (0 = 1ms).
	SinkBackoff time.Duration
	// DeadLetter, when set, receives batches whose deliver attempts were
	// exhausted; the pipeline then carries on. When nil, an exhausted
	// batch fails the pipeline permanently instead.
	DeadLetter func(*TagBatch, error)
	// BatchBytes is the per-shard coalescing threshold: chunks for a
	// shard are batched into one pooled dispatch message until this many
	// bytes are pending or the shard goes idle (0 = 64 KiB default;
	// negative disables coalescing and dispatches every Send
	// immediately).
	BatchBytes int
	// SinkWorkers is the number of delivery workers (0 or 1 = a single
	// worker, the classic serialized sink). With more than one, batches
	// for the same stream still arrive in order on one worker, but
	// deliver must be safe for concurrent use across streams.
	SinkWorkers int
	// SendTimeout switches Send from backpressure to load shedding: 0
	// blocks on a full shard queue (the default), a negative value sheds
	// immediately, and a positive value waits at most that long before
	// shedding. A shed Send fails with ErrOverloaded, accepts none of the
	// chunk's bytes, and leaves the stream otherwise intact.
	SendTimeout time.Duration
	// ShedHighWater is the shard queue depth (in batches) at which shed
	// mode starts rejecting (0 = the full Queue capacity). Only meaningful
	// with SendTimeout set.
	ShedHighWater int
	// FeedDeadline arms the backend watchdog: a Feed or Close call
	// exceeding it marks the stream's backend stalled, ends the stream
	// with an error wrapping ErrBackendStalled and quarantines its key
	// (0 = watchdog disabled).
	FeedDeadline time.Duration
	// BreakerThreshold arms the sink circuit breaker: after this many
	// consecutive retry-exhausted deliveries a sink worker opens and sheds
	// batches straight to DeadLetter (wrapping ErrBreakerOpen) until a
	// cooldown probe succeeds (0 = breaker disabled; requires DeadLetter).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds before probing the
	// sink again (0 = 1s).
	BreakerCooldown time.Duration
	// Limits bounds each stream's backend resources (buffer bytes, pending
	// matches, Earley chart) and optionally carries the memory gauge
	// aggregate budgets read; the zero value is unlimited.
	Limits StreamLimits
}

// StreamLimits bounds one stream's backend resource consumption; see
// runtime.Limits for field semantics. A tripped bound ends only the
// offending stream, with a TagBatch.Err wrapping ErrResourceExhausted.
type StreamLimits = runtime.Limits

// MemGauge aggregates the pipeline's estimated live bytes — arenas,
// stream buffers, DFA cache, Earley charts — for memory budgeting.
type MemGauge = runtime.MemGauge

// ErrPipelineClosed is returned by Pipeline.Send, Pipeline.CloseStream and
// a second Pipeline.Close once the pipeline has been closed (test with
// errors.Is). A Send racing Close either enqueues fully — its batch is
// delivered before Close returns — or fails with this error; chunks are
// never partially accepted.
var ErrPipelineClosed = runtime.ErrClosed

// ErrStreamQuarantined is returned (wrapped, test with errors.Is) by Send
// and CloseStream for a key whose backend recently faulted and is still
// inside its quarantine window.
var ErrStreamQuarantined = runtime.ErrQuarantined

// ErrBackendPanic is the sentinel wrapped into a TagBatch.Err when the
// stream's backend panicked; the pipeline recovers the panic, ends the
// stream and quarantines its key.
var ErrBackendPanic = runtime.ErrBackendPanic

// ErrOverloaded is returned (wrapped, test with errors.Is) by Send in shed
// mode (PipelineConfig.SendTimeout != 0) when the stream's shard queue is
// at its high watermark: the chunk was rejected whole, the stream remains
// healthy, and the caller should back off and retry.
var ErrOverloaded = runtime.ErrOverloaded

// ErrResourceExhausted is the sentinel wrapped into a TagBatch.Err (and
// Send errors under a tenant memory budget) when a per-stream resource
// bound tripped: buffer bytes, pending matches or the Earley chart budget.
// The stream is ended and quarantined; other streams are unaffected.
var ErrResourceExhausted = runtime.ErrResourceExhausted

// ErrBackendStalled is the sentinel wrapped into a TagBatch.Err when a
// backend call outran PipelineConfig.FeedDeadline (the watchdog verdict).
var ErrBackendStalled = runtime.ErrBackendStalled

// ErrBreakerOpen is the sentinel wrapped into the DeadLetter error for
// batches shed by an open sink circuit breaker.
var ErrBreakerOpen = runtime.ErrBreakerOpen

// PermanentDeliverError marks an error returned by the deliver callback as
// permanent: the pipeline skips retries and dead-lettering and fails fast,
// surfacing the error from Err, Send and Close.
func PermanentDeliverError(err error) error { return runtime.PermanentError(err) }

// FaultStats aggregates the pipeline's fault-tolerance counters; read it
// from Metrics.Faults().
type FaultStats = runtime.FaultStats

// Pipeline fans a keyed stream population out over tagging shards: Send
// dispatches chunks by stream key, each shard runs one Backend per live
// stream, and completed tag batches are delivered — in per-stream order,
// serialized on a single goroutine — to the deliver callback. Send and
// CloseStream are safe for concurrent use.
type Pipeline struct {
	engine *Engine
	inner  *runtime.Pipeline
}

// NewPipeline starts a sharded pipeline delivering tag batches to deliver.
// The pipeline owns its goroutines until Close.
func (e *Engine) NewPipeline(cfg PipelineConfig, deliver func(*TagBatch) error) (*Pipeline, error) {
	f, err := e.factoryLimits(cfg.Backend, cfg.Limits)
	if err != nil {
		return nil, err
	}
	rcfg := runtime.Config{
		Shards:           cfg.Shards,
		Queue:            cfg.Queue,
		Factory:          f,
		MaxStreams:       cfg.MaxStreams,
		Quarantine:       cfg.Quarantine,
		SinkAttempts:     cfg.SinkAttempts,
		SinkBackoff:      cfg.SinkBackoff,
		BatchBytes:       cfg.BatchBytes,
		SinkWorkers:      cfg.SinkWorkers,
		SendTimeout:      cfg.SendTimeout,
		ShedHighWater:    cfg.ShedHighWater,
		FeedDeadline:     cfg.FeedDeadline,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
		Mem:              cfg.Limits.Mem,
	}
	if cfg.Metrics != nil {
		rcfg.Hooks = cfg.Metrics.Hooks()
	}
	if cfg.DeadLetter != nil {
		dl := cfg.DeadLetter
		rcfg.DeadLetter = func(b *runtime.Batch, err error) { dl(e.toTagBatch(b), err) }
	}
	sink := runtime.SinkFunc(func(b *runtime.Batch) error {
		return deliver(e.toTagBatch(b))
	})
	p, err := runtime.NewPipeline(rcfg, sink)
	if err != nil {
		return nil, err
	}
	return &Pipeline{engine: e, inner: p}, nil
}

// Send routes one chunk of the keyed stream to its shard. It blocks when
// the shard's queue is full (backpressure) and fails with
// ErrPipelineClosed after Close.
func (p *Pipeline) Send(stream string, data []byte) error { return p.inner.Send(stream, data) }

// CloseStream ends one stream: its backend is flushed and its final batch
// is delivered with EOS set.
func (p *Pipeline) CloseStream(stream string) error { return p.inner.CloseStream(stream) }

// Close flushes every open stream, stops the shards, and returns the first
// deliver error.
func (p *Pipeline) Close() error { return p.inner.Close() }

// Err reports the pipeline's permanent delivery failure, if any: non-nil
// once the deliver callback returned a PermanentDeliverError or exhausted
// its attempts with no DeadLetter configured. Send and Close return the
// same error from then on.
func (p *Pipeline) Err() error { return p.inner.Err() }

// Lexeme recovers the matched text of m from the input it was tagged in.
// The hardware reports only where a token ends; the lexeme is the longest
// suffix of input[:End+1] matching the token's pattern (exact for every
// deterministic token, and for the built-in grammars).
func (e *Engine) Lexeme(input []byte, m Match) string {
	in := e.spec.Instances[m.InstanceID]
	end := int(m.End) + 1
	if end > len(input) {
		return ""
	}
	n := in.Program.LongestSuffix(input[:end])
	if n <= 0 {
		return ""
	}
	return string(input[end-n : end])
}

// Lint reports non-fatal design smells in the compiled grammar (delimiter
// overlaps, encoder conflict sets, barely-constraining wiring).
func (e *Engine) Lint() []string { return e.spec.Lint() }

// FollowTable renders the per-terminal Follow sets (figure 10).
func (e *Engine) FollowTable() string { return e.spec.Sets.TerminalFollowTable() }

// Wiring renders the tokenizer instances and their Follow wiring
// (figure 11 in text form).
func (e *Engine) Wiring() string { return e.spec.DumpWiring() }
