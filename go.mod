module cfgtag

go 1.22
