package cfgtag_test

import (
	"fmt"

	"cfgtag"
)

// The quickstart: compile the paper's figure 9 grammar and tag a stream.
func ExampleCompile() {
	engine, err := cfgtag.Compile("demo", cfgtag.IfThenElseSource)
	if err != nil {
		panic(err)
	}
	tg := engine.NewTagger()
	tg.OnMatch = func(m cfgtag.Match) {
		fmt.Printf("%q at byte %d in context %s\n", m.Term, m.End, m.Context)
	}
	tg.Write([]byte("if true then go"))
	tg.Close()
	// Output:
	// "if" at byte 1 in context E[0]
	// "true" at byte 6 in context C[0]
	// "then" at byte 11 in context E[2]
	// "go" at byte 14 in context E[0]
}

// Context tells token types apart even when their texts match: a digit run
// is INT inside <i4> but would be STRING inside <string>.
func ExampleEngine_Lexeme() {
	engine, err := cfgtag.Compile("xmlrpc", cfgtag.XMLRPCSource)
	if err != nil {
		panic(err)
	}
	input := []byte("<methodCall> <methodName>deposit</methodName> <params> " +
		"<param> <i4>42</i4> </param> </params> </methodCall>")
	for _, m := range engine.NewTagger().Tag(input) {
		if m.Term == "INT" || m.Term == "STRING" {
			fmt.Printf("%s %q in %s\n", m.Term, engine.Lexeme(input, m), m.Context)
		}
	}
	// Output:
	// STRING "deposit" in methodName[1]
	// INT "42" in i4[1]
}

// Synthesize reproduces a table 1 row for any grammar.
func ExampleEngine_Synthesize() {
	engine, err := cfgtag.Compile("demo", cfgtag.BalancedParensSource)
	if err != nil {
		panic(err)
	}
	rep, err := engine.Synthesize(cfgtag.Virtex4LX200)
	if err != nil {
		panic(err)
	}
	fmt.Printf("pattern bytes: %d, registers ≥ pattern bytes: %v\n",
		rep.PatternBytes, rep.Registers >= rep.PatternBytes)
	fmt.Printf("throughput is 8×frequency: %v\n",
		rep.BandwidthGbps() == rep.FrequencyMHz*8/1000)
	// Output:
	// pattern bytes: 3, registers ≥ pattern bytes: true
	// throughput is 8×frequency: true
}

// The stack extension restores exact recognition over the stack-less
// engine's superset acceptance.
func ExampleEngine_NewCheckedTagger() {
	engine, err := cfgtag.Compile("parens", cfgtag.BalancedParensSource)
	if err != nil {
		panic(err)
	}
	for _, input := range []string{"( ( 0 ) )", "( 0 ) )"} {
		ct, err := engine.NewCheckedTagger(0)
		if err != nil {
			panic(err)
		}
		ct.Write([]byte(input))
		ct.Close()
		fmt.Printf("%-12q violations: %d\n", input, ct.Violations())
	}
	// Output:
	// "( ( 0 ) )"  violations: 0
	// "( 0 ) )"    violations: 1
}

// Error recovery (section 5.2) lets the engine resume after garbage.
func ExampleRecoverRestart() {
	engine, err := cfgtag.Compile("demo", cfgtag.IfThenElseSource, cfgtag.RecoverRestart())
	if err != nil {
		panic(err)
	}
	tg := engine.NewTagger()
	ms := tg.Tag([]byte("@@garbage@@ if true then stop"))
	fmt.Printf("recovered and tagged %d tokens after %d error events\n", len(ms), tg.Errors())
	// Output:
	// recovered and tagged 4 tokens after 9 error events
}
