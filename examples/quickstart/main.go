// Quickstart: compile the paper's if-then-else grammar (figure 9), inspect
// the Follow-set wiring it induces (figures 10 and 11), and tag a stream.
package main

import (
	"fmt"

	"cfgtag"
)

func main() {
	engine, err := cfgtag.Compile("if-then-else", cfgtag.IfThenElseSource)
	if err != nil {
		panic(err)
	}

	fmt.Println("Follow sets (figure 10):")
	fmt.Println(engine.FollowTable())

	fmt.Println("Tokenizer wiring (figure 11):")
	fmt.Println(engine.Wiring())

	input := "if true then if false then stop else go else stop"
	fmt.Printf("Tagging: %q\n", input)
	tg := engine.NewTagger()
	tg.OnMatch = func(m cfgtag.Match) {
		end := ""
		if m.SentenceEnd {
			end = "  <- a sentence may end here"
		}
		fmt.Printf("  byte %2d  %-8q context %-6s index %d%s\n", m.End, m.Term, m.Context, m.Index, end)
	}
	if _, err := tg.Write([]byte(input)); err != nil {
		panic(err)
	}
	tg.Close()

	// The engine keeps no stack (section 3.1): it accepts a superset of
	// the language. The LL(1) baseline parser — which does keep the stack
	// — tells the two apart.
	p, err := engine.NewParser()
	if err != nil {
		panic(err)
	}
	fmt.Println("\nStack-less engine vs true parser:")
	for _, s := range []string{"go", "if true then go else stop", "if true go"} {
		tagged := len(engine.NewTagger().Tag([]byte(s)))
		fmt.Printf("  %-28q  tagger: %d tokens tagged, LL(1) parser accepts: %v\n",
			s, tagged, p.Accepts([]byte(s)))
	}

	// All six execution paths — software tagger, lazy DFA, ahead-of-time
	// compiled tables, gate-level simulation of the generated hardware,
	// the LL(1) baseline, and the Earley exact-language oracle — run
	// behind one streaming Backend contract.
	fmt.Println("\nSame stream through every backend:")
	for _, kind := range []cfgtag.BackendKind{cfgtag.StreamBackend, cfgtag.DFABackend, cfgtag.AOTBackend, cfgtag.GatesBackend, cfgtag.ParserBackend, cfgtag.EarleyBackend} {
		b, err := engine.NewBackend(kind)
		if err != nil {
			panic(err)
		}
		if err := b.Feed([]byte(input)); err != nil {
			panic(err)
		}
		verdict := "accept"
		if err := b.Close(); err != nil {
			verdict = "reject"
		}
		c := b.Counters()
		fmt.Printf("  %-7s  %d bytes, %d matches, %s\n", kind, c.Bytes, c.Matches, verdict)
	}
}
