// Natural-language front end (section 5.1): the paper suggests using the
// architecture "for high-speed processing of natural languages ... by
// identifying words within their context". This example runs a small
// English fragment grammar and tags every word with its grammatical role —
// a streaming part-of-speech tagger built from the production positions.
package main

import (
	"fmt"

	"cfgtag"
)

const english = `
%%
sentence : np vp ;
np       : det nominal ;
det      : "the" | "a" ;
nominal  : "big" nominal | "old" nominal | noun ;
noun     : "dog" | "cat" | "router" | "packet" ;
vp       : verb object ;
verb     : "sees" | "routes" | "parses" ;
object   : | np ;
`

// role maps a production to a part-of-speech label.
var role = map[string]string{
	"det": "DET", "nominal": "ADJ", "noun": "NOUN", "verb": "VERB",
}

func main() {
	engine, err := cfgtag.Compile("english", english)
	if err != nil {
		panic(err)
	}
	sentences := []string{
		"the big old dog sees a cat",
		"a router routes the packet",
		"the cat parses",
	}
	tg := engine.NewTagger()
	for _, s := range sentences {
		fmt.Printf("%q\n", s)
		for _, m := range tg.Tag([]byte(s)) {
			prod := m.Context[:indexByte(m.Context, '[')]
			r, ok := role[prod]
			if !ok {
				r = prod
			}
			fmt.Printf("  %-8q %-5s (context %s)\n", m.Term, r, m.Context)
		}
	}

	// The stack extension grades grammaticality exactly (section 5.2). The
	// recovery option makes bytes the tagger cannot place visible as error
	// events, so out-of-place words count against the verdict too.
	checked, err := cfgtag.Compile("english", english, cfgtag.RecoverRestart())
	if err != nil {
		panic(err)
	}
	ct, err := checked.NewCheckedTagger(0)
	if err != nil {
		panic(err)
	}
	fmt.Println("\ngrammaticality (stack-checked):")
	for _, s := range []string{
		"the dog sees a cat", // fine
		"the dog the cat",    // two NPs, no verb
		"sees the dog",       // verb first
	} {
		ct.Reset()
		ct.Write([]byte(s))
		err := ct.Close()
		ok := err == nil && ct.Violations() == 0 && ct.Errors() == 0
		fmt.Printf("  %-22q grammatical: %v\n", s, ok)
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return len(s)
}
