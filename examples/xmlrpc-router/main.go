// XML-RPC content-based router (figure 12): generated methodCall traffic
// is switched to a bank or shopping "server" purely by the service name
// detected inside the methodName production — including a decoy message
// that carries a bank service name in the wrong context. The second half
// replays the scenario at scale: many concurrent connections tagged on a
// sharded pipeline, routed by one Sink.
package main

import (
	"fmt"
	"sort"
	"sync"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/router"
	"cfgtag/internal/runtime"
	"cfgtag/internal/xmlrpc"
)

func main() {
	r, err := router.New(router.FigureTwelve(), 99)
	if err != nil {
		panic(err)
	}
	portName := map[int]string{0: "bank", 1: "shopping", 99: "default"}
	r.OnRoute = func(port int, service string, message []byte) {
		fmt.Printf("  -> %-8s  service=%-10s %d bytes\n", portName[port], service, len(message))
	}

	gen := xmlrpc.NewGenerator(2026, xmlrpc.Options{})
	corpus, _ := gen.Corpus(8)
	fmt.Println("Routing 8 generated messages:")
	// The trailing newline lets the final message clear the one-byte
	// longest-match lookahead before the next section prints.
	if _, err := r.Write(append([]byte(corpus), '\n')); err != nil {
		panic(err)
	}

	// The paper's motivating case: "withdraw" as *parameter data* must not
	// steer the message — only the methodName occurrence counts, because
	// only the STRING tokenizer wired inside methodName reports it.
	decoy := "\n<methodCall> <methodName>price</methodName> <params> " +
		"<param> <string>withdraw</string> </param> </params> </methodCall>"
	fmt.Println("Routing a decoy (says 'withdraw', but only as a parameter):")
	if _, err := r.Write([]byte(decoy)); err != nil {
		panic(err)
	}
	if err := r.Close(); err != nil {
		panic(err)
	}

	st := r.Stats()
	fmt.Printf("\ntotals: %d messages — bank %d, shopping %d, default %d\n",
		st.Messages, st.PerPort[0], st.PerPort[1], st.PerPort[99])

	sharded()
}

// sharded is the replicated-hardware deployment in software: 8 concurrent
// connections feed chunks into a 4-shard pipeline (each connection pinned
// to one shard's tagger), and a single router.Sink consumes the tag
// batches and switches every message.
func sharded() {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		panic(err)
	}
	sink, err := router.NewSink(spec, "methodName", router.FigureTwelve(), 99)
	if err != nil {
		panic(err)
	}
	perConn := make(map[string]int)
	sink.OnRoute = func(stream string, port int, service string, message []byte) {
		perConn[stream]++
	}
	p, err := runtime.NewPipeline(runtime.Config{Shards: 4, Factory: runtime.TaggerFactory(spec)}, sink)
	if err != nil {
		panic(err)
	}

	const conns, perStream = 8, 5
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key := fmt.Sprintf("conn-%d", c)
			gen := xmlrpc.NewGenerator(int64(300+c), xmlrpc.Options{})
			corpus, _ := gen.Corpus(perStream)
			text := []byte(corpus + "\n")
			for lo := 0; lo < len(text); lo += 64 {
				hi := lo + 64
				if hi > len(text) {
					hi = len(text)
				}
				if err := p.Send(key, text[lo:hi]); err != nil {
					panic(err)
				}
			}
			p.CloseStream(key)
		}(c)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		panic(err)
	}

	fmt.Printf("\nSharded pipeline: %d connections x %d messages over 4 shards:\n", conns, perStream)
	keys := make([]string, 0, len(perConn))
	for k := range perConn {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s routed %d messages\n", k, perConn[k])
	}
	st := sink.Stats()
	fmt.Printf("totals: %d messages — bank %d, shopping %d (%d incomplete)\n",
		st.Messages, st.PerPort[0], st.PerPort[1], st.Incomplete)
}
