// XML-RPC content-based router (figure 12): generated methodCall traffic
// is switched to a bank or shopping "server" purely by the service name
// detected inside the methodName production — including a decoy message
// that carries a bank service name in the wrong context.
package main

import (
	"fmt"

	"cfgtag/internal/router"
	"cfgtag/internal/xmlrpc"
)

func main() {
	r, err := router.New(router.FigureTwelve(), 99)
	if err != nil {
		panic(err)
	}
	portName := map[int]string{0: "bank", 1: "shopping", 99: "default"}
	r.OnRoute = func(port int, service string, message []byte) {
		fmt.Printf("  -> %-8s  service=%-10s %d bytes\n", portName[port], service, len(message))
	}

	gen := xmlrpc.NewGenerator(2026, xmlrpc.Options{})
	corpus, _ := gen.Corpus(8)
	fmt.Println("Routing 8 generated messages:")
	// The trailing newline lets the final message clear the one-byte
	// longest-match lookahead before the next section prints.
	if _, err := r.Write(append([]byte(corpus), '\n')); err != nil {
		panic(err)
	}

	// The paper's motivating case: "withdraw" as *parameter data* must not
	// steer the message — only the methodName occurrence counts, because
	// only the STRING tokenizer wired inside methodName reports it.
	decoy := "\n<methodCall> <methodName>price</methodName> <params> " +
		"<param> <string>withdraw</string> </param> </params> </methodCall>"
	fmt.Println("Routing a decoy (says 'withdraw', but only as a parameter):")
	if _, err := r.Write([]byte(decoy)); err != nil {
		panic(err)
	}
	if err := r.Close(); err != nil {
		panic(err)
	}

	st := r.Stats()
	fmt.Printf("\ntotals: %d messages — bank %d, shopping %d, default %d\n",
		st.Messages, st.PerPort[0], st.PerPort[1], st.PerPort[99])
}
