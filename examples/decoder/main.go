// Parse-tree back end (section 5.1): "the parser could identify tokens to
// create a parse tree" — here the tree drives a real XML-RPC decoder that
// turns message text into typed Go values.
package main

import (
	"fmt"

	"cfgtag/internal/xmlrpc"
)

func main() {
	msg := "<methodCall> <methodName>transfer</methodName> <params> " +
		"<param> <struct> " +
		"<member> <name>from</name> <string>checking</string> </member> " +
		"<member> <name>to</name> <string>savings</string> </member> " +
		"<member> <name>amount</name> <double>125.50</double> </member> " +
		"</struct> </param> " +
		"<param> <array> <data> <i4>1</i4> <i4>2</i4> <i4>3</i4> </data> </array> </param> " +
		"</params> </methodCall>"

	call, err := xmlrpc.Decode([]byte(msg))
	if err != nil {
		panic(err)
	}
	fmt.Printf("method: %s\n", call.Method)
	for i, p := range call.Params {
		fmt.Printf("param %d (%s): %s\n", i, p.Kind, render(p))
	}

	// The decoder also digests arbitrary generated traffic.
	gen := xmlrpc.NewGenerator(7, xmlrpc.Options{})
	ok := 0
	for i := 0; i < 500; i++ {
		m, _ := gen.Message()
		if _, err := xmlrpc.Decode([]byte(m)); err == nil {
			ok++
		}
	}
	fmt.Printf("\ndecoded %d/500 generated messages\n", ok)
}

func render(v xmlrpc.Value) string {
	switch v.Kind {
	case xmlrpc.KindInt:
		return fmt.Sprint(v.Int)
	case xmlrpc.KindDouble:
		return fmt.Sprint(v.Double)
	case xmlrpc.KindString, xmlrpc.KindDateTime, xmlrpc.KindBase64:
		return fmt.Sprintf("%q", v.Text)
	case xmlrpc.KindStruct:
		out := "{"
		for _, k := range []string{"from", "to", "amount"} {
			if m, ok := v.Struct[k]; ok {
				out += fmt.Sprintf(" %s: %s", k, render(m))
			}
		}
		return out + " }"
	case xmlrpc.KindArray:
		out := "["
		for _, e := range v.Array {
			out += " " + render(e)
		}
		return out + " ]"
	default:
		return "?"
	}
}
