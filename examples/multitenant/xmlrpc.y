STRING   [a-zA-Z0-9]+
INT      [+-]?[0-9]+
DOUBLE   [+-]?[0-9]+\.[0-9]+
YEAR     [0-9][0-9][0-9][0-9]
MONTH    [0-9][0-9]
DAY      [0-9][0-9]
HOUR     [0-9][0-9]
MIN      [0-9][0-9]
SEC      [0-9][0-9]
BASE64   [+/=A-Za-z0-9]+
%%
methodCall : "<methodCall>" methodName params "</methodCall>" ;
methodName : "<methodName>" STRING "</methodName>" ;
params     : "<params>" param "</params>" ;
param      : | "<param>" value "</param>" param ;
value      : i4 | int | string | dateTime | double | base64 | struct | array ;
i4         : "<i4>" INT "</i4>" ;
int        : "<int>" INT "</int>" ;
string     : "<string>" STRING "</string>" ;
dateTime   : "<dateTime.iso8601>" YEAR MONTH DAY 'T' HOUR ':' MIN ':' SEC "</dateTime.iso8601>" ;
double     : "<double>" DOUBLE "</double>" ;
base64     : "<base64>" BASE64 "</base64>" ;
struct     : "<struct>" member member_list "</struct>" ;
member_list: | member member_list ;
member     : "<member>" name value "</member>" ;
name       : "<name>" STRING "</name>" ;
array      : "<array>" data "</array>" ;
data       : "<data>" value_list "</data>" ;
value_list : | value value_list ;
%%
