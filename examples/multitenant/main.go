// Multi-tenant platform: load a declarative config serving two grammars
// from one process, tag streams of both tenants concurrently, then
// hot-swap one tenant's grammar with zero downtime — a stream opened
// before the swap finishes on the old grammar while a new stream runs the
// new one, and the old factory version retires once it drains.
//
// Run from the repository root:
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"cfgtag"
)

func main() {
	data, err := os.ReadFile("examples/multitenant/platform.json")
	if err != nil {
		panic(err)
	}
	cfg, err := cfgtag.ParsePlatformConfig(data)
	if err != nil {
		panic(err)
	}

	// Track which streams have been seen and which have finished, so the
	// demo can sequence its phases on actual deliveries.
	var mu sync.Mutex
	seen := make(map[string]bool)
	eos := make(map[string]bool)
	p, err := cfgtag.NewPlatform(cfg, func(tenant string, b *cfgtag.TagBatch) error {
		mu.Lock()
		defer mu.Unlock()
		seen[b.Stream] = true
		if b.EOS {
			eos[b.Stream] = true
		}
		for _, m := range b.Tags {
			fmt.Printf("  %-5s %-11s v%d %8d  %-16q %s\n",
				tenant, b.Stream, b.Version, m.End, m.Term, m.Context)
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	defer p.Close()
	waitFor := func(m map[string]bool, stream string) {
		for {
			mu.Lock()
			ok := m[stream]
			mu.Unlock()
			if ok {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}

	fmt.Println("Two tenants, one process:")
	p.Send("xml", "conn-1", []byte("<methodCall> <methodName>deposit</methodName> <params> </params> </methodCall>"))
	p.Send("lang", "job-1", []byte("if true then go else stop"))
	p.CloseStream("xml", "conn-1")
	p.CloseStream("lang", "job-1")
	waitFor(eos, "conn-1")
	waitFor(eos, "job-1")

	// Open a stream and wait for its first batch to be delivered — the
	// stream has now bound factory version 1 — then reload the tenant's
	// grammar underneath it.
	p.Send("lang", "old-stream", []byte("if false then "))
	waitFor(seen, "old-stream")
	newGrammar := `
%%
E : "if" C "then" E "else" E | "run" | "halt" ;
C : "true" | "false" ;
`
	v, err := p.Reload("lang", newGrammar)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nReloaded tenant \"lang\" as version %d (go/stop became run/halt).\n", v)
	fmt.Println("The live stream still speaks the old grammar; a new one speaks the new:")

	p.Send("lang", "old-stream", []byte("go else stop"))
	p.CloseStream("lang", "old-stream")
	p.Send("lang", "new-stream", []byte("if true then run else halt"))
	p.CloseStream("lang", "new-stream")
	waitFor(eos, "old-stream")
	waitFor(eos, "new-stream")

	// The old version retires once old-stream's final batch is delivered.
	for {
		vs, err := p.LiveVersions("lang")
		if err != nil {
			panic(err)
		}
		if len(vs) == 1 {
			fmt.Printf("\nOld version retired; live versions: %v\n", vs)
			break
		}
		time.Sleep(time.Millisecond)
	}
}
