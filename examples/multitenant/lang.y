// Figure 9: if-then-else statement
%%
E : "if" C "then" E "else" E | "go" | "stop" ;
C : "true" | "false" ;
