// NIDS-flavored comparison (the paper's section 1 motivation): naive
// pattern matching fires on a signature string wherever it appears, while
// the grammar-driven tagger only fires where the protocol grammar says the
// string is meaningful — eliminating the false positives.
//
// The toy protocol: a session is a sequence of commands; "EXEC name" is
// dangerous, "LOG text" merely records text. The signature of interest is
// the command word "EXEC". Log *payloads* often contain the word EXEC —
// those are the false positives.
package main

import (
	"fmt"
	"strings"

	"cfgtag"
	"cfgtag/internal/match"
)

const protocolGrammar = `
NAME [a-zA-Z0-9_]+
%%
session : command session | command ;
command : exec | log ;
exec    : "EXEC" NAME ;
log     : "LOG" NAME ;
`

func main() {
	engine, err := cfgtag.Compile("protocol", protocolGrammar)
	if err != nil {
		panic(err)
	}

	// A conforming session: two real EXEC commands, plus LOG payloads that
	// merely mention EXEC.
	session := strings.Join([]string{
		"LOG starting",
		"EXEC payload1",
		"LOG EXEC", // payload says "EXEC" — not a command
		"LOG EXECUTED",
		"EXEC payload2",
		"LOG done",
	}, "\n")
	fmt.Println("session:")
	fmt.Println(session)

	// Naive matcher: every occurrence of the signature string.
	m, err := match.New([]string{"EXEC"})
	if err != nil {
		panic(err)
	}
	naive := m.Scan([]byte(session))

	// Context-aware tagger: only the "EXEC" terminal inside the exec
	// production.
	var contextual int
	tg := engine.NewTagger()
	tg.OnMatch = func(mt cfgtag.Match) {
		if mt.Term == "EXEC" {
			contextual++
		}
	}
	tg.Write([]byte(session))
	tg.Close()

	real := strings.Count(session, "\nEXEC") + boolToInt(strings.HasPrefix(session, "EXEC"))
	fmt.Printf("\nreal EXEC commands:            %d\n", real)
	fmt.Printf("naive pattern matcher fired:   %d  (%d false positives)\n", len(naive), len(naive)-real)
	fmt.Printf("grammar-based tagger fired:    %d  (%d false positives)\n", contextual, contextual-real)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
