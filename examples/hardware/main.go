// Hardware flow: generate the XML-RPC tagger design, synthesize it for
// both table 1 devices, cross-check the gate-level simulation against the
// software engine, and show a slice of the emitted VHDL.
package main

import (
	"fmt"
	"strings"

	"cfgtag"
)

func main() {
	engine, err := cfgtag.Compile("xml-rpc", cfgtag.XMLRPCSource)
	if err != nil {
		panic(err)
	}

	fmt.Println("Synthesis (table 1 rows for the figure 14 grammar):")
	v4, err := engine.Synthesize(cfgtag.Virtex4LX200)
	if err != nil {
		panic(err)
	}
	ve, err := engine.Synthesize(cfgtag.VirtexE2000)
	if err != nil {
		panic(err)
	}
	fmt.Println(" ", ve)
	fmt.Println(" ", v4)
	fmt.Println("\nLUT breakdown (Virtex-4):")
	fmt.Print(v4.BreakdownString())

	msg := "<methodCall> <methodName>buy</methodName> <params> " +
		"<param> <double>3.14</double> </param> </params> </methodCall>"
	gate, err := engine.NewGateRunner()
	if err != nil {
		panic(err)
	}
	hw := gate.Run([]byte(msg))
	sw := engine.NewTagger().Tag([]byte(msg))
	fmt.Printf("\nGate-level simulation vs software engine on a sample message:\n")
	fmt.Printf("  hardware detections: %d, software detections: %d, identical: %v\n",
		len(hw), len(sw), equal(hw, sw))

	src, err := engine.VHDL("xmlrpc_tagger")
	if err != nil {
		panic(err)
	}
	lines := strings.SplitN(src, "\n", 16)
	fmt.Printf("\nEmitted VHDL (%d bytes), first lines:\n", len(src))
	for _, l := range lines[:15] {
		fmt.Println(" ", l)
	}
}

func equal(a, b []cfgtag.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
