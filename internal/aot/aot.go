// Package aot executes a grammar through ahead-of-time compiled tables:
// the sixth execution path, and the software analogue of the paper's
// synthesized hardware.
//
// Where the lazy DFA (internal/stream) determinizes on demand — paying hash
// lookups, atomic loads and occasional locked fills on the hot path, and
// wholesale cache resets when the state bound overflows — an aot Program is
// the lazy construction run to closure offline (stream.Determinize) and
// flattened into contiguous []int32 tables. The runner's steady state is
// one byte-class lookup and one slice index per byte: no pointers chased,
// no atomics, no fills, no resets. The trade is compile-time work and a
// hard state budget: a grammar that does not close within MaxStates fails
// Compile and must run on the lazy path instead (DESIGN.md §6k).
//
// The same flattened tables feed GenGo, which bakes them into a generated
// self-contained Go package — the cfggen analogue of the VHDL emitted by
// internal/hwgen.
package aot

import (
	"fmt"

	"cfgtag/internal/core"
	"cfgtag/internal/stream"
)

// Config tunes ahead-of-time compilation.
type Config struct {
	// MaxStates bounds offline determinization (0 = the lazy path's
	// DefaultDFAMaxStates). Unlike the lazy cache bound, exceeding it is
	// a compile error, not a reset policy.
	MaxStates int
	// NoAccel disables skip-ahead acceleration plans (differential
	// testing and benchmarking; output is identical either way).
	NoAccel bool
}

// Program is an immutable, fully determinized tagger: flat transition
// tables plus the deduplicated effect list. One Program is safe for
// concurrent use by any number of Runners (it is read-only after Compile),
// so a platform compiles once per grammar version and mints runners per
// stream.
type Program struct {
	det     *stream.Det
	classOf [256]uint16
	nc      int // byte-equivalence classes
	nEff    int // effect count; references ^r >= nEff are conditional rows
	trans   []int32
	cond    []int32
	effects []stream.DetEffect
	accel   []*stream.DetAccel
}

// Compile builds spec's closed automaton offline. It fails when the
// grammar does not determinize within cfg.MaxStates states.
func Compile(spec *core.Spec, cfg Config) (*Program, error) {
	det, err := stream.Determinize(spec, stream.DetConfig{MaxStates: cfg.MaxStates, NoAccel: cfg.NoAccel})
	if err != nil {
		return nil, err
	}
	return FromDet(det), nil
}

// FromDet wraps an already determinized automaton as an executable
// Program (Compile = Determinize + FromDet).
func FromDet(det *stream.Det) *Program {
	return &Program{
		det:     det,
		classOf: det.ClassOf,
		nc:      det.NumClasses,
		nEff:    len(det.Effects),
		trans:   det.Trans,
		cond:    det.Cond,
		effects: det.Effects,
		accel:   det.Accel,
	}
}

// Det returns the underlying flattened automaton (the generator input).
func (p *Program) Det() *stream.Det { return p.det }

// Spec returns the specification the program was compiled from.
func (p *Program) Spec() *core.Spec { return p.det.Spec() }

// Stats reports the compile cost: states, classes, table bytes, duration.
func (p *Program) Stats() stream.CompileStats { return p.det.Stats }

// NewRunner mints an independent stream executor over the shared tables.
func (p *Program) NewRunner() *Runner {
	r := &Runner{p: p}
	r.Reset()
	return r
}

// Runner is a streaming token tagger over one input, equivalent byte for
// byte to the lazy DFA (and thus to Tagger) on the same input, but
// executing through the program's ahead-of-time tables. Not safe for
// concurrent use; mint one per stream.
type Runner struct {
	p *Program

	// OnMatch receives every detection in input order (identical to
	// Tagger.OnMatch on the same input).
	OnMatch func(stream.Match)
	// OnError receives section 5.2 recovery offsets, as Tagger.OnError.
	OnError func(pos int64)
	// OnCollision receives residual index collisions, as
	// Tagger.OnCollision.
	OnCollision func(pos int64, a, b int)

	// Errors and Collisions mirror Tagger's counters.
	Errors     int64
	Collisions int64

	cur       int
	pos       int64
	have      bool
	heldClass int
	closed    bool
}

// Program returns the shared compiled tables the runner executes against.
func (r *Runner) Program() *Program { return r.p }

// Reset rewinds to stream start for reuse. The tables are immutable and
// shared; reset cost is a few scalar stores.
func (r *Runner) Reset() {
	r.cur = int(r.p.det.Start)
	r.pos = 0
	r.have = false
	r.closed = false
	r.Errors = 0
	r.Collisions = 0
}

// Pos returns the number of bytes fully processed (confirmed, not merely
// buffered for lookahead).
func (r *Runner) Pos() int64 { return r.pos }

// Write feeds stream bytes; matches fire on OnMatch as they are confirmed
// (one byte of lookahead latency, exactly as Tagger and the lazy DFA).
//
// The loop is the whole point of the aot path: in steady state every byte
// is one classOf lookup and one trans index — no hash probes, no atomic
// loads, no lock fallback, because the automaton was closed offline.
func (r *Runner) Write(b []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("aot: Write after Close")
	}
	if len(b) == 0 {
		return 0, nil
	}
	i := 0
	pr := r.p
	classOf := &pr.classOf
	if !r.have {
		r.heldClass = int(classOf[b[0]])
		r.have = true
		i = 1
	}
	c := r.heldClass
	cur := r.cur
	pos := r.pos
	nc := pr.nc
	nEff := pr.nEff
	trans := pr.trans
	accel := pr.accel
	for ; i < len(b); i++ {
		// Skip-ahead: same plan, same re-entry protocol as the lazy DFA —
		// the byte before the first interesting lookahead re-enters the
		// normal path so conditional (figure 7) emissions see lookahead.
		if a := accel[cur]; a != nil && a.Boring[c] {
			if j := a.Scan(b, i); j > i {
				pos += int64(j - i)
				c = int(classOf[b[j-1]])
				i = j
				if i == len(b) {
					break
				}
			}
		}
		look := int(classOf[b[i]])
		ref := int(trans[cur*nc+c])
		if ref >= 0 {
			cur = ref
			pos++
			c = look
			continue
		}
		e := ^ref
		if e >= nEff {
			// Conditional edge: the restricted row picks by lookahead class.
			ref = int(pr.cond[(e-nEff)*(nc+1)+look])
			if ref >= 0 {
				cur = ref
				pos++
				c = look
				continue
			}
			e = ^ref
		}
		ef := &pr.effects[e]
		r.pos = pos
		r.deliver(ef)
		cur = int(ef.Next)
		pos++
		c = look
	}
	r.cur, r.pos = cur, pos
	r.heldClass = c
	return len(b), nil
}

// Close flushes the final byte (whose lookahead is end-of-stream) and
// prevents further writes.
func (r *Runner) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.have {
		r.step(r.heldClass, r.p.nc) // EOS lookahead slot
		r.have = false
	}
	return nil
}

// Tag runs a whole buffer through a fresh pass and returns the matches
// (Reset first, Close implied).
func (r *Runner) Tag(data []byte) []stream.Match {
	r.Reset()
	var out []stream.Match
	prev := r.OnMatch
	r.OnMatch = func(m stream.Match) { out = append(out, m) }
	defer func() { r.OnMatch = prev }()
	r.Write(data)
	r.Close()
	return out
}

// step advances one byte outside the hot loop (Close's EOS flush); c is
// the byte's equivalence class, look the lookahead class (p.nc at EOS).
func (r *Runner) step(c, look int) {
	p := r.p
	ref := int(p.trans[r.cur*p.nc+c])
	if ref < 0 {
		e := ^ref
		if e >= p.nEff {
			ref = int(p.cond[(e-p.nEff)*(p.nc+1)+look])
			if ref >= 0 {
				r.cur = ref
				r.pos++
				return
			}
			e = ^ref
		}
		ef := &p.effects[e]
		r.deliver(ef)
		r.cur = int(ef.Next)
		r.pos++
		return
	}
	r.cur = ref
	r.pos++
}

// deliver fires one effect's events at the current position: collision
// pairs (always against the cycle's first emission) interleaved before
// their matches, then the recovery event — the exact lazy-DFA ordering.
func (r *Runner) deliver(ef *stream.DetEffect) {
	if len(ef.Emits) > 0 {
		first := int(ef.Emits[0])
		for i, k := range ef.Emits {
			if ef.Collide[i] {
				r.Collisions++
				if r.OnCollision != nil {
					r.OnCollision(r.pos, first, int(k))
				}
			}
			if r.OnMatch != nil {
				r.OnMatch(stream.Match{InstanceID: int(k), End: r.pos})
			}
		}
	}
	if ef.Recovered {
		r.Errors++
		if r.OnError != nil {
			r.OnError(r.pos)
		}
	}
}
