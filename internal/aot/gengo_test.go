package aot

import (
	"bytes"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"cfgtag/internal/aot/goldengen"
	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

// goldenDet regenerates the flattened automaton exactly as the committed
// golden package was produced (cfggen -gen-go -grammar grammars/xmlrpc.y
// -free-running -package goldengen).
func goldenDet(t *testing.T) *stream.Det {
	t.Helper()
	src, err := os.ReadFile("../../grammars/xmlrpc.y")
	if err != nil {
		t.Fatal(err)
	}
	g, err := grammar.Parse("grammars/xmlrpc.y", string(src))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := core.Compile(g, core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	det, err := stream.Determinize(spec, stream.DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// TestGenGoGoldenCurrent regenerates the committed golden package and
// asserts byte identity: generated code can never drift from the live
// determinizer (the same check CI runs via git diff in codegen-check).
func TestGenGoGoldenCurrent(t *testing.T) {
	det := goldenDet(t)
	want, err := os.ReadFile("goldengen/goldengen.go")
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenGo(det, GenOptions{Package: "goldengen", Grammar: "grammars/xmlrpc.y"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("goldengen/goldengen.go is stale; regenerate with:\n" +
			"  go run ./cmd/cfggen -gen-go -grammar grammars/xmlrpc.y -free-running -package goldengen -o internal/aot/goldengen/goldengen.go")
	}
}

// TestGenGoDeterministic: the same Det must always render byte-identical
// source (no map iteration, no timestamps) or the CI diff gate flaps.
func TestGenGoDeterministic(t *testing.T) {
	det := goldenDet(t)
	a, err := GenGo(det, GenOptions{Package: "p", Grammar: "g"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenGo(det, GenOptions{Package: "p", Grammar: "g"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("GenGo output differs across runs on the same Det")
	}
}

// TestGoldenMatchesDFA runs the committed generated package against the
// lazy DFA on realistic XML-RPC traffic, junk bytes and random chunk
// splits: identical matches, identical counters.
func TestGoldenMatchesDFA(t *testing.T) {
	det := goldenDet(t)
	d := stream.NewDFA(det.Spec(), stream.DFAConfig{})
	gen := workload.NewGenerator(det.Spec(), 13, workload.SentenceOptions{MaxDepth: 8})
	rng := rand.New(rand.NewSource(77))
	var inputs [][]byte
	for i := 0; i < 8; i++ {
		text, _ := gen.Sentence()
		inputs = append(inputs, text)
		if len(text) > 2 {
			bad := append([]byte(nil), text...)
			bad[rng.Intn(len(bad))] = '@'
			inputs = append(inputs, bad)
		}
	}
	junk := make([]byte, 512)
	for i := range junk {
		junk[i] = byte(rng.Intn(256))
	}
	inputs = append(inputs, junk)

	g := goldengen.New()
	for trial, input := range inputs {
		want := d.Tag(input)
		// Whole-buffer pass.
		got := g.Tag(input)
		compareGolden(t, trial, "whole", got, want, g, d)
		// Chunk-straddling pass through the same Tagger.
		g.Reset()
		var chunked []goldengen.Match
		g.OnMatch = func(m goldengen.Match) { chunked = append(chunked, m) }
		for off := 0; off < len(input); {
			n := 1 + rng.Intn(9)
			if off+n > len(input) {
				n = len(input) - off
			}
			g.Write(input[off : off+n])
			off += n
		}
		g.Close()
		g.OnMatch = nil
		compareGolden(t, trial, "chunked", chunked, want, g, d)
	}
}

func compareGolden(t *testing.T, trial int, mode string, got []goldengen.Match, want []stream.Match, g *goldengen.Tagger, d *stream.DFA) {
	t.Helper()
	conv := make([]stream.Match, len(got))
	for i, m := range got {
		conv[i] = stream.Match{InstanceID: m.InstanceID, End: m.End}
	}
	if len(conv) == 0 && len(want) == 0 {
		// reflect.DeepEqual(nil, []T{}) is false; both empty is equal here.
	} else if !reflect.DeepEqual(conv, want) {
		t.Fatalf("trial %d (%s): golden %v, dfa %v", trial, mode, conv, want)
	}
	if g.Errors != d.Errors || g.Collisions != d.Collisions {
		t.Fatalf("trial %d (%s): golden counters (%d errs, %d coll), dfa (%d errs, %d coll)",
			trial, mode, g.Errors, g.Collisions, d.Errors, d.Collisions)
	}
}

// TestGenGoNeedsPackage covers the one generator usage error.
func TestGenGoNeedsPackage(t *testing.T) {
	if _, err := GenGo(goldenDet(t), GenOptions{}); err == nil {
		t.Fatal("GenGo without a package name succeeded")
	}
}
