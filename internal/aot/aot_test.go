package aot

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

func mustSpec(t *testing.T, g *grammar.Grammar, opts core.Options) *core.Spec {
	t.Helper()
	spec, err := core.Compile(g, opts)
	if err != nil {
		t.Fatalf("compile %s: %v", g.Name, err)
	}
	return spec
}

// optionMatrix mirrors the lazy DFA's sweep: the aot tables must track the
// NFA through every compile option that changes the mask tables.
func optionMatrix() map[string]core.Options {
	return map[string]core.Options{
		"default":     {},
		"free":        {FreeRunningStart: true},
		"restart":     {Recovery: core.RecoveryRestart},
		"resync":      {Recovery: core.RecoveryResync},
		"no-longest":  {NoLongestMatch: true},
		"all-enabled": {AllEnabled: true},
	}
}

// diffInputs builds a mixed corpus for one spec: conforming sentences,
// corrupted sentences, and raw random bytes.
func diffInputs(spec *core.Spec, seed int64, n int) [][]byte {
	gen := workload.NewGenerator(spec, seed, workload.SentenceOptions{MaxDepth: 6})
	rng := rand.New(rand.NewSource(seed * 31))
	var out [][]byte
	for i := 0; i < n; i++ {
		text, _ := gen.Sentence()
		out = append(out, text)
		if len(text) > 2 {
			bad := append([]byte(nil), text...)
			bad[rng.Intn(len(bad))] = '@'
			out = append(out, bad)
		}
		junk := make([]byte, rng.Intn(64))
		for j := range junk {
			junk[j] = byte(rng.Intn(256))
		}
		out = append(out, junk)
	}
	return out
}

// checkAgainstDFA asserts the aot runner and the lazy DFA agree bit for
// bit on one input: same matches, same recovery and collision counters.
func checkAgainstDFA(t *testing.T, d *stream.DFA, r *Runner, input []byte, label string) {
	t.Helper()
	want := d.Tag(input)
	got := r.Tag(input)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: aot matches differ on %q\naot %v\ndfa %v", label, input, got, want)
	}
	if r.Errors != d.Errors || r.Collisions != d.Collisions {
		t.Fatalf("%s: counters differ on %q: aot (%d errs, %d coll), dfa (%d errs, %d coll)",
			label, input, r.Errors, r.Collisions, d.Errors, d.Collisions)
	}
}

func TestRunnerMatchesDFAOnBuiltins(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(), grammar.IfThenElse(), grammar.XMLRPC(), grammar.XMLRPCFull(),
	} {
		for name, opts := range optionMatrix() {
			spec := mustSpec(t, g, opts)
			prog, err := Compile(spec, Config{})
			if err != nil {
				t.Fatalf("%s/%s: aot compile: %v", g.Name, name, err)
			}
			d := stream.NewDFA(spec, stream.DFAConfig{})
			r := prog.NewRunner()
			for i, input := range diffInputs(spec, 7, 6) {
				checkAgainstDFA(t, d, r, input, fmt.Sprintf("%s/%s/#%d", g.Name, name, i))
			}
		}
	}
}

func TestRunnerMatchesDFAOnRandomGrammars(t *testing.T) {
	seeds := 15
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		g := workload.RandomGrammar(seed)
		spec := mustSpec(t, g, core.Options{})
		prog, err := Compile(spec, Config{})
		if err != nil {
			// Random grammars may legitimately exceed the state budget;
			// those fall back to the lazy path by design.
			if strings.Contains(err.Error(), "does not close") {
				continue
			}
			t.Fatalf("seed %d: aot compile: %v", seed, err)
		}
		d := stream.NewDFA(spec, stream.DFAConfig{})
		r := prog.NewRunner()
		for i, input := range diffInputs(spec, seed+3, 4) {
			checkAgainstDFA(t, d, r, input, fmt.Sprintf("seed%d/#%d", seed, i))
		}
	}
}

// TestRunnerChunkingInvariance streams one input in random chunk sizes and
// asserts detections are identical to the whole-buffer pass — the held
// final byte and skip-ahead re-entry must not depend on chunk boundaries.
func TestRunnerChunkingInvariance(t *testing.T) {
	spec := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	prog, err := Compile(spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(spec, 5, workload.SentenceOptions{MaxDepth: 8})
	rng := rand.New(rand.NewSource(55))
	r := prog.NewRunner()
	for trial := 0; trial < 10; trial++ {
		text, _ := gen.Sentence()
		want := r.Tag(text)
		r.Reset()
		var got []stream.Match
		r.OnMatch = func(m stream.Match) { got = append(got, m) }
		for off := 0; off < len(text); {
			n := 1 + rng.Intn(9)
			if off+n > len(text) {
				n = len(text) - off
			}
			r.Write(text[off : off+n])
			off += n
		}
		r.Close()
		r.OnMatch = nil
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: chunked %v, whole %v", trial, got, want)
		}
	}
}

// accelInputs builds run-heavy inputs that park the automaton in
// accelerable states, as the lazy DFA's accel tests do.
func accelInputs(spec *core.Spec, seed int64) [][]byte {
	gen := workload.NewGenerator(spec, seed, workload.SentenceOptions{MaxDepth: 6})
	runs := [][]byte{
		[]byte(strings.Repeat(" ", 4096)),
		[]byte(strings.Repeat("\n", 2048)),
		[]byte(strings.Repeat("z", 4096)),
		[]byte(strings.Repeat("\xee", 2048)),
		[]byte(strings.Repeat("ab", 1024)),
	}
	var out [][]byte
	for _, run := range runs {
		a, _ := gen.Sentence()
		b, _ := gen.Sentence()
		var buf []byte
		buf = append(buf, run...)
		buf = append(buf, a...)
		buf = append(buf, run...)
		buf = append(buf, b...)
		buf = append(buf, run...)
		out = append(out, buf)
	}
	return out
}

// TestRunnerAccelMatchesUnaccelerated runs the option matrix over
// run-heavy inputs: accelerated aot == unaccelerated aot == lazy DFA.
func TestRunnerAccelMatchesUnaccelerated(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(), grammar.IfThenElse(), grammar.XMLRPC(), grammar.XMLRPCFull(),
	} {
		for name, opts := range optionMatrix() {
			spec := mustSpec(t, g, opts)
			acc, err := Compile(spec, Config{})
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", g.Name, name, err)
			}
			plain, err := Compile(spec, Config{NoAccel: true})
			if err != nil {
				t.Fatalf("%s/%s: compile noaccel: %v", g.Name, name, err)
			}
			d := stream.NewDFA(spec, stream.DFAConfig{})
			for i, input := range accelInputs(spec, 17) {
				label := fmt.Sprintf("%s/%s/run#%d", g.Name, name, i)
				checkAgainstDFA(t, d, acc.NewRunner(), input, label+"/accel")
				checkAgainstDFA(t, d, plain.NewRunner(), input, label+"/noaccel")
			}
		}
	}
}

// TestCompileBudget checks the hard offline bound: a grammar that does not
// close within MaxStates is a compile error, never a silent reset.
func TestCompileBudget(t *testing.T) {
	spec := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if _, err := Compile(spec, Config{MaxStates: 2}); err == nil {
		t.Fatal("Compile closed XML-RPC within 2 states; want budget error")
	} else if !strings.Contains(err.Error(), "does not close") {
		t.Fatalf("budget error = %v; want 'does not close within'", err)
	}
	prog, err := Compile(spec, Config{})
	if err != nil {
		t.Fatalf("default budget: %v", err)
	}
	if prog.Stats().States > stream.DefaultDFAMaxStates {
		t.Fatalf("closed in %d states, above the default bound", prog.Stats().States)
	}
}

// TestCompileStats sanity-checks the synthesis report every compile emits.
func TestCompileStats(t *testing.T) {
	spec := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	prog, err := Compile(spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stats()
	if st.States < 2 {
		t.Errorf("States = %d, want >= 2", st.States)
	}
	if st.Classes < 2 || st.Classes > 256 {
		t.Errorf("Classes = %d, want 2..256", st.Classes)
	}
	if st.TableBytes < st.States*st.Classes*4 {
		t.Errorf("TableBytes = %d, below the raw transition table %d", st.TableBytes, st.States*st.Classes*4)
	}
	if st.Duration <= 0 {
		t.Errorf("Duration = %v, want > 0", st.Duration)
	}
	det := prog.Det()
	if len(det.Trans) != st.States*st.Classes {
		t.Errorf("len(Trans) = %d, want states*classes = %d", len(det.Trans), st.States*st.Classes)
	}
	// Every reference must decode within bounds.
	check := func(r int32, restricted bool, where string) {
		switch {
		case r >= 0:
			if int(r) >= st.States {
				t.Fatalf("%s: plain ref %d out of %d states", where, r, st.States)
			}
		case int(^r) < len(det.Effects):
			// effect
		default:
			if restricted {
				t.Fatalf("%s: conditional ref inside a conditional row", where)
			}
			row := int(^r) - len(det.Effects)
			if (row+1)*(st.Classes+1) > len(det.Cond) {
				t.Fatalf("%s: cond row %d out of bounds", where, row)
			}
		}
	}
	for i, r := range det.Trans {
		check(r, false, fmt.Sprintf("Trans[%d]", i))
	}
	for i, r := range det.Cond {
		check(r, true, fmt.Sprintf("Cond[%d]", i))
	}
	for i, ef := range det.Effects {
		if int(ef.Next) >= st.States {
			t.Fatalf("Effects[%d].Next = %d out of %d states", i, ef.Next, st.States)
		}
		if len(ef.Collide) != len(ef.Emits) {
			t.Fatalf("Effects[%d]: %d collide flags for %d emits", i, len(ef.Collide), len(ef.Emits))
		}
	}
}

func TestRunnerWriteAfterClose(t *testing.T) {
	spec := mustSpec(t, grammar.IfThenElse(), core.Options{})
	prog, err := Compile(spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := prog.NewRunner()
	r.Write([]byte("go"))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := r.Write([]byte("x")); err == nil {
		t.Error("Write after Close succeeded")
	}
}

// TestRunnersShareProgram checks concurrent-mint safety cheaply: two
// runners over one Program produce identical independent results.
func TestRunnersShareProgram(t *testing.T) {
	spec := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	prog, err := Compile(spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(spec, 9, workload.SentenceOptions{MaxDepth: 6})
	text, _ := gen.Sentence()
	a, b := prog.NewRunner(), prog.NewRunner()
	if got, want := a.Tag(text), b.Tag(text); !reflect.DeepEqual(got, want) {
		t.Fatalf("sibling runners disagree: %v vs %v", got, want)
	}
}
