package core

import (
	"sort"
	"strings"
	"testing"

	"cfgtag/internal/grammar"
)

func compile(t *testing.T, g *grammar.Grammar, opts Options) *Spec {
	t.Helper()
	s, err := Compile(g, opts)
	if err != nil {
		t.Fatalf("Compile(%s): %v", g.Name, err)
	}
	return s
}

// instance finds the unique instance of a terminal within the production of
// the named nonterminal.
func instance(t *testing.T, s *Spec, term, lhs string) *Instance {
	t.Helper()
	var found *Instance
	for _, in := range s.Instances {
		if in.Term == term && s.Grammar.Rules[in.Rule].LHS == lhs {
			if found != nil {
				t.Fatalf("instance(%s in %s) ambiguous", term, lhs)
			}
			found = in
		}
	}
	if found == nil {
		t.Fatalf("instance(%s in %s) not found", term, lhs)
	}
	return found
}

func followTerms(s *Spec, in *Instance) []string {
	var out []string
	for _, f := range in.Follow {
		out = append(out, s.Instances[f].Term)
	}
	sort.Strings(out)
	return out
}

func TestIfThenElseWiring(t *testing.T) {
	// Figure 11: the tokenizer wiring for the if-then-else grammar.
	s := compile(t, grammar.IfThenElse(), Options{})
	// One instance per occurrence: if C then E else E | go | stop → 4
	// terminals in rule 0 (if, then, else ×1 each... if, then, else) plus
	// go, stop, true, false = 7 occurrences total.
	if len(s.Instances) != 7 {
		t.Fatalf("instances = %d, want 7\n%s", len(s.Instances), s.DumpWiring())
	}
	iff := instance(t, s, "if", "E")
	if got := followTerms(s, iff); !equal(got, []string{"false", "true"}) {
		t.Errorf("follow(if) = %v", got)
	}
	then := instance(t, s, "then", "E")
	if got := followTerms(s, then); !equal(got, []string{"go", "if", "stop"}) {
		t.Errorf("follow(then) = %v", got)
	}
	els := instance(t, s, "else", "E")
	if got := followTerms(s, els); !equal(got, []string{"go", "if", "stop"}) {
		t.Errorf("follow(else) = %v", got)
	}
	gox := instance(t, s, "go", "E")
	if got := followTerms(s, gox); !equal(got, []string{"else"}) {
		t.Errorf("follow(go) = %v", got)
	}
	if !gox.CanEnd {
		t.Error("go should be able to end the input")
	}
	tru := instance(t, s, "true", "C")
	if got := followTerms(s, tru); !equal(got, []string{"then"}) {
		t.Errorf("follow(true) = %v", got)
	}
	if tru.CanEnd {
		t.Error("true cannot end the input")
	}
	// Start instances: FIRST(E) = if, go, stop.
	var starts []string
	for _, id := range s.StartInstances {
		starts = append(starts, s.Instances[id].Term)
	}
	sort.Strings(starts)
	if !equal(starts, []string{"go", "if", "stop"}) {
		t.Errorf("start instances = %v", starts)
	}
}

func TestBalancedParensCollapse(t *testing.T) {
	// E -> ( E ) | 0. The recursion collapses: "(" is followed by "(" and
	// "0"; ")" by ")" (and end); "0" by ")" (and end).
	s := compile(t, grammar.BalancedParens(), Options{})
	open := instance(t, s, "(", "E")
	if got := followTerms(s, open); !equal(got, []string{"(", "0"}) {
		t.Errorf("follow(() = %v", got)
	}
	closeP := instance(t, s, ")", "E")
	if got := followTerms(s, closeP); !equal(got, []string{")"}) {
		t.Errorf("follow()) = %v", got)
	}
	if !closeP.CanEnd {
		t.Error(") should end input")
	}
	zero := instance(t, s, "0", "E")
	if got := followTerms(s, zero); !equal(got, []string{")"}) {
		t.Errorf("follow(0) = %v", got)
	}
	if !zero.CanEnd {
		t.Error("0 should end input (bare \"0\" is a sentence)")
	}
}

func TestContextDuplication(t *testing.T) {
	// STRING is used in three XML-RPC contexts: methodName, string, name.
	s := compile(t, grammar.XMLRPC(), Options{})
	var contexts []string
	for _, in := range s.Instances {
		if in.Term == "STRING" {
			contexts = append(contexts, s.Grammar.Rules[in.Rule].LHS)
		}
	}
	sort.Strings(contexts)
	if !equal(contexts, []string{"methodName", "name", "string"}) {
		t.Errorf("STRING contexts = %v", contexts)
	}
	// Each STRING instance is followed only by its own closing tag.
	mn := instance(t, s, "STRING", "methodName")
	if got := followTerms(s, mn); !equal(got, []string{"</methodName>"}) {
		t.Errorf("follow(STRING@methodName) = %v", got)
	}
	nm := instance(t, s, "STRING", "name")
	if got := followTerms(s, nm); !equal(got, []string{"</name>"}) {
		t.Errorf("follow(STRING@name) = %v", got)
	}
}

func TestNoContextDuplication(t *testing.T) {
	s := compile(t, grammar.XMLRPC(), Options{NoContextDuplication: true})
	if len(s.Instances) != len(s.Grammar.Tokens) {
		t.Fatalf("instances = %d, want one per token (%d)", len(s.Instances), len(s.Grammar.Tokens))
	}
	// STRING's single instance merges all three contexts.
	var str *Instance
	for _, in := range s.Instances {
		if in.Term == "STRING" {
			str = in
		}
	}
	if got := followTerms(s, str); !equal(got, []string{"</methodName>", "</name>", "</string>"}) {
		t.Errorf("follow(STRING) = %v", got)
	}
}

func TestXMLRPCSpecShape(t *testing.T) {
	s := compile(t, grammar.XMLRPC(), Options{})
	// Exactly one start instance: <methodCall>.
	if len(s.StartInstances) != 1 || s.Instances[s.StartInstances[0]].Term != "<methodCall>" {
		t.Errorf("start instances wrong: %v", s.StartInstances)
	}
	// Only </methodCall> can end the document.
	for _, in := range s.Instances {
		if in.CanEnd != (in.Term == "</methodCall>") {
			t.Errorf("CanEnd(%s@%s) = %v", in.Term, in.Context(s.Grammar), in.CanEnd)
		}
	}
	// The corrected figure 14 grammar has no encoder conflicts: every
	// simultaneous-enable group is pairwise language-disjoint.
	if len(s.ConflictSets) != 0 {
		t.Errorf("unexpected conflict sets: %v\n%s", s.ConflictSets, s.DumpWiring())
	}
	// All indices distinct and nonzero.
	seen := map[int]bool{}
	for _, in := range s.Instances {
		if in.Index == 0 {
			t.Errorf("instance %d has reserved index 0", in.ID)
		}
		if seen[in.Index] {
			t.Errorf("duplicate index %d", in.Index)
		}
		seen[in.Index] = true
		if in.Index >= 1<<s.IndexBits {
			t.Errorf("index %d exceeds %d bits", in.Index, s.IndexBits)
		}
	}
	// Pattern bytes with duplication exceed the grammar's raw count.
	if s.PatternBytes() <= s.Grammar.PatternBytes() {
		t.Errorf("instance pattern bytes %d should exceed grammar's %d (contexts duplicate)",
			s.PatternBytes(), s.Grammar.PatternBytes())
	}
}

func TestConflictDetection(t *testing.T) {
	// NUM and WORD overlap on digit strings and are enabled together at
	// start → one conflict set holding both, with WORD (enabled by the
	// tie-break on equal lengths? both are 1-position classes) resolved by
	// nested indices.
	g, err := grammar.Parse("amb", `
NUM  [0-9]+
WORD [a-z0-9]+
%%
S : NUM | WORD ;
`)
	if err != nil {
		t.Fatal(err)
	}
	s := compile(t, g, Options{})
	if len(s.ConflictSets) != 1 || len(s.ConflictSets[0]) != 2 {
		t.Fatalf("conflict sets = %v", s.ConflictSets)
	}
	set := s.ConflictSets[0]
	lo, hi := s.Instances[set[0]].Index, s.Instances[set[1]].Index
	if lo|hi != hi {
		t.Errorf("equation 5 violated: %b | %b != %b", lo, hi, hi)
	}
}

func TestConflictEquation5Chain(t *testing.T) {
	// Three-way overlap: all of A ⊂ B ⊂ C classes can match "0".
	g, err := grammar.Parse("amb3", `
A [0-9]+
B [0-9a-f]+
C [0-9a-z]+
%%
S : A | B | C ;
`)
	if err != nil {
		t.Fatal(err)
	}
	s := compile(t, g, Options{})
	if len(s.ConflictSets) != 1 || len(s.ConflictSets[0]) != 3 {
		t.Fatalf("conflict sets = %v", s.ConflictSets)
	}
	set := s.ConflictSets[0]
	// Ascending priority: every pair must OR to the higher one.
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			a, b := s.Instances[set[i]].Index, s.Instances[set[j]].Index
			if a|b != b {
				t.Errorf("equation 5 violated between ranks %d,%d: %b|%b != %b", i, j, a, b, b)
			}
		}
	}
}

func TestConflictPriorityPrefersLongerPattern(t *testing.T) {
	// "iff" and ID can both match "iff"; the longer literal must win.
	g, err := grammar.Parse("kw", `
ID [a-z]+
%%
S : "iff" | ID ;
`)
	if err != nil {
		t.Fatal(err)
	}
	s := compile(t, g, Options{})
	if len(s.ConflictSets) != 1 {
		t.Fatalf("conflicts = %v", s.ConflictSets)
	}
	set := s.ConflictSets[0]
	top := s.Instances[set[len(set)-1]]
	if top.Term != "iff" {
		t.Errorf("highest priority = %q, want the longer literal \"iff\"", top.Term)
	}
}

func TestNullableTokenRejected(t *testing.T) {
	g, err := grammar.Parse("null", "A a*\n%%\nS : A ;\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(g, Options{}); err == nil || !strings.Contains(err.Error(), "empty string") {
		t.Errorf("nullable token: err = %v", err)
	}
}

func TestBadDelimRejected(t *testing.T) {
	g, err := grammar.Parse("baddelim", "%delim ab\n%%\nS : \"x\" ;\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(g, Options{}); err == nil || !strings.Contains(err.Error(), "single character class") {
		t.Errorf("multi-char delim: err = %v", err)
	}
}

func TestAllEnabledOption(t *testing.T) {
	s := compile(t, grammar.IfThenElse(), Options{AllEnabled: true, NoContextDuplication: true})
	for _, in := range s.Instances {
		if !in.Start {
			t.Errorf("instance %d not start-enabled under AllEnabled", in.ID)
		}
		if len(in.Follow) != len(s.Instances) {
			t.Errorf("instance %d follow = %d, want all %d", in.ID, len(in.Follow), len(s.Instances))
		}
	}
}

func TestEnablers(t *testing.T) {
	s := compile(t, grammar.IfThenElse(), Options{})
	en := s.Enablers()
	// "true" is enabled exactly by "if".
	tru := instance(t, s, "true", "C")
	if len(en[tru.ID]) != 1 || s.Instances[en[tru.ID][0]].Term != "if" {
		t.Errorf("enablers(true) = %v", en[tru.ID])
	}
}

func TestNestedEndPropagation(t *testing.T) {
	// S : A ; A : B ; B : "x" ;  — "x" ends the input through two levels.
	g, err := grammar.Parse("nest", "%%\nS : A ;\nA : B ;\nB : \"x\" ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s := compile(t, g, Options{})
	x := s.Instances[0]
	if !x.CanEnd {
		t.Error("CanEnd should propagate through nested nonterminals")
	}
	if !x.Start {
		t.Error("Start should propagate through nested nonterminals")
	}
}

func TestTrailingNullableFollow(t *testing.T) {
	// S : "a" OptB "c" ; OptB : | "b" ;
	// "a" is followed by {b, c}; "b" by {c}.
	g, err := grammar.Parse("optmid", "%%\nS : \"a\" OptB \"c\" ;\nOptB : | \"b\" ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s := compile(t, g, Options{})
	a := instance(t, s, "a", "S")
	if got := followTerms(s, a); !equal(got, []string{"b", "c"}) {
		t.Errorf("follow(a) = %v", got)
	}
	b := instance(t, s, "b", "OptB")
	if got := followTerms(s, b); !equal(got, []string{"c"}) {
		t.Errorf("follow(b) = %v", got)
	}
}

func TestIndexBitsOption(t *testing.T) {
	g := grammar.IfThenElse()
	s := compile(t, g, Options{IndexBits: 8})
	if s.IndexBits != 8 {
		t.Errorf("IndexBits = %d, want 8", s.IndexBits)
	}
	if _, err := Compile(g, Options{IndexBits: 2}); err == nil {
		t.Error("2 bits cannot address 7 instances; want error")
	}
}

func TestInstanceByIndex(t *testing.T) {
	s := compile(t, grammar.IfThenElse(), Options{})
	for _, in := range s.Instances {
		if got := s.InstanceByIndex(in.Index); got != in {
			t.Errorf("InstanceByIndex(%d) = %v", in.Index, got)
		}
	}
	if s.InstanceByIndex(0) != nil {
		t.Error("index 0 should map to no instance")
	}
}

func TestContextString(t *testing.T) {
	s := compile(t, grammar.XMLRPC(), Options{})
	mn := instance(t, s, "STRING", "methodName")
	if got := mn.Context(s.Grammar); got != "methodName[1]" {
		t.Errorf("Context = %q", got)
	}
	s2 := compile(t, grammar.XMLRPC(), Options{NoContextDuplication: true})
	if got := s2.Instances[0].Context(s2.Grammar); got != s2.Instances[0].Term {
		t.Errorf("Context without duplication = %q", got)
	}
}

func TestDOT(t *testing.T) {
	s := compile(t, grammar.IfThenElse(), Options{})
	d := s.DOT()
	for _, want := range []string{
		"digraph wiring",
		"start [shape=plaintext",
		"peripheries=2", // go/stop can end the sentence
		`label="if\n`,   // node labels carry terminal + context
		"start -> n",    // start arrows
		"-> n",          // follow edges
	} {
		if !strings.Contains(d, want) {
			t.Errorf("DOT missing %q:\n%s", want, d)
		}
	}
	// Edge count = sum of follow list lengths + start arrows.
	edges := 0
	for _, in := range s.Instances {
		edges += len(in.Follow)
	}
	edges += len(s.StartInstances)
	if got := strings.Count(d, "->"); got != edges {
		t.Errorf("DOT edges = %d, want %d", got, edges)
	}
	// Quotes in terminal names must be escaped.
	g2, err := grammar.Parse("q", "%%\nS : '\"' ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s2 := compile(t, g2, Options{})
	if !strings.Contains(s2.DOT(), `\"`) {
		t.Error("quote terminal not escaped in DOT")
	}
}

func TestSpecString(t *testing.T) {
	s := compile(t, grammar.IfThenElse(), Options{})
	str := s.String()
	if !strings.Contains(str, "7 instances") {
		t.Errorf("String() = %q", str)
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
