// Package core implements the paper's primary contribution: compiling a
// context-free grammar into the specification of a parallel token-tagging
// engine — the set of tokenizer instances, the syntactic control flow
// wiring between them (derived from the First and Follow sets of figure 8),
// the delimiter class, and the index-encoder assignment.
//
// The compiled Spec is backend-neutral: internal/hwgen lowers it to a
// gate-level netlist (the paper's VHDL), and internal/stream executes it
// directly as a bit-parallel software engine. Both backends implement the
// same stream semantics:
//
//   - A tokenizer instance is one occurrence of a terminal in the
//     production list. Terminals used in several contexts are duplicated
//     (section 3.2), so the asserted instance identifies the token's
//     grammatical context.
//   - An instance becomes pending when some instance in whose Follow set it
//     appears completes, or — for instances in First(start) — at stream
//     start. Pending survives delimiter bytes (the inverted-delimiter
//     enable of section 3.2) and is consumed by the first non-delimiter
//     byte.
//   - An instance completes at input position i when its pattern automaton
//     reaches an accepting position at i and, under longest-match, the byte
//     at i+1 cannot extend the match (figure 7 lookahead).
//   - The engine keeps no recursion stack: the wiring collapses the
//     push-down automaton into a finite state automaton accepting a
//     superset of the grammar (section 3.1, figure 2).
package core

import (
	"fmt"
	"sort"
	"strings"

	"cfgtag/internal/firstfollow"
	"cfgtag/internal/grammar"
	"cfgtag/internal/regex"
)

// Instance is one tokenizer: an occurrence of a terminal in a production
// (or, with context duplication disabled, a whole terminal).
type Instance struct {
	// ID is the instance's index in Spec.Instances.
	ID int
	// Term is the terminal name this instance recognizes.
	Term string
	// TokenIndex is the terminal's position in the grammar token list.
	TokenIndex int
	// Rule and Pos locate the occurrence: Spec.Grammar.Rules[Rule].RHS[Pos].
	// They are -1 when context duplication is disabled.
	Rule, Pos int
	// Program is the compiled pattern automaton shared by all instances of
	// the same terminal.
	Program *regex.Program
	// Follow lists the instance IDs whose tokenizers are enabled when this
	// instance completes — the hardware wiring of figure 11.
	Follow []int
	// Start marks instances enabled at the beginning of the stream
	// (First(start symbol), section 3.3).
	Start bool
	// CanEnd marks instances that may be the last token of a sentence
	// (the ε entries of figure 10); the back-end uses it as a message
	// boundary signal.
	CanEnd bool
	// Index is the value emitted by the token index encoder when this
	// instance completes. Within a conflict set the assignment satisfies
	// equation 5, so simultaneous detections OR into the highest-priority
	// index.
	Index int
}

// Context renders the grammatical context of the instance, e.g.
// "methodName[1]" for the second symbol of the methodName production. This
// is the "meaning" the paper's tagger attaches to a detection.
func (in *Instance) Context(g *grammar.Grammar) string {
	if in.Rule < 0 {
		return in.Term
	}
	return fmt.Sprintf("%s[%d]", g.Rules[in.Rule].LHS, in.Pos)
}

// Options tune the compilation; the zero value selects the paper's design
// (context duplication on, longest match on, anchored start).
type Options struct {
	// NoContextDuplication builds one tokenizer per terminal instead of
	// one per occurrence and wires the terminal-level Follow sets. This is
	// the ablation showing what context duplication buys.
	NoContextDuplication bool
	// NoLongestMatch drops the figure 7 lookahead so +/* tokenizers assert
	// on every cycle of a run instead of only the last.
	NoLongestMatch bool
	// FreeRunningStart keeps the start tokenizers enabled at all times so
	// the engine looks for sentences starting at every token boundary
	// (section 3.3's alternative for unanchored data).
	FreeRunningStart bool
	// AllEnabled wires every tokenizer to be pending at all times,
	// discarding the syntactic control flow. This is the "naive pattern
	// matcher" ablation quantifying what the Follow wiring buys.
	AllEnabled bool
	// IndexBits fixes the encoder output width; 0 derives the minimum
	// width covering all instances (and conflict priorities).
	IndexBits int
	// Recovery selects the error detection and recovery behavior of the
	// paper's future-work section 5.2 ("gracefully recover from errors
	// when the input data doesn't match the grammar ... continue
	// processing from the point of the error").
	Recovery RecoveryMode
}

// RecoveryMode enumerates the section 5.2 error-recovery policies.
type RecoveryMode uint8

const (
	// RecoveryNone is the paper's baseline: once the engine goes dead (no
	// active chain, no pending tokenizer) it stays dead.
	RecoveryNone RecoveryMode = iota
	// RecoveryRestart re-arms the start tokenizers when the engine goes
	// dead, so the next sentence after the error is tagged.
	RecoveryRestart
	// RecoveryResync re-arms every tokenizer when the engine goes dead,
	// resuming mid-structure right after the damaged token.
	RecoveryResync
)

func (m RecoveryMode) String() string {
	switch m {
	case RecoveryNone:
		return "none"
	case RecoveryRestart:
		return "restart"
	case RecoveryResync:
		return "resync"
	default:
		return fmt.Sprintf("RecoveryMode(%d)", uint8(m))
	}
}

// Spec is the compiled tagging engine description.
type Spec struct {
	Grammar *grammar.Grammar
	Sets    *firstfollow.Sets
	Opts    Options
	// Instances in deterministic order: by rule, then position (with
	// duplication), or token-list order (without).
	Instances []*Instance
	// Programs holds one compiled automaton per grammar token, indexed
	// like Grammar.Tokens.
	Programs []*regex.Program
	// Delim is the delimiter byte class.
	Delim regex.ByteClass
	// StartInstances lists the IDs with Start set, ascending.
	StartInstances []int
	// ConflictSets groups instance IDs that may assert simultaneously and
	// therefore received equation 5 priority indices (higher priority
	// later in the slice).
	ConflictSets [][]int
	// IndexBits is the encoder output width in bits.
	IndexBits int
}

// Compile builds the tagging-engine specification for a grammar.
func Compile(g *grammar.Grammar, opts Options) (*Spec, error) {
	s := &Spec{Grammar: g, Sets: firstfollow.Compute(g), Opts: opts}
	if err := s.compilePrograms(); err != nil {
		return nil, err
	}
	if err := s.compileDelim(); err != nil {
		return nil, err
	}
	if opts.NoContextDuplication {
		s.buildTerminalInstances()
	} else {
		s.buildOccurrenceInstances()
	}
	if opts.AllEnabled {
		all := make([]int, len(s.Instances))
		for i, in := range s.Instances {
			all[i] = in.ID
			in.Start = true
		}
		for _, in := range s.Instances {
			in.Follow = append([]int(nil), all...)
		}
		s.StartInstances = all
	}
	if err := s.assignIndices(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Spec) compilePrograms() error {
	s.Programs = make([]*regex.Program, len(s.Grammar.Tokens))
	for i, t := range s.Grammar.Tokens {
		p, err := regex.Compile(t.Pattern)
		if err != nil {
			return fmt.Errorf("core: token %q: %w", t.Name, err)
		}
		if p.Nullable {
			return fmt.Errorf("core: token %q: pattern %q matches the empty string; tokens must consume at least one byte", t.Name, t.Pattern)
		}
		s.Programs[i] = p
	}
	return nil
}

func (s *Spec) compileDelim() error {
	p, err := regex.Compile(s.Grammar.DelimPattern)
	if err != nil {
		return fmt.Errorf("core: delimiter pattern: %w", err)
	}
	if p.Len() != 1 {
		return fmt.Errorf("core: delimiter pattern %q must be a single character class", s.Grammar.DelimPattern)
	}
	s.Delim = p.Classes[0]
	return nil
}

// buildTerminalInstances creates one instance per terminal and wires the
// symbol-level Follow sets (figure 10 exactly, no duplication).
func (s *Spec) buildTerminalInstances() {
	byTerm := make(map[string]*Instance, len(s.Grammar.Tokens))
	for i, t := range s.Grammar.Tokens {
		in := &Instance{
			ID:         len(s.Instances),
			Term:       t.Name,
			TokenIndex: i,
			Rule:       -1,
			Pos:        -1,
			Program:    s.Programs[i],
			CanEnd:     s.Sets.CanEnd(t.Name),
		}
		byTerm[t.Name] = in
		s.Instances = append(s.Instances, in)
	}
	for _, in := range s.Instances {
		for _, f := range s.Sets.Follow(in.Term) {
			if f == firstfollow.End {
				continue
			}
			in.Follow = append(in.Follow, byTerm[f].ID)
		}
	}
	for _, t := range s.Sets.StartTerminals() {
		in := byTerm[t]
		in.Start = true
		s.StartInstances = append(s.StartInstances, in.ID)
	}
}

// occKey locates a terminal occurrence in the production list.
type occKey struct{ rule, pos int }

// buildOccurrenceInstances creates one instance per terminal occurrence and
// computes the occurrence-level Follow wiring: the First/Follow fixpoint of
// figure 8 lifted from symbols to occurrences, which realizes the paper's
// context duplication.
func (s *Spec) buildOccurrenceInstances() {
	g := s.Grammar
	byOcc := make(map[occKey]*Instance)
	for ri, r := range g.Rules {
		for pi, sym := range r.RHS {
			if sym.Kind != grammar.Terminal {
				continue
			}
			ti := g.TokenIndex(sym.Name)
			in := &Instance{
				ID:         len(s.Instances),
				Term:       sym.Name,
				TokenIndex: ti,
				Rule:       ri,
				Pos:        pi,
				Program:    s.Programs[ti],
			}
			byOcc[occKey{ri, pi}] = in
			s.Instances = append(s.Instances, in)
		}
	}

	// firstOcc(nt) = occurrences that can begin a string derived from nt.
	firstOcc := make(map[string]map[int]bool)
	for _, nt := range g.NonTerminals() {
		firstOcc[nt] = make(map[int]bool)
	}
	firstOccSeq := func(ri int, from int) map[int]bool {
		out := make(map[int]bool)
		r := g.Rules[ri]
		for pi := from; pi < len(r.RHS); pi++ {
			sym := r.RHS[pi]
			if sym.Kind == grammar.Terminal {
				out[byOcc[occKey{ri, pi}].ID] = true
				return out
			}
			for id := range firstOcc[sym.Name] {
				out[id] = true
			}
			if !s.Sets.Nullable(sym.Name) {
				return out
			}
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for ri, r := range g.Rules {
			set := firstOcc[r.LHS]
			for id := range firstOccSeq(ri, 0) {
				if !set[id] {
					set[id] = true
					changed = true
				}
			}
		}
	}

	// followOccNT(nt) = occurrences that can immediately follow nt, plus a
	// can-end bit when nt can end a sentence.
	type followInfo struct {
		occs   map[int]bool
		canEnd bool
	}
	followNT := make(map[string]*followInfo)
	for _, nt := range g.NonTerminals() {
		followNT[nt] = &followInfo{occs: make(map[int]bool)}
	}
	followNT[g.Start].canEnd = true
	for changed := true; changed; {
		changed = false
		for ri, r := range g.Rules {
			for pi, sym := range r.RHS {
				if sym.Kind != grammar.NonTerminal {
					continue
				}
				fi := followNT[sym.Name]
				for id := range firstOccSeq(ri, pi+1) {
					if !fi.occs[id] {
						fi.occs[id] = true
						changed = true
					}
				}
				if restNullable(s, ri, pi+1) {
					parent := followNT[r.LHS]
					for id := range parent.occs {
						if !fi.occs[id] {
							fi.occs[id] = true
							changed = true
						}
					}
					if parent.canEnd && !fi.canEnd {
						fi.canEnd = true
						changed = true
					}
				}
			}
		}
	}

	// Wire each occurrence: Follow = firstOcc of the rest of its rule,
	// plus Follow(LHS) when the rest is nullable.
	for _, in := range s.Instances {
		set := firstOccSeq(in.Rule, in.Pos+1)
		if restNullable(s, in.Rule, in.Pos+1) {
			fi := followNT[g.Rules[in.Rule].LHS]
			for id := range fi.occs {
				set[id] = true
			}
			in.CanEnd = fi.canEnd
		}
		in.Follow = sortedIDs(set)
	}
	for id := range firstOcc[g.Start] {
		s.Instances[id].Start = true
	}
	for _, in := range s.Instances {
		if in.Start {
			s.StartInstances = append(s.StartInstances, in.ID)
		}
	}
	sort.Ints(s.StartInstances)
}

// restNullable reports whether RHS[from:] of the rule derives ε.
func restNullable(s *Spec, ri, from int) bool {
	r := s.Grammar.Rules[ri]
	for pi := from; pi < len(r.RHS); pi++ {
		sym := r.RHS[pi]
		if sym.Kind == grammar.Terminal || !s.Sets.Nullable(sym.Name) {
			return false
		}
	}
	return true
}

func sortedIDs(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// NumInstances returns the number of tokenizer instances.
func (s *Spec) NumInstances() int { return len(s.Instances) }

// InstanceAt returns the instance for a terminal occurrence (rule index,
// RHS position), or nil. With NoContextDuplication it resolves to the
// terminal's single instance.
func (s *Spec) InstanceAt(rule, pos int) *Instance {
	sym := s.Grammar.Rules[rule].RHS[pos]
	if sym.Kind != grammar.Terminal {
		return nil
	}
	for _, in := range s.Instances {
		if s.Opts.NoContextDuplication {
			if in.Term == sym.Name {
				return in
			}
			continue
		}
		if in.Rule == rule && in.Pos == pos {
			return in
		}
	}
	return nil
}

// PatternBytes returns the total pattern positions across all instances —
// the hardware area unit (each position is one pipeline register stage).
// With context duplication this exceeds Grammar.PatternBytes when terminals
// appear in several contexts.
func (s *Spec) PatternBytes() int {
	n := 0
	for _, in := range s.Instances {
		n += in.Program.Len()
	}
	return n
}

// Enablers returns, per instance, the IDs of the instances that enable it
// (the reverse of Follow).
func (s *Spec) Enablers() [][]int {
	out := make([][]int, len(s.Instances))
	for _, in := range s.Instances {
		for _, f := range in.Follow {
			out[f] = append(out[f], in.ID)
		}
	}
	return out
}

// String summarizes the spec.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec %s: %d tokens, %d instances, %d pattern bytes, %d start, %d index bits",
		s.Grammar.Name, len(s.Grammar.Tokens), len(s.Instances), s.PatternBytes(), len(s.StartInstances), s.IndexBits)
	return b.String()
}

// DumpWiring renders the instance wiring for debugging: one line per
// instance with its context, start/end flags and follow edges.
func (s *Spec) DumpWiring() string {
	var b strings.Builder
	for _, in := range s.Instances {
		flags := ""
		if in.Start {
			flags += " start"
		}
		if in.CanEnd {
			flags += " end"
		}
		fmt.Fprintf(&b, "#%d %q @%s idx=%d%s ->", in.ID, in.Term, in.Context(s.Grammar), in.Index, flags)
		for _, f := range in.Follow {
			fmt.Fprintf(&b, " #%d", f)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
