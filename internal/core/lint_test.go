package core

import (
	"strings"
	"testing"

	"cfgtag/internal/grammar"
)

func lint(t *testing.T, src string) []string {
	t.Helper()
	g, err := grammar.Parse("lint", src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s.Lint()
}

func hasWarn(warns []string, substr string) bool {
	for _, w := range warns {
		if strings.Contains(w, substr) {
			return true
		}
	}
	return false
}

func TestLintCleanGrammars(t *testing.T) {
	for _, g := range []*grammar.Grammar{grammar.IfThenElse(), grammar.XMLRPC()} {
		s, err := Compile(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if warns := s.Lint(); len(warns) != 0 {
			t.Errorf("%s: unexpected warnings: %v", g.Name, warns)
		}
	}
}

func TestLintDelimOverlap(t *testing.T) {
	warns := lint(t, "TEXT [a-z ]+\n%%\nS : TEXT ;\n")
	if !hasWarn(warns, "overlaps the delimiter") {
		t.Errorf("warnings = %v", warns)
	}
}

func TestLintConflictSet(t *testing.T) {
	warns := lint(t, "A [0-9]+\nB [0-9a-f]+\n%%\nS : A | B ;\n")
	if !hasWarn(warns, "conflict set") {
		t.Errorf("warnings = %v", warns)
	}
}

func TestLintSamePatternDifferentContextsClean(t *testing.T) {
	// Identical patterns in disjoint contexts are the architecture's
	// point (MONTH/DAY/HOUR in the paper) — no warning.
	warns := lint(t, "A [0-9]+\nB [0-9]+\n%%\nS : A \"x\" B ;\n")
	if len(warns) != 0 {
		t.Errorf("warnings = %v", warns)
	}
}

func TestLintAllEnabled(t *testing.T) {
	g, err := grammar.Parse("wide", `
%%
S : A A A ;
A : "t1" | "t2" | "t3" | "t4" | "t5" | "t6" | "t7" | "t8" ;
`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compile(g, Options{AllEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if warns := s.Lint(); !hasWarn(warns, "barely constrains") {
		t.Errorf("warnings = %v", warns)
	}
}
