package core

import (
	"fmt"
	"sort"
)

// Lint reports non-fatal design smells in a compiled spec — conditions the
// generator accepts but that usually surprise grammar authors or cost
// hardware. Each warning is one human-readable line.
func (s *Spec) Lint() []string {
	var warns []string

	// Token classes overlapping the delimiter class: a delimiter byte
	// inside a lexeme interacts subtly with the pending hold (section
	// 3.2) and usually indicates the delimiter set is wrong.
	for ti, t := range s.Grammar.Tokens {
		for _, c := range s.Programs[ti].Classes {
			if c.Intersects(s.Delim) {
				warns = append(warns, fmt.Sprintf(
					"token %q: pattern class %s overlaps the delimiter class %s",
					t.Name, c, s.Delim))
				break
			}
		}
	}

	// Conflict sets: legal (equation 5 arbitrates) but each one means
	// simultaneous detections whose distinction is lost at the encoder.
	for _, set := range s.ConflictSets {
		names := make([]string, len(set))
		for i, id := range set {
			in := s.Instances[id]
			names[i] = fmt.Sprintf("%s@%s", in.Term, in.Context(s.Grammar))
		}
		warns = append(warns, fmt.Sprintf(
			"conflict set (simultaneous detections, priority-resolved): %v", names))
	}

	// Instances with very large Follow sets create wide enable OR trees
	// and erode the precision advantage of the wiring.
	for _, in := range s.Instances {
		if len(in.Follow) > 3*len(s.Grammar.Tokens)/4 && len(s.Grammar.Tokens) >= 8 {
			warns = append(warns, fmt.Sprintf(
				"instance %s@%s enables %d of %d tokenizers — the grammar barely constrains what follows it",
				in.Term, in.Context(s.Grammar), len(in.Follow), len(s.Instances)))
		}
	}

	// Note: identically-patterned tokens (the paper's MONTH/DAY/HOUR/…)
	// are deliberately NOT warned about — distinguishing same-language
	// tokens by context is the architecture's purpose; genuinely
	// ambiguous cases surface through the conflict-set warning above.
	sort.Strings(warns)
	return warns
}
