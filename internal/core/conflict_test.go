package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cfgtag/internal/grammar"
)

// conflictGrammar builds a grammar whose start alternation holds k token
// classes with nested languages, forcing one conflict set of size k.
func conflictGrammar(t *testing.T, k int) *grammar.Grammar {
	t.Helper()
	var defs, alts []string
	for i := 0; i < k; i++ {
		// Nested classes: [a-a+i] all match "a", so all k collide.
		defs = append(defs, fmt.Sprintf("T%d [a-%c]+", i, 'a'+byte(i)))
		alts = append(alts, fmt.Sprintf("T%d", i))
	}
	src := strings.Join(defs, "\n") + "\n%%\nS : " + strings.Join(alts, " | ") + " ;\n"
	g, err := grammar.Parse(fmt.Sprintf("conflict-%d", k), src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEquation5Invariants checks the section 3.4 index assignment across
// conflict-set sizes: indices distinct and nonzero, OR-dominance within
// every set, and OR-resolution to the highest-priority member.
func TestEquation5Invariants(t *testing.T) {
	for k := 2; k <= 8; k++ {
		s, err := Compile(conflictGrammar(t, k), Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(s.ConflictSets) != 1 || len(s.ConflictSets[0]) != k {
			t.Fatalf("k=%d: conflict sets %v", k, s.ConflictSets)
		}
		seen := map[int]bool{0: true}
		for _, in := range s.Instances {
			if seen[in.Index] {
				t.Fatalf("k=%d: duplicate/zero index %d", k, in.Index)
			}
			seen[in.Index] = true
		}
		set := s.ConflictSets[0]
		// OR of every nonempty subset equals its highest-priority member.
		for mask := 1; mask < 1<<k; mask++ {
			or, top := 0, -1
			for bit := 0; bit < k; bit++ {
				if mask&(1<<bit) != 0 {
					or |= s.Instances[set[bit]].Index
					top = bit // set is ascending priority
				}
			}
			if or != s.Instances[set[top]].Index {
				t.Fatalf("k=%d subset %b: OR=%b, want %b", k, mask, or, s.Instances[set[top]].Index)
			}
		}
	}
}

// TestEquation5WidthLimit reproduces the paper's stated limitation: "the
// maximum number of indices for each set is equal to the number of index
// output pins".
func TestEquation5WidthLimit(t *testing.T) {
	g := conflictGrammar(t, 5)
	if _, err := Compile(g, Options{IndexBits: 4}); err == nil {
		t.Error("a 5-member conflict set cannot fit 4 index bits")
	}
	if _, err := Compile(g, Options{IndexBits: 8}); err != nil {
		t.Errorf("8 bits should suffice: %v", err)
	}
}

// TestConflictsAcrossRandomGroupSplits fuzzes mixed grammars: several
// alternation groups, some overlapping, some disjoint; indices must stay
// globally unique and dominance must hold per set.
func TestConflictsAcrossRandomGroupSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		nGroups := 1 + rng.Intn(3)
		var defs []string
		var rules []string
		tokIdx := 0
		for gi := 0; gi < nGroups; gi++ {
			k := 1 + rng.Intn(4)
			var alts []string
			base := byte('a' + rng.Intn(3))
			for i := 0; i < k; i++ {
				name := fmt.Sprintf("T%d", tokIdx)
				tokIdx++
				defs = append(defs, fmt.Sprintf("%s [%c-%c]+", name, base, base+byte(rng.Intn(4))))
				alts = append(alts, name)
			}
			rules = append(rules, fmt.Sprintf("G%d : %s ;", gi, strings.Join(alts, " | ")))
		}
		var starts []string
		for gi := 0; gi < nGroups; gi++ {
			starts = append(starts, fmt.Sprintf("G%d", gi))
		}
		src := strings.Join(defs, "\n") + "\n%%\nS : " + strings.Join(starts, " | ") + " ;\n" + strings.Join(rules, "\n") + "\n"
		g, err := grammar.Parse("mix", src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		s, err := Compile(g, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		seen := map[int]bool{0: true}
		for _, in := range s.Instances {
			if seen[in.Index] {
				t.Fatalf("trial %d: duplicate index %d\n%s", trial, in.Index, s.DumpWiring())
			}
			seen[in.Index] = true
		}
		for _, set := range s.ConflictSets {
			for i := 0; i < len(set); i++ {
				for j := i + 1; j < len(set); j++ {
					a, b := s.Instances[set[i]].Index, s.Instances[set[j]].Index
					if a|b != b {
						t.Fatalf("trial %d: dominance violated %b|%b != %b", trial, a, b, b)
					}
				}
			}
		}
	}
}

// TestConflictSetsDisjointLanguagesNotGrouped: tokens in one alternation
// whose languages are disjoint must not be treated as conflicting.
func TestConflictSetsDisjointLanguagesNotGrouped(t *testing.T) {
	g, err := grammar.Parse("disjoint", `
A [a-c]+
B [x-z]+
%%
S : A | B ;
`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ConflictSets) != 0 {
		t.Errorf("disjoint tokens grouped: %v", s.ConflictSets)
	}
}
