package core

import (
	"fmt"
	"strings"
)

// DOT renders the tokenizer wiring as a Graphviz digraph — figure 11 as a
// picture. Nodes are tokenizer instances (labeled with their terminal and
// grammatical context); edges are the Follow wiring; start instances get a
// Start arrow and sentence-enders a doubled border, matching the figure's
// Start/End annotations.
func (s *Spec) DOT() string {
	var b strings.Builder
	b.WriteString("digraph wiring {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	b.WriteString("  start [shape=plaintext, label=\"Start\"];\n")
	for _, in := range s.Instances {
		attrs := fmt.Sprintf("label=\"%s\\n%s  idx=%d\"",
			escapeDot(in.Term), escapeDot(in.Context(s.Grammar)), in.Index)
		if in.CanEnd {
			attrs += ", peripheries=2"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", in.ID, attrs)
	}
	for _, id := range s.StartInstances {
		fmt.Fprintf(&b, "  start -> n%d;\n", id)
	}
	for _, in := range s.Instances {
		for _, f := range in.Follow {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in.ID, f)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
