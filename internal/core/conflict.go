package core

import (
	"fmt"
	"sort"

	"cfgtag/internal/regex"
)

// This file implements the section 3.4 index assignment. The token index
// encoder is a tree of OR gates, so if two tokenizers assert on the same
// clock cycle the emitted index is the bitwise OR of their indices.
// Equation 5 turns that into priority resolution: within a set of possibly
// contending tokens, indices are nested bit masks (each higher-priority
// index is a bitwise superset of every lower one), so the OR of any subset
// equals the highest-priority member.

// conflictPairs finds instance pairs that can assert simultaneously. Two
// instances can collide when some single enabling event (stream start or
// the completion of one instance) makes both pending at the same cycle and
// their pattern languages share a string, so both reach an accepting
// position on the same byte. This is the static approximation the
// generator uses; the stream engine additionally reports any residual
// runtime collision.
func (s *Spec) conflictPairs() [][2]int {
	groups := make([][]int, 0, len(s.Instances)+1)
	if len(s.StartInstances) > 1 {
		groups = append(groups, s.StartInstances)
	}
	for _, in := range s.Instances {
		if len(in.Follow) > 1 {
			groups = append(groups, in.Follow)
		}
	}
	seen := make(map[[2]int]bool)
	var pairs [][2]int
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				a, b := g[i], g[j]
				if a > b {
					a, b = b, a
				}
				key := [2]int{a, b}
				if seen[key] {
					continue
				}
				seen[key] = true
				if regex.Intersects(s.Instances[a].Program, s.Instances[b].Program) {
					pairs = append(pairs, key)
				}
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// conflictSets groups the conflict pairs into connected components, each a
// set of instances needing equation 5 treatment. Members are ordered by
// ascending priority: longer patterns win (they are the more specific
// match), ties broken toward the earlier occurrence.
func (s *Spec) conflictSets(pairs [][2]int) [][]int {
	parent := make([]int, len(s.Instances))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range pairs {
		ra, rb := find(p[0]), find(p[1])
		if ra != rb {
			parent[ra] = rb
		}
	}
	comp := make(map[int][]int)
	for _, p := range pairs {
		for _, id := range p {
			r := find(id)
			found := false
			for _, m := range comp[r] {
				if m == id {
					found = true
					break
				}
			}
			if !found {
				comp[r] = append(comp[r], id)
			}
		}
	}
	var sets [][]int
	for _, members := range comp {
		sort.Slice(members, func(i, j int) bool {
			a, b := s.Instances[members[i]], s.Instances[members[j]]
			if a.Program.Len() != b.Program.Len() {
				return a.Program.Len() < b.Program.Len() // ascending priority
			}
			return a.ID > b.ID
		})
		sets = append(sets, members)
	}
	sort.Slice(sets, func(i, j int) bool {
		if len(sets[i]) != len(sets[j]) {
			return len(sets[i]) > len(sets[j])
		}
		return sets[i][0] < sets[j][0]
	})
	return sets
}

// maxIndexBits bounds the encoder width; designs needing more than this
// have outgrown the single-encoder architecture.
const maxIndexBits = 24

// assignIndices gives every instance a distinct nonzero encoder index.
// Conflict-set members receive nested chains c<<m | (2^j − 1) sharing the
// selector prefix c, which satisfies equation 5; remaining instances take
// the smallest free values. Index 0 is reserved to mean "no detection".
func (s *Spec) assignIndices() error {
	pairs := s.conflictPairs()
	s.ConflictSets = s.conflictSets(pairs)

	width := s.Opts.IndexBits
	minWidth := 1
	for (1 << minWidth) <= len(s.Instances) {
		minWidth++
	}
	if width == 0 {
		width = minWidth
	} else if width < minWidth {
		return fmt.Errorf("core: IndexBits=%d cannot address %d instances (need ≥ %d)", width, len(s.Instances), minWidth)
	}

	for ; width <= maxIndexBits; width++ {
		if assign, ok := s.tryAssign(width); ok {
			for id, idx := range assign {
				s.Instances[id].Index = idx
			}
			s.IndexBits = width
			return nil
		}
		if s.Opts.IndexBits != 0 {
			return fmt.Errorf("core: cannot satisfy equation 5 for %d conflict sets in %d index bits", len(s.ConflictSets), s.Opts.IndexBits)
		}
	}
	return fmt.Errorf("core: index assignment exceeded %d bits", maxIndexBits)
}

// tryAssign attempts a full assignment at the given width.
func (s *Spec) tryAssign(width int) (map[int]int, bool) {
	limit := 1 << width
	used := map[int]bool{0: true}
	assign := make(map[int]int, len(s.Instances))

	for _, set := range s.ConflictSets {
		m := len(set)
		if m > width {
			// The paper's limitation: a conflict set larger than the number
			// of index pins cannot get nested codes.
			return nil, false
		}
		placed := false
		for c := 0; (c<<m)|(1<<m-1) < limit; c++ {
			ok := true
			for j := 1; j <= m; j++ {
				if used[(c<<m)|(1<<j-1)] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for j, id := range set {
				v := (c << m) | (1<<(j+1) - 1)
				used[v] = true
				assign[id] = v
			}
			placed = true
			break
		}
		if !placed {
			return nil, false
		}
	}

	next := 1
	for _, in := range s.Instances {
		if _, done := assign[in.ID]; done {
			continue
		}
		for used[next] {
			next++
		}
		if next >= limit {
			return nil, false
		}
		used[next] = true
		assign[in.ID] = next
	}
	return assign, true
}

// InstanceByIndex returns the instance carrying the encoder index, or nil.
// When idx is the OR of a conflict set subset, the highest-priority member
// is returned (equation 5 makes its index equal that OR).
func (s *Spec) InstanceByIndex(idx int) *Instance {
	for _, in := range s.Instances {
		if in.Index == idx {
			return in
		}
	}
	return nil
}
