package validate

import (
	"strings"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/parser"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
	"cfgtag/internal/xmlrpc"
)

func spec(t *testing.T, g *grammar.Grammar, opts core.Options) *core.Spec {
	t.Helper()
	s, err := core.Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func checked(t *testing.T, g *grammar.Grammar, opts core.Options) *CheckedTagger {
	t.Helper()
	ct, err := NewCheckedTagger(spec(t, g, opts), 0)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func runChecked(t *testing.T, ct *CheckedTagger, input string) (violations int64, closeErr error) {
	t.Helper()
	ct.Tagger.Reset()
	ct.Validator.Reset()
	if _, err := ct.Write([]byte(input)); err != nil {
		t.Fatal(err)
	}
	closeErr = ct.Close()
	return ct.Validator.Violations(), closeErr
}

// TestBalancedParensExactPower is the headline section 5.2 claim: the
// stack-less engine accepts a superset ("(0))" tags fine), while the
// stack-extended pipeline recognizes exactly the language.
func TestBalancedParensExactPower(t *testing.T) {
	ct := checked(t, grammar.BalancedParens(), core.Options{})
	good := []string{"0", "( 0 )", "( ( ( 0 ) ) )", "((0))"}
	for _, in := range good {
		if v, err := runChecked(t, ct, in); v != 0 || err != nil {
			t.Errorf("%q: violations=%d err=%v", in, v, err)
		}
	}
	bad := map[string]bool{ // input → expect violation at Close only
		"( 0":     true,  // truncated: surfaces at Close
		"( 0 ) )": false, // extra ')': surfaces at the token
		"( ( 0 )": true,
	}
	for in, atClose := range bad {
		v, err := runChecked(t, ct, in)
		if v == 0 {
			t.Errorf("%q: no violation", in)
		}
		if atClose && err == nil {
			t.Errorf("%q: Close should report the truncation", in)
		}
	}
	// "0 )" — the stray ')' is a violation even though the tagger tags it.
	if v, _ := runChecked(t, ct, "0 )"); v == 0 {
		t.Error(`"0 )": stray close paren not caught`)
	}
}

func TestXMLNestingViolations(t *testing.T) {
	ct := checked(t, grammar.XMLRPC(), core.Options{})
	// The recursion-collapse hole (section 3.1): nested structs share one
	// </struct> tokenizer instance, so the stack-less engine happily tags
	// a message that closes the inner struct and jumps straight to
	// </param>, skipping the outer </member> and </struct>. Only the stack
	// extension catches it.
	bad := "<methodCall> <methodName>m</methodName> <params> <param> " +
		"<struct> <member> <name>a</name> " +
		"<struct> <member> <name>b</name> <i4>1</i4> </member> </struct> " +
		"</param> </params> </methodCall>" // missing </member> </struct>
	// First confirm the tagger itself raises no alarm: the full token
	// stream is tagged (superset acceptance).
	plain := stream.NewTagger(spec(t, grammar.XMLRPC(), core.Options{}))
	ms := plain.Tag([]byte(bad))
	if got := plain.Spec().Instances[ms[len(ms)-1].InstanceID].Term; got != "</methodCall>" {
		t.Fatalf("tagger did not reach message end (last=%q); test premise broken", got)
	}
	var viols []string
	ct.Validator.OnViolation = func(v *Violation) { viols = append(viols, v.Error()) }
	if v, _ := runChecked(t, ct, bad); v == 0 {
		t.Fatal("mis-nesting not caught by the stack extension")
	}
	if len(viols) == 0 || !strings.Contains(viols[0], "</param>") {
		t.Errorf("violations: %v", viols)
	}
	// A clean nested message has none.
	good := "<methodCall> <methodName>m</methodName> <params> <param> " +
		"<struct> <member> <name>a</name> " +
		"<struct> <member> <name>b</name> <i4>1</i4> </member> </struct> " +
		"</member> </struct> </param> </params> </methodCall>"
	if v, err := runChecked(t, ct, good); v != 0 || err != nil {
		t.Errorf("clean message: violations=%d err=%v", v, err)
	}
}

func TestMultiSentenceStream(t *testing.T) {
	s := spec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	ct, err := NewCheckedTagger(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	gen := xmlrpc.NewGenerator(3, xmlrpc.Options{})
	corpus, _ := gen.Corpus(10)
	if v, err := runChecked(t, ct, corpus); v != 0 || err != nil {
		t.Errorf("10 messages: violations=%d err=%v", v, err)
	}
}

func TestInstanceContextAgreement(t *testing.T) {
	// On random conforming sentences the validator must agree with every
	// instance's (rule, pos) — a strong cross-check between the wiring
	// construction and the LL(1) machine.
	for _, g := range []*grammar.Grammar{grammar.IfThenElse(), grammar.XMLRPC()} {
		s := spec(t, g, core.Options{})
		ct, err := NewCheckedTagger(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewGenerator(s, 17, workload.SentenceOptions{})
		for trial := 0; trial < 100; trial++ {
			text, _ := gen.Sentence()
			if v, err := runChecked(t, ct, string(text)); v != 0 || err != nil {
				t.Fatalf("%s trial %d: violations=%d err=%v\ninput %q", g.Name, trial, v, err, text)
			}
		}
	}
}

func TestStackOverflow(t *testing.T) {
	s := spec(t, grammar.BalancedParens(), core.Options{})
	ct, err := NewCheckedTagger(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	deep := strings.Repeat("( ", 50) + "0" + strings.Repeat(" )", 50)
	var sawOverflow bool
	ct.Validator.OnViolation = func(v *Violation) {
		if v.Err == parser.ErrStackOverflow {
			sawOverflow = true
		}
	}
	if v, _ := runChecked(t, ct, deep); v == 0 || !sawOverflow {
		t.Errorf("violations=%d overflow=%v; bounded stack should overflow", v, sawOverflow)
	}
	// A generous bound accepts the same input.
	ct2, err := NewCheckedTagger(s, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := runChecked(t, ct2, deep); v != 0 || err != nil {
		t.Errorf("deep nesting with big stack: violations=%d err=%v", v, err)
	}
}

func TestStackDepthTracksNesting(t *testing.T) {
	s := spec(t, grammar.BalancedParens(), core.Options{})
	shallow, _ := NewCheckedTagger(s, 0)
	deep, _ := NewCheckedTagger(s, 0)
	runChecked(t, shallow, "0")
	runChecked(t, deep, "( ( ( ( 0 ) ) ) )")
	if deep.Validator.StackDepth() <= shallow.Validator.StackDepth() {
		t.Errorf("depth: deep=%d shallow=%d", deep.Validator.StackDepth(), shallow.Validator.StackDepth())
	}
}

func TestViolationRecoveryWithinStream(t *testing.T) {
	// After a violation the validator re-arms at the next Start instance:
	// message 2 is validated even though message 1 was malformed.
	s := spec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	ct, err := NewCheckedTagger(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := "<methodCall> <methodName>a</methodName> <params> </params> </params> </methodCall>"
	good := "<methodCall> <methodName>b</methodName> <params> </params> </methodCall>"
	v, closeErr := runChecked(t, ct, bad+"\n"+good)
	if v != 1 {
		t.Errorf("violations = %d, want exactly 1 (second message clean)", v)
	}
	if closeErr != nil {
		t.Errorf("close: %v", closeErr)
	}
}

func TestNonLL1Rejected(t *testing.T) {
	g, err := grammar.Parse("nonll1", "%%\nS : \"a\" \"b\" | \"a\" \"c\" ;\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(spec(t, g, core.Options{}), 0); err == nil {
		t.Error("non-LL(1) grammar accepted by validator")
	}
}

func TestEmptyStreamIsClean(t *testing.T) {
	ct := checked(t, grammar.IfThenElse(), core.Options{})
	if v, err := runChecked(t, ct, "   "); v != 0 || err != nil {
		t.Errorf("empty stream: violations=%d err=%v", v, err)
	}
}

func TestMatchesStillFlow(t *testing.T) {
	ct := checked(t, grammar.IfThenElse(), core.Options{})
	var n int
	ct.OnMatch = func(stream.Match) { n++ }
	runChecked(t, ct, "if true then go else stop")
	if n != 6 {
		t.Errorf("matches delivered = %d, want 6", n)
	}
}
