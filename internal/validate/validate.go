// Package validate couples the stack-less tagging engine with the
// section 5.2 stack extension: a Validator consumes the tagger's match
// stream and runs the bounded LL(1) stack machine over it, turning the
// engine's superset acceptance back into exact recognition. Recursion
// violations the parallel hardware cannot see — unbalanced parentheses,
// mis-nested XML elements, truncated messages — surface as errors with the
// offending offset, while the tag stream itself flows through untouched.
package validate

import (
	"fmt"

	"cfgtag/internal/core"
	"cfgtag/internal/parser"
	"cfgtag/internal/stream"
)

// Violation describes a recursion/nesting error found in the tag stream.
type Violation struct {
	// End is the offset of the last byte of the offending token.
	End int64
	// Term is the offending terminal ("" for an unexpected end of input).
	Term string
	// Err is the underlying parser error.
	Err error
}

func (v *Violation) Error() string {
	if v.Term == "" {
		return fmt.Sprintf("validate: at end of input: %v", v.Err)
	}
	return fmt.Sprintf("validate: token %q ending at %d: %v", v.Term, v.End, v.Err)
}

// Validator checks a tagger's match stream against the full grammar using
// the bounded-stack acceptor.
type Validator struct {
	spec     *core.Spec
	acceptor *parser.Acceptor
	// OnViolation receives each violation; if nil, violations only count.
	// After a violation the acceptor restarts at the next sentence
	// boundary candidate (the next Start-capable instance).
	OnViolation func(*Violation)

	violations int64
	dead       bool // awaiting a restart opportunity after a violation
	fresh      bool // no tokens consumed since the last (re)start
	maxDepth   int  // high-water across sentence restarts
}

// New builds a validator for the spec; the grammar must be LL(1). maxDepth
// bounds the modeled hardware stack (0 = 4096).
func New(spec *core.Spec, maxDepth int) (*Validator, error) {
	tbl, err := parser.BuildTable(spec)
	if err != nil {
		return nil, err
	}
	return &Validator{spec: spec, acceptor: tbl.NewAcceptor(maxDepth), fresh: true}, nil
}

// Violations returns the number of violations seen since the last Reset.
func (v *Validator) Violations() int64 { return v.violations }

// StackDepth returns the stack high-water mark across the whole stream —
// the capacity a hardware stack would have needed.
func (v *Validator) StackDepth() int {
	if d := v.acceptor.Depth(); d > v.maxDepth {
		return d
	}
	return v.maxDepth
}

// Reset rewinds the acceptor to the start symbol.
func (v *Validator) Reset() {
	v.acceptor.Reset()
	v.violations = 0
	v.dead = false
	v.fresh = true
	v.maxDepth = 0
}

// Consume checks one match. Sentence boundaries are detected lazily: when
// a token cannot continue the current parse but the parse sits at a point
// where the sentence may end, the sentence is closed and the token starts
// the next one (greedy early closing would mis-split sentences that are
// proper prefixes of longer sentences). On a genuine violation it reports
// and re-arms at the next token that can start a sentence.
func (v *Validator) Consume(m stream.Match) {
	in := v.spec.Instances[m.InstanceID]
	if v.dead {
		if !in.Start {
			return
		}
		v.acceptor.Reset()
		v.dead = false
		v.fresh = true
	}
	atBoundary := v.acceptor.Complete()
	rule, pos, err := v.acceptor.Offer(in.Term)
	if err != nil && atBoundary {
		// The previous sentence ended here; restart on this token.
		if d := v.acceptor.Depth(); d > v.maxDepth {
			v.maxDepth = d
		}
		v.acceptor.Reset()
		rule, pos, err = v.acceptor.Offer(in.Term)
	}
	if err != nil {
		v.report(&Violation{End: m.End, Term: in.Term, Err: err})
		return
	}
	v.fresh = false
	// With context duplication the instance already names its production
	// position; the stack machine must agree (a disagreement would be an
	// engine bug, surfaced loudly).
	if in.Rule >= 0 && (rule != in.Rule || pos != in.Pos) {
		v.report(&Violation{End: m.End, Term: in.Term,
			Err: fmt.Errorf("instance context %d[%d] but parse used %d[%d]", in.Rule, in.Pos, rule, pos)})
		return
	}
}

// Close verifies the stream did not end mid-sentence: the current parse
// must sit at a valid sentence end (or nothing must have been consumed).
func (v *Validator) Close() error {
	if v.dead || v.fresh {
		return nil // any violation was already reported
	}
	if d := v.acceptor.Depth(); d > v.maxDepth {
		v.maxDepth = d
	}
	if err := v.acceptor.Finish(); err != nil {
		viol := &Violation{Err: err}
		v.report(viol)
		return viol
	}
	return nil
}

func (v *Validator) report(viol *Violation) {
	v.violations++
	v.dead = true
	if v.OnViolation != nil {
		v.OnViolation(viol)
	}
}

// CheckedTagger bundles a tagger with a validator: matches flow to OnMatch
// as usual while the stack machine audits them.
type CheckedTagger struct {
	Tagger    *stream.Tagger
	Validator *Validator
	// OnMatch receives every match (after validation bookkeeping).
	OnMatch func(stream.Match)
}

// NewCheckedTagger wires a tagger and validator over one spec.
func NewCheckedTagger(spec *core.Spec, maxDepth int) (*CheckedTagger, error) {
	val, err := New(spec, maxDepth)
	if err != nil {
		return nil, err
	}
	ct := &CheckedTagger{Tagger: stream.NewTagger(spec), Validator: val}
	ct.Tagger.OnMatch = func(m stream.Match) {
		ct.Validator.Consume(m)
		if ct.OnMatch != nil {
			ct.OnMatch(m)
		}
	}
	return ct, nil
}

// Write feeds stream bytes.
func (c *CheckedTagger) Write(p []byte) (int, error) { return c.Tagger.Write(p) }

// Close flushes the tagger and the validator's end-of-input check.
func (c *CheckedTagger) Close() error {
	if err := c.Tagger.Close(); err != nil {
		return err
	}
	return c.Validator.Close()
}
