package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"cfgtag/internal/grammar"
)

// RandomGrammar generates a random productive context-free grammar for
// fuzz-style cross-validation of the whole pipeline (stream engine,
// gate-level hardware, LL(1) baseline). Shape guarantees:
//
//   - every nonterminal's first alternative uses only terminals, so every
//     symbol is productive and sentence generation terminates,
//   - later alternatives may recurse into any nonterminal and may be ε,
//   - terminals are a mix of distinct literals (letter/digit/punctuation,
//     never whitespace) and small character classes with +/? operators,
//   - the result always passes grammar validation.
func RandomGrammar(seed int64) *grammar.Grammar {
	rng := rand.New(rand.NewSource(seed))
	nNT := 2 + rng.Intn(5)
	nLit := 3 + rng.Intn(6)
	nClass := rng.Intn(3)

	var tokens []grammar.TokenDef
	used := map[string]bool{}
	litNames := make([]string, 0, nLit)
	for len(litNames) < nLit {
		lit := randomLiteral(rng)
		if used[lit] {
			continue
		}
		used[lit] = true
		litNames = append(litNames, lit)
		tokens = append(tokens, grammar.TokenDef{Name: lit, Pattern: grammar.EscapeLiteral(lit), Literal: true})
	}
	classNames := make([]string, 0, nClass)
	for i := 0; i < nClass; i++ {
		name := fmt.Sprintf("C%d", i)
		classNames = append(classNames, name)
		tokens = append(tokens, grammar.TokenDef{Name: name, Pattern: randomClassPattern(rng)})
	}
	termNames := append(append([]string{}, litNames...), classNames...)

	ntNames := make([]string, nNT)
	for i := range ntNames {
		ntNames[i] = fmt.Sprintf("N%d", i)
	}

	var rules []grammar.Rule
	term := func() grammar.Symbol {
		return grammar.Symbol{Kind: grammar.Terminal, Name: termNames[rng.Intn(len(termNames))]}
	}
	for i, nt := range ntNames {
		alts := 1 + rng.Intn(3)
		for a := 0; a < alts; a++ {
			var rhs []grammar.Symbol
			switch {
			case a == 0:
				// Productive alternative: 1-3 terminals.
				n := 1 + rng.Intn(3)
				for j := 0; j < n; j++ {
					rhs = append(rhs, term())
				}
			case rng.Intn(4) == 0 && i > 0:
				// ε alternative (never for the start symbol, so streams
				// always contain at least one token).
			default:
				n := 1 + rng.Intn(4)
				for j := 0; j < n; j++ {
					if rng.Intn(3) == 0 {
						rhs = append(rhs, grammar.Symbol{
							Kind: grammar.NonTerminal, Name: ntNames[rng.Intn(nNT)],
						})
					} else {
						rhs = append(rhs, term())
					}
				}
			}
			rules = append(rules, grammar.Rule{LHS: nt, RHS: rhs})
		}
	}
	// Guarantee reachability: the start production references every
	// nonterminal once via a chain alternative.
	var chain []grammar.Symbol
	for _, nt := range ntNames[1:] {
		chain = append(chain, grammar.Symbol{Kind: grammar.NonTerminal, Name: nt})
	}
	if len(chain) > 0 {
		rules = append(rules, grammar.Rule{LHS: ntNames[0], RHS: chain})
	}

	g, err := grammar.New(fmt.Sprintf("fuzz-%d", seed), tokens, rules, ntNames[0], "")
	if err != nil {
		// By construction this cannot happen; make failures loud for the
		// fuzz harness rather than silently skipping seeds.
		panic(fmt.Sprintf("workload: RandomGrammar(%d): %v", seed, err))
	}
	return g
}

const litAlphabet = "abcdefghjkmnpqrstuvwxyz0123456789<>/+-=:"

func randomLiteral(rng *rand.Rand) string {
	n := 1 + rng.Intn(5)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(litAlphabet[rng.Intn(len(litAlphabet))])
	}
	return sb.String()
}

// randomClassPattern builds a small non-nullable class pattern like
// [a-d]+, [xyz], or [0-5][a-c]?.
func randomClassPattern(rng *rand.Rand) string {
	class := func() string {
		switch rng.Intn(3) {
		case 0:
			lo := byte('a') + byte(rng.Intn(20))
			return fmt.Sprintf("[%c-%c]", lo, lo+byte(1+rng.Intn(5)))
		case 1:
			lo := byte('0') + byte(rng.Intn(5))
			return fmt.Sprintf("[%c-%c]", lo, lo+byte(1+rng.Intn(4)))
		default:
			return fmt.Sprintf("[%c%c%c]",
				'a'+byte(rng.Intn(26)), 'a'+byte(rng.Intn(26)), '0'+byte(rng.Intn(10)))
		}
	}
	switch rng.Intn(3) {
	case 0:
		return class() + "+"
	case 1:
		return class() + class() + "?"
	default:
		return class()
	}
}
