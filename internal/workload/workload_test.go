package workload

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
)

func spec(t *testing.T, g *grammar.Grammar) *core.Spec {
	t.Helper()
	s, err := core.Compile(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSentencesTagExactly is the oracle loop: every generated sentence,
// fed to the stream engine, must produce exactly the expected instance
// sequence at the expected offsets.
func TestSentencesTagExactly(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(), grammar.IfThenElse(), grammar.XMLRPC(),
	} {
		s := spec(t, g)
		gen := NewGenerator(s, 42, SentenceOptions{})
		tg := stream.NewTagger(s)
		for trial := 0; trial < 200; trial++ {
			text, want := gen.Sentence()
			got := tg.Tag(text)
			if len(got) != len(want) {
				t.Fatalf("%s trial %d: %d matches, want %d\ninput: %q",
					g.Name, trial, len(got), len(want), text)
			}
			for i := range want {
				if got[i].InstanceID != want[i].InstanceID || got[i].End != want[i].End {
					t.Fatalf("%s trial %d match %d: got inst %d end %d, want inst %d end %d\ninput: %q",
						g.Name, trial, i, got[i].InstanceID, got[i].End,
						want[i].InstanceID, want[i].End, text)
				}
			}
		}
	}
}

func TestLexemesMatchTheirPatterns(t *testing.T) {
	s := spec(t, grammar.XMLRPC())
	gen := NewGenerator(s, 7, SentenceOptions{})
	for ti, p := range s.Programs {
		sampler := gen.samplers[ti]
		for trial := 0; trial < 100; trial++ {
			lex, end := sampler.sample(gen.rng, 8)
			if !p.Match(lex) {
				t.Fatalf("token %q: generated lexeme %q does not match %q",
					s.Grammar.Tokens[ti].Name, lex, p.Source)
			}
			if !p.IsLast(end) {
				t.Fatalf("token %q: reported end position %d not accepting", s.Grammar.Tokens[ti].Name, end)
			}
		}
	}
}

func TestCorpusOffsets(t *testing.T) {
	g := grammar.IfThenElse()
	s, err := core.Compile(g, core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(s, 3, SentenceOptions{})
	text, want := gen.Corpus(5)
	tg := stream.NewTagger(s)
	got := tg.Tag(text)
	if !reflect.DeepEqual(got, toMatches(want)) {
		t.Errorf("corpus tags diverge:\n got %v\nwant %v\ninput %q", got, want, text)
	}
}

func toMatches(es []Expected) []stream.Match {
	out := make([]stream.Match, len(es))
	for i, e := range es {
		out[i] = stream.Match{InstanceID: e.InstanceID, End: e.End}
	}
	return out
}

func TestScale(t *testing.T) {
	base := grammar.XMLRPC()
	for _, n := range []int{2, 4, 10} {
		g, err := Scale(base, n)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(g.Tokens), n*len(base.Tokens); got != want {
			t.Errorf("x%d tokens = %d, want %d", n, got, want)
		}
		if got, want := len(g.Rules), n*len(base.Rules)+n; got != want {
			t.Errorf("x%d rules = %d, want %d", n, got, want)
		}
		// Pattern bytes grow at least linearly (copy literals are slightly
		// longer because of the #k markers).
		if got := g.PatternBytes(); got < n*base.PatternBytes() {
			t.Errorf("x%d pattern bytes = %d, want ≥ %d", n, got, n*base.PatternBytes())
		}
		// The scaled grammar must still compile into a spec.
		s, err := core.Compile(g, core.Options{})
		if err != nil {
			t.Fatalf("x%d: %v", n, err)
		}
		if len(s.ConflictSets) != 0 {
			t.Errorf("x%d: unexpected conflicts %v", n, s.ConflictSets)
		}
	}
}

func TestScaleIdentity(t *testing.T) {
	base := grammar.XMLRPC()
	g, err := Scale(base, 1)
	if err != nil || g != base {
		t.Errorf("Scale(1) should return the base grammar, got %v, %v", g, err)
	}
	if _, err := Scale(base, 0); err == nil {
		t.Error("Scale(0) should fail")
	}
}

func TestScaledSentencesStillTag(t *testing.T) {
	g, err := Scale(grammar.XMLRPC(), 3)
	if err != nil {
		t.Fatal(err)
	}
	s := spec(t, g)
	gen := NewGenerator(s, 11, SentenceOptions{})
	tg := stream.NewTagger(s)
	for trial := 0; trial < 50; trial++ {
		text, want := gen.Sentence()
		got := tg.Tag(text)
		if !reflect.DeepEqual(got, toMatches(want)) {
			t.Fatalf("trial %d diverged on scaled grammar\ninput %q", trial, text)
		}
	}
}

func TestSignatureGrammar(t *testing.T) {
	g, sigs := SignatureGrammar(25)
	if len(sigs) != 25 {
		t.Fatalf("sigs = %d", len(sigs))
	}
	s := spec(t, g)
	rng := rand.New(rand.NewSource(1))
	data, real := SignatureCorpus(rng, sigs, 500, 0.5)
	if real == 0 {
		t.Fatal("no real signature commands generated")
	}
	sigInstance := make(map[int]bool)
	for _, in := range s.Instances {
		if in.Term != "WORD" && in.Term != "LOG" {
			sigInstance[in.ID] = true
		}
	}
	tg := stream.NewTagger(s)
	hits := 0
	tg.OnMatch = func(m stream.Match) {
		if sigInstance[m.InstanceID] {
			hits++
		}
	}
	tg.Write(data)
	tg.Close()
	if hits != real {
		t.Errorf("tagger signature hits = %d, want %d (zero false positives)", hits, real)
	}
}

func TestMutateLiteral(t *testing.T) {
	cases := map[string]string{
		"<methodCall>": "<methodCall#3>",
		"if":           "if#3",
		":":            ":#3",
	}
	for in, want := range cases {
		if got := mutateLiteral(in, 3); got != want {
			t.Errorf("mutateLiteral(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestScaledTagsKeepShape(t *testing.T) {
	g, err := Scale(grammar.XMLRPC(), 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range g.Tokens {
		if strings.HasPrefix(tok.Name, "<methodCall#2") {
			found = true
			if !strings.HasSuffix(tok.Name, ">") {
				t.Errorf("mutated tag lost its '>': %q", tok.Name)
			}
		}
	}
	if !found {
		t.Error("no mutated methodCall tag in copy 2")
	}
}
