package workload_test

import (
	"reflect"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/hwgen"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

// TestFuzzRandomGrammars cross-validates the whole pipeline on random
// grammars: for every seed, generated conforming sentences must be tagged
// by the stream engine with (at least) the expected instance at each
// expected offset — ambiguous grammars may legitimately tag more — and the
// gate-level netlist must agree with the stream engine bit for bit.
func TestFuzzRandomGrammars(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		g := workload.RandomGrammar(seed)
		s, err := core.Compile(g, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		tg := stream.NewTagger(s)
		gen := workload.NewGenerator(s, seed*7+1, workload.SentenceOptions{MaxDepth: 8})
		for trial := 0; trial < 15; trial++ {
			text, want := gen.Sentence()
			got := tg.Tag(text)
			if !containsAll(got, want) {
				t.Fatalf("seed %d trial %d: expected tags missing\ninput %q\ngot  %v\nwant %v\nwiring:\n%s",
					seed, trial, text, got, want, s.DumpWiring())
			}
		}
	}
}

// TestFuzzHardwareEquivalence runs a smaller gate-level sweep (simulation
// is ~100× slower than the bit-parallel engine).
func TestFuzzHardwareEquivalence(t *testing.T) {
	seeds := 15
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		g := workload.RandomGrammar(seed)
		s, err := core.Compile(g, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d, err := hwgen.Generate(s, hwgen.Options{})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		r, err := hwgen.NewRunner(d)
		if err != nil {
			t.Fatalf("seed %d: runner: %v", seed, err)
		}
		tg := stream.NewTagger(s)
		gen := workload.NewGenerator(s, seed+100, workload.SentenceOptions{MaxDepth: 6})
		for trial := 0; trial < 4; trial++ {
			text, _ := gen.Sentence()
			hw := r.Run(text)
			sw := tg.Tag(text)
			if !reflect.DeepEqual(hw, sw) {
				t.Fatalf("seed %d trial %d: hw != sw\ninput %q\nhw %v\nsw %v", seed, trial, text, hw, sw)
			}
		}
	}
}

// TestFuzzRecoveryEquivalence extends the cross-check to the recovery
// logic with injected corruption.
func TestFuzzRecoveryEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := workload.RandomGrammar(seed)
		s, err := core.Compile(g, core.Options{Recovery: core.RecoveryRestart})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d, err := hwgen.Generate(s, hwgen.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := hwgen.NewRunner(d)
		if err != nil {
			t.Fatal(err)
		}
		tg := stream.NewTagger(s)
		gen := workload.NewGenerator(s, seed+500, workload.SentenceOptions{MaxDepth: 6})
		for trial := 0; trial < 3; trial++ {
			text, _ := gen.Sentence()
			// Corrupt one byte mid-stream.
			if len(text) > 2 {
				text[len(text)/2] = '@'
			}
			hw := r.Run(text)
			sw := tg.Tag(text)
			if !reflect.DeepEqual(hw, sw) {
				t.Fatalf("seed %d trial %d: recovery hw != sw\ninput %q\nhw %v\nsw %v", seed, trial, text, hw, sw)
			}
		}
	}
}

func containsAll(got []stream.Match, want []workload.Expected) bool {
	type key struct {
		id  int
		end int64
	}
	set := make(map[key]bool, len(got))
	for _, m := range got {
		set[key{m.InstanceID, m.End}] = true
	}
	for _, w := range want {
		if !set[key{w.InstanceID, w.End}] {
			return false
		}
	}
	return true
}

func TestRandomGrammarDeterministic(t *testing.T) {
	a, b := workload.RandomGrammar(5), workload.RandomGrammar(5)
	if a.String() != b.String() {
		t.Error("RandomGrammar not deterministic per seed")
	}
	c := workload.RandomGrammar(6)
	if a.String() == c.String() {
		t.Error("different seeds produced identical grammars")
	}
}
