// Package workload generates the evaluation inputs of section 4: random
// sentences conforming to a grammar (with the terminal occurrence that
// produced each lexeme, for oracle checking), random lexemes for token
// patterns, and the grammar-duplication scaler used to grow the XML-RPC
// grammar from ~300 to ~3000 pattern bytes for table 1 and figure 15.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/regex"
)

// Expected is one token of a generated sentence: which instance must tag it
// and where its lexeme ends in the generated text.
type Expected struct {
	InstanceID int
	End        int64
}

// SentenceOptions tune sentence generation.
type SentenceOptions struct {
	// MaxDepth bounds derivation height; deeper expansions switch to the
	// shallowest alternative. 0 means 12.
	MaxDepth int
	// MaxDelims bounds the random delimiter run inserted between tokens
	// (a run is forced where adjacency would extend the previous match).
	// 0 means 2.
	MaxDelims int
	// MaxLexeme bounds generated class-token lexeme length. 0 means 8.
	MaxLexeme int
}

// Generator produces random conforming sentences for a compiled spec.
type Generator struct {
	spec *core.Spec
	rng  *rand.Rand
	opts SentenceOptions

	minHeight map[string]int
	delims    []byte
	samplers  []*lexemeSampler // per token index
}

// NewGenerator prepares a sentence generator with its own random stream.
func NewGenerator(spec *core.Spec, seed int64, opts SentenceOptions) *Generator {
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 12
	}
	if opts.MaxDelims == 0 {
		opts.MaxDelims = 2
	}
	if opts.MaxLexeme == 0 {
		opts.MaxLexeme = 8
	}
	g := &Generator{
		spec:   spec,
		rng:    rand.New(rand.NewSource(seed)),
		opts:   opts,
		delims: spec.Delim.Bytes(),
	}
	g.computeMinHeights()
	g.samplers = make([]*lexemeSampler, len(spec.Programs))
	for i, p := range spec.Programs {
		g.samplers[i] = newLexemeSampler(p)
	}
	return g
}

// computeMinHeights finds the minimum derivation height per nonterminal so
// expansion can always terminate.
func (g *Generator) computeMinHeights() {
	gr := g.spec.Grammar
	h := make(map[string]int)
	const inf = 1 << 20
	for _, nt := range gr.NonTerminals() {
		h[nt] = inf
	}
	for changed := true; changed; {
		changed = false
		for _, r := range gr.Rules {
			max := 0
			for _, sym := range r.RHS {
				if sym.Kind == grammar.NonTerminal {
					if h[sym.Name] > max {
						max = h[sym.Name]
					}
				}
			}
			if max+1 < h[r.LHS] {
				h[r.LHS] = max + 1
				changed = true
			}
		}
	}
	g.minHeight = h
}

// Sentence generates one random sentence of the grammar and the expected
// tag sequence, including the exact end offset of every lexeme.
func (g *Generator) Sentence() ([]byte, []Expected) {
	type tok struct {
		instance *core.Instance
		lexeme   []byte
		endPos   int // accepting position of the lexeme walk
	}
	var toks []tok
	var expand func(nt string, depth int)
	expand = func(nt string, depth int) {
		rules := g.spec.Grammar.RulesFor(nt)
		var ri int
		if depth <= 0 {
			// Out of budget: take the shallowest alternative.
			best, bestH := rules[0], 1<<20
			for _, r := range rules {
				hh := g.ruleHeight(r)
				if hh < bestH {
					best, bestH = r, hh
				}
			}
			ri = best
		} else {
			ri = rules[g.rng.Intn(len(rules))]
		}
		for pi, sym := range g.spec.Grammar.Rules[ri].RHS {
			if sym.Kind == grammar.Terminal {
				in := g.spec.InstanceAt(ri, pi)
				lex, end := g.samplers[in.TokenIndex].sample(g.rng, g.opts.MaxLexeme)
				toks = append(toks, tok{instance: in, lexeme: lex, endPos: end})
			} else {
				expand(sym.Name, depth-1)
			}
		}
	}
	expand(g.spec.Grammar.Start, g.opts.MaxDepth)

	var buf []byte
	var want []Expected
	for i, tk := range toks {
		if i > 0 {
			prev := toks[i-1]
			need := prev.instance.Program.CanExtend(prev.endPos, tk.lexeme[0])
			n := g.rng.Intn(g.opts.MaxDelims + 1)
			if need && n == 0 {
				n = 1
			}
			for d := 0; d < n; d++ {
				buf = append(buf, g.delims[g.rng.Intn(len(g.delims))])
			}
		}
		buf = append(buf, tk.lexeme...)
		want = append(want, Expected{InstanceID: tk.instance.ID, End: int64(len(buf) - 1)})
	}
	return buf, want
}

// ruleHeight is the derivation height of one rule's RHS.
func (g *Generator) ruleHeight(ri int) int {
	h := 0
	for _, sym := range g.spec.Grammar.Rules[ri].RHS {
		if sym.Kind == grammar.NonTerminal && g.minHeight[sym.Name] > h {
			h = g.minHeight[sym.Name]
		}
	}
	return h + 1
}

// Corpus concatenates n sentences separated by newlines into one stream.
// It requires the spec to have FreeRunningStart when n > 1 if the caller
// wants every sentence tagged.
func (g *Generator) Corpus(n int) ([]byte, []Expected) {
	var buf []byte
	var want []Expected
	for i := 0; i < n; i++ {
		s, w := g.Sentence()
		if i > 0 {
			buf = append(buf, '\n')
		}
		base := int64(len(buf))
		buf = append(buf, s...)
		for _, e := range w {
			want = append(want, Expected{InstanceID: e.InstanceID, End: base + e.End})
		}
	}
	return buf, want
}

// lexemeSampler walks a pattern automaton emitting random matching bytes.
type lexemeSampler struct {
	p *regex.Program
	// minToAccept[q] is the fewest further bytes needed to reach an
	// accepting position from q (0 if q accepts).
	minToAccept []int
}

func newLexemeSampler(p *regex.Program) *lexemeSampler {
	const inf = 1 << 20
	min := make([]int, p.Len())
	for i := range min {
		if p.IsLast(i) {
			min[i] = 0
		} else {
			min[i] = inf
		}
	}
	for changed := true; changed; {
		changed = false
		for q := 0; q < p.Len(); q++ {
			for _, t := range p.Follow[q] {
				if min[t]+1 < min[q] {
					min[q] = min[t] + 1
					changed = true
				}
			}
		}
	}
	return &lexemeSampler{p: p, minToAccept: min}
}

// sample returns a random lexeme of the pattern and the accepting position
// it ended at. maxLen is advisory: walks stop at the first accepting
// position once the budget is spent.
func (s *lexemeSampler) sample(rng *rand.Rand, maxLen int) ([]byte, int) {
	p := s.p
	// Choose a viable first position.
	var q int
	for {
		q = p.First[rng.Intn(len(p.First))]
		if s.minToAccept[q] < 1<<20 {
			break
		}
	}
	var out []byte
	out = append(out, randomByte(rng, p.Classes[q]))
	for {
		if p.IsLast(q) {
			// Stop here unless we still have budget and want to continue.
			canGo := len(viable(s, p.Follow[q], len(out), maxLen)) > 0
			if !canGo || len(out) >= maxLen || rng.Intn(2) == 0 {
				return out, q
			}
		}
		nexts := viable(s, p.Follow[q], len(out), maxLen)
		if len(nexts) == 0 {
			if p.IsLast(q) {
				return out, q
			}
			// Over budget with no accepting stop: head straight for the
			// nearest acceptance.
			best, bestRest := -1, 1<<20
			for _, t := range p.Follow[q] {
				if s.minToAccept[t] < bestRest {
					best, bestRest = t, s.minToAccept[t]
				}
			}
			nexts = []int{best}
		}
		q = nexts[rng.Intn(len(nexts))]
		out = append(out, randomByte(rng, p.Classes[q]))
	}
}

// viable filters follow targets that can still reach acceptance within a
// loose budget (maxLen is soft: targets that accept immediately are always
// viable).
func viable(s *lexemeSampler, follow []int, have, maxLen int) []int {
	var out []int
	for _, t := range follow {
		rest := s.minToAccept[t]
		if rest >= 1<<20 {
			continue
		}
		if have+1+rest <= maxLen || rest == 0 {
			out = append(out, t)
		}
	}
	return out
}

func randomByte(rng *rand.Rand, c regex.ByteClass) byte {
	members := c.Bytes()
	return members[rng.Intn(len(members))]
}

// Scale builds the paper's scaling workload: n renamed copies of the base
// grammar under a fresh start symbol, so tokens, productions and pattern
// bytes grow ≈ linearly with n (the duplicated grammars of table 1 /
// figure 15). Copy 1 is the base itself; literal tokens of copy k > 1 get
// a "#k" marker before any trailing '>' (tags stay tag-shaped), named
// classes get a "_k" suffix.
func Scale(base *grammar.Grammar, n int) (*grammar.Grammar, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: scale factor must be ≥ 1, got %d", n)
	}
	if n == 1 {
		return base, nil
	}
	var tokens []grammar.TokenDef
	var rules []grammar.Rule
	start := "scaled_start"
	var startRule grammar.Rule
	startRule.LHS = start

	for k := 1; k <= n; k++ {
		renameT := func(name string) string {
			if k == 1 {
				return name
			}
			if def, _ := base.Token(name); def.Literal {
				return mutateLiteral(name, k)
			}
			return fmt.Sprintf("%s_%d", name, k)
		}
		renameNT := func(name string) string {
			if k == 1 {
				return name
			}
			return fmt.Sprintf("%s_%d", name, k)
		}
		for _, t := range base.Tokens {
			nt := t
			nt.Name = renameT(t.Name)
			if t.Literal {
				nt.Pattern = grammar.EscapeLiteral(nt.Name)
			}
			tokens = append(tokens, nt)
		}
		for _, r := range base.Rules {
			nr := grammar.Rule{LHS: renameNT(r.LHS)}
			for _, sym := range r.RHS {
				ns := sym
				if sym.Kind == grammar.Terminal {
					ns.Name = renameT(sym.Name)
				} else {
					ns.Name = renameNT(sym.Name)
				}
				nr.RHS = append(nr.RHS, ns)
			}
			rules = append(rules, nr)
		}
	}
	// One alternative per copy: scaled_start : start_k.
	for k := 1; k <= n; k++ {
		name := base.Start
		if k > 1 {
			name = fmt.Sprintf("%s_%d", base.Start, k)
		}
		rules = append(rules, grammar.Rule{
			LHS: start,
			RHS: []grammar.Symbol{{Kind: grammar.NonTerminal, Name: name}},
		})
	}
	name := fmt.Sprintf("%s-x%d", base.Name, n)
	return grammar.New(name, tokens, rules, start, base.DelimPattern)
}

// mutateLiteral makes a literal distinct per copy while keeping its shape:
// "<methodCall>" → "<methodCall#3>", "if" → "if#3".
func mutateLiteral(lit string, k int) string {
	marker := fmt.Sprintf("#%d", k)
	if strings.HasSuffix(lit, ">") {
		return lit[:len(lit)-1] + marker + ">"
	}
	return lit + marker
}

// SignatureGrammar builds the scaled intrusion-detection workload of the
// section 1 motivation: a command protocol with n signature keywords that
// are dangerous only in command position, while LOG payloads may mention
// them harmlessly (the naive matcher's false positives).
//
//	session : command session | command ;
//	command : sig0 | sig1 | ... | log ;
//	sigI    : "SIGI" WORD ;
//	log     : "LOG" WORD ;
func SignatureGrammar(n int) (*grammar.Grammar, []string) {
	var sb strings.Builder
	sb.WriteString("WORD [A-Za-z0-9_]+\n%%\n")
	sb.WriteString("session : command session | command ;\n")
	sb.WriteString("command : ")
	sigs := make([]string, n)
	for i := 0; i < n; i++ {
		// Fixed-width names keep the set prefix-free; a prefix signature
		// would (correctly, per the parallel-detection semantics) fire
		// inside its extensions and muddy the false-positive accounting.
		sigs[i] = fmt.Sprintf("SIG%04d", i)
		fmt.Fprintf(&sb, "s%d | ", i)
	}
	sb.WriteString("log ;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "s%d : \"%s\" WORD ;\n", i, sigs[i])
	}
	sb.WriteString("log : \"LOG\" WORD ;\n")
	g, err := grammar.Parse(fmt.Sprintf("nids-%d", n), sb.String())
	if err != nil {
		panic(fmt.Sprintf("workload: SignatureGrammar(%d): %v", n, err))
	}
	return g, sigs
}

// SignatureCorpus generates a conforming session stream of total
// commands, a fraction of which are real signature invocations while the
// rest are LOG entries whose payload words are decoy signature names. It
// returns the stream and the number of real signature commands.
func SignatureCorpus(rng *rand.Rand, sigs []string, commands int, decoyRate float64) ([]byte, int) {
	var sb strings.Builder
	real := 0
	for i := 0; i < commands; i++ {
		if rng.Float64() < 0.2 {
			sig := sigs[rng.Intn(len(sigs))]
			fmt.Fprintf(&sb, "%s payload%d\n", sig, rng.Intn(1000))
			real++
			continue
		}
		word := fmt.Sprintf("note%d", rng.Intn(1000))
		if rng.Float64() < decoyRate {
			word = sigs[rng.Intn(len(sigs))] // harmless mention
		}
		fmt.Fprintf(&sb, "LOG %s\n", word)
	}
	return []byte(sb.String()), real
}
