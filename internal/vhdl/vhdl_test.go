package vhdl

import (
	"strings"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/hwgen"
	"cfgtag/internal/netlist"
)

func genVHDL(t *testing.T, g *grammar.Grammar) string {
	t.Helper()
	s, err := core.Compile(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := hwgen.Generate(s, hwgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := Emit(d.Netlist, Options{Entity: "tagger", Comment: g.Name})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestEmitStructure(t *testing.T) {
	src := genVHDL(t, grammar.IfThenElse())
	for _, want := range []string{
		"entity tagger is",
		"end tagger;",
		"architecture rtl of tagger is",
		"end rtl;",
		"clk : in std_logic",
		"rst : in std_logic",
		"d0 : in std_logic",
		"d7 : in std_logic",
		"eof : in std_logic",
		"valid : out std_logic",
		"index0 : out std_logic",
		"msg_end : out std_logic",
		"rising_edge(clk)",
		"library IEEE;",
		"-- if-then-else",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in emitted VHDL", want)
		}
	}
}

func TestEmitBalance(t *testing.T) {
	src := genVHDL(t, grammar.XMLRPC())
	// Every declared signal must be driven: combinational signals once,
	// registers twice (reset branch + load branch), outputs once more.
	s, _ := core.Compile(grammar.XMLRPC(), core.Options{})
	d, _ := hwgen.Generate(s, hwgen.Options{})
	stats := d.Netlist.ComputeStats()
	declared := strings.Count(src, "  signal ")
	driven := strings.Count(src, "<=")
	wantDeclared := len(d.Netlist.Gates) - stats.Inputs
	if declared != wantDeclared {
		t.Errorf("declared %d signals, want %d", declared, wantDeclared)
	}
	wantDriven := stats.And + stats.Or + stats.Not + stats.Const + 2*stats.Reg + len(d.Netlist.Outputs)
	if driven != wantDriven {
		t.Errorf("drove %d signals, want %d", driven, wantDriven)
	}
	if strings.Count(src, "process") != 2 { // "process (clk)" + "end process"
		t.Errorf("process block malformed")
	}
}

func TestPortNameSanitization(t *testing.T) {
	cases := map[string]string{
		"det/3":   "det_3",
		"index0":  "index0",
		"msg_end": "msg_end",
		"9lives":  "p_9lives",
	}
	for in, want := range cases {
		if got := portName(in); got != want {
			t.Errorf("portName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDefaultEntity(t *testing.T) {
	n := netlist.New()
	a := n.Input("a")
	n.Output("q", n.Reg(a, "r"))
	src, err := Emit(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "entity cfg_tagger is") {
		t.Error("default entity name missing")
	}
}

func TestEnableRendersAsIf(t *testing.T) {
	n := netlist.New()
	d := n.Input("d")
	en := n.Input("en")
	n.Output("q", n.RegEn(d, en, "r"))
	src, err := Emit(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "if en = '1' then") {
		t.Errorf("clock enable not rendered:\n%s", src)
	}
}

func TestInitValueInReset(t *testing.T) {
	n := netlist.New()
	d := n.Input("d")
	w := n.Reg(d, "r")
	n.Gates[w].Init = true
	n.Output("q", w)
	src, err := Emit(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "<= '1';") {
		t.Error("init-1 register should reset to '1'")
	}
}

func TestInvalidNetlistRejected(t *testing.T) {
	n := netlist.New()
	n.Gates = append(n.Gates, netlist.Gate{Op: netlist.OpNot, In: []netlist.Wire{5}, Enable: netlist.Invalid})
	if _, err := Emit(n, Options{}); err == nil {
		t.Error("invalid netlist emitted")
	}
}

func TestSummary(t *testing.T) {
	n := netlist.New()
	a, b := n.Input("a"), n.Input("b")
	n.Output("q", n.Reg(n.And(a, b), "r"))
	s := Summary(n)
	for _, want := range []string{"inputs: 2", "and: 1", "regs: 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	a := genVHDL(t, grammar.IfThenElse())
	b := genVHDL(t, grammar.IfThenElse())
	if a != b {
		t.Error("emission is not deterministic")
	}
}

func TestWide2Emission(t *testing.T) {
	s, err := core.Compile(grammar.IfThenElse(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := hwgen.GenerateWide2(s, hwgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := Emit(d.Netlist, Options{Entity: "tagger2x", Comment: "2-byte datapath"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"entity tagger2x is",
		"a0 : in std_logic", "b7 : in std_logic", "v1 : in std_logic",
		"det0_0 : out std_logic", "det1_0 : out std_logic",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("wide2 VHDL missing %q", want)
		}
	}
}

func TestLabelsAppearAsComments(t *testing.T) {
	src := genVHDL(t, grammar.IfThenElse())
	for _, want := range []string{"-- dec/", "-- tok/", "-- wire/", "-- enc/"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing label comment %q", want)
		}
	}
}
