package runtime

import (
	"errors"
	"fmt"
)

// ErrInvalidConfig is the sentinel wrapped by every ConfigError, so
// callers can classify rejection with errors.Is across all config types.
var ErrInvalidConfig = errors.New("runtime: invalid config")

// ConfigError reports one invalid configuration field, naming the field
// and the offending value. It wraps ErrInvalidConfig.
type ConfigError struct {
	Field  string
	Value  any
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("runtime: invalid config: %s = %v: %s", e.Field, e.Value, e.Reason)
}

func (e *ConfigError) Unwrap() error { return ErrInvalidConfig }

// Validate rejects configurations that would silently misbehave at
// runtime. Zero values always mean "use the default", and the two
// documented negative switches stay legal (BatchBytes < 0 disables
// coalescing, Quarantine < 0 disables quarantining); every other negative
// value is a typed error instead of an accidental no-op or a runtime
// panic. NewPipeline validates implicitly.
func (cfg *Config) Validate() error {
	if cfg.Factory == nil {
		return &ConfigError{Field: "Factory", Value: nil, Reason: "a backend factory is required"}
	}
	if cfg.Shards < 0 {
		return &ConfigError{Field: "Shards", Value: cfg.Shards, Reason: "must be >= 0 (0 = GOMAXPROCS)"}
	}
	if cfg.Queue < 0 {
		return &ConfigError{Field: "Queue", Value: cfg.Queue, Reason: "must be >= 0 (0 = default)"}
	}
	if cfg.MaxStreams < 0 {
		return &ConfigError{Field: "MaxStreams", Value: cfg.MaxStreams, Reason: "must be >= 0 (0 = unlimited)"}
	}
	if cfg.BatchIdle < 0 {
		return &ConfigError{Field: "BatchIdle", Value: cfg.BatchIdle, Reason: "must be >= 0 (0 = default)"}
	}
	if cfg.SinkWorkers < 0 {
		return &ConfigError{Field: "SinkWorkers", Value: cfg.SinkWorkers, Reason: "must be >= 0 (0 = single worker)"}
	}
	if cfg.SinkAttempts < 0 {
		return &ConfigError{Field: "SinkAttempts", Value: cfg.SinkAttempts, Reason: "must be >= 0 (0 = default, 1 = no retry)"}
	}
	if cfg.SinkBackoff < 0 {
		return &ConfigError{Field: "SinkBackoff", Value: cfg.SinkBackoff, Reason: "must be >= 0 (0 = default)"}
	}
	// SendTimeout: all values are meaningful (0 = block, < 0 = shed
	// immediately, > 0 = bounded wait), so nothing to reject.
	if cfg.ShedHighWater < 0 {
		return &ConfigError{Field: "ShedHighWater", Value: cfg.ShedHighWater, Reason: "must be >= 0 (0 = full queue capacity)"}
	}
	if cfg.FeedDeadline < 0 {
		return &ConfigError{Field: "FeedDeadline", Value: cfg.FeedDeadline, Reason: "must be >= 0 (0 = watchdog disabled)"}
	}
	if cfg.BreakerThreshold < 0 {
		return &ConfigError{Field: "BreakerThreshold", Value: cfg.BreakerThreshold, Reason: "must be >= 0 (0 = breaker disabled)"}
	}
	if cfg.BreakerThreshold > 0 && cfg.DeadLetter == nil {
		return &ConfigError{Field: "BreakerThreshold", Value: cfg.BreakerThreshold, Reason: "breaker requires DeadLetter (an open breaker sheds batches to it)"}
	}
	if cfg.BreakerCooldown < 0 {
		return &ConfigError{Field: "BreakerCooldown", Value: cfg.BreakerCooldown, Reason: "must be >= 0 (0 = default)"}
	}
	return nil
}
