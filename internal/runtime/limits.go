package runtime

import (
	"fmt"
	"sync/atomic"
)

// MemGauge aggregates an estimated live-memory byte count across the
// pieces that charge it: checked-out dispatch arenas, per-stream backend
// buffers, DFA cache states and Earley charts. It is an estimate for
// admission control (Quota.MemBudgetBytes), not an allocator accounting.
// All methods are safe for concurrent use and nil-safe, so it threads
// through configs without guards.
type MemGauge struct{ v atomic.Int64 }

// Add charges (positive) or discharges (negative) delta bytes.
func (g *MemGauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load reports the current estimate (0 on a nil gauge).
func (g *MemGauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Delta returns Add as a plain callback for packages that cannot import
// runtime (stream, earley); nil on a nil gauge so zero-cost when unused.
func (g *MemGauge) Delta() func(int64) {
	if g == nil {
		return nil
	}
	return g.Add
}

// Limits bounds each stream's backend resource consumption; the zero
// value is unlimited (the behavior of the plain factory constructors).
// A tripped bound ends the stream with an error wrapping
// ErrResourceExhausted — an EOS batch and a quarantined key, via the same
// machinery as a backend panic.
type Limits struct {
	// MaxBufferBytes caps the bytes a whole-stream backend (parser,
	// earley) may buffer per stream before its Close-time recognition
	// (0 = unlimited). The Feed that would exceed it fails, and none of
	// its bytes are buffered.
	MaxBufferBytes int
	// MaxPendingMatches caps the undrained pending matches a streaming
	// backend (stream, dfa) may accumulate per stream between drains
	// (0 = unlimited). Normal pipeline operation drains after every
	// batch, so only a match bomb — adversarial input tagging far faster
	// than it can be delivered — trips this.
	MaxPendingMatches int
	// MaxChartItems and MaxWorkPerByte bound the Earley backend's chart
	// per recognition (see earley.Config); ignored by the FSA paths.
	MaxChartItems  int
	MaxWorkPerByte int
	// Mem, when set, is charged with the backends' buffered-byte and
	// chart estimates — normally the pipeline's Config.Mem gauge, so
	// tenant memory budgets see backend state, not just arenas.
	Mem *MemGauge
}

// checkPending converts a pending-match count past MaxPendingMatches into
// the typed budget error; nil while within bounds (or unbounded).
func (l Limits) checkPending(n int) error {
	if max := l.MaxPendingMatches; max > 0 && n > max {
		return fmt.Errorf("%w: %d pending matches over MaxPendingMatches %d", ErrResourceExhausted, n, max)
	}
	return nil
}

// checkBuffer rejects a Feed that would push a stream buffer past
// MaxBufferBytes, before any of its bytes are accepted.
func (l Limits) checkBuffer(have, add int) error {
	if max := l.MaxBufferBytes; max > 0 && have+add > max {
		return fmt.Errorf("%w: stream buffer %d+%d bytes over MaxBufferBytes %d", ErrResourceExhausted, have, add, max)
	}
	return nil
}

// memReleaser is implemented by limit-aware backends that charge a
// MemGauge; the shard releases the charge when the stream retires.
type memReleaser interface{ releaseMem() }

// Validate rejects negative limits with typed errors.
func (l Limits) Validate() error {
	if l.MaxBufferBytes < 0 {
		return &ConfigError{Field: "Limits.MaxBufferBytes", Value: l.MaxBufferBytes, Reason: "must be >= 0 (0 = unlimited)"}
	}
	if l.MaxPendingMatches < 0 {
		return &ConfigError{Field: "Limits.MaxPendingMatches", Value: l.MaxPendingMatches, Reason: "must be >= 0 (0 = unlimited)"}
	}
	if l.MaxChartItems < 0 {
		return &ConfigError{Field: "Limits.MaxChartItems", Value: l.MaxChartItems, Reason: "must be >= 0 (0 = unlimited)"}
	}
	if l.MaxWorkPerByte < 0 {
		return &ConfigError{Field: "Limits.MaxWorkPerByte", Value: l.MaxWorkPerByte, Reason: "must be >= 0 (0 = unlimited)"}
	}
	return nil
}
