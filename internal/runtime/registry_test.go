package runtime

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

func testSpec(t *testing.T, opts core.Options) *core.Spec {
	t.Helper()
	spec, err := core.Compile(grammar.XMLRPC(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestRegistryRoutesTenantsIndependently runs two tenants with different
// grammars through one registry and checks each stream is tagged by its
// own tenant's grammar, with per-tenant metrics kept apart.
func TestRegistryRoutesTenantsIndependently(t *testing.T) {
	specA := testSpec(t, core.Options{FreeRunningStart: true})
	specB, err := core.Compile(grammar.IfThenElse(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	genA := workload.NewGenerator(specA, 5, workload.SentenceOptions{MaxDepth: 6})
	inputA, _ := genA.Sentence()
	inputB := []byte("if true then go else stop")

	r := NewRegistry()
	defer r.Close()
	sinkA, sinkB := newReloadSink(), newReloadSink()
	// Caller-owned hooks chain with the registry's internal metrics.
	var mcA, mcB MetricCounters
	if err := r.Add(Tenant{Name: "alpha", Config: Config{Shards: 2, Factory: DFAFactory(specA, 0), Hooks: mcA.Hooks()}}, sinkA); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(Tenant{Name: "beta", Config: Config{Shards: 1, Factory: TaggerFactory(specB), Hooks: mcB.Hooks()}}, sinkB); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(Tenant{Name: "alpha", Config: Config{Factory: fakeFactory}}, sinkA); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate Add: %v, want ErrTenantExists", err)
	}
	if got := r.Tenants(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Fatalf("Tenants = %v", got)
	}

	const n = 8
	for i := 0; i < n; i++ {
		if err := r.Send("alpha", key("a", i), inputA); err != nil {
			t.Fatal(err)
		}
		if err := r.Send("beta", key("b", i), inputB); err != nil {
			t.Fatal(err)
		}
		if err := r.CloseStream("alpha", key("a", i)); err != nil {
			t.Fatal(err)
		}
		if err := r.CloseStream("beta", key("b", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Send("gamma", "x", inputA); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant Send: %v", err)
	}
	// The registry's own per-tenant counters, while the tenants live.
	ca, _, err := r.Counters("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Faults("alpha"); err != nil {
		t.Fatal(err)
	}
	_ = ca
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	wantA := stream.NewTagger(specA).Tag(inputA)
	wantB := stream.NewTagger(specB).Tag(inputB)
	for i := 0; i < n; i++ {
		if got := sinkA.tags[key("a", i)]; !reflect.DeepEqual(got, wantA) {
			t.Fatalf("alpha stream %d: tags %v, want %v", i, got, wantA)
		}
		if got := sinkB.tags[key("b", i)]; !reflect.DeepEqual(got, wantB) {
			t.Fatalf("beta stream %d: tags %v, want %v", i, got, wantB)
		}
	}
	// Post-Close totals come from the caller-owned chained hooks.
	ca, _ = mcA.Snapshot()
	cb, _ := mcB.Snapshot()
	if ca.Bytes != int64(n*len(inputA)) || cb.Bytes != int64(n*len(inputB)) {
		t.Fatalf("per-tenant bytes: alpha %d (want %d), beta %d (want %d)",
			ca.Bytes, n*len(inputA), cb.Bytes, n*len(inputB))
	}
	if ca.Matches == 0 || cb.Matches == 0 {
		t.Fatal("a tenant recorded no matches")
	}
}

func TestRegistryMaxStreamsQuota(t *testing.T) {
	spec := testSpec(t, core.Options{FreeRunningStart: true})
	r := NewRegistry()
	defer r.Close()
	sink := newReloadSink()
	err := r.Add(Tenant{
		Name:   "capped",
		Config: Config{Shards: 1, Factory: DFAFactory(spec, 0)},
		Quota:  Quota{MaxStreams: 2},
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Send("capped", "s1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.Send("capped", "s2", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Existing streams keep flowing; a third stream is rejected.
	if err := r.Send("capped", "s1", []byte("y")); err != nil {
		t.Fatalf("existing stream rejected: %v", err)
	}
	if err := r.Send("capped", "s3", []byte("x")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota Send: %v, want ErrQuotaExceeded", err)
	}
	if n, _ := r.LiveStreams("capped"); n != 2 {
		t.Fatalf("LiveStreams = %d, want 2", n)
	}
	// Ending a stream frees its slot once the EOS batch is delivered.
	if err := r.CloseStream("capped", "s1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := r.Send("capped", "s3", []byte("x")); err == nil {
			break
		} else if !errors.Is(err, ErrQuotaExceeded) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after CloseStream")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRegistryBytesPerSecQuota(t *testing.T) {
	spec := testSpec(t, core.Options{FreeRunningStart: true})
	r := NewRegistry()
	defer r.Close()
	err := r.Add(Tenant{
		Name:   "throttled",
		Config: Config{Shards: 1, Factory: DFAFactory(spec, 0)},
		Quota:  Quota{BytesPerSec: 1024},
	}, newReloadSink())
	if err != nil {
		t.Fatal(err)
	}
	// The burst allows one second of rate up front; the next byte is shed.
	if err := r.Send("throttled", "s", make([]byte, 1024)); err != nil {
		t.Fatalf("burst Send rejected: %v", err)
	}
	if err := r.Send("throttled", "s", []byte("x")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-rate Send: %v, want ErrQuotaExceeded", err)
	}
	// Tokens refill with time.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := r.Send("throttled", "s", []byte("x")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("token bucket never refilled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRegistrySwapAndRemove(t *testing.T) {
	specA := testSpec(t, core.Options{FreeRunningStart: true})
	specB, err := core.Compile(grammar.XMLRPCFull(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	sink := newReloadSink()
	if err := r.Add(Tenant{Name: "t", Config: Config{Shards: 2, Factory: DFAFactory(specA, 0)}}, sink); err != nil {
		t.Fatal(err)
	}
	v, err := r.Swap("t", DFAFactory(specB, 0))
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("Swap returned version %d, want 2", v)
	}
	p, err := r.Pipeline("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CurrentVersion(); got != 2 {
		t.Fatalf("CurrentVersion = %d, want 2", got)
	}
	if _, err := r.Swap("nope", fakeFactory); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Swap on unknown tenant: %v", err)
	}
	if err := r.Remove("t"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("t"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("second Remove: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(Tenant{Name: "late", Config: Config{Factory: fakeFactory}}, sink); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after Close: %v", err)
	}
}

func TestRegistryRejectsInvalidTenant(t *testing.T) {
	r := NewRegistry()
	defer r.Close()
	sink := newReloadSink()
	cases := []Tenant{
		{Name: "", Config: Config{Factory: fakeFactory}},
		{Name: "t", Config: Config{Factory: nil}},
		{Name: "t", Config: Config{Factory: fakeFactory, Shards: -1}},
		{Name: "t", Config: Config{Factory: fakeFactory}, Quota: Quota{MaxStreams: -1}},
		{Name: "t", Config: Config{Factory: fakeFactory}, Quota: Quota{BytesPerSec: -5}},
	}
	for i, tc := range cases {
		if err := r.Add(tc, sink); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("case %d: Add = %v, want ErrInvalidConfig", i, err)
		}
	}
	if got := r.Tenants(); len(got) != 0 {
		t.Fatalf("invalid tenants were registered: %v", got)
	}
}
