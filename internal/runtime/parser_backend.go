package runtime

import (
	"cfgtag/internal/core"
	"cfgtag/internal/parser"
	"cfgtag/internal/stream"
)

// parserBackend adapts the LL(1) predictive-parser baseline. Unlike the
// two tagging paths it recognizes the grammar exactly — one stream must be
// one sentence — so it buffers the stream and parses at Close, reporting
// non-conforming input as the Close error. Matches become available only
// after a successful Close (the parser tags nothing on reject).
type parserBackend struct {
	spec    *core.Spec
	table   *parser.Table
	shard   int
	hooks   *Hooks
	lim     Limits
	buf     []byte
	charged int64
	pending []stream.Match
	matches int64
	closed  bool
}

// ParserFactory returns a Factory producing LL(1) acceptors. The parse
// table is built once (failing here if the grammar is not LL(1)); each
// Backend carries only its input buffer.
func ParserFactory(spec *core.Spec) (Factory, error) {
	return ParserFactoryLimits(spec, Limits{})
}

// ParserFactoryLimits is ParserFactory with per-stream resource bounds:
// MaxBufferBytes caps the whole-sentence buffer (the Feed that would
// exceed it fails with an error wrapping ErrResourceExhausted, accepting
// none of its bytes), and Limits.Mem is charged with the buffer's
// capacity while the stream is live.
func ParserFactoryLimits(spec *core.Spec, lim Limits) (Factory, error) {
	table, err := parser.BuildTable(spec)
	if err != nil {
		return nil, err
	}
	return func(shard int, h *Hooks) (Backend, error) {
		return &parserBackend{spec: spec, table: table, shard: shard, hooks: h, lim: lim}, nil
	}, nil
}

func (b *parserBackend) Reset() {
	b.buf = b.buf[:0]
	b.pending = b.pending[:0]
	b.matches = 0
	b.closed = false
}

func (b *parserBackend) Feed(p []byte) error {
	if b.closed {
		return errClosed
	}
	if err := b.lim.checkBuffer(len(b.buf), len(p)); err != nil {
		return err
	}
	b.buf = append(b.buf, p...)
	b.chargeBuf()
	b.hooks.bytes(b.shard, len(p))
	return nil
}

// chargeBuf settles the memory gauge with the buffer's current capacity.
func (b *parserBackend) chargeBuf() {
	if b.lim.Mem != nil {
		if c := int64(cap(b.buf)); c != b.charged {
			b.lim.Mem.Add(c - b.charged)
			b.charged = c
		}
	}
}

// releaseMem discharges the buffer charge when the stream retires.
func (b *parserBackend) releaseMem() {
	if b.charged != 0 {
		b.lim.Mem.Add(-b.charged)
		b.charged = 0
	}
}

func (b *parserBackend) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	tags, err := b.table.Parse(b.buf)
	if err != nil {
		return err
	}
	for _, tag := range tags {
		in := b.spec.InstanceAt(tag.Rule, tag.Pos)
		if in == nil {
			// Cannot happen for a table built from this spec; fail loud.
			panic("runtime: parser tag with no spec instance")
		}
		m := stream.Match{InstanceID: in.ID, End: int64(tag.End)}
		b.pending = append(b.pending, m)
		b.matches++
		b.hooks.match(b.shard, m)
	}
	return nil
}

func (b *parserBackend) Matches() []stream.Match {
	out := b.pending
	b.pending = nil
	return out
}

func (b *parserBackend) Counters() Counters {
	return Counters{Bytes: int64(len(b.buf)), Matches: b.matches}
}
