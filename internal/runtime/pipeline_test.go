package runtime

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/xmlrpc"
)

// collectSink gathers per-stream tags and bytes; Deliver runs on the sink
// goroutine, so no locking is needed until the pipeline is closed.
type collectSink struct {
	tags   map[string][]stream.Match
	data   map[string][]byte
	eos    map[string]bool
	errs   map[string]error
	closed bool
}

func newCollectSink() *collectSink {
	return &collectSink{
		tags: make(map[string][]stream.Match),
		data: make(map[string][]byte),
		eos:  make(map[string]bool),
		errs: make(map[string]error),
	}
}

func (s *collectSink) Deliver(b *Batch) error {
	s.tags[b.Key] = append(s.tags[b.Key], b.Tags...)
	s.data[b.Key] = append(s.data[b.Key], b.Data...) // Data is pooled: copy
	if b.EOS {
		s.eos[b.Key] = true
	}
	if b.Err != nil {
		s.errs[b.Key] = b.Err
	}
	return nil
}

func (s *collectSink) Close() error {
	s.closed = true
	return nil
}

func TestPipelineTagsManyStreams(t *testing.T) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	sink := newCollectSink()
	p, err := NewPipeline(Config{Shards: 4, Factory: TaggerFactory(spec)}, sink)
	if err != nil {
		t.Fatal(err)
	}

	// 10 independent streams, interleaved chunk by chunk.
	const streams = 10
	texts := make([][]byte, streams)
	for i := range texts {
		gen := xmlrpc.NewGenerator(int64(i+1), xmlrpc.Options{})
		corpus, _ := gen.Corpus(3)
		texts[i] = []byte(corpus)
	}
	for off := 0; ; off++ {
		sent := false
		for i, text := range texts {
			lo, hi := off*17, (off+1)*17
			if lo >= len(text) {
				continue
			}
			if hi > len(text) {
				hi = len(text)
			}
			if err := p.Send(fmt.Sprintf("stream-%d", i), text[lo:hi]); err != nil {
				t.Fatal(err)
			}
			sent = true
		}
		if !sent {
			break
		}
	}
	for i := range texts {
		if err := p.CloseStream(fmt.Sprintf("stream-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.closed {
		t.Error("sink not closed")
	}

	// Every stream's batches must reassemble its exact input and carry the
	// same tags a standalone tagger finds.
	ref := stream.NewTagger(spec)
	for i, text := range texts {
		key := fmt.Sprintf("stream-%d", i)
		if !sink.eos[key] {
			t.Errorf("%s: no EOS batch", key)
		}
		if err := sink.errs[key]; err != nil {
			t.Errorf("%s: backend error: %v", key, err)
		}
		if !reflect.DeepEqual(sink.data[key], text) {
			t.Errorf("%s: reassembled bytes differ from input", key)
		}
		want := ref.Tag(text)
		if !reflect.DeepEqual(sink.tags[key], want) {
			t.Errorf("%s: tags = %v\nwant %v", key, sink.tags[key], want)
		}
	}
}

func TestPipelineStreamAffinity(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shardOf := make(map[string]map[int]bool)
	var mu sync.Mutex
	sink := SinkFunc(func(b *Batch) error {
		mu.Lock()
		defer mu.Unlock()
		if shardOf[b.Key] == nil {
			shardOf[b.Key] = make(map[int]bool)
		}
		shardOf[b.Key][b.Shard] = true
		return nil
	})
	p, err := NewPipeline(Config{Shards: 8, Factory: TaggerFactory(spec)}, sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		p.Send(key, []byte("if true then go"))
		p.Send(key, []byte(" else stop"))
		p.CloseStream(key)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for key, shards := range shardOf {
		if len(shards) != 1 {
			t.Errorf("stream %s visited %d shards, want 1", key, len(shards))
		}
	}
}

func TestPipelineParserBackendVerdicts(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := ParserFactory(spec)
	if err != nil {
		t.Fatal(err)
	}
	sink := newCollectSink()
	p, err := NewPipeline(Config{Shards: 2, Factory: pf}, sink)
	if err != nil {
		t.Fatal(err)
	}
	p.Send("good", []byte("if true then go else stop"))
	p.Send("bad", []byte("if true go"))
	p.CloseStream("good")
	p.CloseStream("bad")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.errs["good"]; err != nil {
		t.Errorf("conforming stream got verdict %v", err)
	}
	if sink.errs["bad"] == nil {
		t.Error("non-conforming stream got no verdict")
	}
	if n := len(sink.tags["good"]); n == 0 {
		t.Error("conforming stream produced no tags")
	}
}

func TestPipelineCloseFlushesOpenStreams(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := newCollectSink()
	p, err := NewPipeline(Config{Shards: 2, Factory: TaggerFactory(spec)}, sink)
	if err != nil {
		t.Fatal(err)
	}
	p.Send("open", []byte("if true then go else stop"))
	// No CloseStream: pipeline Close must synthesize the EOS flush (the
	// final byte's detection is pending in the lookahead).
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.eos["open"] {
		t.Error("open stream was not flushed with EOS on pipeline Close")
	}
	want := stream.NewTagger(spec).Tag([]byte("if true then go else stop"))
	if !reflect.DeepEqual(sink.tags["open"], want) {
		t.Errorf("tags = %v, want %v", sink.tags["open"], want)
	}
}

func TestPipelineSendAfterClose(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(Config{Shards: 1, Factory: TaggerFactory(spec)}, SinkFunc(func(*Batch) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Send("x", []byte("go")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
	if err := p.CloseStream("x"); !errors.Is(err, ErrClosed) {
		t.Errorf("CloseStream after Close = %v, want ErrClosed", err)
	}
	if err := p.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close = %v, want ErrClosed", err)
	}
}

// TestPipelineSendCloseRace hammers Send from many goroutines while the
// pipeline closes underneath them: every Send must either fully succeed
// (its bytes show up in delivered batches) or fail with ErrClosed —
// nothing in between, and nothing lost. Run under -race this also audits
// the dispatch/Close locking.
func TestPipelineSendCloseRace(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	delivered := make(map[string]int) // stream key -> bytes delivered
	sink := SinkFunc(func(b *Batch) error {
		mu.Lock()
		delivered[b.Key] += len(b.Data)
		mu.Unlock()
		return nil
	})
	p, err := NewPipeline(Config{Shards: 4, Queue: 4, Factory: TaggerFactory(spec)}, sink)
	if err != nil {
		t.Fatal(err)
	}
	const senders = 8
	accepted := make([]int, senders) // bytes whose Send returned nil
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("s%d", g)
			chunk := []byte("if true then go else stop ")
			<-start
			for i := 0; i < 200; i++ {
				err := p.Send(key, chunk)
				if err == nil {
					accepted[g] += len(chunk)
				} else if !errors.Is(err, ErrClosed) {
					t.Errorf("sender %d: Send = %v, want nil or ErrClosed", g, err)
					return
				} else {
					return
				}
			}
		}(g)
	}
	close(start)
	p.Close() // races the senders by design
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for g := 0; g < senders; g++ {
		key := fmt.Sprintf("s%d", g)
		if delivered[key] != accepted[g] {
			t.Errorf("stream %s: %d bytes delivered, %d accepted by Send", key, delivered[key], accepted[g])
		}
	}
}

// TestPipelineOrderingUnderConcurrency checks per-stream batch order: with
// many streams fed from concurrent senders, each stream's delivered bytes
// must reassemble exactly in Send order, with EOS last. The sink copies
// Data (it is pooled and invalid after Deliver returns).
func TestPipelineOrderingUnderConcurrency(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	const streams = 16
	const chunks = 120
	type state struct {
		data     []byte
		eosSeen  bool
		afterEOS bool
	}
	got := make(map[string]*state)
	sink := SinkFunc(func(b *Batch) error {
		s := got[b.Key]
		if s == nil {
			s = &state{}
			got[b.Key] = s
		}
		if s.eosSeen {
			s.afterEOS = true
		}
		s.data = append(s.data, b.Data...)
		if b.EOS {
			s.eosSeen = true
		}
		return nil
	})
	p, err := NewPipeline(Config{Shards: 4, Queue: 8, Factory: TaggerFactory(spec)}, sink)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte)
	var wg sync.WaitGroup
	for g := 0; g < streams; g++ {
		key := fmt.Sprintf("s%d", g)
		var full []byte
		for i := 0; i < chunks; i++ {
			full = append(full, []byte(fmt.Sprintf("%s:%d;", key, i))...)
		}
		want[key] = full
		wg.Add(1)
		go func(key string, full []byte) {
			defer wg.Done()
			for off := 0; off < len(full); {
				n := 7
				if off+n > len(full) {
					n = len(full) - off
				}
				if err := p.Send(key, full[off:off+n]); err != nil {
					t.Errorf("%s: Send: %v", key, err)
					return
				}
				off += n
			}
			if err := p.CloseStream(key); err != nil {
				t.Errorf("%s: CloseStream: %v", key, err)
			}
		}(key, full)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for key, full := range want {
		s := got[key]
		if s == nil {
			t.Fatalf("stream %s: no batches delivered", key)
		}
		if !bytes.Equal(s.data, full) {
			t.Errorf("stream %s: batches out of order or corrupted (%d bytes vs %d sent)", key, len(s.data), len(full))
		}
		if !s.eosSeen {
			t.Errorf("stream %s: no EOS batch", key)
		}
		if s.afterEOS {
			t.Errorf("stream %s: batch delivered after EOS", key)
		}
	}
}

func TestPipelineConcurrentSenders(t *testing.T) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	var mc MetricCounters
	total := 0
	sink := SinkFunc(func(b *Batch) error {
		total += len(b.Tags)
		return nil
	})
	p, err := NewPipeline(Config{Shards: 4, Queue: 8, Factory: TaggerFactory(spec), Hooks: mc.Hooks()}, sink)
	if err != nil {
		t.Fatal(err)
	}
	gen := xmlrpc.NewGenerator(99, xmlrpc.Options{})
	msg, _ := gen.Message()
	var wg sync.WaitGroup
	const senders = 8
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			key := fmt.Sprintf("conn-%d", s)
			for i := 0; i < 20; i++ {
				if err := p.Send(key, []byte(msg+"\n")); err != nil {
					t.Error(err)
					return
				}
			}
			p.CloseStream(key)
		}(s)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Error("no tags delivered")
	}
	counters, maxDepth := mc.Snapshot()
	if counters.Matches != int64(total) {
		t.Errorf("hooks saw %d matches, sink saw %d", counters.Matches, total)
	}
	if want := int64(senders * 20 * len(msg+"\n")); counters.Bytes != want {
		t.Errorf("hooks saw %d bytes, want %d", counters.Bytes, want)
	}
	if maxDepth == 0 {
		t.Log("queue depth high-water mark stayed 0 (fast consumer)")
	}
}

func TestPipelineSinkErrorPropagates(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sinkErr := fmt.Errorf("sink exploded")
	p, err := NewPipeline(Config{Shards: 1, Factory: TaggerFactory(spec)}, SinkFunc(func(*Batch) error { return sinkErr }))
	if err != nil {
		t.Fatal(err)
	}
	p.Send("x", []byte("go"))
	p.CloseStream("x")
	if err := p.Close(); err != sinkErr {
		t.Errorf("Close error = %v, want %v", err, sinkErr)
	}
}

// TestPipelineIdleFlushDelivers checks a partially filled dispatch batch
// reaches the sink without further traffic or a close: the idle flusher
// must bound batching latency.
func TestPipelineIdleFlushDelivers(t *testing.T) {
	delivered := make(chan string, 16)
	sink := SinkFunc(func(b *Batch) error {
		delivered <- b.Key
		return nil
	})
	p, err := NewPipeline(Config{
		Shards:     1,
		Factory:    fakeFactory,
		BatchBytes: 1 << 20, // far above the chunk size: only idle can flush
		BatchIdle:  time.Millisecond,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Prime the shard queue so the enqueue-time "queue empty" flush does
	// not fire for the probe chunk.
	if err := p.Send("warm", []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	if err := p.Send("probe", []byte("idle-flushed chunk")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case key := <-delivered:
			if key == "probe" {
				return
			}
		case <-deadline:
			t.Fatal("idle flusher never delivered the pending batch")
		}
	}
}

// TestPipelineSinkWorkers runs multiple sink workers and checks the
// per-stream contract still holds: bytes reassemble exactly, tags equal a
// standalone run, EOS arrives last — with a Sink that must now be
// concurrency safe.
func TestPipelineSinkWorkers(t *testing.T) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	data := make(map[string][]byte)
	tags := make(map[string][]stream.Match)
	eos := make(map[string]bool)
	sink := SinkFunc(func(b *Batch) error {
		mu.Lock()
		defer mu.Unlock()
		if eos[b.Key] {
			return fmt.Errorf("%s: batch after EOS", b.Key)
		}
		data[b.Key] = append(data[b.Key], b.Data...)
		tags[b.Key] = append(tags[b.Key], b.Tags...)
		if b.EOS {
			eos[b.Key] = true
		}
		return nil
	})
	p, err := NewPipeline(Config{
		Shards:      4,
		Factory:     TaggerFactory(spec),
		SinkWorkers: 4,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}

	const streams = 12
	texts := make([][]byte, streams)
	for i := range texts {
		gen := xmlrpc.NewGenerator(int64(i+1), xmlrpc.Options{})
		corpus, _ := gen.Corpus(3)
		texts[i] = []byte(corpus)
	}
	var wg sync.WaitGroup
	for i := range texts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("ws-%d", i)
			text := texts[i]
			for off := 0; off < len(text); off += 119 {
				hi := off + 119
				if hi > len(text) {
					hi = len(text)
				}
				if err := p.Send(key, text[off:hi]); err != nil {
					t.Errorf("%s: Send = %v", key, err)
					return
				}
			}
			if err := p.CloseStream(key); err != nil {
				t.Errorf("%s: CloseStream = %v", key, err)
			}
		}(i)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	ref := stream.NewTagger(spec)
	for i := range texts {
		key := fmt.Sprintf("ws-%d", i)
		if !eos[key] {
			t.Errorf("%s: no EOS batch", key)
		}
		if !bytes.Equal(data[key], texts[i]) {
			t.Errorf("%s: reassembled %d bytes, sent %d", key, len(data[key]), len(texts[i]))
		}
		if want := ref.Tag(texts[i]); !reflect.DeepEqual(tags[key], want) {
			t.Errorf("%s: tags diverge from standalone run (%d vs %d)", key, len(tags[key]), len(want))
		}
	}
}

// TestPipelineSteadyStateSendAllocs pins the allocation budget of the
// batched Send path: arenas, dispatch batches, delivery groups and match
// slices are pooled, so steady state should cost about one allocation per
// message (the Batch header) plus amortized noise.
func TestPipelineSteadyStateSendAllocs(t *testing.T) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(Config{
		Shards:  1,
		Factory: DFAFactory(spec, 0),
	}, SinkFunc(func(*Batch) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte(" "), 4096)
	// Warm the stream, its backend and the pools.
	for i := 0; i < 64; i++ {
		if err := p.Send("steady", chunk); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := p.Send("steady", chunk); err != nil {
			t.Fatal(err)
		}
	})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// One Batch header per message is expected; everything else is pooled.
	// The bound leaves slack for pool misses after a GC and for the shard
	// and sink goroutines' amortized costs, while still catching any
	// per-byte or per-tag regression.
	if avg > 6 {
		t.Errorf("steady-state Send averages %.1f allocs, want <= 6", avg)
	}
}
