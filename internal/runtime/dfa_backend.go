package runtime

import (
	"cfgtag/internal/core"
	"cfgtag/internal/stream"
)

// dfaBackend adapts the lazy-DFA compiled engine — the cached
// determinization of the bit-parallel NFA — to the Backend contract. It is
// the highest-throughput software path: identical detections to the stream
// backend, served from hash-consed transition outcomes instead of per-byte
// bitset recomputation.
type dfaBackend struct {
	d       *stream.DFA
	shard   int
	hooks   *Hooks
	lim     Limits
	pending []stream.Match
	bytes   int64
	matches int64

	// Cache-stat deltas already reported to the hooks (the cache, and its
	// lifetime counters, survive Reset by design — warm caches are the
	// point).
	repHits, repMisses, repResets int64
}

// DFAFactory returns a Factory producing lazy-DFA engines. The spec is
// compiled once and every Backend executes against one shared transition
// cache bounded by maxStates states (0 = stream.DefaultDFAMaxStates):
// determinization is paid once per factory, not once per stream, and
// late-arriving streams run warm from their first byte. On overflow the
// cache resets wholesale and rebuilds from live traffic, so the path
// degrades to NFA speed, never to unbounded memory.
func DFAFactory(spec *core.Spec, maxStates int) Factory {
	return DFAFactoryConfig(spec, stream.DFAConfig{MaxStates: maxStates})
}

// DFAFactoryConfig is DFAFactory with the full stream.DFAConfig exposed,
// notably NoAccel for differential runs against the skip-ahead path.
func DFAFactoryConfig(spec *core.Spec, cfg stream.DFAConfig) Factory {
	return DFAFactoryLimits(spec, cfg, Limits{})
}

// DFAFactoryLimits is DFAFactoryConfig with per-stream resource bounds:
// MaxPendingMatches bounds each stream's undrained match buffer (error
// wrapping ErrResourceExhausted on trip), and Limits.Mem — unless the
// DFAConfig already carries a MemDelta — observes the shared transition
// cache's estimated footprint, so tenant memory budgets see cache growth.
func DFAFactoryLimits(spec *core.Spec, cfg stream.DFAConfig, lim Limits) Factory {
	if cfg.MemDelta == nil {
		cfg.MemDelta = lim.Mem.Delta()
	}
	cache := stream.NewDFACache(spec, cfg)
	return func(shard int, h *Hooks) (Backend, error) {
		d := cache.NewDFA()
		b := &dfaBackend{d: d, shard: shard, hooks: h, lim: lim}
		d.OnMatch = func(m stream.Match) {
			b.pending = append(b.pending, m)
			b.matches++
			b.hooks.match(b.shard, m)
		}
		d.OnError = func(pos int64) { b.hooks.recovery(b.shard, pos) }
		d.OnCollision = func(pos int64, x, y int) { b.hooks.collision(b.shard, pos, x, y) }
		return b, nil
	}
}

func (b *dfaBackend) Reset() {
	b.d.Reset()
	b.pending = b.pending[:0]
	b.bytes = 0
	b.matches = 0
}

func (b *dfaBackend) Feed(p []byte) error {
	n, err := b.d.Write(p)
	b.bytes += int64(n)
	b.hooks.bytes(b.shard, n)
	if err == nil {
		err = b.lim.checkPending(len(b.pending))
	}
	return err
}

func (b *dfaBackend) Close() error {
	err := b.d.Close()
	hits, misses, resets := b.d.CacheStats()
	if dh, dm, dr := hits-b.repHits, misses-b.repMisses, resets-b.repResets; dh|dm|dr != 0 {
		b.hooks.cacheStats(b.shard, dh, dm, dr)
		b.repHits, b.repMisses, b.repResets = hits, misses, resets
	}
	return err
}

func (b *dfaBackend) Matches() []stream.Match {
	out := b.pending
	b.pending = nil
	return out
}

// DrainMatches hands the confirmed matches to the caller and adopts buf as
// the new pending buffer, letting the pipeline recycle match slices.
func (b *dfaBackend) DrainMatches(buf []stream.Match) []stream.Match {
	out := b.pending
	b.pending = buf[:0]
	return out
}

// CacheStates reports the number of DFA states currently cached;
// MaxStates the configured bound. Exposed for the conformance harness's
// cache-bound assertion.
func (b *dfaBackend) CacheStates() int { return b.d.CacheStates() }
func (b *dfaBackend) MaxStates() int   { return b.d.MaxStates() }

func (b *dfaBackend) Counters() Counters {
	hits, misses, resets := b.d.CacheStats()
	return Counters{
		Bytes:      b.bytes,
		Matches:    b.matches,
		Recoveries: b.d.Errors,
		Collisions: b.d.Collisions,
		// Cache totals span the backend's lifetime, not the last Reset:
		// the transition cache is deliberately kept warm across streams.
		CacheHits:   hits,
		CacheMisses: misses,
		CacheResets: resets,
	}
}
