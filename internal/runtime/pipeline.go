package runtime

import (
	"errors"
	"fmt"
	"hash/fnv"
	goruntime "runtime"
	"sync"

	"cfgtag/internal/stream"
)

// ErrClosed is returned by Send, CloseStream and a second Close once the
// pipeline has been closed. The rejection is clean: a Send racing Close
// either enqueues fully (its batch is flushed and delivered before Close
// returns) or fails with ErrClosed — bytes are never partially accepted
// and never silently dropped.
var ErrClosed = errors.New("runtime: pipeline is closed")

// Batch is one unit of Sink delivery: the chunk of stream bytes a shard
// just processed and the detections it confirmed. Offsets in Tags are
// absolute within the stream identified by Key.
type Batch struct {
	// Key identifies the stream the chunk belongs to.
	Key string
	// Shard is the shard that owns the stream.
	Shard int
	// Data is the chunk's bytes. The slice is pooled: it is valid only
	// until Deliver returns.
	Data []byte
	// Tags are the detections confirmed by this chunk (and, on EOS, the
	// final flush), in input order with absolute End offsets.
	Tags []stream.Match
	// EOS marks the stream's final batch.
	EOS bool
	// Err carries the backend's verdict on EOS: nil for the FSA paths,
	// the parse error for the exact-recognition parser path. A non-EOS
	// batch carries a Feed error here only if the backend failed.
	Err error
}

// Sink consumes completed tag batches. Deliver is called from a single
// goroutine; batches of one stream arrive in order. Deliver must not
// retain b.Data past the call (copy if needed).
type Sink interface {
	Deliver(b *Batch) error
	Close() error
}

// SinkFunc adapts a function to the Sink interface (with a no-op Close).
type SinkFunc func(b *Batch) error

// Deliver calls f.
func (f SinkFunc) Deliver(b *Batch) error { return f(b) }

// Close is a no-op.
func (SinkFunc) Close() error { return nil }

// Config tunes a Pipeline.
type Config struct {
	// Shards is the number of tagging shards (0 = GOMAXPROCS). Each
	// shard runs one goroutine owning the Backends of the streams
	// dispatched to it.
	Shards int
	// Queue is each shard's input queue capacity (0 = 64). Send blocks
	// when the target shard's queue is full — natural backpressure.
	Queue int
	// Factory creates the per-stream Backend (required).
	Factory Factory
	// Hooks observes bytes, matches, recovery events, collisions and
	// queue depths across all shards; may be nil.
	Hooks *Hooks
}

// Pipeline is the sharded runtime: messages enter via Send, are dispatched
// to a shard by stream key, flow through that stream's Backend, and the
// resulting tag batches are delivered to the Sink by a dedicated sink
// goroutine. Send/CloseStream are safe for concurrent use.
type Pipeline struct {
	cfg    Config
	sink   Sink
	shards []*shard
	sinkCh chan *Batch

	bufs sync.Pool // chunk buffers, recycled after Deliver

	shardWG sync.WaitGroup
	sinkWG  sync.WaitGroup

	// stateMu guards closed; dispatch holds the read side across its
	// enqueue so Close never closes a channel with a send in flight.
	stateMu sync.RWMutex
	closed  bool

	errMu   sync.Mutex
	sinkErr error
}

// message is one dispatch unit on a shard queue.
type message struct {
	key  string
	data []byte // pooled; nil for a pure close
	eos  bool
}

// shard owns the streams hashed to it: one Backend per live stream key.
type shard struct {
	id      int
	in      chan message
	streams map[string]Backend
	p       *Pipeline
}

// NewPipeline starts the shard and sink goroutines. Close releases them.
func NewPipeline(cfg Config, sink Sink) (*Pipeline, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("runtime: Config.Factory is required")
	}
	if sink == nil {
		return nil, fmt.Errorf("runtime: sink is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = goruntime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	p := &Pipeline{
		cfg:    cfg,
		sink:   sink,
		sinkCh: make(chan *Batch, cfg.Queue),
	}
	p.bufs.New = func() any { return []byte(nil) }
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			id:      i,
			in:      make(chan message, cfg.Queue),
			streams: make(map[string]Backend),
			p:       p,
		}
		p.shards = append(p.shards, s)
		p.shardWG.Add(1)
		go s.run()
	}
	p.sinkWG.Add(1)
	go p.drainSink()
	return p, nil
}

// Shards reports the pipeline width.
func (p *Pipeline) Shards() int { return len(p.shards) }

// Send dispatches one chunk of the stream identified by key. The data is
// copied into a pooled buffer, so the caller may reuse it immediately.
// Send blocks while the target shard's queue is full. After Close it
// fails with ErrClosed and the chunk is not accepted.
func (p *Pipeline) Send(key string, data []byte) error {
	return p.dispatch(key, data, false)
}

// CloseStream ends one stream: its Backend is flushed and closed, and the
// final batch reaches the Sink with EOS set. After Close it fails with
// ErrClosed (Close already flushed every open stream).
func (p *Pipeline) CloseStream(key string) error {
	return p.dispatch(key, nil, true)
}

func (p *Pipeline) dispatch(key string, data []byte, eos bool) error {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	var buf []byte
	if len(data) > 0 {
		buf = p.getBuf(len(data))
		copy(buf, data)
	}
	s := p.shards[p.shardFor(key)]
	s.in <- message{key: key, data: buf, eos: eos}
	p.cfg.Hooks.queueDepth(s.id, len(s.in))
	return nil
}

// shardFor hashes the stream key onto a shard (FNV-1a).
func (p *Pipeline) shardFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(p.shards)))
}

// Close flushes every open stream (delivering its EOS batch), stops the
// shards and the sink goroutine, closes the Sink, and returns the first
// Sink error. A second Close fails with ErrClosed.
func (p *Pipeline) Close() error {
	p.stateMu.Lock()
	if p.closed {
		p.stateMu.Unlock()
		return fmt.Errorf("runtime: pipeline already closed: %w", ErrClosed)
	}
	p.closed = true
	p.stateMu.Unlock()

	for _, s := range p.shards {
		close(s.in)
	}
	p.shardWG.Wait()
	close(p.sinkCh)
	p.sinkWG.Wait()

	cerr := p.sink.Close()
	p.errMu.Lock()
	err := p.sinkErr
	p.errMu.Unlock()
	if err == nil {
		err = cerr
	}
	return err
}

func (p *Pipeline) getBuf(n int) []byte {
	b := p.bufs.Get().([]byte)
	if cap(b) < n {
		b = make([]byte, n)
	}
	return b[:n]
}

func (p *Pipeline) putBuf(b []byte) {
	if b != nil {
		p.bufs.Put(b[:0]) //nolint:staticcheck // slice, not pointer, by design
	}
}

// run is the shard loop: per-stream Backend lifecycle and batch emission.
// When the input channel closes (pipeline Close), still-open streams are
// flushed with synthetic EOS batches so sinks always see stream ends.
func (s *shard) run() {
	defer s.p.shardWG.Done()
	for msg := range s.in {
		s.process(msg)
	}
	for key := range s.streams {
		s.process(message{key: key, eos: true})
	}
}

func (s *shard) process(msg message) {
	b, ok := s.streams[msg.key]
	if !ok {
		var err error
		b, err = s.p.cfg.Factory(s.id, s.p.cfg.Hooks)
		if err != nil {
			s.p.putBuf(msg.data)
			s.emit(&Batch{Key: msg.key, Shard: s.id, EOS: true, Err: err})
			return
		}
		s.streams[msg.key] = b
	}
	batch := &Batch{Key: msg.key, Shard: s.id, Data: msg.data, EOS: msg.eos}
	if len(msg.data) > 0 {
		batch.Err = b.Feed(msg.data)
	}
	if msg.eos {
		if cerr := b.Close(); batch.Err == nil {
			batch.Err = cerr
		}
		delete(s.streams, msg.key)
	}
	batch.Tags = b.Matches()
	s.emit(batch)
}

func (s *shard) emit(batch *Batch) {
	s.p.sinkCh <- batch
}

// drainSink serializes Sink delivery and recycles chunk buffers.
func (p *Pipeline) drainSink() {
	defer p.sinkWG.Done()
	for b := range p.sinkCh {
		p.errMu.Lock()
		failed := p.sinkErr != nil
		p.errMu.Unlock()
		if !failed {
			if err := p.sink.Deliver(b); err != nil {
				p.errMu.Lock()
				if p.sinkErr == nil {
					p.sinkErr = err
				}
				p.errMu.Unlock()
			}
		}
		p.putBuf(b.Data)
	}
}
