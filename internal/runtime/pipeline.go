package runtime

import (
	"container/list"
	"errors"
	"fmt"
	"math/rand"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"cfgtag/internal/stream"
)

// ErrClosed is returned by Send, CloseStream and a second Close once the
// pipeline has been closed. The rejection is clean: a Send racing Close
// either enqueues fully (its batch is flushed and delivered before Close
// returns) or fails with ErrClosed — bytes are never partially accepted
// and never silently dropped.
var ErrClosed = errors.New("runtime: pipeline is closed")

// ErrQuarantined is returned by Send and CloseStream while a stream key is
// quarantined: its backend previously failed or panicked, and repeat
// traffic is rejected at the front door — cheaply, without re-creating a
// backend — until the quarantine TTL expires. Test with errors.Is.
var ErrQuarantined = errors.New("runtime: stream is quarantined")

// ErrBackendPanic wraps a panic recovered from a Backend's Feed, Close or
// Matches. The panicking stream's final batch carries it in Batch.Err with
// EOS set; the process survives. Test with errors.Is.
var ErrBackendPanic = errors.New("runtime: backend panicked")

// ErrSinkPanic wraps a panic recovered from Sink.Deliver. It is treated
// like a Deliver error: retried, then dead-lettered or escalated to a
// permanent sink failure. Test with errors.Is.
var ErrSinkPanic = errors.New("runtime: sink panicked")

// ErrOverloaded is returned by Send in shed mode (Config.SendTimeout != 0)
// when the target shard's queue sat at the ShedHighWater mark past the
// timeout. The chunk is not accepted — bytes are never partially enqueued
// — and surviving streams are untouched: the caller decides whether to
// retry, back off, or end the stream. Test with errors.Is.
var ErrOverloaded = errors.New("runtime: pipeline overloaded")

// ErrResourceExhausted marks a stream stopped by a resource budget: a
// per-stream buffer or pending-match bound (Limits), an Earley chart
// budget, or a tenant memory budget (Quota.MemBudgetBytes). A budgeted
// stream ends with an error-carrying EOS batch and its key is quarantined
// like any other backend fault. Test with errors.Is.
var ErrResourceExhausted = errors.New("runtime: resource budget exhausted")

// ErrBackendStalled marks a backend call (Feed or Close) the watchdog
// caught running past Config.FeedDeadline. Go code cannot be interrupted,
// so the verdict lands when the call finally returns: the stream ends with
// an error-carrying EOS batch and its key is quarantined. A call that
// never returns is still observable through Hooks.Watchdog. Test with
// errors.Is.
var ErrBackendStalled = errors.New("runtime: backend stalled")

// ErrBreakerOpen is the error a batch is dead-lettered with while a sink
// worker's circuit breaker is open (see Config.BreakerThreshold). Test
// with errors.Is.
var ErrBreakerOpen = errors.New("runtime: sink circuit breaker open")

// DefaultQuarantine is the stream-quarantine TTL used when Config leaves
// Quarantine zero.
const DefaultQuarantine = 30 * time.Second

// DefaultBatchBytes is the per-shard coalescing target used when
// Config.BatchBytes is zero.
const DefaultBatchBytes = 64 << 10

// DefaultBatchIdle is the idle-flush deadline used when Config.BatchIdle
// is zero: a partially filled batch never waits longer than this before it
// is pushed to its shard.
const DefaultBatchIdle = time.Millisecond

// maxPooledBufCap bounds chunk-arena retention in the pool: one huge
// chunk must not pin a multi-megabyte allocation for the pipeline's
// lifetime, so larger buffers are dropped for the GC instead of recycled.
const maxPooledBufCap = 1 << 20

// maxPooledMatchCap bounds match-slice retention in the pool, for the same
// reason.
const maxPooledMatchCap = 8192

// sinkBackoffCap caps the exponential Deliver-retry backoff.
const sinkBackoffCap = 250 * time.Millisecond

// DefaultBreakerCooldown is how long an open sink circuit breaker sheds
// before its half-open probe when Config.BreakerCooldown is zero.
const DefaultBreakerCooldown = time.Second

// quarSweepMin floors the amortized quarantine-sweep threshold so tiny
// maps are not swept on every insert.
const quarSweepMin = 16

// Batch is one unit of Sink delivery: the chunk of stream bytes a shard
// just processed and the detections it confirmed. Offsets in Tags are
// absolute within the stream identified by Key.
type Batch struct {
	// Key identifies the stream the chunk belongs to.
	Key string
	// Shard is the shard that owns the stream.
	Shard int
	// Data is the chunk's bytes. The backing storage is a pooled arena
	// shared with the other batches of one dispatch group: it is valid
	// only until Deliver returns.
	Data []byte
	// Tags are the detections confirmed by this chunk (and, on EOS, the
	// final flush), in input order with absolute End offsets. The slice is
	// pooled like Data: valid only until Deliver returns (copy to retain).
	Tags []stream.Match
	// EOS marks the stream's final batch. Besides CloseStream, a stream
	// ends when its backend errors or panics (Err is set), when it is
	// evicted (Evicted is set), or on pipeline Close.
	EOS bool
	// Evicted marks a synthetic EOS batch flushed because the stream was
	// the least-recently-active one on a shard at its MaxStreams cap.
	Evicted bool
	// Err carries the backend's verdict on EOS: nil for the FSA paths,
	// the parse error for the exact-recognition parser path. A failed or
	// panicking Feed also ends the stream, reporting here with EOS set.
	Err error
	// Version identifies the backend factory version that produced this
	// batch's tags (see SwapFactory). Spec-dependent sinks use it to
	// decode tags with the grammar generation the stream is actually
	// running, across zero-downtime reloads.
	Version int

	// ver releases the stream's factory-version binding after this final
	// batch is delivered; set only on EOS batches of streams that bound a
	// version.
	ver *factoryVersion
}

// Sink consumes completed tag batches. With the default single sink
// worker, Deliver is called from one goroutine; with Config.SinkWorkers >
// 1 the shards are partitioned across workers and the Sink must be safe
// for concurrent Deliver calls. Either way batches of one stream arrive in
// order on one goroutine. Deliver must not retain b.Data or b.Tags past
// the call (copy if needed). A Deliver error or panic is retried with
// backoff (see Config); wrap an error with PermanentError to fail the
// pipeline immediately instead.
type Sink interface {
	Deliver(b *Batch) error
	Close() error
}

// SinkFunc adapts a function to the Sink interface (with a no-op Close).
type SinkFunc func(b *Batch) error

// Deliver calls f.
func (f SinkFunc) Deliver(b *Batch) error { return f(b) }

// Close is a no-op.
func (SinkFunc) Close() error { return nil }

// permanentError marks a Deliver error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// PermanentError marks err as a permanent sink failure: Deliver errors
// wrapped by it are not retried — the pipeline records the failure at
// once and Send starts returning it.
func PermanentError(err error) error { return &permanentError{err: err} }

func isPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Config tunes a Pipeline.
type Config struct {
	// Shards is the number of tagging shards (0 = GOMAXPROCS). Each
	// shard runs one goroutine owning the Backends of the streams
	// dispatched to it.
	Shards int
	// Queue is each shard's input queue capacity, in message batches
	// (0 = 64). Send blocks when the target shard's queue is full —
	// natural backpressure.
	Queue int
	// Factory creates the per-stream Backend (required).
	Factory Factory
	// Hooks observes bytes, matches, recovery events, collisions, queue
	// depths and fault-tolerance events across all shards; may be nil.
	Hooks *Hooks
	// MaxStreams caps the live streams per shard (0 = unlimited). When a
	// new stream would push a shard past the cap, the shard's least-
	// recently-active stream is evicted: its backend is flushed and
	// closed, and its final batch is delivered with EOS and Evicted set.
	MaxStreams int
	// Quarantine is the TTL a stream key stays poisoned after its
	// backend errors or panics; Send and CloseStream reject the key with
	// ErrQuarantined until it expires. 0 selects DefaultQuarantine; a
	// negative value disables quarantining.
	Quarantine time.Duration
	// BatchBytes is the per-shard dispatch-coalescing target: Send copies
	// chunks into a pooled arena and hands the shard one batch when the
	// arena reaches this size, when the shard goes idle, or after
	// BatchIdle. 0 selects DefaultBatchBytes; a negative value disables
	// coalescing (every Send dispatches immediately).
	BatchBytes int
	// BatchIdle bounds how long a partially filled dispatch batch may
	// wait before being flushed to its shard (0 = DefaultBatchIdle).
	BatchIdle time.Duration
	// SinkWorkers is the number of sink-delivery goroutines (0 or 1 = a
	// single worker, the safe default). With more than one, shards are
	// partitioned across workers — batches of one stream always stay on
	// one worker, in order — and the Sink must be safe for concurrent
	// Deliver calls. Capped at Shards.
	SinkWorkers int
	// SinkAttempts is the number of Deliver attempts per batch,
	// including the first (0 = 3; 1 disables retry). Retries back off
	// exponentially from SinkBackoff with jitter, capped at 250ms.
	SinkAttempts int
	// SinkBackoff is the base delay before the first Deliver retry
	// (0 = 1ms).
	SinkBackoff time.Duration
	// DeadLetter, when set, receives each batch whose Deliver attempts
	// were exhausted on a transient error; the pipeline then carries on
	// with the next batch. When nil, an exhausted batch escalates to a
	// permanent sink failure instead. Like Deliver, the hook must not
	// retain b.Data or b.Tags past the call. It runs on the delivering
	// sink worker.
	DeadLetter func(b *Batch, err error)
	// SendTimeout selects the overload policy at dispatch. 0 (the
	// default) keeps the blocking behavior: Send waits while the target
	// shard's queue is full. Non-zero enables admission control: a Send
	// that finds the queue at the ShedHighWater mark is shed with
	// ErrOverloaded — immediately when SendTimeout is negative, or after
	// waiting up to SendTimeout for the queue to drain when positive.
	// CloseStream always blocks regardless, so streams can always close.
	SendTimeout time.Duration
	// ShedHighWater is the queue depth (in coalesced batches) at which
	// shed-mode Sends are rejected. 0 — or anything past Queue — means
	// the full queue capacity: shed only when no slot is free. Meaningful
	// only when SendTimeout != 0.
	ShedHighWater int
	// FeedDeadline arms the backend watchdog: a Feed or Close call
	// running past this deadline fires Hooks.Watchdog, and when it
	// finally returns, its stream ends with an ErrBackendStalled EOS
	// batch and a quarantined key. 0 disables the watchdog.
	FeedDeadline time.Duration
	// BreakerThreshold is the number of consecutive exhausted deliveries
	// (all SinkAttempts failed) that open a sink worker's circuit
	// breaker: while open, the worker stops calling Deliver and sheds
	// batches straight to DeadLetter with ErrBreakerOpen; after
	// BreakerCooldown one half-open probe decides whether to close it.
	// 0 disables the breaker; enabling it requires DeadLetter.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds before the
	// half-open probe (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// Mem, when set, aggregates the pipeline's estimated memory: dispatch
	// arenas checked out of the pool charge it, and backends built by a
	// Limits- or budget-aware factory (buffered stream bytes, DFA cache
	// states, Earley charts) charge the same gauge. Registry.Send
	// enforces Quota.MemBudgetBytes against it.
	Mem *MemGauge
}

// Pipeline is the sharded runtime: messages enter via Send, are coalesced
// into per-shard batches, dispatched to a shard by stream key, flow
// through that stream's Backend, and the resulting tag batches are
// delivered to the Sink by the sink workers. Send/CloseStream are safe for
// concurrent use.
//
// The pipeline is fault-isolating: a Backend panic is recovered and
// converted into an error-carrying EOS batch, the offending stream key is
// quarantined for Config.Quarantine, and Sink failures are retried before
// they become fatal. Only a permanent sink failure (see PermanentError and
// Config.DeadLetter) stops delivery; it is observable through Err and
// returned by subsequent Sends.
type Pipeline struct {
	cfg     Config
	sink    Sink
	shards  []*shard
	sinkChs []chan *sinkGroup

	quarTTL      time.Duration
	quarSweep    time.Duration
	batchBytes   int
	batchIdle    time.Duration
	sinkAttempts int
	sinkBackoff  time.Duration

	sendTimeout  time.Duration
	highWater    int
	feedDeadline time.Duration
	brThreshold  int
	brCooldown   time.Duration

	bufs    sync.Pool // chunk arenas, recycled after Deliver
	matches sync.Pool // match slices, recycled after Deliver
	sbPool  sync.Pool // *shardBatch dispatch units
	grpPool sync.Pool // *sinkGroup delivery units

	shardWG sync.WaitGroup
	sinkWG  sync.WaitGroup
	flushWG sync.WaitGroup

	flushStop chan struct{}

	// stateMu guards closed; dispatch holds the read side across its
	// enqueue so Close never closes a channel with a send in flight.
	stateMu sync.RWMutex
	closed  bool

	// verMu guards the factory-version registry: the current version,
	// per-version stream counts and retirement (see version.go).
	verMu     sync.Mutex
	curVer    *factoryVersion
	liveVers  map[int]*factoryVersion
	nextVerID int

	errMu   sync.Mutex
	sinkErr error
}

// msgRef is one message inside a shardBatch: a window into the batch's
// arena plus the stream-end flag.
type msgRef struct {
	key string
	off int
	n   int
	eos bool
}

// shardBatch is one coalesced dispatch unit on a shard queue: a pooled
// arena holding the concatenated chunk bytes and the message windows into
// it. A batch with only EOS messages carries no arena.
type shardBatch struct {
	data []byte
	msgs []msgRef
}

// sinkGroup is one delivery unit on a sink-worker queue: the Batches a
// shard produced from one shardBatch, in emission order, plus the arena
// their Data slices point into. The worker recycles the arena, the match
// slices and the group itself after the last Deliver returns.
type sinkGroup struct {
	batches []*Batch
	arena   []byte
}

// streamEntry is one live stream on a shard: its Backend plus its position
// in the shard's recency list (front = most recently active). rec is the
// backend's match-buffer recycler when it supports pooled match slices.
// ver is the factory version the stream bound at creation; it is released
// after the stream's final batch is delivered.
type streamEntry struct {
	key string
	b   Backend
	rec matchRecycler
	el  *list.Element
	ver *factoryVersion
}

// shard owns the streams hashed to it: one Backend per live stream key,
// kept in recency order for MaxStreams eviction, plus the quarantine table
// consulted by dispatch before accepting the key's traffic, plus the
// pending dispatch batch Sends coalesce into.
type shard struct {
	id      int
	in      chan *shardBatch
	streams map[string]*streamEntry
	lru     *list.List // of *streamEntry
	p       *Pipeline

	pendMu sync.Mutex
	pend   *shardBatch
	pendAt time.Time // when the pending batch got its first message

	// drainSig is pulsed (non-blockingly) by run() after each batch it
	// drains, waking one shed-mode Send waiting out its SendTimeout.
	drainSig chan struct{}

	quarMu   sync.Mutex
	quar     map[string]time.Time // key -> quarantine expiry
	quarN    atomic.Int32         // live entries in quar (lock-free fast path)
	quarHigh int                  // map size that triggers the next amortized sweep

	// Watchdog in-flight record, armed only when FeedDeadline > 0: the
	// backend call currently running on this shard's goroutine, if any.
	wdMu     sync.Mutex
	wdKey    string
	wdOrigin string
	wdStart  time.Time // zero = no call in flight
	wdFired  bool      // Hooks.Watchdog already fired for this call
}

// NewPipeline starts the shard, sink-worker and idle-flusher goroutines.
// Close releases them.
func NewPipeline(cfg Config, sink Sink) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sink == nil {
		return nil, fmt.Errorf("runtime: sink is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = goruntime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	p := &Pipeline{
		cfg:          cfg,
		sink:         sink,
		quarTTL:      cfg.Quarantine,
		batchBytes:   cfg.BatchBytes,
		batchIdle:    cfg.BatchIdle,
		sinkAttempts: cfg.SinkAttempts,
		sinkBackoff:  cfg.SinkBackoff,
		flushStop:    make(chan struct{}),
	}
	if p.quarTTL == 0 {
		p.quarTTL = DefaultQuarantine
	} else if p.quarTTL < 0 {
		p.quarTTL = 0
	}
	if p.batchBytes == 0 {
		p.batchBytes = DefaultBatchBytes
	} else if p.batchBytes < 0 {
		p.batchBytes = 0 // coalescing disabled: flush every message
	}
	if p.batchIdle <= 0 {
		p.batchIdle = DefaultBatchIdle
	}
	if p.sinkAttempts <= 0 {
		p.sinkAttempts = 3
	}
	if p.sinkBackoff <= 0 {
		p.sinkBackoff = time.Millisecond
	}
	p.sendTimeout = cfg.SendTimeout
	p.highWater = cfg.ShedHighWater
	if p.highWater <= 0 || p.highWater > cfg.Queue {
		p.highWater = cfg.Queue
	}
	p.feedDeadline = cfg.FeedDeadline
	p.brThreshold = cfg.BreakerThreshold
	p.brCooldown = cfg.BreakerCooldown
	if p.brCooldown <= 0 {
		p.brCooldown = DefaultBreakerCooldown
	}
	// Dead quarantine entries are reaped well before they could double
	// the map again, but never so often that sweeping competes with
	// dispatch.
	p.quarSweep = p.quarTTL / 2
	if p.quarSweep < 50*time.Millisecond {
		p.quarSweep = 50 * time.Millisecond
	}
	p.bufs.New = func() any { return []byte(nil) }
	p.sbPool.New = func() any { return new(shardBatch) }
	p.grpPool.New = func() any { return new(sinkGroup) }

	// Version 1 is the construction-time factory; SwapFactory publishes
	// successors.
	p.nextVerID = 1
	p.curVer = &factoryVersion{id: 1, factory: cfg.Factory}
	p.liveVers = map[int]*factoryVersion{1: p.curVer}

	workers := cfg.SinkWorkers
	if workers <= 0 {
		workers = 1
	}
	if workers > cfg.Shards {
		workers = cfg.Shards
	}
	for w := 0; w < workers; w++ {
		ch := make(chan *sinkGroup, cfg.Queue)
		p.sinkChs = append(p.sinkChs, ch)
		p.sinkWG.Add(1)
		go p.sinkWorker(ch, w, 0x5eed5eed^int64(w)*0x9e3779b9)
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			id:       i,
			in:       make(chan *shardBatch, cfg.Queue),
			streams:  make(map[string]*streamEntry),
			lru:      list.New(),
			quar:     make(map[string]time.Time),
			drainSig: make(chan struct{}, 1),
			p:        p,
		}
		p.shards = append(p.shards, s)
		p.shardWG.Add(1)
		go s.run()
	}
	p.flushWG.Add(1)
	go p.idleFlusher()
	if p.feedDeadline > 0 {
		p.flushWG.Add(1)
		go p.watchdog()
	}
	return p, nil
}

// Shards reports the pipeline width.
func (p *Pipeline) Shards() int { return len(p.shards) }

// Send dispatches one chunk of the stream identified by key. The data is
// copied into a pooled arena, so the caller may reuse it immediately.
// Chunks coalesce into per-shard batches that flush when full, when the
// shard goes idle, or after Config.BatchIdle; an accepted chunk is always
// delivered, even if Close follows immediately. Send blocks while the
// target shard's queue is full. After Close it fails with ErrClosed and
// the chunk is not accepted; a quarantined key fails with ErrQuarantined,
// and after a permanent sink failure every Send fails with that failure.
// Chunks accepted before a stream's backend faulted but not yet processed
// are discarded (the stream already received its error-carrying EOS
// batch).
func (p *Pipeline) Send(key string, data []byte) error {
	return p.dispatch(key, data, false)
}

// CloseStream ends one stream: its Backend is flushed and closed, and the
// final batch reaches the Sink with EOS set. After Close it fails with
// ErrClosed (Close already flushed every open stream); a quarantined key
// fails with ErrQuarantined (its EOS batch was already delivered when the
// backend faulted).
func (p *Pipeline) CloseStream(key string) error {
	return p.dispatch(key, nil, true)
}

// Err reports the first permanent sink failure, nil while the sink is
// healthy. Once set it never changes, Send and CloseStream return it, and
// subsequent batches are dropped (after buffer recycling) rather than
// delivered.
func (p *Pipeline) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.sinkErr
}

func (p *Pipeline) dispatch(key string, data []byte, eos bool) error {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	if err := p.Err(); err != nil {
		return err
	}
	s := p.shards[p.shardFor(key)]
	if p.quarTTL > 0 && s.poisoned(key) {
		return fmt.Errorf("%w: %q", ErrQuarantined, key)
	}
	if p.sendTimeout != 0 && !eos {
		if err := s.admit(key); err != nil {
			return err
		}
	}
	if err := s.enqueue(key, data, eos); err != nil {
		return err
	}
	p.cfg.Hooks.queueDepth(s.id, len(s.in))
	return nil
}

// admit is shed-mode admission control: a Send that finds the shard queue
// at the high watermark is rejected with ErrOverloaded — immediately when
// SendTimeout < 0, or after waiting up to SendTimeout for the shard to
// drain below the mark. The depth reads are racy by design; the
// enqueue-level flush guard is the exact arbiter.
func (s *shard) admit(key string) error {
	p := s.p
	if len(s.in) < p.highWater {
		return nil
	}
	if p.sendTimeout > 0 {
		timer := time.NewTimer(p.sendTimeout)
		defer timer.Stop()
		for {
			select {
			case <-s.drainSig:
				if len(s.in) < p.highWater {
					return nil
				}
			case <-timer.C:
				return s.shed(key)
			}
		}
	}
	return s.shed(key)
}

// shed records one rejected Send and returns its typed error.
func (s *shard) shed(key string) error {
	s.p.cfg.Hooks.overloaded(s.id, key)
	return fmt.Errorf("%w: shard %d queue at high watermark (%q rejected)", ErrOverloaded, s.id, key)
}

// enqueue appends one message to the shard's pending batch, flushing it
// when the arena target is reached, when coalescing is off, or when the
// shard queue is empty (nothing would be gained by waiting: the shard is
// starved, so latency wins over amortization).
//
// In shed mode (SendTimeout != 0) the flushes are non-blocking: when the
// full arena cannot be handed off because the queue is full, the message
// is shed with ErrOverloaded *before* being appended — bytes are never
// partially accepted — and an already-complete pending batch simply stays
// pending until a later enqueue, the idle flusher, or Close moves it. EOS
// messages always take the blocking path so streams can always close.
func (s *shard) enqueue(key string, data []byte, eos bool) error {
	p := s.p
	canBlock := p.sendTimeout == 0 || eos
	s.pendMu.Lock()
	if s.pend == nil {
		s.pend = p.getShardBatch()
	}
	b := s.pend
	if len(data) > 0 {
		if b.data != nil && len(b.data)+len(data) > cap(b.data) {
			if !s.flushPendLocked(canBlock) {
				s.pendMu.Unlock()
				return s.shed(key)
			}
			s.pend = p.getShardBatch()
			b = s.pend
		}
		if b.data == nil {
			need := p.batchBytes
			if len(data) > need {
				need = len(data)
			}
			b.data = p.getBuf(need)[:0]
		}
		off := len(b.data)
		b.data = append(b.data, data...)
		b.msgs = append(b.msgs, msgRef{key: key, off: off, n: len(data), eos: eos})
	} else {
		b.msgs = append(b.msgs, msgRef{key: key, eos: eos})
	}
	if len(b.msgs) == 1 {
		s.pendAt = time.Now()
	}
	if p.batchBytes == 0 || len(b.data) >= p.batchBytes || len(s.in) == 0 {
		s.flushPendLocked(canBlock)
	}
	s.pendMu.Unlock()
	return nil
}

// flushPendLocked hands the pending batch to the shard goroutine; pendMu
// must be held. With block set the channel send may wait under
// backpressure — the shard keeps draining, so progress is guaranteed.
// Without it a full queue leaves the batch pending and reports false.
// Every send into s.in happens here, under pendMu.
func (s *shard) flushPendLocked(block bool) bool {
	b := s.pend
	if b == nil || len(b.msgs) == 0 {
		return true
	}
	if block {
		s.pend = nil
		s.in <- b
		return true
	}
	select {
	case s.in <- b:
		s.pend = nil
		return true
	default:
		return false
	}
}

// idleFlusher bounds batching latency: every BatchIdle tick it pushes any
// pending batch older than the deadline to its shard. It doubles as the
// periodic quarantine sweeper (every quarSweep), so dead entries are
// reaped even when dispatch goes quiet. It exits as soon as the pipeline
// closes (Close flushes the remaining batches itself).
func (p *Pipeline) idleFlusher() {
	defer p.flushWG.Done()
	t := time.NewTicker(p.batchIdle)
	defer t.Stop()
	lastSweep := time.Now()
	for {
		select {
		case <-p.flushStop:
			return
		case <-t.C:
		}
		p.stateMu.RLock()
		if p.closed {
			p.stateMu.RUnlock()
			return
		}
		for _, s := range p.shards {
			s.pendMu.Lock()
			if s.pend != nil && len(s.pend.msgs) > 0 && time.Since(s.pendAt) >= p.batchIdle {
				// In shed mode the idle flush must not block either: a
				// stuck queue keeps the batch pending (its messages were
				// accepted; they move as soon as the shard drains).
				s.flushPendLocked(p.sendTimeout == 0)
			}
			s.pendMu.Unlock()
		}
		if p.quarTTL > 0 && time.Since(lastSweep) >= p.quarSweep {
			lastSweep = time.Now()
			for _, s := range p.shards {
				s.sweepQuarantine(lastSweep)
			}
		}
		p.stateMu.RUnlock()
	}
}

// shardFor hashes the stream key onto a shard (inline FNV-1a, allocation
// free).
func (p *Pipeline) shardFor(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(len(p.shards)))
}

// Close flushes the pending dispatch batches and every open stream
// (delivering its EOS batch), stops the shards and the sink workers,
// closes the Sink, and returns the first Sink error. A second Close fails
// with ErrClosed.
func (p *Pipeline) Close() error {
	p.stateMu.Lock()
	if p.closed {
		p.stateMu.Unlock()
		return fmt.Errorf("runtime: pipeline already closed: %w", ErrClosed)
	}
	p.closed = true
	p.stateMu.Unlock()

	close(p.flushStop)
	p.flushWG.Wait()
	// No Send can append anymore (closed is set), so the residual batches
	// are stable; flush them before closing the shard channels.
	for _, s := range p.shards {
		s.pendMu.Lock()
		s.flushPendLocked(true)
		s.pendMu.Unlock()
	}
	for _, s := range p.shards {
		close(s.in)
	}
	p.shardWG.Wait()
	for _, ch := range p.sinkChs {
		close(ch)
	}
	p.sinkWG.Wait()

	cerr := p.sink.Close()
	err := p.Err()
	if err == nil {
		err = cerr
	}
	return err
}

// getBuf checks an arena out of the pool. The memory gauge tracks
// checked-out bytes: charged here, discharged in putBuf — idle pool
// capacity is bounded by maxPooledBufCap and not counted.
func (p *Pipeline) getBuf(n int) []byte {
	b := p.bufs.Get().([]byte)
	if cap(b) < n {
		b = make([]byte, n)
	}
	p.cfg.Mem.Add(int64(cap(b)))
	return b[:n]
}

func (p *Pipeline) putBuf(b []byte) {
	if b == nil {
		return
	}
	p.cfg.Mem.Add(-int64(cap(b)))
	if cap(b) > maxPooledBufCap {
		return // oversized chunks go to the GC, not the pool
	}
	p.bufs.Put(b[:0]) //nolint:staticcheck // slice, not pointer, by design
}

func (p *Pipeline) getMatchBuf() []stream.Match {
	if v := p.matches.Get(); v != nil {
		return v.([]stream.Match)[:0]
	}
	// A fresh buffer is sized for a dense chunk up front: tag-heavy
	// traffic yields hundreds of matches per dispatch message, and
	// growing from a tiny capacity costs several doubling copies on
	// every pool miss.
	return make([]stream.Match, 0, 1024)
}

func (p *Pipeline) putMatchBuf(ms []stream.Match) {
	if ms == nil || cap(ms) == 0 || cap(ms) > maxPooledMatchCap {
		return
	}
	p.matches.Put(ms[:0]) //nolint:staticcheck // slice, not pointer, by design
}

func (p *Pipeline) getShardBatch() *shardBatch {
	return p.sbPool.Get().(*shardBatch)
}

func (p *Pipeline) putShardBatch(b *shardBatch) {
	b.data = nil
	for i := range b.msgs {
		b.msgs[i] = msgRef{}
	}
	b.msgs = b.msgs[:0]
	p.sbPool.Put(b)
}

func (p *Pipeline) getGroup() *sinkGroup {
	return p.grpPool.Get().(*sinkGroup)
}

func (p *Pipeline) putGroup(g *sinkGroup) {
	for i := range g.batches {
		g.batches[i] = nil
	}
	g.batches = g.batches[:0]
	g.arena = nil
	p.grpPool.Put(g)
}

// poisoned reports whether key is quarantined, lazily expiring stale
// entries. Called from dispatch (any goroutine) and the shard goroutine;
// the atomic counter keeps the healthy path lock-free.
func (s *shard) poisoned(key string) bool {
	if s.quarN.Load() == 0 {
		return false
	}
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	until, ok := s.quar[key]
	if !ok {
		return false
	}
	if time.Now().After(until) {
		delete(s.quar, key)
		s.quarN.Add(-1)
		return false
	}
	return true
}

// poison quarantines key for the configured TTL (no-op when disabled).
// Inserts are where the map grows, so they amortize the sweep: once the
// map doubles past the size left by the previous sweep, expired entries
// are reaped before inserting — a churn of unique faulted keys holds the
// map at O(live entries) instead of growing it forever.
func (s *shard) poison(key string) {
	if s.p.quarTTL <= 0 {
		return
	}
	now := time.Now()
	s.quarMu.Lock()
	if len(s.quar) >= s.quarHigh {
		s.sweepLocked(now)
		s.quarHigh = 2*len(s.quar) + quarSweepMin
	}
	if _, ok := s.quar[key]; !ok {
		s.quarN.Add(1)
	}
	s.quar[key] = now.Add(s.p.quarTTL)
	s.quarMu.Unlock()
	s.p.cfg.Hooks.quarantined(s.id, key)
}

// sweepQuarantine reaps expired quarantine entries (the periodic path;
// see poison for the amortized one).
func (s *shard) sweepQuarantine(now time.Time) {
	if s.quarN.Load() == 0 {
		return
	}
	s.quarMu.Lock()
	s.sweepLocked(now)
	s.quarHigh = 2*len(s.quar) + quarSweepMin
	s.quarMu.Unlock()
}

// sweepLocked deletes every expired entry; quarMu must be held.
func (s *shard) sweepLocked(now time.Time) {
	for k, until := range s.quar {
		if now.After(until) {
			delete(s.quar, k)
			s.quarN.Add(-1)
		}
	}
}

// run is the shard loop: per-stream Backend lifecycle and batch emission.
// Each shardBatch becomes one sinkGroup carrying the produced Batches and
// the arena they point into. When the input channel closes (pipeline
// Close), still-open streams are flushed with synthetic EOS batches so
// sinks always see stream ends.
func (s *shard) run() {
	defer s.p.shardWG.Done()
	for sb := range s.in {
		g := s.p.getGroup()
		for i := range sb.msgs {
			m := &sb.msgs[i]
			var data []byte
			if m.n > 0 {
				data = sb.data[m.off : m.off+m.n]
			}
			s.process(m.key, data, m.eos, g)
		}
		// The arena travels with the group: the sink worker recycles it
		// after the last batch referencing it is delivered.
		g.arena = sb.data
		sb.data = nil
		s.p.putShardBatch(sb)
		s.emit(g)
		// Wake one shed-mode Send waiting on admission: a queue slot just
		// freed up.
		select {
		case s.drainSig <- struct{}{}:
		default:
		}
	}
	g := s.p.getGroup()
	for key := range s.streams {
		s.process(key, nil, true, g)
	}
	s.emit(g)
}

// guard invokes one backend call, converting a panic into an error
// wrapping ErrBackendPanic so a hostile stream cannot take the process
// down.
func (s *shard) guard(origin string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.p.cfg.Hooks.panicRecovered(s.id, origin)
			err = fmt.Errorf("%w (in %s): %v", ErrBackendPanic, origin, r)
		}
	}()
	return fn()
}

// guardTimed wraps guard with the watchdog's in-flight record: while fn
// runs, the watchdog goroutine can see how long it has been running and
// fire Hooks.Watchdog once it is overdue. Go code cannot be interrupted,
// so a stalled call is converted into an ErrBackendStalled verdict when
// it finally returns; a call that never returns remains observable
// through the hook.
func (s *shard) guardTimed(key, origin string, fn func() error) error {
	p := s.p
	if p.feedDeadline <= 0 {
		return s.guard(origin, fn)
	}
	s.wdMu.Lock()
	s.wdKey, s.wdOrigin, s.wdStart, s.wdFired = key, origin, time.Now(), false
	s.wdMu.Unlock()
	err := s.guard(origin, fn)
	s.wdMu.Lock()
	elapsed := time.Since(s.wdStart)
	fired := s.wdFired
	s.wdStart = time.Time{}
	s.wdMu.Unlock()
	if elapsed > p.feedDeadline {
		if !fired {
			// The call outran the deadline between watchdog ticks; the
			// hook still fires exactly once per overdue call.
			p.cfg.Hooks.watchdog(s.id, key, origin, elapsed)
		}
		if err == nil {
			err = fmt.Errorf("%w: %s on %q took %v (deadline %v)", ErrBackendStalled, origin, key, elapsed, p.feedDeadline)
		}
	}
	return err
}

// watchdog is the pipeline's stall detector: it scans every shard's
// in-flight backend call on a fraction of FeedDeadline and fires
// Hooks.Watchdog (once per call) when one is overdue. The verdict on the
// stream lands in guardTimed when the call returns.
func (p *Pipeline) watchdog() {
	defer p.flushWG.Done()
	tick := p.feedDeadline / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-p.flushStop:
			return
		case <-t.C:
		}
		now := time.Now()
		for _, s := range p.shards {
			s.wdMu.Lock()
			overdue := !s.wdStart.IsZero() && !s.wdFired && now.Sub(s.wdStart) > p.feedDeadline
			var key, origin string
			var elapsed time.Duration
			if overdue {
				s.wdFired = true
				key, origin, elapsed = s.wdKey, s.wdOrigin, now.Sub(s.wdStart)
			}
			s.wdMu.Unlock()
			if overdue {
				p.cfg.Hooks.watchdog(s.id, key, origin, elapsed)
			}
		}
	}
}

// remove forgets a stream's backend and recency entry, releasing any
// memory-gauge charge the backend holds (limit-aware backends account
// their stream buffers; the charge must not outlive the stream).
func (s *shard) remove(e *streamEntry) {
	delete(s.streams, e.key)
	s.lru.Remove(e.el)
	if r, ok := e.b.(memReleaser); ok {
		r.releaseMem()
	}
}

// drain moves the backend's confirmed matches into batch.Tags, through a
// pooled buffer when the backend supports recycling.
func (s *shard) drain(e *streamEntry, batch *Batch) error {
	return s.guard("Matches", func() error {
		if e.rec != nil {
			batch.Tags = e.rec.DrainMatches(s.p.getMatchBuf())
		} else {
			batch.Tags = e.b.Matches()
		}
		return nil
	})
}

// evictOldest flushes the least-recently-active stream to make room under
// the MaxStreams cap: its backend is closed and its final matches are
// delivered in a synthetic EOS batch marked Evicted.
func (s *shard) evictOldest(g *sinkGroup) {
	el := s.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*streamEntry)
	batch := &Batch{Key: e.key, Shard: s.id, EOS: true, Evicted: true, Version: e.ver.id, ver: e.ver}
	batch.Err = s.guardTimed(e.key, "Close", e.b.Close)
	if merr := s.drain(e, batch); merr != nil && batch.Err == nil {
		batch.Err = merr
	}
	s.remove(e)
	s.p.cfg.Hooks.evicted(s.id, e.key)
	s.append(g, batch)
}

// append records the finished batch on the delivery group, noting
// resource-budget verdicts on the way: every batch a shard produces goes
// through here, so the ResourceExhausted hook fires exactly once per
// budget-tripped stream.
func (s *shard) append(g *sinkGroup, batch *Batch) {
	if batch.Err != nil && errors.Is(batch.Err, ErrResourceExhausted) {
		s.p.cfg.Hooks.resourceExhausted(s.id, batch.Key)
	}
	g.batches = append(g.batches, batch)
}

func (s *shard) process(key string, data []byte, eos bool, g *sinkGroup) {
	if s.p.quarTTL > 0 && s.poisoned(key) {
		// The stream already received its error-carrying EOS batch when
		// it was poisoned; queued leftovers are discarded cheaply (the
		// shared arena is recycled with the group).
		return
	}
	e, ok := s.streams[key]
	if !ok {
		// Evict only for streams that will actually persist: a pure
		// close of an unknown key creates and immediately retires its
		// backend, so it must not push a live stream out.
		if max := s.p.cfg.MaxStreams; max > 0 && !eos && len(s.streams) >= max {
			s.evictOldest(g)
		}
		// The stream binds the factory version current at creation and
		// keeps it for life; a concurrent SwapFactory only affects
		// streams created after it.
		ver := s.p.acquireVersion()
		b, err := ver.factory(s.id, s.p.cfg.Hooks)
		if err != nil {
			s.p.releaseVersion(ver)
			s.poison(key)
			s.append(g, &Batch{Key: key, Shard: s.id, EOS: true, Err: err, Version: ver.id})
			return
		}
		e = &streamEntry{key: key, b: b, rec: asMatchRecycler(b), ver: ver}
		e.el = s.lru.PushFront(e)
		s.streams[key] = e
	} else {
		s.lru.MoveToFront(e.el)
	}

	batch := &Batch{Key: key, Shard: s.id, Data: data, EOS: eos, Version: e.ver.id}
	if len(data) > 0 {
		batch.Err = s.guardTimed(key, "Feed", func() error { return e.b.Feed(data) })
	}
	if batch.Err != nil && !eos {
		// A failed, panicking, budget-tripped or stalled Feed ends the
		// stream: the backend's state is suspect, so it is retired, the
		// key is poisoned, and the error batch doubles as the stream's
		// EOS. Matches confirmed before the fault are still drained (best
		// effort).
		batch.EOS = true
		batch.ver = e.ver
		s.drain(e, batch)
		s.guard("Close", e.b.Close)
		s.remove(e)
		s.poison(key)
		s.append(g, batch)
		return
	}
	if eos {
		if cerr := s.guardTimed(key, "Close", e.b.Close); batch.Err == nil {
			batch.Err = cerr
		}
		s.remove(e)
		batch.ver = e.ver
		if batch.Err != nil && (errors.Is(batch.Err, ErrResourceExhausted) || errors.Is(batch.Err, ErrBackendStalled)) {
			// Whole-stream backends (parser, earley) trip budgets — and
			// stall — at Close; quarantine the key like a Feed fault so
			// the adversarial input cannot immediately re-open.
			s.poison(key)
		}
	}
	if merr := s.drain(e, batch); merr != nil {
		if batch.Err == nil {
			batch.Err = merr
		}
		if !batch.EOS {
			// A panic while draining matches poisons the stream just
			// like a Feed fault.
			batch.EOS = true
			batch.ver = e.ver
			s.remove(e)
			s.poison(key)
		}
	}
	s.append(g, batch)
}

// emit hands one delivery group to the sink worker owning this shard.
// Stream-to-shard and shard-to-worker assignments are both static, so
// batches of one stream always land on one worker, in order.
func (s *shard) emit(g *sinkGroup) {
	if len(g.batches) == 0 {
		s.p.putBuf(g.arena)
		s.p.putGroup(g)
		return
	}
	s.p.sinkChs[s.id%len(s.p.sinkChs)] <- g
}

// sinkWorker drains one delivery queue and recycles the pooled pieces.
// Delivery is resilient: transient errors (and panics) retry with capped
// exponential backoff and jitter; exhausted batches go to the DeadLetter
// hook when one is configured, otherwise — like errors marked with
// PermanentError — they fail the sink permanently and further batches are
// dropped.
func (p *Pipeline) sinkWorker(ch chan *sinkGroup, worker int, seed int64) {
	defer p.sinkWG.Done()
	rng := rand.New(rand.NewSource(seed)) // backoff jitter only
	var br *breaker
	if p.brThreshold > 0 {
		br = &breaker{p: p, worker: worker}
	}
	for g := range ch {
		for _, b := range g.batches {
			if p.Err() == nil {
				p.deliver(b, rng, br)
			}
			p.putMatchBuf(b.Tags)
			if b.ver != nil {
				// The stream's final batch is out (delivered,
				// dead-lettered, or dropped on a failed sink): release its
				// factory-version binding, possibly retiring the version.
				// Never earlier — per-version resources must outlive every
				// batch that references them.
				p.releaseVersion(b.ver)
				b.ver = nil
			}
		}
		p.putBuf(g.arena)
		p.putGroup(g)
	}
}

func (p *Pipeline) deliver(b *Batch, rng *rand.Rand, br *breaker) {
	if br != nil && br.open {
		if time.Now().Before(br.openUntil) {
			br.shed(b)
			return
		}
		// Half-open: one probe attempt, no retries. Success closes the
		// breaker (the batch is delivered); a transient failure restarts
		// the cooldown and sheds.
		err := p.deliverOnce(b)
		if err == nil {
			br.success()
			return
		}
		if isPermanent(err) {
			p.failSink(err)
			return
		}
		br.openUntil = time.Now().Add(p.brCooldown)
		br.shed(b)
		return
	}
	var err error
	for attempt := 1; attempt <= p.sinkAttempts; attempt++ {
		if attempt > 1 {
			p.cfg.Hooks.sinkRetry(attempt-1, err)
			time.Sleep(p.backoff(attempt-1, rng))
		}
		if err = p.deliverOnce(b); err == nil {
			if br != nil {
				br.success()
			}
			return
		}
		if isPermanent(err) {
			p.failSink(err)
			return
		}
	}
	if p.cfg.DeadLetter != nil {
		p.cfg.Hooks.deadLetter(b.Key, err)
		p.cfg.DeadLetter(b, err)
		if br != nil {
			br.failure()
		}
		return
	}
	p.failSink(err)
}

// breaker is one sink worker's circuit breaker over the retry/backoff
// layer: BreakerThreshold consecutive exhausted deliveries open it, shed
// batches go straight to DeadLetter with ErrBreakerOpen while it is open,
// and after BreakerCooldown a single half-open probe decides whether it
// closes. It lives on one worker goroutine, so no locking.
type breaker struct {
	p         *Pipeline
	worker    int
	consec    int // consecutive exhausted deliveries
	open      bool
	openUntil time.Time
}

// success resets the failure streak, closing the breaker after a
// successful half-open probe.
func (br *breaker) success() {
	br.consec = 0
	if br.open {
		br.open = false
		br.p.cfg.Hooks.breaker(br.worker, false)
	}
}

// failure records one exhausted delivery, opening the breaker at the
// threshold.
func (br *breaker) failure() {
	br.consec++
	if !br.open && br.consec >= br.p.brThreshold {
		br.open = true
		br.openUntil = time.Now().Add(br.p.brCooldown)
		br.p.cfg.Hooks.breaker(br.worker, true)
	}
}

// shed hands one batch to DeadLetter without touching the sink.
// DeadLetter is guaranteed non-nil (Validate requires it with the
// breaker).
func (br *breaker) shed(b *Batch) {
	br.p.cfg.Hooks.breakerShed(br.worker, b.Key)
	br.p.cfg.DeadLetter(b, fmt.Errorf("%w: worker %d", ErrBreakerOpen, br.worker))
}

// deliverOnce shields the pipeline from a panicking Sink.
func (p *Pipeline) deliverOnce(b *Batch) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.cfg.Hooks.panicRecovered(b.Shard, "Deliver")
			err = fmt.Errorf("%w: %v", ErrSinkPanic, r)
		}
	}()
	return p.sink.Deliver(b)
}

// backoff computes the sleep before the retry-th retry: exponential from
// SinkBackoff, capped, with ±50% jitter to decorrelate retry storms.
func (p *Pipeline) backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.sinkBackoff << (retry - 1)
	if d > sinkBackoffCap || d <= 0 {
		d = sinkBackoffCap
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// failSink records the first permanent sink failure.
func (p *Pipeline) failSink(err error) {
	p.errMu.Lock()
	if p.sinkErr == nil {
		p.sinkErr = err
	}
	p.errMu.Unlock()
}
