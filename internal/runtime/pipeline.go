package runtime

import (
	"container/list"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	goruntime "runtime"
	"sync"
	"time"

	"cfgtag/internal/stream"
)

// ErrClosed is returned by Send, CloseStream and a second Close once the
// pipeline has been closed. The rejection is clean: a Send racing Close
// either enqueues fully (its batch is flushed and delivered before Close
// returns) or fails with ErrClosed — bytes are never partially accepted
// and never silently dropped.
var ErrClosed = errors.New("runtime: pipeline is closed")

// ErrQuarantined is returned by Send and CloseStream while a stream key is
// quarantined: its backend previously failed or panicked, and repeat
// traffic is rejected at the front door — cheaply, without re-creating a
// backend — until the quarantine TTL expires. Test with errors.Is.
var ErrQuarantined = errors.New("runtime: stream is quarantined")

// ErrBackendPanic wraps a panic recovered from a Backend's Feed, Close or
// Matches. The panicking stream's final batch carries it in Batch.Err with
// EOS set; the process survives. Test with errors.Is.
var ErrBackendPanic = errors.New("runtime: backend panicked")

// ErrSinkPanic wraps a panic recovered from Sink.Deliver. It is treated
// like a Deliver error: retried, then dead-lettered or escalated to a
// permanent sink failure. Test with errors.Is.
var ErrSinkPanic = errors.New("runtime: sink panicked")

// DefaultQuarantine is the stream-quarantine TTL used when Config leaves
// Quarantine zero.
const DefaultQuarantine = 30 * time.Second

// maxPooledBufCap bounds chunk-buffer retention in the pool: one huge
// chunk must not pin a multi-megabyte allocation for the pipeline's
// lifetime, so larger buffers are dropped for the GC instead of recycled.
const maxPooledBufCap = 1 << 20

// sinkBackoffCap caps the exponential Deliver-retry backoff.
const sinkBackoffCap = 250 * time.Millisecond

// Batch is one unit of Sink delivery: the chunk of stream bytes a shard
// just processed and the detections it confirmed. Offsets in Tags are
// absolute within the stream identified by Key.
type Batch struct {
	// Key identifies the stream the chunk belongs to.
	Key string
	// Shard is the shard that owns the stream.
	Shard int
	// Data is the chunk's bytes. The slice is pooled: it is valid only
	// until Deliver returns.
	Data []byte
	// Tags are the detections confirmed by this chunk (and, on EOS, the
	// final flush), in input order with absolute End offsets.
	Tags []stream.Match
	// EOS marks the stream's final batch. Besides CloseStream, a stream
	// ends when its backend errors or panics (Err is set), when it is
	// evicted (Evicted is set), or on pipeline Close.
	EOS bool
	// Evicted marks a synthetic EOS batch flushed because the stream was
	// the least-recently-active one on a shard at its MaxStreams cap.
	Evicted bool
	// Err carries the backend's verdict on EOS: nil for the FSA paths,
	// the parse error for the exact-recognition parser path. A failed or
	// panicking Feed also ends the stream, reporting here with EOS set.
	Err error
}

// Sink consumes completed tag batches. Deliver is called from a single
// goroutine; batches of one stream arrive in order. Deliver must not
// retain b.Data past the call (copy if needed). A Deliver error or panic
// is retried with backoff (see Config); wrap an error with PermanentError
// to fail the pipeline immediately instead.
type Sink interface {
	Deliver(b *Batch) error
	Close() error
}

// SinkFunc adapts a function to the Sink interface (with a no-op Close).
type SinkFunc func(b *Batch) error

// Deliver calls f.
func (f SinkFunc) Deliver(b *Batch) error { return f(b) }

// Close is a no-op.
func (SinkFunc) Close() error { return nil }

// permanentError marks a Deliver error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// PermanentError marks err as a permanent sink failure: Deliver errors
// wrapped by it are not retried — the pipeline records the failure at
// once and Send starts returning it.
func PermanentError(err error) error { return &permanentError{err: err} }

func isPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Config tunes a Pipeline.
type Config struct {
	// Shards is the number of tagging shards (0 = GOMAXPROCS). Each
	// shard runs one goroutine owning the Backends of the streams
	// dispatched to it.
	Shards int
	// Queue is each shard's input queue capacity (0 = 64). Send blocks
	// when the target shard's queue is full — natural backpressure.
	Queue int
	// Factory creates the per-stream Backend (required).
	Factory Factory
	// Hooks observes bytes, matches, recovery events, collisions, queue
	// depths and fault-tolerance events across all shards; may be nil.
	Hooks *Hooks
	// MaxStreams caps the live streams per shard (0 = unlimited). When a
	// new stream would push a shard past the cap, the shard's least-
	// recently-active stream is evicted: its backend is flushed and
	// closed, and its final batch is delivered with EOS and Evicted set.
	MaxStreams int
	// Quarantine is the TTL a stream key stays poisoned after its
	// backend errors or panics; Send and CloseStream reject the key with
	// ErrQuarantined until it expires. 0 selects DefaultQuarantine; a
	// negative value disables quarantining.
	Quarantine time.Duration
	// SinkAttempts is the number of Deliver attempts per batch,
	// including the first (0 = 3; 1 disables retry). Retries back off
	// exponentially from SinkBackoff with jitter, capped at 250ms.
	SinkAttempts int
	// SinkBackoff is the base delay before the first Deliver retry
	// (0 = 1ms).
	SinkBackoff time.Duration
	// DeadLetter, when set, receives each batch whose Deliver attempts
	// were exhausted on a transient error; the pipeline then carries on
	// with the next batch. When nil, an exhausted batch escalates to a
	// permanent sink failure instead. Like Deliver, the hook must not
	// retain b.Data past the call. It runs on the sink goroutine.
	DeadLetter func(b *Batch, err error)
}

// Pipeline is the sharded runtime: messages enter via Send, are dispatched
// to a shard by stream key, flow through that stream's Backend, and the
// resulting tag batches are delivered to the Sink by a dedicated sink
// goroutine. Send/CloseStream are safe for concurrent use.
//
// The pipeline is fault-isolating: a Backend panic is recovered and
// converted into an error-carrying EOS batch, the offending stream key is
// quarantined for Config.Quarantine, and Sink failures are retried before
// they become fatal. Only a permanent sink failure (see PermanentError and
// Config.DeadLetter) stops delivery; it is observable through Err and
// returned by subsequent Sends.
type Pipeline struct {
	cfg    Config
	sink   Sink
	shards []*shard
	sinkCh chan *Batch

	quarTTL      time.Duration
	sinkAttempts int
	sinkBackoff  time.Duration

	bufs sync.Pool // chunk buffers, recycled after Deliver

	shardWG sync.WaitGroup
	sinkWG  sync.WaitGroup

	// stateMu guards closed; dispatch holds the read side across its
	// enqueue so Close never closes a channel with a send in flight.
	stateMu sync.RWMutex
	closed  bool

	errMu   sync.Mutex
	sinkErr error
}

// message is one dispatch unit on a shard queue.
type message struct {
	key  string
	data []byte // pooled; nil for a pure close
	eos  bool
}

// streamEntry is one live stream on a shard: its Backend plus its position
// in the shard's recency list (front = most recently active).
type streamEntry struct {
	key string
	b   Backend
	el  *list.Element
}

// shard owns the streams hashed to it: one Backend per live stream key,
// kept in recency order for MaxStreams eviction, plus the quarantine table
// consulted by dispatch before accepting the key's traffic.
type shard struct {
	id      int
	in      chan message
	streams map[string]*streamEntry
	lru     *list.List // of *streamEntry
	p       *Pipeline

	quarMu sync.Mutex
	quar   map[string]time.Time // key -> quarantine expiry
}

// NewPipeline starts the shard and sink goroutines. Close releases them.
func NewPipeline(cfg Config, sink Sink) (*Pipeline, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("runtime: Config.Factory is required")
	}
	if sink == nil {
		return nil, fmt.Errorf("runtime: sink is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = goruntime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	p := &Pipeline{
		cfg:          cfg,
		sink:         sink,
		sinkCh:       make(chan *Batch, cfg.Queue),
		quarTTL:      cfg.Quarantine,
		sinkAttempts: cfg.SinkAttempts,
		sinkBackoff:  cfg.SinkBackoff,
	}
	if p.quarTTL == 0 {
		p.quarTTL = DefaultQuarantine
	} else if p.quarTTL < 0 {
		p.quarTTL = 0
	}
	if p.sinkAttempts <= 0 {
		p.sinkAttempts = 3
	}
	if p.sinkBackoff <= 0 {
		p.sinkBackoff = time.Millisecond
	}
	p.bufs.New = func() any { return []byte(nil) }
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			id:      i,
			in:      make(chan message, cfg.Queue),
			streams: make(map[string]*streamEntry),
			lru:     list.New(),
			quar:    make(map[string]time.Time),
			p:       p,
		}
		p.shards = append(p.shards, s)
		p.shardWG.Add(1)
		go s.run()
	}
	p.sinkWG.Add(1)
	go p.drainSink()
	return p, nil
}

// Shards reports the pipeline width.
func (p *Pipeline) Shards() int { return len(p.shards) }

// Send dispatches one chunk of the stream identified by key. The data is
// copied into a pooled buffer, so the caller may reuse it immediately.
// Send blocks while the target shard's queue is full. After Close it
// fails with ErrClosed and the chunk is not accepted; a quarantined key
// fails with ErrQuarantined, and after a permanent sink failure every
// Send fails with that failure. Chunks accepted before a stream's backend
// faulted but not yet processed are discarded (the stream already
// received its error-carrying EOS batch).
func (p *Pipeline) Send(key string, data []byte) error {
	return p.dispatch(key, data, false)
}

// CloseStream ends one stream: its Backend is flushed and closed, and the
// final batch reaches the Sink with EOS set. After Close it fails with
// ErrClosed (Close already flushed every open stream); a quarantined key
// fails with ErrQuarantined (its EOS batch was already delivered when the
// backend faulted).
func (p *Pipeline) CloseStream(key string) error {
	return p.dispatch(key, nil, true)
}

// Err reports the first permanent sink failure, nil while the sink is
// healthy. Once set it never changes, Send and CloseStream return it, and
// subsequent batches are dropped (after buffer recycling) rather than
// delivered.
func (p *Pipeline) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.sinkErr
}

func (p *Pipeline) dispatch(key string, data []byte, eos bool) error {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	if err := p.Err(); err != nil {
		return err
	}
	s := p.shards[p.shardFor(key)]
	if p.quarTTL > 0 && s.poisoned(key) {
		return fmt.Errorf("%w: %q", ErrQuarantined, key)
	}
	var buf []byte
	if len(data) > 0 {
		buf = p.getBuf(len(data))
		copy(buf, data)
	}
	s.in <- message{key: key, data: buf, eos: eos}
	p.cfg.Hooks.queueDepth(s.id, len(s.in))
	return nil
}

// shardFor hashes the stream key onto a shard (FNV-1a).
func (p *Pipeline) shardFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(p.shards)))
}

// Close flushes every open stream (delivering its EOS batch), stops the
// shards and the sink goroutine, closes the Sink, and returns the first
// Sink error. A second Close fails with ErrClosed.
func (p *Pipeline) Close() error {
	p.stateMu.Lock()
	if p.closed {
		p.stateMu.Unlock()
		return fmt.Errorf("runtime: pipeline already closed: %w", ErrClosed)
	}
	p.closed = true
	p.stateMu.Unlock()

	for _, s := range p.shards {
		close(s.in)
	}
	p.shardWG.Wait()
	close(p.sinkCh)
	p.sinkWG.Wait()

	cerr := p.sink.Close()
	err := p.Err()
	if err == nil {
		err = cerr
	}
	return err
}

func (p *Pipeline) getBuf(n int) []byte {
	b := p.bufs.Get().([]byte)
	if cap(b) < n {
		b = make([]byte, n)
	}
	return b[:n]
}

func (p *Pipeline) putBuf(b []byte) {
	if b == nil || cap(b) > maxPooledBufCap {
		return // oversized chunks go to the GC, not the pool
	}
	p.bufs.Put(b[:0]) //nolint:staticcheck // slice, not pointer, by design
}

// poisoned reports whether key is quarantined, lazily expiring stale
// entries. Called from dispatch (any goroutine) and the shard goroutine.
func (s *shard) poisoned(key string) bool {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	until, ok := s.quar[key]
	if !ok {
		return false
	}
	if time.Now().After(until) {
		delete(s.quar, key)
		return false
	}
	return true
}

// poison quarantines key for the configured TTL (no-op when disabled).
func (s *shard) poison(key string) {
	if s.p.quarTTL <= 0 {
		return
	}
	s.quarMu.Lock()
	s.quar[key] = time.Now().Add(s.p.quarTTL)
	s.quarMu.Unlock()
	s.p.cfg.Hooks.quarantined(s.id, key)
}

// run is the shard loop: per-stream Backend lifecycle and batch emission.
// When the input channel closes (pipeline Close), still-open streams are
// flushed with synthetic EOS batches so sinks always see stream ends.
func (s *shard) run() {
	defer s.p.shardWG.Done()
	for msg := range s.in {
		s.process(msg)
	}
	for key := range s.streams {
		s.process(message{key: key, eos: true})
	}
}

// guard invokes one backend call, converting a panic into an error
// wrapping ErrBackendPanic so a hostile stream cannot take the process
// down.
func (s *shard) guard(origin string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.p.cfg.Hooks.panicRecovered(s.id, origin)
			err = fmt.Errorf("%w (in %s): %v", ErrBackendPanic, origin, r)
		}
	}()
	return fn()
}

// remove forgets a stream's backend and recency entry.
func (s *shard) remove(e *streamEntry) {
	delete(s.streams, e.key)
	s.lru.Remove(e.el)
}

// evictOldest flushes the least-recently-active stream to make room under
// the MaxStreams cap: its backend is closed and its final matches are
// delivered in a synthetic EOS batch marked Evicted.
func (s *shard) evictOldest() {
	el := s.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*streamEntry)
	batch := &Batch{Key: e.key, Shard: s.id, EOS: true, Evicted: true}
	batch.Err = s.guard("Close", e.b.Close)
	if merr := s.guard("Matches", func() error { batch.Tags = e.b.Matches(); return nil }); merr != nil && batch.Err == nil {
		batch.Err = merr
	}
	s.remove(e)
	s.p.cfg.Hooks.evicted(s.id, e.key)
	s.emit(batch)
}

func (s *shard) process(msg message) {
	if s.p.quarTTL > 0 && s.poisoned(msg.key) {
		// The stream already received its error-carrying EOS batch when
		// it was poisoned; queued leftovers are discarded cheaply.
		s.p.putBuf(msg.data)
		return
	}
	e, ok := s.streams[msg.key]
	if !ok {
		// Evict only for streams that will actually persist: a pure
		// close of an unknown key creates and immediately retires its
		// backend, so it must not push a live stream out.
		if max := s.p.cfg.MaxStreams; max > 0 && !msg.eos && len(s.streams) >= max {
			s.evictOldest()
		}
		b, err := s.p.cfg.Factory(s.id, s.p.cfg.Hooks)
		if err != nil {
			s.p.putBuf(msg.data)
			s.poison(msg.key)
			s.emit(&Batch{Key: msg.key, Shard: s.id, EOS: true, Err: err})
			return
		}
		e = &streamEntry{key: msg.key, b: b}
		e.el = s.lru.PushFront(e)
		s.streams[msg.key] = e
	} else {
		s.lru.MoveToFront(e.el)
	}

	batch := &Batch{Key: msg.key, Shard: s.id, Data: msg.data, EOS: msg.eos}
	if len(msg.data) > 0 {
		batch.Err = s.guard("Feed", func() error { return e.b.Feed(msg.data) })
	}
	if batch.Err != nil && !msg.eos {
		// A failed or panicking Feed ends the stream: the backend's
		// state is suspect, so it is retired, the key is poisoned, and
		// the error batch doubles as the stream's EOS. Matches confirmed
		// before the fault are still drained (best effort).
		batch.EOS = true
		s.guard("Matches", func() error { batch.Tags = e.b.Matches(); return nil })
		s.guard("Close", e.b.Close)
		s.remove(e)
		s.poison(msg.key)
		s.emit(batch)
		return
	}
	if msg.eos {
		if cerr := s.guard("Close", e.b.Close); batch.Err == nil {
			batch.Err = cerr
		}
		s.remove(e)
	}
	if merr := s.guard("Matches", func() error { batch.Tags = e.b.Matches(); return nil }); merr != nil {
		if batch.Err == nil {
			batch.Err = merr
		}
		if !batch.EOS {
			// A panic while draining matches poisons the stream just
			// like a Feed fault.
			batch.EOS = true
			s.remove(e)
			s.poison(msg.key)
		}
	}
	s.emit(batch)
}

func (s *shard) emit(batch *Batch) {
	s.p.sinkCh <- batch
}

// drainSink serializes Sink delivery and recycles chunk buffers. Delivery
// is resilient: transient errors (and panics) retry with capped
// exponential backoff and jitter; exhausted batches go to the DeadLetter
// hook when one is configured, otherwise — like errors marked with
// PermanentError — they fail the sink permanently and further batches are
// dropped.
func (p *Pipeline) drainSink() {
	defer p.sinkWG.Done()
	rng := rand.New(rand.NewSource(0x5eed5eed)) // backoff jitter only
	for b := range p.sinkCh {
		if p.Err() == nil {
			p.deliver(b, rng)
		}
		p.putBuf(b.Data)
	}
}

func (p *Pipeline) deliver(b *Batch, rng *rand.Rand) {
	var err error
	for attempt := 1; attempt <= p.sinkAttempts; attempt++ {
		if attempt > 1 {
			p.cfg.Hooks.sinkRetry(attempt-1, err)
			time.Sleep(p.backoff(attempt-1, rng))
		}
		if err = p.deliverOnce(b); err == nil {
			return
		}
		if isPermanent(err) {
			p.failSink(err)
			return
		}
	}
	if p.cfg.DeadLetter != nil {
		p.cfg.Hooks.deadLetter(b.Key, err)
		p.cfg.DeadLetter(b, err)
		return
	}
	p.failSink(err)
}

// deliverOnce shields the pipeline from a panicking Sink.
func (p *Pipeline) deliverOnce(b *Batch) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.cfg.Hooks.panicRecovered(b.Shard, "Deliver")
			err = fmt.Errorf("%w: %v", ErrSinkPanic, r)
		}
	}()
	return p.sink.Deliver(b)
}

// backoff computes the sleep before the retry-th retry: exponential from
// SinkBackoff, capped, with ±50% jitter to decorrelate retry storms.
func (p *Pipeline) backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.sinkBackoff << (retry - 1)
	if d > sinkBackoffCap || d <= 0 {
		d = sinkBackoffCap
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// failSink records the first permanent sink failure.
func (p *Pipeline) failSink(err error) {
	p.errMu.Lock()
	if p.sinkErr == nil {
		p.sinkErr = err
	}
	p.errMu.Unlock()
}
