package runtime

import (
	"reflect"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

// oracleGrammars is the recursive/ambiguous coverage table: the section
// 5.1 natural-language fragment (examples/natlang) plus the committed
// testdata corpus. Only english is LL(1); the rest have no parser, so the
// Earley oracle is the sole exact judge — exactly the gap it exists to
// close.
func oracleGrammars(t *testing.T) []struct {
	g     *grammar.Grammar
	exact bool
} {
	t.Helper()
	return []struct {
		g     *grammar.Grammar
		exact bool
	}{
		{grammar.English(), true},
		{grammar.MustParse("arith", readGrammar(t, "../../testdata/grammars/arith.y")), false},
		{grammar.MustParse("dangling", readGrammar(t, "../../testdata/grammars/dangling.y")), false},
		{grammar.MustParse("rightrec", readGrammar(t, "../../testdata/grammars/rightrec.y")), false},
	}
}

// TestConformanceOracleGrammars runs the full differential harness —
// stream, gates, all three dfa variants, the Earley oracle, and the
// parser where LL(1) — over the recursive and ambiguous grammar corpus,
// including corrupted inputs.
func TestConformanceOracleGrammars(t *testing.T) {
	for _, tc := range oracleGrammars(t) {
		t.Run(tc.g.Name, func(t *testing.T) {
			opts := ConformanceOptions{Trials: 10, Corrupt: true, ExactOracle: tc.exact}
			if err := Conformance(tc.g, 23, opts); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestOracleChunkStraddling feeds one sentence per grammar at every
// possible two-chunk split — so every lexeme, delimiter run and
// mid-pattern position straddles a Feed boundary once — and requires the
// earley and stream backends to reproduce their whole-buffer results
// exactly.
func TestOracleChunkStraddling(t *testing.T) {
	for _, tc := range oracleGrammars(t) {
		t.Run(tc.g.Name, func(t *testing.T) {
			spec, err := core.Compile(tc.g, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			earleyF, err := EarleyFactory(spec)
			if err != nil {
				t.Fatal(err)
			}
			gen := workload.NewGenerator(spec, 29, workload.SentenceOptions{MaxDepth: 8})
			var text []byte
			for len(text) < 8 { // a sentence long enough to make splits interesting
				text, _ = gen.Sentence()
			}
			for _, f := range []struct {
				name    string
				factory Factory
			}{{"earley", earleyF}, {"stream", TaggerFactory(spec)}} {
				whole := feedSplit(t, f.factory, text, -1)
				for split := 0; split <= len(text); split++ {
					if got := feedSplit(t, f.factory, text, split); !reflect.DeepEqual(got, whole) {
						t.Fatalf("%s: split at %d of %q: matches %v, whole-buffer %v",
							f.name, split, text, got, whole)
					}
				}
			}
		})
	}
}

// feedSplit runs text through a fresh backend, split into two Feeds at the
// given offset (-1 = one Feed), and returns all matches.
func feedSplit(t *testing.T, f Factory, text []byte, split int) []stream.Match {
	t.Helper()
	b, err := f(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	chunks := [][]byte{text}
	if split >= 0 {
		chunks = [][]byte{text[:split], text[split:]}
	}
	var ms []stream.Match
	for _, c := range chunks {
		if err := b.Feed(c); err != nil {
			t.Fatal(err)
		}
		ms = append(ms, b.Matches()...)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("reject of conforming %q: %v", text, err)
	}
	return append(ms, b.Matches()...)
}
