package runtime

import (
	"testing"

	"cfgtag/internal/grammar"
	"cfgtag/internal/workload"
)

// TestConformanceBuiltins runs the differential harness over the paper's
// grammars, where every backend is available (the builtins are LL(1) with
// unambiguous lexicons, so the Earley oracle must agree with the parser
// exactly, not just contain it).
func TestConformanceBuiltins(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(), grammar.IfThenElse(), grammar.XMLRPC(),
	} {
		if err := Conformance(g, 17, ConformanceOptions{Trials: 10, Corrupt: true, ExactOracle: true}); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

// TestConformanceRandomGrammars fuzzes the cross-backend relation on
// random grammars. Non-LL(1) seeds still differential-test the two FSA
// paths against each other.
func TestConformanceRandomGrammars(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		g := workload.RandomGrammar(seed)
		if err := Conformance(g, seed*31+7, ConformanceOptions{Trials: 4, Corrupt: true}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
