package runtime

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cfgtag/internal/stream"
)

// ErrUnknownTenant is returned by Registry operations naming a tenant that
// was never added (or was removed). Test with errors.Is.
var ErrUnknownTenant = errors.New("runtime: unknown tenant")

// ErrTenantExists is returned by Registry.Add when the tenant name is
// already registered. Test with errors.Is.
var ErrTenantExists = errors.New("runtime: tenant already exists")

// ErrQuotaExceeded is returned by Registry.Send when admitting the chunk
// would violate the tenant's Quota — a new stream past MaxStreams, or
// bytes past the BytesPerSec token bucket. The rejection is non-blocking
// and cheap: nothing is enqueued, and the caller decides whether to shed
// or retry later. Test with errors.Is.
var ErrQuotaExceeded = errors.New("runtime: tenant quota exceeded")

// Quota bounds one tenant's resource consumption. The zero value is
// unlimited.
type Quota struct {
	// MaxStreams caps the tenant's concurrently live streams (0 =
	// unlimited). Unlike Config.MaxStreams — a per-shard cap that evicts
	// the least-recently-active stream — the tenant quota rejects the new
	// stream at Send with ErrQuotaExceeded and touches nothing live.
	MaxStreams int
	// BytesPerSec caps the tenant's sustained Send byte rate (0 =
	// unlimited) with a token bucket holding one second of burst. Sends
	// beyond the rate fail with ErrQuotaExceeded rather than blocking.
	BytesPerSec int64
	// MemBudgetBytes caps the tenant's estimated live memory (0 =
	// unlimited), accounted on the pipeline's MemGauge across dispatch
	// arenas, per-stream backend buffers, DFA cache states and Earley
	// charts. A Send arriving while the tenant is over budget fails with
	// ErrResourceExhausted and nothing is enqueued; existing streams
	// drain normally, releasing memory. Add installs a gauge on the
	// tenant's Config.Mem when one is not already set.
	MemBudgetBytes int64
}

// validate rejects negative quotas with typed errors.
func (q Quota) validate() error {
	if q.MaxStreams < 0 {
		return &ConfigError{Field: "Quota.MaxStreams", Value: q.MaxStreams, Reason: "must be >= 0 (0 = unlimited)"}
	}
	if q.BytesPerSec < 0 {
		return &ConfigError{Field: "Quota.BytesPerSec", Value: q.BytesPerSec, Reason: "must be >= 0 (0 = unlimited)"}
	}
	if q.MemBudgetBytes < 0 {
		return &ConfigError{Field: "Quota.MemBudgetBytes", Value: q.MemBudgetBytes, Reason: "must be >= 0 (0 = unlimited)"}
	}
	return nil
}

// Tenant declares one isolated pipeline in a Registry: a name, the full
// pipeline Config (backend factory, shards, batching and fault knobs) and
// the admission Quota. Tenants share nothing at runtime except the
// process: each gets its own shard group, its own backend-factory version
// chain and its own quarantine state.
type Tenant struct {
	Name   string
	Config Config
	Quota  Quota
}

// tenantState is one live tenant: its pipeline, its registry-owned
// metrics, and its quota trackers.
type tenantState struct {
	tenant Tenant
	p      *Pipeline
	mc     *MetricCounters

	// liveMu guards live, the set of stream keys admitted and not yet
	// ended (their EOS batch not yet delivered). Maintained only when
	// Quota.MaxStreams > 0.
	liveMu sync.Mutex
	live   map[string]struct{}

	bucket *tokenBucket // nil when BytesPerSec is unlimited
	mem    *MemGauge    // the pipeline's gauge; nil when no budget and none configured
}

// Registry is the multi-tenant front door: it owns one Pipeline per
// Tenant and routes (tenant, key) traffic to the right shard group, with
// per-tenant admission quotas, per-tenant metrics and per-tenant
// zero-downtime factory swaps. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]*tenantState
	closed  bool
}

// NewRegistry returns an empty registry; add tenants with Add.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]*tenantState)}
}

// Add registers t and starts its pipeline, delivering its batches to
// sink. The tenant's Config is validated (typed ConfigError wrapping
// ErrInvalidConfig); its Hooks, when set, observe the tenant's events
// alongside the registry's own metrics.
func (r *Registry) Add(t Tenant, sink Sink) error {
	if t.Name == "" {
		return &ConfigError{Field: "Name", Value: t.Name, Reason: "tenant name is required"}
	}
	if err := t.Quota.validate(); err != nil {
		return err
	}
	ts := &tenantState{tenant: t, mc: &MetricCounters{}}
	if t.Quota.MaxStreams > 0 {
		ts.live = make(map[string]struct{})
	}
	if t.Quota.BytesPerSec > 0 {
		ts.bucket = newTokenBucket(t.Quota.BytesPerSec)
	}
	cfg := t.Config
	cfg.Hooks = chainHooks(ts.mc.Hooks(), t.Config.Hooks)
	if t.Quota.MemBudgetBytes > 0 && cfg.Mem == nil {
		cfg.Mem = &MemGauge{}
	}
	ts.mem = cfg.Mem
	var s Sink = sink
	if ts.live != nil {
		s = &tenantSink{ts: ts, inner: sink}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, ok := r.tenants[t.Name]; ok {
		return fmt.Errorf("%w: %q", ErrTenantExists, t.Name)
	}
	p, err := NewPipeline(cfg, s)
	if err != nil {
		return err
	}
	ts.p = p
	r.tenants[t.Name] = ts
	return nil
}

// Remove closes the named tenant's pipeline — flushing its open streams
// and delivering their EOS batches — and forgets it.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	ts, ok := r.tenants[name]
	if ok {
		delete(r.tenants, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return ts.p.Close()
}

// Tenants reports the registered tenant names in sorted order.
func (r *Registry) Tenants() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.tenants))
	for n := range r.tenants {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

func (r *Registry) state(tenant string) (*tenantState, error) {
	r.mu.RLock()
	ts, ok := r.tenants[tenant]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	return ts, nil
}

// Send routes one chunk to the tenant's pipeline, enforcing the tenant's
// admission quotas first: a chunk that would exceed BytesPerSec, or open a
// stream past MaxStreams, fails with ErrQuotaExceeded and nothing is
// enqueued.
func (r *Registry) Send(tenant, key string, data []byte) error {
	ts, err := r.state(tenant)
	if err != nil {
		return err
	}
	if ts.bucket != nil && !ts.bucket.take(len(data)) {
		return fmt.Errorf("%w: tenant %q over %d bytes/sec", ErrQuotaExceeded, tenant, ts.tenant.Quota.BytesPerSec)
	}
	if bb := ts.tenant.Quota.MemBudgetBytes; bb > 0 && ts.mem.Load() >= bb {
		return fmt.Errorf("%w: tenant %q over %d-byte memory budget", ErrResourceExhausted, tenant, bb)
	}
	added, err := ts.admit(key)
	if err != nil {
		return err
	}
	if err := ts.p.Send(key, data); err != nil {
		if added {
			ts.release(key)
		}
		return err
	}
	return nil
}

// CloseStream ends one stream of the tenant.
func (r *Registry) CloseStream(tenant, key string) error {
	ts, err := r.state(tenant)
	if err != nil {
		return err
	}
	return ts.p.CloseStream(key)
}

// Swap publishes a new backend factory for the tenant — a zero-downtime
// grammar reload. New streams bind the new version; live streams drain on
// the old one, which is retired (Hooks.VersionRetired) when its last
// stream's final batch is delivered.
func (r *Registry) Swap(tenant string, f Factory) (int, error) {
	ts, err := r.state(tenant)
	if err != nil {
		return 0, err
	}
	return ts.p.SwapFactory(f)
}

// Pipeline exposes the tenant's pipeline for advanced use (version
// inspection, Err). It remains owned by the registry: do not Close it.
func (r *Registry) Pipeline(tenant string) (*Pipeline, error) {
	ts, err := r.state(tenant)
	if err != nil {
		return nil, err
	}
	return ts.p, nil
}

// Counters reports the tenant's metric totals and queue high-water mark.
func (r *Registry) Counters(tenant string) (Counters, int, error) {
	ts, err := r.state(tenant)
	if err != nil {
		return Counters{}, 0, err
	}
	c, q := ts.mc.Snapshot()
	return c, q, nil
}

// CompileStats reports the tenant's most recent AOT synthesis report:
// zero until an aot backend is minted, then the current program's states,
// classes, table bytes and compile duration (rewritten on each reload).
func (r *Registry) CompileStats(tenant string) (stream.CompileStats, error) {
	ts, err := r.state(tenant)
	if err != nil {
		return stream.CompileStats{}, err
	}
	return ts.mc.Compile(), nil
}

// Faults reports the tenant's fault-tolerance totals.
func (r *Registry) Faults(tenant string) (FaultStats, error) {
	ts, err := r.state(tenant)
	if err != nil {
		return FaultStats{}, err
	}
	return ts.mc.Faults(), nil
}

// MemUsage reports the tenant's current estimated memory (0 when no
// gauge is configured).
func (r *Registry) MemUsage(tenant string) (int64, error) {
	ts, err := r.state(tenant)
	if err != nil {
		return 0, err
	}
	return ts.mem.Load(), nil
}

// LiveStreams reports the tenant's currently admitted stream count. It is
// only tracked when Quota.MaxStreams > 0 (otherwise 0).
func (r *Registry) LiveStreams(tenant string) (int, error) {
	ts, err := r.state(tenant)
	if err != nil {
		return 0, err
	}
	if ts.live == nil {
		return 0, nil
	}
	ts.liveMu.Lock()
	n := len(ts.live)
	ts.liveMu.Unlock()
	return n, nil
}

// Close shuts every tenant pipeline down and returns the first error.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.closed = true
	tenants := r.tenants
	r.tenants = make(map[string]*tenantState)
	r.mu.Unlock()
	var first error
	// Deterministic order, mostly for tests.
	names := make([]string, 0, len(tenants))
	for n := range tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := tenants[n].p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// admit records key as a live stream, rejecting past MaxStreams. added
// reports whether this call inserted the key (so a failed Send can undo
// it).
func (ts *tenantState) admit(key string) (added bool, err error) {
	if ts.live == nil {
		return false, nil
	}
	ts.liveMu.Lock()
	defer ts.liveMu.Unlock()
	if _, ok := ts.live[key]; ok {
		return false, nil
	}
	if len(ts.live) >= ts.tenant.Quota.MaxStreams {
		return false, fmt.Errorf("%w: tenant %q at %d live streams", ErrQuotaExceeded, ts.tenant.Name, ts.tenant.Quota.MaxStreams)
	}
	ts.live[key] = struct{}{}
	return true, nil
}

// release forgets a live stream key (idempotent).
func (ts *tenantState) release(key string) {
	ts.liveMu.Lock()
	delete(ts.live, key)
	ts.liveMu.Unlock()
}

// tenantSink observes stream ends on the delivery path: every EOS batch —
// normal close, fault, eviction or pipeline shutdown — frees the key's
// MaxStreams slot. Wrapping the sink (rather than hooking dispatch) makes
// the release exact: the slot opens only after the stream's final batch is
// out, so a key is never double-counted live.
type tenantSink struct {
	ts    *tenantState
	inner Sink
}

func (s *tenantSink) Deliver(b *Batch) error {
	err := s.inner.Deliver(b)
	if b.EOS {
		// Released even when Deliver errors: retries redeliver the same
		// batch and release is idempotent, while a dead-lettered final
		// batch must still free the slot.
		s.ts.release(b.Key)
	}
	return err
}

func (s *tenantSink) Close() error { return s.inner.Close() }

// chainHooks fans every event out to both hook sets (either may be nil).
func chainHooks(a, b *Hooks) *Hooks {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &Hooks{
		Bytes:          func(shard, n int) { a.bytes(shard, n); b.bytes(shard, n) },
		Match:          func(shard int, m stream.Match) { a.match(shard, m); b.match(shard, m) },
		Recovery:       func(shard int, pos int64) { a.recovery(shard, pos); b.recovery(shard, pos) },
		Collision:      func(shard int, pos int64, x, y int) { a.collision(shard, pos, x, y); b.collision(shard, pos, x, y) },
		QueueDepth:     func(shard, depth int) { a.queueDepth(shard, depth); b.queueDepth(shard, depth) },
		CacheStats:     func(shard int, h, m, rs int64) { a.cacheStats(shard, h, m, rs); b.cacheStats(shard, h, m, rs) },
		CompileStats:   func(shard int, s stream.CompileStats) { a.compileStats(shard, s); b.compileStats(shard, s) },
		PanicRecovered: func(shard int, origin string) { a.panicRecovered(shard, origin); b.panicRecovered(shard, origin) },
		Quarantined:    func(shard int, key string) { a.quarantined(shard, key); b.quarantined(shard, key) },
		Evicted:        func(shard int, key string) { a.evicted(shard, key); b.evicted(shard, key) },
		SinkRetry:      func(attempt int, err error) { a.sinkRetry(attempt, err); b.sinkRetry(attempt, err) },
		DeadLetter:     func(key string, err error) { a.deadLetter(key, err); b.deadLetter(key, err) },
		VersionRetired: func(v int) { a.versionRetired(v); b.versionRetired(v) },
		Overloaded:     func(shard int, key string) { a.overloaded(shard, key); b.overloaded(shard, key) },
		Watchdog: func(shard int, key, origin string, el time.Duration) {
			a.watchdog(shard, key, origin, el)
			b.watchdog(shard, key, origin, el)
		},
		ResourceExhausted: func(shard int, key string) { a.resourceExhausted(shard, key); b.resourceExhausted(shard, key) },
		Breaker:           func(worker int, open bool) { a.breaker(worker, open); b.breaker(worker, open) },
		BreakerShed:       func(worker int, key string) { a.breakerShed(worker, key); b.breakerShed(worker, key) },
	}
}

// tokenBucket is a non-blocking rate limiter: rate tokens (bytes) per
// second with a one-second burst, refilled lazily on take.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(bytesPerSec int64) *tokenBucket {
	r := float64(bytesPerSec)
	return &tokenBucket{rate: r, burst: r, tokens: r, last: time.Now()}
}

// take consumes n tokens if available, refilling from elapsed time first.
func (b *tokenBucket) take(n int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if float64(n) > b.tokens {
		return false
	}
	b.tokens -= float64(n)
	return true
}
