package runtime

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
)

// fakeBackend is a content-triggered test backend: chunks containing
// "PANIC" panic, chunks containing "ERROR" fail, everything else is
// swallowed quietly.
type fakeBackend struct{}

func (f *fakeBackend) Reset() {}
func (f *fakeBackend) Feed(p []byte) error {
	if bytes.Contains(p, []byte("PANIC")) {
		panic("fake backend exploded")
	}
	if bytes.Contains(p, []byte("ERROR")) {
		return errors.New("fake backend error")
	}
	return nil
}
func (f *fakeBackend) Close() error            { return nil }
func (f *fakeBackend) Matches() []stream.Match { return nil }
func (f *fakeBackend) Counters() Counters      { return Counters{} }

func fakeFactory(int, *Hooks) (Backend, error) { return &fakeBackend{}, nil }

// sendUntilQuarantined polls Send until the key is rejected with
// ErrQuarantined (poisoning happens on the shard goroutine, so there is a
// window where Sends still enqueue and are discarded).
func sendUntilQuarantined(t *testing.T, p *Pipeline, key string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		err := p.Send(key, []byte("after the fault"))
		if errors.Is(err, ErrQuarantined) {
			return
		}
		if err != nil {
			t.Fatalf("Send(%q) = %v, want nil or ErrQuarantined", key, err)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("stream %q never became quarantined", key)
}

func TestPipelinePanicIsolation(t *testing.T) {
	var mc MetricCounters
	sink := newCollectSink()
	p, err := NewPipeline(Config{Shards: 1, Factory: fakeFactory, Hooks: mc.Hooks()}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("good", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := p.Send("bad", []byte("xx PANIC xx")); err != nil {
		t.Fatal(err)
	}
	sendUntilQuarantined(t, p, "bad")
	if err := p.Send("good", []byte("world")); err != nil {
		t.Fatalf("healthy stream rejected after another stream's panic: %v", err)
	}
	if err := p.CloseStream("good"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close = %v (a backend panic must not fail the pipeline)", err)
	}

	if !sink.eos["bad"] {
		t.Error("panicking stream got no EOS batch")
	}
	if err := sink.errs["bad"]; !errors.Is(err, ErrBackendPanic) {
		t.Errorf("panicking stream Err = %v, want ErrBackendPanic", err)
	}
	if err := sink.errs["good"]; err != nil {
		t.Errorf("healthy stream Err = %v, want nil", err)
	}
	if !sink.eos["good"] {
		t.Error("healthy stream got no EOS batch")
	}
	f := mc.Faults()
	if f.PanicsRecovered == 0 {
		t.Error("no panics counted")
	}
	if f.StreamsQuarantined != 1 {
		t.Errorf("quarantined = %d, want 1", f.StreamsQuarantined)
	}
}

func TestPipelineFeedErrorQuarantines(t *testing.T) {
	var mc MetricCounters
	sink := newCollectSink()
	p, err := NewPipeline(Config{Shards: 1, Factory: fakeFactory, Hooks: mc.Hooks()}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("bad", []byte("xx ERROR xx")); err != nil {
		t.Fatal(err)
	}
	sendUntilQuarantined(t, p, "bad")
	if err := p.CloseStream("bad"); !errors.Is(err, ErrQuarantined) {
		t.Errorf("CloseStream on quarantined key = %v, want ErrQuarantined", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.eos["bad"] {
		t.Error("failed stream got no EOS batch")
	}
	if sink.errs["bad"] == nil {
		t.Error("failed stream carries no error")
	}
	if f := mc.Faults(); f.StreamsQuarantined != 1 || f.PanicsRecovered != 0 {
		t.Errorf("faults = %+v, want exactly one quarantine and no panics", f)
	}
}

func TestPipelineQuarantineTTLExpires(t *testing.T) {
	sink := newCollectSink()
	p, err := NewPipeline(Config{Shards: 1, Factory: fakeFactory, Quarantine: 40 * time.Millisecond}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("s", []byte("ERROR")); err != nil {
		t.Fatal(err)
	}
	sendUntilQuarantined(t, p, "s")
	time.Sleep(60 * time.Millisecond)
	if err := p.Send("s", []byte("recovered traffic")); err != nil {
		t.Fatalf("Send after TTL expiry = %v, want nil", err)
	}
	if err := p.CloseStream("s"); err != nil {
		t.Fatalf("CloseStream after TTL expiry = %v, want nil", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// The stream faulted once (error EOS) and then completed cleanly on a
	// fresh backend (clean EOS): the last word is the clean one.
	if err := sink.errs["s"]; err == nil {
		t.Error("first incarnation's error batch missing")
	}
	if !sink.eos["s"] {
		t.Error("no EOS after recovery")
	}
}

func TestPipelineQuarantineDisabled(t *testing.T) {
	sink := newCollectSink()
	p, err := NewPipeline(Config{Shards: 1, Factory: fakeFactory, Quarantine: -1}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("s", []byte("ERROR")); err != nil {
		t.Fatal(err)
	}
	// With quarantining disabled the key must stay sendable: each fault
	// just retires that backend.
	for i := 0; i < 20; i++ {
		if err := p.Send("s", []byte("more")); err != nil {
			t.Fatalf("Send %d = %v, want nil with quarantine disabled", i, err)
		}
	}
	if err := p.CloseStream("s"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineEviction(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	text := []byte("if true then go else stop")
	var mc MetricCounters
	sink := newCollectSink()
	evicted := make(map[string]bool)
	hooks := mc.Hooks()
	base := hooks.Evicted
	hooks.Evicted = func(shard int, key string) { base(shard, key); evicted[key] = true }
	p, err := NewPipeline(Config{Shards: 1, MaxStreams: 2, Factory: TaggerFactory(spec), Hooks: hooks}, sink)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"a", "b", "c", "d"} {
		if err := p.Send(key, text); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Opening c evicted a (the least recently active), opening d evicted
	// b; c and d were flushed by Close.
	want := stream.NewTagger(spec).Tag(text)
	for _, key := range []string{"a", "b"} {
		if !sink.eos[key] {
			t.Errorf("evicted stream %s got no EOS batch", key)
		}
		if !evicted[key] {
			t.Errorf("stream %s not reported evicted", key)
		}
		if !reflect.DeepEqual(sink.tags[key], want) {
			t.Errorf("evicted stream %s tags = %v, want %v (eviction must flush)", key, sink.tags[key], want)
		}
	}
	for _, key := range []string{"c", "d"} {
		if evicted[key] {
			t.Errorf("stream %s evicted, want kept until Close", key)
		}
		if !reflect.DeepEqual(sink.tags[key], want) {
			t.Errorf("stream %s tags = %v, want %v", key, sink.tags[key], want)
		}
	}
	if f := mc.Faults(); f.StreamsEvicted != 2 {
		t.Errorf("evicted counter = %d, want 2", f.StreamsEvicted)
	}
}

func TestPipelineEvictedStreamNotQuarantined(t *testing.T) {
	sink := newCollectSink()
	p, err := NewPipeline(Config{Shards: 1, MaxStreams: 1, Factory: fakeFactory}, sink)
	if err != nil {
		t.Fatal(err)
	}
	p.Send("a", []byte("one"))
	p.Send("b", []byte("two")) // evicts a
	// An evicted stream is not poisoned: new traffic on the key opens a
	// fresh backend.
	if err := p.Send("a", []byte("back again")); err != nil {
		t.Fatalf("Send on evicted key = %v, want nil", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.eos["a"] || !sink.eos["b"] {
		t.Error("missing EOS batches")
	}
}

// countingSink fails the first failPer attempts of every batch, then
// succeeds — a transient sink the retry policy should absorb.
type countingSink struct {
	failPer   int
	attempts  map[*Batch]int
	delivered int
}

func (s *countingSink) Deliver(b *Batch) error {
	if s.attempts == nil {
		s.attempts = make(map[*Batch]int)
	}
	s.attempts[b]++
	if s.attempts[b] <= s.failPer {
		return fmt.Errorf("transient failure %d", s.attempts[b])
	}
	s.delivered++
	return nil
}
func (s *countingSink) Close() error { return nil }

func TestPipelineSinkRetryAbsorbsTransientFailures(t *testing.T) {
	var mc MetricCounters
	sink := &countingSink{failPer: 2}
	p, err := NewPipeline(Config{
		Shards: 1, Factory: fakeFactory, Hooks: mc.Hooks(),
		SinkAttempts: 3, SinkBackoff: 100 * time.Microsecond,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	p.Send("s", []byte("chunk one"))
	p.Send("s", []byte("chunk two"))
	p.CloseStream("s")
	if err := p.Close(); err != nil {
		t.Fatalf("Close = %v, want nil (failures were transient)", err)
	}
	if sink.delivered != 3 { // two data batches + EOS
		t.Errorf("delivered %d batches, want 3", sink.delivered)
	}
	f := mc.Faults()
	if f.SinkRetries != 6 {
		t.Errorf("sink retries = %d, want 6 (2 per batch)", f.SinkRetries)
	}
	if f.DeadLetters != 0 {
		t.Errorf("dead letters = %d, want 0", f.DeadLetters)
	}
	if p.Err() != nil {
		t.Errorf("Err() = %v, want nil", p.Err())
	}
}

func TestPipelineDeadLetterKeepsPipelineAlive(t *testing.T) {
	var mc MetricCounters
	var dead []string
	alwaysFail := SinkFunc(func(*Batch) error { return errors.New("down") })
	p, err := NewPipeline(Config{
		Shards: 1, Factory: fakeFactory, Hooks: mc.Hooks(),
		SinkAttempts: 2, SinkBackoff: 100 * time.Microsecond,
		DeadLetter: func(b *Batch, err error) {
			if err == nil {
				panic("dead letter without error")
			}
			dead = append(dead, b.Key)
		},
	}, alwaysFail)
	if err != nil {
		t.Fatal(err)
	}
	p.Send("x", []byte("one"))
	p.Send("y", []byte("two"))
	p.CloseStream("x")
	p.CloseStream("y")
	if err := p.Close(); err != nil {
		t.Fatalf("Close = %v, want nil (dead-lettering keeps the sink non-fatal)", err)
	}
	if len(dead) != 4 { // 2 data + 2 EOS batches
		t.Errorf("dead-lettered %d batches, want 4 (got %v)", len(dead), dead)
	}
	if f := mc.Faults(); f.DeadLetters != 4 {
		t.Errorf("dead-letter counter = %d, want 4", f.DeadLetters)
	}
	if p.Err() != nil {
		t.Errorf("Err() = %v, want nil (no permanent failure)", p.Err())
	}
}

func TestPipelinePermanentSinkFailureFailsFast(t *testing.T) {
	var mc MetricCounters
	cause := errors.New("backend connection lost for good")
	sink := SinkFunc(func(*Batch) error { return PermanentError(cause) })
	p, err := NewPipeline(Config{Shards: 1, Factory: fakeFactory, Hooks: mc.Hooks()}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("s", []byte("data")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(p.Err(), cause) {
		t.Fatalf("Err() = %v, want %v", p.Err(), cause)
	}
	if err := p.Send("s", []byte("more")); !errors.Is(err, cause) {
		t.Errorf("Send after permanent failure = %v, want the sink error", err)
	}
	if err := p.CloseStream("s"); !errors.Is(err, cause) {
		t.Errorf("CloseStream after permanent failure = %v, want the sink error", err)
	}
	if err := p.Close(); !errors.Is(err, cause) {
		t.Errorf("Close = %v, want the sink error", err)
	}
	if f := mc.Faults(); f.SinkRetries != 0 {
		t.Errorf("sink retries = %d, want 0 (permanent errors are not retried)", f.SinkRetries)
	}
}

func TestPipelineExhaustedRetriesWithoutDeadLetterFailSink(t *testing.T) {
	sinkErr := errors.New("still down")
	p, err := NewPipeline(Config{
		Shards: 1, Factory: fakeFactory,
		SinkAttempts: 2, SinkBackoff: 100 * time.Microsecond,
	}, SinkFunc(func(*Batch) error { return sinkErr }))
	if err != nil {
		t.Fatal(err)
	}
	p.Send("s", []byte("data"))
	deadline := time.Now().Add(5 * time.Second)
	for p.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := p.Err(); err != sinkErr {
		t.Fatalf("Err() = %v, want the raw sink error", err)
	}
	if err := p.Send("s", []byte("more")); !errors.Is(err, sinkErr) {
		t.Errorf("Send = %v, want the sink error", err)
	}
	if err := p.Close(); err != sinkErr {
		t.Errorf("Close = %v, want the raw sink error", err)
	}
}

func TestPipelineSinkPanicIsRetried(t *testing.T) {
	var mc MetricCounters
	first := true
	delivered := 0
	sink := SinkFunc(func(*Batch) error {
		if first {
			first = false
			panic("sink exploded once")
		}
		delivered++
		return nil
	})
	p, err := NewPipeline(Config{
		Shards: 1, Factory: fakeFactory,
		SinkBackoff: 100 * time.Microsecond, Hooks: mc.Hooks(),
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	p.Send("s", []byte("data"))
	p.CloseStream("s")
	if err := p.Close(); err != nil {
		t.Fatalf("Close = %v, want nil (one panic, then healthy)", err)
	}
	if delivered != 2 {
		t.Errorf("delivered %d batches, want 2", delivered)
	}
	f := mc.Faults()
	if f.PanicsRecovered != 1 {
		t.Errorf("panics recovered = %d, want 1", f.PanicsRecovered)
	}
	if f.SinkRetries != 1 {
		t.Errorf("sink retries = %d, want 1", f.SinkRetries)
	}
}

// TestPipelineFactoryErrorPath covers the Factory-error branch in
// shard.process: the stream's only batch is an error-carrying EOS, the
// key does not leak into the shard's stream table, and the key is
// poisoned so repeat traffic is rejected at dispatch.
func TestPipelineFactoryErrorPath(t *testing.T) {
	var mc MetricCounters
	factoryErr := errors.New("factory refused")
	factory := func(int, *Hooks) (Backend, error) { return nil, factoryErr }
	sink := newCollectSink()
	p, err := NewPipeline(Config{Shards: 1, Factory: factory, Hooks: mc.Hooks()}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("s", []byte("some bytes")); err != nil {
		t.Fatal(err)
	}
	sendUntilQuarantined(t, p, "s")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.eos["s"] {
		t.Error("factory-error stream got no EOS batch")
	}
	if err := sink.errs["s"]; !errors.Is(err, factoryErr) {
		t.Errorf("stream Err = %v, want the factory error", err)
	}
	if n := len(p.shards[0].streams); n != 0 {
		t.Errorf("%d streams leaked in the shard table, want 0", n)
	}
	if l := p.shards[0].lru.Len(); l != 0 {
		t.Errorf("%d entries leaked in the recency list, want 0", l)
	}
	if f := mc.Faults(); f.StreamsQuarantined == 0 {
		t.Error("factory failure did not quarantine the key")
	}
}

func TestPipelineBufferPoolDropsOversizedChunks(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 1, Factory: fakeFactory}, SinkFunc(func(*Batch) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// A small buffer is recycled… (sync.Pool drops Puts at random under
	// the race detector, so give the round trip a few attempts)
	recycled := false
	for i := 0; i < 50 && !recycled; i++ {
		small := p.getBuf(777)
		p.putBuf(small)
		recycled = cap(p.getBuf(700)) == 777
	}
	if !recycled {
		t.Error("small buffer never recycled through the pool")
	}
	// …while an oversized one is dropped for the GC instead of pinning
	// multi-megabyte capacity in the pool forever.
	huge := make([]byte, maxPooledBufCap+1)
	p.putBuf(huge)
	if got := p.bufs.Get().([]byte); cap(got) > maxPooledBufCap {
		t.Errorf("oversized buffer (cap %d) was pooled", cap(got))
	}
}
