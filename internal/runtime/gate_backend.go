package runtime

import (
	"cfgtag/internal/core"
	"cfgtag/internal/hwgen"
	"cfgtag/internal/stream"
)

// gateBackend adapts the cycle-accurate gate-level simulation of the
// generated netlist. It is the fidelity-over-speed end of the spectrum:
// ~100× slower than the bit-parallel engine but bit-for-bit the hardware.
//
// The netlist's recovery and collision behavior is folded into its detect
// outputs rather than surfaced as counters, so Recoveries and Collisions
// read zero here; differential tests compare match sets, where the same
// events are visible.
type gateBackend struct {
	r       *hwgen.Runner
	shard   int
	hooks   *Hooks
	pending []stream.Match
	bytes   int64
	matches int64
	closed  bool
}

// GateFactory returns a Factory producing gate-level simulations of the
// spec's generated design. The netlist is generated once and shared
// read-only; each Backend instantiates its own simulator state.
func GateFactory(spec *core.Spec) (Factory, error) {
	d, err := hwgen.Generate(spec, hwgen.Options{})
	if err != nil {
		return nil, err
	}
	return func(shard int, h *Hooks) (Backend, error) {
		r, err := hwgen.NewRunner(d)
		if err != nil {
			return nil, err
		}
		b := &gateBackend{r: r, shard: shard, hooks: h}
		b.Reset()
		return b, nil
	}, nil
}

func (b *gateBackend) Reset() {
	b.r.Begin()
	b.pending = b.pending[:0]
	b.bytes = 0
	b.matches = 0
	b.closed = false
}

func (b *gateBackend) emit(m stream.Match) {
	b.pending = append(b.pending, m)
	b.matches++
	b.hooks.match(b.shard, m)
}

func (b *gateBackend) Feed(p []byte) error {
	if b.closed {
		return errClosed
	}
	b.r.Feed(p, b.emit)
	b.bytes += int64(len(p))
	b.hooks.bytes(b.shard, len(p))
	return nil
}

func (b *gateBackend) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	b.r.Finish(b.emit)
	return nil
}

func (b *gateBackend) Matches() []stream.Match {
	out := b.pending
	b.pending = nil
	return out
}

func (b *gateBackend) Counters() Counters {
	return Counters{Bytes: b.bytes, Matches: b.matches}
}
