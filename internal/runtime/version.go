package runtime

import (
	"fmt"
	"sort"
)

// factoryVersion is one published generation of a pipeline's backend
// factory. Streams bind the version that is current when their backend is
// created and keep it for life: a SwapFactory never migrates a live
// stream, it only changes what new streams get. The version is retired —
// observable through Hooks.VersionRetired — when it is no longer current
// and its last stream's final batch has been delivered, so whatever the
// factory closes over (a shared DFA cache, a router spec) is safe to tear
// down at retirement.
type factoryVersion struct {
	id      int
	factory Factory

	// streams counts live bindings. It only increases while the version is
	// current (acquire happens under verMu), so once superseded the count
	// is monotonically non-increasing and zero is final.
	streams int64 // guarded by p.verMu
	retired bool  // guarded by p.verMu
}

// SwapFactory atomically publishes f as the pipeline's backend factory and
// returns the new version's id. New streams created after SwapFactory
// returns bind f; live streams keep draining on the factory that created
// their backend, with no dropped or reordered batches. The superseded
// version is retired — Hooks.VersionRetired fires — once its last
// stream's final batch has been delivered (immediately, when it has no
// live streams). After Close, SwapFactory fails with ErrClosed.
func (p *Pipeline) SwapFactory(f Factory) (int, error) {
	if f == nil {
		return 0, fmt.Errorf("runtime: SwapFactory with nil factory")
	}
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if p.closed {
		return 0, ErrClosed
	}
	p.verMu.Lock()
	old := p.curVer
	p.nextVerID++
	v := &factoryVersion{id: p.nextVerID, factory: f}
	p.curVer = v
	p.liveVers[v.id] = v
	var retiredID int
	if old != nil && old.streams == 0 && !old.retired {
		old.retired = true
		delete(p.liveVers, old.id)
		retiredID = old.id
	}
	p.verMu.Unlock()
	if retiredID != 0 {
		p.cfg.Hooks.versionRetired(retiredID)
	}
	return v.id, nil
}

// CurrentVersion reports the id of the factory version new streams bind.
// Version ids start at 1 and increase with every SwapFactory.
func (p *Pipeline) CurrentVersion() int {
	p.verMu.Lock()
	defer p.verMu.Unlock()
	return p.curVer.id
}

// LiveVersions reports the ids of the factory versions not yet retired —
// the current version plus any superseded versions still draining live
// streams — in ascending order. A stable length-1 result after a reload
// proves the old version was fully retired (no factory leak).
func (p *Pipeline) LiveVersions() []int {
	p.verMu.Lock()
	ids := make([]int, 0, len(p.liveVers))
	for id := range p.liveVers {
		ids = append(ids, id)
	}
	p.verMu.Unlock()
	sort.Ints(ids)
	return ids
}

// acquireVersion binds one new stream to the current version.
func (p *Pipeline) acquireVersion() *factoryVersion {
	p.verMu.Lock()
	v := p.curVer
	v.streams++
	p.verMu.Unlock()
	return v
}

// releaseVersion drops one stream binding, retiring the version when it is
// superseded and this was its last stream. Called by the sink worker after
// the stream's final batch is delivered (or dead-lettered, or dropped on a
// failed sink) — never earlier, so per-version resources outlive every
// batch that references them.
func (p *Pipeline) releaseVersion(v *factoryVersion) {
	p.verMu.Lock()
	v.streams--
	retire := v.streams == 0 && v != p.curVer && !v.retired
	if retire {
		v.retired = true
		delete(p.liveVers, v.id)
	}
	p.verMu.Unlock()
	if retire {
		p.cfg.Hooks.versionRetired(v.id)
	}
}
