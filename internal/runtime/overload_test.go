package runtime

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
)

// blockingBackend blocks inside Feed on chunks containing "BLOCK" until its
// gate closes, signalling started on entry — the lever that fills a shard
// queue deterministically for the admission-control tests.
type blockingBackend struct {
	fakeBackend
	started chan struct{}
	gate    chan struct{}
}

func (g *blockingBackend) Feed(p []byte) error {
	if bytes.Contains(p, []byte("BLOCK")) {
		select {
		case g.started <- struct{}{}:
		default:
		}
		<-g.gate
	}
	return nil
}

func blockingFactory(started, gate chan struct{}) Factory {
	return func(int, *Hooks) (Backend, error) {
		return &blockingBackend{started: started, gate: gate}, nil
	}
}

// fillShard drives one shard into the shed state: the "busy" stream's
// Feed is blocking on the gate (queue drained), and one more message
// occupies the single queue slot.
func fillShard(t *testing.T, p *Pipeline, started chan struct{}) {
	t.Helper()
	if err := p.Send("busy", []byte("BLOCK")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("backend never started blocking")
	}
	if err := p.Send("busy", []byte("fill")); err != nil {
		t.Fatalf("queue-filling Send = %v, want nil", err)
	}
}

func TestSendShedImmediate(t *testing.T) {
	var mc MetricCounters
	var shedKeys []string
	hooks := chainHooks(mc.Hooks(), &Hooks{
		Overloaded: func(shard int, key string) { shedKeys = append(shedKeys, key) },
	})
	started, gate := make(chan struct{}, 1), make(chan struct{})
	sink := newCollectSink()
	p, err := NewPipeline(Config{
		Shards:      1,
		Queue:       1,
		BatchBytes:  -1, // dispatch every message: queue depth == messages
		SendTimeout: -1, // immediate shed
		Factory:     blockingFactory(started, gate),
		Hooks:       hooks,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	fillShard(t, p, started)

	// Queue is at the high watermark: the next Send must shed, typed and
	// without touching the victim stream.
	serr := p.Send("victim", []byte("shed me"))
	if !errors.Is(serr, ErrOverloaded) {
		t.Fatalf("Send over watermark = %v, want ErrOverloaded", serr)
	}

	// EOS always blocks: CloseStream on the full queue waits instead of
	// shedding, and completes once the backend unblocks.
	closed := make(chan error, 1)
	go func() { closed <- p.CloseStream("busy") }()
	select {
	case err := <-closed:
		t.Fatalf("CloseStream returned %v while the queue was full, want it to block", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(gate)
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("CloseStream after drain = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("CloseStream never completed after the backend unblocked")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	if f := mc.Faults(); f.SendsShed != 1 {
		t.Errorf("SendsShed = %d, want 1", f.SendsShed)
	}
	if !reflect.DeepEqual(shedKeys, []string{"victim"}) {
		t.Errorf("Overloaded hook keys = %v, want [victim]", shedKeys)
	}
	// A shed Send never creates the stream: no batch, no EOS.
	if sink.eos["victim"] {
		t.Error("shed stream produced an EOS batch")
	}
	if !sink.eos["busy"] || sink.errs["busy"] != nil {
		t.Errorf("surviving stream eos=%v err=%v, want clean EOS", sink.eos["busy"], sink.errs["busy"])
	}
}

func TestSendShedBoundedWait(t *testing.T) {
	var mc MetricCounters
	started, gate := make(chan struct{}, 1), make(chan struct{})
	sink := newCollectSink()
	p, err := NewPipeline(Config{
		Shards:      1,
		Queue:       1,
		BatchBytes:  -1,
		SendTimeout: 10 * time.Second, // bounded wait, generous for CI
		Factory:     blockingFactory(started, gate),
		Hooks:       mc.Hooks(),
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	fillShard(t, p, started)

	// Unblock the backend shortly; the waiting Send must ride the drain
	// signal through admission instead of shedding.
	time.AfterFunc(30*time.Millisecond, func() { close(gate) })
	if err := p.Send("later", []byte("waited")); err != nil {
		t.Fatalf("bounded-wait Send = %v, want nil after drain", err)
	}
	for _, key := range []string{"busy", "later"} {
		if err := p.CloseStream(key); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if f := mc.Faults(); f.SendsShed != 0 {
		t.Errorf("SendsShed = %d, want 0 (the queue drained within SendTimeout)", f.SendsShed)
	}
	if !sink.eos["later"] || sink.errs["later"] != nil {
		t.Errorf("waited stream eos=%v err=%v, want clean EOS", sink.eos["later"], sink.errs["later"])
	}
}

// stallBackend sleeps through Feed on chunks containing "STALL",
// simulating a wedged backend for the watchdog.
type stallBackend struct {
	fakeBackend
	d time.Duration
}

func (s *stallBackend) Feed(p []byte) error {
	if bytes.Contains(p, []byte("STALL")) {
		time.Sleep(s.d)
	}
	return nil
}

func TestWatchdogStalledFeed(t *testing.T) {
	var mc MetricCounters
	var wdN atomic.Int64
	var wdOrigin atomic.Value
	hooks := chainHooks(mc.Hooks(), &Hooks{
		Watchdog: func(shard int, key, origin string, elapsed time.Duration) {
			wdN.Add(1)
			wdOrigin.Store(origin)
		},
	})
	sink := newCollectSink()
	p, err := NewPipeline(Config{
		Shards:       1,
		FeedDeadline: 5 * time.Millisecond,
		Factory: func(int, *Hooks) (Backend, error) {
			return &stallBackend{d: 60 * time.Millisecond}, nil
		},
		Hooks: hooks,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("stuck", []byte("xx STALL xx")); err != nil {
		t.Fatal(err)
	}
	sendUntilQuarantined(t, p, "stuck")
	// The surviving stream keeps flowing on the same shard.
	if err := p.Send("fine", []byte("hello")); err != nil {
		t.Fatalf("healthy stream rejected after a stall: %v", err)
	}
	if err := p.CloseStream("fine"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	if !sink.eos["stuck"] {
		t.Error("stalled stream got no EOS batch")
	}
	if err := sink.errs["stuck"]; !errors.Is(err, ErrBackendStalled) {
		t.Errorf("stalled stream Err = %v, want ErrBackendStalled", err)
	}
	if sink.errs["fine"] != nil || !sink.eos["fine"] {
		t.Errorf("healthy stream eos=%v err=%v, want clean EOS", sink.eos["fine"], sink.errs["fine"])
	}
	f := mc.Faults()
	if f.WatchdogTrips != wdN.Load() {
		t.Errorf("WatchdogTrips = %d, hook observed %d", f.WatchdogTrips, wdN.Load())
	}
	if f.WatchdogTrips == 0 {
		t.Error("no watchdog trips counted")
	}
	if got := wdOrigin.Load(); got != "Feed" {
		t.Errorf("watchdog origin = %v, want Feed", got)
	}
	if f.StreamsQuarantined == 0 {
		t.Error("stalled stream was not quarantined")
	}
}

func TestSinkBreakerOpensAndRecovers(t *testing.T) {
	var mc MetricCounters
	var openN, closeN atomic.Int64
	hooks := chainHooks(mc.Hooks(), &Hooks{
		Breaker: func(worker int, open bool) {
			if open {
				openN.Add(1)
			} else {
				closeN.Add(1)
			}
		},
	})
	var down atomic.Bool
	var mu sync.Mutex
	delivered := make(map[string]bool)
	var dlErrs []error
	sink := SinkFunc(func(b *Batch) error {
		if down.Load() {
			return errors.New("sink down")
		}
		mu.Lock()
		delivered[b.Key] = true
		mu.Unlock()
		return nil
	})
	p, err := NewPipeline(Config{
		Shards:           1,
		Factory:          fakeFactory,
		SinkAttempts:     1,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
		DeadLetter: func(b *Batch, err error) {
			mu.Lock()
			dlErrs = append(dlErrs, err)
			mu.Unlock()
		},
		Hooks: hooks,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}

	down.Store(true)
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("wedged-%d", i)
		if err := p.Send(key, []byte("data")); err != nil {
			t.Fatal(err)
		}
		if err := p.CloseStream(key); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		f := mc.Faults()
		if f.BreakerOpens >= 1 && f.BreakerSheds >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened/shed: faults = %+v", f)
		}
		time.Sleep(time.Millisecond)
	}

	// Heal the sink; traffic after the cooldown must close the breaker
	// via the half-open probe and flow again.
	down.Store(false)
	healed := false
	for i := 0; i < 200 && !healed; i++ {
		key := fmt.Sprintf("heal-%d", i)
		if err := p.Send(key, []byte("data")); err != nil {
			t.Fatal(err)
		}
		if err := p.CloseStream(key); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		healed = delivered[key]
		mu.Unlock()
	}
	if !healed {
		t.Fatal("sink never recovered after the breaker healed")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	f := mc.Faults()
	if f.BreakerOpens != openN.Load() {
		t.Errorf("BreakerOpens = %d, hook observed %d", f.BreakerOpens, openN.Load())
	}
	if f.BreakerOpenWorkers != openN.Load()-closeN.Load() {
		t.Errorf("BreakerOpenWorkers = %d, want opens-closes = %d",
			f.BreakerOpenWorkers, openN.Load()-closeN.Load())
	}
	if f.BreakerOpenWorkers != 0 {
		t.Errorf("BreakerOpenWorkers = %d after recovery, want 0", f.BreakerOpenWorkers)
	}
	mu.Lock()
	defer mu.Unlock()
	sawBreakerOpen := false
	for _, err := range dlErrs {
		if errors.Is(err, ErrBreakerOpen) {
			sawBreakerOpen = true
		}
	}
	if !sawBreakerOpen {
		t.Error("no dead letter carried ErrBreakerOpen")
	}
}

// ambSpec compiles the exponentially ambiguous grammar s : s s | "x" —
// the adversarial Earley workload: chart items grow superlinearly in the
// count of x's, so a modest MaxChartItems trips on a modest input.
func ambSpec(t testing.TB) *core.Spec {
	t.Helper()
	g, err := grammar.Parse("amb", `
%%
s : s s | "x" ;
`)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := core.Compile(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestEarleyChartBudgetEndsStream(t *testing.T) {
	var mc MetricCounters
	var reKeys []string
	hooks := chainHooks(mc.Hooks(), &Hooks{
		ResourceExhausted: func(shard int, key string) { reKeys = append(reKeys, key) },
	})
	spec := ambSpec(t)
	factory, err := EarleyFactoryLimits(spec, Limits{MaxChartItems: 300})
	if err != nil {
		t.Fatal(err)
	}
	sink := newCollectSink()
	p, err := NewPipeline(Config{Shards: 1, Factory: factory, Hooks: hooks}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("amb", []byte(strings.Repeat("x", 64))); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseStream("amb"); err != nil {
		t.Fatal(err)
	}
	// The budget trip at Close poisons the key like a Feed fault.
	sendUntilQuarantined(t, p, "amb")

	// A small input completes within the same budget.
	if err := p.Send("ok", []byte("xx")); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseStream("ok"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	if err := sink.errs["amb"]; !errors.Is(err, ErrResourceExhausted) {
		t.Errorf("adversarial stream Err = %v, want ErrResourceExhausted", err)
	}
	if err := sink.errs["ok"]; err != nil {
		t.Errorf("small stream Err = %v, want nil", err)
	}
	if len(sink.tags["ok"]) == 0 {
		t.Error("small stream produced no tags")
	}
	if f := mc.Faults(); f.ResourceExhausted != 1 {
		t.Errorf("ResourceExhausted = %d, want 1", f.ResourceExhausted)
	}
	if !reflect.DeepEqual(reKeys, []string{"amb"}) {
		t.Errorf("ResourceExhausted hook keys = %v, want [amb]", reKeys)
	}
}

func TestBufferAndPendingBudgets(t *testing.T) {
	t.Run("earley-buffer", func(t *testing.T) {
		spec := ambSpec(t)
		factory, err := EarleyFactoryLimits(spec, Limits{MaxBufferBytes: 16})
		if err != nil {
			t.Fatal(err)
		}
		assertBudgetTrip(t, factory, []byte(strings.Repeat("x", 32)))
	})
	t.Run("parser-buffer", func(t *testing.T) {
		spec, err := core.Compile(grammar.IfThenElse(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		factory, err := ParserFactoryLimits(spec, Limits{MaxBufferBytes: 16})
		if err != nil {
			t.Fatal(err)
		}
		assertBudgetTrip(t, factory, []byte(strings.Repeat("if c then a ", 8)))
	})
	t.Run("tagger-pending", func(t *testing.T) {
		spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
		if err != nil {
			t.Fatal(err)
		}
		factory := TaggerFactoryLimits(spec, Limits{MaxPendingMatches: 1})
		// One chunk carrying several matches overflows the pending bound
		// before the batch's drain.
		chunk := []byte("<methodCall><methodName>a</methodName></methodCall>")
		assertBudgetTrip(t, factory, chunk)
	})
}

// assertBudgetTrip sends one chunk expected to trip a per-stream budget
// and asserts the typed EOS, the quarantine and the fault counter.
func assertBudgetTrip(t *testing.T, factory Factory, chunk []byte) {
	t.Helper()
	var mc MetricCounters
	sink := newCollectSink()
	p, err := NewPipeline(Config{Shards: 1, Factory: factory, Hooks: mc.Hooks()}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("hog", chunk); err != nil {
		t.Fatal(err)
	}
	sendUntilQuarantined(t, p, "hog")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.eos["hog"] {
		t.Fatal("budget-tripped stream got no EOS batch")
	}
	if err := sink.errs["hog"]; !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("budget-tripped stream Err = %v, want ErrResourceExhausted", err)
	}
	if f := mc.Faults(); f.ResourceExhausted != 1 {
		t.Fatalf("ResourceExhausted = %d, want 1", f.ResourceExhausted)
	}
}

func TestTenantMemBudget(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem := &MemGauge{}
	factory, err := ParserFactoryLimits(spec, Limits{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	err = reg.Add(Tenant{
		Name:   "t",
		Config: Config{Shards: 1, Factory: factory, Mem: mem},
		Quota:  Quota{MemBudgetBytes: 1024},
	}, newCollectSink())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// Buffer 4 KiB on one stream; once the backend's charge lands on the
	// gauge, the tenant is over budget and new Sends are rejected.
	if err := reg.Send("t", "big", []byte(strings.Repeat("a", 4096))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if u, err := reg.MemUsage("t"); err == nil && u >= 1024 {
			break
		}
		if time.Now().After(deadline) {
			u, _ := reg.MemUsage("t")
			t.Fatalf("tenant memory never reached budget: %d bytes", u)
		}
		time.Sleep(time.Millisecond)
	}
	if err := reg.Send("t", "other", []byte("x")); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("Send over memory budget = %v, want ErrResourceExhausted", err)
	}

	// Draining the hog stream releases its charge; the gauge returns to
	// zero and admission recovers.
	if err := reg.CloseStream("t", "big"); err != nil {
		t.Fatal(err)
	}
	for {
		if u, err := reg.MemUsage("t"); err == nil && u == 0 {
			break
		}
		if time.Now().After(deadline) {
			u, _ := reg.MemUsage("t")
			t.Fatalf("tenant memory never drained to zero: %d bytes", u)
		}
		time.Sleep(time.Millisecond)
	}
	if err := reg.Send("t", "other", []byte("x")); err != nil {
		t.Fatalf("Send after drain = %v, want nil", err)
	}
}

// TestQuarantineSweepBound churns unique faulted keys through the
// quarantine table and asserts the map is reaped: amortized sweeps keep
// it O(live) during churn, and the periodic sweep empties it at rest.
func TestQuarantineSweepBound(t *testing.T) {
	var poisonedN atomic.Int64
	p, err := NewPipeline(Config{
		Shards:     1,
		Quarantine: time.Millisecond,
		Factory:    fakeFactory,
		Hooks: &Hooks{
			Quarantined: func(int, string) { poisonedN.Add(1) },
		},
	}, newCollectSink())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 400
	for i := 0; i < keys; i++ {
		if err := p.Send(fmt.Sprintf("bad-%d", i), []byte("ERROR")); err != nil {
			t.Fatal(err)
		}
		if i%100 == 99 {
			// Let earlier entries expire so the amortized insert-path
			// sweep has something to reap.
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Wait for the shard to process (and poison) every faulted key.
	deadline := time.Now().Add(10 * time.Second)
	s := p.shards[0]
	for poisonedN.Load() != keys {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d faulted keys processed", poisonedN.Load(), keys)
		}
		time.Sleep(time.Millisecond)
	}
	s.quarMu.Lock()
	size := len(s.quar)
	s.quarMu.Unlock()
	if size >= keys {
		t.Fatalf("quarantine map holds %d entries after churning %d expiring keys; sweep is not bounding it", size, keys)
	}
	// At rest, the periodic sweep (idle flusher) must empty the table
	// without any further dispatch touching it.
	for s.quarN.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("quarantine table never drained: %d live entries", s.quarN.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// soakSink is a concurrency-safe collectSink for soaks running multiple
// sink workers.
type soakSink struct {
	mu   sync.Mutex
	data map[string][]byte
	tags map[string][]stream.Match
	eos  map[string]int
	errs map[string]error
}

func newSoakSink() *soakSink {
	return &soakSink{
		data: make(map[string][]byte),
		tags: make(map[string][]stream.Match),
		eos:  make(map[string]int),
		errs: make(map[string]error),
	}
}

func (s *soakSink) Deliver(b *Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[b.Key] = append(s.data[b.Key], b.Data...)
	s.tags[b.Key] = append(s.tags[b.Key], b.Tags...)
	if b.EOS {
		s.eos[b.Key]++
	}
	if b.Err != nil {
		s.errs[b.Key] = b.Err
	}
	return nil
}

func (s *soakSink) Close() error { return nil }

// stallWrapBackend injects a Feed stall on chunks containing '!' in front
// of a real backend, forwarding the memory-release hook so the wrapped
// backend's gauge charge still dies with the stream.
type stallWrapBackend struct {
	Backend
	d time.Duration
}

func (s *stallWrapBackend) Feed(p []byte) error {
	if bytes.Contains(p, []byte("!")) {
		time.Sleep(s.d)
	}
	return s.Backend.Feed(p)
}

func (s *stallWrapBackend) releaseMem() {
	if r, ok := s.Backend.(memReleaser); ok {
		r.releaseMem()
	}
}

// TestOverloadSoak is the overload chaos soak: hundreds to thousands of
// concurrent streams — conforming sentences, adversarially ambiguous
// Earley inputs, wedged-backend stalls — pushed at a deliberately
// undersized pipeline in immediate-shed mode, with the sink wedged for a
// window mid-run to trip the circuit breaker. It asserts that every
// overload intervention is typed, that surviving streams are byte- and
// tag-identical to a serial run of the same backend, that the memory
// gauge returns to zero, and that every FaultStats counter reconciles
// exactly with independently observed hook events.
func TestOverloadSoak(t *testing.T) {
	streams := 2400
	if testing.Short() {
		streams = 500
	}
	const (
		workers      = 8
		stallEvery   = 149 // ~0.7% of streams stall (each costs a FeedDeadline)
		advEvery     = 11  // ~9% adversarial ambiguous inputs
		feedDeadline = 100 * time.Millisecond
		stallFor     = 400 * time.Millisecond
	)

	spec := ambSpec(t)
	mem := &MemGauge{}
	lim := Limits{MaxChartItems: 500, MaxWorkPerByte: 2048, Mem: mem}
	baseFactory, err := EarleyFactoryLimits(spec, lim)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(shard int, h *Hooks) (Backend, error) {
		b, err := baseFactory(shard, h)
		if err != nil {
			return nil, err
		}
		return &stallWrapBackend{Backend: b, d: stallFor}, nil
	}

	// Independent event observers, reconciled against FaultStats at the
	// end: the counters the platform exports must agree exactly with the
	// events the hooks reported.
	var mc MetricCounters
	var shedHookN, wdHookN, reHookN, dlHookN, brShedHookN atomic.Int64
	var brOpenN, brCloseN, quarHookN atomic.Int64
	hooks := chainHooks(mc.Hooks(), &Hooks{
		Overloaded:        func(int, string) { shedHookN.Add(1) },
		Watchdog:          func(int, string, string, time.Duration) { wdHookN.Add(1) },
		ResourceExhausted: func(int, string) { reHookN.Add(1) },
		DeadLetter:        func(string, error) { dlHookN.Add(1) },
		BreakerShed:       func(int, string) { brShedHookN.Add(1) },
		Quarantined:       func(int, string) { quarHookN.Add(1) },
		Breaker: func(worker int, open bool) {
			if open {
				brOpenN.Add(1)
			} else {
				brCloseN.Add(1)
			}
		},
	})

	// The sink fails every Deliver while down is set — the wedged-sink
	// window that trips the breaker.
	var down atomic.Bool
	collect := newSoakSink()
	sink := SinkFunc(func(b *Batch) error {
		if down.Load() {
			return errors.New("sink wedged")
		}
		return collect.Deliver(b)
	})
	var dlMu sync.Mutex
	dlKeys := make(map[string]bool) // streams that lost a batch to the DLQ
	dlEOS := make(map[string]bool)  // ... including their EOS batch
	var dlCallbackN int64
	p, err := NewPipeline(Config{
		Shards:           4,
		Queue:            2,
		BatchBytes:       -1, // dispatch per message: shed pressure is real
		SendTimeout:      -1, // immediate shed at the high watermark
		FeedDeadline:     feedDeadline,
		SinkWorkers:      2,
		SinkAttempts:     1,
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
		Quarantine:       time.Minute, // no expiry mid-soak: faulted keys stay dead
		Factory:          factory,
		Hooks:            hooks,
		Mem:              mem,
		DeadLetter: func(b *Batch, err error) {
			dlMu.Lock()
			dlCallbackN++
			dlKeys[b.Key] = true
			if b.EOS {
				dlEOS[b.Key] = true
			}
			dlMu.Unlock()
		},
	}, sink)
	if err != nil {
		t.Fatal(err)
	}

	type streamPlan struct {
		key    string
		chunks [][]byte
		kind   string // "ok", "adv", "stall"
	}
	plans := make([]streamPlan, streams)
	for i := range plans {
		sp := streamPlan{key: fmt.Sprintf("s-%d", i), kind: "ok"}
		switch {
		case i%stallEvery == stallEvery-1:
			sp.kind = "stall"
			sp.chunks = [][]byte{[]byte("!!!")}
		case i%advEvery == advEvery-1:
			sp.kind = "adv"
			x := strings.Repeat("x", 64)
			sp.chunks = [][]byte{[]byte(x[:20]), []byte(x[20:])}
		default:
			// 1..8 x's split into up to 3 chunks.
			x := strings.Repeat("x", 1+i%8)
			for len(x) > 0 {
				n := 1 + i%3
				if n > len(x) {
					n = len(x)
				}
				sp.chunks = append(sp.chunks, []byte(x[:n]))
				x = x[n:]
			}
		}
		plans[i] = sp
	}

	var (
		exclMu     sync.Mutex
		shedStream = make(map[string]bool) // lost ≥1 chunk to admission shed
		shedErrN   int64                   // ErrOverloaded returns observed at call sites
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(plans); i += workers {
				sp := plans[i]
				dead := false
				for _, chunk := range sp.chunks {
					// A shed rejects the whole chunk, never part of it, so
					// retrying the same chunk keeps the stream intact; only
					// a chunk still shed after the retries is dropped (and
					// the stream excluded from the oracle comparison).
					var err error
					for attempt := 0; attempt < 25; attempt++ {
						if err = p.Send(sp.key, chunk); !errors.Is(err, ErrOverloaded) {
							break
						}
						exclMu.Lock()
						shedErrN++
						exclMu.Unlock()
						time.Sleep(time.Millisecond)
					}
					switch {
					case err == nil:
					case errors.Is(err, ErrOverloaded):
						exclMu.Lock()
						shedStream[sp.key] = true
						exclMu.Unlock()
					case errors.Is(err, ErrQuarantined):
						dead = true
					default:
						t.Errorf("Send(%q) = %v", sp.key, err)
						dead = true
					}
					if dead {
						break
					}
				}
				if !dead {
					if err := p.CloseStream(sp.key); err != nil && !errors.Is(err, ErrQuarantined) {
						t.Errorf("CloseStream(%q) = %v", sp.key, err)
					}
				}
			}
		}(w)
	}

	// Wedge the sink for a window mid-run: deliveries fail, the breaker
	// opens and sheds to the DLQ, then the sink heals and the breaker
	// closes on a half-open probe. The window lasts until a breaker has
	// actually opened (bounded), so the soak always exercises it.
	time.Sleep(30 * time.Millisecond)
	down.Store(true)
	wedgeDeadline := time.Now().Add(5 * time.Second)
	for mc.Faults().BreakerOpens == 0 && time.Now().Before(wedgeDeadline) {
		time.Sleep(time.Millisecond)
	}
	down.Store(false)

	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// --- Liveness: every stream ended exactly once, shed streams aside.
	collect.mu.Lock()
	defer collect.mu.Unlock()
	dlMu.Lock()
	defer dlMu.Unlock()
	for _, sp := range plans {
		n := collect.eos[sp.key]
		if dlEOS[sp.key] {
			n++
		}
		if n != 1 {
			t.Fatalf("stream %q (%s): %d EOS batches, want exactly 1", sp.key, sp.kind, n)
		}
	}

	// --- Typed faults and serial-oracle conformance for untouched streams.
	serial := func(sp streamPlan) ([]stream.Match, error) {
		b, err := baseFactory(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		// The serial backend charges the shared gauge like a pipeline
		// stream; retire its charge so the bounded-memory assertion below
		// measures the pipeline alone.
		defer func() {
			if r, ok := b.(memReleaser); ok {
				r.releaseMem()
			}
		}()
		var ms []stream.Match
		for _, c := range sp.chunks {
			if ferr := b.Feed(c); ferr != nil {
				return ms, ferr
			}
			ms = append(ms, b.Matches()...)
		}
		cerr := b.Close()
		return append(ms, b.Matches()...), cerr
	}
	compared := 0
	for _, sp := range plans {
		if shedStream[sp.key] || dlKeys[sp.key] {
			continue // a chunk or batch was deliberately dropped
		}
		got, gotErr := collect.tags[sp.key], collect.errs[sp.key]
		switch sp.kind {
		case "stall":
			if !errors.Is(gotErr, ErrBackendStalled) {
				t.Errorf("stalled stream %q Err = %v, want ErrBackendStalled", sp.key, gotErr)
			}
			continue
		case "adv":
			if !errors.Is(gotErr, ErrResourceExhausted) {
				t.Errorf("adversarial stream %q Err = %v, want ErrResourceExhausted", sp.key, gotErr)
			}
			if _, serr := serial(sp); !errors.Is(serr, ErrResourceExhausted) {
				t.Errorf("serial run of %q = %v, want the same ErrResourceExhausted", sp.key, serr)
			}
			continue
		}
		want, wantErr := serial(sp)
		if gotErr != nil || wantErr != nil {
			t.Errorf("conforming stream %q: pipeline err %v, serial err %v", sp.key, gotErr, wantErr)
			continue
		}
		var sent []byte
		for _, c := range sp.chunks {
			sent = append(sent, c...)
		}
		if !bytes.Equal(collect.data[sp.key], sent) {
			t.Errorf("stream %q: delivered %d bytes, sent %d — not byte-identical", sp.key, len(collect.data[sp.key]), len(sent))
		}
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Errorf("stream %q: pipeline tags %v, serial oracle %v", sp.key, got, want)
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("every conforming stream was shed; the soak compared nothing")
	}

	// --- Exact counter reconciliation: FaultStats vs observed events.
	f := mc.Faults()
	if f.SendsShed != shedHookN.Load() || f.SendsShed != shedErrN {
		t.Errorf("SendsShed = %d, hook observed %d, ErrOverloaded returns %d — counters do not reconcile",
			f.SendsShed, shedHookN.Load(), shedErrN)
	}
	if f.WatchdogTrips != wdHookN.Load() {
		t.Errorf("WatchdogTrips = %d, hook observed %d", f.WatchdogTrips, wdHookN.Load())
	}
	if f.ResourceExhausted != reHookN.Load() {
		t.Errorf("ResourceExhausted = %d, hook observed %d", f.ResourceExhausted, reHookN.Load())
	}
	if f.DeadLetters != dlHookN.Load() {
		t.Errorf("DeadLetters = %d, hook observed %d", f.DeadLetters, dlHookN.Load())
	}
	if f.BreakerOpens != brOpenN.Load() {
		t.Errorf("BreakerOpens = %d, hook observed %d", f.BreakerOpens, brOpenN.Load())
	}
	if f.BreakerSheds != brShedHookN.Load() {
		t.Errorf("BreakerSheds = %d, hook observed %d", f.BreakerSheds, brShedHookN.Load())
	}
	if f.BreakerOpenWorkers != brOpenN.Load()-brCloseN.Load() {
		t.Errorf("BreakerOpenWorkers = %d, want opens-closes = %d",
			f.BreakerOpenWorkers, brOpenN.Load()-brCloseN.Load())
	}
	if f.StreamsQuarantined != quarHookN.Load() {
		t.Errorf("StreamsQuarantined = %d, hook observed %d", f.StreamsQuarantined, quarHookN.Load())
	}
	// Every delivery the Config.DeadLetter callback saw is either a
	// retry-exhausted dead letter or a breaker shed — the two counters
	// partition the callback count.
	if dlCallbackN != dlHookN.Load()+brShedHookN.Load() {
		t.Errorf("DeadLetter callback ran %d times, DeadLetters %d + BreakerSheds %d",
			dlCallbackN, dlHookN.Load(), brShedHookN.Load())
	}
	if f.ResourceExhausted == 0 {
		t.Error("no resource budgets tripped; the adversarial load never bit")
	}
	if f.WatchdogTrips == 0 {
		t.Error("no watchdog trips; the stall load never bit")
	}

	// --- Bounded memory: all gauge charges (arenas, stream buffers,
	// charts) were discharged when their owners retired.
	if got := mem.Load(); got != 0 {
		t.Errorf("memory gauge = %d bytes after Close, want 0", got)
	}
}
