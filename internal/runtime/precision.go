package runtime

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cfgtag/internal/core"
	"cfgtag/internal/earley"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

// Precision quantifies the FSA over-approximation for one grammar: of the
// tags the stream engine emits, how many does the exact-language Earley
// oracle justify? The PDA→FSA collapse (paper section 3.1) accepts a
// superset of the language, so on inputs outside the language — and, for
// some grammars, even on conforming sentences — the hardware path tags
// positions no derivation supports. Those are the false positives.
type Precision struct {
	Grammar        string  `json:"grammar"`
	Class          string  `json:"class"`
	Trials         int     `json:"trials"`
	Bytes          int64   `json:"bytes"`
	StreamTags     int64   `json:"stream_tags"`
	OracleTags     int64   `json:"oracle_tags"`
	FalsePositives int64   `json:"false_positives"`
	FPRatePct      float64 `json:"fp_rate_pct"`
}

// MeasurePrecision runs the precision workload for one grammar: per trial,
// one conforming sentence from the workload generator plus two
// perturbations that leave the FSA tagging away while exiting the exact
// language — a single smashed byte, and a splice of two sentence halves
// (the paper's figure 2 superset: structurally unbalanced input the
// collapsed automaton still walks). Every stream tag the oracle does not
// justify counts as a false positive; on oracle-rejected input that is
// every stream tag, since no derivation exists at all.
//
// The run is deterministic in (seed, trials). Two invariants are enforced
// as hard errors rather than measured: the oracle must accept every
// generated sentence, and accepted-input oracle tags must be a subset of
// the stream tags.
func MeasurePrecision(g *grammar.Grammar, class string, seed int64, trials int) (Precision, error) {
	p := Precision{Grammar: g.Name, Class: class, Trials: trials}
	spec, err := core.Compile(g, core.Options{})
	if err != nil {
		return p, fmt.Errorf("precision %s: compile: %w", g.Name, err)
	}
	rec, err := earley.New(spec)
	if err != nil {
		return p, fmt.Errorf("precision %s: oracle: %w", g.Name, err)
	}
	gen := workload.NewGenerator(spec, seed, workload.SentenceOptions{MaxDepth: 8})
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))

	for trial := 0; trial < trials; trial++ {
		a, _ := gen.Sentence()
		b, _ := gen.Sentence()
		inputs := [][]byte{a}
		if len(a) > 2 {
			bad := append([]byte(nil), a...)
			bad[rng.Intn(len(bad))] = '@'
			inputs = append(inputs, bad)
		}
		if len(a) > 1 && len(b) > 1 {
			splice := append(append([]byte(nil), a[:len(a)/2]...), b[len(b)/2:]...)
			inputs = append(inputs, splice)
		}
		for i, in := range inputs {
			conforming := i == 0
			sw := make(map[stream.Match]bool)
			for _, m := range stream.NewTagger(spec).Tag(in) {
				sw[m] = true
			}
			oracle := make(map[stream.Match]bool)
			tags, err := rec.Tags(in)
			switch {
			case err == nil:
				for _, tag := range tags {
					m := stream.Match{InstanceID: spec.InstanceAt(tag.Rule, tag.Pos).ID, End: int64(tag.End)}
					if !sw[m] {
						return p, fmt.Errorf("precision %s: oracle violation: earley tag %v missing from stream tags on %q", g.Name, m, in)
					}
					oracle[m] = true
				}
			case conforming:
				return p, fmt.Errorf("precision %s: oracle rejected conforming sentence %q: %w", g.Name, in, err)
			default:
				var rej *earley.RejectError
				if !errors.As(err, &rej) {
					return p, fmt.Errorf("precision %s: oracle on %q: %w", g.Name, in, err)
				}
			}
			p.Bytes += int64(len(in))
			p.StreamTags += int64(len(sw))
			p.OracleTags += int64(len(oracle))
			for m := range sw {
				if !oracle[m] {
					p.FalsePositives++
				}
			}
		}
	}
	if p.StreamTags > 0 {
		p.FPRatePct = roundPct(100 * float64(p.FalsePositives) / float64(p.StreamTags))
	}
	return p, nil
}

// ClassPrecision aggregates Precision over every grammar sharing a class.
type ClassPrecision struct {
	Class          string  `json:"class"`
	Members        int     `json:"members"`
	StreamTags     int64   `json:"stream_tags"`
	FalsePositives int64   `json:"false_positives"`
	FPRatePct      float64 `json:"fp_rate_pct"`
}

// AggregateByClass folds per-grammar measurements into per-class rates,
// preserving first-appearance class order.
func AggregateByClass(ps []Precision) []ClassPrecision {
	idx := make(map[string]int)
	var out []ClassPrecision
	for _, p := range ps {
		i, ok := idx[p.Class]
		if !ok {
			i = len(out)
			idx[p.Class] = i
			out = append(out, ClassPrecision{Class: p.Class})
		}
		out[i].Members++
		out[i].StreamTags += p.StreamTags
		out[i].FalsePositives += p.FalsePositives
	}
	for i := range out {
		if out[i].StreamTags > 0 {
			out[i].FPRatePct = roundPct(100 * float64(out[i].FalsePositives) / float64(out[i].StreamTags))
		}
	}
	return out
}

// roundPct keeps emitted rates diff-stable across platforms.
func roundPct(x float64) float64 { return math.Round(x*1000) / 1000 }
