package runtime

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

// reloadSink records, per stream, the delivered bytes, tags, EOS flag and
// the set of factory versions stamped on its batches. Safe for concurrent
// Deliver (mutexed) so tests may raise SinkWorkers.
type reloadSink struct {
	mu   sync.Mutex
	data map[string][]byte
	tags map[string][]stream.Match
	eos  map[string]bool
	vers map[string]map[int]bool
}

func newReloadSink() *reloadSink {
	return &reloadSink{
		data: make(map[string][]byte),
		tags: make(map[string][]stream.Match),
		eos:  make(map[string]bool),
		vers: make(map[string]map[int]bool),
	}
}

func (s *reloadSink) Deliver(b *Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[b.Key] = append(s.data[b.Key], b.Data...)
	s.tags[b.Key] = append(s.tags[b.Key], b.Tags...)
	if b.EOS {
		s.eos[b.Key] = true
	}
	vs := s.vers[b.Key]
	if vs == nil {
		vs = make(map[int]bool)
		s.vers[b.Key] = vs
	}
	vs[b.Version] = true
	return nil
}

func (s *reloadSink) Close() error { return nil }

// seen reports whether any batch for key has been delivered.
func (s *reloadSink) seen(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vers[key]) > 0
}

func TestSwapFactoryBasics(t *testing.T) {
	var retired []int
	var retMu sync.Mutex
	hooks := &Hooks{VersionRetired: func(v int) {
		retMu.Lock()
		retired = append(retired, v)
		retMu.Unlock()
	}}
	p, err := NewPipeline(Config{Shards: 2, Factory: fakeFactory, Hooks: hooks}, SinkFunc(func(*Batch) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CurrentVersion(); got != 1 {
		t.Fatalf("CurrentVersion = %d, want 1", got)
	}
	if got := p.LiveVersions(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("LiveVersions = %v, want [1]", got)
	}
	if _, err := p.SwapFactory(nil); err == nil {
		t.Fatal("SwapFactory(nil) succeeded")
	}
	// No live streams: the swap retires version 1 immediately.
	v, err := p.SwapFactory(fakeFactory)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || p.CurrentVersion() != 2 {
		t.Fatalf("swap returned version %d (current %d), want 2", v, p.CurrentVersion())
	}
	if got := p.LiveVersions(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("LiveVersions after idle swap = %v, want [2]", got)
	}
	retMu.Lock()
	gotRetired := append([]int(nil), retired...)
	retMu.Unlock()
	if !reflect.DeepEqual(gotRetired, []int{1}) {
		t.Fatalf("retired versions %v, want [1]", gotRetired)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SwapFactory(fakeFactory); !errors.Is(err, ErrClosed) {
		t.Fatalf("SwapFactory after Close: %v, want ErrClosed", err)
	}
}

// TestReloadSoak is the zero-downtime proof: ≥100 live streams on the old
// grammar, a SwapFactory to a new grammar mid-run, a second wave of
// streams on the new version — every stream must come out byte-identical
// to its serial oracle on the version it bound, with zero dropped or
// reordered batches, and the old version must retire once its last stream
// drains. Run under -race this doubles as the concurrency soak for the
// version registry and the shared DFA cache.
func TestReloadSoak(t *testing.T) {
	specA, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	specB, err := core.Compile(grammar.XMLRPCFull(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}

	const oldStreams = 100
	const newStreams = 40

	genA := workload.NewGenerator(specA, 71, workload.SentenceOptions{MaxDepth: 6})
	genB := workload.NewGenerator(specB, 72, workload.SentenceOptions{MaxDepth: 6})
	oldIn := make([][]byte, oldStreams)
	for i := range oldIn {
		a, _ := genA.Sentence()
		b, _ := genA.Sentence()
		oldIn[i] = append(append([]byte(nil), a...), b...)
	}
	newIn := make([][]byte, newStreams)
	for i := range newIn {
		s, _ := genB.Sentence()
		newIn[i] = s
	}

	var retMu sync.Mutex
	retired := map[int]int{}
	hooks := &Hooks{VersionRetired: func(v int) {
		retMu.Lock()
		retired[v]++
		retMu.Unlock()
	}}
	sink := newReloadSink()
	p, err := NewPipeline(Config{Shards: 4, Factory: DFAFactory(specA, 0), Hooks: hooks}, sink)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: open every old stream with its first chunk and wait until
	// each backend exists (its first batch reached the sink), so the
	// streams genuinely bind version 1.
	half := make([]int, oldStreams)
	for i, in := range oldIn {
		half[i] = len(in) / 2
		if err := p.Send(key("old", i), in[:half[i]]); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < oldStreams; i++ {
		for !sink.seen(key("old", i)) {
			if time.Now().After(deadline) {
				t.Fatalf("stream %d never reached the sink", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 2: hot-swap the grammar while every old stream is mid-flight.
	v2, err := p.SwapFactory(DFAFactory(specB, 0))
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("swap returned version %d, want 2", v2)
	}
	if got := p.LiveVersions(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("LiveVersions mid-drain = %v, want [1 2]", got)
	}

	// Phase 3: concurrently finish the old streams on version 1 and run
	// the new wave on version 2.
	var wg sync.WaitGroup
	for i := range oldIn {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := key("old", i)
			rest := oldIn[i][half[i]:]
			for off := 0; off < len(rest); off += 97 {
				end := off + 97
				if end > len(rest) {
					end = len(rest)
				}
				if err := p.Send(k, rest[off:end]); err != nil {
					t.Error(err)
					return
				}
			}
			if err := p.CloseStream(k); err != nil {
				t.Error(err)
			}
		}(i)
	}
	for i := range newIn {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := key("new", i)
			in := newIn[i]
			for off := 0; off < len(in); off += 61 {
				end := off + 61
				if end > len(in) {
					end = len(in)
				}
				if err := p.Send(k, in[off:end]); err != nil {
					t.Error(err)
					return
				}
			}
			if err := p.CloseStream(k); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	// Phase 4: the old version retires as soon as its last stream's final
	// batch is delivered — before pipeline Close.
	deadline = time.Now().Add(10 * time.Second)
	for {
		if lv := p.LiveVersions(); reflect.DeepEqual(lv, []int{2}) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old version never retired: LiveVersions = %v", p.LiveVersions())
		}
		time.Sleep(time.Millisecond)
	}
	retMu.Lock()
	if retired[1] != 1 {
		t.Errorf("version 1 retired %d times, want exactly 1", retired[1])
	}
	retMu.Unlock()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Every stream: bytes intact and in order, exactly one version, tags
	// byte-identical to the serial oracle of the version it bound.
	oracleA := stream.NewTagger(specA)
	oracleB := stream.NewTagger(specB)
	check := func(k string, in []byte, wantVer int, oracleTags []stream.Match) {
		t.Helper()
		if !sink.eos[k] {
			t.Fatalf("%s: no EOS delivered", k)
		}
		if !reflect.DeepEqual(sink.data[k], in) {
			t.Fatalf("%s: delivered bytes differ from input (%d vs %d bytes)", k, len(sink.data[k]), len(in))
		}
		if len(sink.vers[k]) != 1 || !sink.vers[k][wantVer] {
			t.Fatalf("%s: batch versions %v, want exactly {%d}", k, sink.vers[k], wantVer)
		}
		got := sink.tags[k]
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, oracleTags) {
			t.Fatalf("%s: tags differ from serial oracle\ngot  %v\nwant %v", k, got, oracleTags)
		}
	}
	for i, in := range oldIn {
		check(key("old", i), in, 1, oracleA.Tag(in))
	}
	for i, in := range newIn {
		check(key("new", i), in, 2, oracleB.Tag(in))
	}
}

func key(prefix string, i int) string { return fmt.Sprintf("%s-%d", prefix, i) }

func TestConfigValidate(t *testing.T) {
	base := func() Config { return Config{Factory: fakeFactory} }
	cases := []struct {
		name  string
		mut   func(*Config)
		field string
	}{
		{"nil factory", func(c *Config) { c.Factory = nil }, "Factory"},
		{"negative shards", func(c *Config) { c.Shards = -1 }, "Shards"},
		{"negative queue", func(c *Config) { c.Queue = -2 }, "Queue"},
		{"negative max streams", func(c *Config) { c.MaxStreams = -1 }, "MaxStreams"},
		{"negative batch idle", func(c *Config) { c.BatchIdle = -time.Second }, "BatchIdle"},
		{"negative sink workers", func(c *Config) { c.SinkWorkers = -3 }, "SinkWorkers"},
		{"negative sink attempts", func(c *Config) { c.SinkAttempts = -1 }, "SinkAttempts"},
		{"negative sink backoff", func(c *Config) { c.SinkBackoff = -time.Millisecond }, "SinkBackoff"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			err := cfg.Validate()
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Validate = %v, want ErrInvalidConfig", err)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) || ce.Field != tc.field {
				t.Fatalf("Validate = %v, want ConfigError on %s", err, tc.field)
			}
			if _, err := NewPipeline(cfg, SinkFunc(func(*Batch) error { return nil })); !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("NewPipeline = %v, want ErrInvalidConfig", err)
			}
		})
	}
	// The documented negative switches stay legal.
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"negative batch bytes disables coalescing", func(c *Config) { c.BatchBytes = -1 }},
		{"negative quarantine disables quarantining", func(c *Config) { c.Quarantine = -1 }},
		{"all zero defaults", func(c *Config) {}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("Validate = %v, want nil", err)
			}
		})
	}
}

// TestSharedCacheAcrossPipelineStreams asserts the shared DFA cache
// amortizes determinization at the pipeline level: the summed CacheStats
// misses of N streams equal what a single stream pays, so fills are O(1)
// in stream count.
func TestSharedCacheAcrossPipelineStreams(t *testing.T) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(spec, 83, workload.SentenceOptions{MaxDepth: 6})
	text, _ := gen.Sentence()

	run := func(streams int) (misses int64) {
		var mc MetricCounters
		p, err := NewPipeline(Config{Shards: 2, Factory: DFAFactory(spec, 0), Hooks: mc.Hooks()},
			SinkFunc(func(*Batch) error { return nil }))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < streams; i++ {
			if err := p.Send(key("s", i), text); err != nil {
				t.Fatal(err)
			}
			if err := p.CloseStream(key("s", i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		c, _ := mc.Snapshot()
		if c.CacheHits+c.CacheMisses != int64(streams)*int64(len(text)) {
			t.Fatalf("%d streams: hits+misses = %d, want %d",
				streams, c.CacheHits+c.CacheMisses, int64(streams)*int64(len(text)))
		}
		return c.CacheMisses
	}

	solo := run(1)
	if solo == 0 {
		t.Fatal("single stream recorded no cache fills; input too trivial")
	}
	fleet := run(64)
	if fleet != solo {
		t.Errorf("64 streams filled %d transitions, 1 stream fills %d (want equal: O(1) in stream count)",
			fleet, solo)
	}
}
