package runtime_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cfgtag/internal/core"
	"cfgtag/internal/faultinject"
	"cfgtag/internal/grammar"
	"cfgtag/internal/runtime"
	"cfgtag/internal/stream"
)

// chaosStream is one stream of the chaos population: its key, the chunks
// sent, and the fault its payload carries (if any).
type chaosStream struct {
	key    string
	chunks [][]byte
	full   []byte // concatenation of chunks, for the fault-free reference
	fault  string // "", "error", "panic" or "slow" ("slow" is not a fault)
}

// buildChaosStreams fabricates n streams: ~10% carry an in-band fault
// trigger (split between errors and panics), a few carry a latency
// trigger, the rest are clean.
func buildChaosStreams(n int) []chaosStream {
	base := []byte("if true then go else stop ")
	out := make([]chaosStream, n)
	for i := range out {
		s := chaosStream{key: fmt.Sprintf("stream-%04d", i)}
		switch {
		case i%20 == 3:
			s.fault = "error"
		case i%20 == 13:
			s.fault = "panic"
		case i%50 == 25:
			s.fault = "slow"
		}
		chunks := 4 + i%4
		for c := 0; c < chunks; c++ {
			chunk := append([]byte(nil), base...)
			if c == chunks/2 {
				switch s.fault {
				case "error":
					chunk = append(chunk, faultinject.TriggerError...)
				case "panic":
					chunk = append(chunk, faultinject.TriggerPanic...)
				case "slow":
					chunk = append(chunk, faultinject.TriggerSlow...)
				}
			}
			s.chunks = append(s.chunks, chunk)
			s.full = append(s.full, chunk...)
		}
		out[i] = s
	}
	return out
}

func (s *chaosStream) faulted() bool { return s.fault == "error" || s.fault == "panic" }

// chaosCollector records per-stream reassembly; Deliver runs on the sink
// goroutine, reads happen after Close.
type chaosCollector struct {
	data     map[string][]byte
	tags     map[string][]stream.Match
	terminal map[string]bool
	errs     map[string]error
	batches  int
}

func newChaosCollector() *chaosCollector {
	return &chaosCollector{
		data:     make(map[string][]byte),
		tags:     make(map[string][]stream.Match),
		terminal: make(map[string]bool),
		errs:     make(map[string]error),
	}
}

func (c *chaosCollector) Deliver(b *runtime.Batch) error {
	c.batches++
	c.data[b.Key] = append(c.data[b.Key], b.Data...)
	c.tags[b.Key] = append(c.tags[b.Key], b.Tags...)
	if b.EOS || b.Evicted {
		c.terminal[b.Key] = true
	}
	if b.Err != nil {
		c.errs[b.Key] = b.Err
	}
	return nil
}
func (c *chaosCollector) Close() error { return nil }

// TestChaosPipeline is the fault-injection soak: ~1000 streams, ~10% of
// which carry injected backend faults (errors and panics), delivered
// through a sink with injected transient failures and occasional panics.
// The pipeline must never crash or deadlock, every stream must reach a
// terminal batch, and the non-faulted streams' bytes and tags must be
// identical to a fault-free run. Run it under -race.
func TestChaosPipeline(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	n := 1000
	if testing.Short() {
		n = 200
	}
	streams := buildChaosStreams(n)

	var mc runtime.MetricCounters
	collector := newChaosCollector()
	flaky := faultinject.WrapSink(collector, faultinject.SinkConfig{
		FailEvery:  13,
		FailCount:  2, // below SinkAttempts: retries must absorb every failure
		PanicEvery: 211,
	})
	factory := faultinject.Factory(runtime.TaggerFactory(spec), faultinject.Config{
		Triggers: true,
		Latency:  50 * time.Microsecond,
	})
	p, err := runtime.NewPipeline(runtime.Config{
		Shards:      8,
		Queue:       16,
		Factory:     factory,
		Hooks:       mc.Hooks(),
		Quarantine:  time.Hour, // no mid-test expiry: fault counts stay exact
		SinkBackoff: 50 * time.Microsecond,
		// Headroom over FailCount: a batch hit by both a panic and a fail
		// window needs up to 3 retries, which must stay transient.
		SinkAttempts: 5,
	}, flaky)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		const senders = 16
		var wg sync.WaitGroup
		for g := 0; g < senders; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(streams); i += senders {
					s := streams[i]
					quarantined := false
					for _, chunk := range s.chunks {
						err := p.Send(s.key, chunk)
						if errors.Is(err, runtime.ErrQuarantined) && s.faulted() {
							quarantined = true
							break
						}
						if err != nil {
							t.Errorf("%s: Send = %v", s.key, err)
							return
						}
					}
					if !quarantined {
						if err := p.CloseStream(s.key); err != nil && !(errors.Is(err, runtime.ErrQuarantined) && s.faulted()) {
							t.Errorf("%s: CloseStream = %v", s.key, err)
						}
					}
				}
			}(g)
		}
		wg.Wait()
		if err := p.Close(); err != nil {
			t.Errorf("Close = %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("chaos pipeline deadlocked")
	}

	// Every stream reached a terminal batch, whatever its fate.
	ref := stream.NewTagger(spec)
	panics, faults := 0, 0
	for i := range streams {
		s := &streams[i]
		if !collector.terminal[s.key] {
			t.Errorf("%s (fault=%q): no terminal batch", s.key, s.fault)
			continue
		}
		if s.faulted() {
			faults++
			if s.fault == "panic" {
				panics++
				if err := collector.errs[s.key]; !errors.Is(err, runtime.ErrBackendPanic) {
					t.Errorf("%s: Err = %v, want ErrBackendPanic", s.key, err)
				}
			} else if collector.errs[s.key] == nil {
				t.Errorf("%s: error-injected stream has no Err", s.key)
			}
			continue
		}
		// Non-faulted streams must be untouched by their neighbors'
		// faults: bytes reassemble exactly, tags equal a fault-free run.
		if err := collector.errs[s.key]; err != nil {
			t.Errorf("%s: clean stream got error %v", s.key, err)
		}
		if !bytes.Equal(collector.data[s.key], s.full) {
			t.Errorf("%s: reassembled %d bytes, sent %d", s.key, len(collector.data[s.key]), len(s.full))
		}
		want := ref.Tag(s.full)
		if !reflect.DeepEqual(collector.tags[s.key], want) {
			t.Errorf("%s: tags diverge from fault-free run (%d vs %d)", s.key, len(collector.tags[s.key]), len(want))
		}
	}
	if faults == 0 || panics == 0 {
		t.Fatalf("chaos population degenerate: %d faults, %d panics", faults, panics)
	}

	f := mc.Faults()
	if f.StreamsQuarantined != int64(faults) {
		t.Errorf("quarantined = %d, want %d (one per faulted stream)", f.StreamsQuarantined, faults)
	}
	if f.PanicsRecovered < int64(panics) {
		t.Errorf("panics recovered = %d, want >= %d backend panics", f.PanicsRecovered, panics)
	}
	if f.SinkRetries == 0 {
		t.Error("injected sink failures produced no retries")
	}
	if f.DeadLetters != 0 {
		t.Errorf("dead letters = %d, want 0 (sink failures were transient)", f.DeadLetters)
	}
	if f.StreamsEvicted != 0 {
		t.Errorf("evicted = %d, want 0 (no MaxStreams cap configured)", f.StreamsEvicted)
	}
}

// TestChaosPipelineEarley is the fault-injection soak for the Earley
// oracle backend: the buffer-at-Feed/recognize-at-Close path under the
// same error/panic/latency mix as the stream soak. The spec is anchored
// (the oracle has no free-running mode) and every stream is a single
// sentence split across chunks. Faulted streams must quarantine with
// panic isolation; non-faulted streams must reassemble byte-identically
// and carry exactly the reference recognizer's tags and verdict — for
// the latency-injected streams the trigger bytes corrupt the sentence,
// so the expected verdict is the oracle's reject, not a fault. Run it
// under -race.
func TestChaosPipelineEarley(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	earleyF, err := runtime.EarleyFactory(spec)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := earleyF(0, nil)
	if err != nil {
		t.Fatal(err)
	}

	sentences := [][]byte{
		[]byte("if true then go else stop"),
		[]byte("if false then if true then go else stop else go"),
		[]byte(" if true then stop else if false then go else go "),
	}
	n := 600
	if testing.Short() {
		n = 150
	}
	streams := make([]chaosStream, n)
	for i := range streams {
		s := chaosStream{key: fmt.Sprintf("earley-%04d", i)}
		switch {
		case i%20 == 3:
			s.fault = "error"
		case i%20 == 13:
			s.fault = "panic"
		case i%50 == 25:
			s.fault = "slow"
		}
		full := sentences[i%len(sentences)]
		chunks := 3 + i%3
		for c := 0; c < chunks; c++ {
			lo, hi := c*len(full)/chunks, (c+1)*len(full)/chunks
			chunk := append([]byte(nil), full[lo:hi]...)
			if c == chunks/2 {
				switch s.fault {
				case "error":
					chunk = append(chunk, faultinject.TriggerError...)
				case "panic":
					chunk = append(chunk, faultinject.TriggerPanic...)
				case "slow":
					chunk = append(chunk, faultinject.TriggerSlow...)
				}
			}
			s.chunks = append(s.chunks, chunk)
			s.full = append(s.full, chunk...)
		}
		streams[i] = s
	}

	var mc runtime.MetricCounters
	collector := newChaosCollector()
	flaky := faultinject.WrapSink(collector, faultinject.SinkConfig{
		FailEvery:  13,
		FailCount:  2,
		PanicEvery: 211,
	})
	factory := faultinject.Factory(earleyF, faultinject.Config{
		Triggers: true,
		Latency:  50 * time.Microsecond,
	})
	p, err := runtime.NewPipeline(runtime.Config{
		Shards:       8,
		Queue:        16,
		Factory:      factory,
		Hooks:        mc.Hooks(),
		Quarantine:   time.Hour,
		SinkBackoff:  50 * time.Microsecond,
		SinkAttempts: 5,
	}, flaky)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		const senders = 16
		var wg sync.WaitGroup
		for g := 0; g < senders; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(streams); i += senders {
					s := streams[i]
					quarantined := false
					for _, chunk := range s.chunks {
						err := p.Send(s.key, chunk)
						if errors.Is(err, runtime.ErrQuarantined) && s.faulted() {
							quarantined = true
							break
						}
						if err != nil {
							t.Errorf("%s: Send = %v", s.key, err)
							return
						}
					}
					if !quarantined {
						if err := p.CloseStream(s.key); err != nil && !(errors.Is(err, runtime.ErrQuarantined) && s.faulted()) {
							t.Errorf("%s: CloseStream = %v", s.key, err)
						}
					}
				}
			}(g)
		}
		wg.Wait()
		if err := p.Close(); err != nil {
			t.Errorf("Close = %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("earley chaos pipeline deadlocked")
	}

	panics, faults := 0, 0
	for i := range streams {
		s := &streams[i]
		if !collector.terminal[s.key] {
			t.Errorf("%s (fault=%q): no terminal batch", s.key, s.fault)
			continue
		}
		if s.faulted() {
			faults++
			if s.fault == "panic" {
				panics++
				if err := collector.errs[s.key]; !errors.Is(err, runtime.ErrBackendPanic) {
					t.Errorf("%s: Err = %v, want ErrBackendPanic", s.key, err)
				}
			} else if collector.errs[s.key] == nil {
				t.Errorf("%s: error-injected stream has no Err", s.key)
			}
			continue
		}
		// Non-faulted streams: bytes reassemble exactly, and tags plus the
		// accept/reject verdict equal a fault-free oracle run of the same
		// bytes (a reject verdict is expected for the latency-trigger
		// streams, whose in-band trigger corrupts the sentence).
		if !bytes.Equal(collector.data[s.key], s.full) {
			t.Errorf("%s: reassembled %d bytes, sent %d", s.key, len(collector.data[s.key]), len(s.full))
		}
		wantTags, wantErr := runOracle(refB, s.full)
		gotErr := collector.errs[s.key]
		switch {
		case (wantErr == nil) != (gotErr == nil):
			t.Errorf("%s: verdict %v, fault-free run says %v", s.key, gotErr, wantErr)
		case wantErr != nil && gotErr.Error() != wantErr.Error():
			t.Errorf("%s: verdict %q, fault-free run says %q", s.key, gotErr, wantErr)
		}
		if !reflect.DeepEqual(collector.tags[s.key], wantTags) {
			t.Errorf("%s: tags diverge from fault-free run (%v vs %v)", s.key, collector.tags[s.key], wantTags)
		}
	}
	if faults == 0 || panics == 0 {
		t.Fatalf("chaos population degenerate: %d faults, %d panics", faults, panics)
	}

	f := mc.Faults()
	if f.StreamsQuarantined != int64(faults) {
		t.Errorf("quarantined = %d, want %d (one per faulted stream)", f.StreamsQuarantined, faults)
	}
	if f.PanicsRecovered < int64(panics) {
		t.Errorf("panics recovered = %d, want >= %d backend panics", f.PanicsRecovered, panics)
	}
}

// runOracle runs one buffer through the shared reference backend.
func runOracle(b runtime.Backend, data []byte) ([]stream.Match, error) {
	b.Reset()
	b.Feed(data)
	err := b.Close()
	ms := b.Matches()
	if len(ms) == 0 {
		ms = nil
	}
	return ms, err
}

// TestChaosPipelineWithEviction layers a tight MaxStreams cap on top of
// the fault mix: terminal batches must still arrive for every stream
// (EOS, error or evicted) and the pipeline must still drain cleanly.
func TestChaosPipelineWithEviction(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	n := 300
	if testing.Short() {
		n = 100
	}
	streams := buildChaosStreams(n)
	var mc runtime.MetricCounters
	collector := newChaosCollector()
	p, err := runtime.NewPipeline(runtime.Config{
		Shards:     4,
		MaxStreams: 4, // far below the live population: eviction churns
		Factory:    faultinject.Factory(runtime.TaggerFactory(spec), faultinject.Config{Triggers: true}),
		Hooks:      mc.Hooks(),
		Quarantine: time.Hour,
	}, collector)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(streams); i += 8 {
					s := streams[i]
					for _, chunk := range s.chunks {
						if err := p.Send(s.key, chunk); err != nil {
							if errors.Is(err, runtime.ErrQuarantined) && s.faulted() {
								break
							}
							t.Errorf("%s: Send = %v", s.key, err)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		if err := p.Close(); err != nil {
			t.Errorf("Close = %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("eviction chaos deadlocked")
	}
	for i := range streams {
		s := &streams[i]
		if !collector.terminal[s.key] {
			t.Errorf("%s: no terminal batch", s.key)
		}
	}
	if f := mc.Faults(); f.StreamsEvicted == 0 {
		t.Error("tight MaxStreams cap produced no evictions")
	}
}
