package runtime

import (
	"fmt"
	"math/rand"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

// ConformanceOptions tune the differential harness.
type ConformanceOptions struct {
	// Trials is the number of generated sentences per grammar (0 = 8).
	Trials int
	// MaxChunk bounds the random Feed chunk sizes used to exercise the
	// streaming contract (0 = 7).
	MaxChunk int
	// Corrupt additionally re-runs each sentence with one byte smashed,
	// checking the accept/reject relation instead of match equality.
	Corrupt bool
	// WrapFactory, when set, wraps every backend factory before use, so
	// the whole differential relation must keep holding through the
	// wrapper. Fault-injection wrappers use it to prove they are
	// transparent while idle.
	WrapFactory func(Factory) Factory
}

// Conformance differentially tests the four Backend implementations on
// one grammar: every generated conforming sentence is fed to all backends
// in random chunkings and the results are compared under the documented
// relation —
//
//   - stream engine and gate-level simulation must agree bit for bit
//     (same matches, same order, same recovery behavior),
//   - the lazy-DFA compilation must agree with the stream engine exactly
//     (same matches, same recovery and collision counters) — with its
//     default cache, with a deliberately tiny two-state cache that
//     forces the overflow/reset path on every input (whose state count
//     must also never exceed the configured bound), and with skip-ahead
//     acceleration disabled,
//   - the LL(1) parser, when the grammar is LL(1), must accept and its
//     tags must be a subset of the FSA paths' tags (the FSA accepts a
//     superset of the language, so it may legitimately tag more on
//     ambiguous grammars),
//   - on corrupted input a parser reject says nothing about the FSA
//     paths beyond their mutual equality.
//
// It returns the first violation found, nil when the grammar conforms.
func Conformance(g *grammar.Grammar, seed int64, opts ConformanceOptions) error {
	if opts.Trials == 0 {
		opts.Trials = 8
	}
	if opts.MaxChunk == 0 {
		opts.MaxChunk = 7
	}
	spec, err := core.Compile(g, core.Options{})
	if err != nil {
		return fmt.Errorf("conformance %s: compile: %w", g.Name, err)
	}
	taggerF := TaggerFactory(spec)
	gateF, err := GateFactory(spec)
	if err != nil {
		return fmt.Errorf("conformance %s: gate factory: %w", g.Name, err)
	}
	parserF, _ := ParserFactory(spec) // nil factory when the grammar is not LL(1)
	fs := backendSet{
		tagger:     taggerF,
		gate:       gateF,
		parser:     parserF,
		dfa:        DFAFactory(spec, 0),
		dfaTiny:    DFAFactory(spec, 2), // forces cache overflow + reset on real traffic
		dfaNoAccel: DFAFactoryConfig(spec, stream.DFAConfig{NoAccel: true}),
	}
	if opts.WrapFactory != nil {
		for _, f := range []*Factory{&fs.tagger, &fs.gate, &fs.dfa, &fs.dfaTiny, &fs.dfaNoAccel} {
			*f = opts.WrapFactory(*f)
		}
		if fs.parser != nil {
			fs.parser = opts.WrapFactory(fs.parser)
		}
	}

	gen := workload.NewGenerator(spec, seed, workload.SentenceOptions{MaxDepth: 8})
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))

	for trial := 0; trial < opts.Trials; trial++ {
		text, _ := gen.Sentence()
		if err := compareAll(g.Name, text, rng, opts.MaxChunk, fs, true); err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		if opts.Corrupt && len(text) > 2 {
			bad := append([]byte(nil), text...)
			bad[rng.Intn(len(bad))] = '@'
			if err := compareAll(g.Name, bad, rng, opts.MaxChunk, fs, false); err != nil {
				return fmt.Errorf("trial %d (corrupted): %w", trial, err)
			}
		}
	}
	return nil
}

// backendSet bundles the per-path factories one Conformance run compares.
type backendSet struct {
	tagger, gate, parser Factory
	dfa, dfaTiny         Factory
	dfaNoAccel           Factory
}

// runResult is one backend's complete observable output for one input.
type runResult struct {
	matches  []stream.Match
	verdict  error
	counters Counters
	backend  Backend
}

// runBackend streams text through a fresh backend in random chunks.
func runBackend(f Factory, text []byte, rng *rand.Rand, maxChunk int) (runResult, error) {
	b, err := f(0, nil)
	if err != nil {
		return runResult{}, err
	}
	var ms []stream.Match
	for off := 0; off < len(text); {
		n := 1 + rng.Intn(maxChunk)
		if off+n > len(text) {
			n = len(text) - off
		}
		if err := b.Feed(text[off : off+n]); err != nil {
			return runResult{}, err
		}
		ms = append(ms, b.Matches()...)
		off += n
	}
	verdict := b.Close()
	ms = append(ms, b.Matches()...)
	return runResult{matches: ms, verdict: verdict, counters: b.Counters(), backend: b}, nil
}

// cacheBounded is implemented by the dfa backend; the harness uses it to
// audit the cache-size invariant after every run.
type cacheBounded interface {
	CacheStates() int
	MaxStates() int
}

// backendUnwrapper lets wrapping backends (fault injectors) expose the
// backend they delegate to, so audits of implementation-specific
// invariants keep working through the wrap.
type backendUnwrapper interface{ Unwrap() Backend }

// asCacheBounded finds the cacheBounded implementation under any chain of
// wrappers.
func asCacheBounded(b Backend) (cacheBounded, bool) {
	for {
		if cb, ok := b.(cacheBounded); ok {
			return cb, true
		}
		u, ok := b.(backendUnwrapper)
		if !ok {
			return nil, false
		}
		b = u.Unwrap()
	}
}

// checkDFA asserts one dfa variant is indistinguishable from the stream
// path and never exceeded its cache bound.
func checkDFA(name, variant string, text []byte, sw runResult, f Factory, rng *rand.Rand, maxChunk int) error {
	df, err := runBackend(f, text, rng, maxChunk)
	if err != nil {
		return fmt.Errorf("%s: %s backend: %w", name, variant, err)
	}
	if !equalMatches(sw.matches, df.matches) {
		return fmt.Errorf("%s: stream and %s paths disagree on %q\nstream %v\n%s %v",
			name, variant, text, sw.matches, variant, df.matches)
	}
	if sw.counters.Recoveries != df.counters.Recoveries || sw.counters.Collisions != df.counters.Collisions {
		return fmt.Errorf("%s: %s counters differ on %q: stream (%d recov, %d coll), %s (%d recov, %d coll)",
			name, variant, text, sw.counters.Recoveries, sw.counters.Collisions,
			variant, df.counters.Recoveries, df.counters.Collisions)
	}
	if cb, ok := asCacheBounded(df.backend); ok && cb.CacheStates() > cb.MaxStates() {
		return fmt.Errorf("%s: %s cache holds %d states, bound %d", name, variant, cb.CacheStates(), cb.MaxStates())
	}
	return nil
}

// compareAll runs one input through every backend and checks the relation.
// conforming reports whether the input is a known sentence of the grammar.
func compareAll(name string, text []byte, rng *rand.Rand, maxChunk int, fs backendSet, conforming bool) error {
	sw, err := runBackend(fs.tagger, text, rng, maxChunk)
	if err != nil {
		return fmt.Errorf("%s: stream backend: %w", name, err)
	}
	hw, err := runBackend(fs.gate, text, rng, maxChunk)
	if err != nil {
		return fmt.Errorf("%s: gate backend: %w", name, err)
	}
	if !equalMatches(sw.matches, hw.matches) {
		return fmt.Errorf("%s: stream and gate paths disagree on %q\nstream %v\ngates  %v",
			name, text, sw.matches, hw.matches)
	}
	if err := checkDFA(name, "dfa", text, sw, fs.dfa, rng, maxChunk); err != nil {
		return err
	}
	if err := checkDFA(name, "dfa-tiny", text, sw, fs.dfaTiny, rng, maxChunk); err != nil {
		return err
	}
	if err := checkDFA(name, "dfa-noaccel", text, sw, fs.dfaNoAccel, rng, maxChunk); err != nil {
		return err
	}
	if fs.parser == nil {
		return nil
	}
	pr, err := runBackend(fs.parser, text, rng, maxChunk)
	if err != nil {
		return fmt.Errorf("%s: parser backend: %w", name, err)
	}
	ll, verdict := pr.matches, pr.verdict
	if conforming {
		if verdict != nil {
			return fmt.Errorf("%s: LL(1) parser rejected conforming sentence %q: %w", name, text, verdict)
		}
		if !subsetOf(ll, sw.matches) {
			return fmt.Errorf("%s: parser tags not a subset of stream tags on %q\nparser %v\nstream %v", name, text, ll, sw.matches)
		}
	} else if verdict == nil && !subsetOf(ll, sw.matches) {
		// Corrupted input the parser still accepts is in the language, so
		// the subset relation must hold there too.
		return fmt.Errorf("%s: parser tags not a subset of stream tags on accepted input %q", name, text)
	}
	return nil
}

func equalMatches(a, b []stream.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func subsetOf(sub, super []stream.Match) bool {
	set := make(map[stream.Match]bool, len(super))
	for _, m := range super {
		set[m] = true
	}
	for _, m := range sub {
		if !set[m] {
			return false
		}
	}
	return true
}
