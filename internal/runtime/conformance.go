package runtime

import (
	"fmt"
	"math/rand"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

// ConformanceOptions tune the differential harness.
type ConformanceOptions struct {
	// Trials is the number of generated sentences per grammar (0 = 8).
	Trials int
	// MaxChunk bounds the random Feed chunk sizes used to exercise the
	// streaming contract (0 = 7).
	MaxChunk int
	// Corrupt additionally re-runs each sentence with one byte smashed,
	// checking the accept/reject relation instead of match equality.
	Corrupt bool
}

// Conformance differentially tests the three Backend implementations on
// one grammar: every generated conforming sentence is fed to all backends
// in random chunkings and the results are compared under the documented
// relation —
//
//   - stream engine and gate-level simulation must agree bit for bit
//     (same matches, same order, same recovery behavior),
//   - the LL(1) parser, when the grammar is LL(1), must accept and its
//     tags must be a subset of the FSA paths' tags (the FSA accepts a
//     superset of the language, so it may legitimately tag more on
//     ambiguous grammars),
//   - on corrupted input a parser reject says nothing about the FSA
//     paths beyond their mutual equality.
//
// It returns the first violation found, nil when the grammar conforms.
func Conformance(g *grammar.Grammar, seed int64, opts ConformanceOptions) error {
	if opts.Trials == 0 {
		opts.Trials = 8
	}
	if opts.MaxChunk == 0 {
		opts.MaxChunk = 7
	}
	spec, err := core.Compile(g, core.Options{})
	if err != nil {
		return fmt.Errorf("conformance %s: compile: %w", g.Name, err)
	}
	taggerF := TaggerFactory(spec)
	gateF, err := GateFactory(spec)
	if err != nil {
		return fmt.Errorf("conformance %s: gate factory: %w", g.Name, err)
	}
	parserF, _ := ParserFactory(spec) // nil factory when the grammar is not LL(1)

	gen := workload.NewGenerator(spec, seed, workload.SentenceOptions{MaxDepth: 8})
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))

	for trial := 0; trial < opts.Trials; trial++ {
		text, _ := gen.Sentence()
		if err := compareAll(g.Name, text, rng, opts.MaxChunk, taggerF, gateF, parserF, true); err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		if opts.Corrupt && len(text) > 2 {
			bad := append([]byte(nil), text...)
			bad[rng.Intn(len(bad))] = '@'
			if err := compareAll(g.Name, bad, rng, opts.MaxChunk, taggerF, gateF, parserF, false); err != nil {
				return fmt.Errorf("trial %d (corrupted): %w", trial, err)
			}
		}
	}
	return nil
}

// runBackend streams text through a fresh backend in random chunks.
func runBackend(f Factory, text []byte, rng *rand.Rand, maxChunk int) ([]stream.Match, error, error) {
	b, err := f(0, nil)
	if err != nil {
		return nil, nil, err
	}
	var ms []stream.Match
	for off := 0; off < len(text); {
		n := 1 + rng.Intn(maxChunk)
		if off+n > len(text) {
			n = len(text) - off
		}
		if err := b.Feed(text[off : off+n]); err != nil {
			return nil, nil, err
		}
		ms = append(ms, b.Matches()...)
		off += n
	}
	verdict := b.Close()
	ms = append(ms, b.Matches()...)
	return ms, verdict, nil
}

// compareAll runs one input through every backend and checks the relation.
// conforming reports whether the input is a known sentence of the grammar.
func compareAll(name string, text []byte, rng *rand.Rand, maxChunk int, taggerF, gateF, parserF Factory, conforming bool) error {
	sw, _, err := runBackend(taggerF, text, rng, maxChunk)
	if err != nil {
		return fmt.Errorf("%s: stream backend: %w", name, err)
	}
	hw, _, err := runBackend(gateF, text, rng, maxChunk)
	if err != nil {
		return fmt.Errorf("%s: gate backend: %w", name, err)
	}
	if !equalMatches(sw, hw) {
		return fmt.Errorf("%s: stream and gate paths disagree on %q\nstream %v\ngates  %v", name, text, sw, hw)
	}
	if parserF == nil {
		return nil
	}
	ll, verdict, err := runBackend(parserF, text, rng, maxChunk)
	if err != nil {
		return fmt.Errorf("%s: parser backend: %w", name, err)
	}
	if conforming {
		if verdict != nil {
			return fmt.Errorf("%s: LL(1) parser rejected conforming sentence %q: %w", name, text, verdict)
		}
		if !subsetOf(ll, sw) {
			return fmt.Errorf("%s: parser tags not a subset of stream tags on %q\nparser %v\nstream %v", name, text, ll, sw)
		}
	} else if verdict == nil && !subsetOf(ll, sw) {
		// Corrupted input the parser still accepts is in the language, so
		// the subset relation must hold there too.
		return fmt.Errorf("%s: parser tags not a subset of stream tags on accepted input %q", name, text)
	}
	return nil
}

func equalMatches(a, b []stream.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func subsetOf(sub, super []stream.Match) bool {
	set := make(map[stream.Match]bool, len(super))
	for _, m := range super {
		set[m] = true
	}
	for _, m := range sub {
		if !set[m] {
			return false
		}
	}
	return true
}
