package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cfgtag/internal/aot"
	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

// ConformanceOptions tune the differential harness.
type ConformanceOptions struct {
	// Trials is the number of generated sentences per grammar (0 = 8).
	Trials int
	// MaxChunk bounds the random Feed chunk sizes used to exercise the
	// streaming contract (0 = 7).
	MaxChunk int
	// Corrupt additionally re-runs each sentence with one byte smashed,
	// checking the accept/reject relation instead of match equality.
	Corrupt bool
	// ExactOracle additionally asserts the Earley oracle and the LL(1)
	// parser agree *exactly* (same tag set) on conforming sentences. This
	// holds for LL(1) grammars whose lexicon is unambiguous under the
	// per-position lookahead; grammars where one lexeme admits several
	// valid ends can legitimately give the oracle extra derivations, so
	// the harness only asserts parser ⊆ earley by default.
	ExactOracle bool
	// WrapFactory, when set, wraps every backend factory before use, so
	// the whole differential relation must keep holding through the
	// wrapper. Fault-injection wrappers use it to prove they are
	// transparent while idle.
	WrapFactory func(Factory) Factory
}

// Conformance differentially tests the six Backend implementations on
// one grammar: every generated conforming sentence is fed to all backends
// in random chunkings and the results are compared under the documented
// relation —
//
//   - stream engine and gate-level simulation must agree bit for bit
//     (same matches, same order, same recovery behavior),
//   - the lazy-DFA compilation must agree with the stream engine exactly
//     (same matches, same recovery and collision counters) — with its
//     default cache, with a deliberately tiny two-state cache that
//     forces the overflow/reset path on every input (whose state count
//     must also never exceed the configured bound), and with skip-ahead
//     acceleration disabled,
//   - the ahead-of-time compiled path must agree with the stream engine
//     (and therefore the lazy DFA) exactly, matches and counters alike,
//     both with and without skip-ahead acceleration — aot == dfa is the
//     offline determinizer's contract, chunk-straddling splits included,
//   - the Earley oracle must accept every conforming sentence — on any
//     grammar class, not just LL(1) — and its tags must be a subset of
//     the stream path's tags (the FSA accepts a superset of the
//     language; dfa ⊇ earley follows from dfa == stream),
//   - the LL(1) parser, when the grammar is LL(1), must accept and its
//     tags must be a subset of both the stream tags and the oracle tags;
//     with ExactOracle the parser and the oracle must agree exactly,
//   - on corrupted input a parser or oracle reject says nothing about
//     the FSA paths beyond their mutual equality, but an input the
//     parser accepts is in the language, so the oracle must accept it
//     too and the subset relations must hold.
//
// A failing trial reports every divergence found on that input (joined
// with errors.Join), not just the first, so one run is enough to see the
// full disagreement surface. It returns nil when the grammar conforms.
func Conformance(g *grammar.Grammar, seed int64, opts ConformanceOptions) error {
	if opts.Trials == 0 {
		opts.Trials = 8
	}
	if opts.MaxChunk == 0 {
		opts.MaxChunk = 7
	}
	spec, err := core.Compile(g, core.Options{})
	if err != nil {
		return fmt.Errorf("conformance %s: compile: %w", g.Name, err)
	}
	taggerF := TaggerFactory(spec)
	gateF, err := GateFactory(spec)
	if err != nil {
		return fmt.Errorf("conformance %s: gate factory: %w", g.Name, err)
	}
	earleyF, err := EarleyFactory(spec)
	if err != nil {
		return fmt.Errorf("conformance %s: earley factory: %w", g.Name, err)
	}
	parserF, _ := ParserFactory(spec) // nil factory when the grammar is not LL(1)
	aotF, err := AOTFactory(spec, 0)
	if err != nil {
		return fmt.Errorf("conformance %s: aot factory: %w", g.Name, err)
	}
	aotPlainF, err := AOTFactoryConfig(spec, aot.Config{NoAccel: true})
	if err != nil {
		return fmt.Errorf("conformance %s: aot noaccel factory: %w", g.Name, err)
	}
	fs := backendSet{
		tagger:     taggerF,
		gate:       gateF,
		parser:     parserF,
		earley:     earleyF,
		dfa:        DFAFactory(spec, 0),
		dfaTiny:    DFAFactory(spec, 2), // forces cache overflow + reset on real traffic
		dfaNoAccel: DFAFactoryConfig(spec, stream.DFAConfig{NoAccel: true}),
		aot:        aotF,
		aotNoAccel: aotPlainF,
		exact:      opts.ExactOracle,
	}
	if opts.WrapFactory != nil {
		for _, f := range []*Factory{&fs.tagger, &fs.gate, &fs.earley, &fs.dfa, &fs.dfaTiny, &fs.dfaNoAccel, &fs.aot, &fs.aotNoAccel} {
			*f = opts.WrapFactory(*f)
		}
		if fs.parser != nil {
			fs.parser = opts.WrapFactory(fs.parser)
		}
	}

	gen := workload.NewGenerator(spec, seed, workload.SentenceOptions{MaxDepth: 8})
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))

	for trial := 0; trial < opts.Trials; trial++ {
		text, _ := gen.Sentence()
		if err := compareAll(g.Name, text, rng, opts.MaxChunk, fs, true); err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		if opts.Corrupt && len(text) > 2 {
			bad := append([]byte(nil), text...)
			bad[rng.Intn(len(bad))] = '@'
			if err := compareAll(g.Name, bad, rng, opts.MaxChunk, fs, false); err != nil {
				return fmt.Errorf("trial %d (corrupted): %w", trial, err)
			}
		}
	}
	return nil
}

// backendSet bundles the per-path factories one Conformance run compares.
type backendSet struct {
	tagger, gate, parser Factory
	earley               Factory
	dfa, dfaTiny         Factory
	dfaNoAccel           Factory
	aot, aotNoAccel      Factory
	exact                bool
}

// runResult is one backend's complete observable output for one input.
type runResult struct {
	matches  []stream.Match
	verdict  error
	counters Counters
	backend  Backend
}

// runBackend streams text through a fresh backend in random chunks.
func runBackend(f Factory, text []byte, rng *rand.Rand, maxChunk int) (runResult, error) {
	b, err := f(0, nil)
	if err != nil {
		return runResult{}, err
	}
	var ms []stream.Match
	for off := 0; off < len(text); {
		n := 1 + rng.Intn(maxChunk)
		if off+n > len(text) {
			n = len(text) - off
		}
		if err := b.Feed(text[off : off+n]); err != nil {
			return runResult{}, err
		}
		ms = append(ms, b.Matches()...)
		off += n
	}
	verdict := b.Close()
	ms = append(ms, b.Matches()...)
	return runResult{matches: ms, verdict: verdict, counters: b.Counters(), backend: b}, nil
}

// cacheBounded is implemented by the dfa backend; the harness uses it to
// audit the cache-size invariant after every run.
type cacheBounded interface {
	CacheStates() int
	MaxStates() int
}

// backendUnwrapper lets wrapping backends (fault injectors) expose the
// backend they delegate to, so audits of implementation-specific
// invariants keep working through the wrap.
type backendUnwrapper interface{ Unwrap() Backend }

// asCacheBounded finds the cacheBounded implementation under any chain of
// wrappers.
func asCacheBounded(b Backend) (cacheBounded, bool) {
	for {
		if cb, ok := b.(cacheBounded); ok {
			return cb, true
		}
		u, ok := b.(backendUnwrapper)
		if !ok {
			return nil, false
		}
		b = u.Unwrap()
	}
}

// checkDFA collects every way one dfa variant is distinguishable from the
// stream path, including a cache-bound breach.
func checkDFA(name, variant string, text []byte, sw runResult, f Factory, rng *rand.Rand, maxChunk int) []error {
	df, err := runBackend(f, text, rng, maxChunk)
	if err != nil {
		return []error{fmt.Errorf("%s: %s backend: %w", name, variant, err)}
	}
	var errs []error
	if !equalMatches(sw.matches, df.matches) {
		errs = append(errs, fmt.Errorf("%s: stream and %s paths disagree on %q\n%s",
			name, variant, text, matchDiff("stream", sw.matches, variant, df.matches)))
	}
	if sw.counters.Recoveries != df.counters.Recoveries || sw.counters.Collisions != df.counters.Collisions {
		errs = append(errs, fmt.Errorf("%s: %s counters differ on %q: stream (%d recov, %d coll), %s (%d recov, %d coll)",
			name, variant, text, sw.counters.Recoveries, sw.counters.Collisions,
			variant, df.counters.Recoveries, df.counters.Collisions))
	}
	if cb, ok := asCacheBounded(df.backend); ok && cb.CacheStates() > cb.MaxStates() {
		errs = append(errs, fmt.Errorf("%s: %s cache holds %d states, bound %d", name, variant, cb.CacheStates(), cb.MaxStates()))
	}
	return errs
}

// compareAll runs one input through every backend and checks the relation,
// collecting every divergence rather than stopping at the first.
// conforming reports whether the input is a known sentence of the grammar.
func compareAll(name string, text []byte, rng *rand.Rand, maxChunk int, fs backendSet, conforming bool) error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	sw, err := runBackend(fs.tagger, text, rng, maxChunk)
	if err != nil {
		// Without the reference run nothing else is comparable.
		return fmt.Errorf("%s: stream backend: %w", name, err)
	}
	if hw, err := runBackend(fs.gate, text, rng, maxChunk); err != nil {
		fail("%s: gate backend: %w", name, err)
	} else if !equalMatches(sw.matches, hw.matches) {
		fail("%s: stream and gate paths disagree on %q\n%s",
			name, text, matchDiff("stream", sw.matches, "gates", hw.matches))
	}
	for _, v := range []struct {
		variant string
		f       Factory
	}{
		{"dfa", fs.dfa}, {"dfa-tiny", fs.dfaTiny}, {"dfa-noaccel", fs.dfaNoAccel},
		// checkDFA compares against the stream reference; aot == dfa
		// follows from dfa == stream, which checkDFA asserts above.
		{"aot", fs.aot}, {"aot-noaccel", fs.aotNoAccel},
	} {
		errs = append(errs, checkDFA(name, v.variant, text, sw, v.f, rng, maxChunk)...)
	}

	er, erErr := runBackend(fs.earley, text, rng, maxChunk)
	if erErr != nil {
		fail("%s: earley backend: %w", name, erErr)
	} else {
		if conforming && er.verdict != nil {
			fail("%s: earley oracle rejected conforming sentence %q: %w", name, text, er.verdict)
		}
		if er.verdict == nil && !subsetOf(er.matches, sw.matches) {
			fail("%s: earley tags not a subset of stream tags on %q\n%s",
				name, text, matchDiff("earley", er.matches, "stream", sw.matches))
		}
	}

	if fs.parser == nil {
		return errors.Join(errs...)
	}
	pr, err := runBackend(fs.parser, text, rng, maxChunk)
	if err != nil {
		fail("%s: parser backend: %w", name, err)
		return errors.Join(errs...)
	}
	ll, verdict := pr.matches, pr.verdict
	if conforming && verdict != nil {
		fail("%s: LL(1) parser rejected conforming sentence %q: %w", name, text, verdict)
	}
	if verdict == nil {
		// An accepted input is in the language whether or not the trial
		// marked it conforming, so every relation below applies.
		if !subsetOf(ll, sw.matches) {
			fail("%s: parser tags not a subset of stream tags on %q\n%s",
				name, text, matchDiff("parser", ll, "stream", sw.matches))
		}
		if erErr == nil {
			if er.verdict != nil {
				fail("%s: parser accepted %q but earley oracle rejected: %w", name, text, er.verdict)
			} else {
				if !subsetOf(ll, er.matches) {
					fail("%s: parser tags not a subset of earley tags on %q\n%s",
						name, text, matchDiff("parser", ll, "earley", er.matches))
				}
				if fs.exact && conforming && !equalMatchSets(ll, er.matches) {
					fail("%s: earley and parser tag sets differ on %q (ExactOracle)\n%s",
						name, text, matchDiff("parser", ll, "earley", er.matches))
				}
			}
		}
	}
	return errors.Join(errs...)
}

func equalMatches(a, b []stream.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equalMatchSets compares two match lists as sets, ignoring order.
func equalMatchSets(a, b []stream.Match) bool {
	return len(sortedSetMinus(a, b)) == 0 && len(sortedSetMinus(b, a)) == 0
}

func subsetOf(sub, super []stream.Match) bool {
	set := make(map[stream.Match]bool, len(super))
	for _, m := range super {
		set[m] = true
	}
	for _, m := range sub {
		if !set[m] {
			return false
		}
	}
	return true
}

// sortedSetMinus returns the matches of a absent from b, sorted by
// (End, InstanceID).
func sortedSetMinus(a, b []stream.Match) []stream.Match {
	set := make(map[stream.Match]bool, len(b))
	for _, m := range b {
		set[m] = true
	}
	var out []stream.Match
	seen := make(map[stream.Match]bool)
	for _, m := range a {
		if !set[m] && !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].InstanceID < out[j].InstanceID
	})
	return out
}

// matchDiff renders every divergent position between two match lists: the
// first order divergence plus the full (bounded) set difference in each
// direction, so one failure report pinpoints all disagreements.
func matchDiff(aName string, a []stream.Match, bName string, b []stream.Match) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %d matches, %s %d matches", aName, len(a), bName, len(b))
	idx := -1
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			idx = i
			break
		}
	}
	if idx < 0 && len(a) != len(b) {
		idx = len(a)
		if len(b) < idx {
			idx = len(b)
		}
	}
	if idx >= 0 {
		fmt.Fprintf(&sb, "; first order divergence at index %d", idx)
	}
	const cap = 12
	render := func(label string, ms []stream.Match) {
		if len(ms) == 0 {
			return
		}
		shown := ms
		extra := 0
		if len(shown) > cap {
			shown, extra = shown[:cap], len(shown)-cap
		}
		fmt.Fprintf(&sb, "\n  only in %s: %v", label, shown)
		if extra > 0 {
			fmt.Fprintf(&sb, " (+%d more)", extra)
		}
	}
	render(aName, sortedSetMinus(a, b))
	render(bName, sortedSetMinus(b, a))
	return sb.String()
}
