package runtime

import (
	"cfgtag/internal/core"
	"cfgtag/internal/stream"
)

// taggerBackend adapts the bit-parallel stream.Tagger — the software
// stand-in for the 1-byte-per-cycle hardware — to the Backend contract.
type taggerBackend struct {
	tg      *stream.Tagger
	shard   int
	hooks   *Hooks
	lim     Limits
	pending []stream.Match
	bytes   int64
	matches int64
}

// TaggerFactory returns a Factory producing bit-parallel stream engines.
// The spec is compiled once; every Backend shares the read-only masks, so
// per-stream instantiation is cheap (state vectors only).
func TaggerFactory(spec *core.Spec) Factory {
	return TaggerFactoryLimits(spec, Limits{})
}

// TaggerFactoryLimits is TaggerFactory with per-stream resource bounds:
// MaxPendingMatches ends a stream whose undrained match buffer outgrows
// the bound (a match bomb) with an error wrapping ErrResourceExhausted.
func TaggerFactoryLimits(spec *core.Spec, lim Limits) Factory {
	proto := stream.NewTagger(spec) // compile masks once
	return func(shard int, h *Hooks) (Backend, error) {
		// Clone, never hand out proto: factories run concurrently on
		// shard goroutines and clones share only read-only masks.
		tg := proto.Clone()
		b := &taggerBackend{tg: tg, shard: shard, hooks: h, lim: lim}
		tg.OnMatch = func(m stream.Match) {
			b.pending = append(b.pending, m)
			b.matches++
			b.hooks.match(b.shard, m)
		}
		tg.OnError = func(pos int64) { b.hooks.recovery(b.shard, pos) }
		tg.OnCollision = func(pos int64, x, y int) { b.hooks.collision(b.shard, pos, x, y) }
		return b, nil
	}
}

func (b *taggerBackend) Reset() {
	b.tg.Reset()
	b.pending = b.pending[:0]
	b.bytes = 0
	b.matches = 0
}

func (b *taggerBackend) Feed(p []byte) error {
	n, err := b.tg.Write(p)
	b.bytes += int64(n)
	b.hooks.bytes(b.shard, n)
	if err == nil {
		err = b.lim.checkPending(len(b.pending))
	}
	return err
}

func (b *taggerBackend) Close() error { return b.tg.Close() }

func (b *taggerBackend) Matches() []stream.Match {
	out := b.pending
	b.pending = nil
	return out
}

// DrainMatches hands the confirmed matches to the caller and adopts buf as
// the new pending buffer, letting the pipeline recycle match slices.
func (b *taggerBackend) DrainMatches(buf []stream.Match) []stream.Match {
	out := b.pending
	b.pending = buf[:0]
	return out
}

func (b *taggerBackend) Counters() Counters {
	return Counters{
		Bytes:      b.bytes,
		Matches:    b.matches,
		Recoveries: b.tg.Errors,
		Collisions: b.tg.Collisions,
	}
}
