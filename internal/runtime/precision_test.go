package runtime

import (
	"os"
	"reflect"
	"testing"

	"cfgtag/internal/grammar"
)

func readGrammar(t *testing.T, path string) string {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// TestMeasurePrecisionDeterministic: same (seed, trials) must reproduce
// the measurement exactly — the rail's gate depends on it.
func TestMeasurePrecisionDeterministic(t *testing.T) {
	a, err := MeasurePrecision(grammar.IfThenElse(), "ll1", 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasurePrecision(grammar.IfThenElse(), "ll1", 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic measurement:\n%+v\n%+v", a, b)
	}
	if a.StreamTags == 0 || a.Bytes == 0 {
		t.Fatalf("empty measurement: %+v", a)
	}
}

// TestMeasurePrecisionFindsFalsePositives: the figure 1 grammar is the
// paper's own example of the superset (unbalanced parens still tokenize),
// so the perturbed inputs must surface a nonzero false-positive rate.
func TestMeasurePrecisionFindsFalsePositives(t *testing.T) {
	p, err := MeasurePrecision(grammar.BalancedParens(), "ll1", 1, 24)
	if err != nil {
		t.Fatal(err)
	}
	if p.FalsePositives == 0 {
		t.Fatalf("no false positives measured on balanced-parens: %+v", p)
	}
	if p.FPRatePct <= 0 || p.FPRatePct > 100 {
		t.Fatalf("fp rate out of range: %+v", p)
	}
	if p.OracleTags+p.FalsePositives != p.StreamTags {
		t.Fatalf("tag accounting broken: %+v", p)
	}
}

// TestMeasurePrecisionAllClasses: every rail grammar measures cleanly —
// no oracle violations on any class, including the non-LL(1) corpus.
func TestMeasurePrecisionAllClasses(t *testing.T) {
	for _, tc := range []struct {
		g     *grammar.Grammar
		class string
	}{
		{grammar.BalancedParens(), "ll1"},
		{grammar.IfThenElse(), "ll1"},
		{grammar.XMLRPC(), "ll1"},
		{grammar.English(), "natlang"},
		{grammar.MustParse("arith", readGrammar(t, "../../testdata/grammars/arith.y")), "ambiguous"},
		{grammar.MustParse("dangling", readGrammar(t, "../../testdata/grammars/dangling.y")), "ambiguous"},
		{grammar.MustParse("rightrec", readGrammar(t, "../../testdata/grammars/rightrec.y")), "right-recursive"},
	} {
		t.Run(tc.g.Name, func(t *testing.T) {
			p, err := MeasurePrecision(tc.g, tc.class, 5, 8)
			if err != nil {
				t.Fatal(err)
			}
			if p.StreamTags == 0 {
				t.Fatalf("no stream tags measured: %+v", p)
			}
		})
	}
}

// TestAggregateByClass folds grammar rows into class rows.
func TestAggregateByClass(t *testing.T) {
	got := AggregateByClass([]Precision{
		{Grammar: "a", Class: "ll1", StreamTags: 10, FalsePositives: 1},
		{Grammar: "b", Class: "amb", StreamTags: 5, FalsePositives: 5},
		{Grammar: "c", Class: "ll1", StreamTags: 10, FalsePositives: 3},
	})
	want := []ClassPrecision{
		{Class: "ll1", Members: 2, StreamTags: 20, FalsePositives: 4, FPRatePct: 20},
		{Class: "amb", Members: 1, StreamTags: 5, FalsePositives: 5, FPRatePct: 100},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}
