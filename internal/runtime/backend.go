// Package runtime unifies the repo's six execution paths — the
// bit-parallel stream engine, its lazily-determinized DFA compilation, the
// ahead-of-time compiled table path, the gate-level simulation, the LL(1)
// predictive-parser baseline and the Earley exact-language oracle — behind
// one streaming Backend contract, and runs Backends at scale in a sharded
// pipeline (Source → N tagger shards → Sink) in the style of stream
// processors like Benthos.
//
// A Backend recognizes one stream. All six implementations emit
// stream.Match events with absolute offsets, so they are interchangeable
// and differentially testable (see Conformance). The tagging paths accept
// the documented FSA superset of the grammar; the parser and Earley paths
// accept the grammar exactly and report the difference as a Close error.
package runtime

import (
	"errors"
	"sync/atomic"
	"time"

	"cfgtag/internal/stream"
)

// errClosed reports a Feed after Close, mirroring stream.Tagger's Write
// guard across all backends.
var errClosed = errors.New("runtime: Feed after Close")

// Backend is the uniform streaming contract over one input stream.
// Implementations are not safe for concurrent use; the pipeline gives each
// stream its own Backend.
type Backend interface {
	// Reset rewinds to stream start for reuse.
	Reset()
	// Feed consumes the next chunk of stream bytes. Chunking is
	// arbitrary: detections never depend on Feed boundaries.
	Feed(p []byte) error
	// Close ends the stream, flushing any pending detection. Backends
	// that recognize the grammar exactly (the parser path) report
	// non-conforming input here; the FSA paths always return nil.
	Close() error
	// Matches drains the detections confirmed since the previous call
	// (or since Reset). Call once after Close for whole-stream use, or
	// after each Feed for incremental batches.
	Matches() []stream.Match
	// Counters reports lifetime totals since Reset.
	Counters() Counters
}

// matchRecycler is implemented by backends whose pending-match buffer can
// be swapped for a caller-owned one: DrainMatches returns the confirmed
// matches (like Matches) and adopts buf, with its length reset, as the new
// pending buffer. The pipeline uses it to cycle match slices through a
// pool instead of allocating one per batch. Wrapping backends are searched
// through their Unwrap chain, so fault injectors stay transparent.
type matchRecycler interface {
	DrainMatches(buf []stream.Match) []stream.Match
}

// asMatchRecycler finds the matchRecycler implementation under any chain
// of wrappers, nil when there is none.
func asMatchRecycler(b Backend) matchRecycler {
	for {
		if r, ok := b.(matchRecycler); ok {
			return r
		}
		u, ok := b.(backendUnwrapper)
		if !ok {
			return nil
		}
		b = u.Unwrap()
	}
}

// Counters aggregates a Backend's per-stream totals.
type Counters struct {
	// Bytes fed so far.
	Bytes int64
	// Matches confirmed so far (drained or not).
	Matches int64
	// Recoveries counts section 5.2 error-recovery events (nonzero only
	// when the spec was compiled with a Recover option).
	Recoveries int64
	// Collisions counts residual runtime index collisions (see
	// stream.Tagger.Collisions).
	Collisions int64
	// CacheHits, CacheMisses and CacheResets describe the lazy-DFA
	// transition cache (zero on the other backends). They span the
	// backend's lifetime rather than the last Reset: the cache is
	// deliberately kept warm across streams, so its counters outlive them.
	CacheHits   int64
	CacheMisses int64
	CacheResets int64
}

// Hooks is the metrics surface threaded through the backends and the
// pipeline. Nil hooks (or nil fields) cost nothing. Hook functions must be
// safe for concurrent use when shared across pipeline shards; the
// per-event arguments identify the source.
type Hooks struct {
	// Bytes observes every chunk fed to a backend.
	Bytes func(shard int, n int)
	// Match observes every confirmed detection.
	Match func(shard int, m stream.Match)
	// Recovery observes each section 5.2 recovery event.
	Recovery func(shard int, pos int64)
	// Collision observes each runtime index collision.
	Collision func(shard int, pos int64, a, b int)
	// QueueDepth observes a shard's input queue depth at each enqueue.
	QueueDepth func(shard int, depth int)
	// CacheStats observes lazy-DFA transition-cache activity: each dfa
	// backend reports the hits/misses/resets accrued since its previous
	// report once per stream Close. Other backends never call it.
	CacheStats func(shard int, hits, misses, resets int64)
	// CompileStats observes ahead-of-time compile cost: each aot backend
	// reports its shared program's synthesis report (states, classes,
	// table bytes, compile duration) once at mint. The values describe
	// the program, not the stream, so metric targets should treat them
	// as gauges. Other backends never call it.
	CompileStats func(shard int, s stream.CompileStats)
	// PanicRecovered observes every panic the pipeline recovers; origin
	// names the guarded call ("Feed", "Close", "Matches" or "Deliver").
	PanicRecovered func(shard int, origin string)
	// Quarantined observes each stream key poisoned after a backend
	// error or panic.
	Quarantined func(shard int, key string)
	// Evicted observes each stream flushed by the MaxStreams idle-LRU
	// eviction.
	Evicted func(shard int, key string)
	// SinkRetry observes each Deliver retry (attempt counts retries, so
	// the first retry is 1) with the error that caused it.
	SinkRetry func(attempt int, err error)
	// DeadLetter observes each batch handed to Config.DeadLetter after
	// its Deliver attempts were exhausted.
	DeadLetter func(key string, err error)
	// VersionRetired observes each backend-factory version retired after a
	// SwapFactory: the version is no longer current and its last stream's
	// final batch has been delivered, so resources the factory closed over
	// are safe to tear down.
	VersionRetired func(version int)
	// Overloaded observes each Send shed by admission control (shed mode,
	// see Config.SendTimeout): the chunk was rejected with ErrOverloaded
	// and nothing was enqueued.
	Overloaded func(shard int, key string)
	// Watchdog observes each backend call (Feed or Close) caught running
	// past Config.FeedDeadline, exactly once per overdue call, with the
	// elapsed time at detection.
	Watchdog func(shard int, key, origin string, elapsed time.Duration)
	// ResourceExhausted observes each stream ended by a resource budget
	// (its EOS batch carries an error wrapping ErrResourceExhausted),
	// exactly once per stream.
	ResourceExhausted func(shard int, key string)
	// Breaker observes sink circuit-breaker state flips: open=true when a
	// worker's breaker trips, open=false when a half-open probe closes
	// it. Half-open probing itself is not a flip.
	Breaker func(worker int, open bool)
	// BreakerShed observes each batch shed to DeadLetter while a worker's
	// breaker is open.
	BreakerShed func(worker int, key string)
}

func (h *Hooks) bytes(shard, n int) {
	if h != nil && h.Bytes != nil {
		h.Bytes(shard, n)
	}
}

func (h *Hooks) match(shard int, m stream.Match) {
	if h != nil && h.Match != nil {
		h.Match(shard, m)
	}
}

func (h *Hooks) recovery(shard int, pos int64) {
	if h != nil && h.Recovery != nil {
		h.Recovery(shard, pos)
	}
}

func (h *Hooks) collision(shard int, pos int64, a, b int) {
	if h != nil && h.Collision != nil {
		h.Collision(shard, pos, a, b)
	}
}

func (h *Hooks) cacheStats(shard int, hits, misses, resets int64) {
	if h != nil && h.CacheStats != nil {
		h.CacheStats(shard, hits, misses, resets)
	}
}

func (h *Hooks) compileStats(shard int, s stream.CompileStats) {
	if h != nil && h.CompileStats != nil {
		h.CompileStats(shard, s)
	}
}

func (h *Hooks) queueDepth(shard, depth int) {
	if h != nil && h.QueueDepth != nil {
		h.QueueDepth(shard, depth)
	}
}

func (h *Hooks) panicRecovered(shard int, origin string) {
	if h != nil && h.PanicRecovered != nil {
		h.PanicRecovered(shard, origin)
	}
}

func (h *Hooks) quarantined(shard int, key string) {
	if h != nil && h.Quarantined != nil {
		h.Quarantined(shard, key)
	}
}

func (h *Hooks) evicted(shard int, key string) {
	if h != nil && h.Evicted != nil {
		h.Evicted(shard, key)
	}
}

func (h *Hooks) sinkRetry(attempt int, err error) {
	if h != nil && h.SinkRetry != nil {
		h.SinkRetry(attempt, err)
	}
}

func (h *Hooks) deadLetter(key string, err error) {
	if h != nil && h.DeadLetter != nil {
		h.DeadLetter(key, err)
	}
}

func (h *Hooks) versionRetired(version int) {
	if h != nil && h.VersionRetired != nil {
		h.VersionRetired(version)
	}
}

func (h *Hooks) overloaded(shard int, key string) {
	if h != nil && h.Overloaded != nil {
		h.Overloaded(shard, key)
	}
}

func (h *Hooks) watchdog(shard int, key, origin string, elapsed time.Duration) {
	if h != nil && h.Watchdog != nil {
		h.Watchdog(shard, key, origin, elapsed)
	}
}

func (h *Hooks) resourceExhausted(shard int, key string) {
	if h != nil && h.ResourceExhausted != nil {
		h.ResourceExhausted(shard, key)
	}
}

func (h *Hooks) breaker(worker int, open bool) {
	if h != nil && h.Breaker != nil {
		h.Breaker(worker, open)
	}
}

func (h *Hooks) breakerShed(worker int, key string) {
	if h != nil && h.BreakerShed != nil {
		h.BreakerShed(worker, key)
	}
}

// Factory creates one Backend per stream. shard identifies the pipeline
// shard the backend will live on (0 for standalone use) and is forwarded
// to the hooks; h may be nil.
type Factory func(shard int, h *Hooks) (Backend, error)

// MetricCounters is a ready-made atomic Hooks target: plug Observe into a
// pipeline or backend and read the totals concurrently.
type MetricCounters struct {
	bytes       atomicInt64
	matches     atomicInt64
	recoveries  atomicInt64
	collisions  atomicInt64
	cacheHits   atomicInt64
	cacheMisses atomicInt64
	cacheResets atomicInt64
	maxQueue    atomicInt64

	panics      atomicInt64
	quarantined atomicInt64
	evicted     atomicInt64
	sinkRetries atomicInt64
	deadLetters atomicInt64

	shed          atomicInt64
	watchdogTrips atomicInt64
	resExhausted  atomicInt64
	breakerOpens  atomicInt64
	breakerSheds  atomicInt64
	breakerOpen   atomicInt64 // gauge: workers currently open

	// AOT synthesis-report gauges, idempotently rewritten at each backend
	// mint (they describe the tenant's current compiled program).
	aotStates     atomicInt64
	aotClasses    atomicInt64
	aotTableBytes atomicInt64
	aotCompileNS  atomicInt64
}

// Hooks returns a Hooks wiring every event into the counters.
func (c *MetricCounters) Hooks() *Hooks {
	return &Hooks{
		Bytes:     func(_ int, n int) { c.bytes.Add(int64(n)) },
		Match:     func(int, stream.Match) { c.matches.Add(1) },
		Recovery:  func(int, int64) { c.recoveries.Add(1) },
		Collision: func(int, int64, int, int) { c.collisions.Add(1) },
		QueueDepth: func(_ int, depth int) {
			c.maxQueue.Max(int64(depth))
		},
		CacheStats: func(_ int, hits, misses, resets int64) {
			c.cacheHits.Add(hits)
			c.cacheMisses.Add(misses)
			c.cacheResets.Add(resets)
		},
		CompileStats: func(_ int, s stream.CompileStats) {
			c.aotStates.Store(int64(s.States))
			c.aotClasses.Store(int64(s.Classes))
			c.aotTableBytes.Store(int64(s.TableBytes))
			c.aotCompileNS.Store(s.Duration.Nanoseconds())
		},
		PanicRecovered:    func(int, string) { c.panics.Add(1) },
		Quarantined:       func(int, string) { c.quarantined.Add(1) },
		Evicted:           func(int, string) { c.evicted.Add(1) },
		SinkRetry:         func(int, error) { c.sinkRetries.Add(1) },
		DeadLetter:        func(string, error) { c.deadLetters.Add(1) },
		Overloaded:        func(int, string) { c.shed.Add(1) },
		Watchdog:          func(int, string, string, time.Duration) { c.watchdogTrips.Add(1) },
		ResourceExhausted: func(int, string) { c.resExhausted.Add(1) },
		Breaker: func(_ int, open bool) {
			if open {
				c.breakerOpens.Add(1)
				c.breakerOpen.Add(1)
			} else {
				c.breakerOpen.Add(-1)
			}
		},
		BreakerShed: func(int, string) { c.breakerSheds.Add(1) },
	}
}

// FaultStats aggregates the pipeline's fault-tolerance and overload
// counters: panics recovered (backend or sink), streams quarantined after
// a fault, streams evicted under the MaxStreams cap, sink Deliver
// retries, batches dead-lettered after exhausting their retries, Sends
// shed by admission control, watchdog trips on overdue backend calls,
// streams ended by resource budgets, sink circuit-breaker opens (flips to
// open; BreakerOpenWorkers gauges how many are open now) and batches shed
// while a breaker was open.
type FaultStats struct {
	PanicsRecovered    int64
	StreamsQuarantined int64
	StreamsEvicted     int64
	SinkRetries        int64
	DeadLetters        int64

	SendsShed          int64
	WatchdogTrips      int64
	ResourceExhausted  int64
	BreakerOpens       int64
	BreakerSheds       int64
	BreakerOpenWorkers int64
}

// Faults returns the current fault-tolerance totals.
func (c *MetricCounters) Faults() FaultStats {
	return FaultStats{
		PanicsRecovered:    c.panics.Load(),
		StreamsQuarantined: c.quarantined.Load(),
		StreamsEvicted:     c.evicted.Load(),
		SinkRetries:        c.sinkRetries.Load(),
		DeadLetters:        c.deadLetters.Load(),
		SendsShed:          c.shed.Load(),
		WatchdogTrips:      c.watchdogTrips.Load(),
		ResourceExhausted:  c.resExhausted.Load(),
		BreakerOpens:       c.breakerOpens.Load(),
		BreakerSheds:       c.breakerSheds.Load(),
		BreakerOpenWorkers: c.breakerOpen.Load(),
	}
}

// Snapshot returns the current totals. MaxQueueDepth is the high-water
// mark across all shards since construction.
func (c *MetricCounters) Snapshot() (counters Counters, maxQueueDepth int) {
	return Counters{
		Bytes:       c.bytes.Load(),
		Matches:     c.matches.Load(),
		Recoveries:  c.recoveries.Load(),
		Collisions:  c.collisions.Load(),
		CacheHits:   c.cacheHits.Load(),
		CacheMisses: c.cacheMisses.Load(),
		CacheResets: c.cacheResets.Load(),
	}, int(c.maxQueue.Load())
}

// Compile returns the most recently reported AOT synthesis report: zero
// until an aot backend is minted against these counters, then the current
// program's states, classes, table bytes and compile duration.
func (c *MetricCounters) Compile() stream.CompileStats {
	return stream.CompileStats{
		States:     int(c.aotStates.Load()),
		Classes:    int(c.aotClasses.Load()),
		TableBytes: int(c.aotTableBytes.Load()),
		Duration:   time.Duration(c.aotCompileNS.Load()),
	}
}

// atomicInt64 adds a monotonic Max (and a gauge Store) to the standard
// atomic counter.
type atomicInt64 struct{ v atomic.Int64 }

func (a *atomicInt64) Add(n int64)   { a.v.Add(n) }
func (a *atomicInt64) Load() int64   { return a.v.Load() }
func (a *atomicInt64) Store(n int64) { a.v.Store(n) }

func (a *atomicInt64) Max(n int64) {
	for {
		cur := a.v.Load()
		if n <= cur || a.v.CompareAndSwap(cur, n) {
			return
		}
	}
}
