package runtime

import (
	"reflect"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
)

func compileT(t *testing.T, g *grammar.Grammar, opts core.Options) *core.Spec {
	t.Helper()
	spec, err := core.Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// factories builds all four backends for one spec; the parser factory is
// omitted when the grammar is not LL(1).
func factories(t *testing.T, spec *core.Spec) map[string]Factory {
	t.Helper()
	out := map[string]Factory{
		"stream": TaggerFactory(spec),
		"dfa":    DFAFactory(spec, 0),
	}
	gf, err := GateFactory(spec)
	if err != nil {
		t.Fatal(err)
	}
	out["gates"] = gf
	if pf, err := ParserFactory(spec); err == nil {
		out["parser"] = pf
	}
	return out
}

func TestBackendsAgreeOnIfThenElse(t *testing.T) {
	spec := compileT(t, grammar.IfThenElse(), core.Options{})
	input := []byte("if true then go else stop")

	want := stream.NewTagger(spec).Tag(input)
	if len(want) == 0 {
		t.Fatal("reference tagger found nothing")
	}
	for name, f := range factories(t, spec) {
		b, err := f(0, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Feed(input); err != nil {
			t.Fatalf("%s: feed: %v", name, err)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		got := b.Matches()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: matches = %v, want %v", name, got, want)
		}
		c := b.Counters()
		if c.Bytes != int64(len(input)) {
			t.Errorf("%s: counted %d bytes, want %d", name, c.Bytes, len(input))
		}
		if c.Matches != int64(len(want)) {
			t.Errorf("%s: counted %d matches, want %d", name, c.Matches, len(want))
		}
	}
}

func TestBackendMatchesDrain(t *testing.T) {
	spec := compileT(t, grammar.IfThenElse(), core.Options{})
	for name, f := range factories(t, spec) {
		b, err := f(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		input := []byte("if true then go else stop")
		b.Feed(input[:10])
		first := len(b.Matches())
		b.Feed(input[10:])
		b.Close()
		rest := len(b.Matches())
		if again := b.Matches(); len(again) != 0 {
			t.Errorf("%s: second drain returned %d matches, want 0", name, len(again))
		}
		want := len(stream.NewTagger(spec).Tag(input))
		if first+rest != want {
			t.Errorf("%s: drained %d+%d matches, want %d total", name, first, rest, want)
		}
	}
}

func TestBackendResetReuse(t *testing.T) {
	spec := compileT(t, grammar.IfThenElse(), core.Options{})
	input := []byte("if true then go else stop")
	want := stream.NewTagger(spec).Tag(input)
	for name, f := range factories(t, spec) {
		b, err := f(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			b.Reset()
			if err := b.Feed(input); err != nil {
				t.Fatalf("%s round %d: %v", name, round, err)
			}
			if err := b.Close(); err != nil {
				t.Fatalf("%s round %d: %v", name, round, err)
			}
			if got := b.Matches(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s round %d: matches = %v, want %v", name, round, got, want)
			}
		}
	}
}

func TestBackendFeedAfterClose(t *testing.T) {
	spec := compileT(t, grammar.IfThenElse(), core.Options{})
	for name, f := range factories(t, spec) {
		b, err := f(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		b.Feed([]byte("go"))
		b.Close()
		if err := b.Feed([]byte("x")); err == nil {
			t.Errorf("%s: Feed after Close succeeded", name)
		}
	}
}

func TestParserBackendRejects(t *testing.T) {
	spec := compileT(t, grammar.IfThenElse(), core.Options{})
	pf, err := ParserFactory(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pf(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Feed([]byte("if true go")) // missing "then"
	if err := b.Close(); err == nil {
		t.Error("parser backend accepted a non-sentence")
	}
	if ms := b.Matches(); len(ms) != 0 {
		t.Errorf("parser backend emitted %d matches on reject", len(ms))
	}
}

func TestParserFactoryRejectsNonLL1(t *testing.T) {
	g, err := grammar.Parse("nonll1", "%%\nS : \"a\" \"b\" | \"a\" \"c\" ;\n")
	if err != nil {
		t.Fatal(err)
	}
	spec := compileT(t, g, core.Options{})
	if _, err := ParserFactory(spec); err == nil {
		t.Error("ParserFactory accepted a non-LL(1) grammar")
	}
}

func TestTaggerBackendRecoveryCounter(t *testing.T) {
	spec := compileT(t, grammar.IfThenElse(), core.Options{Recovery: core.RecoveryRestart})
	b, err := TaggerFactory(spec)(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Feed([]byte("if true ### then go"))
	b.Close()
	if c := b.Counters(); c.Recoveries == 0 {
		t.Error("corrupt input produced no recovery events")
	}
}

func TestDFABackendRecoveryCounter(t *testing.T) {
	spec := compileT(t, grammar.IfThenElse(), core.Options{Recovery: core.RecoveryRestart})
	b, err := DFAFactory(spec, 0)(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Feed([]byte("if true ### then go"))
	b.Close()
	if c := b.Counters(); c.Recoveries == 0 {
		t.Error("corrupt input produced no recovery events")
	}
}

// TestDFABackendCacheStats checks the cache counters surface both on the
// backend's Counters and — as deltas at Close — through the hooks, and
// that a tiny bound actually resets.
func TestDFABackendCacheStats(t *testing.T) {
	spec := compileT(t, grammar.IfThenElse(), core.Options{})
	var mc MetricCounters
	b, err := DFAFactory(spec, 2)(0, mc.Hooks())
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("if true then go else stop")
	for round := 0; round < 3; round++ {
		b.Reset()
		b.Feed(input)
		b.Close()
	}
	c := b.Counters()
	if c.CacheMisses == 0 {
		t.Error("no cache misses counted")
	}
	if c.CacheResets == 0 {
		t.Error("two-state cache never reset")
	}
	got, _ := mc.Snapshot()
	if got.CacheHits != c.CacheHits || got.CacheMisses != c.CacheMisses || got.CacheResets != c.CacheResets {
		t.Errorf("hooks saw cache (%d, %d, %d), backend counted (%d, %d, %d)",
			got.CacheHits, got.CacheMisses, got.CacheResets,
			c.CacheHits, c.CacheMisses, c.CacheResets)
	}
}

func TestHooksObserveEvents(t *testing.T) {
	spec := compileT(t, grammar.IfThenElse(), core.Options{})
	var mc MetricCounters
	b, err := TaggerFactory(spec)(3, mc.Hooks())
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("if true then go else stop")
	b.Feed(input)
	b.Close()
	got, _ := mc.Snapshot()
	if got.Bytes != int64(len(input)) {
		t.Errorf("hooks saw %d bytes, want %d", got.Bytes, len(input))
	}
	if want := b.Counters().Matches; got.Matches != want {
		t.Errorf("hooks saw %d matches, want %d", got.Matches, want)
	}
}
