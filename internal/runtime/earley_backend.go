package runtime

import (
	"errors"
	"fmt"
	"sort"

	"cfgtag/internal/core"
	"cfgtag/internal/earley"
	"cfgtag/internal/stream"
)

// earleyBackend adapts the general-CFG Earley oracle. Like the parser path
// it recognizes the grammar exactly — one stream must be one sentence — so
// it buffers the stream and recognizes at Close, reporting non-conforming
// input as the Close error. Unlike the parser path it handles every
// grammar class (left/right recursion, ambiguity, ambiguous lexicons) and
// on ambiguous input reports the union of tags over all derivations.
// Matches become available only after a successful Close.
type earleyBackend struct {
	spec    *core.Spec
	rec     *earley.Recognizer
	shard   int
	hooks   *Hooks
	lim     Limits
	buf     []byte
	charged int64
	pending []stream.Match
	matches int64
	closed  bool
}

// EarleyFactory returns a Factory producing exact-language recognizers.
// The recognizer is compiled once and shared (it is immutable and safe for
// concurrent use); each Backend carries only its input buffer. It fails
// for spec options with no exact-language counterpart (FreeRunningStart,
// AllEnabled, recovery modes).
func EarleyFactory(spec *core.Spec) (Factory, error) {
	return EarleyFactoryLimits(spec, Limits{})
}

// EarleyFactoryLimits is EarleyFactory with per-stream resource bounds:
// MaxBufferBytes caps the whole-sentence buffer, MaxChartItems and
// MaxWorkPerByte bound the Close-time recognition's chart and worklist
// (see earley.Config), and Limits.Mem is charged with the buffer capacity
// and the live chart estimate. Every trip surfaces as an error wrapping
// ErrResourceExhausted, ending only the offending stream.
func EarleyFactoryLimits(spec *core.Spec, lim Limits) (Factory, error) {
	rec, err := earley.NewWithConfig(spec, earley.Config{
		MaxChartItems:  lim.MaxChartItems,
		MaxWorkPerByte: lim.MaxWorkPerByte,
		MemDelta:       lim.Mem.Delta(),
	})
	if err != nil {
		return nil, err
	}
	return func(shard int, h *Hooks) (Backend, error) {
		return &earleyBackend{spec: spec, rec: rec, shard: shard, hooks: h, lim: lim}, nil
	}, nil
}

func (b *earleyBackend) Reset() {
	b.buf = b.buf[:0]
	b.pending = b.pending[:0]
	b.matches = 0
	b.closed = false
}

func (b *earleyBackend) Feed(p []byte) error {
	if b.closed {
		return errClosed
	}
	if err := b.lim.checkBuffer(len(b.buf), len(p)); err != nil {
		return err
	}
	b.buf = append(b.buf, p...)
	b.chargeBuf()
	b.hooks.bytes(b.shard, len(p))
	return nil
}

// chargeBuf settles the memory gauge with the buffer's current capacity.
func (b *earleyBackend) chargeBuf() {
	if b.lim.Mem != nil {
		if c := int64(cap(b.buf)); c != b.charged {
			b.lim.Mem.Add(c - b.charged)
			b.charged = c
		}
	}
}

// releaseMem discharges the buffer charge when the stream retires.
func (b *earleyBackend) releaseMem() {
	if b.charged != 0 {
		b.lim.Mem.Add(-b.charged)
		b.charged = 0
	}
}

func (b *earleyBackend) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	tags, err := b.rec.Tags(b.buf)
	if err != nil {
		if errors.Is(err, earley.ErrBudget) {
			// The chart outgrew its per-stream budget: surface the
			// pipeline's typed verdict so the stream is quarantined and
			// counted, keeping earley's sentinel as detail.
			return fmt.Errorf("%w: %v", ErrResourceExhausted, err)
		}
		return err
	}
	for _, tag := range tags {
		in := b.spec.InstanceAt(tag.Rule, tag.Pos)
		if in == nil {
			// Cannot happen for a recognizer built from this spec.
			panic("runtime: earley tag with no spec instance")
		}
		b.pending = append(b.pending, stream.Match{InstanceID: in.ID, End: int64(tag.End)})
	}
	// Distinct derivation tags can project onto one (instance, end) pair —
	// ambiguous parses sharing a lexeme, or NoContextDuplication folding
	// occurrences — so order and deduplicate at the match level.
	sort.Slice(b.pending, func(i, j int) bool {
		a, c := b.pending[i], b.pending[j]
		if a.End != c.End {
			return a.End < c.End
		}
		return a.InstanceID < c.InstanceID
	})
	dedup := b.pending[:0]
	for _, m := range b.pending {
		if n := len(dedup); n > 0 && m == dedup[n-1] {
			continue
		}
		dedup = append(dedup, m)
	}
	b.pending = dedup
	for _, m := range b.pending {
		b.matches++
		b.hooks.match(b.shard, m)
	}
	return nil
}

func (b *earleyBackend) Matches() []stream.Match {
	out := b.pending
	b.pending = nil
	return out
}

func (b *earleyBackend) Counters() Counters {
	return Counters{Bytes: int64(len(b.buf)), Matches: b.matches}
}
