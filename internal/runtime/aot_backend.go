package runtime

import (
	"cfgtag/internal/aot"
	"cfgtag/internal/core"
	"cfgtag/internal/stream"
)

// aotBackend adapts the ahead-of-time compiled tables — the lazy DFA's
// determinization run to closure offline — to the Backend contract. The
// hot path is table-driven and allocation-free the way the synthesized
// hardware is: no hash probes, no atomic loads, no fills, no cache resets.
// The trade is paid at factory build time (compile can fail on grammars
// that do not close within the state budget), which is exactly where the
// platform wants it: once per grammar version, amortized over every
// stream of every reload.
type aotBackend struct {
	r       *aot.Runner
	shard   int
	hooks   *Hooks
	lim     Limits
	pending []stream.Match
	bytes   int64
	matches int64
}

// AOTFactory returns a Factory producing runners over one ahead-of-time
// compiled program. The grammar is determinized to closure once, here;
// factory construction fails when it does not close within maxStates
// states (0 = stream.DefaultDFAMaxStates) — unlike the lazy path there is
// no reset-and-rebuild fallback, by design.
func AOTFactory(spec *core.Spec, maxStates int) (Factory, error) {
	return AOTFactoryConfig(spec, aot.Config{MaxStates: maxStates})
}

// AOTFactoryConfig is AOTFactory with the full aot.Config exposed, notably
// NoAccel for differential runs against the skip-ahead path.
func AOTFactoryConfig(spec *core.Spec, cfg aot.Config) (Factory, error) {
	return AOTFactoryLimits(spec, cfg, Limits{})
}

// AOTFactoryLimits is AOTFactoryConfig with per-stream resource bounds:
// MaxPendingMatches bounds each stream's undrained match buffer, and
// Limits.Mem is charged the compiled tables' footprint for as long as the
// factory lives (the platform releases it when the version retires).
func AOTFactoryLimits(spec *core.Spec, cfg aot.Config, lim Limits) (Factory, error) {
	prog, err := aot.Compile(spec, cfg)
	if err != nil {
		return nil, err
	}
	if lim.Mem != nil {
		// Standalone use: charge the tables for the process lifetime. The
		// platform path uses AOTProgramFactory and pairs the charge with a
		// release on version retirement instead.
		lim.Mem.Add(int64(prog.Stats().TableBytes))
	}
	return AOTProgramFactory(prog, lim), nil
}

// AOTProgramFactory wraps an already compiled program as a Factory: the
// platform compiles once per grammar version (charging its memory budget
// explicitly) and mints per-stream runners from the shared tables. Each
// mint reports the program's CompileStats through the hooks, so metrics
// surfaces see per-tenant compile cost after every reload.
func AOTProgramFactory(prog *aot.Program, lim Limits) Factory {
	return func(shard int, h *Hooks) (Backend, error) {
		h.compileStats(shard, prog.Stats())
		b := &aotBackend{r: prog.NewRunner(), shard: shard, hooks: h, lim: lim}
		b.r.OnMatch = func(m stream.Match) {
			b.pending = append(b.pending, m)
			b.matches++
			b.hooks.match(b.shard, m)
		}
		b.r.OnError = func(pos int64) { b.hooks.recovery(b.shard, pos) }
		b.r.OnCollision = func(pos int64, x, y int) { b.hooks.collision(b.shard, pos, x, y) }
		return b, nil
	}
}

func (b *aotBackend) Reset() {
	b.r.Reset()
	b.pending = b.pending[:0]
	b.bytes = 0
	b.matches = 0
}

func (b *aotBackend) Feed(p []byte) error {
	n, err := b.r.Write(p)
	b.bytes += int64(n)
	b.hooks.bytes(b.shard, n)
	if err == nil {
		err = b.lim.checkPending(len(b.pending))
	}
	return err
}

func (b *aotBackend) Close() error { return b.r.Close() }

func (b *aotBackend) Matches() []stream.Match {
	out := b.pending
	b.pending = nil
	return out
}

// DrainMatches hands the confirmed matches to the caller and adopts buf as
// the new pending buffer, letting the pipeline recycle match slices.
func (b *aotBackend) DrainMatches(buf []stream.Match) []stream.Match {
	out := b.pending
	b.pending = buf[:0]
	return out
}

// CompileStats reports the shared program's offline compile cost.
func (b *aotBackend) CompileStats() stream.CompileStats { return b.r.Program().Stats() }

func (b *aotBackend) Counters() Counters {
	return Counters{
		Bytes:      b.bytes,
		Matches:    b.matches,
		Recoveries: b.r.Errors,
		Collisions: b.r.Collisions,
		// No cache counters: the whole point of the path is that there is
		// no cache — every transition was computed before the first byte.
	}
}
