// Package faultinject wraps runtime Backends and Sinks with configurable
// fault injection — errors, panics and latency — so the pipeline's
// fault-tolerance layer (panic isolation, stream quarantine, sink retry)
// can be exercised deterministically in tests and demos.
//
// Faults come in two flavors:
//
//   - rate-based: each Feed rolls a seeded per-backend RNG against the
//     configured probabilities, giving statistically even coverage on
//     soak workloads;
//   - trigger-based: in-band byte markers (TriggerPanic, TriggerError,
//     TriggerSlow) fault exactly the streams whose payload carries them,
//     letting a differential test know precisely which streams were hit
//     and assert the rest are untouched.
//
// A zero Config injects nothing: the wrapper must then be observably
// transparent, which the conformance harness checks by running the whole
// backend relation through it (runtime.ConformanceOptions.WrapFactory).
package faultinject

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"time"

	"cfgtag/internal/runtime"
	"cfgtag/internal/stream"
)

// In-band fault triggers. A marker must arrive within one stream (it may
// straddle Feed chunk boundaries; the wrapper keeps a rolling tail) and
// fires before the chunk reaches the wrapped backend.
var (
	// TriggerPanic makes Feed panic.
	TriggerPanic = []byte("\xf7!panic!\xf7")
	// TriggerError makes Feed fail with ErrInjected.
	TriggerError = []byte("\xf7!error!\xf7")
	// TriggerSlow makes Feed sleep for Config.Latency first.
	TriggerSlow = []byte("\xf7!slow!\xf7")
)

// maxTriggerLen bounds the rolling tail kept for straddled markers.
const maxTriggerLen = 9

// ErrInjected is the error injected into Backend.Feed.
var ErrInjected = errors.New("faultinject: injected backend error")

// ErrSinkInjected is the default transient error injected into
// Sink.Deliver.
var ErrSinkInjected = errors.New("faultinject: injected sink failure")

// Config tunes backend fault injection. The zero value injects nothing.
type Config struct {
	// Seed derives each wrapped backend's private RNG (backends also mix
	// in a creation sequence number, so shards fault independently yet
	// reproducibly).
	Seed int64
	// ErrorRate is the probability per Feed of failing with ErrInjected.
	ErrorRate float64
	// PanicRate is the probability per Feed of panicking.
	PanicRate float64
	// SlowRate is the probability per Feed of sleeping Latency first.
	SlowRate float64
	// Latency is the injected sleep (0 = 100µs).
	Latency time.Duration
	// Triggers additionally honors the in-band markers.
	Triggers bool
}

func (c Config) latency() time.Duration {
	if c.Latency <= 0 {
		return 100 * time.Microsecond
	}
	return c.Latency
}

// Factory wraps inner so every backend it creates injects faults per cfg.
func Factory(inner runtime.Factory, cfg Config) runtime.Factory {
	var mu sync.Mutex
	var seq int64
	return func(shard int, h *runtime.Hooks) (runtime.Backend, error) {
		b, err := inner(shard, h)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		seq++
		n := seq
		mu.Unlock()
		return &backend{
			inner: b,
			cfg:   cfg,
			rng:   rand.New(rand.NewSource(cfg.Seed ^ n*0x1e3779b97f4a7c15)),
		}, nil
	}
}

// backend injects faults ahead of the wrapped backend's Feed.
type backend struct {
	inner runtime.Backend
	cfg   Config
	rng   *rand.Rand
	tail  []byte // last bytes of the previous chunk, for straddled markers
}

// Unwrap exposes the wrapped backend (for audits through the wrapper).
func (b *backend) Unwrap() runtime.Backend { return b.inner }

func (b *backend) Reset() {
	b.tail = b.tail[:0]
	b.inner.Reset()
}

func (b *backend) Feed(p []byte) error {
	if b.cfg.Triggers {
		if err := b.checkTriggers(p); err != nil {
			return err
		}
	}
	if b.roll(b.cfg.PanicRate) {
		panic("faultinject: injected backend panic")
	}
	if b.roll(b.cfg.ErrorRate) {
		return ErrInjected
	}
	if b.roll(b.cfg.SlowRate) {
		time.Sleep(b.cfg.latency())
	}
	return b.inner.Feed(p)
}

// checkTriggers scans the chunk — prefixed with the tail of the previous
// one, so markers split across Feed boundaries still fire — and applies
// the first marker found.
func (b *backend) checkTriggers(p []byte) error {
	joined := p
	if len(b.tail) > 0 {
		joined = append(append(make([]byte, 0, len(b.tail)+len(p)), b.tail...), p...)
	}
	keep := len(joined)
	if keep > maxTriggerLen-1 {
		keep = maxTriggerLen - 1
	}
	b.tail = append(b.tail[:0], joined[len(joined)-keep:]...)
	switch {
	case bytes.Contains(joined, TriggerPanic):
		panic("faultinject: triggered backend panic")
	case bytes.Contains(joined, TriggerError):
		return ErrInjected
	case bytes.Contains(joined, TriggerSlow):
		time.Sleep(b.cfg.latency())
	}
	return nil
}

func (b *backend) roll(p float64) bool {
	return p > 0 && b.rng.Float64() < p
}

func (b *backend) Close() error               { return b.inner.Close() }
func (b *backend) Matches() []stream.Match    { return b.inner.Matches() }
func (b *backend) Counters() runtime.Counters { return b.inner.Counters() }

// SinkConfig tunes sink fault injection. Counting is by distinct batch
// (the pipeline retries a failing batch by pointer identity), so FailEvery
// and PanicEvery pick batches, and FailCount controls how many consecutive
// attempts on a picked batch fail before it goes through — transient
// failures the pipeline's retry policy should absorb.
type SinkConfig struct {
	// FailEvery fails every Nth distinct batch (0 = never).
	FailEvery int
	// FailCount is how many consecutive attempts fail for a picked
	// batch (0 = 2). Set it at or above the pipeline's SinkAttempts to
	// force dead-lettering.
	FailCount int
	// PanicEvery makes every Nth distinct batch's first attempt panic
	// instead of erroring (0 = never).
	PanicEvery int
	// Err is the injected error (nil = ErrSinkInjected).
	Err error
}

func (c SinkConfig) failCount() int {
	if c.FailCount <= 0 {
		return 2
	}
	return c.FailCount
}

func (c SinkConfig) err() error {
	if c.Err == nil {
		return ErrSinkInjected
	}
	return c.Err
}

// WrapSink wraps inner so Deliver injects transient failures per cfg.
// Deliver is, like any pipeline sink, driven from a single goroutine.
func WrapSink(inner runtime.Sink, cfg SinkConfig) runtime.Sink {
	return &sink{inner: inner, cfg: cfg}
}

type sink struct {
	inner     runtime.Sink
	cfg       SinkConfig
	last      *runtime.Batch
	seen      int
	failsLeft int
	panicNext bool
}

func (s *sink) Deliver(b *runtime.Batch) error {
	if b != s.last {
		s.last = b
		s.seen++
		if s.cfg.FailEvery > 0 && s.seen%s.cfg.FailEvery == 0 {
			s.failsLeft = s.cfg.failCount()
		}
		if s.cfg.PanicEvery > 0 && s.seen%s.cfg.PanicEvery == 0 {
			s.panicNext = true
		}
	}
	if s.panicNext {
		s.panicNext = false
		panic("faultinject: injected sink panic")
	}
	if s.failsLeft > 0 {
		s.failsLeft--
		return s.cfg.err()
	}
	return s.inner.Deliver(b)
}

func (s *sink) Close() error { return s.inner.Close() }
