package faultinject_test

import (
	"errors"
	"testing"
	"time"

	"cfgtag/internal/core"
	"cfgtag/internal/faultinject"
	"cfgtag/internal/grammar"
	"cfgtag/internal/runtime"
	"cfgtag/internal/stream"
)

// TestIdleWrapperIsTransparent proves a zero-config wrapper changes
// nothing observable: the full differential backend relation must keep
// holding when every factory is wrapped.
func TestIdleWrapperIsTransparent(t *testing.T) {
	for _, g := range []*grammar.Grammar{grammar.IfThenElse(), grammar.BalancedParens(), grammar.XMLRPC()} {
		err := runtime.Conformance(g, 7, runtime.ConformanceOptions{
			Trials:  4,
			Corrupt: true,
			WrapFactory: func(f runtime.Factory) runtime.Factory {
				return faultinject.Factory(f, faultinject.Config{})
			},
		})
		if err != nil {
			t.Errorf("%s: wrapped conformance: %v", g.Name, err)
		}
	}
}

// TestTriggersDisabledAreInert checks the markers do nothing unless
// Triggers is set.
func TestTriggersDisabledAreInert(t *testing.T) {
	b := newWrapped(t, faultinject.Config{})
	if err := b.Feed(faultinject.TriggerError); err != nil {
		t.Fatalf("Feed = %v with triggers disabled", err)
	}
	if err := b.Feed(faultinject.TriggerPanic); err != nil {
		t.Fatalf("Feed = %v with triggers disabled", err)
	}
}

func newWrapped(t *testing.T, cfg faultinject.Config) runtime.Backend {
	t.Helper()
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := faultinject.Factory(runtime.TaggerFactory(spec), cfg)(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTriggerError(t *testing.T) {
	b := newWrapped(t, faultinject.Config{Triggers: true})
	if err := b.Feed([]byte("if true then ")); err != nil {
		t.Fatal(err)
	}
	err := b.Feed(append([]byte("go "), faultinject.TriggerError...))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Feed = %v, want ErrInjected", err)
	}
}

func TestTriggerPanic(t *testing.T) {
	b := newWrapped(t, faultinject.Config{Triggers: true})
	defer func() {
		if recover() == nil {
			t.Fatal("TriggerPanic did not panic")
		}
	}()
	_ = b.Feed(faultinject.TriggerPanic)
}

// TestTriggerStraddlesChunks splits a marker across two Feed calls; the
// rolling tail must still detect it.
func TestTriggerStraddlesChunks(t *testing.T) {
	for split := 1; split < len(faultinject.TriggerError); split++ {
		b := newWrapped(t, faultinject.Config{Triggers: true})
		if err := b.Feed(faultinject.TriggerError[:split]); err != nil {
			t.Fatalf("split %d: first half = %v", split, err)
		}
		if err := b.Feed(faultinject.TriggerError[split:]); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("split %d: second half = %v, want ErrInjected", split, err)
		}
	}
}

// TestResetClearsTail: a half-marker before Reset must not combine with
// the other half after it.
func TestResetClearsTail(t *testing.T) {
	b := newWrapped(t, faultinject.Config{Triggers: true})
	if err := b.Feed(faultinject.TriggerError[:4]); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := b.Feed(faultinject.TriggerError[4:]); err != nil {
		t.Fatalf("Feed after Reset = %v, want nil (tail must clear)", err)
	}
}

// TestErrorRateIsDeterministic: same seed, same faults.
func TestErrorRateIsDeterministic(t *testing.T) {
	run := func() []int {
		b := newWrapped(t, faultinject.Config{Seed: 42, ErrorRate: 0.3})
		var failed []int
		for i := 0; i < 100; i++ {
			if err := b.Feed([]byte("if ")); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, c := run(), run()
	if len(a) == 0 {
		t.Fatal("30% error rate injected nothing in 100 feeds")
	}
	if len(a) != len(c) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("same seed, different fault positions at %d: %d vs %d", i, a[i], c[i])
		}
	}
}

// TestSlowRateInjectsLatency bounds-checks the sleep path.
func TestSlowRateInjectsLatency(t *testing.T) {
	b := newWrapped(t, faultinject.Config{SlowRate: 1, Latency: time.Millisecond})
	start := time.Now()
	if err := b.Feed([]byte("if ")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < time.Millisecond {
		t.Fatalf("Feed took %v, want >= 1ms injected latency", d)
	}
}

type nullSink struct{ n int }

func (s *nullSink) Deliver(*runtime.Batch) error { return nil }
func (s *nullSink) Close() error                 { return nil }

func deliverAll(s runtime.Sink, b *runtime.Batch) (failures int, panicked bool) {
	for {
		err := func() (err error) {
			defer func() {
				if recover() != nil {
					panicked = true
					err = errors.New("panicked")
				}
			}()
			return s.Deliver(b)
		}()
		if err == nil {
			return
		}
		failures++
		if failures > 10 {
			return
		}
	}
}

func TestWrapSinkFailsPickedBatches(t *testing.T) {
	s := faultinject.WrapSink(&nullSink{}, faultinject.SinkConfig{FailEvery: 2, FailCount: 2})
	b1, b2, b3, b4 := &runtime.Batch{}, &runtime.Batch{}, &runtime.Batch{}, &runtime.Batch{}
	if f, _ := deliverAll(s, b1); f != 0 {
		t.Fatalf("batch 1: %d failures, want 0", f)
	}
	if f, _ := deliverAll(s, b2); f != 2 {
		t.Fatalf("batch 2: %d failures, want FailCount=2", f)
	}
	if f, _ := deliverAll(s, b3); f != 0 {
		t.Fatalf("batch 3: %d failures, want 0", f)
	}
	if f, _ := deliverAll(s, b4); f != 2 {
		t.Fatalf("batch 4: %d failures, want 2", f)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWrapSinkRetriesAreCountedOnce(t *testing.T) {
	// Re-delivering the SAME batch pointer must not advance the batch
	// counter: that is how the wrapper distinguishes pipeline retries from
	// new traffic.
	s := faultinject.WrapSink(&nullSink{}, faultinject.SinkConfig{FailEvery: 2, FailCount: 1})
	b := &runtime.Batch{}
	deliverAll(s, b) // batch 1: clean
	b2 := &runtime.Batch{}
	if f, _ := deliverAll(s, b2); f != 1 { // batch 2: picked, fails once
		t.Fatalf("batch 2: %d failures, want 1", f)
	}
	// 5 more deliveries of the same pointer: still batch 2, no new faults.
	for i := 0; i < 5; i++ {
		if err := s.Deliver(b2); err != nil {
			t.Fatalf("redelivery %d: %v", i, err)
		}
	}
}

func TestWrapSinkPanics(t *testing.T) {
	s := faultinject.WrapSink(&nullSink{}, faultinject.SinkConfig{PanicEvery: 2})
	if _, p := deliverAll(s, &runtime.Batch{}); p {
		t.Fatal("batch 1 panicked, want clean")
	}
	f, p := deliverAll(s, &runtime.Batch{})
	if !p {
		t.Fatal("batch 2 did not panic")
	}
	if f != 1 {
		t.Fatalf("batch 2: %d failures, want 1 (the panic, then clean)", f)
	}
}

func TestWrapSinkCustomError(t *testing.T) {
	custom := errors.New("boom")
	s := faultinject.WrapSink(&nullSink{}, faultinject.SinkConfig{FailEvery: 1, FailCount: 1, Err: custom})
	if err := s.Deliver(&runtime.Batch{}); !errors.Is(err, custom) {
		t.Fatalf("Deliver = %v, want custom error", err)
	}
}

// TestWrappedBackendDelegates sanity-checks pass-through of the whole
// Backend surface, including Unwrap for invariant audits.
func TestWrappedBackendDelegates(t *testing.T) {
	spec, err := core.Compile(grammar.IfThenElse(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	text := []byte("if true then go else stop ")
	ref := stream.NewTagger(spec)
	want := ref.Tag(text)

	b := newWrapped(t, faultinject.Config{Triggers: true})
	if err := b.Feed(text); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	got := b.Matches()
	if len(got) != len(want) {
		t.Fatalf("wrapped backend: %d matches, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if c := b.Counters(); c.Bytes != int64(len(text)) {
		t.Fatalf("Counters().Bytes = %d, want %d", c.Bytes, len(text))
	}
	u, ok := b.(interface{ Unwrap() runtime.Backend })
	if !ok || u.Unwrap() == nil {
		t.Fatal("wrapped backend does not expose Unwrap")
	}
}
