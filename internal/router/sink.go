package router

import (
	"sync"

	"cfgtag/internal/core"
	"cfgtag/internal/runtime"
)

// sinkVersion is one factory version's decode state: the spec that version's
// backends tag with, and the service-name instance IDs resolved inside it.
// Streams bind exactly one version for their whole life (the pipeline's
// reload guarantee), so each switchCore is built from the version its first
// batch carries.
type sinkVersion struct {
	spec          *core.Spec
	nameInstances map[int]bool
}

// Sink plugs the content-based switch into the sharded runtime pipeline:
// each delivered batch carries a chunk of one stream plus the tags some
// upstream Backend confirmed over it, and the Sink runs one switching core
// per stream. It implements runtime.Sink; Deliver is called from the
// pipeline's single sink goroutine, so stream state needs no locking.
//
// The Sink is version-aware: when the pipeline's factory is hot-swapped
// (Pipeline.SwapFactory), batches keep carrying the version that tagged
// them, and the Sink decodes each stream with that version's spec. Stage a
// new spec with StageVersion before the swap, bind it with CommitVersion
// after, and wire DropVersion into Hooks.VersionRetired so retired
// versions' specs are released.
type Sink struct {
	nameProduction string
	routes         map[string]int
	defaultPort    int

	// verMu guards the version table: Deliver reads it on the sink
	// goroutine while Stage/Commit/Drop run on the reloading goroutine.
	verMu    sync.RWMutex
	versions map[int]*sinkVersion
	pending  *sinkVersion // staged by StageVersion, not yet bound to an id
	base     *sinkVersion // construction-time fallback for unknown versions

	validateDepth int
	validatePort  int
	validate      bool

	streams map[string]*switchCore
	stats   Stats

	// OnRoute receives every completed message with the stream it came
	// from and its resolved port and service. The message slice is only
	// valid during the call.
	OnRoute func(stream string, port int, service string, message []byte)
}

// NewSink builds a pipeline sink switching on the terminal detected inside
// nameProduction. The spec must be the very spec the pipeline's Backend
// factory was built from (instance IDs must agree); compile it with
// FreeRunningStart so long-lived streams route message after message. The
// spec is registered as factory version 1, the id NewPipeline seeds.
func NewSink(spec *core.Spec, nameProduction string, routes []Route, defaultPort int) (*Sink, error) {
	names, err := resolveNameInstances(spec, nameProduction)
	if err != nil {
		return nil, err
	}
	table, err := buildRouteTable(routes)
	if err != nil {
		return nil, err
	}
	base := &sinkVersion{spec: spec, nameInstances: names}
	s := &Sink{
		nameProduction: nameProduction,
		routes:         table,
		defaultPort:    defaultPort,
		versions:       map[int]*sinkVersion{1: base},
		base:           base,
		streams:        make(map[string]*switchCore),
	}
	s.stats.PerPort = make(map[int]int)
	return s, nil
}

// EnableValidation gives every stream its own section 5.2 stack validator
// (see Router.EnableValidation). Must be called before the first Deliver.
func (s *Sink) EnableValidation(maxDepth, invalidPort int) error {
	// Probe once so a non-LL(1) grammar fails here, not mid-pipeline.
	probe := newSwitchCore(s.base.spec, s.base.nameInstances, s.routes, s.defaultPort, &Stats{PerPort: map[int]int{}})
	if err := probe.enableValidation(maxDepth, invalidPort); err != nil {
		return err
	}
	s.validate = true
	s.validateDepth = maxDepth
	s.validatePort = invalidPort
	return nil
}

// StageVersion prepares a new spec for a factory hot-swap: the service-name
// instances are resolved (and, with validation enabled, the grammar probed)
// now, so a spec the router cannot switch on fails here instead of
// mid-pipeline. Call before Pipeline.SwapFactory; the staged spec decodes
// any batch carrying an unknown version until CommitVersion binds it —
// covering the window where the new version's first batch reaches the sink
// before SwapFactory has returned its id. Reloads must be serialized by the
// caller (one staged version at a time).
func (s *Sink) StageVersion(spec *core.Spec) error {
	names, err := resolveNameInstances(spec, s.nameProduction)
	if err != nil {
		return err
	}
	v := &sinkVersion{spec: spec, nameInstances: names}
	if s.validate {
		probe := newSwitchCore(spec, names, s.routes, s.defaultPort, &Stats{PerPort: map[int]int{}})
		if err := probe.enableValidation(s.validateDepth, s.validatePort); err != nil {
			return err
		}
	}
	s.verMu.Lock()
	s.pending = v
	s.verMu.Unlock()
	return nil
}

// CommitVersion binds the staged spec to the version id SwapFactory
// returned and clears the staging slot. Pass version <= 0 to abort a stage
// whose swap failed.
func (s *Sink) CommitVersion(version int) {
	s.verMu.Lock()
	if s.pending != nil && version > 0 {
		if _, ok := s.versions[version]; !ok {
			s.versions[version] = s.pending
		}
	}
	s.pending = nil
	s.verMu.Unlock()
}

// AddVersion registers a spec under an already-known version id — the
// direct form of StageVersion/CommitVersion for callers that learn the id
// before any of its batches can arrive.
func (s *Sink) AddVersion(version int, spec *core.Spec) error {
	if err := s.StageVersion(spec); err != nil {
		return err
	}
	s.CommitVersion(version)
	return nil
}

// DropVersion forgets a retired version's spec. Wire it into the
// pipeline's Hooks.VersionRetired: the runtime retires a version only
// after its last stream's final batch has been delivered, so no live
// switchCore still references the dropped spec.
func (s *Sink) DropVersion(version int) {
	s.verMu.Lock()
	delete(s.versions, version)
	s.verMu.Unlock()
}

// versionFor resolves the decode state for a batch's factory version,
// memoizing the staged version under a first-seen id.
func (s *Sink) versionFor(ver int) *sinkVersion {
	s.verMu.RLock()
	v := s.versions[ver]
	pending := s.pending
	s.verMu.RUnlock()
	if v != nil {
		return v
	}
	if pending != nil {
		s.verMu.Lock()
		if existing := s.versions[ver]; existing != nil {
			v = existing
		} else {
			s.versions[ver] = pending
			v = pending
		}
		s.verMu.Unlock()
		return v
	}
	return s.base
}

// Deliver consumes one batch: bytes first, then the tags over them; on EOS
// the stream's core is finished and released. Incomplete final messages
// are counted in Stats rather than failing the pipeline.
func (s *Sink) Deliver(b *runtime.Batch) error {
	w, ok := s.streams[b.Key]
	if !ok {
		v := s.versionFor(b.Version)
		w = newSwitchCore(v.spec, v.nameInstances, s.routes, s.defaultPort, &s.stats)
		if s.validate {
			if err := w.enableValidation(s.validateDepth, s.validatePort); err != nil {
				return err
			}
		}
		key := b.Key
		w.onRoute = func(port int, service string, message []byte) {
			if s.OnRoute != nil {
				s.OnRoute(key, port, service, message)
			}
		}
		s.streams[b.Key] = w
	}
	if len(b.Data) > 0 {
		w.feed(b.Data)
	}
	for _, m := range b.Tags {
		w.consume(m)
	}
	if b.EOS {
		w.finish() // incomplete tail counted in stats
		delete(s.streams, b.Key)
	}
	return nil
}

// Close implements runtime.Sink; open streams have already been flushed by
// the pipeline's synthetic EOS batches.
func (s *Sink) Close() error { return nil }

// Stats returns the routing counters aggregated across all streams. Call
// after the pipeline is closed (or from the sink goroutine).
func (s *Sink) Stats() Stats { return s.stats }
