package router

import (
	"cfgtag/internal/core"
	"cfgtag/internal/runtime"
)

// Sink plugs the content-based switch into the sharded runtime pipeline:
// each delivered batch carries a chunk of one stream plus the tags some
// upstream Backend confirmed over it, and the Sink runs one switching core
// per stream. It implements runtime.Sink; Deliver is called from the
// pipeline's single sink goroutine, so no locking is needed.
type Sink struct {
	spec          *core.Spec
	nameInstances map[int]bool
	routes        map[string]int
	defaultPort   int

	validateDepth int
	validatePort  int
	validate      bool

	streams map[string]*switchCore
	stats   Stats

	// OnRoute receives every completed message with the stream it came
	// from and its resolved port and service. The message slice is only
	// valid during the call.
	OnRoute func(stream string, port int, service string, message []byte)
}

// NewSink builds a pipeline sink switching on the terminal detected inside
// nameProduction. The spec must be the very spec the pipeline's Backend
// factory was built from (instance IDs must agree); compile it with
// FreeRunningStart so long-lived streams route message after message.
func NewSink(spec *core.Spec, nameProduction string, routes []Route, defaultPort int) (*Sink, error) {
	names, err := resolveNameInstances(spec, nameProduction)
	if err != nil {
		return nil, err
	}
	table, err := buildRouteTable(routes)
	if err != nil {
		return nil, err
	}
	s := &Sink{
		spec:          spec,
		nameInstances: names,
		routes:        table,
		defaultPort:   defaultPort,
		streams:       make(map[string]*switchCore),
	}
	s.stats.PerPort = make(map[int]int)
	return s, nil
}

// EnableValidation gives every stream its own section 5.2 stack validator
// (see Router.EnableValidation). Must be called before the first Deliver.
func (s *Sink) EnableValidation(maxDepth, invalidPort int) error {
	// Probe once so a non-LL(1) grammar fails here, not mid-pipeline.
	probe := newSwitchCore(s.spec, s.nameInstances, s.routes, s.defaultPort, &Stats{PerPort: map[int]int{}})
	if err := probe.enableValidation(maxDepth, invalidPort); err != nil {
		return err
	}
	s.validate = true
	s.validateDepth = maxDepth
	s.validatePort = invalidPort
	return nil
}

// Deliver consumes one batch: bytes first, then the tags over them; on EOS
// the stream's core is finished and released. Incomplete final messages
// are counted in Stats rather than failing the pipeline.
func (s *Sink) Deliver(b *runtime.Batch) error {
	w, ok := s.streams[b.Key]
	if !ok {
		w = newSwitchCore(s.spec, s.nameInstances, s.routes, s.defaultPort, &s.stats)
		if s.validate {
			if err := w.enableValidation(s.validateDepth, s.validatePort); err != nil {
				return err
			}
		}
		key := b.Key
		w.onRoute = func(port int, service string, message []byte) {
			if s.OnRoute != nil {
				s.OnRoute(key, port, service, message)
			}
		}
		s.streams[b.Key] = w
	}
	if len(b.Data) > 0 {
		w.feed(b.Data)
	}
	for _, m := range b.Tags {
		w.consume(m)
	}
	if b.EOS {
		w.finish() // incomplete tail counted in stats
		delete(s.streams, b.Key)
	}
	return nil
}

// Close implements runtime.Sink; open streams have already been flushed by
// the pipeline's synthetic EOS batches.
func (s *Sink) Close() error { return nil }

// Stats returns the routing counters aggregated across all streams. Call
// after the pipeline is closed (or from the sink goroutine).
func (s *Sink) Stats() Stats { return s.stats }
