// Package router implements the back-end processor of section 4: the
// XML-RPC content-based message router of figure 12. It consumes the tag
// stream of a tagger running the figure 14 grammar, recovers the service
// name from the STRING detection inside the methodName production, and
// switches each complete message to the output port registered for that
// service (bank or shopping server in the paper's example).
//
// Two front ends drive the same switching core: Router couples it to its
// own inline tagger (one stream, io.Writer-style), and Sink plugs it into
// the sharded runtime pipeline as the batch consumer (many streams, tags
// computed upstream by any Backend).
package router

import (
	"fmt"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/validate"
)

// Route binds a service name to an output port.
type Route struct {
	Service string
	Port    int
}

// Stats counts routing outcomes.
type Stats struct {
	// Messages is the number of complete messages seen.
	Messages int
	// PerPort counts messages delivered to each port.
	PerPort map[int]int
	// Unknown counts messages whose service had no route (delivered to
	// the default port).
	Unknown int
	// Invalid counts messages diverted by validation (EnableValidation).
	Invalid int
	// Incomplete counts streams that ended mid-message.
	Incomplete int
}

// switchCore is the tagger-independent switching state machine: it buffers
// stream bytes, consumes the tag stream over them, recovers the service
// name and flushes complete messages to onRoute. One switchCore serves one
// stream; Router and Sink wrap it.
type switchCore struct {
	spec *core.Spec

	nameInstances map[int]bool // service-name instance IDs
	routes        map[string]int
	defaultPort   int

	onRoute func(port int, service string, message []byte)

	buf     []byte
	bufBase int64 // absolute offset of buf[0]
	service string
	hasSvc  bool
	stats   *Stats

	// validation (optional): the section 5.2 stack extension audits each
	// message; ones with nesting violations divert to invalidPort.
	validator    *validate.Validator
	invalidPort  int
	msgViolation bool
}

// resolveNameInstances finds the class-terminal instances inside the named
// production — the detections that carry the service name.
func resolveNameInstances(spec *core.Spec, nameProduction string) (map[int]bool, error) {
	g := spec.Grammar
	ids := make(map[int]bool)
	for _, in := range spec.Instances {
		if in.Rule >= 0 && g.Rules[in.Rule].LHS == nameProduction && !g.Tokens[in.TokenIndex].Literal {
			ids[in.ID] = true
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("router: production %q has no class terminal to use as the service name", nameProduction)
	}
	return ids, nil
}

func buildRouteTable(routes []Route) (map[string]int, error) {
	table := make(map[string]int, len(routes))
	for _, rt := range routes {
		if _, dup := table[rt.Service]; dup {
			return nil, fmt.Errorf("router: duplicate route for service %q", rt.Service)
		}
		table[rt.Service] = rt.Port
	}
	return table, nil
}

func newSwitchCore(spec *core.Spec, nameInstances map[int]bool, routes map[string]int, defaultPort int, stats *Stats) *switchCore {
	return &switchCore{
		spec:          spec,
		nameInstances: nameInstances,
		routes:        routes,
		defaultPort:   defaultPort,
		stats:         stats,
	}
}

// enableValidation attaches a per-stream stack validator.
func (w *switchCore) enableValidation(maxDepth, invalidPort int) error {
	v, err := validate.New(w.spec, maxDepth)
	if err != nil {
		return err
	}
	v.OnViolation = func(*validate.Violation) { w.msgViolation = true }
	w.validator = v
	w.invalidPort = invalidPort
	return nil
}

// feed appends stream bytes to the message buffer.
func (w *switchCore) feed(p []byte) {
	w.buf = append(w.buf, p...)
}

// consume processes one detection over the fed bytes.
func (w *switchCore) consume(m stream.Match) {
	in := w.spec.Instances[m.InstanceID]
	if w.validator != nil {
		w.validator.Consume(m)
	}
	if w.nameInstances[m.InstanceID] {
		w.service, w.hasSvc = w.recoverLexeme(m), true
	}
	if in.CanEnd {
		w.flush(m.End)
	}
}

// finish reports leftover unrouted bytes (an incomplete final message).
func (w *switchCore) finish() error {
	for _, b := range w.buf {
		if !w.spec.Delim.Has(b) {
			w.stats.Incomplete++
			return fmt.Errorf("router: %d bytes of incomplete message at stream end", len(w.buf))
		}
	}
	return nil
}

// recoverLexeme extracts the service name text: the hardware reports only
// the end offset, so the longest suffix of the buffer matching the token
// pattern (ending there) is the lexeme.
func (w *switchCore) recoverLexeme(m stream.Match) string {
	in := w.spec.Instances[m.InstanceID]
	end := int(m.End-w.bufBase) + 1
	n := in.Program.LongestSuffix(w.buf[:end])
	if n <= 0 {
		return ""
	}
	return string(w.buf[end-n : end])
}

// flush emits the message ending at absolute offset end.
func (w *switchCore) flush(end int64) {
	cut := int(end-w.bufBase) + 1
	msg := w.buf[:cut]
	// Trim leading delimiters left over from the inter-message gap.
	start := 0
	for start < len(msg) && w.spec.Delim.Has(msg[start]) {
		start++
	}
	msg = msg[start:]

	port, ok := w.routes[w.service]
	if !ok || !w.hasSvc {
		port = w.defaultPort
		w.stats.Unknown++
	}
	if w.msgViolation {
		port = w.invalidPort
		w.stats.Invalid++
		w.msgViolation = false
	}
	w.stats.Messages++
	w.stats.PerPort[port]++
	if w.onRoute != nil {
		w.onRoute(port, w.service, msg)
	}
	w.buf = append(w.buf[:0], w.buf[cut:]...)
	w.bufBase += int64(cut)
	w.service, w.hasSvc = "", false
}

// Router is a streaming content-based switch over one stream, driving its
// own inline tagger. Not safe for concurrent use.
type Router struct {
	spec   *core.Spec
	tagger *stream.Tagger
	core   *switchCore
	stats  Stats

	// OnRoute receives every completed message with its resolved port and
	// service. The message slice is only valid during the call.
	OnRoute func(port int, service string, message []byte)
}

// New builds a router over the figure 14 grammar. defaultPort receives
// messages with unrouted services.
func New(routes []Route, defaultPort int) (*Router, error) {
	return NewWithGrammar(grammar.XMLRPC(), "methodName", routes, defaultPort)
}

// NewWithGrammar builds a router for any grammar: the service name is the
// lexeme of the terminal detected inside the named production (the paper's
// methodName). The grammar's spec is compiled with FreeRunningStart so a
// long-lived stream routes message after message.
func NewWithGrammar(g *grammar.Grammar, nameProduction string, routes []Route, defaultPort int) (*Router, error) {
	spec, err := core.Compile(g, core.Options{FreeRunningStart: true})
	if err != nil {
		return nil, err
	}
	names, err := resolveNameInstances(spec, nameProduction)
	if err != nil {
		return nil, err
	}
	table, err := buildRouteTable(routes)
	if err != nil {
		return nil, err
	}
	r := &Router{spec: spec}
	r.stats.PerPort = make(map[int]int)
	r.core = newSwitchCore(spec, names, table, defaultPort, &r.stats)
	r.core.onRoute = func(port int, service string, message []byte) {
		if r.OnRoute != nil {
			r.OnRoute(port, service, message)
		}
	}
	r.tagger = stream.NewTagger(spec)
	r.tagger.OnMatch = r.core.consume
	return r, nil
}

// Spec exposes the compiled spec (for tests and instrumentation).
func (r *Router) Spec() *core.Spec { return r.spec }

// EnableValidation attaches the section 5.2 stack extension: every
// message's tag stream is audited by a bounded LL(1) stack machine
// (maxDepth 0 = 4096), and messages with nesting violations — which the
// stack-less engine happily tags — divert to invalidPort instead of their
// service's port. Must be called before Write; the grammar must be LL(1).
func (r *Router) EnableValidation(maxDepth, invalidPort int) error {
	return r.core.enableValidation(maxDepth, invalidPort)
}

// Write feeds stream bytes; complete messages fire OnRoute inline.
func (r *Router) Write(p []byte) (int, error) {
	r.core.feed(p)
	return r.tagger.Write(p)
}

// Close flushes the trailing byte and reports leftover unrouted bytes (an
// incomplete final message) as an error.
func (r *Router) Close() error {
	if err := r.tagger.Close(); err != nil {
		return err
	}
	return r.core.finish()
}

// Stats returns routing counters.
func (r *Router) Stats() Stats { return r.stats }

// FigureTwelve returns the paper's route table: deposit/withdraw/acctinfo
// to port 0 (bank), buy/sell/price to port 1 (shopping).
func FigureTwelve() []Route {
	return []Route{
		{Service: "deposit", Port: 0},
		{Service: "withdraw", Port: 0},
		{Service: "acctinfo", Port: 0},
		{Service: "buy", Port: 1},
		{Service: "sell", Port: 1},
		{Service: "price", Port: 1},
	}
}
