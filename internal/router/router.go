// Package router implements the back-end processor of section 4: the
// XML-RPC content-based message router of figure 12. It consumes the tag
// stream of a tagger running the figure 14 grammar, recovers the service
// name from the STRING detection inside the methodName production, and
// switches each complete message to the output port registered for that
// service (bank or shopping server in the paper's example).
package router

import (
	"fmt"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/validate"
)

// Route binds a service name to an output port.
type Route struct {
	Service string
	Port    int
}

// Stats counts routing outcomes.
type Stats struct {
	// Messages is the number of complete messages seen.
	Messages int
	// PerPort counts messages delivered to each port.
	PerPort map[int]int
	// Unknown counts messages whose service had no route (delivered to
	// the default port).
	Unknown int
	// Invalid counts messages diverted by validation (EnableValidation).
	Invalid int
}

// Router is a streaming content-based switch. Not safe for concurrent use.
type Router struct {
	spec   *core.Spec
	tagger *stream.Tagger

	nameInstances map[int]bool // STRING-in-methodName instance IDs
	routes        map[string]int
	defaultPort   int

	// OnRoute receives every completed message with its resolved port and
	// service. The message slice is only valid during the call.
	OnRoute func(port int, service string, message []byte)

	buf     []byte
	bufBase int64 // absolute offset of buf[0]
	service string
	hasSvc  bool
	stats   Stats

	// validation (optional): the section 5.2 stack extension audits each
	// message; ones with nesting violations divert to invalidPort.
	validator    *validate.Validator
	invalidPort  int
	msgViolation bool
}

// New builds a router over the figure 14 grammar. defaultPort receives
// messages with unrouted services.
func New(routes []Route, defaultPort int) (*Router, error) {
	return NewWithGrammar(grammar.XMLRPC(), "methodName", routes, defaultPort)
}

// NewWithGrammar builds a router for any grammar: the service name is the
// lexeme of the terminal detected inside the named production (the paper's
// methodName). The grammar's spec is compiled with FreeRunningStart so a
// long-lived stream routes message after message.
func NewWithGrammar(g *grammar.Grammar, nameProduction string, routes []Route, defaultPort int) (*Router, error) {
	spec, err := core.Compile(g, core.Options{FreeRunningStart: true})
	if err != nil {
		return nil, err
	}
	r := &Router{
		spec:          spec,
		nameInstances: make(map[int]bool),
		routes:        make(map[string]int, len(routes)),
		defaultPort:   defaultPort,
	}
	for _, in := range spec.Instances {
		if in.Rule >= 0 && g.Rules[in.Rule].LHS == nameProduction && !g.Tokens[in.TokenIndex].Literal {
			r.nameInstances[in.ID] = true
		}
	}
	if len(r.nameInstances) == 0 {
		return nil, fmt.Errorf("router: production %q has no class terminal to use as the service name", nameProduction)
	}
	for _, rt := range routes {
		if _, dup := r.routes[rt.Service]; dup {
			return nil, fmt.Errorf("router: duplicate route for service %q", rt.Service)
		}
		r.routes[rt.Service] = rt.Port
	}
	r.tagger = stream.NewTagger(spec)
	r.tagger.OnMatch = r.onMatch
	r.stats.PerPort = make(map[int]int)
	return r, nil
}

// Spec exposes the compiled spec (for tests and instrumentation).
func (r *Router) Spec() *core.Spec { return r.spec }

// EnableValidation attaches the section 5.2 stack extension: every
// message's tag stream is audited by a bounded LL(1) stack machine
// (maxDepth 0 = 4096), and messages with nesting violations — which the
// stack-less engine happily tags — divert to invalidPort instead of their
// service's port. Must be called before Write; the grammar must be LL(1).
func (r *Router) EnableValidation(maxDepth, invalidPort int) error {
	v, err := validate.New(r.spec, maxDepth)
	if err != nil {
		return err
	}
	v.OnViolation = func(*validate.Violation) { r.msgViolation = true }
	r.validator = v
	r.invalidPort = invalidPort
	return nil
}

// Write feeds stream bytes; complete messages fire OnRoute inline.
func (r *Router) Write(p []byte) (int, error) {
	r.buf = append(r.buf, p...)
	return r.tagger.Write(p)
}

// Close flushes the trailing byte and reports leftover unrouted bytes (an
// incomplete final message) as an error.
func (r *Router) Close() error {
	if err := r.tagger.Close(); err != nil {
		return err
	}
	for _, b := range r.buf {
		if !r.spec.Delim.Has(b) {
			return fmt.Errorf("router: %d bytes of incomplete message at stream end", len(r.buf))
		}
	}
	return nil
}

// Stats returns routing counters.
func (r *Router) Stats() Stats { return r.stats }

func (r *Router) onMatch(m stream.Match) {
	in := r.spec.Instances[m.InstanceID]
	if r.validator != nil {
		r.validator.Consume(m)
	}
	if r.nameInstances[m.InstanceID] {
		r.service, r.hasSvc = r.recoverLexeme(m), true
	}
	if in.CanEnd {
		r.flush(m.End)
	}
}

// recoverLexeme extracts the service name text: the hardware reports only
// the end offset, so the longest suffix of the buffer matching the token
// pattern (ending there) is the lexeme.
func (r *Router) recoverLexeme(m stream.Match) string {
	in := r.spec.Instances[m.InstanceID]
	end := int(m.End-r.bufBase) + 1
	n := in.Program.LongestSuffix(r.buf[:end])
	if n <= 0 {
		return ""
	}
	return string(r.buf[end-n : end])
}

// flush emits the message ending at absolute offset end.
func (r *Router) flush(end int64) {
	cut := int(end-r.bufBase) + 1
	msg := r.buf[:cut]
	// Trim leading delimiters left over from the inter-message gap.
	start := 0
	for start < len(msg) && r.spec.Delim.Has(msg[start]) {
		start++
	}
	msg = msg[start:]

	port, ok := r.routes[r.service]
	if !ok || !r.hasSvc {
		port = r.defaultPort
		r.stats.Unknown++
	}
	if r.msgViolation {
		port = r.invalidPort
		r.stats.Invalid++
		r.msgViolation = false
	}
	r.stats.Messages++
	r.stats.PerPort[port]++
	if r.OnRoute != nil {
		r.OnRoute(port, r.service, msg)
	}
	r.buf = append(r.buf[:0], r.buf[cut:]...)
	r.bufBase += int64(cut)
	r.service, r.hasSvc = "", false
}

// FigureTwelve returns the paper's route table: deposit/withdraw/acctinfo
// to port 0 (bank), buy/sell/price to port 1 (shopping).
func FigureTwelve() []Route {
	return []Route{
		{Service: "deposit", Port: 0},
		{Service: "withdraw", Port: 0},
		{Service: "acctinfo", Port: 0},
		{Service: "buy", Port: 1},
		{Service: "sell", Port: 1},
		{Service: "price", Port: 1},
	}
}
