package router

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/runtime"
	"cfgtag/internal/xmlrpc"
)

// sinkPipeline wires a Sink behind a sharded pipeline over the same spec,
// the way cmd/xmlrouter does in -shards mode.
func sinkPipeline(t *testing.T, shards int) (*runtime.Pipeline, *Sink) {
	t.Helper()
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewSink(spec, "methodName", FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := runtime.NewPipeline(runtime.Config{Shards: shards, Factory: runtime.TaggerFactory(spec)}, sink)
	if err != nil {
		t.Fatal(err)
	}
	return p, sink
}

func TestSinkRoutesInterleavedStreams(t *testing.T) {
	p, sink := sinkPipeline(t, 4)
	type routedFrom struct {
		stream  string
		service string
		port    int
	}
	var got []routedFrom
	sink.OnRoute = func(stream string, port int, service string, message []byte) {
		got = append(got, routedFrom{stream, service, port})
	}

	// Three connections, each carrying its own message sequence, fed in
	// interleaved chunks so messages straddle batch boundaries.
	const conns = 3
	texts := make([][]byte, conns)
	wantSvc := make([][]string, conns)
	for i := range texts {
		gen := xmlrpc.NewGenerator(int64(100+i), xmlrpc.Options{})
		corpus, services := gen.Corpus(5)
		texts[i] = []byte(corpus)
		wantSvc[i] = services
	}
	for off := 0; ; off++ {
		sent := false
		for i, text := range texts {
			lo, hi := off*13, (off+1)*13
			if lo >= len(text) {
				continue
			}
			if hi > len(text) {
				hi = len(text)
			}
			if err := p.Send(fmt.Sprintf("conn-%d", i), text[lo:hi]); err != nil {
				t.Fatal(err)
			}
			sent = true
		}
		if !sent {
			break
		}
	}
	for i := range texts {
		p.CloseStream(fmt.Sprintf("conn-%d", i))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Per-stream order must match that stream's generated sequence.
	perStream := make(map[string][]routedFrom)
	for _, r := range got {
		perStream[r.stream] = append(perStream[r.stream], r)
	}
	for i := range texts {
		key := fmt.Sprintf("conn-%d", i)
		rs := perStream[key]
		if len(rs) != len(wantSvc[i]) {
			t.Fatalf("%s: routed %d messages, want %d", key, len(rs), len(wantSvc[i]))
		}
		for j, want := range wantSvc[i] {
			if rs[j].service != want {
				t.Errorf("%s message %d: service %q, want %q", key, j, rs[j].service, want)
			}
			if rs[j].port != xmlrpc.ServiceDestination(want) {
				t.Errorf("%s message %d: port %d, want %d", key, j, rs[j].port, xmlrpc.ServiceDestination(want))
			}
		}
	}
	st := sink.Stats()
	if want := conns * 5; st.Messages != want {
		t.Errorf("stats.Messages = %d, want %d", st.Messages, want)
	}
	if st.Unknown != 0 || st.Incomplete != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSinkCountsIncompleteStreams(t *testing.T) {
	p, sink := sinkPipeline(t, 2)
	p.Send("cut", []byte("<methodCall> <methodName>buy</methodName>"))
	p.CloseStream("cut")
	if err := p.Close(); err != nil {
		t.Fatalf("truncated stream failed the pipeline: %v", err)
	}
	st := sink.Stats()
	if st.Incomplete != 1 {
		t.Errorf("stats.Incomplete = %d, want 1", st.Incomplete)
	}
	if st.Messages != 0 {
		t.Errorf("stats.Messages = %d, want 0", st.Messages)
	}
}

func TestSinkValidationDivertsPerStream(t *testing.T) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewSink(spec, "methodName", FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.EnableValidation(0, 66); err != nil {
		t.Fatal(err)
	}
	ports := make(map[string]int)
	sink.OnRoute = func(stream string, port int, service string, message []byte) {
		ports[stream] = port
	}
	p, err := runtime.NewPipeline(runtime.Config{Shards: 2, Factory: runtime.TaggerFactory(spec)}, sink)
	if err != nil {
		t.Fatal(err)
	}
	good := "<methodCall> <methodName>buy</methodName> <params> </params> </methodCall>\n"
	// Inner struct closed, outer left open: the stack-less tagger accepts
	// it, the stack extension catches it (the recursion-collapse hole).
	bad := "<methodCall> <methodName>sell</methodName> <params> <param> " +
		"<struct> <member> <name>a</name> " +
		"<struct> <member> <name>b</name> <i4>1</i4> </member> </struct> " +
		"</param> </params> </methodCall>\n"
	p.Send("ok", []byte(good))
	p.Send("evil", []byte(bad))
	p.CloseStream("ok")
	p.CloseStream("evil")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if ports["ok"] != xmlrpc.ServiceDestination("buy") {
		t.Errorf("valid stream routed to %d", ports["ok"])
	}
	if ports["evil"] != 66 {
		t.Errorf("mis-nested stream routed to %d, want invalid port 66", ports["evil"])
	}
	if st := sink.Stats(); st.Invalid != 1 {
		t.Errorf("stats.Invalid = %d, want 1", st.Invalid)
	}
}

// routeOracle runs one stream of corpus through a fresh single-shard
// pipeline on spec and returns the routed service sequence — the reference
// for what that grammar version routes.
func routeOracle(t *testing.T, spec *core.Spec, corpus string) []string {
	t.Helper()
	sink, err := NewSink(spec, "methodName", FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	sink.OnRoute = func(stream string, port int, service string, message []byte) {
		got = append(got, service)
	}
	p, err := runtime.NewPipeline(runtime.Config{Shards: 1, Factory: runtime.TaggerFactory(spec)}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("oracle", []byte(corpus)); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseStream("oracle"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return got
}

// seenSink wraps the router Sink to record which streams have had a batch
// delivered — the signal that a stream's entry exists and its factory
// version is bound.
type seenSink struct {
	*Sink
	mu   sync.Mutex
	keys map[string]bool
}

func (w *seenSink) Deliver(b *runtime.Batch) error {
	w.mu.Lock()
	w.keys[b.Key] = true
	w.mu.Unlock()
	return w.Sink.Deliver(b)
}

func (w *seenSink) seen(key string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.keys[key]
}

// TestSinkHotSwapVersions swaps the pipeline's grammar mid-run and checks
// the version-aware sink decodes every stream with the spec that tagged it:
// streams opened before the swap route exactly what the old grammar routes,
// streams opened after it what the new grammar routes, and the retired
// version's spec is dropped.
func TestSinkHotSwapVersions(t *testing.T) {
	specA, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	specB, err := core.Compile(grammar.XMLRPCFull(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := xmlrpc.NewGenerator(7, xmlrpc.Options{})
	corpus, _ := gen.Corpus(4)
	half := len(corpus) / 2
	// The two grammars genuinely route this corpus differently (the full
	// dialect resynchronizes past messages the figure 14 dialect accepts),
	// which is exactly what makes per-version decode observable.
	wantOld := routeOracle(t, specA, corpus)
	wantNew := routeOracle(t, specB, corpus)
	if reflect.DeepEqual(wantOld, wantNew) {
		t.Fatalf("oracles agree (%v); the swap would be unobservable", wantOld)
	}

	sink, err := NewSink(specA, "methodName", FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	routed := make(map[string][]string)
	sink.OnRoute = func(stream string, port int, service string, message []byte) {
		mu.Lock()
		routed[stream] = append(routed[stream], service)
		mu.Unlock()
	}
	ws := &seenSink{Sink: sink, keys: make(map[string]bool)}
	p, err := runtime.NewPipeline(runtime.Config{
		Shards:  2,
		Factory: runtime.TaggerFactory(specA),
		Hooks:   &runtime.Hooks{VersionRetired: sink.DropVersion},
	}, ws)
	if err != nil {
		t.Fatal(err)
	}

	// Old streams open before the swap; wait until each has a delivered
	// batch so its factory-version binding (v1) is committed.
	const n = 4
	for i := 0; i < n; i++ {
		if err := p.Send(fmt.Sprintf("old-%d", i), []byte(corpus[:half])); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < n; i++ {
		for !ws.seen(fmt.Sprintf("old-%d", i)) {
			if time.Now().After(deadline) {
				t.Fatal("old streams never delivered their first batch")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Hot-swap: stage the new spec, swap the factory, bind the id.
	if err := sink.StageVersion(specB); err != nil {
		t.Fatal(err)
	}
	v, err := p.SwapFactory(runtime.TaggerFactory(specB))
	if err != nil {
		t.Fatal(err)
	}
	sink.CommitVersion(v)
	if v != 2 {
		t.Fatalf("SwapFactory returned version %d, want 2", v)
	}

	// New streams bind the new version; old streams finish on the old one.
	for i := 0; i < n; i++ {
		nk := fmt.Sprintf("new-%d", i)
		if err := p.Send(nk, []byte(corpus)); err != nil {
			t.Fatal(err)
		}
		if err := p.CloseStream(nk); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		ok := fmt.Sprintf("old-%d", i)
		if err := p.Send(ok, []byte(corpus[half:])); err != nil {
			t.Fatal(err)
		}
		if err := p.CloseStream(ok); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if got := routed[fmt.Sprintf("old-%d", i)]; !reflect.DeepEqual(got, wantOld) {
			t.Errorf("old-%d routed %v, want old-grammar %v", i, got, wantOld)
		}
		if got := routed[fmt.Sprintf("new-%d", i)]; !reflect.DeepEqual(got, wantNew) {
			t.Errorf("new-%d routed %v, want new-grammar %v", i, got, wantNew)
		}
	}
	// The old version drained and retired, so its spec was dropped.
	sink.verMu.RLock()
	_, live1 := sink.versions[1]
	_, live2 := sink.versions[2]
	sink.verMu.RUnlock()
	if live1 {
		t.Error("version 1 spec not dropped after retirement")
	}
	if !live2 {
		t.Error("version 2 spec missing")
	}
}
