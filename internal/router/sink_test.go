package router

import (
	"fmt"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/runtime"
	"cfgtag/internal/xmlrpc"
)

// sinkPipeline wires a Sink behind a sharded pipeline over the same spec,
// the way cmd/xmlrouter does in -shards mode.
func sinkPipeline(t *testing.T, shards int) (*runtime.Pipeline, *Sink) {
	t.Helper()
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewSink(spec, "methodName", FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := runtime.NewPipeline(runtime.Config{Shards: shards, Factory: runtime.TaggerFactory(spec)}, sink)
	if err != nil {
		t.Fatal(err)
	}
	return p, sink
}

func TestSinkRoutesInterleavedStreams(t *testing.T) {
	p, sink := sinkPipeline(t, 4)
	type routedFrom struct {
		stream  string
		service string
		port    int
	}
	var got []routedFrom
	sink.OnRoute = func(stream string, port int, service string, message []byte) {
		got = append(got, routedFrom{stream, service, port})
	}

	// Three connections, each carrying its own message sequence, fed in
	// interleaved chunks so messages straddle batch boundaries.
	const conns = 3
	texts := make([][]byte, conns)
	wantSvc := make([][]string, conns)
	for i := range texts {
		gen := xmlrpc.NewGenerator(int64(100+i), xmlrpc.Options{})
		corpus, services := gen.Corpus(5)
		texts[i] = []byte(corpus)
		wantSvc[i] = services
	}
	for off := 0; ; off++ {
		sent := false
		for i, text := range texts {
			lo, hi := off*13, (off+1)*13
			if lo >= len(text) {
				continue
			}
			if hi > len(text) {
				hi = len(text)
			}
			if err := p.Send(fmt.Sprintf("conn-%d", i), text[lo:hi]); err != nil {
				t.Fatal(err)
			}
			sent = true
		}
		if !sent {
			break
		}
	}
	for i := range texts {
		p.CloseStream(fmt.Sprintf("conn-%d", i))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Per-stream order must match that stream's generated sequence.
	perStream := make(map[string][]routedFrom)
	for _, r := range got {
		perStream[r.stream] = append(perStream[r.stream], r)
	}
	for i := range texts {
		key := fmt.Sprintf("conn-%d", i)
		rs := perStream[key]
		if len(rs) != len(wantSvc[i]) {
			t.Fatalf("%s: routed %d messages, want %d", key, len(rs), len(wantSvc[i]))
		}
		for j, want := range wantSvc[i] {
			if rs[j].service != want {
				t.Errorf("%s message %d: service %q, want %q", key, j, rs[j].service, want)
			}
			if rs[j].port != xmlrpc.ServiceDestination(want) {
				t.Errorf("%s message %d: port %d, want %d", key, j, rs[j].port, xmlrpc.ServiceDestination(want))
			}
		}
	}
	st := sink.Stats()
	if want := conns * 5; st.Messages != want {
		t.Errorf("stats.Messages = %d, want %d", st.Messages, want)
	}
	if st.Unknown != 0 || st.Incomplete != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSinkCountsIncompleteStreams(t *testing.T) {
	p, sink := sinkPipeline(t, 2)
	p.Send("cut", []byte("<methodCall> <methodName>buy</methodName>"))
	p.CloseStream("cut")
	if err := p.Close(); err != nil {
		t.Fatalf("truncated stream failed the pipeline: %v", err)
	}
	st := sink.Stats()
	if st.Incomplete != 1 {
		t.Errorf("stats.Incomplete = %d, want 1", st.Incomplete)
	}
	if st.Messages != 0 {
		t.Errorf("stats.Messages = %d, want 0", st.Messages)
	}
}

func TestSinkValidationDivertsPerStream(t *testing.T) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewSink(spec, "methodName", FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.EnableValidation(0, 66); err != nil {
		t.Fatal(err)
	}
	ports := make(map[string]int)
	sink.OnRoute = func(stream string, port int, service string, message []byte) {
		ports[stream] = port
	}
	p, err := runtime.NewPipeline(runtime.Config{Shards: 2, Factory: runtime.TaggerFactory(spec)}, sink)
	if err != nil {
		t.Fatal(err)
	}
	good := "<methodCall> <methodName>buy</methodName> <params> </params> </methodCall>\n"
	// Inner struct closed, outer left open: the stack-less tagger accepts
	// it, the stack extension catches it (the recursion-collapse hole).
	bad := "<methodCall> <methodName>sell</methodName> <params> <param> " +
		"<struct> <member> <name>a</name> " +
		"<struct> <member> <name>b</name> <i4>1</i4> </member> </struct> " +
		"</param> </params> </methodCall>\n"
	p.Send("ok", []byte(good))
	p.Send("evil", []byte(bad))
	p.CloseStream("ok")
	p.CloseStream("evil")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if ports["ok"] != xmlrpc.ServiceDestination("buy") {
		t.Errorf("valid stream routed to %d", ports["ok"])
	}
	if ports["evil"] != 66 {
		t.Errorf("mis-nested stream routed to %d, want invalid port 66", ports["evil"])
	}
	if st := sink.Stats(); st.Invalid != 1 {
		t.Errorf("stats.Invalid = %d, want 1", st.Invalid)
	}
}
