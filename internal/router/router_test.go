package router

import (
	"strings"
	"testing"

	"cfgtag/internal/grammar"
	"cfgtag/internal/xmlrpc"
)

type routed struct {
	port    int
	service string
	message string
}

func collect(r *Router) *[]routed {
	out := &[]routed{}
	r.OnRoute = func(port int, service string, message []byte) {
		*out = append(*out, routed{port, service, string(message)})
	}
	return out
}

func TestFigureTwelveRouting(t *testing.T) {
	r, err := New(FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(r)
	gen := xmlrpc.NewGenerator(5, xmlrpc.Options{})
	corpus, services := gen.Corpus(40)
	if _, err := r.Write([]byte(corpus)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != len(services) {
		t.Fatalf("routed %d messages, want %d", len(*got), len(services))
	}
	for i, want := range services {
		g := (*got)[i]
		if g.service != want {
			t.Errorf("message %d: service %q, want %q", i, g.service, want)
		}
		if g.port != xmlrpc.ServiceDestination(want) {
			t.Errorf("message %d (%s): port %d, want %d", i, want, g.port, xmlrpc.ServiceDestination(want))
		}
		if !strings.HasPrefix(g.message, "<methodCall>") || !strings.HasSuffix(g.message, "</methodCall>") {
			t.Errorf("message %d not cleanly framed: %q", i, g.message)
		}
	}
	st := r.Stats()
	if st.Messages != 40 || st.Unknown != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnknownServiceGoesToDefault(t *testing.T) {
	r, err := New(FigureTwelve(), 7)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(r)
	gen := xmlrpc.NewGenerator(1, xmlrpc.Options{Service: "frobnicate"})
	msg, _ := gen.Message()
	r.Write([]byte(msg))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || (*got)[0].port != 7 {
		t.Fatalf("routed = %+v", *got)
	}
	if r.Stats().Unknown != 1 {
		t.Errorf("stats = %+v", r.Stats())
	}
}

func TestChunkedWritesSplitMidToken(t *testing.T) {
	r, err := New(FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(r)
	gen := xmlrpc.NewGenerator(8, xmlrpc.Options{})
	corpus, services := gen.Corpus(10)
	data := []byte(corpus)
	for i := 0; i < len(data); {
		n := 1 + i%5
		if i+n > len(data) {
			n = len(data) - i
		}
		if _, err := r.Write(data[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != len(services) {
		t.Fatalf("routed %d, want %d", len(*got), len(services))
	}
}

func TestIncompleteMessageReported(t *testing.T) {
	r, err := New(FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	r.Write([]byte("<methodCall> <methodName>deposit</methodName>"))
	if err := r.Close(); err == nil {
		t.Error("truncated message should surface on Close")
	}
}

func TestOutOfContextServiceNameDoesNotRoute(t *testing.T) {
	// The paper's motivation: "deposit" appearing as a *parameter string*
	// must not steer routing — only the methodName occurrence counts.
	r, err := New(FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(r)
	msg := "<methodCall> <methodName>price</methodName> <params> " +
		"<param> <string>deposit</string> </param> </params> </methodCall>"
	r.Write([]byte(msg))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("routed = %+v", *got)
	}
	if (*got)[0].service != "price" || (*got)[0].port != 1 {
		t.Errorf("routed by the wrong occurrence: %+v", (*got)[0])
	}
}

func TestCompactMessages(t *testing.T) {
	r, err := New(FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(r)
	gen := xmlrpc.NewGenerator(3, xmlrpc.Options{Compact: true})
	corpus, services := gen.Corpus(15)
	r.Write([]byte(corpus))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != len(services) {
		t.Fatalf("routed %d, want %d", len(*got), len(services))
	}
}

func TestFullDialectRouting(t *testing.T) {
	// The router works unchanged over the real wire format by swapping in
	// the XMLRPCFull grammar.
	r, err := NewWithGrammar(grammar.XMLRPCFull(), "methodName", FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(r)
	gen := xmlrpc.NewGenerator(6, xmlrpc.Options{ValueTags: true})
	corpus, services := gen.Corpus(20)
	r.Write([]byte(corpus))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != len(services) {
		t.Fatalf("routed %d, want %d", len(*got), len(services))
	}
	for i, want := range services {
		if (*got)[i].port != xmlrpc.ServiceDestination(want) {
			t.Errorf("message %d: port %d", i, (*got)[i].port)
		}
	}
}

func TestValidationDivertsMalformed(t *testing.T) {
	r, err := New(FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableValidation(0, 66); err != nil {
		t.Fatal(err)
	}
	got := collect(r)
	// A structurally damaged message the tagger happily tags (inner
	// struct closed, outer left open — the recursion-collapse hole).
	bad := "<methodCall> <methodName>deposit</methodName> <params> <param> " +
		"<struct> <member> <name>a</name> " +
		"<struct> <member> <name>b</name> <i4>1</i4> </member> </struct> " +
		"</param> </params> </methodCall>"
	good := "<methodCall> <methodName>buy</methodName> <params> </params> </methodCall>"
	r.Write([]byte(bad + "\n" + good + "\n"))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Fatalf("routed = %+v", *got)
	}
	if (*got)[0].port != 66 {
		t.Errorf("malformed message routed to %d, want quarantine 66", (*got)[0].port)
	}
	if (*got)[1].port != 1 {
		t.Errorf("clean message routed to %d, want shopping 1", (*got)[1].port)
	}
	st := r.Stats()
	if st.Invalid != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestValidationPassesCleanTraffic(t *testing.T) {
	r, err := New(FigureTwelve(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableValidation(0, 66); err != nil {
		t.Fatal(err)
	}
	got := collect(r)
	gen := xmlrpc.NewGenerator(14, xmlrpc.Options{})
	corpus, services := gen.Corpus(25)
	r.Write([]byte(corpus))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != len(services) || r.Stats().Invalid != 0 {
		t.Fatalf("routed=%d invalid=%d", len(*got), r.Stats().Invalid)
	}
}

func TestDuplicateRouteRejected(t *testing.T) {
	_, err := New([]Route{{"a", 0}, {"a", 1}}, 9)
	if err == nil {
		t.Error("duplicate route accepted")
	}
}

func TestBadNameProduction(t *testing.T) {
	_, err := NewWithGrammar(grammar.XMLRPC(), "params", FigureTwelve(), 9)
	if err == nil {
		t.Error("production without a class terminal accepted")
	}
}

func TestRouterWithCustomGrammar(t *testing.T) {
	// A toy command language: route by the WORD after "do".
	g, err := grammar.Parse("cmd", `
WORD [a-z]+
%%
S : "do" Name "end" ;
Name : WORD ;
`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewWithGrammar(g, "Name", []Route{{"left", 1}, {"right", 2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(r)
	r.Write([]byte("do left end\ndo right end\ndo up end"))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 3 {
		t.Fatalf("routed = %+v", *got)
	}
	wantPorts := []int{1, 2, 0}
	for i, w := range wantPorts {
		if (*got)[i].port != w {
			t.Errorf("message %d port = %d, want %d", i, (*got)[i].port, w)
		}
	}
}
