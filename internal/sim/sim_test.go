package sim

import (
	"testing"

	"cfgtag/internal/netlist"
)

func TestCombinational(t *testing.T) {
	n := netlist.New()
	a := n.Input("a")
	b := n.Input("b")
	n.Output("and", n.And(a, b))
	n.Output("or", n.Or(a, b))
	n.Output("not", n.Not(a))
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, and, or, not bool }{
		{false, false, false, false, true},
		{true, false, false, true, false},
		{false, true, false, true, true},
		{true, true, true, true, false},
	}
	for _, tc := range cases {
		s.SetInput("a", tc.a)
		s.SetInput("b", tc.b)
		s.Step()
		got := map[string]bool{}
		for _, name := range []string{"and", "or", "not"} {
			v, err := s.Output(name)
			if err != nil {
				t.Fatal(err)
			}
			got[name] = v
		}
		if got["and"] != tc.and || got["or"] != tc.or || got["not"] != tc.not {
			t.Errorf("a=%v b=%v: got %v", tc.a, tc.b, got)
		}
	}
}

func TestRegisterDelay(t *testing.T) {
	// A 3-stage shift register delays its input by 3 cycles.
	n := netlist.New()
	d := n.Input("d")
	r1 := n.Reg(d, "r1")
	r2 := n.Reg(r1, "r2")
	r3 := n.Reg(r2, "r3")
	n.Output("q", r3)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	pattern := []bool{true, false, true, true, false, false, true}
	var got []bool
	for _, v := range pattern {
		s.SetInput("d", v)
		s.Step()
		q, _ := s.Output("q")
		got = append(got, q)
	}
	// After step t, q holds the input of step t-2 (three registers, read
	// post-edge). Steps 0 and 1 show the power-on zeros.
	want := []bool{false, false, true, false, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cycle %d: q = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestRegisterEnableHold(t *testing.T) {
	n := netlist.New()
	d := n.Input("d")
	en := n.Input("en")
	r := n.RegEn(d, en, "r")
	n.Output("q", r)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	step := func(d, en bool) bool {
		s.SetInput("d", d)
		s.SetInput("en", en)
		s.Step()
		q, _ := s.Output("q")
		return q
	}
	if q := step(true, true); q != true {
		t.Errorf("load true: q=%v", q)
	}
	if q := step(false, false); q != true {
		t.Errorf("hold: q=%v, want held true", q)
	}
	if q := step(false, true); q != false {
		t.Errorf("load false: q=%v", q)
	}
}

func TestRegisterToRegisterNoFallThrough(t *testing.T) {
	// Back-to-back registers must not fall through in one clock: r2 sees
	// r1's pre-edge value.
	n := netlist.New()
	d := n.Input("d")
	r1 := n.Reg(d, "r1")
	r2 := n.Reg(r1, "r2")
	n.Output("q1", r1)
	n.Output("q2", r2)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInput("d", true)
	s.Step()
	q1, _ := s.Output("q1")
	q2, _ := s.Output("q2")
	if q1 != true || q2 != false {
		t.Errorf("after 1 step: q1=%v q2=%v, want true,false", q1, q2)
	}
}

func TestFeedbackLoop(t *testing.T) {
	// Set-reset style: r = (r OR set) — once set, stays set.
	n := netlist.New()
	set := n.Input("set")
	r := n.Reg(set, "sticky")
	d := n.Or(r, set)
	n.Gates[r].In[0] = d
	n.Output("q", r)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInput("set", false)
	s.Step()
	if q, _ := s.Output("q"); q {
		t.Error("sticky set too early")
	}
	s.SetInput("set", true)
	s.Step()
	s.SetInput("set", false)
	s.Step()
	s.Step()
	if q, _ := s.Output("q"); !q {
		t.Error("sticky did not hold")
	}
}

func TestReset(t *testing.T) {
	n := netlist.New()
	d := n.Input("d")
	r := n.Reg(d, "r")
	n.Output("q", r)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInput("d", true)
	s.Step()
	if s.Cycle() != 1 {
		t.Errorf("cycle = %d", s.Cycle())
	}
	s.Reset()
	if s.Cycle() != 0 {
		t.Error("reset did not clear cycle")
	}
	if q, _ := s.Output("q"); q {
		t.Error("reset did not clear register")
	}
}

func TestConstInit(t *testing.T) {
	n := netlist.New()
	one := n.Const(true)
	zero := n.Const(false)
	n.Output("one", one)
	n.Output("zero", zero)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	if v, _ := s.Output("one"); !v {
		t.Error("const true wrong")
	}
	if v, _ := s.Output("zero"); v {
		t.Error("const false wrong")
	}
}

func TestErrors(t *testing.T) {
	n := netlist.New()
	a := n.Input("a")
	n.Output("q", a)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetInput("nope", true); err == nil {
		t.Error("SetInput on ghost input should fail")
	}
	if _, err := s.Output("nope"); err == nil {
		t.Error("Output on ghost output should fail")
	}
	if _, err := s.OutputWire("nope"); err == nil {
		t.Error("OutputWire on ghost output should fail")
	}
	// Invalid netlists are rejected at construction.
	bad := netlist.New()
	bad.Gates = append(bad.Gates, netlist.Gate{Op: netlist.OpNot, In: []netlist.Wire{0}, Enable: netlist.Invalid})
	if _, err := New(bad); err == nil {
		t.Error("self-loop NOT accepted")
	}
}

func TestRegInitValue(t *testing.T) {
	n := netlist.New()
	d := n.Input("d")
	w := n.Reg(d, "r")
	n.Gates[w].Init = true
	n.Output("q", w)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Value(w) {
		t.Error("register init value not honored before first step")
	}
}
