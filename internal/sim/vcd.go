package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cfgtag/internal/netlist"
)

// Tracer writes a Value Change Dump (IEEE 1364 VCD) of selected signals as
// a simulation advances — the waveform a hardware engineer would inspect
// in GTKWave to debug the generated design. One Step is one clock period
// (10 ns nominal): the clock rises with the sampled values and falls at
// mid-period.
type Tracer struct {
	sm      *Simulator
	w       io.Writer
	signals []TraceSignal
	ids     []string
	prev    []int8 // -1 = unknown (forces the first dump)
	started bool
	err     error
}

// TraceSignal selects one wire for the dump.
type TraceSignal struct {
	Name string
	Wire netlist.Wire
}

// NewTracer prepares a VCD dump of the given signals. Call Sample after
// every Simulator.Step; call Flush when done to surface any write error.
func NewTracer(sm *Simulator, w io.Writer, module string, signals []TraceSignal) *Tracer {
	t := &Tracer{sm: sm, w: w, signals: signals}
	t.ids = make([]string, len(signals))
	t.prev = make([]int8, len(signals))
	for i := range signals {
		t.ids[i] = vcdID(i)
		t.prev[i] = -1
	}
	t.writeHeader(module)
	return t
}

// DefaultSignals selects the netlist's primary inputs and named outputs,
// the usual top-level view. Output order is inputs then outputs, each in
// declaration order.
func DefaultSignals(n *netlist.Netlist) []TraceSignal {
	var out []TraceSignal
	for _, p := range n.Inputs {
		out = append(out, TraceSignal{Name: p.Name, Wire: p.Wire})
	}
	for _, p := range n.Outputs {
		out = append(out, TraceSignal{Name: p.Name, Wire: p.Wire})
	}
	return out
}

// LabeledSignals selects every register carrying a label prefix, sorted by
// name — e.g. "wire/held" to watch the pending latches.
func LabeledSignals(n *netlist.Netlist, prefix string) []TraceSignal {
	var out []TraceSignal
	for _, w := range n.Labeled(prefix) {
		out = append(out, TraceSignal{Name: n.Gates[w].Label, Wire: w})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (t *Tracer) writeHeader(module string) {
	var b strings.Builder
	b.WriteString("$timescale 1ns $end\n")
	fmt.Fprintf(&b, "$scope module %s $end\n", sanitizeVCD(module))
	b.WriteString("$var wire 1 ' clk $end\n")
	for i, s := range t.signals {
		fmt.Fprintf(&b, "$var wire 1 %s %s $end\n", t.ids[i], sanitizeVCD(s.Name))
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")
	t.write(b.String())
}

// Sample records the post-Step values. The clock edge is placed at the
// cycle boundary.
func (t *Tracer) Sample() {
	cycle := t.sm.Cycle()
	var b strings.Builder
	fmt.Fprintf(&b, "#%d\n1'\n", (cycle-1)*10)
	for i, s := range t.signals {
		v := int8(0)
		if t.sm.Value(s.Wire) {
			v = 1
		}
		if v != t.prev[i] {
			fmt.Fprintf(&b, "%d%s\n", v, t.ids[i])
			t.prev[i] = v
		}
	}
	fmt.Fprintf(&b, "#%d\n0'\n", (cycle-1)*10+5)
	t.write(b.String())
}

// Flush returns the first write error, if any.
func (t *Tracer) Flush() error { return t.err }

func (t *Tracer) write(s string) {
	if t.err != nil {
		return
	}
	_, t.err = io.WriteString(t.w, s)
}

// vcdID produces the compact printable identifier for signal i ('!' .. '~'
// alphabet, excluding the clock's reserved tick).
func vcdID(i int) string {
	const alpha = "!\"#$%&()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~"
	if i < len(alpha) {
		return string(alpha[i])
	}
	return string(alpha[i%len(alpha)]) + vcdID(i/len(alpha)-1)
}

// sanitizeVCD makes a signal name VCD-safe (no whitespace).
func sanitizeVCD(name string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, name)
}
