package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"cfgtag/internal/netlist"
)

// refModel is an independent interpreter of the netlist semantics used to
// cross-check the simulator: combinational values by recursive evaluation,
// registers double-buffered.
type refModel struct {
	n      *netlist.Netlist
	regVal map[netlist.Wire]bool
	inputs map[netlist.Wire]bool
}

func newRefModel(n *netlist.Netlist) *refModel {
	m := &refModel{n: n, regVal: map[netlist.Wire]bool{}, inputs: map[netlist.Wire]bool{}}
	for i, g := range n.Gates {
		if g.Op == netlist.OpReg {
			m.regVal[netlist.Wire(i)] = g.Init
		}
	}
	return m
}

func (m *refModel) eval(w netlist.Wire, memo map[netlist.Wire]bool) bool {
	if v, ok := memo[w]; ok {
		return v
	}
	g := m.n.Gates[w]
	var v bool
	switch g.Op {
	case netlist.OpConst:
		v = g.Init
	case netlist.OpInput:
		v = m.inputs[w]
	case netlist.OpReg:
		v = m.regVal[w]
	case netlist.OpAnd:
		v = true
		for _, in := range g.In {
			v = v && m.eval(in, memo)
		}
	case netlist.OpOr:
		for _, in := range g.In {
			v = v || m.eval(in, memo)
		}
	case netlist.OpNot:
		v = !m.eval(g.In[0], memo)
	}
	memo[w] = v
	return v
}

// step settles and clocks, returning the settled value of every wire.
func (m *refModel) step() map[netlist.Wire]bool {
	memo := map[netlist.Wire]bool{}
	for i := range m.n.Gates {
		m.eval(netlist.Wire(i), memo)
	}
	next := map[netlist.Wire]bool{}
	for i, g := range m.n.Gates {
		if g.Op != netlist.OpReg {
			continue
		}
		w := netlist.Wire(i)
		if g.Enable != netlist.Invalid && !memo[g.Enable] {
			next[w] = m.regVal[w]
		} else {
			next[w] = memo[g.In[0]]
		}
	}
	m.regVal = next
	return memo
}

// randomNetlist builds a random acyclic-combinational circuit with
// registers (which may create sequential feedback).
func randomNetlist(rng *rand.Rand) *netlist.Netlist {
	n := netlist.New()
	var wires []netlist.Wire
	nInputs := 1 + rng.Intn(4)
	for i := 0; i < nInputs; i++ {
		wires = append(wires, n.Input(fmt.Sprintf("in%d", i)))
	}
	pick := func() netlist.Wire { return wires[rng.Intn(len(wires))] }
	nGates := 5 + rng.Intn(25)
	var regs []netlist.Wire
	for i := 0; i < nGates; i++ {
		switch rng.Intn(5) {
		case 0:
			wires = append(wires, n.Not(pick()))
		case 1:
			a, b := pick(), pick()
			if a == b {
				wires = append(wires, n.Not(a))
			} else {
				wires = append(wires, n.And(a, b))
			}
		case 2:
			a, b := pick(), pick()
			if a == b {
				wires = append(wires, n.Not(a))
			} else {
				wires = append(wires, n.Or(a, b, pick()))
			}
		case 3:
			r := n.Reg(pick(), fmt.Sprintf("r%d", i))
			if rng.Intn(2) == 0 {
				n.Gates[r].Init = true
			}
			regs = append(regs, r)
			wires = append(wires, r)
		default:
			r := n.RegEn(pick(), pick(), fmt.Sprintf("re%d", i))
			regs = append(regs, r)
			wires = append(wires, r)
		}
	}
	// Sequential feedback: rewire some register D inputs to later wires
	// (legal — registers break cycles).
	for _, r := range regs {
		if rng.Intn(3) == 0 {
			n.Gates[r].In[0] = pick()
		}
	}
	for i := 0; i < 3; i++ {
		n.Output(fmt.Sprintf("o%d", i), pick())
	}
	return n
}

// TestRandomCircuitsAgainstReference fuzzes the simulator against the
// independent interpreter on random circuits and input sequences.
func TestRandomCircuitsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	circuits := 200
	if testing.Short() {
		circuits = 30
	}
	for ci := 0; ci < circuits; ci++ {
		n := randomNetlist(rng)
		if err := n.Validate(); err != nil {
			// Or-of-duplicated-operand cases can degenerate; skip invalid
			// random builds rather than constrain the generator.
			continue
		}
		sm, err := New(n)
		if err != nil {
			t.Fatalf("circuit %d: %v", ci, err)
		}
		ref := newRefModel(n)
		for cycle := 0; cycle < 20; cycle++ {
			for _, p := range n.Inputs {
				v := rng.Intn(2) == 1
				sm.SetInputWire(p.Wire, v)
				ref.inputs[p.Wire] = v
			}
			want := ref.step()
			sm.Step()
			for i := range n.Gates {
				w := netlist.Wire(i)
				if n.Gates[i].Op == netlist.OpReg {
					// Post-edge register values compare against the ref's
					// next-state.
					if sm.Value(w) != ref.regVal[w] {
						t.Fatalf("circuit %d cycle %d reg %d: sim %v ref %v", ci, cycle, i, sm.Value(w), ref.regVal[w])
					}
					continue
				}
				if sm.Value(w) != want[w] {
					t.Fatalf("circuit %d cycle %d wire %d (%s): sim %v ref %v",
						ci, cycle, i, n.Gates[i].Op, sm.Value(w), want[w])
				}
			}
		}
	}
}
