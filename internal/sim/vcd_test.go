package sim

import (
	"strings"
	"testing"

	"cfgtag/internal/netlist"
)

func TestVCDBasics(t *testing.T) {
	n := netlist.New()
	d := n.Input("d")
	q := n.Reg(d, "r")
	n.Output("q", q)
	sm, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	tr := NewTracer(sm, &buf, "shift", DefaultSignals(n))
	for _, v := range []bool{true, false, true} {
		sm.SetInput("d", v)
		sm.Step()
		tr.Sample()
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module shift $end",
		"$var wire 1 ' clk $end",
		"$var wire 1 ! d $end",
		"$enddefinitions $end",
		"#0\n1'\n",
		"#5\n0'\n",
		"#10\n1'\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Value changes only on change: d toggles 1,0,1 → three dumps of '!'.
	if got := strings.Count(out, "!"); got != 3+1 { // 3 changes + declaration
		t.Errorf("d dumped %d times: %s", got, out)
	}
}

func TestVCDIdentifiers(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
		if strings.ContainsAny(id, " \t\n'") {
			t.Fatalf("invalid id %q", id)
		}
	}
}

func TestLabeledSignals(t *testing.T) {
	n := netlist.New()
	a := n.Input("a")
	n.Reg(a, "wire/held1")
	n.Reg(a, "wire/held0")
	n.Reg(a, "tok/0/pos0")
	sigs := LabeledSignals(n, "wire/held")
	if len(sigs) != 2 || sigs[0].Name != "wire/held0" {
		t.Errorf("signals = %v", sigs)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitizeVCD("a b\tc"); got != "a_b_c" {
		t.Errorf("sanitize = %q", got)
	}
}
