// Package sim executes a netlist cycle by cycle — the software equivalent
// of running the generated design in an FPGA at one input byte per clock.
// Within a cycle, combinational logic settles (topological evaluation) and
// outputs are observable; at the end of the cycle every register loads its
// D input (subject to its clock enable), becoming visible the next cycle.
package sim

import (
	"fmt"

	"cfgtag/internal/netlist"
)

// Simulator holds the runtime state of one netlist instance.
type Simulator struct {
	n      *netlist.Netlist
	order  []netlist.Wire
	values []bool
	nextRe []bool // staging for register updates
	regs   []netlist.Wire
	cycle  int
}

// New prepares a simulator; the netlist must validate.
func New(n *netlist.Netlist) (*Simulator, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	order, err := n.CombOrder()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		n:      n,
		order:  order,
		values: make([]bool, len(n.Gates)),
	}
	for i, g := range n.Gates {
		switch g.Op {
		case netlist.OpConst:
			s.values[i] = g.Init
		case netlist.OpReg:
			s.values[i] = g.Init
			s.regs = append(s.regs, netlist.Wire(i))
		}
	}
	s.nextRe = make([]bool, len(s.regs))
	return s, nil
}

// Reset restores every register to its power-on value and the cycle counter
// to zero.
func (s *Simulator) Reset() {
	for _, r := range s.regs {
		s.values[r] = s.n.Gates[r].Init
	}
	s.cycle = 0
}

// Cycle reports how many Step calls have completed.
func (s *Simulator) Cycle() int { return s.cycle }

// SetInput drives a primary input for the current cycle.
func (s *Simulator) SetInput(name string, v bool) error {
	w, ok := s.n.InputWire(name)
	if !ok {
		return fmt.Errorf("sim: no input named %q", name)
	}
	s.values[w] = v
	return nil
}

// SetInputWire drives a primary input by wire, avoiding the name lookup in
// hot loops.
func (s *Simulator) SetInputWire(w netlist.Wire, v bool) {
	s.values[w] = v
}

// Step settles combinational logic for the current cycle and then clocks
// every register. Inputs must have been set beforehand; outputs read after
// Step reflect the settled values of the cycle that just executed.
func (s *Simulator) Step() {
	gates := s.n.Gates
	vals := s.values
	for _, w := range s.order {
		g := &gates[w]
		switch g.Op {
		case netlist.OpAnd:
			v := true
			for _, in := range g.In {
				if !vals[in] {
					v = false
					break
				}
			}
			vals[w] = v
		case netlist.OpOr:
			v := false
			for _, in := range g.In {
				if vals[in] {
					v = true
					break
				}
			}
			vals[w] = v
		case netlist.OpNot:
			vals[w] = !vals[g.In[0]]
		}
	}
	// Clock edge: stage all register loads, then commit, so register-to-
	// register paths see pre-edge values.
	for i, r := range s.regs {
		g := &gates[r]
		if g.Enable != netlist.Invalid && !vals[g.Enable] {
			s.nextRe[i] = vals[r] // hold
		} else {
			s.nextRe[i] = vals[g.In[0]]
		}
	}
	for i, r := range s.regs {
		vals[r] = s.nextRe[i]
	}
	s.cycle++
}

// Value returns the settled value of any wire for the cycle that just
// executed (combinational wires) or the value entering the current cycle
// (registers).
func (s *Simulator) Value(w netlist.Wire) bool { return s.values[w] }

// Output returns a named output's settled value.
func (s *Simulator) Output(name string) (bool, error) {
	w, ok := s.n.OutputWire(name)
	if !ok {
		return false, fmt.Errorf("sim: no output named %q", name)
	}
	return s.values[w], nil
}

// OutputWire resolves a named output to its wire for hot-loop reading.
func (s *Simulator) OutputWire(name string) (netlist.Wire, error) {
	w, ok := s.n.OutputWire(name)
	if !ok {
		return netlist.Invalid, fmt.Errorf("sim: no output named %q", name)
	}
	return w, nil
}
