package serve

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestParseHandshake(t *testing.T) {
	cases := []struct {
		in      string
		want    Handshake
		wantErr error
	}{
		{"CFGTAG/1 STREAM alpha key-1\n", Handshake{Tenant: "alpha", Key: "key-1"}, nil},
		{"CFGTAG/1 MUX alpha\n", Handshake{Tenant: "alpha", Mux: true}, nil},
		{"CFGTAG/1 MUX alpha extra\n", Handshake{}, ErrBadHandshake},
		{"CFGTAG/1 STREAM alpha\n", Handshake{}, ErrBadHandshake},
		{"CFGTAG/2 STREAM alpha key\n", Handshake{}, ErrBadHandshake},
		{"CFGTAG/1 STREAM  key\n", Handshake{}, ErrBadName},
		{"CFGTAG/1 STREAM al pha key\n", Handshake{}, ErrBadHandshake},
		{"CFGTAG/1 STREAM alpha " + strings.Repeat("k", MaxNameLen+1) + "\n", Handshake{}, ErrBadName},
		{"\n", Handshake{}, ErrBadHandshake},
		{"CFGTAG/1 STREAM alpha k\x00ey\n", Handshake{}, ErrBadName},
		{strings.Repeat("x", MaxLineLen+10), Handshake{}, ErrLineTooLong},
		{"CFGTAG/1 STREAM alpha key", Handshake{}, io.ErrUnexpectedEOF},
		{"", Handshake{}, io.EOF},
	}
	for _, c := range cases {
		hs, err := NewFrameReader(strings.NewReader(c.in)).ReadHandshake()
		if c.wantErr != nil {
			if !errors.Is(err, c.wantErr) {
				t.Errorf("ReadHandshake(%q) err = %v, want %v", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil || hs != c.want {
			t.Errorf("ReadHandshake(%q) = %+v, %v; want %+v", c.in, hs, err, c.want)
		}
	}
}

func TestParseFrames(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, Frame{Op: FrameOpen, Key: "s1"})
	buf = AppendFrame(buf, Frame{Op: FrameData, Key: "s1", Payload: []byte("hello\nworld")})
	buf = AppendFrame(buf, Frame{Op: FrameData, Key: "s1", Payload: nil})
	buf = AppendFrame(buf, Frame{Op: FrameClose, Key: "s1"})
	fr := NewFrameReader(bytes.NewReader(buf))
	f, err := fr.ReadFrame()
	if err != nil || f.Op != FrameOpen || f.Key != "s1" {
		t.Fatalf("frame 1: %+v, %v", f, err)
	}
	f, err = fr.ReadFrame()
	if err != nil || f.Op != FrameData || string(f.Payload) != "hello\nworld" {
		t.Fatalf("frame 2: %+v, %v", f, err)
	}
	f, err = fr.ReadFrame()
	if err != nil || f.Op != FrameData || len(f.Payload) != 0 {
		t.Fatalf("frame 3: %+v, %v", f, err)
	}
	f, err = fr.ReadFrame()
	if err != nil || f.Op != FrameClose || f.Key != "s1" {
		t.Fatalf("frame 4: %+v, %v", f, err)
	}
	if _, err = fr.ReadFrame(); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

func TestParseFrameErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantErr error
	}{
		{"NOPE s1\n", ErrBadFrame},
		{"OPEN\n", ErrBadFrame},
		{"OPEN a b\n", ErrBadFrame},
		{"DATA s1\n", ErrBadFrame},
		{"DATA s1 -1\n", ErrBadFrame},
		{"DATA s1 007\n", ErrBadFrame},
		{"DATA s1 999999999\n", ErrBadFrame},
		{"DATA s1 1048577\n", ErrPayloadTooLarge},
		{"DATA s1 5\nab", io.ErrUnexpectedEOF},
		{"DATA s1 2\nabX", ErrBadFrame}, // desynced length: no terminator
		{"CLOSE " + strings.Repeat("k", MaxNameLen+1) + "\n", ErrBadName},
		{"OPEN \x01\n", ErrBadName},
	}
	for _, c := range cases {
		_, err := NewFrameReader(strings.NewReader(c.in)).ReadFrame()
		if !errors.Is(err, c.wantErr) {
			t.Errorf("ReadFrame(%q) err = %v, want %v", c.in, err, c.wantErr)
		}
	}
}

// TestFrameRoundTrip: whatever AppendFrame writes, ReadFrame returns.
func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: FrameOpen, Key: "k"},
		{Op: FrameData, Key: "k", Payload: bytes.Repeat([]byte{0xf7}, 1000)},
		{Op: FrameData, Key: strings.Repeat("K", MaxNameLen), Payload: []byte("x")},
		{Op: FrameClose, Key: "k"},
	}
	var buf []byte
	for _, f := range frames {
		buf = AppendFrame(buf, f)
	}
	fr := NewFrameReader(bytes.NewReader(buf))
	for i, want := range frames {
		got, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.Key != want.Key || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
}
