package serve

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cfgtag"
)

// TestErrTextOverload pins the wire-level reason strings for the overload
// error taxonomy: CFGTAG/1 clients key their backoff behaviour on these
// exact words, so they are part of the protocol surface.
func TestErrTextOverload(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{cfgtag.ErrOverloaded, "overloaded"},
		{fmt.Errorf("shard 3: %w", cfgtag.ErrOverloaded), "overloaded"},
		{cfgtag.ErrResourceExhausted, "resource exhausted"},
		{fmt.Errorf("chart budget: %w", cfgtag.ErrResourceExhausted), "resource exhausted"},
		{cfgtag.ErrQuotaExceeded, "quota exceeded"},
		{cfgtag.ErrUnknownTenant, "unknown tenant"},
		{ErrDraining, "draining"},
		{ErrDuplicateStream, "duplicate stream"},
		{errors.New("mystery"), "error"},
	}
	for _, c := range cases {
		if got := errText(c.err); got != c.want {
			t.Errorf("errText(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestHTTPStatusOverload pins the HTTP mapping: shed and budget-tripped
// streams are transient server pressure (429), not client mistakes.
func TestHTTPStatusOverload(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{cfgtag.ErrOverloaded, http.StatusTooManyRequests},
		{fmt.Errorf("send: %w", cfgtag.ErrOverloaded), http.StatusTooManyRequests},
		{cfgtag.ErrResourceExhausted, http.StatusTooManyRequests},
		{cfgtag.ErrQuotaExceeded, http.StatusTooManyRequests},
		{cfgtag.ErrUnknownTenant, http.StatusNotFound},
		{ErrDraining, http.StatusServiceUnavailable},
		{ErrDuplicateStream, http.StatusConflict},
		{errors.New("mystery"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := httpStatus(c.err); got != c.want {
			t.Errorf("httpStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestHTTPErrorRetryAfter checks that every 429 carries Retry-After —
// shed clients should back off, not hammer the queue they overflowed —
// and that non-429 responses do not.
func TestHTTPErrorRetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	httpError(rec, fmt.Errorf("send: %w", cfgtag.ErrOverloaded))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}

	rec = httptest.NewRecorder()
	httpError(rec, cfgtag.ErrUnknownTenant)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Errorf("Retry-After on 404 = %q, want unset", got)
	}
}

// TestConnWriterSlowConsumer drives a connWriter against a pipe nobody
// reads: the first write must miss its deadline and come back wrapping
// ErrSlowConsumer (counted once through onSlow), and every later write
// must fail fast on the sticky error without waiting out the deadline or
// recounting the consumer.
func TestConnWriterSlowConsumer(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	slow := 0
	cw := &connWriter{c: server, timeout: 20 * time.Millisecond, onSlow: func() { slow++ }}

	if _, err := cw.Write([]byte("TAG 1 0 a b\n")); !errors.Is(err, ErrSlowConsumer) {
		t.Fatalf("first write err = %v, want ErrSlowConsumer", err)
	}
	if slow != 1 {
		t.Fatalf("onSlow fired %d times, want 1", slow)
	}

	start := time.Now()
	if _, err := cw.Write([]byte("END 1\n")); !errors.Is(err, ErrSlowConsumer) {
		t.Fatalf("sticky write err = %v, want ErrSlowConsumer", err)
	}
	if waited := time.Since(start); waited > 10*time.Millisecond {
		t.Errorf("sticky write waited %v, want fail-fast", waited)
	}
	if slow != 1 {
		t.Errorf("onSlow fired %d times after sticky write, want still 1", slow)
	}
}

// fakeStats is a canned Stats source for rendering tests.
type fakeStats struct {
	tenant string
	faults cfgtag.FaultStats
}

func (f *fakeStats) Tenants() []string { return []string{f.tenant} }
func (f *fakeStats) Metrics(string) (cfgtag.BackendCounters, int, error) {
	return cfgtag.BackendCounters{}, 0, nil
}
func (f *fakeStats) Faults(string) (cfgtag.FaultStats, error) { return f.faults, nil }
func (f *fakeStats) LiveVersions(string) ([]int, error)       { return []int{1}, nil }

// TestMetricsTextOverloadCounters checks that every overload counter is
// rendered per tenant: operators alert on these lines, so their names
// and label shape are load-bearing.
func TestMetricsTextOverloadCounters(t *testing.T) {
	s := NewServer()
	s.SetStats(&fakeStats{tenant: "acme", faults: cfgtag.FaultStats{
		SendsShed:          3,
		WatchdogTrips:      2,
		ResourceExhausted:  4,
		BreakerOpens:       6,
		BreakerSheds:       5,
		BreakerOpenWorkers: 1,
	}})
	s.CountSlowConsumer()
	text := s.MetricsText()
	for _, want := range []string{
		"serve_slow_consumers_total 1",
		`cfgtag_sends_shed_total{tenant="acme"} 3`,
		`cfgtag_watchdog_trips_total{tenant="acme"} 2`,
		`cfgtag_resource_exhausted_total{tenant="acme"} 4`,
		`cfgtag_breaker_opens_total{tenant="acme"} 6`,
		`cfgtag_breaker_sheds_total{tenant="acme"} 5`,
		`cfgtag_breaker_open_workers{tenant="acme"} 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}
