package serve

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cfgtag"
)

// TCPOptions tunes one TCP listener.
type TCPOptions struct {
	// Tenant fixes the listener's tenant; required in Raw mode, ignored
	// otherwise (protocol connections name their tenant in the
	// handshake).
	Tenant string
	// Raw skips the wire protocol entirely: each connection is one
	// stream of Tenant, keyed by remote address, fed until EOF — the
	// xmlrouter-compatible mode.
	Raw bool
	// NoEcho suppresses writing tag events back to the client (used
	// when an adapter core routes batches to its own sinks).
	NoEcho bool
	// WriteTimeout bounds each write back to a client (0 = 30s); a
	// client that stops reading is dropped, never the pipeline.
	WriteTimeout time.Duration
}

func (o TCPOptions) writeTimeout() time.Duration {
	if o.WriteTimeout <= 0 {
		return 30 * time.Second
	}
	return o.WriteTimeout
}

// TCPInput accepts TCP connections carrying either raw single-stream
// payloads or the CFGTAG/1 protocol (dedicated STREAM connections and
// key-multiplexed MUX connections).
type TCPInput struct {
	ln  net.Listener
	opt TCPOptions

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	rawSeq atomic.Int64
}

// NewTCPInput wraps an already-listening socket.
func NewTCPInput(ln net.Listener, opt TCPOptions) *TCPInput {
	return &TCPInput{ln: ln, opt: opt, conns: make(map[net.Conn]struct{})}
}

// Addr reports the listener address.
func (t *TCPInput) Addr() net.Addr { return t.ln.Addr() }

// Serve runs the accept loop until Close.
func (t *TCPInput) Serve(s *Server) error {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.Draining() {
			// Refuse, but tell the client why before hanging up (unless
			// the listener speaks a raw protocol with no write-backs).
			if !t.opt.NoEcho {
				conn.SetWriteDeadline(time.Now().Add(time.Second))
				io.WriteString(conn, "ERR! draining\n")
			}
			conn.Close()
			s.CountRefusal()
			continue
		}
		if !t.track(conn) {
			conn.Close()
			return nil
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer t.untrack(conn)
			t.handle(s, conn)
		}()
	}
}

func (t *TCPInput) track(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[conn] = struct{}{}
	return true
}

func (t *TCPInput) untrack(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

// Close stops accepting, closes every live connection and joins the
// handlers. The server calls it in the last shutdown stage, after every
// session's final output line has been delivered.
func (t *TCPInput) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	err := t.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return err
}

// connWriter serializes writes back to one connection with a per-write
// deadline and a sticky error: after the first failure every write fails
// fast, so a dead client costs nothing further. A write that misses its
// deadline is wrapped as ErrSlowConsumer and reported through onSlow —
// dropping a reader that stalled, not one that hung up, is a shedding
// decision worth counting separately.
type connWriter struct {
	mu      sync.Mutex
	c       net.Conn
	timeout time.Duration
	onSlow  func()
	err     error
}

func (cw *connWriter) Write(p []byte) (int, error) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.err != nil {
		return 0, cw.err
	}
	cw.c.SetWriteDeadline(time.Now().Add(cw.timeout))
	n, err := cw.c.Write(p)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			err = fmt.Errorf("%w: %v", ErrSlowConsumer, err)
			if cw.onSlow != nil {
				cw.onSlow()
			}
		}
		cw.err = err
	}
	return n, err
}

func (cw *connWriter) line(s string) { cw.Write(append([]byte(s), '\n')) }

// errText maps Send/open errors to the short reason written on the wire.
func errText(err error) string {
	switch {
	case errors.Is(err, cfgtag.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, cfgtag.ErrResourceExhausted):
		return "resource exhausted"
	case errors.Is(err, cfgtag.ErrQuotaExceeded):
		return "quota exceeded"
	case errors.Is(err, cfgtag.ErrUnknownTenant):
		return "unknown tenant"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrDuplicateStream):
		return "duplicate stream"
	case errors.Is(err, cfgtag.ErrPlatformClosed), errors.Is(err, cfgtag.ErrPipelineClosed):
		return "shutting down"
	default:
		return "error"
	}
}

func (t *TCPInput) handle(s *Server, conn net.Conn) {
	defer conn.Close()
	cw := &connWriter{c: conn, timeout: t.opt.writeTimeout(), onSlow: s.CountSlowConsumer}
	if t.opt.Raw {
		key := fmt.Sprintf("%s#%d", conn.RemoteAddr(), t.rawSeq.Add(1))
		t.pumpStream(s, conn, cw, t.opt.Tenant, key, nil)
		return
	}
	fr := NewFrameReader(conn)
	hs, err := fr.ReadHandshake()
	if err != nil {
		cw.line("ERR! bad handshake")
		s.CountRefusal()
		return
	}
	if hs.Mux {
		t.pumpMux(s, fr, cw, hs.Tenant)
		return
	}
	var out Output
	if !t.opt.NoEcho {
		out = &TagWriter{W: cw}
	}
	t.pumpStream(s, fr.r, cw, hs.Tenant, hs.Key, out)
}

// pumpStream drives one dedicated-stream connection: register the
// session, copy bytes into the core until EOF, close the stream and wait
// for its final output line before hanging up. A nil out in protocol
// mode keeps the session silent (NoEcho).
func (t *TCPInput) pumpStream(s *Server, r io.Reader, cw *connWriter, tenant, key string, out Output) {
	if t.opt.Raw && !t.opt.NoEcho {
		out = &TagWriter{W: cw}
	}
	sess, err := s.OpenStream(tenant, key, out)
	if err != nil {
		if !t.opt.NoEcho {
			cw.line("ERR " + errText(err))
		}
		return
	}
	core := s.Core()
	sent := false
	buf := make([]byte, 32<<10)
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			if serr := core.Send(tenant, key, buf[:n]); serr != nil {
				t.failStream(s, cw, tenant, key, "", sent, serr)
				return
			}
			sent = true
		}
		if rerr != nil {
			break
		}
	}
	if err := core.CloseStream(tenant, key); err != nil {
		// A faulted stream already delivered its ERR batch; everything
		// else still needs the session released.
		s.EndStream(tenant, key)
		return
	}
	// Wait for the EOS batch to land so the END line reaches the client
	// before the socket closes. Server shutdown force-flushes via
	// Core.Close, so this wait always terminates.
	<-sess.Done()
}

// failStream reports a Send failure to the client and releases the
// stream. Quarantined streams already ended with an ERR batch, so they
// are released silently; streams that never entered the pipeline are
// simply unregistered; mid-life kills are flushed through CloseStream so
// the pipeline does not leak the stream.
func (t *TCPInput) failStream(s *Server, cw *connWriter, tenant, key, prefix string, sent bool, err error) {
	if !errors.Is(err, cfgtag.ErrStreamQuarantined) {
		if !t.opt.NoEcho {
			cw.line(prefix + "ERR " + errText(err))
		}
		s.CountRefusal()
	}
	if sent {
		s.Core().CloseStream(tenant, key)
	}
	s.EndStream(tenant, key)
}

// muxStream is per-connection bookkeeping for one multiplexed stream.
type muxStream struct {
	sess *session
	sent bool
}

// pumpMux drives one multiplexed connection: OPEN/DATA/CLOSE frames for
// many keyed streams, responses interleaved per batch with a "<key> "
// prefix. On EOF every still-open stream is flushed, and the connection
// stays up until each stream's final line is written.
func (t *TCPInput) pumpMux(s *Server, fr *FrameReader, cw *connWriter, tenant string) {
	core := s.Core()
	open := make(map[string]*muxStream)
	var pending []*session
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			if errors.Is(err, ErrProtocol) {
				cw.line("ERR! " + err.Error())
			}
			break
		}
		switch f.Op {
		case FrameOpen:
			if _, ok := open[f.Key]; ok {
				cw.line(f.Key + " ERR duplicate stream")
				s.CountRefusal()
				continue
			}
			var out Output
			if !t.opt.NoEcho {
				out = &TagWriter{W: cw, Prefix: f.Key + " "}
			}
			sess, err := s.OpenStream(tenant, f.Key, out)
			if err != nil {
				cw.line(f.Key + " ERR " + errText(err))
				continue
			}
			open[f.Key] = &muxStream{sess: sess}
		case FrameData:
			ms, ok := open[f.Key]
			if !ok {
				cw.line(f.Key + " ERR not open")
				continue
			}
			if err := core.Send(tenant, f.Key, f.Payload); err != nil {
				t.failStream(s, cw, tenant, f.Key, f.Key+" ", ms.sent, err)
				pending = append(pending, ms.sess)
				delete(open, f.Key)
				continue
			}
			ms.sent = true
		case FrameClose:
			ms, ok := open[f.Key]
			if !ok {
				cw.line(f.Key + " ERR not open")
				continue
			}
			core.CloseStream(tenant, f.Key)
			pending = append(pending, ms.sess)
			delete(open, f.Key)
		}
	}
	// Client is gone (or spoke garbage): flush whatever it left open so
	// no stream leaks, then wait for every final line to go out.
	for key, ms := range open {
		if core.CloseStream(tenant, key) != nil {
			s.EndStream(tenant, key)
		}
		pending = append(pending, ms.sess)
	}
	for _, sess := range pending {
		<-sess.Done()
	}
}
