package serve

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"cfgtag"
)

// TagWriter renders a stream's tag batches as newline-delimited events:
//
//	TAG <end> <index> <term> <context>\n     one line per match
//	END <total-tags>\n                       clean end of stream
//	ERR <message>\n                          faulted or evicted end
//
// Every line is prefixed with Prefix (the stream key plus a space on
// multiplexed connections, empty on dedicated ones). The whole batch is
// rendered into one buffer and written with a single Write, so writers
// shared by several streams interleave at batch granularity only.
// A TagWriter is driven from one stream's delivery order and needs no
// internal locking.
type TagWriter struct {
	W      io.Writer
	Prefix string

	buf  []byte
	tags int
}

// Deliver implements Output.
func (tw *TagWriter) Deliver(b *cfgtag.TagBatch) error {
	tw.buf = AppendBatchText(tw.buf[:0], tw.Prefix, b, &tw.tags)
	if len(tw.buf) == 0 {
		return nil
	}
	_, err := tw.W.Write(tw.buf)
	return err
}

// AppendBatchText renders one batch in the TagWriter wire format,
// tracking the stream's cumulative tag count in *total. It is shared by
// the live outputs and the test oracle, which is what makes "byte-
// identical to the serial oracle" a well-defined assertion.
func AppendBatchText(dst []byte, prefix string, b *cfgtag.TagBatch, total *int) []byte {
	for _, m := range b.Tags {
		*total++
		dst = append(dst, prefix...)
		dst = append(dst, "TAG "...)
		dst = appendUint(dst, int(m.End))
		dst = append(dst, ' ')
		dst = appendUint(dst, m.Index)
		dst = append(dst, ' ')
		dst = append(dst, m.Term...)
		dst = append(dst, ' ')
		dst = append(dst, m.Context...)
		dst = append(dst, '\n')
	}
	if !b.EOS {
		return dst
	}
	dst = append(dst, prefix...)
	switch {
	case b.Evicted:
		dst = append(dst, "ERR evicted"...)
	case b.Err != nil:
		dst = append(dst, "ERR "...)
		dst = appendSanitized(dst, b.Err.Error())
	default:
		dst = append(dst, "END "...)
		dst = appendUint(dst, *total)
	}
	return append(dst, '\n')
}

// appendSanitized keeps error text on one line: control bytes (newlines
// included) become spaces, and the text is capped.
func appendSanitized(dst []byte, s string) []byte {
	const maxErrLen = 512
	if len(s) > maxErrLen {
		s = s[:maxErrLen]
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < ' ' || c == 0x7f {
			c = ' '
		}
		dst = append(dst, c)
	}
	return dst
}

// bufferOutput collects a stream's rendered tag events in memory — the
// HTTP input uses it to hold the response body until the stream ends.
type bufferOutput struct {
	mu   sync.Mutex
	tw   TagWriter
	data []byte
}

func newBufferOutput() *bufferOutput {
	bo := &bufferOutput{}
	bo.tw.W = writerFunc(func(p []byte) (int, error) {
		bo.data = append(bo.data, p...)
		return len(p), nil
	})
	return bo
}

func (bo *bufferOutput) Deliver(b *cfgtag.TagBatch) error {
	bo.mu.Lock()
	defer bo.mu.Unlock()
	return bo.tw.Deliver(b)
}

// Bytes returns the rendered stream output; call only after the session
// is done.
func (bo *bufferOutput) Bytes() []byte {
	bo.mu.Lock()
	defer bo.mu.Unlock()
	return bo.data
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// MetricsText renders the /metrics payload: flat text key/value lines,
// one per counter, labeled Prometheus-style with the tenant name. No
// third-party exposition library — the format is greppable and stable.
func (s *Server) MetricsText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serve_sessions_active %d\n", s.ActiveSessions())
	fmt.Fprintf(&b, "serve_sessions_opened_total %d\n", s.opened.Load())
	fmt.Fprintf(&b, "serve_sessions_ended_total %d\n", s.ended.Load())
	fmt.Fprintf(&b, "serve_refused_total %d\n", s.refused.Load())
	fmt.Fprintf(&b, "serve_output_write_errors_total %d\n", s.writeErrors.Load())
	fmt.Fprintf(&b, "serve_slow_consumers_total %d\n", s.slowConsumers.Load())
	draining := 0
	if s.Draining() {
		draining = 1
	}
	fmt.Fprintf(&b, "serve_draining %d\n", draining)
	if s.stats == nil {
		return b.String()
	}
	for _, t := range s.stats.Tenants() {
		c, depth, err := s.stats.Metrics(t)
		if err != nil {
			continue
		}
		lbl := fmt.Sprintf("{tenant=%q}", t)
		fmt.Fprintf(&b, "cfgtag_bytes_total%s %d\n", lbl, c.Bytes)
		fmt.Fprintf(&b, "cfgtag_matches_total%s %d\n", lbl, c.Matches)
		fmt.Fprintf(&b, "cfgtag_recoveries_total%s %d\n", lbl, c.Recoveries)
		fmt.Fprintf(&b, "cfgtag_collisions_total%s %d\n", lbl, c.Collisions)
		fmt.Fprintf(&b, "cfgtag_cache_hits_total%s %d\n", lbl, c.CacheHits)
		fmt.Fprintf(&b, "cfgtag_cache_misses_total%s %d\n", lbl, c.CacheMisses)
		fmt.Fprintf(&b, "cfgtag_cache_resets_total%s %d\n", lbl, c.CacheResets)
		fmt.Fprintf(&b, "cfgtag_queue_depth_max%s %d\n", lbl, depth)
		if f, err := s.stats.Faults(t); err == nil {
			fmt.Fprintf(&b, "cfgtag_panics_recovered_total%s %d\n", lbl, f.PanicsRecovered)
			fmt.Fprintf(&b, "cfgtag_streams_quarantined_total%s %d\n", lbl, f.StreamsQuarantined)
			fmt.Fprintf(&b, "cfgtag_streams_evicted_total%s %d\n", lbl, f.StreamsEvicted)
			fmt.Fprintf(&b, "cfgtag_sink_retries_total%s %d\n", lbl, f.SinkRetries)
			fmt.Fprintf(&b, "cfgtag_dead_letters_total%s %d\n", lbl, f.DeadLetters)
			fmt.Fprintf(&b, "cfgtag_sends_shed_total%s %d\n", lbl, f.SendsShed)
			fmt.Fprintf(&b, "cfgtag_watchdog_trips_total%s %d\n", lbl, f.WatchdogTrips)
			fmt.Fprintf(&b, "cfgtag_resource_exhausted_total%s %d\n", lbl, f.ResourceExhausted)
			fmt.Fprintf(&b, "cfgtag_breaker_opens_total%s %d\n", lbl, f.BreakerOpens)
			fmt.Fprintf(&b, "cfgtag_breaker_sheds_total%s %d\n", lbl, f.BreakerSheds)
			fmt.Fprintf(&b, "cfgtag_breaker_open_workers%s %d\n", lbl, f.BreakerOpenWorkers)
		}
		if vs, err := s.stats.LiveVersions(t); err == nil {
			fmt.Fprintf(&b, "cfgtag_live_versions%s %d\n", lbl, len(vs))
			if len(vs) > 0 {
				fmt.Fprintf(&b, "cfgtag_current_version%s %d\n", lbl, vs[len(vs)-1])
			}
		}
		// AOT compile-cost gauges, only for Stats implementations that
		// expose them and only once the tenant has minted an AOT backend
		// (States is 0 until then, and stays 0 forever on non-AOT tenants).
		if cs, ok := s.stats.(interface {
			CompileStats(string) (cfgtag.CompileStats, error)
		}); ok {
			if st, err := cs.CompileStats(t); err == nil && st.States > 0 {
				fmt.Fprintf(&b, "cfgtag_aot_states%s %d\n", lbl, st.States)
				fmt.Fprintf(&b, "cfgtag_aot_classes%s %d\n", lbl, st.Classes)
				fmt.Fprintf(&b, "cfgtag_aot_table_bytes%s %d\n", lbl, st.TableBytes)
				fmt.Fprintf(&b, "cfgtag_aot_compile_seconds%s %g\n", lbl, st.Duration.Seconds())
			}
		}
	}
	return b.String()
}
