package serve_test

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cfgtag"
	"cfgtag/internal/serve"
)

// testGrammar is the figure 9 grammar; every serve test tenant compiles
// it with free-running start on the DFA backend, matching the oracle.
const testGrammar = cfgtag.IfThenElseSource

// testPayload is one conforming sentence; it tags deterministically.
const testPayload = "if true then go else stop"

// testEnv is one running server over a real Platform with TCP + HTTP
// listeners on loopback.
type testEnv struct {
	t        *testing.T
	srv      *serve.Server
	platform *cfgtag.Platform
	tcpAddr  string
	httpAddr string
}

// tenantSpec declares one test tenant.
type tenantSpec struct {
	name       string
	backend    string // execution path ("" = dfa)
	quota      cfgtag.QuotaConfig
	shards     int
	maxStreams int           // per-shard evicting cap
	quarantine time.Duration // faulted-stream rejection TTL (0 = default)
}

func startEnv(t *testing.T, wrap *cfgtag.PlatformConfig, tenants ...tenantSpec) *testEnv {
	t.Helper()
	cfg := wrap
	if cfg == nil {
		cfg = &cfgtag.PlatformConfig{}
	}
	if len(tenants) == 0 {
		tenants = []tenantSpec{{name: "alpha"}}
	}
	for _, ts := range tenants {
		shards := ts.shards
		if shards == 0 {
			shards = 2
		}
		backend := ts.backend
		if backend == "" {
			backend = "dfa"
		}
		cfg.Tenants = append(cfg.Tenants, cfgtag.TenantDef{
			Name:       ts.name,
			Grammar:    testGrammar,
			Options:    []string{"free-running-start"},
			Backend:    backend,
			Shards:     shards,
			Queue:      256,
			MaxStreams: ts.maxStreams,
			Quarantine: cfgtag.Duration(ts.quarantine),
			Quota:      ts.quota,
		})
	}
	srv := serve.NewServer()
	p, err := cfgtag.NewPlatform(cfg, srv.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	srv.Bind(p)
	srv.SetStats(p)
	tln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.AddInput(serve.NewTCPInput(tln, serve.TCPOptions{}))
	srv.AddInput(serve.NewHTTPInput(hln))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	env := &testEnv{t: t, srv: srv, platform: p,
		tcpAddr: tln.Addr().String(), httpAddr: hln.Addr().String()}
	t.Cleanup(func() {
		if err := srv.Shutdown(10 * time.Second); err != nil &&
			!errors.Is(err, serve.ErrServerClosed) {
			t.Errorf("cleanup shutdown: %v", err)
		}
	})
	return env
}

// oracleText renders the serial-oracle output for payload: a fresh DFA
// backend fed the whole payload at once, formatted exactly as the server
// formats it. Faults aside, every network stream carrying payload must
// produce these bytes.
func oracleText(t testing.TB, payload []byte) []byte {
	t.Helper()
	eng, err := cfgtag.Compile("oracle", testGrammar, cfgtag.FreeRunningStart())
	if err != nil {
		t.Fatal(err)
	}
	return oracleTextWith(t, eng, payload)
}

func oracleTextWith(t testing.TB, eng *cfgtag.Engine, payload []byte) []byte {
	t.Helper()
	b, err := eng.NewBackend(cfgtag.DFABackend)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) > 0 {
		if err := b.Feed(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	total := 0
	return serve.AppendBatchText(nil, "", &cfgtag.TagBatch{Tags: b.Matches(), EOS: true}, &total)
}

// tcpStream runs one dedicated-stream connection end to end and returns
// everything the server wrote back.
func tcpStream(t testing.TB, addr, tenant, key string, chunks ...[]byte) []byte {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	w.Write(serve.AppendHandshake(nil, serve.Handshake{Tenant: tenant, Key: key}))
	for _, c := range chunks {
		w.Write(c)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	out, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// httpStream POSTs payload as one stream and returns status + body.
func httpStream(t testing.TB, addr, tenant, key string, payload []byte) (int, []byte) {
	t.Helper()
	url := fmt.Sprintf("http://%s/v1/streams/%s/%s", addr, tenant, key)
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServeTCPStream(t *testing.T) {
	env := startEnv(t, nil)
	want := oracleText(t, []byte(testPayload))
	got := tcpStream(t, env.tcpAddr, "alpha", "s1", []byte(testPayload))
	if !bytes.Equal(got, want) {
		t.Fatalf("stream output mismatch:\n got %q\nwant %q", got, want)
	}
}

func TestServeTCPStreamChunked(t *testing.T) {
	env := startEnv(t, nil)
	want := oracleText(t, []byte(testPayload))
	// Split mid-token: chunk boundaries must not change the output.
	got := tcpStream(t, env.tcpAddr, "alpha", "s1",
		[]byte(testPayload[:7]), []byte(testPayload[7:13]), []byte(testPayload[13:]))
	if !bytes.Equal(got, want) {
		t.Fatalf("chunked output mismatch:\n got %q\nwant %q", got, want)
	}
}

// muxConn is a test client for multiplexed connections.
type muxConn struct {
	t    testing.TB
	conn net.Conn
	w    *bufio.Writer
}

func dialMux(t testing.TB, addr, tenant string) *muxConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriterSize(conn, 64<<10)
	w.Write(serve.AppendHandshake(nil, serve.Handshake{Tenant: tenant, Mux: true}))
	return &muxConn{t: t, conn: conn, w: w}
}

func (mc *muxConn) open(key string) {
	mc.w.Write(serve.AppendFrame(nil, serve.Frame{Op: serve.FrameOpen, Key: key}))
}
func (mc *muxConn) data(key string, p []byte) {
	mc.w.Write(serve.AppendFrame(nil, serve.Frame{Op: serve.FrameData, Key: key, Payload: p}))
}
func (mc *muxConn) closeStream(key string) {
	mc.w.Write(serve.AppendFrame(nil, serve.Frame{Op: serve.FrameClose, Key: key}))
}

// finish flushes, half-closes, and demuxes every response line into
// per-key output (with the "<key> " prefix stripped).
func (mc *muxConn) finish() map[string][]byte {
	mc.t.Helper()
	if err := mc.w.Flush(); err != nil {
		mc.t.Fatal(err)
	}
	if tc, ok := mc.conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	out := make(map[string][]byte)
	sc := bufio.NewScanner(mc.conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		key, rest, ok := strings.Cut(line, " ")
		if !ok {
			mc.t.Fatalf("unparseable response line %q", line)
		}
		out[key] = append(out[key], rest...)
		out[key] = append(out[key], '\n')
	}
	if err := sc.Err(); err != nil {
		mc.t.Fatal(err)
	}
	mc.conn.Close()
	return out
}

func TestServeMux(t *testing.T) {
	env := startEnv(t, nil)
	want := oracleText(t, []byte(testPayload))
	mc := dialMux(t, env.tcpAddr, "alpha")
	keys := []string{"m1", "m2", "m3", "m4"}
	for _, k := range keys {
		mc.open(k)
	}
	// Interleave chunks across streams.
	half := len(testPayload) / 2
	for _, k := range keys {
		mc.data(k, []byte(testPayload[:half]))
	}
	for _, k := range keys {
		mc.data(k, []byte(testPayload[half:]))
	}
	for _, k := range keys {
		mc.closeStream(k)
	}
	out := mc.finish()
	for _, k := range keys {
		if !bytes.Equal(out[k], want) {
			t.Fatalf("stream %s mismatch:\n got %q\nwant %q", k, out[k], want)
		}
	}
}

func TestServeMuxZeroByteStream(t *testing.T) {
	env := startEnv(t, nil)
	mc := dialMux(t, env.tcpAddr, "alpha")
	mc.open("empty")
	mc.closeStream("empty")
	out := mc.finish()
	if got := string(out["empty"]); got != "END 0\n" {
		t.Fatalf("zero-byte stream: got %q, want END 0", got)
	}
}

func TestServeHTTPStream(t *testing.T) {
	env := startEnv(t, nil)
	want := oracleText(t, []byte(testPayload))
	code, body := httpStream(t, env.httpAddr, "alpha", "h1", []byte(testPayload))
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 (body %q)", code, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("http output mismatch:\n got %q\nwant %q", body, want)
	}
}

func TestServeHTTPUnknownTenant(t *testing.T) {
	env := startEnv(t, nil)
	code, _ := httpStream(t, env.httpAddr, "nosuch", "h1", []byte(testPayload))
	if code != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d, want 404", code)
	}
}

func TestServeHealthzAndMetrics(t *testing.T) {
	env := startEnv(t, nil)
	resp, err := http.Get("http://" + env.httpAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	// Generate some traffic, then check the counters show up.
	tcpStream(t, env.tcpAddr, "alpha", "s1", []byte(testPayload))
	resp, err = http.Get("http://" + env.httpAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		fmt.Sprintf(`cfgtag_bytes_total{tenant="alpha"} %d`, len(testPayload)),
		`cfgtag_live_versions{tenant="alpha"} 1`,
		"serve_sessions_opened_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestServeAOTTenantMetrics runs a tenant on the ahead-of-time compiled
// backend over the network: its output must match the DFA oracle byte
// for byte (aot == dfa is the determinizer's contract), and /metrics
// must expose the per-tenant compile-cost gauges.
func TestServeAOTTenantMetrics(t *testing.T) {
	env := startEnv(t, nil,
		tenantSpec{name: "ahead", backend: "aot"},
		tenantSpec{name: "alpha"})
	want := oracleText(t, []byte(testPayload))
	tcpStream(t, env.tcpAddr, "alpha", "d1", []byte(testPayload))
	got := tcpStream(t, env.tcpAddr, "ahead", "s1", []byte(testPayload))
	if !bytes.Equal(got, want) {
		t.Fatalf("aot tenant output mismatch:\n got %q\nwant %q", got, want)
	}
	resp, err := http.Get("http://" + env.httpAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`cfgtag_aot_states{tenant="ahead"} `,
		`cfgtag_aot_classes{tenant="ahead"} `,
		`cfgtag_aot_table_bytes{tenant="ahead"} `,
		`cfgtag_aot_compile_seconds{tenant="ahead"} `,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	// A DFA tenant that never minted an AOT backend must not emit the
	// compile gauges at all.
	if strings.Contains(text, `cfgtag_aot_states{tenant="alpha"}`) {
		t.Errorf("metrics leak aot gauges for non-aot tenant in:\n%s", text)
	}
}

func TestServeBadHandshake(t *testing.T) {
	env := startEnv(t, nil)
	conn, err := net.Dial("tcp", env.tcpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	io.WriteString(conn, "GARBAGE\n")
	out, _ := io.ReadAll(conn)
	if !strings.HasPrefix(string(out), "ERR! bad handshake") {
		t.Fatalf("got %q, want ERR! bad handshake", out)
	}
}

// TestServeQuotaOverNetwork is the per-tenant quota table: MaxStreams
// and BytesPerSec violations surface as clean TCP refusals and HTTP 429s
// while under-quota tenants are untouched.
func TestServeQuotaOverNetwork(t *testing.T) {
	env := startEnv(t, nil,
		tenantSpec{name: "tight", quota: cfgtag.QuotaConfig{MaxStreams: 2}},
		tenantSpec{name: "slow", quota: cfgtag.QuotaConfig{BytesPerSec: 8}},
		tenantSpec{name: "loose"},
	)
	want := oracleText(t, []byte(testPayload))

	t.Run("tcp-max-streams", func(t *testing.T) {
		// Hold two streams of "tight" open at their quota.
		mc := dialMux(t, env.tcpAddr, "tight")
		mc.open("held-1")
		mc.data("held-1", []byte("if "))
		mc.open("held-2")
		mc.data("held-2", []byte("if "))
		if err := mc.w.Flush(); err != nil {
			t.Fatal(err)
		}
		waitFor(t, func() bool {
			n, err := env.platform.LiveStreams("tight")
			return err == nil && n == 2
		})
		// A third stream is refused with a clean ERR line.
		got := tcpStream(t, env.tcpAddr, "tight", "third", []byte(testPayload))
		if string(got) != "ERR quota exceeded\n" {
			t.Fatalf("over-quota TCP stream: got %q", got)
		}
		// The under-quota tenant is unaffected.
		if got := tcpStream(t, env.tcpAddr, "loose", "fine", []byte(testPayload)); !bytes.Equal(got, want) {
			t.Fatalf("loose tenant affected by tight quota: %q", got)
		}
		// Releasing one held stream frees the slot.
		mc.closeStream("held-1")
		mc.closeStream("held-2")
		mc.finish()
		waitFor(t, func() bool {
			n, err := env.platform.LiveStreams("tight")
			return err == nil && n == 0
		})
		if got := tcpStream(t, env.tcpAddr, "tight", "fourth", []byte(testPayload)); !bytes.Equal(got, want) {
			t.Fatalf("post-release stream refused: %q", got)
		}
	})

	t.Run("http-max-streams", func(t *testing.T) {
		mc := dialMux(t, env.tcpAddr, "tight")
		mc.open("held-1")
		mc.data("held-1", []byte("if "))
		mc.open("held-2")
		mc.data("held-2", []byte("if "))
		if err := mc.w.Flush(); err != nil {
			t.Fatal(err)
		}
		waitFor(t, func() bool {
			n, err := env.platform.LiveStreams("tight")
			return err == nil && n == 2
		})
		code, _ := httpStream(t, env.httpAddr, "tight", "h-third", []byte(testPayload))
		if code != http.StatusTooManyRequests {
			t.Fatalf("over-quota POST: status %d, want 429", code)
		}
		if code, body := httpStream(t, env.httpAddr, "loose", "h-fine", []byte(testPayload)); code != http.StatusOK || !bytes.Equal(body, want) {
			t.Fatalf("loose tenant affected: %d %q", code, body)
		}
		mc.closeStream("held-1")
		mc.closeStream("held-2")
		mc.finish()
	})

	t.Run("http-bytes-per-sec", func(t *testing.T) {
		// The one-second burst bucket holds 8 bytes; a payload past that
		// is rejected mid-body with 429.
		code, _ := httpStream(t, env.httpAddr, "slow", "h-big", bytes.Repeat([]byte("x"), 64))
		if code != http.StatusTooManyRequests {
			t.Fatalf("over-rate POST: status %d, want 429", code)
		}
	})

	t.Run("mux-quota-err-line", func(t *testing.T) {
		mc := dialMux(t, env.tcpAddr, "slow")
		mc.open("burst")
		mc.data("burst", bytes.Repeat([]byte("y"), 64))
		mc.closeStream("burst")
		out := mc.finish()
		if got := string(out["burst"]); !strings.Contains(got, "ERR quota exceeded") {
			t.Fatalf("mux over-rate stream: got %q", got)
		}
	})
}

func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeDrain exercises the drain state machine without load: refuse
// new conns, then close listeners.
func TestServeDrain(t *testing.T) {
	env := startEnv(t, nil)
	if err := env.srv.Shutdown(time.Second); err != nil {
		t.Fatalf("shutdown of idle server: %v", err)
	}
	if err := env.srv.Shutdown(time.Second); !errors.Is(err, serve.ErrServerClosed) {
		t.Fatalf("second shutdown: %v, want ErrServerClosed", err)
	}
	if _, err := net.Dial("tcp", env.tcpAddr); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServeDrainTimeout pins the typed error: a client that never closes
// its stream forces the deadline, the stream is still flushed (its END
// line written) before sockets close, and Shutdown reports
// ErrDrainTimeout.
func TestServeDrainTimeout(t *testing.T) {
	env := startEnv(t, nil)
	conn, err := net.Dial("tcp", env.tcpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hs := serve.AppendHandshake(nil, serve.Handshake{Tenant: "alpha", Key: "stuck"})
	conn.Write(append(hs, []byte(testPayload)...))
	waitFor(t, func() bool { return env.srv.ActiveSessions() == 1 })

	var readOut []byte
	var readErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		readOut, readErr = io.ReadAll(conn)
	}()

	err = env.srv.Shutdown(200 * time.Millisecond)
	if !errors.Is(err, serve.ErrDrainTimeout) {
		t.Fatalf("shutdown: %v, want ErrDrainTimeout", err)
	}
	<-done
	if readErr != nil {
		t.Fatalf("client read: %v", readErr)
	}
	want := oracleText(t, []byte(testPayload))
	if !bytes.Equal(readOut, want) {
		t.Fatalf("force-flushed stream: got %q, want %q", readOut, want)
	}
}

// TestServeDeliverFanout checks the fan-out sink adapter sees every
// batch and that its errors feed the pipeline's retry machinery.
func TestServeDeliverFanout(t *testing.T) {
	var mu sync.Mutex
	var tags, eos int
	srv := serve.NewServer()
	srv.AddFanout(func(tenant string, b *cfgtag.TagBatch) error {
		mu.Lock()
		defer mu.Unlock()
		tags += len(b.Tags)
		if b.EOS {
			eos++
		}
		return nil
	})
	cfg := &cfgtag.PlatformConfig{Tenants: []cfgtag.TenantDef{{
		Name: "alpha", Grammar: testGrammar, Options: []string{"free-running-start"},
		Backend: "dfa", Shards: 1,
	}}}
	p, err := cfgtag.NewPlatform(cfg, srv.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	srv.Bind(p)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.AddInput(serve.NewTCPInput(ln, serve.TCPOptions{}))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(5 * time.Second)

	out := tcpStream(t, ln.Addr().String(), "alpha", "s1", []byte(testPayload))
	nTagLines := bytes.Count(out, []byte("TAG "))
	mu.Lock()
	defer mu.Unlock()
	if tags != nTagLines || tags == 0 {
		t.Fatalf("fanout saw %d tags, client saw %d lines", tags, nTagLines)
	}
	if eos != 1 {
		t.Fatalf("fanout saw %d EOS batches, want 1", eos)
	}
}
