package serve_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cfgtag"
	"cfgtag/internal/faultinject"
	"cfgtag/internal/runtime"
	"cfgtag/internal/serve"
)

// soakVariants are the distinct payloads driven through the soak; each
// stream carries one of them, so the serial oracle is computed once per
// variant rather than once per stream.
var soakVariants = [][]byte{
	[]byte("if true then go else stop"),
	[]byte("if false then stop else go"),
	[]byte("if true then if false then go else stop else go"),
	[]byte("go stop if true then go else stop go"),
}

// soakConn is a mux client whose responses are drained by a concurrent
// reader goroutine, so server-side batch writes never stall behind an
// unread socket while tens of thousands of streams are in flight.
type soakConn struct {
	conn       net.Conn
	w          *bufio.Writer
	out        map[string][]byte // written only by the reader goroutine
	readErr    error
	readerDone chan struct{}
}

func dialSoak(addr, tenant string) (*soakConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := &soakConn{
		conn:       conn,
		w:          bufio.NewWriterSize(conn, 64<<10),
		out:        make(map[string][]byte),
		readerDone: make(chan struct{}),
	}
	sc.w.Write(serve.AppendHandshake(nil, serve.Handshake{Tenant: tenant, Mux: true}))
	go sc.reader()
	return sc, nil
}

func (sc *soakConn) reader() {
	defer close(sc.readerDone)
	s := bufio.NewScanner(sc.conn)
	s.Buffer(make([]byte, 64<<10), 1<<20)
	for s.Scan() {
		line := s.Text()
		key, rest, ok := strings.Cut(line, " ")
		if !ok {
			sc.readErr = fmt.Errorf("unparseable response line %q", line)
			return
		}
		sc.out[key] = append(append(sc.out[key], rest...), '\n')
	}
	sc.readErr = s.Err()
}

func (sc *soakConn) open(key string) {
	sc.w.Write(serve.AppendFrame(nil, serve.Frame{Op: serve.FrameOpen, Key: key}))
}
func (sc *soakConn) data(key string, p []byte) {
	sc.w.Write(serve.AppendFrame(nil, serve.Frame{Op: serve.FrameData, Key: key, Payload: p}))
}
func (sc *soakConn) closeStream(key string) {
	sc.w.Write(serve.AppendFrame(nil, serve.Frame{Op: serve.FrameClose, Key: key}))
}

// finish flushes, half-closes, and joins the reader.
func (sc *soakConn) finish() error {
	if err := sc.w.Flush(); err != nil {
		return err
	}
	if tc, ok := sc.conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	<-sc.readerDone
	sc.conn.Close()
	return sc.readErr
}

func soakWait(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("soak: %s not reached in %v", what, d)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// metricValue extracts one counter from the /metrics text.
func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, v)
			}
			return n
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// soakFault returns the trigger marker for global stream index gi, or nil
// if the stream runs clean. Roughly 1% of mux streams are faulted,
// alternating injected errors and injected panics.
func soakFault(gi int) []byte {
	if gi%97 != 0 {
		return nil
	}
	if (gi/97)%2 == 0 {
		return faultinject.TriggerError
	}
	return faultinject.TriggerPanic
}

// TestServeSoak drives 50k+ concurrent keyed streams (5k with -short)
// over real TCP mux, dedicated TCP and HTTP sockets against a platform
// with fault injection enabled, and asserts:
//
//   - every non-faulted stream's output is byte-identical to the serial
//     DFA oracle for its payload;
//   - every faulted stream ends in an ERR line, and faults never leak
//     into neighbouring streams;
//   - /metrics totals reconcile exactly with the client-observed counts
//     (matches vs TAG lines, sessions opened vs streams driven).
func TestServeSoak(t *testing.T) {
	conns, perConn, tcpN, httpN := 100, 510, 200, 200
	if testing.Short() {
		conns, perConn, tcpN, httpN = 25, 200, 50, 50
	}
	tenants := []string{"t0", "t1", "t2", "t3"}
	cfg := &cfgtag.PlatformConfig{
		WrapFactory: func(f runtime.Factory) runtime.Factory {
			return faultinject.Factory(f, faultinject.Config{Triggers: true})
		},
	}
	specs := make([]tenantSpec, len(tenants))
	for i, name := range tenants {
		// Quarantine must outlive the soak: an expired quarantine would
		// let a faulted stream's late bytes re-create it as a phantom
		// stream and break the metrics reconciliation.
		specs[i] = tenantSpec{name: name, shards: 4, quarantine: 10 * time.Minute}
	}
	env := startEnv(t, cfg, specs...)

	eng, err := cfgtag.Compile("soak", testGrammar, cfgtag.FreeRunningStart())
	if err != nil {
		t.Fatal(err)
	}
	oracles := make([][]byte, len(soakVariants))
	tagsPer := make([]int, len(soakVariants))
	for i, p := range soakVariants {
		oracles[i] = oracleTextWith(t, eng, p)
		tagsPer[i] = bytes.Count(oracles[i], []byte("TAG "))
		if tagsPer[i] == 0 {
			t.Fatalf("variant %d produces no tags; soak would prove nothing", i)
		}
	}

	muxTotal := conns * perConn
	faulted := 0
	for gi := 0; gi < muxTotal; gi++ {
		if soakFault(gi) != nil {
			faulted++
		}
	}
	total := muxTotal + tcpN + httpN

	release := make(chan struct{})
	var phase1, wg sync.WaitGroup
	var clientTags atomic.Int64

	// Mux cohort: conns connections, perConn concurrent keyed streams
	// each. Phase 1 opens every stream and sends the first half of its
	// payload; phase 2 (after the barrier) finishes and closes them.
	scs := make([]*soakConn, conns)
	for c := 0; c < conns; c++ {
		phase1.Add(1)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var once sync.Once
			sig := func() { once.Do(phase1.Done) }
			defer sig()
			sc, err := dialSoak(env.tcpAddr, tenants[c%len(tenants)])
			if err != nil {
				t.Errorf("conn %d: dial: %v", c, err)
				return
			}
			scs[c] = sc
			for i := 0; i < perConn; i++ {
				gi := c*perConn + i
				key := fmt.Sprintf("c%d-s%d", c, i)
				p := soakVariants[gi%len(soakVariants)]
				first := p[:len(p)/2]
				if trig := soakFault(gi); trig != nil {
					first = append(append([]byte{}, trig...), first...)
				}
				sc.open(key)
				sc.data(key, first)
			}
			if err := sc.w.Flush(); err != nil {
				t.Errorf("conn %d: phase-1 flush: %v", c, err)
				return
			}
			sig()
			<-release
			for i := 0; i < perConn; i++ {
				gi := c*perConn + i
				key := fmt.Sprintf("c%d-s%d", c, i)
				p := soakVariants[gi%len(soakVariants)]
				sc.data(key, p[len(p)/2:])
				sc.closeStream(key)
			}
			if err := sc.finish(); err != nil {
				t.Errorf("conn %d: %v", c, err)
			}
		}(c)
	}

	// Dedicated-TCP cohort: one connection per stream, held across the
	// barrier so they are concurrent with the mux cohort.
	for j := 0; j < tcpN; j++ {
		phase1.Add(1)
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			var once sync.Once
			sig := func() { once.Do(phase1.Done) }
			defer sig()
			tenant := tenants[j%len(tenants)]
			p := soakVariants[j%len(soakVariants)]
			conn, err := net.Dial("tcp", env.tcpAddr)
			if err != nil {
				t.Errorf("tcp %d: dial: %v", j, err)
				return
			}
			defer conn.Close()
			hs := serve.AppendHandshake(nil, serve.Handshake{
				Tenant: tenant, Key: fmt.Sprintf("tcp-%d", j)})
			if _, err := conn.Write(append(hs, p[:len(p)/2]...)); err != nil {
				t.Errorf("tcp %d: write: %v", j, err)
				return
			}
			sig()
			<-release
			if _, err := conn.Write(p[len(p)/2:]); err != nil {
				t.Errorf("tcp %d: write: %v", j, err)
				return
			}
			conn.(*net.TCPConn).CloseWrite()
			out, err := io.ReadAll(conn)
			if err != nil {
				t.Errorf("tcp %d: read: %v", j, err)
				return
			}
			if !bytes.Equal(out, oracles[j%len(soakVariants)]) {
				t.Errorf("tcp %d: output mismatch:\n got %q\nwant %q",
					j, out, oracles[j%len(soakVariants)])
				return
			}
			clientTags.Add(int64(tagsPer[j%len(soakVariants)]))
		}(j)
	}

	// HTTP cohort: one chunked POST per stream, the body held open
	// across the barrier.
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}
	for j := 0; j < httpN; j++ {
		phase1.Add(1)
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			var once sync.Once
			sig := func() { once.Do(phase1.Done) }
			defer sig()
			tenant := tenants[j%len(tenants)]
			p := soakVariants[j%len(soakVariants)]
			pr, pw := io.Pipe()
			url := fmt.Sprintf("http://%s/v1/streams/%s/http-%d", env.httpAddr, tenant, j)
			go func() {
				pw.Write(p[:len(p)/2])
				sig()
				<-release
				pw.Write(p[len(p)/2:])
				pw.Close()
			}()
			resp, err := client.Post(url, "application/octet-stream", pr)
			if err != nil {
				t.Errorf("http %d: %v", j, err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("http %d: status %d err %v", j, resp.StatusCode, err)
				return
			}
			if !bytes.Equal(body, oracles[j%len(soakVariants)]) {
				t.Errorf("http %d: output mismatch:\n got %q\nwant %q",
					j, body, oracles[j%len(soakVariants)])
				return
			}
			clientTags.Add(int64(tagsPer[j%len(soakVariants)]))
		}(j)
	}

	// Barrier: every cohort has opened all its streams and parked. Only
	// faulted mux streams may have ended (their ERR batch lands as soon
	// as a shard worker sees the trigger), so the concurrency floor is
	// everything else, live at one instant.
	phase1.Wait()
	floor := total - faulted
	soakWait(t, 5*time.Minute, fmt.Sprintf("%d concurrent sessions", floor),
		func() bool { return env.srv.ActiveSessions() >= floor })
	t.Logf("soak: %d sessions concurrently active (target floor %d, %d streams total)",
		env.srv.ActiveSessions(), floor, total)
	close(release)
	wg.Wait()

	// Every mux stream: faulted ones end in ERR, clean ones are
	// byte-identical to the oracle.
	for c := 0; c < conns; c++ {
		sc := scs[c]
		if sc == nil {
			continue // dial failed; already reported
		}
		if errOut, ok := sc.out["ERR!"]; ok {
			t.Errorf("conn %d: connection-level error: %q", c, errOut)
		}
		for i := 0; i < perConn; i++ {
			gi := c*perConn + i
			key := fmt.Sprintf("c%d-s%d", c, i)
			out := sc.out[key]
			if soakFault(gi) != nil {
				if !bytes.Contains(out, []byte("ERR")) {
					t.Errorf("faulted stream %s: no ERR in %q", key, out)
				}
				if bytes.Contains(out, []byte("TAG ")) {
					t.Errorf("faulted stream %s: unexpected tags in %q", key, out)
				}
				continue
			}
			want := oracles[gi%len(soakVariants)]
			if !bytes.Equal(out, want) {
				t.Errorf("stream %s: output mismatch:\n got %q\nwant %q", key, out, want)
				continue
			}
			clientTags.Add(int64(tagsPer[gi%len(soakVariants)]))
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Expected tag volume, computed independently of the wire.
	var wantTags int64
	for gi := 0; gi < muxTotal; gi++ {
		if soakFault(gi) == nil {
			wantTags += int64(tagsPer[gi%len(soakVariants)])
		}
	}
	for j := 0; j < tcpN; j++ {
		wantTags += int64(tagsPer[j%len(soakVariants)])
	}
	for j := 0; j < httpN; j++ {
		wantTags += int64(tagsPer[j%len(soakVariants)])
	}
	if got := clientTags.Load(); got != wantTags {
		t.Errorf("clients observed %d TAG lines, expected %d", got, wantTags)
	}

	// Reconcile /metrics against the client-observed counts.
	soakWait(t, time.Minute, "all sessions ended",
		func() bool { return env.srv.ActiveSessions() == 0 })
	resp, err := http.Get("http://" + env.httpAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	var matches, quarantined, panics int64
	for _, tn := range tenants {
		matches += metricValue(t, text, fmt.Sprintf("cfgtag_matches_total{tenant=%q}", tn))
		quarantined += metricValue(t, text, fmt.Sprintf("cfgtag_streams_quarantined_total{tenant=%q}", tn))
		panics += metricValue(t, text, fmt.Sprintf("cfgtag_panics_recovered_total{tenant=%q}", tn))
	}
	if matches != clientTags.Load() {
		t.Errorf("metrics report %d matches, clients saw %d TAG lines", matches, clientTags.Load())
	}
	if quarantined != int64(faulted) {
		t.Errorf("metrics report %d quarantined streams, injected %d faults", quarantined, faulted)
	}
	if panics == 0 {
		t.Error("metrics report no recovered panics; panic triggers did not fire")
	}
	if got := metricValue(t, text, "serve_sessions_opened_total"); got != int64(total) {
		t.Errorf("metrics report %d sessions opened, drove %d streams", got, total)
	}
	if got := metricValue(t, text, "serve_output_write_errors_total"); got != 0 {
		t.Errorf("metrics report %d output write errors, want 0", got)
	}
}

// TestServeDrainUnderLoad starts a shutdown while hundreds of streams are
// mid-flight and asserts none of their bytes are lost: every stream's
// output is still byte-identical to the oracle, new connections are
// refused during the drain, and Shutdown returns clean (no timeout).
func TestServeDrainUnderLoad(t *testing.T) {
	conns, perConn := 8, 50
	if testing.Short() {
		conns, perConn = 4, 25
	}
	env := startEnv(t, nil)
	want := oracleText(t, []byte(testPayload))
	payload := []byte(testPayload)
	half := len(payload) / 2

	release := make(chan struct{})
	var phase1, wg sync.WaitGroup
	scs := make([]*soakConn, conns)
	for c := 0; c < conns; c++ {
		phase1.Add(1)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var once sync.Once
			sig := func() { once.Do(phase1.Done) }
			defer sig()
			sc, err := dialSoak(env.tcpAddr, "alpha")
			if err != nil {
				t.Errorf("conn %d: dial: %v", c, err)
				return
			}
			scs[c] = sc
			for i := 0; i < perConn; i++ {
				key := fmt.Sprintf("d%d-s%d", c, i)
				sc.open(key)
				sc.data(key, payload[:half])
			}
			if err := sc.w.Flush(); err != nil {
				t.Errorf("conn %d: flush: %v", c, err)
				return
			}
			sig()
			<-release
			for i := 0; i < perConn; i++ {
				key := fmt.Sprintf("d%d-s%d", c, i)
				sc.data(key, payload[half:])
				sc.closeStream(key)
			}
			if err := sc.finish(); err != nil {
				t.Errorf("conn %d: %v", c, err)
			}
		}(c)
	}
	phase1.Wait()
	soakWait(t, time.Minute, "all streams active",
		func() bool { return env.srv.ActiveSessions() == conns*perConn })

	// Start draining while every stream is mid-payload.
	shutRes := make(chan error, 1)
	go func() { shutRes <- env.srv.Shutdown(time.Minute) }()
	soakWait(t, time.Minute, "draining state", env.srv.Draining)

	// New connections are refused with a reason while the drain runs.
	if conn, err := net.Dial("tcp", env.tcpAddr); err == nil {
		out, _ := io.ReadAll(conn)
		conn.Close()
		if !bytes.Contains(out, []byte("draining")) {
			t.Errorf("connection during drain got %q, want draining refusal", out)
		}
	}

	// Release the in-flight clients; the drain must wait for them.
	close(release)
	wg.Wait()
	if err := <-shutRes; err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	for c := 0; c < conns; c++ {
		sc := scs[c]
		if sc == nil {
			continue
		}
		for i := 0; i < perConn; i++ {
			key := fmt.Sprintf("d%d-s%d", c, i)
			if out := sc.out[key]; !bytes.Equal(out, want) {
				t.Errorf("drained stream %s: got %q, want %q", key, out, want)
			}
		}
	}
	if n := env.srv.ActiveSessions(); n != 0 {
		t.Errorf("%d sessions survived the drain", n)
	}
}

// TestServeReloadUnderLoad reloads the tenant's grammar repeatedly while
// streams flow, including streams straddling each reload; every output
// stays byte-identical and the version set converges back to one.
func TestServeReloadUnderLoad(t *testing.T) {
	env := startEnv(t, nil)
	want := oracleText(t, []byte(testPayload))
	payload := []byte(testPayload)
	half := len(payload) / 2

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var streams atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("r%d-%d", w, i)
				out := tcpStream(t, env.tcpAddr, "alpha", key, payload)
				if !bytes.Equal(out, want) {
					t.Errorf("worker %d stream %d: got %q, want %q", w, i, out, want)
					return
				}
				streams.Add(1)
			}
		}(w)
	}

	const reloads = 5
	for r := 0; r < reloads; r++ {
		// A stream that spans the reload: first half against the old
		// version, second half after the swap.
		mc := dialMux(t, env.tcpAddr, "alpha")
		mc.open("straddle")
		mc.data("straddle", payload[:half])
		if err := mc.w.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, err := env.platform.Reload("alpha", testGrammar); err != nil {
			t.Fatalf("reload %d: %v", r, err)
		}
		mc.data("straddle", payload[half:])
		mc.closeStream("straddle")
		out := mc.finish()
		if !bytes.Equal(out["straddle"], want) {
			t.Fatalf("straddling stream at reload %d: got %q, want %q",
				r, out["straddle"], want)
		}
	}
	close(stop)
	wg.Wait()
	if streams.Load() == 0 {
		t.Fatal("no background streams completed during reloads")
	}

	cur, err := env.platform.CurrentVersion("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if cur != 1+reloads {
		t.Fatalf("current version %d after %d reloads, want %d", cur, reloads, 1+reloads)
	}
	waitFor(t, func() bool {
		vs, err := env.platform.LiveVersions("alpha")
		return err == nil && len(vs) == 1 && vs[0] == cur
	})
}
