package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"cfgtag"
)

// HTTPInput serves three routes on one listener:
//
//	POST /v1/streams/<tenant>/<key>   request body = one keyed stream;
//	                                  response body = its tag events
//	GET  /metrics                     text key/value counters
//	GET  /healthz                     200 "ok" or 503 "draining"
//
// The chunked request body is fed into the core as it arrives; the
// response is held until the stream's EOS batch has been delivered, so
// admission failures (quota, unknown tenant) map to clean HTTP statuses
// instead of a torn body.
type HTTPInput struct {
	ln  net.Listener
	srv *http.Server
	s   *Server
}

// NewHTTPInput wraps an already-listening socket.
func NewHTTPInput(ln net.Listener) *HTTPInput {
	h := &HTTPInput{ln: ln}
	h.srv = &http.Server{Handler: h}
	return h
}

// Addr reports the listener address.
func (h *HTTPInput) Addr() net.Addr { return h.ln.Addr() }

// Serve runs the HTTP server until Close.
func (h *HTTPInput) Serve(s *Server) error {
	h.s = s
	err := h.srv.Serve(h.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Close shuts the HTTP server down, giving in-flight handlers (whose
// streams have already been flushed by the drain sequence) a moment to
// finish writing before forcing the sockets closed.
func (h *HTTPInput) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		return h.srv.Close()
	}
	return nil
}

// httpStatus maps core errors onto HTTP statuses.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, cfgtag.ErrOverloaded), errors.Is(err, cfgtag.ErrResourceExhausted):
		// Load shedding and budget exhaustion are both transient
		// server-side pressure: the client should back off and retry.
		return http.StatusTooManyRequests
	case errors.Is(err, cfgtag.ErrQuotaExceeded):
		return http.StatusTooManyRequests
	case errors.Is(err, cfgtag.ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrDraining), errors.Is(err, cfgtag.ErrPlatformClosed),
		errors.Is(err, cfgtag.ErrPipelineClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDuplicateStream):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// httpError writes err with its mapped status; 429 responses carry
// Retry-After so shed clients back off instead of hammering the shard
// queues they just overflowed.
func httpError(w http.ResponseWriter, err error) {
	code := httpStatus(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, err.Error(), code)
}

func (h *HTTPInput) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s := h.s
	switch {
	case r.URL.Path == "/healthz":
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
	case r.URL.Path == "/metrics":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, s.MetricsText())
	case strings.HasPrefix(r.URL.Path, "/v1/streams/"):
		h.serveStream(s, w, r)
	default:
		http.NotFound(w, r)
	}
}

func (h *HTTPInput) serveStream(s *Server, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/streams/")
	tenant, key, ok := strings.Cut(rest, "/")
	if !ok || !validName([]byte(tenant)) || !validName([]byte(key)) {
		http.Error(w, "want /v1/streams/<tenant>/<key>", http.StatusBadRequest)
		return
	}
	bo := newBufferOutput()
	sess, err := s.OpenStream(tenant, key, bo)
	if err != nil {
		httpError(w, err)
		return
	}
	core := s.Core()
	sent := false
	buf := make([]byte, 32<<10)
	for {
		n, rerr := r.Body.Read(buf)
		if n > 0 {
			if serr := core.Send(tenant, key, buf[:n]); serr != nil {
				h.failStream(s, tenant, key, sent, serr)
				if errors.Is(serr, cfgtag.ErrStreamQuarantined) {
					// The fault batch already ended the stream; return
					// what it wrote.
					w.WriteHeader(http.StatusOK)
					w.Write(bo.Bytes())
					return
				}
				s.CountRefusal()
				httpError(w, serr)
				return
			}
			sent = true
		}
		if rerr != nil {
			if rerr != io.EOF {
				// Client aborted mid-body: flush the partial stream,
				// nobody is left to read the response.
				h.failStream(s, tenant, key, sent, rerr)
				return
			}
			break
		}
	}
	if cerr := core.CloseStream(tenant, key); cerr != nil {
		if !errors.Is(cerr, cfgtag.ErrStreamQuarantined) {
			s.EndStream(tenant, key)
			httpError(w, cerr)
			return
		}
	}
	// Hold the response until the EOS batch lands; server shutdown
	// force-flushes through Core.Close, so this wait always terminates.
	<-sess.Done()
	w.WriteHeader(http.StatusOK)
	w.Write(bo.Bytes())
}

// failStream releases a stream whose body pump failed: mid-life streams
// are flushed through the core so the pipeline does not leak them, and
// the session is unregistered either way.
func (h *HTTPInput) failStream(s *Server, tenant, key string, sent bool, err error) {
	if sent && !errors.Is(err, cfgtag.ErrStreamQuarantined) {
		s.Core().CloseStream(tenant, key)
	}
	s.EndStream(tenant, key)
}
