package serve

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzServeFrame throws arbitrary bytes at the connection-facing parser
// (handshake line followed by a frame stream) and checks the invariants
// that keep a hostile client from hurting the server: every error is
// either io.EOF, io.ErrUnexpectedEOF or a typed ErrProtocol; payloads
// never exceed MaxFramePayload; keys and tenants returned to the caller
// are always valid names; and the parser terminates.
func FuzzServeFrame(f *testing.F) {
	// Well-formed exchanges.
	f.Add([]byte("CFGTAG/1 STREAM alpha key-1\nif true then go else stop"))
	f.Add([]byte("CFGTAG/1 MUX alpha\nOPEN s1\nDATA s1 5\nhello\nCLOSE s1\n"))
	f.Add([]byte("CFGTAG/1 MUX t\nOPEN a\nOPEN b\nDATA a 0\n\nCLOSE b\nCLOSE a\n"))
	// Truncations at every interesting boundary.
	f.Add([]byte("CFGTAG/1"))
	f.Add([]byte("CFGTAG/1 MUX alpha\nDATA s1 10\nhel"))
	f.Add([]byte("CFGTAG/1 MUX alpha\nOPEN s1\nDATA s1 5\n"))
	// Oversized declarations and lines.
	f.Add([]byte("CFGTAG/1 MUX a\nDATA s1 1048577\n"))
	f.Add([]byte("CFGTAG/1 MUX a\nDATA s1 99999999\n"))
	f.Add([]byte("CFGTAG/1 STREAM " + strings.Repeat("t", 300) + " k\n"))
	f.Add(bytes.Repeat([]byte("x"), MaxLineLen+64))
	// Binary garbage and malformed headers.
	f.Add([]byte("\x00\x01\x02\x03\xff\xfe\n"))
	f.Add([]byte("CFGTAG/1 MUX a\nDATA s1 007\n1234567"))
	f.Add([]byte("CFGTAG/1 MUX a\nDATA s1 -3\n"))
	f.Add([]byte("CFGTAG/1 MUX a\nDATA s1 3\nabcX"))
	f.Add([]byte("CFGTAG/9 STREAM a b\n"))
	f.Add([]byte("CFGTAG/1 MUX \x7f\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		hs, err := fr.ReadHandshake()
		if err != nil {
			checkParseErr(t, err)
			return
		}
		if !validName([]byte(hs.Tenant)) {
			t.Fatalf("handshake accepted invalid tenant %q", hs.Tenant)
		}
		if !hs.Mux && !validName([]byte(hs.Key)) {
			t.Fatalf("handshake accepted invalid key %q", hs.Key)
		}
		if !hs.Mux {
			return // rest of the connection is opaque stream payload
		}
		for i := 0; ; i++ {
			fr2, err := fr.ReadFrame()
			if err != nil {
				checkParseErr(t, err)
				return
			}
			if !validName([]byte(fr2.Key)) {
				t.Fatalf("frame %d accepted invalid key %q", i, fr2.Key)
			}
			if len(fr2.Payload) > MaxFramePayload {
				t.Fatalf("frame %d payload %d exceeds cap", i, len(fr2.Payload))
			}
			if fr2.Op != FrameOpen && fr2.Op != FrameData && fr2.Op != FrameClose {
				t.Fatalf("frame %d has unknown op %d", i, fr2.Op)
			}
		}
	})
}

// checkParseErr asserts a parser error is one of the declared kinds.
func checkParseErr(t *testing.T, err error) {
	t.Helper()
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrProtocol) {
		return
	}
	t.Fatalf("parser returned undeclared error %v", err)
}
