package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cfgtag"
)

// Core is what the server serves: the multi-tenant Send/CloseStream
// surface of a cfgtag.Platform (which implements it directly), or any
// adapter with the same semantics — Send routes one chunk of a keyed
// stream, CloseStream ends it, and Close flushes every open stream and
// delivers its final (EOS) batch before returning.
type Core interface {
	Send(tenant, stream string, data []byte) error
	CloseStream(tenant, stream string) error
	Close() error
}

// Stats is the optional observability surface behind /metrics;
// *cfgtag.Platform implements it directly.
type Stats interface {
	Tenants() []string
	Metrics(tenant string) (cfgtag.BackendCounters, int, error)
	Faults(tenant string) (cfgtag.FaultStats, error)
	LiveVersions(tenant string) ([]int, error)
}

// Output receives one network stream's tag batches, in stream order; the
// batch with EOS set is the last. Deliver must not retain the batch.
// Output errors are absorbed by the server (counted, the output is
// dropped) rather than propagated into the pipeline's retry machinery —
// a client that stopped reading must not stall or dead-letter a tenant.
type Output interface {
	Deliver(b *cfgtag.TagBatch) error
}

// TenantSink observes every delivered batch of every tenant — the
// fan-out hook for mirroring tag events into logs, brokers or test
// recorders. Unlike Output errors, a TenantSink error propagates into
// the pipeline's sink retry/dead-letter machinery.
type TenantSink func(tenant string, b *cfgtag.TagBatch) error

// ErrDrainTimeout is returned by Shutdown when live sessions were still
// open at the deadline; the remaining streams were then force-flushed
// through Core.Close (their EOS batches still delivered) before
// listeners closed. Test with errors.Is.
var ErrDrainTimeout = errors.New("serve: drain deadline exceeded")

// ErrDraining rejects new connections and new streams while the server
// drains. Test with errors.Is.
var ErrDraining = errors.New("serve: draining")

// ErrServerClosed is returned by operations on a server that has fully
// shut down. Test with errors.Is.
var ErrServerClosed = errors.New("serve: server closed")

// ErrDuplicateStream rejects opening a (tenant, key) session that is
// already open on the server. Test with errors.Is.
var ErrDuplicateStream = errors.New("serve: duplicate stream")

// ErrSlowConsumer marks a write back to a client that missed its write
// deadline: the client stopped reading faster than the server tags, so
// its output is dropped (the session goes dead) while the pipeline keeps
// flowing. Test with errors.Is against the connWriter's sticky error.
var ErrSlowConsumer = errors.New("serve: slow consumer")

// StreamInput is a pluggable stream source: an accept loop feeding the
// server's Core. Serve blocks until the input is closed; the server
// calls Close during the final shutdown stage, after every session's
// EOS batch has been delivered.
type StreamInput interface {
	Serve(s *Server) error
	Close() error
}

// Server states.
const (
	stateRunning int32 = iota
	stateDraining
	stateClosed
)

type sessKey struct{ tenant, key string }

// session is one live network stream: its output and its completion
// signal, closed when the stream's EOS batch has been delivered (or the
// session aborted before admission).
type session struct {
	tenant string
	key    string
	out    Output
	dead   bool // output write failed; keep consuming, stop writing
	done   chan struct{}
}

// Done is closed once the session's stream has fully ended — its EOS
// batch delivered and written to the output.
func (ss *session) Done() <-chan struct{} { return ss.done }

// Server multiplexes stream inputs onto a Core and routes delivered tag
// batches back to each stream's Output. All methods are safe for
// concurrent use.
type Server struct {
	core  Core
	stats Stats

	state atomic.Int32

	mu       sync.Mutex
	sessions map[sessKey]*session
	drained  chan struct{} // non-nil while draining; closed at 0 sessions

	fanouts []TenantSink
	inputs  []StreamInput
	inputWG sync.WaitGroup

	shutdownMu sync.Mutex // serializes Shutdown

	// counters surfaced in /metrics
	opened        atomic.Int64 // sessions ever opened
	ended         atomic.Int64 // sessions fully ended
	refused       atomic.Int64 // conns/streams refused (draining, dup, quota…)
	writeErrors   atomic.Int64 // output writes dropped on client error
	slowConsumers atomic.Int64 // sessions gone dead on a write deadline
}

// NewServer returns a server with no inputs bound yet; call Bind, then
// AddInput/AddFanout/SetStats, then Start.
func NewServer() *Server {
	return &Server{sessions: make(map[sessKey]*session)}
}

// Bind attaches the core the inputs feed. It must be called before
// Start. Binding after construction (rather than at it) breaks the
// construction cycle with cfgtag.NewPlatform, whose deliver callback is
// the server's Deliver method.
func (s *Server) Bind(core Core) { s.core = core }

// SetStats attaches the /metrics data source.
func (s *Server) SetStats(st Stats) { s.stats = st }

// AddFanout registers an extra sink observing every delivered batch.
func (s *Server) AddFanout(fn TenantSink) { s.fanouts = append(s.fanouts, fn) }

// AddInput registers a stream input; Start runs its accept loop.
func (s *Server) AddInput(in StreamInput) { s.inputs = append(s.inputs, in) }

// Core returns the bound core (for input implementations).
func (s *Server) Core() Core { return s.core }

// Start launches every registered input's accept loop.
func (s *Server) Start() error {
	if s.core == nil {
		return errors.New("serve: Start before Bind")
	}
	for _, in := range s.inputs {
		in := in
		s.inputWG.Add(1)
		go func() {
			defer s.inputWG.Done()
			in.Serve(s)
		}()
	}
	return nil
}

// Draining reports whether the server has left the running state.
func (s *Server) Draining() bool { return s.state.Load() != stateRunning }

// ActiveSessions reports the number of open network streams.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Refused counts connections and streams turned away (draining,
// duplicate keys, quota rejections surfaced by inputs via CountRefusal).
func (s *Server) Refused() int64 { return s.refused.Load() }

// CountRefusal lets inputs record a refusal they handled themselves.
func (s *Server) CountRefusal() { s.refused.Add(1) }

// CountSlowConsumer records a client write that missed its deadline.
func (s *Server) CountSlowConsumer() { s.slowConsumers.Add(1) }

// SlowConsumers counts sessions whose output went dead on a missed write
// deadline.
func (s *Server) SlowConsumers() int64 { return s.slowConsumers.Load() }

// OpenStream registers a live network stream and its output. It fails
// with ErrDraining once drain has begun and ErrDuplicateStream when the
// (tenant, key) session is already open. The session must be ended —
// normally by the EOS batch flowing through Deliver, or explicitly with
// EndStream on paths where no EOS will ever arrive (admission failures).
func (s *Server) OpenStream(tenant, key string, out Output) (*session, error) {
	sk := sessKey{tenant, key}
	ss := &session{tenant: tenant, key: key, out: out, done: make(chan struct{})}
	s.mu.Lock()
	// Checked under mu — Shutdown flips the state under the same lock,
	// so no session can register after the drain waiter is armed.
	if s.state.Load() != stateRunning {
		s.mu.Unlock()
		s.refused.Add(1)
		return nil, ErrDraining
	}
	if _, ok := s.sessions[sk]; ok {
		s.mu.Unlock()
		s.refused.Add(1)
		return nil, fmt.Errorf("%w: %s/%s", ErrDuplicateStream, tenant, key)
	}
	s.sessions[sk] = ss
	s.mu.Unlock()
	s.opened.Add(1)
	return ss, nil
}

// EndStream ends a session that will never see an EOS batch — a stream
// refused at admission, or one whose batches bypass Deliver entirely (an
// adapter core delivering to its own sinks calls this on EOS).
// Idempotent; unknown sessions are ignored.
func (s *Server) EndStream(tenant, key string) {
	s.mu.Lock()
	ss := s.takeSessionLocked(sessKey{tenant, key})
	s.mu.Unlock()
	if ss != nil {
		close(ss.done)
	}
}

// takeSessionLocked removes and returns the session (nil if absent) and
// signals the drain waiter when the last one goes.
func (s *Server) takeSessionLocked(sk sessKey) *session {
	ss, ok := s.sessions[sk]
	if !ok {
		return nil
	}
	delete(s.sessions, sk)
	s.ended.Add(1)
	if len(s.sessions) == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
	return ss
}

// Deliver is the Core's deliver callback: it fans the batch out to the
// registered TenantSinks (whose errors propagate, feeding the pipeline's
// retry/DLQ machinery) and writes it to the stream's session output
// (whose errors are absorbed — the client is gone, the pipeline is not).
// On EOS the session is ended and its Done channel closed.
func (s *Server) Deliver(tenant string, b *cfgtag.TagBatch) error {
	for _, fn := range s.fanouts {
		if err := fn(tenant, b); err != nil {
			return err
		}
	}
	sk := sessKey{tenant, b.Stream}
	s.mu.Lock()
	ss := s.sessions[sk]
	if ss != nil && b.EOS {
		s.takeSessionLocked(sk)
	}
	s.mu.Unlock()
	if ss == nil {
		return nil
	}
	if ss.out != nil && !ss.dead {
		if err := ss.out.Deliver(b); err != nil {
			ss.dead = true
			s.writeErrors.Add(1)
		}
	}
	if b.EOS {
		close(ss.done)
	}
	return nil
}

// Shutdown drains the server: stop accepting new connections and
// streams, wait up to timeout for live sessions to end on their own,
// then close the Core — flushing every remaining stream and delivering
// its EOS batch — and finally close the listeners. It returns
// ErrDrainTimeout (after still completing the shutdown) when sessions
// were force-flushed, ErrServerClosed on a repeat call, and otherwise
// the Core's close error.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.shutdownMu.Lock()
	defer s.shutdownMu.Unlock()
	if s.state.Load() == stateClosed {
		return ErrServerClosed
	}

	// Stage 1: refuse new work. Inputs consult Draining per connection
	// and OpenStream rejects, so existing sessions keep flowing.
	s.mu.Lock()
	var drained chan struct{}
	if len(s.sessions) > 0 {
		drained = make(chan struct{})
		s.drained = drained
	}
	s.state.Store(stateDraining)
	s.mu.Unlock()

	// Stage 2: wait for live sessions to finish naturally.
	var timedOut bool
	if drained != nil {
		if timeout <= 0 {
			<-drained
		} else {
			t := time.NewTimer(timeout)
			select {
			case <-drained:
				t.Stop()
			case <-t.C:
				timedOut = true
			}
		}
	}

	// Stage 3: close the core. Pipeline close semantics flush every
	// still-open stream and deliver its EOS batch — through Deliver and
	// the session outputs — before returning, so even a timed-out drain
	// puts a final END/ERR line on every client before the sockets go.
	var closeErr error
	if s.core != nil {
		closeErr = s.core.Close()
	}

	// Stage 4: close listeners and connections, join the accept loops.
	s.state.Store(stateClosed)
	for _, in := range s.inputs {
		in.Close()
	}
	s.inputWG.Wait()

	// Any session still registered had no EOS route at all (e.g. its
	// core was closed out from under it); release its waiters.
	s.mu.Lock()
	for sk := range s.sessions {
		if ss := s.takeSessionLocked(sk); ss != nil {
			close(ss.done)
		}
	}
	s.mu.Unlock()

	if timedOut {
		return ErrDrainTimeout
	}
	return closeErr
}
