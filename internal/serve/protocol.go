// Package serve is the network-facing service layer: pluggable stream
// inputs (TCP, HTTP) feeding a Core — normally a cfgtag.Platform —
// through the multi-tenant Send/CloseStream contract, per-stream tag
// outputs written back to clients, a text /metrics + /healthz endpoint,
// and a graceful drain state machine for SIGTERM-style shutdown.
//
// The TCP wire protocol (one line-oriented handshake, then either a raw
// stream or key-multiplexed frames) is deliberately small enough to
// parse with a hardened reader; FrameReader is the fuzz surface.
package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Wire-protocol limits. Every limit is enforced by the parser before any
// allocation proportional to attacker-controlled sizes.
const (
	// MaxLineLen caps a handshake or frame-header line, newline included.
	MaxLineLen = 4096
	// MaxNameLen caps a tenant name or stream key on the wire.
	MaxNameLen = 256
	// MaxFramePayload caps one DATA frame's payload.
	MaxFramePayload = 1 << 20
)

// handshakeMagic starts every protocol-mode connection.
const handshakeMagic = "CFGTAG/1"

// Typed parse errors; all wire rejections wrap ErrProtocol.
var (
	// ErrProtocol is the sentinel wrapped by every handshake/frame
	// rejection. Test with errors.Is.
	ErrProtocol = errors.New("serve: protocol error")
	// ErrBadHandshake rejects a malformed handshake line.
	ErrBadHandshake = fmt.Errorf("%w: bad handshake", ErrProtocol)
	// ErrBadFrame rejects a malformed frame header.
	ErrBadFrame = fmt.Errorf("%w: bad frame", ErrProtocol)
	// ErrLineTooLong rejects a header line beyond MaxLineLen.
	ErrLineTooLong = fmt.Errorf("%w: line too long", ErrProtocol)
	// ErrBadName rejects a tenant or key that is empty, over MaxNameLen,
	// or contains bytes outside printable non-space ASCII.
	ErrBadName = fmt.Errorf("%w: bad name", ErrProtocol)
	// ErrPayloadTooLarge rejects a DATA length beyond MaxFramePayload.
	ErrPayloadTooLarge = fmt.Errorf("%w: payload too large", ErrProtocol)
)

// Handshake is the parsed first line of a protocol-mode connection:
//
//	CFGTAG/1 STREAM <tenant> <key>\n   the rest of the conn is one stream
//	CFGTAG/1 MUX <tenant>\n            OPEN/DATA/CLOSE frames follow
type Handshake struct {
	Tenant string
	Key    string // stream mode only
	Mux    bool
}

// FrameOp is a mux-mode frame verb.
type FrameOp byte

const (
	// FrameOpen opens a keyed stream on the connection.
	FrameOpen FrameOp = iota
	// FrameData carries payload bytes for an open stream.
	FrameData
	// FrameClose ends a keyed stream.
	FrameClose
)

// Frame is one parsed mux-mode frame:
//
//	OPEN <key>\n
//	DATA <key> <n>\n<n payload bytes>\n
//	CLOSE <key>\n
//
// Payload aliases the reader's internal buffer and is only valid until
// the next ReadFrame call.
type Frame struct {
	Op      FrameOp
	Key     string
	Payload []byte
}

// validName reports whether b is a legal tenant name or stream key:
// 1..MaxNameLen bytes of printable ASCII with no spaces.
func validName(b []byte) bool {
	if len(b) == 0 || len(b) > MaxNameLen {
		return false
	}
	for _, c := range b {
		if c <= ' ' || c >= 0x7f {
			return false
		}
	}
	return true
}

// FrameReader parses the TCP wire protocol from r with hard limits on
// every field. It is not safe for concurrent use.
type FrameReader struct {
	r       *bufio.Reader
	line    []byte
	payload []byte
}

// NewFrameReader wraps r for handshake and frame parsing.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 32<<10)}
}

// readLine reads one \n-terminated line of at most MaxLineLen bytes and
// returns it without the newline. A line at the limit with no newline is
// ErrLineTooLong; EOF mid-line is io.ErrUnexpectedEOF; immediate EOF is
// io.EOF.
func (fr *FrameReader) readLine() ([]byte, error) {
	fr.line = fr.line[:0]
	for {
		c, err := fr.r.ReadByte()
		if err != nil {
			if err == io.EOF && len(fr.line) > 0 {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if c == '\n' {
			return fr.line, nil
		}
		if len(fr.line) >= MaxLineLen-1 {
			return nil, ErrLineTooLong
		}
		fr.line = append(fr.line, c)
	}
}

// fields splits line on single spaces into at most max+1 parts; the
// protocol forbids empty fields, so doubled spaces fail validName later.
func fields(line []byte, dst [][]byte) [][]byte {
	start := 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ' ' {
			dst = append(dst, line[start:i])
			start = i + 1
		}
	}
	return dst
}

// ReadHandshake parses the connection's first line.
func (fr *FrameReader) ReadHandshake() (Handshake, error) {
	line, err := fr.readLine()
	if err != nil {
		if errors.Is(err, ErrProtocol) {
			return Handshake{}, fmt.Errorf("%w: %w", ErrBadHandshake, err)
		}
		return Handshake{}, err
	}
	var parts [][]byte
	parts = fields(line, parts)
	if len(parts) < 3 || string(parts[0]) != handshakeMagic {
		return Handshake{}, ErrBadHandshake
	}
	switch string(parts[1]) {
	case "STREAM":
		if len(parts) != 4 || !validName(parts[2]) || !validName(parts[3]) {
			return Handshake{}, fmt.Errorf("%w: %w", ErrBadHandshake, ErrBadName)
		}
		return Handshake{Tenant: string(parts[2]), Key: string(parts[3])}, nil
	case "MUX":
		if len(parts) != 3 || !validName(parts[2]) {
			return Handshake{}, fmt.Errorf("%w: %w", ErrBadHandshake, ErrBadName)
		}
		return Handshake{Tenant: string(parts[2]), Mux: true}, nil
	}
	return Handshake{}, ErrBadHandshake
}

// ReadFrame parses the next mux-mode frame. io.EOF marks a clean end of
// the connection between frames.
func (fr *FrameReader) ReadFrame() (Frame, error) {
	line, err := fr.readLine()
	if err != nil {
		if errors.Is(err, ErrProtocol) {
			return Frame{}, fmt.Errorf("%w: %w", ErrBadFrame, err)
		}
		return Frame{}, err
	}
	var parts [][]byte
	parts = fields(line, parts)
	switch string(parts[0]) {
	case "OPEN", "CLOSE":
		if len(parts) != 2 || !validName(parts[1]) {
			return Frame{}, fmt.Errorf("%w: %w", ErrBadFrame, ErrBadName)
		}
		op := FrameOpen
		if parts[0][0] == 'C' {
			op = FrameClose
		}
		return Frame{Op: op, Key: string(parts[1])}, nil
	case "DATA":
		if len(parts) != 3 || !validName(parts[1]) {
			return Frame{}, fmt.Errorf("%w: %w", ErrBadFrame, ErrBadName)
		}
		n, err := parseLen(parts[2])
		if err != nil {
			return Frame{}, err
		}
		if cap(fr.payload) < n {
			fr.payload = make([]byte, n)
		}
		buf := fr.payload[:n]
		if _, err := io.ReadFull(fr.r, buf); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
		// The trailing newline keeps the stream resynchronizable and
		// catches a desynced length immediately.
		c, err := fr.r.ReadByte()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
		if c != '\n' {
			return Frame{}, fmt.Errorf("%w: missing payload terminator", ErrBadFrame)
		}
		return Frame{Op: FrameData, Key: string(parts[1]), Payload: buf}, nil
	}
	return Frame{}, ErrBadFrame
}

// parseLen parses a strict non-negative decimal ≤ MaxFramePayload: no
// signs, no leading zeros (except "0" itself), digits only.
func parseLen(b []byte) (int, error) {
	if len(b) == 0 || len(b) > 8 {
		return 0, fmt.Errorf("%w: bad length", ErrBadFrame)
	}
	if len(b) > 1 && b[0] == '0' {
		return 0, fmt.Errorf("%w: bad length", ErrBadFrame)
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("%w: bad length", ErrBadFrame)
		}
		n = n*10 + int(c-'0')
	}
	if n > MaxFramePayload {
		return 0, ErrPayloadTooLarge
	}
	return n, nil
}

// AppendHandshake renders a handshake line into dst (client-side helper,
// also used by the soak harness).
func AppendHandshake(dst []byte, h Handshake) []byte {
	dst = append(dst, handshakeMagic...)
	if h.Mux {
		dst = append(dst, " MUX "...)
		dst = append(dst, h.Tenant...)
	} else {
		dst = append(dst, " STREAM "...)
		dst = append(dst, h.Tenant...)
		dst = append(dst, ' ')
		dst = append(dst, h.Key...)
	}
	return append(dst, '\n')
}

// AppendFrame renders a frame into dst (client-side helper).
func AppendFrame(dst []byte, f Frame) []byte {
	switch f.Op {
	case FrameOpen:
		dst = append(dst, "OPEN "...)
		dst = append(dst, f.Key...)
	case FrameClose:
		dst = append(dst, "CLOSE "...)
		dst = append(dst, f.Key...)
	case FrameData:
		dst = append(dst, "DATA "...)
		dst = append(dst, f.Key...)
		dst = append(dst, ' ')
		dst = appendUint(dst, len(f.Payload))
		dst = append(dst, '\n')
		dst = append(dst, f.Payload...)
	}
	return append(dst, '\n')
}

func appendUint(dst []byte, n int) []byte {
	if n == 0 {
		return append(dst, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(dst, tmp[i:]...)
}
