package stream

import (
	"fmt"
	"io"

	"cfgtag/internal/core"
)

// Match reports one token detection: the tokenizer instance that completed
// and the offset of the lexeme's final byte. The instance identifies both
// the terminal and its grammatical context (the paper's tag).
type Match struct {
	// InstanceID indexes Spec.Instances.
	InstanceID int
	// End is the absolute offset of the last byte of the lexeme.
	End int64
}

// Tagger is a streaming token tagger over one input. It is not safe for
// concurrent use; create one Tagger per stream (they share the compiled
// engine).
type Tagger struct {
	e *engine

	// OnMatch receives every detection in input order. Detections sharing
	// an End offset are simultaneous hardware assertions; EncodeIndex
	// reproduces what the index encoder would emit for such a group.
	OnMatch func(Match)

	active  []uint64
	scatter []uint64
	pending []uint64
	scratch []uint64

	pos       int64
	have      bool // one byte of lookahead buffered
	heldByte  byte
	closed    bool
	emitStamp []int64 // per-instance last emission position, for dedupe

	// Errors counts recovery events: bytes after which the engine was dead
	// and the section 5.2 recovery re-armed it. Always zero with
	// RecoveryNone.
	Errors int64
	// OnError, if set, is called with the offset of each such byte.
	OnError func(pos int64)

	// Collisions counts residual runtime index collisions: cycles where
	// two instances outside a common static conflict set asserted
	// together, so the OR-tree encoder's output would be the OR of
	// unrelated indices. The static analysis (core.Spec.ConflictSets) is
	// an approximation; this is its runtime audit.
	Collisions int64
	// OnCollision, if set, receives the offset and the two instance IDs.
	OnCollision func(pos int64, a, b int)

	firstEmit int // first instance emitted this cycle, -1 when none
}

// NewTagger compiles the spec (cheap per extra Tagger: masks are shared via
// the engine embedded in the returned value).
func NewTagger(spec *core.Spec) *Tagger {
	e := compile(spec)
	t := &Tagger{e: e}
	t.active = make([]uint64, e.words)
	t.scatter = make([]uint64, e.words)
	t.pending = make([]uint64, e.words)
	t.scratch = make([]uint64, e.words)
	t.emitStamp = make([]int64, len(spec.Instances))
	t.Reset()
	return t
}

// Spec returns the specification the tagger was compiled from.
func (t *Tagger) Spec() *core.Spec { return t.e.spec }

// Reset rewinds the tagger to stream start: chains idle, start instances
// pending.
func (t *Tagger) Reset() {
	clearMask(t.active)
	clearMask(t.pending)
	copy(t.pending, t.e.startPending)
	t.pos = 0
	t.have = false
	t.closed = false
	t.Errors = 0
	t.Collisions = 0
	for i := range t.emitStamp {
		t.emitStamp[i] = -1
	}
}

// Write feeds stream bytes; matches fire on OnMatch as they are confirmed
// (one byte of lookahead latency for longest-match). It never fails; the
// error is for io.Writer conformance.
func (t *Tagger) Write(p []byte) (int, error) {
	if t.closed {
		return 0, fmt.Errorf("stream: Write after Close")
	}
	for _, b := range p {
		if t.have {
			t.step(t.heldByte, t.e.extendC[t.e.classOf[b]])
		}
		t.heldByte = b
		t.have = true
	}
	return len(p), nil
}

// Close flushes the final byte (whose lookahead is end-of-stream) and
// prevents further writes.
func (t *Tagger) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	if t.have {
		t.step(t.heldByte, t.e.zeroMask) // end of stream extends nothing
		t.have = false
	}
	return nil
}

// Pos returns the number of bytes fully processed (confirmed, not merely
// buffered for lookahead).
func (t *Tagger) Pos() int64 { return t.pos }

// step advances one byte; ext is the extend mask of the lookahead byte
// (zeroMask at end of stream). One fused pass computes
//
//	next   = (((active<<1) & succ) | (active & self) | scatter | pending) & match[b]
//	ending = next & last & ^ext                         (figure 7)
//
// and reloads the pending latch on every non-delimiter byte (the inverted
// delimiter register enable of section 3.2).
func (t *Tagger) step(b byte, ext []uint64) {
	e := t.e
	c := e.classOf[b]
	delim := e.delimC[c]
	mb := e.matchC[c]

	// Scatter the sparse non-chain Glushkov edges first (rare: pure
	// literal/class grammars have none).
	var scattered []uint64
	if e.hasExtras {
		any := uint64(0)
		for w := 0; w < e.words; w++ {
			src := t.active[w] & e.extraSrc[w]
			t.scratch[w] = src
			any |= src
		}
		if any != 0 {
			clearMask(t.scatter)
			forEachBit(t.scratch, func(p int) {
				orInto(t.scatter, e.extraTo[p])
			})
			scattered = t.scatter
		}
	}

	words := e.words
	active, pending, scratch := t.active[:words], t.pending[:words], t.scratch[:words]
	succ, self, last := e.succ[:words], e.self[:words], e.last[:words]
	always := e.alwaysPending[:words]
	mbw, extw := mb[:words], ext[:words]
	var carry, emitted, anyActive uint64
	for w := 0; w < words; w++ {
		a := active[w]
		shifted := a<<1 | carry
		carry = a >> 63
		nxw := (shifted & succ[w]) | (a & self[w]) | pending[w] | always[w]
		if scattered != nil {
			nxw |= scattered[w]
		}
		nxw &= mbw[w]
		end := nxw & last[w] &^ extw[w]
		scratch[w] = end
		emitted |= end
		anyActive |= nxw
		active[w] = nxw
		if !delim {
			pending[w] = 0
		}
	}

	if emitted != 0 {
		t.emit(scratch)
	}
	if anyActive == 0 && e.recoveryMask != nil {
		// Dead-state detector (section 5.2): no chain is active; if no
		// tokenizer is pending either, re-arm the recovery set so
		// processing continues from the point of the error.
		dead := true
		for w := 0; w < words; w++ {
			if t.pending[w] != 0 {
				dead = false
				break
			}
		}
		if dead {
			copy(t.pending, e.recoveryMask)
			t.Errors++
			if t.OnError != nil {
				t.OnError(t.pos)
			}
		}
	}
	t.pos++
}

// emit walks the ending bit set, wiring follow pendings and reporting
// matches, deduplicated per instance per cycle (a pattern can reach several
// accepting positions simultaneously).
func (t *Tagger) emit(ending []uint64) {
	e := t.e
	t.firstEmit = -1
	forEachBit(ending, func(p int) {
		k := int(e.owner[p])
		if t.emitStamp[k] == t.pos {
			return
		}
		t.emitStamp[k] = t.pos
		if t.firstEmit < 0 {
			t.firstEmit = k
		} else if a := t.firstEmit; e.conflictSetID[a] < 0 || e.conflictSetID[a] != e.conflictSetID[k] {
			// Simultaneous assertions outside one equation 5 set: the
			// encoder output would be an unrelated OR.
			t.Collisions++
			if t.OnCollision != nil {
				t.OnCollision(t.pos, a, k)
			}
		}
		in := e.spec.Instances[k]
		for _, f := range in.Follow {
			orInto(t.pending, e.firstMask[f])
		}
		if t.OnMatch != nil {
			t.OnMatch(Match{InstanceID: k, End: t.pos})
		}
	})
}

// TagReader streams from r until EOF, returning all matches (Reset first,
// Close implied). Use Write/Close directly for callback-style streaming.
func (t *Tagger) TagReader(r io.Reader) ([]Match, error) {
	t.Reset()
	var out []Match
	prev := t.OnMatch
	t.OnMatch = func(m Match) { out = append(out, m) }
	defer func() { t.OnMatch = prev }()
	buf := make([]byte, 32*1024)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if _, werr := t.Write(buf[:n]); werr != nil {
				return out, werr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, err
		}
	}
	t.Close()
	return out, nil
}

// Tag runs a whole buffer through a fresh pass and returns the matches.
// The tagger is Reset first; Close is implied.
func (t *Tagger) Tag(data []byte) []Match {
	t.Reset()
	var out []Match
	prev := t.OnMatch
	t.OnMatch = func(m Match) { out = append(out, m) }
	defer func() { t.OnMatch = prev }()
	t.Write(data)
	t.Close()
	return out
}

// EncodeIndex reproduces the token index encoder output for a set of
// simultaneous detections: the bitwise OR of the instance indices
// (section 3.4). Under the equation 5 assignment the result equals the
// highest-priority member's index.
func EncodeIndex(spec *core.Spec, group []Match) int {
	idx := 0
	for _, m := range group {
		idx |= spec.Instances[m.InstanceID].Index
	}
	return idx
}

// GroupByEnd partitions matches into runs sharing an End offset, preserving
// order — the per-cycle groups a hardware back-end would see.
func GroupByEnd(matches []Match) [][]Match {
	var out [][]Match
	for i := 0; i < len(matches); {
		j := i + 1
		for j < len(matches) && matches[j].End == matches[i].End {
			j++
		}
		out = append(out, matches[i:j])
		i = j
	}
	return out
}
