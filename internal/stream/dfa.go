// Lazy determinization of the bit-parallel NFA, in the style of RE2's
// on-the-fly DFA: the paper collapses the PDA into an FSA, and this file
// collapses that FSA's bit-parallel execution into a cached DFA whose
// states are hash-consed (active, pending) bitset pairs.
//
// Per input byte the NFA engine recomputes the same bitset transition for
// every repeated (state, byte) pair. The DFA computes it once — with the
// full NFA step — and caches the outcome on a transition edge indexed by
// the byte's equivalence class: the successor state, the cycle's emitted
// instances (dedup'd, in bit order), their collision pairs and the
// recovery verdict. Subsequent visits are a table lookup.
//
// Longest-match lookahead (figure 7) makes some transitions depend on the
// *next* byte: an accepting position p with extendAny[p] set emits only
// when the lookahead cannot extend the match. Edges whose accept
// candidates are all lookahead-independent get one shared outcome; the
// rest get a per-lookahead-class outcome row, filled on demand by the same
// NFA fallback — so variable-length/self-loop emissions cost one NFA step
// per (state, class, lookahead-class) triple, once.
//
// The cache is shared: a DFACache is a concurrent read-mostly structure
// that any number of streams (one DFA each) execute against. Transitions
// fill under the cache mutex and publish atomically into per-slot
// atomic.Pointer cells, so readers are lock-free — in steady state the hot
// loop never takes a lock, and determinization is paid once per
// (grammar, config) per cache, not once per stream.
//
// The cache is bounded: when the state count would exceed MaxStates the
// whole cache is dropped and rebuilt from live traffic (the RE2 policy),
// so adversarial inputs degrade to NFA speed instead of unbounded memory.
// Streams parked in pre-reset states stay valid — their cached edges still
// work, and their next fills re-converge into the rebuilt map. Hits,
// misses and resets are surfaced via CacheStats.
package stream

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"cfgtag/internal/core"
)

// DefaultDFAMaxStates bounds the transition cache when DFAConfig.MaxStates
// is zero. Real grammars settle into a few dozen reachable states; the
// default leaves two orders of magnitude of headroom before the reset
// policy engages.
const DefaultDFAMaxStates = 1024

// DFAConfig tunes the lazy determinization.
type DFAConfig struct {
	// MaxStates bounds the number of cached DFA states (0 =
	// DefaultDFAMaxStates, minimum 2). When a new state would exceed the
	// bound the whole cache is reset and rebuilt from the current state.
	MaxStates int
	// NoAccel disables skip-ahead acceleration, forcing every byte through
	// the per-byte edge lookup. The accelerated and unaccelerated paths are
	// byte-for-byte equivalent; the switch exists for differential testing
	// and benchmarking.
	NoAccel bool
	// MemDelta, when set, is called with an estimated byte delta every time
	// the cache grows a state (positive) or resets wholesale (negative), so
	// an aggregate memory gauge can account the cache alongside arenas and
	// charts. Calls happen under the cache mutex; the callback must not
	// re-enter the cache.
	MemDelta func(delta int64)
}

// Skip-ahead acceleration bounds: a state accelerates only when at most
// dfaAccelMaxInteresting byte classes can move it (the rest self-loop with
// no events), and the scan uses literal bytes.IndexByte-style search when
// those classes cover at most dfaAccelMaxLiterals byte values.
const (
	dfaAccelMaxInteresting = 3
	dfaAccelMaxLiterals    = 3
)

// dfaAccel is the skip-ahead plan of one accelerable state: a state that,
// for every "boring" byte class b consumed under any boring lookahead
// class, transitions to itself with no emissions, no collision, no
// recovery and no pending change. Runs of boring bytes are skipped with a
// literal scan (RE2/Hyperscan-style acceleration) instead of per-byte edge
// lookups.
type dfaAccel struct {
	// boring[c] reports whether byte class c is inert for this state, both
	// as the consumed byte and as the figure-7 lookahead.
	boring []bool
	// lits holds the interesting byte values when few enough for a literal
	// scan; empty means the state absorbs every byte (scan to end of chunk).
	lits []byte
	// table is the fallback membership table when the interesting classes
	// span too many byte values for a literal scan.
	table *[256]bool
}

// scan returns the index of the first interesting byte at or after i, or
// len(p) when the rest of the chunk is boring.
func (a *dfaAccel) scan(p []byte, i int) int {
	if a.table != nil {
		t := a.table
		for ; i < len(p); i++ {
			if t[p[i]] {
				return i
			}
		}
		return i
	}
	switch len(a.lits) {
	case 0:
		return len(p)
	case 1:
		if j := bytes.IndexByte(p[i:], a.lits[0]); j >= 0 {
			return i + j
		}
		return len(p)
	case 2:
		b0, b1 := a.lits[0], a.lits[1]
		for ; i < len(p); i++ {
			if b := p[i]; b == b0 || b == b1 {
				return i
			}
		}
		return i
	default:
		b0, b1, b2 := a.lits[0], a.lits[1], a.lits[2]
		for ; i < len(p); i++ {
			if b := p[i]; b == b0 || b == b1 || b == b2 {
				return i
			}
		}
		return i
	}
}

// dfaOutcome is everything one cached transition does: successor state,
// the cycle's emissions in NFA bit order (deduplicated per instance), the
// aligned collision flags (a collision is always against the cycle's first
// emission), and whether the section 5.2 recovery re-armed the engine.
// hasEvents folds "anything beyond the state move" into one hot-loop load.
// Outcomes are immutable once published.
type dfaOutcome struct {
	next      *dfaState
	emits     []int32
	collide   []bool
	recovered bool
	hasEvents bool
}

// dfaEdge is one (state, byte-class) transition: outcomes indexed by the
// lookahead byte's class (last slot = end of stream). Lookahead-independent
// edges fill every slot with one shared outcome before the edge is
// published; conditional edges (accept candidates under figure 7
// lookahead) keep the precomputed next-active set and fill slots on
// demand, each slot published atomically.
type dfaEdge struct {
	outs       []atomic.Pointer[dfaOutcome]
	nextActive []uint64 // nil for lookahead-independent edges
}

// dfaState is one hash-consed (active, pending) pair with its lazily
// filled transition rows, indexed by byte class. fast[c] short-circuits
// lookahead-independent edges to their single outcome — the common case,
// served with one load fewer than the general rows[c].outs[look] path.
// The slot cells are atomic so concurrent streams read them lock-free
// while the fill path (under the cache mutex) publishes into them; an
// atomic pointer load is a plain load on the hot architectures, so the
// sharing costs the single-stream path nothing.
type dfaState struct {
	active  []uint64
	pending []uint64
	fast    []atomic.Pointer[dfaOutcome]
	rows    []atomic.Pointer[dfaEdge]
	accel   *dfaAccel // nil unless the state qualifies for skip-ahead
}

// DFACache is the shared transition cache of one (grammar, config) pair: a
// concurrent read-mostly structure any number of streams execute against.
// Readers (the DFA hot loop) are lock-free; fills serialize on mu and
// publish completed outcomes atomically. Create one cache per pipeline (or
// per backend-factory version) and mint one DFA per stream with NewDFA —
// determinization then happens once per cache, not once per stream.
type DFACache struct {
	e   *engine
	cfg DFAConfig

	// mu serializes fills and whole-cache resets; the states map and
	// keyBuf are only touched with mu held.
	mu     sync.Mutex
	states map[string]*dfaState
	keyBuf []byte

	// start is the canonical stream-start state, re-seeded on every
	// whole-cache reset so Reset never needs the map.
	start atomic.Pointer[dfaState]

	// stateBytes is the per-state charge reported through cfg.MemDelta: the
	// state object, its mask copies, its outcome/edge pointer rows, and the
	// map entry that indexes it. Lazily filled edges are charged up front at
	// this flat estimate rather than tracked individually.
	stateBytes int64

	nStates atomic.Int64 // len(states), readable without mu
	fills   atomic.Int64 // fleet-wide NFA fallback computations
	resets  atomic.Int64 // fleet-wide whole-cache resets
}

// NewDFACache compiles the spec and returns an empty shared transition
// cache. The engine masks are shared with any Tagger compiled from the
// same call chain.
func NewDFACache(spec *core.Spec, cfg DFAConfig) *DFACache {
	return newDFACache(compile(spec), cfg)
}

func newDFACache(e *engine, cfg DFAConfig) *DFACache {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = DefaultDFAMaxStates
	}
	if cfg.MaxStates < 2 {
		cfg.MaxStates = 2
	}
	c := &DFACache{
		e:          e,
		cfg:        cfg,
		states:     make(map[string]*dfaState),
		keyBuf:     make([]byte, 16*e.words),
		stateBytes: int64(160 + 32*e.words + 16*e.numClasses),
	}
	c.mu.Lock()
	c.start.Store(c.canonical(e.zeroMask, e.startPending))
	c.mu.Unlock()
	return c
}

// Spec returns the specification the cache was compiled from.
func (c *DFACache) Spec() *core.Spec { return c.e.spec }

// NewDFA mints a stream tagger executing against this shared cache. The
// DFA itself is single-stream (not safe for concurrent use), but any
// number of DFAs from one cache may run concurrently.
func (c *DFACache) NewDFA() *DFA {
	d := &DFA{e: c.e, cache: c}
	d.Reset()
	return d
}

// States reports the number of states currently hash-consed in the cache.
// It never exceeds the configured MaxStates bound.
func (c *DFACache) States() int { return int(c.nStates.Load()) }

// MaxStates reports the configured cache bound.
func (c *DFACache) MaxStates() int { return c.cfg.MaxStates }

// Stats reports the cache's fleet-wide lifetime totals: fills is the
// number of NFA fallback computations performed (by any stream), resets
// the number of whole-cache resets forced by the MaxStates bound. With N
// streams of identical traffic sharing the cache, fills stays what a
// single stream would have paid — that is the amortization the shared
// cache buys.
func (c *DFACache) Stats() (fills, resets int64) {
	return c.fills.Load(), c.resets.Load()
}

// DFA is a streaming token tagger over one input, equivalent byte for byte
// to Tagger but executing through a lazy DFA cache. It is not safe for
// concurrent use; mint one per stream from a shared DFACache (concurrent
// streams then share determinization work), or use NewDFA/Clone for a
// private cache.
type DFA struct {
	e     *engine
	cache *DFACache

	cur *dfaState

	// OnMatch receives every detection in input order (identical to
	// Tagger.OnMatch on the same input).
	OnMatch func(Match)
	// OnError receives section 5.2 recovery offsets, as Tagger.OnError.
	OnError func(pos int64)
	// OnCollision receives residual index collisions, as
	// Tagger.OnCollision.
	OnCollision func(pos int64, a, b int)

	// Errors and Collisions mirror Tagger's counters.
	Errors     int64
	Collisions int64

	pos       int64
	have      bool
	heldByte  byte
	heldClass int
	closed    bool

	hits   int64
	misses int64
	resets int64
}

// NewDFA compiles the spec and returns a lazy-DFA tagger with a private
// transition cache (shared with no other stream). For many streams of one
// grammar, build one DFACache and mint DFAs from it instead.
func NewDFA(spec *core.Spec, cfg DFAConfig) *DFA {
	return NewDFACache(spec, cfg).NewDFA()
}

func newDFA(e *engine, cfg DFAConfig) *DFA {
	return newDFACache(e, cfg).NewDFA()
}

// Clone creates an independent DFA sharing this one's compiled engine but
// with its own private (empty) transition cache and stream state. To share
// the cache instead, mint siblings from one DFACache.
func (d *DFA) Clone() *DFA { return newDFA(d.e, d.cache.cfg) }

// Cache returns the transition cache this DFA executes against.
func (d *DFA) Cache() *DFACache { return d.cache }

// Spec returns the specification the DFA was compiled from.
func (d *DFA) Spec() *core.Spec { return d.e.spec }

// Reset rewinds to stream start for reuse. The transition cache is
// retained (it belongs to the cache, not the stream): reusing a DFA across
// streams of the same traffic shape runs warm.
func (d *DFA) Reset() {
	d.pos = 0
	d.have = false
	d.closed = false
	d.Errors = 0
	d.Collisions = 0
	d.cur = d.cache.start.Load()
}

// Pos returns the number of bytes fully processed (confirmed, not merely
// buffered for lookahead).
func (d *DFA) Pos() int64 { return d.pos }

// CacheStats reports this stream's lifetime cache totals: bytes served
// without an NFA step (cached outcomes plus bytes consumed by skip-ahead
// acceleration), bytes that required an NFA fallback computation by this
// stream, and whole-cache resets this stream triggered. hits+misses always
// equals the number of bytes this DFA fully processed; on a shared cache,
// transitions another stream already filled count as hits here.
func (d *DFA) CacheStats() (hits, misses, resets int64) {
	return d.hits, d.misses, d.resets
}

// CacheStates reports the number of states currently cached. It never
// exceeds the configured MaxStates bound.
func (d *DFA) CacheStates() int { return d.cache.States() }

// MaxStates reports the configured cache bound.
func (d *DFA) MaxStates() int { return d.cache.cfg.MaxStates }

// Write feeds stream bytes; matches fire on OnMatch as they are confirmed
// (one byte of lookahead latency, exactly as Tagger).
//
// The loop is the engine's hot path: in steady state every byte resolves
// to one classOf lookup, one cached-edge load and one cached-outcome load,
// all lock-free. Only uncached transitions (and their emission/recovery
// bookkeeping) drop into the locked fill path.
func (d *DFA) Write(p []byte) (int, error) {
	if d.closed {
		return 0, fmt.Errorf("stream: Write after Close")
	}
	if len(p) == 0 {
		return 0, nil
	}
	i := 0
	classOf := &d.e.classOf
	if !d.have {
		d.heldByte = p[0]
		d.heldClass = int(classOf[p[0]])
		d.have = true
		i = 1
	}
	c := d.heldClass
	cur := d.cur
	pos := d.pos
	var hits int64
	for ; i < len(p); i++ {
		// Skip-ahead: when the state self-loops on the held class, burn
		// through the run of boring bytes with a literal scan. The bytes
		// collapsed are exactly the loop iterations whose consumed byte AND
		// lookahead are both boring; the byte before the first interesting
		// lookahead goes through the normal path below, so conditional
		// (figure 7) emissions still see their lookahead.
		if a := cur.accel; a != nil && a.boring[c] {
			if j := a.scan(p, i); j > i {
				hits += int64(j - i)
				pos += int64(j - i)
				c = int(classOf[p[j-1]])
				i = j
				if i == len(p) {
					break
				}
			}
		}
		nc := int(classOf[p[i]])
		if out := cur.fast[c].Load(); out != nil {
			hits++
			if out.hasEvents {
				d.pos = pos
				d.deliver(out)
			}
			cur = out.next
			pos++
			c = nc
			continue
		}
		if edge := cur.rows[c].Load(); edge != nil {
			if out := edge.outs[nc].Load(); out != nil {
				hits++
				if out.hasEvents {
					d.pos = pos
					d.deliver(out)
				}
				cur = out.next
				pos++
				c = nc
				continue
			}
		}
		// Uncached transition: fall back to the NFA step for this byte.
		d.cur, d.pos = cur, pos
		d.process(c, nc)
		cur, pos = d.cur, d.pos
		c = nc
	}
	d.cur, d.pos = cur, pos
	d.hits += hits
	d.heldByte = p[len(p)-1]
	d.heldClass = c
	return len(p), nil
}

// Close flushes the final byte (whose lookahead is end-of-stream) and
// prevents further writes.
func (d *DFA) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	if d.have {
		d.process(d.heldClass, d.e.numClasses) // EOS lookahead slot
		d.have = false
	}
	return nil
}

// Tag runs a whole buffer through a fresh pass and returns the matches
// (Reset first, Close implied). The cache stays warm across calls.
func (d *DFA) Tag(data []byte) []Match {
	d.Reset()
	var out []Match
	prev := d.OnMatch
	d.OnMatch = func(m Match) { out = append(out, m) }
	defer func() { d.OnMatch = prev }()
	d.Write(data)
	d.Close()
	return out
}

// process advances one byte through the cache's slow path, filling the
// missing edge or conditional outcome under the cache mutex; c is the
// byte's equivalence class, look the lookahead byte's class (e.numClasses
// at end of stream). The slots are re-checked under the lock: when a
// sibling stream filled the transition first, this byte counts as a hit.
func (d *DFA) process(c, look int) {
	st := d.cur
	ca := d.cache
	ca.mu.Lock()
	edge := st.rows[c].Load()
	filled := false
	if edge == nil {
		edge = ca.fillEdge(st, c, d)
		filled = true
	}
	out := edge.outs[look].Load()
	if out == nil {
		out = ca.fillCond(st, edge, c, look, d)
		filled = true
	}
	ca.mu.Unlock()
	if filled {
		d.misses++
	} else {
		d.hits++
	}
	if out.hasEvents {
		d.deliver(out)
	}
	d.cur = out.next
	d.pos++
}

// deliver fires the cached emission metadata of one transition at the
// current position: collision pairs (always against the cycle's first
// emission) interleaved before their matches, exactly as Tagger.emit, then
// the recovery event.
func (d *DFA) deliver(out *dfaOutcome) {
	if len(out.emits) > 0 {
		first := int(out.emits[0])
		for i, k := range out.emits {
			if out.collide[i] {
				d.Collisions++
				if d.OnCollision != nil {
					d.OnCollision(d.pos, first, int(k))
				}
			}
			if d.OnMatch != nil {
				d.OnMatch(Match{InstanceID: int(k), End: d.pos})
			}
		}
	}
	if out.recovered {
		d.Errors++
		if d.OnError != nil {
			d.OnError(d.pos)
		}
	}
}

// fillEdge computes the NFA transition for (st, class c) and caches it:
// the next active set, and — when every accept candidate is
// lookahead-independent — the single shared outcome. Conditional edges get
// an empty per-lookahead row instead. Must be called with c.mu held; by
// is the stream performing the fill (it pays for any cache reset).
func (c *DFACache) fillEdge(st *dfaState, cls int, by *DFA) *dfaEdge {
	e := c.e
	c.fills.Add(1)
	words := e.words
	nextActive := make([]uint64, words)

	// Scatter the sparse non-chain Glushkov edges (rare; slow path only).
	var scattered []uint64
	if e.hasExtras {
		any := uint64(0)
		for w := 0; w < words; w++ {
			any |= st.active[w] & e.extraSrc[w]
		}
		if any != 0 {
			scattered = make([]uint64, words)
			for w := 0; w < words; w++ {
				nextActive[w] = st.active[w] & e.extraSrc[w] // borrow as scratch
			}
			forEachBit(nextActive, func(p int) {
				orInto(scattered, e.extraTo[p])
			})
			clearMask(nextActive)
		}
	}

	mb := e.matchC[cls]
	var carry uint64
	conditional := false
	for w := 0; w < words; w++ {
		a := st.active[w]
		shifted := a<<1 | carry
		carry = a >> 63
		nx := (shifted & e.succ[w]) | (a & e.self[w]) | st.pending[w] | e.alwaysPending[w]
		if scattered != nil {
			nx |= scattered[w]
		}
		nx &= mb[w]
		nextActive[w] = nx
		if nx&e.last[w]&e.extendAny[w] != 0 {
			conditional = true
		}
	}

	edge := &dfaEdge{outs: make([]atomic.Pointer[dfaOutcome], e.numClasses+1)}
	if conditional {
		edge.nextActive = nextActive
		// Publish the edge with its (immutable) next-active set; outcome
		// slots fill on demand.
		st.rows[cls].Store(edge)
		return edge
	}
	ending := make([]uint64, words)
	for w := 0; w < words; w++ {
		ending[w] = nextActive[w] & e.last[w]
	}
	out := c.buildOutcome(st, cls, nextActive, ending, by)
	// Fill every slot before the edge (and the fast cell) become visible,
	// so a lock-free reader never sees a half-built unconditional edge.
	for i := range edge.outs {
		edge.outs[i].Store(out)
	}
	st.rows[cls].Store(edge)
	st.fast[cls].Store(out)
	return edge
}

// fillCond computes and caches the outcome of a conditional edge for one
// lookahead class (the figure 7 check against that class's extend column).
// Must be called with c.mu held.
func (c *DFACache) fillCond(st *dfaState, edge *dfaEdge, cls, look int, by *DFA) *dfaOutcome {
	e := c.e
	c.fills.Add(1)
	ext := e.zeroMask // end of stream extends nothing
	if look < e.numClasses {
		ext = e.extendC[look]
	}
	ending := make([]uint64, e.words)
	for w := 0; w < e.words; w++ {
		ending[w] = edge.nextActive[w] & e.last[w] &^ ext[w]
	}
	out := c.buildOutcome(st, cls, edge.nextActive, ending, by)
	edge.outs[look].Store(out)
	return out
}

// buildOutcome precomputes everything the emit cycle does — per-instance
// dedup in bit order, collision pairs against the first emission, follow
// wiring into the pending latch, the dead-state recovery check — and
// hash-conses the successor state. Must be called with c.mu held.
func (c *DFACache) buildOutcome(st *dfaState, cls int, nextActive, ending []uint64, by *DFA) *dfaOutcome {
	e := c.e
	pending := make([]uint64, e.words)
	if e.delimC[cls] {
		copy(pending, st.pending)
	}
	out := &dfaOutcome{}
	forEachBit(ending, func(p int) {
		k := int32(e.owner[p])
		for _, prev := range out.emits {
			if prev == k {
				return // one emission per instance per cycle
			}
		}
		collide := false
		if len(out.emits) > 0 {
			a := int(out.emits[0])
			if e.conflictSetID[a] < 0 || e.conflictSetID[a] != e.conflictSetID[int(k)] {
				collide = true
			}
		}
		out.emits = append(out.emits, k)
		out.collide = append(out.collide, collide)
		for _, f := range e.spec.Instances[k].Follow {
			orInto(pending, e.firstMask[f])
		}
	})
	if e.recoveryMask != nil && isZero(nextActive) && isZero(pending) {
		out.recovered = true
		copy(pending, e.recoveryMask)
	}
	out.hasEvents = len(out.emits) > 0 || out.recovered
	out.next = c.canonicalBy(nextActive, pending, by)
	return out
}

// canonical hash-conses an (active, pending) pair; mu must be held.
func (c *DFACache) canonical(active, pending []uint64) *dfaState {
	return c.canonicalBy(active, pending, nil)
}

// canonicalBy is canonical with reset attribution: when inserting a new
// state would exceed the MaxStates bound, the whole cache is reset first
// (the RE2 policy) and the triggering stream's reset counter advances.
// Streams parked in pre-reset states stay valid — the objects are simply
// no longer indexed, and live traffic re-canonicalizes the states it still
// needs into the rebuilt map.
func (c *DFACache) canonicalBy(active, pending []uint64, by *DFA) *dfaState {
	// Materialize the key: stateKey reuses keyBuf, and the reset path
	// below keys the start state through the same buffer.
	key := string(c.stateKey(active, pending))
	if st, ok := c.states[key]; ok {
		return st
	}
	if len(c.states) >= c.cfg.MaxStates {
		c.memStates(-len(c.states))
		c.states = make(map[string]*dfaState)
		c.resets.Add(1)
		if by != nil {
			by.resets++
		}
		// Re-seed the canonical start state so Reset (which reads the
		// start pointer lock-free) lands in the rebuilt map's world.
		start := c.newState(c.e.zeroMask, c.e.startPending)
		c.states[string(c.stateKey(c.e.zeroMask, c.e.startPending))] = start
		c.start.Store(start)
		c.memStates(1)
		// The state being inserted may BE the start state.
		if st, ok := c.states[key]; ok {
			c.nStates.Store(int64(len(c.states)))
			return st
		}
	}
	st := c.newState(active, pending)
	c.states[key] = st
	c.nStates.Store(int64(len(c.states)))
	c.memStates(1)
	return st
}

// memStates reports n states' worth of estimated bytes through the
// configured MemDelta callback; mu must be held.
func (c *DFACache) memStates(n int) {
	if c.cfg.MemDelta != nil && n != 0 {
		c.cfg.MemDelta(int64(n) * c.stateBytes)
	}
}

// stateKey serializes an (active, pending) pair into the reusable key
// buffer; mu must be held.
func (c *DFACache) stateKey(active, pending []uint64) []byte {
	key := c.keyBuf[:0]
	for _, w := range active {
		key = append(key,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	for _, w := range pending {
		key = append(key,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	c.keyBuf = key
	return key
}

// newState builds a fresh state object (no bound check, no indexing).
func (c *DFACache) newState(active, pending []uint64) *dfaState {
	st := &dfaState{
		active:  append([]uint64(nil), active...),
		pending: append([]uint64(nil), pending...),
		fast:    make([]atomic.Pointer[dfaOutcome], c.e.numClasses),
		rows:    make([]atomic.Pointer[dfaEdge], c.e.numClasses),
	}
	if !c.cfg.NoAccel {
		st.accel = c.probeAccel(st)
	}
	return st
}

// probeAccel decides, from the engine masks alone, whether st qualifies
// for skip-ahead and builds its scan plan. A byte class c is boring when
//
//   - as a lookahead it confirms no match: active & last &^ extendC[c]
//     is empty (so any boring transition under this lookahead emits
//     nothing), and
//   - consuming it is a pure self-move: nextActive(st, c) == st.active,
//     the pending latch is preserved (c is a delimiter, or pending is
//     already empty), and section 5.2 recovery would not fire.
//
// Any run of boring bytes then holds the state at (active, pending) with
// no events, which is exactly what Write's scan collapses. The probe never
// touches the transition cache, so it is side-effect free even under tiny
// MaxStates bounds.
func (c *DFACache) probeAccel(st *dfaState) *dfaAccel {
	e := c.e
	words := e.words
	pendingZero := isZero(st.pending)
	activeZero := isZero(st.active)

	// Scatter the sparse non-chain edges once; they do not depend on the
	// byte class (only the final matchC intersection does).
	var scattered []uint64
	if e.hasExtras {
		for w := 0; w < words; w++ {
			if st.active[w]&e.extraSrc[w] != 0 {
				scattered = make([]uint64, words)
				src := make([]uint64, words)
				for v := 0; v < words; v++ {
					src[v] = st.active[v] & e.extraSrc[v]
				}
				forEachBit(src, func(p int) {
					orInto(scattered, e.extraTo[p])
				})
				break
			}
		}
	}

	boring := make([]bool, e.numClasses)
	n := 0
	for cls := 0; cls < e.numClasses; cls++ {
		// Lookahead safety: no accepting position of the (unchanged)
		// active set survives the figure-7 extend check under class cls.
		ext := e.extendC[cls]
		ok := true
		for w := 0; w < words; w++ {
			if st.active[w]&e.last[w]&^ext[w] != 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Pending preservation: non-delimiters clear the latch.
		if !e.delimC[cls] && !pendingZero {
			continue
		}
		// Recovery would fire (and rewrite pending) on a dead state.
		if e.recoveryMask != nil && activeZero && (pendingZero || !e.delimC[cls]) {
			continue
		}
		// Pure self-move: the full NFA step must reproduce the active set.
		mb := e.matchC[cls]
		var carry uint64
		same := true
		for w := 0; w < words; w++ {
			a := st.active[w]
			shifted := a<<1 | carry
			carry = a >> 63
			nx := (shifted & e.succ[w]) | (a & e.self[w]) | st.pending[w] | e.alwaysPending[w]
			if scattered != nil {
				nx |= scattered[w]
			}
			if nx&mb[w] != a {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		boring[cls] = true
		n++
	}
	if n == 0 || e.numClasses-n > dfaAccelMaxInteresting {
		return nil
	}
	a := &dfaAccel{boring: boring}
	var lits []byte
	for b := 0; b < 256; b++ {
		if !boring[e.classOf[b]] {
			lits = append(lits, byte(b))
		}
	}
	if len(lits) <= dfaAccelMaxLiterals {
		a.lits = lits
	} else {
		var t [256]bool
		for _, b := range lits {
			t[b] = true
		}
		a.table = &t
	}
	return a
}
