package stream

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
)

func mustSpec(t *testing.T, g *grammar.Grammar, opts core.Options) *core.Spec {
	t.Helper()
	s, err := core.Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// terms maps matches to their terminal names in order.
func terms(s *core.Spec, ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = s.Instances[m.InstanceID].Term
	}
	return out
}

// contexts maps matches to "term@context" strings.
func contexts(s *core.Spec, ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		in := s.Instances[m.InstanceID]
		out[i] = in.Term + "@" + in.Context(s.Grammar)
	}
	return out
}

func ends(ms []Match) []int64 {
	out := make([]int64, len(ms))
	for i, m := range ms {
		out[i] = m.End
	}
	return out
}

func TestIfThenElseSentence(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	tg := NewTagger(s)
	input := "if true then go else stop"
	got := terms(s, tg.Tag([]byte(input)))
	want := []string{"if", "true", "then", "go", "else", "stop"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tags = %v, want %v", got, want)
	}
}

func TestIfThenElseNested(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	tg := NewTagger(s)
	input := "if false then if true then stop else go else stop"
	got := terms(s, tg.Tag([]byte(input)))
	want := []string{"if", "false", "then", "if", "true", "then", "stop", "else", "go", "else", "stop"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tags = %v, want %v", got, want)
	}
}

func TestMatchEndOffsets(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	tg := NewTagger(s)
	//        0123456789
	input := "if true then go"
	ms := tg.Tag([]byte(input))
	wantEnds := []int64{1, 6, 11, 14}
	if !reflect.DeepEqual(ends(ms), wantEnds) {
		t.Errorf("ends = %v, want %v", ends(ms), wantEnds)
	}
}

func TestNonConformingInputStalls(t *testing.T) {
	// "then" out of context is never tagged: the engine only looks where
	// the wiring points.
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	tg := NewTagger(s)
	got := terms(s, tg.Tag([]byte("then go")))
	if len(got) != 0 {
		t.Errorf("out-of-context tags = %v, want none", got)
	}
	// After garbage kills the parse, nothing resumes (anchored start).
	got = terms(s, tg.Tag([]byte("if bogus then go")))
	if !reflect.DeepEqual(got, []string{"if"}) {
		t.Errorf("tags = %v, want [if]", got)
	}
}

func TestDelimiterRunsHoldPending(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	tg := NewTagger(s)
	input := "if \t\n  true   \t then\n\n go"
	got := terms(s, tg.Tag([]byte(input)))
	want := []string{"if", "true", "then", "go"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tags = %v, want %v", got, want)
	}
}

func TestPartialTokenDiesAtDelimiter(t *testing.T) {
	// "tr ue" must not be recognized as "true" (section 3.2: only the
	// first register is stalled, so a partial match dies at a delimiter).
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	tg := NewTagger(s)
	got := terms(s, tg.Tag([]byte("if tr ue then go")))
	if !reflect.DeepEqual(got, []string{"if"}) {
		t.Errorf("tags = %v, want [if] only", got)
	}
}

func TestBalancedParens(t *testing.T) {
	s := mustSpec(t, grammar.BalancedParens(), core.Options{})
	tg := NewTagger(s)
	got := terms(s, tg.Tag([]byte("( ( 0 ) )")))
	want := []string{"(", "(", "0", ")", ")"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tags = %v, want %v", got, want)
	}
}

func TestSupersetAcceptance(t *testing.T) {
	// Without a stack the engine accepts a superset of the grammar
	// (section 3.1): unbalanced parens still tag every token.
	s := mustSpec(t, grammar.BalancedParens(), core.Options{})
	tg := NewTagger(s)
	got := terms(s, tg.Tag([]byte("( 0 ) )")))
	want := []string{"(", "0", ")", ")"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("unbalanced tags = %v, want %v (superset acceptance)", got, want)
	}
}

func TestAdjacentTokensNoDelimiter(t *testing.T) {
	s := mustSpec(t, grammar.BalancedParens(), core.Options{})
	tg := NewTagger(s)
	got := terms(s, tg.Tag([]byte("((0))")))
	want := []string{"(", "(", "0", ")", ")"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("adjacent tags = %v, want %v", got, want)
	}
}

func TestLongestMatch(t *testing.T) {
	g, err := grammar.Parse("ints", "INT [0-9]+\n%%\nS : INT T ;\nT : | INT T ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s := mustSpec(t, g, core.Options{})
	tg := NewTagger(s)
	ms := tg.Tag([]byte("123 45 6"))
	// Longest match: exactly one detection per run, at its last digit.
	wantEnds := []int64{2, 5, 7}
	if !reflect.DeepEqual(ends(ms), wantEnds) {
		t.Errorf("ends = %v, want %v", ends(ms), wantEnds)
	}
}

func TestNoLongestMatchAblation(t *testing.T) {
	g, err := grammar.Parse("ints", "INT [0-9]+\n%%\nS : INT T ;\nT : | INT T ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s := mustSpec(t, g, core.Options{NoLongestMatch: true})
	tg := NewTagger(s)
	ms := tg.Tag([]byte("123"))
	// Without the figure 7 lookahead, a+ style tokens assert every cycle,
	// and each premature completion spuriously enables the follow-on
	// instance too: the first INT fires at offsets 0,1,2 while the
	// second INT instance (wired after the first) also fires at 1,2.
	wantEnds := []int64{0, 1, 1, 2, 2}
	if !reflect.DeepEqual(ends(ms), wantEnds) {
		t.Errorf("ablated ends = %v, want %v", ends(ms), wantEnds)
	}
}

// sampleRPC follows the figure 14 dialect: value is a pure nonterminal, so
// there are no <value>/</value> wrapper tags in the message text.
const sampleRPC = `<methodCall> <methodName>deposit</methodName> <params> ` +
	`<param> <i4>42</i4> </param> </params> </methodCall>`

func TestXMLRPCMessage(t *testing.T) {
	s := mustSpec(t, grammar.XMLRPC(), core.Options{})
	tg := NewTagger(s)
	got := contexts(s, tg.Tag([]byte(sampleRPC)))
	want := []string{
		"<methodCall>@methodCall[0]",
		"<methodName>@methodName[0]",
		"STRING@methodName[1]",
		"</methodName>@methodName[2]",
		"<params>@params[0]",
		"<param>@param[0]",
		"<i4>@i4[0]",
		"INT@i4[1]",
		"</i4>@i4[2]",
		"</param>@param[2]",
		"</params>@params[2]",
		"</methodCall>@methodCall[3]",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("contexts = %v,\nwant %v", got, want)
	}
}

func TestXMLRPCAdjacentTags(t *testing.T) {
	// No whitespace anywhere: tags and values are directly adjacent.
	s := mustSpec(t, grammar.XMLRPC(), core.Options{})
	tg := NewTagger(s)
	msg := "<methodCall><methodName>buy</methodName><params><param><string>book7</string></param></params></methodCall>"
	got := terms(s, tg.Tag([]byte(msg)))
	want := []string{
		"<methodCall>", "<methodName>", "STRING", "</methodName>",
		"<params>", "<param>", "<string>", "STRING", "</string>",
		"</param>", "</params>", "</methodCall>",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tags = %v,\nwant %v", got, want)
	}
}

func TestXMLRPCDateTime(t *testing.T) {
	s := mustSpec(t, grammar.XMLRPC(), core.Options{})
	tg := NewTagger(s)
	msg := "<methodCall><methodName>when</methodName><params><param>" +
		"<dateTime.iso8601>19980717T14:08:55</dateTime.iso8601>" +
		"</param></params></methodCall>"
	got := terms(s, tg.Tag([]byte(msg)))
	want := []string{
		"<methodCall>", "<methodName>", "STRING", "</methodName>",
		"<params>", "<param>", "<dateTime.iso8601>",
		"YEAR", "MONTH", "DAY", "T", "HOUR", ":", "MIN", ":", "SEC",
		"</dateTime.iso8601>", "</param>", "</params>", "</methodCall>",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tags = %v,\nwant %v", got, want)
	}
}

func TestXMLRPCStructAndArray(t *testing.T) {
	s := mustSpec(t, grammar.XMLRPC(), core.Options{})
	tg := NewTagger(s)
	msg := "<methodCall><methodName>mix</methodName><params>" +
		"<param><struct>" +
		"<member><name>qty</name><int>3</int></member>" +
		"<member><name>tag</name><string>x9</string></member>" +
		"</struct></param>" +
		"<param><array><data>" +
		"<double>2.5</double>" +
		"<base64>aGk=</base64>" +
		"</data></array></param>" +
		"</params></methodCall>"
	ms := tg.Tag([]byte(msg))
	got := terms(s, ms)
	want := []string{
		"<methodCall>", "<methodName>", "STRING", "</methodName>", "<params>",
		"<param>", "<struct>",
		"<member>", "<name>", "STRING", "</name>", "<int>", "INT", "</int>", "</member>",
		"<member>", "<name>", "STRING", "</name>", "<string>", "STRING", "</string>", "</member>",
		"</struct>", "</param>",
		"<param>", "<array>", "<data>",
		"<double>", "DOUBLE", "</double>",
		"<base64>", "BASE64", "</base64>",
		"</data>", "</array>", "</param>",
		"</params>", "</methodCall>",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tags = %v,\nwant %v", got, want)
	}
}

func TestCanEndSignal(t *testing.T) {
	s := mustSpec(t, grammar.XMLRPC(), core.Options{})
	tg := NewTagger(s)
	ms := tg.Tag([]byte(sampleRPC))
	lastIn := s.Instances[ms[len(ms)-1].InstanceID]
	if !lastIn.CanEnd {
		t.Error("final match should carry CanEnd (message boundary)")
	}
	for _, m := range ms[:len(ms)-1] {
		if s.Instances[m.InstanceID].CanEnd {
			t.Errorf("intermediate match %s claims CanEnd", s.Instances[m.InstanceID].Term)
		}
	}
}

func TestIncrementalWritesMatchOneShot(t *testing.T) {
	s := mustSpec(t, grammar.XMLRPC(), core.Options{})
	one := NewTagger(s)
	all := one.Tag([]byte(sampleRPC))

	inc := NewTagger(s)
	var got []Match
	inc.OnMatch = func(m Match) { got = append(got, m) }
	// Feed in awkward chunk sizes, including 1-byte chunks.
	data := []byte(sampleRPC)
	for i := 0; i < len(data); {
		n := 1 + (i % 7)
		if i+n > len(data) {
			n = len(data) - i
		}
		if _, err := inc.Write(data[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}
	if err := inc.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, all) {
		t.Errorf("incremental = %v,\none-shot = %v", got, all)
	}
}

func TestWriteAfterClose(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	tg := NewTagger(s)
	tg.Close()
	if _, err := tg.Write([]byte("x")); err == nil {
		t.Error("Write after Close should fail")
	}
	if err := tg.Close(); err != nil {
		t.Error("double Close should be a no-op")
	}
}

func TestTagReader(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	tg := NewTagger(s)
	want := tg.Tag([]byte("if true then go"))
	got, err := tg.TagReader(strings.NewReader("if true then go"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TagReader %v != Tag %v", got, want)
	}
	// Errors propagate.
	if _, err := tg.TagReader(errReader{}); err == nil {
		t.Error("reader error swallowed")
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, fmt.Errorf("boom") }

func TestResetReusesTagger(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	tg := NewTagger(s)
	a := terms(s, tg.Tag([]byte("go")))
	b := terms(s, tg.Tag([]byte("stop")))
	if !reflect.DeepEqual(a, []string{"go"}) || !reflect.DeepEqual(b, []string{"stop"}) {
		t.Errorf("reuse failed: %v, %v", a, b)
	}
}

func TestEOFFlushesFinalToken(t *testing.T) {
	// A token ending exactly at EOF is confirmed by Close.
	g, err := grammar.Parse("ints", "INT [0-9]+\n%%\nS : INT ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s := mustSpec(t, g, core.Options{})
	tg := NewTagger(s)
	var got []Match
	tg.OnMatch = func(m Match) { got = append(got, m) }
	tg.Write([]byte("123"))
	if len(got) != 0 {
		t.Fatalf("match fired before Close: %v", got)
	}
	tg.Close()
	if len(got) != 1 || got[0].End != 2 {
		t.Errorf("after Close: %v", got)
	}
}

func TestConflictSimultaneousAssertions(t *testing.T) {
	g, err := grammar.Parse("amb", `
NUM  [0-9]+
WORD [a-z0-9]+
%%
S : NUM | WORD ;
`)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSpec(t, g, core.Options{})
	tg := NewTagger(s)
	ms := tg.Tag([]byte("42"))
	if len(ms) != 2 {
		t.Fatalf("matches = %v, want both NUM and WORD", terms(s, ms))
	}
	groups := GroupByEnd(ms)
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	// The encoder ORs the indices; equation 5 makes that the
	// higher-priority instance's index.
	idx := EncodeIndex(s, groups[0])
	top := s.InstanceByIndex(idx)
	if top == nil {
		t.Fatalf("OR index %d resolves to no instance", idx)
	}
	// On a pure-digit lexeme with equal pattern lengths the tie-break
	// picks a deterministic winner; it must be one of the two.
	if top.Term != "NUM" && top.Term != "WORD" {
		t.Errorf("winner = %q", top.Term)
	}
	// On "4a": NUM's longest match "4" ends at offset 0 ('a' cannot extend
	// it), then WORD completes at offset 1 — two separate cycles, exactly
	// what the parallel hardware reports.
	ms = tg.Tag([]byte("4a"))
	if len(ms) != 2 ||
		s.Instances[ms[0].InstanceID].Term != "NUM" || ms[0].End != 0 ||
		s.Instances[ms[1].InstanceID].Term != "WORD" || ms[1].End != 1 {
		t.Errorf("matches = %v at %v, want NUM@0 then WORD@1", terms(s, ms), ends(ms))
	}
}

func TestResidualCollisionDetection(t *testing.T) {
	// The static conflict analysis only sees shared-enabler groups; two
	// tokens from different groups can still assert on the same cycle:
	// with S : A | C B  (A="ab", C="a", B="b"), input "ab" fires C at
	// byte 0, then A and B — from different groups — together at byte 1.
	g, err := grammar.Parse("collide", `
%%
S : "ab" | C B ;
C : "a" ;
B : "b" ;
`)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSpec(t, g, core.Options{})
	if len(s.ConflictSets) != 0 {
		t.Fatalf("static analysis should miss this: %v", s.ConflictSets)
	}
	tg := NewTagger(s)
	var collided [][2]int
	tg.OnCollision = func(pos int64, a, b int) { collided = append(collided, [2]int{a, b}) }
	ms := tg.Tag([]byte("ab"))
	if len(ms) != 3 { // C@0, then A and B @1
		t.Fatalf("matches = %v", terms(s, ms))
	}
	if tg.Collisions != 1 || len(collided) != 1 {
		t.Errorf("collisions = %d (%v), want 1", tg.Collisions, collided)
	}
	// Members of one static conflict set do NOT count as collisions.
	g2, err := grammar.Parse("amb", "NUM [0-9]+\nWORD [a-z0-9]+\n%%\nS : NUM | WORD ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s2 := mustSpec(t, g2, core.Options{})
	tg2 := NewTagger(s2)
	tg2.Tag([]byte("42"))
	if tg2.Collisions != 0 {
		t.Errorf("equation 5 set counted as collision: %d", tg2.Collisions)
	}
	// Reset clears the counter.
	tg.Tag([]byte("a"))
	if tg.Collisions != 0 {
		t.Errorf("collisions after reset = %d", tg.Collisions)
	}
}

func TestFreeRunningStart(t *testing.T) {
	g, err := grammar.Parse("kw", "%%\nS : \"ab\" ;\n")
	if err != nil {
		t.Fatal(err)
	}
	// Anchored: only a leading "ab" is found.
	s := mustSpec(t, g, core.Options{})
	tg := NewTagger(s)
	if n := len(tg.Tag([]byte("xx ab"))); n != 0 {
		t.Errorf("anchored found %d, want 0", n)
	}
	// Free-running: the engine looks for sentences starting anywhere.
	s = mustSpec(t, g, core.Options{FreeRunningStart: true})
	tg = NewTagger(s)
	ms := tg.Tag([]byte("xx ab yy ab"))
	if len(ms) != 2 {
		t.Errorf("free-running found %v, want 2 matches", ends(ms))
	}
}

func TestAllEnabledTagsOutOfContext(t *testing.T) {
	// The naive-matcher ablation: "then" is found even with no "if".
	s := mustSpec(t, grammar.IfThenElse(), core.Options{AllEnabled: true})
	tg := NewTagger(s)
	got := terms(s, tg.Tag([]byte("then go")))
	if !reflect.DeepEqual(got, []string{"then", "go"}) {
		t.Errorf("all-enabled tags = %v", got)
	}
}

func TestMultipleMessagesSameStream(t *testing.T) {
	// FreeRunningStart lets a long-lived stream tag back-to-back messages.
	s := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	tg := NewTagger(s)
	msg := strings.Repeat(sampleRPC+"\n", 3)
	ms := tg.Tag([]byte(msg))
	count := 0
	for _, m := range ms {
		if s.Instances[m.InstanceID].Term == "</methodCall>" {
			count++
		}
	}
	if count != 3 {
		t.Errorf("completed messages = %d, want 3", count)
	}
}

func TestLeftRecursiveGrammar(t *testing.T) {
	// Left recursion breaks LL(1) table construction, but the stack-less
	// engine only needs occurrence-level Follow sets, which the fixpoint
	// computes fine: E : E '+' T | T tags expression chains directly.
	g, err := grammar.Parse("expr", `
NUM [0-9]+
%%
E : E '+' T | T ;
T : NUM ;
`)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSpec(t, g, core.Options{})
	tg := NewTagger(s)
	got := terms(s, tg.Tag([]byte("1 + 23 + 456")))
	want := []string{"NUM", "+", "NUM", "+", "NUM"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tags = %v, want %v", got, want)
	}
	// The true parser cannot even be built for it.
	// (Checked in internal/parser; here we just pin that tagging works.)
}

func TestLongTokenCrossesWordBoundaries(t *testing.T) {
	// A single literal longer than 64 positions forces the shift-with-
	// carry path across multiple bitset words inside one instance.
	long := strings.Repeat("ab", 80) // 160 positions
	g, err := grammar.Parse("long", "%%\nS : \""+long+"\" ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s := mustSpec(t, g, core.Options{})
	tg := NewTagger(s)
	ms := tg.Tag([]byte(long))
	if len(ms) != 1 || ms[0].End != int64(len(long)-1) {
		t.Fatalf("long literal matches = %v", ms)
	}
	// Near misses must not fire.
	if n := len(tg.Tag([]byte(long[:len(long)-1]))); n != 0 {
		t.Errorf("truncated long literal matched %d times", n)
	}
	almost := []byte(long)
	almost[100] = 'x'
	if n := len(tg.Tag(almost)); n != 0 {
		t.Errorf("corrupted long literal matched %d times", n)
	}
}

func TestLongClassRunCrossesWords(t *testing.T) {
	// A 100-position fixed-length digit token spans two words; every
	// position is a distinct bit advanced by the carry chain.
	pat := strings.Repeat("[0-9]", 100)
	g, err := grammar.Parse("digits", "D "+pat+"\n%%\nS : D ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s := mustSpec(t, g, core.Options{})
	tg := NewTagger(s)
	input := strings.Repeat("7", 100)
	ms := tg.Tag([]byte(input))
	if len(ms) != 1 || ms[0].End != 99 {
		t.Fatalf("matches = %v", ms)
	}
	if n := len(tg.Tag([]byte(input[:99]))); n != 0 {
		t.Errorf("99 digits matched %d times, want 0", n)
	}
}

func TestHighBytes(t *testing.T) {
	// Raw bytes above 0x7f (e.g. UTF-8 continuation bytes) are ordinary
	// decoder inputs.
	g, err := grammar.Parse("hi", "HB [\x80-\xff]+\n%%\nS : \"k\" HB ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s := mustSpec(t, g, core.Options{})
	tg := NewTagger(s)
	input := []byte{'k', 0x80, 0xc3, 0xff}
	ms := tg.Tag(input)
	if len(ms) != 2 || ms[1].End != 3 {
		t.Fatalf("matches = %v", ms)
	}
}

func TestEngineString(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	tg := NewTagger(s)
	if !strings.Contains(tg.e.String(), "7 instances") {
		t.Errorf("engine String = %q", tg.e.String())
	}
}
