package stream

import (
	"runtime"

	"cfgtag/internal/core"
)

// Pool tags independent buffers concurrently. The compiled engine masks
// are shared read-only; each borrowed Tagger carries only its own state,
// so a Pool scales across cores the way the paper's hardware scales across
// parallel engines.
type Pool struct {
	spec    *core.Spec
	taggers chan *Tagger
}

// NewPool builds a pool of size taggers (0 = GOMAXPROCS) over one spec.
func NewPool(spec *core.Spec, size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &Pool{spec: spec, taggers: make(chan *Tagger, size)}
	shared := NewTagger(spec) // compile once; clones share the engine
	p.taggers <- shared
	for i := 1; i < size; i++ {
		p.taggers <- shared.Clone()
	}
	return p
}

// Tag borrows a tagger, tags the buffer, and returns the matches.
// Safe for concurrent use.
func (p *Pool) Tag(data []byte) []Match {
	t := <-p.taggers
	out := t.Tag(data)
	p.taggers <- t
	return out
}

// TagAll tags every buffer concurrently, preserving order.
func (p *Pool) TagAll(bufs [][]byte) [][]Match {
	out := make([][]Match, len(bufs))
	sem := make(chan struct{}, cap(p.taggers))
	done := make(chan int)
	for i := range bufs {
		go func(i int) {
			sem <- struct{}{}
			out[i] = p.Tag(bufs[i])
			<-sem
			done <- i
		}(i)
	}
	for range bufs {
		<-done
	}
	return out
}

// Clone creates an independent Tagger sharing this one's compiled engine —
// cheap (no mask recomputation) and the way to tag several streams
// concurrently.
func (t *Tagger) Clone() *Tagger {
	c := &Tagger{e: t.e}
	c.active = make([]uint64, t.e.words)
	c.scatter = make([]uint64, t.e.words)
	c.pending = make([]uint64, t.e.words)
	c.scratch = make([]uint64, t.e.words)
	c.emitStamp = make([]int64, len(t.e.spec.Instances))
	c.Reset()
	return c
}
