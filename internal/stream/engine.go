// Package stream executes a compiled tagger specification in software as a
// bit-parallel NFA: one bit per pattern position across all tokenizer
// instances, 64 positions per machine word. It implements exactly the
// semantics of the generated hardware (see package core) and is the
// high-throughput software path benchmarked against the gate-level
// simulation and the LL(1) baseline.
//
// Per input byte the engine computes
//
//	next   = ((active << 1) & succ) | (active & self) | extra(active) | (pending & match[b])
//	ending = next & last & ^extend[b']        (b' = lookahead byte)
//
// where succ marks chain edges p→p+1, self marks self-loops (the
// one-or-more templates of figure 6), extra covers the remaining Glushkov
// edges, match[b] masks positions whose byte class contains b, and
// extend[b'] masks accepting positions whose match could continue with b'
// (the figure 7 longest-match lookahead). Completions wire pending bits for
// the instances in their Follow sets; pending survives delimiter bytes and
// is reloaded on every non-delimiter byte, mirroring the inverted-delimiter
// register enable of section 3.2.
package stream

import (
	"fmt"
	"math/bits"

	"cfgtag/internal/core"
)

// engine holds the compile-time bit masks shared by all Tagger instances of
// a Spec.
//
// The per-byte decoder columns are stored byte-class compressed: the 256
// byte values are partitioned into equivalence classes — bytes with
// identical match, extend and delimiter behaviour share a class — and the
// tables hold one column per class instead of one per byte. classOf maps a
// byte to its class; real grammars collapse 256 columns to a few dozen.
type engine struct {
	spec  *core.Spec
	words int // words per position bitset

	// classOf[b] is the byte-equivalence class of byte b.
	classOf [256]uint16
	// numClasses is the number of byte-equivalence classes.
	numClasses int
	// matchC[c] marks positions whose byte class contains the bytes of
	// equivalence class c.
	matchC [][]uint64
	// extendC[c] marks positions p (accepting or not) with some q∈follow(p)
	// whose byte class contains the bytes of equivalence class c.
	extendC [][]uint64
	// delimC[c] reports whether class c's bytes are delimiters.
	delimC []bool
	// extendAny is the OR of every extendC column: positions whose
	// accepting status depends on the lookahead byte at all. The lazy DFA
	// uses it to split lookahead-independent transition edges from
	// conditional ones.
	extendAny []uint64
	// succ marks positions q entered from q-1 (chain edges).
	succ []uint64
	// self marks positions with a self-loop.
	self []uint64
	// extraSrc marks positions with Glushkov edges not covered by succ and
	// self; extraTo[p] is their target mask. hasExtras gates the (rare)
	// scatter pass: pure literal/class grammars have none.
	extraSrc  []uint64
	extraTo   map[int][]uint64
	hasExtras bool
	// zeroMask is an all-zero bitset standing in for extend[next] at end
	// of stream.
	zeroMask []uint64
	// alwaysPending is startPending under FreeRunningStart, else zeroMask;
	// it is OR-injected on every byte.
	alwaysPending []uint64
	// recoveryMask is re-armed into pending when the engine goes dead
	// (section 5.2 error recovery); nil when recovery is off.
	recoveryMask []uint64
	// conflictSetID[k] is the index of instance k's static conflict set,
	// or -1; used to flag residual runtime collisions the static analysis
	// did not anticipate (section 3.4's "possibility that a search engine
	// will detect more than one pattern at any instance").
	conflictSetID []int
	// last marks accepting positions.
	last []uint64
	// firstMask[k] marks instance k's first positions.
	firstMask [][]uint64
	// startPending marks the first positions of all start instances.
	startPending []uint64
	// owner[p] is the instance owning position p.
	owner []int32
	// base[k] is instance k's first global position.
	base []int
}

// compile lays out every instance's pattern positions in one global bit
// space and precomputes the transition masks.
func compile(spec *core.Spec) *engine {
	total := 0
	for _, in := range spec.Instances {
		total += in.Program.Len()
	}
	e := &engine{
		spec:    spec,
		words:   (total + 63) / 64,
		extraTo: make(map[int][]uint64),
		owner:   make([]int32, total),
		base:    make([]int, len(spec.Instances)),
	}
	if e.words == 0 {
		e.words = 1
	}
	newMask := func() []uint64 { return make([]uint64, e.words) }
	e.succ = newMask()
	e.self = newMask()
	e.extraSrc = newMask()
	e.last = newMask()
	e.startPending = newMask()
	// Full-width decoder columns, built per byte and compressed into
	// equivalence classes at the end of compile.
	var match, extend [256][]uint64
	var delim [256]bool
	for b := 0; b < 256; b++ {
		match[b] = newMask()
		extend[b] = newMask()
		delim[b] = spec.Delim.Has(byte(b))
	}
	e.firstMask = make([][]uint64, len(spec.Instances))

	off := 0
	for k, in := range spec.Instances {
		p := in.Program
		e.base[k] = off
		e.firstMask[k] = newMask()
		for i := 0; i < p.Len(); i++ {
			g := off + i
			e.owner[g] = int32(k)
			for _, bb := range p.Classes[i].Bytes() {
				setBit(match[bb], g)
			}
		}
		for _, f := range p.First {
			setBit(e.firstMask[k], off+f)
		}
		for _, l := range p.Last {
			setBit(e.last, off+l)
		}
		for q, tos := range p.Follow {
			gq := off + q
			for _, t := range tos {
				gt := off + t
				switch {
				case gt == gq+1:
					setBit(e.succ, gt)
				case gt == gq:
					setBit(e.self, gq)
				default:
					setBit(e.extraSrc, gq)
					if e.extraTo[gq] == nil {
						e.extraTo[gq] = newMask()
					}
					setBit(e.extraTo[gq], gt)
				}
				// Any byte matching the target class extends a match
				// pending at q.
				for _, bb := range p.Classes[t].Bytes() {
					setBit(extend[bb], gq)
				}
			}
		}
		off += p.Len()
	}
	for _, k := range spec.StartInstances {
		orInto(e.startPending, e.firstMask[k])
	}
	e.hasExtras = len(e.extraTo) > 0
	e.zeroMask = newMask()
	e.conflictSetID = make([]int, len(spec.Instances))
	for k := range e.conflictSetID {
		e.conflictSetID[k] = -1
	}
	for si, set := range spec.ConflictSets {
		for _, id := range set {
			e.conflictSetID[id] = si
		}
	}
	e.alwaysPending = e.zeroMask
	if spec.Opts.FreeRunningStart {
		// Free-running start folds into the per-word injection instead of
		// re-adding the start mask after every byte.
		e.alwaysPending = e.startPending
	}
	if !spec.Opts.FreeRunningStart {
		// Under FreeRunningStart the start set is always pending, so the
		// engine is never dead and recovery cannot trigger.
		switch spec.Opts.Recovery {
		case core.RecoveryRestart:
			e.recoveryMask = e.startPending
		case core.RecoveryResync:
			e.recoveryMask = newMask()
			for k := range spec.Instances {
				orInto(e.recoveryMask, e.firstMask[k])
			}
		}
	}
	if spec.Opts.NoLongestMatch {
		// Ablation: no figure 7 lookahead — matches report at every
		// accepting cycle.
		for b := 0; b < 256; b++ {
			for w := range extend[b] {
				extend[b][w] = 0
			}
		}
	}
	e.compressClasses(&match, &extend, &delim)
	return e
}

// compressClasses partitions the 256 byte columns into equivalence classes:
// bytes with identical match and extend columns and the same delimiter bit
// transition every engine state identically, so one shared column serves
// them all. Classes are numbered in first-byte order.
func (e *engine) compressClasses(match, extend *[256][]uint64, delim *[256]bool) {
	key := make([]byte, 0, 16*e.words+1)
	seen := make(map[string]uint16)
	for b := 0; b < 256; b++ {
		key = key[:0]
		for _, w := range match[b] {
			key = append(key,
				byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
		for _, w := range extend[b] {
			key = append(key,
				byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
		if delim[b] {
			key = append(key, 1)
		} else {
			key = append(key, 0)
		}
		c, ok := seen[string(key)]
		if !ok {
			c = uint16(len(e.matchC))
			seen[string(key)] = c
			e.matchC = append(e.matchC, match[b])
			e.extendC = append(e.extendC, extend[b])
			e.delimC = append(e.delimC, delim[b])
		}
		e.classOf[b] = c
	}
	e.numClasses = len(e.matchC)
	e.extendAny = make([]uint64, e.words)
	for _, col := range e.extendC {
		orInto(e.extendAny, col)
	}
}

func setBit(m []uint64, i int) { m[i>>6] |= 1 << (i & 63) }

func orInto(dst, src []uint64) {
	for w := range dst {
		dst[w] |= src[w]
	}
}

func clearMask(m []uint64) {
	for w := range m {
		m[w] = 0
	}
}

func isZero(m []uint64) bool {
	for _, w := range m {
		if w != 0 {
			return false
		}
	}
	return true
}

// forEachBit calls fn for every set bit index in m, ascending.
func forEachBit(m []uint64, fn func(int)) {
	for w, v := range m {
		for v != 0 {
			b := bits.TrailingZeros64(v)
			fn(w<<6 | b)
			v &= v - 1
		}
	}
}

func (e *engine) String() string {
	return fmt.Sprintf("engine: %d instances, %d positions, %d words, %d byte classes",
		len(e.spec.Instances), len(e.owner), e.words, e.numClasses)
}
