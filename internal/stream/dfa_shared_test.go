package stream

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/workload"
)

// TestDFASharedCacheAmortizes runs N streams of identical traffic against
// one DFACache and asserts the fleet-wide fill count is what a single
// stream would have paid: determinization once per cache, not per stream.
func TestDFASharedCacheAmortizes(t *testing.T) {
	spec := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	gen := workload.NewGenerator(spec, 19, workload.SentenceOptions{MaxDepth: 8})
	text, _ := gen.Sentence()

	solo := NewDFA(spec, DFAConfig{})
	want := solo.Tag(text)
	soloFills, _ := solo.Cache().Stats()
	if soloFills == 0 {
		t.Fatal("solo stream recorded no fills; input too trivial for the test")
	}

	cache := NewDFACache(spec, DFAConfig{})
	const n = 16
	for i := 0; i < n; i++ {
		d := cache.NewDFA()
		if got := d.Tag(text); !reflect.DeepEqual(got, want) {
			t.Fatalf("stream %d: shared-cache tags %v, want %v", i, got, want)
		}
	}
	fills, resets := cache.Stats()
	if resets != 0 {
		t.Fatalf("unexpected cache resets: %d", resets)
	}
	if fills != soloFills {
		t.Errorf("%d streams filled %d transitions, single stream fills %d (want equal: O(1) in stream count)",
			n, fills, soloFills)
	}
	// Every byte of every stream is accounted for, and streams after the
	// first run entirely warm.
	var hits, misses int64
	d := cache.NewDFA()
	d.Tag(text)
	hits, misses, _ = d.CacheStats()
	if got, want := hits+misses, int64(len(text)); got != want {
		t.Errorf("hits+misses = %d, want %d", got, want)
	}
	if misses != 0 {
		t.Errorf("warm sibling stream computed %d transitions, want 0", misses)
	}
}

// TestDFASharedCacheConcurrent hammers one cache from many goroutines —
// mixed traffic, so streams race to fill the same transitions — and
// asserts every stream's output matches the serial NFA oracle. Run under
// -race this exercises the lock-free read / locked-fill publication
// protocol.
func TestDFASharedCacheConcurrent(t *testing.T) {
	for name, opts := range optionMatrix() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			spec := mustSpec(t, grammar.XMLRPC(), opts)
			inputs := diffInputs(spec, 37, 8)
			// Serial oracle per input.
			tg := NewTagger(spec)
			wants := make([][]Match, len(inputs))
			for i, in := range inputs {
				wants[i] = tg.Tag(in)
			}
			cache := NewDFACache(spec, DFAConfig{})
			const workers = 8
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					d := cache.NewDFA()
					for rep := 0; rep < 4; rep++ {
						for i, in := range inputs {
							// Random chunking so streams desynchronize.
							d.Reset()
							var got []Match
							d.OnMatch = func(m Match) { got = append(got, m) }
							for off := 0; off < len(in); {
								n := 1 + rng.Intn(64)
								if off+n > len(in) {
									n = len(in) - off
								}
								d.Write(in[off : off+n])
								off += n
							}
							d.Close()
							d.OnMatch = nil
							if !reflect.DeepEqual(got, wants[i]) {
								errs <- fmt.Errorf("worker %d input %d: got %v, want %v", w, i, got, wants[i])
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if cache.States() > cache.MaxStates() {
				t.Errorf("cache holds %d states, bound %d", cache.States(), cache.MaxStates())
			}
		})
	}
}

// TestDFASharedCacheConcurrentTinyBound races many streams through
// whole-cache resets: a 2-state bound forces constant reset churn while
// streams hold references to pre-reset states. Outputs must stay exact.
func TestDFASharedCacheConcurrentTinyBound(t *testing.T) {
	spec := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	inputs := diffInputs(spec, 53, 4)
	tg := NewTagger(spec)
	wants := make([][]Match, len(inputs))
	for i, in := range inputs {
		wants[i] = tg.Tag(in)
	}
	cache := NewDFACache(spec, DFAConfig{MaxStates: 2})
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := cache.NewDFA()
			for rep := 0; rep < 3; rep++ {
				for i, in := range inputs {
					d.Reset()
					var got []Match
					d.OnMatch = func(m Match) { got = append(got, m) }
					d.Write(in)
					d.Close()
					d.OnMatch = nil
					if !reflect.DeepEqual(got, wants[i]) {
						errs <- fmt.Errorf("worker %d input %d: got %v, want %v", w, i, got, wants[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, resets := cache.Stats(); resets == 0 {
		t.Error("tiny shared cache saw no resets")
	}
}
