package stream

import (
	"reflect"
	"sync"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
)

func TestCloneIndependence(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	a := NewTagger(s)
	b := a.Clone()
	// Interleave writes; each stream must tag independently.
	a.Write([]byte("if "))
	b.Write([]byte("go"))
	a.Write([]byte("true then stop"))
	var am, bm []Match
	a.OnMatch = func(m Match) { am = append(am, m) }
	b.OnMatch = func(m Match) { bm = append(bm, m) }
	a.Close()
	b.Close()
	if len(am) == 0 {
		t.Error("clone corrupted the original's stream")
	}
	if len(bm) != 1 || s.Instances[bm[0].InstanceID].Term != "go" {
		t.Errorf("clone stream = %v", bm)
	}
}

func TestPoolMatchesSequential(t *testing.T) {
	s := mustSpec(t, grammar.XMLRPC(), core.Options{})
	pool := NewPool(s, 4)
	seq := NewTagger(s)
	var bufs [][]byte
	for i := 0; i < 32; i++ {
		bufs = append(bufs, []byte(sampleRPC))
	}
	got := pool.TagAll(bufs)
	want := seq.Tag([]byte(sampleRPC))
	for i, g := range got {
		if !reflect.DeepEqual(g, want) {
			t.Fatalf("buffer %d diverged under the pool", i)
		}
	}
}

func TestPoolConcurrentStress(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	pool := NewPool(s, 3)
	want := pool.Tag([]byte("if true then go else stop"))
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := pool.Tag([]byte("if true then go else stop"))
				if !reflect.DeepEqual(got, want) {
					errs <- "divergent result under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestPoolDefaultSize(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	pool := NewPool(s, 0)
	if cap(pool.taggers) < 1 {
		t.Error("default pool is empty")
	}
}
