// Offline determinization: the ahead-of-time closure of the lazy DFA.
//
// The lazy cache (dfa.go) determinizes on demand — each (state, byte-class)
// edge is filled by an NFA step the first time live traffic crosses it.
// Determinize runs that same construction to closure offline: breadth-first
// over every reachable hash-consed (active, pending) state, every byte
// class, and — for figure-7 conditional edges — every lookahead class
// including end-of-stream. The fills are performed by the exact fillEdge /
// fillCond / buildOutcome code the lazy path runs, so the closed automaton
// is the lazy DFA's fixpoint by construction, not by re-implementation.
//
// The result is flattened into the form an ahead-of-time executor (package
// aot) or a source-code generator wants: one contiguous []int32 transition
// table indexed state*NumClasses+class, a deduplicated effect list for the
// transitions that emit/collide/recover, and per-lookahead conditional rows
// for the edges whose accept candidates depend on the next byte. Skip-ahead
// acceleration plans are carried over per state.
//
// Unlike the lazy cache, which resets wholesale and rebuilds from live
// traffic when MaxStates overflows, exceeding the bound offline is a
// compile error: ahead-of-time compilation promises no fills and no resets
// at runtime, so a grammar that does not close within budget must fall back
// to the lazy path instead.
package stream

import (
	"fmt"
	"time"

	"cfgtag/internal/core"
)

// DetConfig tunes offline determinization.
type DetConfig struct {
	// MaxStates bounds the closed state count (0 = DefaultDFAMaxStates,
	// minimum 2). Exceeding it fails Determinize with an error.
	MaxStates int
	// NoAccel disables the skip-ahead acceleration plans. The accelerated
	// and unaccelerated tables are byte-for-byte equivalent; the switch
	// exists for differential testing and benchmarking.
	NoAccel bool
}

// CompileStats describes one offline determinization: the closed state
// count, the byte-equivalence class count, the estimated flattened table
// footprint and the wall-clock compile time. It is the figure operators
// see per tenant on reload (the hardware analogue is a synthesis report).
type CompileStats struct {
	States     int
	Classes    int
	TableBytes int
	Duration   time.Duration
}

// DetEffect is everything one event-carrying transition does beyond the
// state move: the cycle's emissions in NFA bit order (deduplicated per
// instance), the aligned collision flags (always against the cycle's first
// emission) and the section 5.2 recovery verdict.
type DetEffect struct {
	Next      int32
	Emits     []int32
	Collide   []bool
	Recovered bool
}

// DetAccel is one state's skip-ahead plan, mirroring the lazy path's
// dfaAccel: Boring[c] reports byte class c inert for the state (as consumed
// byte and as lookahead), Lits holds the interesting byte values when few
// enough for a literal scan, and Table is the membership fallback when they
// span too many values. Exactly one of Lits/Table is meaningful; both empty
// means the state absorbs every byte.
type DetAccel struct {
	Boring []bool
	Lits   []byte
	Table  *[256]bool
}

// Scan returns the index of the first interesting byte at or after i, or
// len(p) when the rest of the chunk is boring.
func (a *DetAccel) Scan(p []byte, i int) int {
	d := dfaAccel{boring: a.Boring, lits: a.Lits, table: a.Table}
	return d.scan(p, i)
}

// Det is a fully determinized, flattened tagger automaton.
//
// Trans[s*NumClasses+c] holds the transition reference for consuming a byte
// of class c in state s. A reference r decodes as
//
//	r >= 0                   plain move to state r, no events
//	e := ^r; e < len(Effects) event transition Effects[e]
//	otherwise                conditional edge: row e-len(Effects) of Cond
//
// A conditional row spans NumClasses+1 slots indexed by the lookahead
// byte's class (last slot = end of stream); its entries are restricted
// references — plain state or effect, never conditional. Close consumes
// the held final byte through the end-of-stream slot, exactly as the lazy
// DFA's EOS lookahead.
type Det struct {
	ClassOf    [256]uint16
	NumClasses int
	Start      int32
	Trans      []int32
	Effects    []DetEffect
	Cond       []int32
	// Accel[s] is state s's skip-ahead plan, nil when the state does not
	// qualify (or NoAccel was set).
	Accel []*DetAccel
	Stats CompileStats

	spec *core.Spec
}

// Spec returns the specification the automaton was compiled from.
func (d *Det) Spec() *core.Spec { return d.spec }

// detCell is a pre-encoding transition target: the reference layout of
// Det.Trans depends on the final effect count, so cells are collected in
// tagged form and encoded once the closure is complete.
type detCell struct {
	kind int8 // 0 = plain state, 1 = effect, 2 = conditional row
	idx  int32
}

// Determinize compiles spec and runs the lazy-DFA construction to closure,
// returning the flattened automaton. It fails when the grammar does not
// close within cfg.MaxStates states.
func Determinize(spec *core.Spec, cfg DetConfig) (*Det, error) {
	return determinize(compile(spec), cfg)
}

func determinize(e *engine, cfg DetConfig) (*Det, error) {
	began := time.Now()
	max := cfg.MaxStates
	if max <= 0 {
		max = DefaultDFAMaxStates
	}
	if max < 2 {
		max = 2
	}
	// The internal cache's bound sits above the offline budget so its
	// reset policy can never engage: the budget check below aborts first
	// (fills insert at most one state each, and every fill is checked).
	cache := newDFACache(e, DFAConfig{MaxStates: max + 2, NoAccel: cfg.NoAccel})

	ids := make(map[*dfaState]int32)
	var order []*dfaState
	add := func(st *dfaState) int32 {
		if id, ok := ids[st]; ok {
			return id
		}
		id := int32(len(order))
		ids[st] = id
		order = append(order, st)
		return id
	}

	var (
		cells      []detCell
		effects    []DetEffect
		effectIdx  = make(map[string]int32)
		condRows   [][]detCell
		condRowIdx = make(map[string]int32)
	)
	// outcomeCell resolves one filled outcome to a plain-or-effect cell,
	// interning the effect and enqueueing the successor state.
	outcomeCell := func(out *dfaOutcome) detCell {
		next := add(out.next)
		if !out.hasEvents {
			return detCell{kind: 0, idx: next}
		}
		key := fmt.Sprint(next, out.emits, out.collide, out.recovered)
		id, ok := effectIdx[key]
		if !ok {
			id = int32(len(effects))
			effectIdx[key] = id
			effects = append(effects, DetEffect{
				Next:      next,
				Emits:     append([]int32(nil), out.emits...),
				Collide:   append([]bool(nil), out.collide...),
				Recovered: out.recovered,
			})
		}
		return detCell{kind: 1, idx: id}
	}

	cache.mu.Lock()
	defer cache.mu.Unlock()
	add(cache.start.Load())
	budget := func() error {
		if cache.States() > max {
			return fmt.Errorf("stream: determinize: grammar does not close within %d states (MaxStates); use the lazy dfa path", max)
		}
		return nil
	}
	for qi := 0; qi < len(order); qi++ {
		st := order[qi]
		for cls := 0; cls < e.numClasses; cls++ {
			edge := st.rows[cls].Load()
			if edge == nil {
				edge = cache.fillEdge(st, cls, nil)
				if err := budget(); err != nil {
					return nil, err
				}
			}
			if edge.nextActive == nil {
				// Lookahead-independent: one shared outcome in every slot.
				cells = append(cells, outcomeCell(edge.outs[0].Load()))
				continue
			}
			row := make([]detCell, e.numClasses+1)
			same := true
			for look := 0; look <= e.numClasses; look++ {
				out := edge.outs[look].Load()
				if out == nil {
					out = cache.fillCond(st, edge, cls, look, nil)
					if err := budget(); err != nil {
						return nil, err
					}
				}
				row[look] = outcomeCell(out)
				if row[look] != row[0] {
					same = false
				}
			}
			if same {
				// Conditional in mask terms but not in outcome: collapse to
				// the single shared cell so the hot loop never row-indexes.
				cells = append(cells, row[0])
				continue
			}
			key := fmt.Sprint(row)
			id, ok := condRowIdx[key]
			if !ok {
				id = int32(len(condRows))
				condRowIdx[key] = id
				condRows = append(condRows, row)
			}
			cells = append(cells, detCell{kind: 2, idx: id})
		}
	}

	// Encode: effect references are ^effect, conditional references are
	// ^(len(effects)+row) — both fixed now that the closure is complete.
	nEff := int32(len(effects))
	encode := func(c detCell) int32 {
		switch c.kind {
		case 0:
			return c.idx
		case 1:
			return ^c.idx
		default:
			return ^(nEff + c.idx)
		}
	}
	d := &Det{
		ClassOf:    e.classOf,
		NumClasses: e.numClasses,
		Start:      0,
		Trans:      make([]int32, len(cells)),
		Effects:    effects,
		Cond:       make([]int32, 0, len(condRows)*(e.numClasses+1)),
		Accel:      make([]*DetAccel, len(order)),
		spec:       e.spec,
	}
	for i, c := range cells {
		d.Trans[i] = encode(c)
	}
	for _, row := range condRows {
		for _, c := range row {
			// Restricted by construction: outcomeCell never yields kind 2.
			d.Cond = append(d.Cond, encode(c))
		}
	}
	for i, st := range order {
		if st.accel != nil {
			d.Accel[i] = &DetAccel{Boring: st.accel.boring, Lits: st.accel.lits, Table: st.accel.table}
		}
	}
	d.Stats = CompileStats{
		States:     len(order),
		Classes:    e.numClasses,
		TableBytes: d.tableBytes(),
		Duration:   time.Since(began),
	}
	return d, nil
}

// tableBytes estimates the flattened automaton's resident footprint: the
// transition and conditional tables, the effect list and the acceleration
// plans. It is the figure charged to tenant memory budgets.
func (d *Det) tableBytes() int {
	n := 512 + 4*len(d.Trans) + 4*len(d.Cond)
	for _, ef := range d.Effects {
		n += 24 + 4*len(ef.Emits) + len(ef.Collide)
	}
	for _, a := range d.Accel {
		if a == nil {
			continue
		}
		n += 24 + len(a.Boring) + len(a.Lits)
		if a.Table != nil {
			n += 256
		}
	}
	return n
}
