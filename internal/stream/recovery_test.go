package stream

import (
	"reflect"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
)

// Section 5.2 error detection and recovery tests.

func TestRecoveryNoneStaysDead(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{})
	tg := NewTagger(s)
	got := terms(s, tg.Tag([]byte("xx if true then go")))
	if len(got) != 0 {
		t.Errorf("tags = %v, want none (dead after garbage, no recovery)", got)
	}
	if tg.Errors != 0 {
		t.Errorf("Errors = %d, want 0 under RecoveryNone", tg.Errors)
	}
}

func TestRecoveryRestartFindsNextSentence(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{Recovery: core.RecoveryRestart})
	tg := NewTagger(s)
	var errPos []int64
	tg.OnError = func(pos int64) { errPos = append(errPos, pos) }
	got := terms(s, tg.Tag([]byte("xx if true then go")))
	want := []string{"if", "true", "then", "go"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tags = %v, want %v", got, want)
	}
	if tg.Errors == 0 || len(errPos) == 0 {
		t.Error("recovery events not counted")
	}
	// The first error is at the first garbage byte.
	if errPos[0] != 0 {
		t.Errorf("first error at %d, want 0", errPos[0])
	}
}

func TestRecoveryRestartSkipsDamagedSentence(t *testing.T) {
	// The damaged first sentence is lost from the error point, but later
	// sentences are tagged. Recovery re-arms for the byte *after* the one
	// that found the engine dead, so a token beginning immediately at the
	// death byte loses its first character ("go" right after the dead "g"
	// is unrecoverable; the following "stop" is fine).
	s := mustSpec(t, grammar.IfThenElse(), core.Options{Recovery: core.RecoveryRestart})
	tg := NewTagger(s)
	got := terms(s, tg.Tag([]byte("if true bogus stop go stop")))
	want := []string{"if", "true", "stop", "stop"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tags = %v, want %v", got, want)
	}
}

func TestRecoveryResyncResumesMidStructure(t *testing.T) {
	// One corrupted byte inside a message: resync re-arms every tokenizer,
	// so the tokens after the damage are still tagged.
	s := mustSpec(t, grammar.XMLRPC(), core.Options{Recovery: core.RecoveryResync})
	tg := NewTagger(s)
	msg := "<methodCall> <methodName>deposit</methodName> <params> " +
		"<par#m> <i4>42</i4> </param> </params> </methodCall>" // <param> corrupted
	got := terms(s, tg.Tag([]byte(msg)))
	// The prefix up to the corruption is tagged normally.
	prefix := []string{"<methodCall>", "<methodName>", "STRING", "</methodName>", "<params>"}
	if len(got) < len(prefix) || !reflect.DeepEqual(got[:len(prefix)], prefix) {
		t.Fatalf("prefix tags = %v", got)
	}
	// Enabling *every* tokenizer at the error produces some noise (class
	// tokens match fragments of the damaged region), but the stream
	// re-locks: the message tail is tagged exactly.
	tail := []string{"<i4>", "INT", "</i4>", "</param>", "</params>", "</methodCall>"}
	if len(got) < len(tail) || !reflect.DeepEqual(got[len(got)-len(tail):], tail) {
		t.Errorf("tail tags = %v,\nwant suffix %v", got, tail)
	}
	if tg.Errors == 0 {
		t.Error("no recovery events recorded")
	}
}

func TestRecoveryResyncVsRestartCoverage(t *testing.T) {
	// The same corrupted stream: restart loses the rest of the message,
	// resync keeps it. This is the measurable difference between the two
	// section 5.2 policies.
	msg := []byte("<methodCall> <methodName>buy</methodName> <params> " +
		"<par#m> <i4>42</i4> </param> </params> </methodCall>")
	restart := mustSpec(t, grammar.XMLRPC(), core.Options{Recovery: core.RecoveryRestart})
	resync := mustSpec(t, grammar.XMLRPC(), core.Options{Recovery: core.RecoveryResync})
	nRestart := len(NewTagger(restart).Tag(msg))
	nResync := len(NewTagger(resync).Tag(msg))
	if nResync <= nRestart {
		t.Errorf("resync tagged %d, restart %d; resync should recover more", nResync, nRestart)
	}
}

func TestRecoveryCountsPerDeadByte(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{Recovery: core.RecoveryRestart})
	tg := NewTagger(s)
	tg.Tag([]byte("@@@ go"))
	// Each of the three garbage bytes re-arms once.
	if tg.Errors != 3 {
		t.Errorf("Errors = %d, want 3", tg.Errors)
	}
	// Reset clears the counter.
	tg.Tag([]byte("go"))
	if tg.Errors != 0 {
		t.Errorf("Errors after clean run = %d", tg.Errors)
	}
}

func TestRecoveryIgnoredUnderFreeRunning(t *testing.T) {
	s := mustSpec(t, grammar.IfThenElse(), core.Options{
		Recovery: core.RecoveryRestart, FreeRunningStart: true,
	})
	tg := NewTagger(s)
	got := terms(s, tg.Tag([]byte("xx go")))
	if !reflect.DeepEqual(got, []string{"go"}) {
		t.Errorf("tags = %v", got)
	}
	if tg.Errors != 0 {
		t.Errorf("Errors = %d; free-running is never dead", tg.Errors)
	}
}

func TestRecoveryDoesNotFireMidParse(t *testing.T) {
	// While a chain is active or a pending is held, the engine is alive:
	// no recovery events on a clean conforming stream.
	s := mustSpec(t, grammar.XMLRPC(), core.Options{Recovery: core.RecoveryResync})
	tg := NewTagger(s)
	got := tg.Tag([]byte(sampleRPC))
	if tg.Errors != 0 {
		t.Errorf("Errors = %d on conforming input", tg.Errors)
	}
	if len(got) != 12 {
		t.Errorf("tags = %d, want 12", len(got))
	}
}
