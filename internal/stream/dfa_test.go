package stream

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/workload"
)

// optionMatrix is the compile-option sweep the DFA must track the NFA
// through: the paper's default design, unanchored streams, both recovery
// flavors and the ablations that change the mask tables.
func optionMatrix() map[string]core.Options {
	return map[string]core.Options{
		"default":     {},
		"free":        {FreeRunningStart: true},
		"restart":     {Recovery: core.RecoveryRestart},
		"resync":      {Recovery: core.RecoveryResync},
		"no-longest":  {NoLongestMatch: true},
		"all-enabled": {AllEnabled: true},
	}
}

// diffInputs builds a mixed corpus for one spec: conforming sentences,
// corrupted sentences, and raw random bytes.
func diffInputs(spec *core.Spec, seed int64, n int) [][]byte {
	gen := workload.NewGenerator(spec, seed, workload.SentenceOptions{MaxDepth: 6})
	rng := rand.New(rand.NewSource(seed * 31))
	var out [][]byte
	for i := 0; i < n; i++ {
		text, _ := gen.Sentence()
		out = append(out, text)
		if len(text) > 2 {
			bad := append([]byte(nil), text...)
			bad[rng.Intn(len(bad))] = '@'
			out = append(out, bad)
		}
		junk := make([]byte, rng.Intn(64))
		for j := range junk {
			junk[j] = byte(rng.Intn(256))
		}
		out = append(out, junk)
	}
	return out
}

// checkAgainstTagger asserts the DFA and the NFA tagger agree bit for bit
// on one input: same matches, same recovery and collision counters.
func checkAgainstTagger(t *testing.T, tg *Tagger, d *DFA, input []byte, label string) {
	t.Helper()
	want := tg.Tag(input)
	got := d.Tag(input)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: dfa matches differ on %q\ndfa %v\nnfa %v", label, input, got, want)
	}
	if d.Errors != tg.Errors || d.Collisions != tg.Collisions {
		t.Fatalf("%s: counters differ on %q: dfa (%d errs, %d coll), nfa (%d errs, %d coll)",
			label, input, d.Errors, d.Collisions, tg.Errors, tg.Collisions)
	}
}

func TestDFAMatchesTaggerOnBuiltins(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(), grammar.IfThenElse(), grammar.XMLRPC(), grammar.XMLRPCFull(),
	} {
		for name, opts := range optionMatrix() {
			spec := mustSpec(t, g, opts)
			tg := NewTagger(spec)
			d := NewDFA(spec, DFAConfig{})
			for i, input := range diffInputs(spec, 7, 6) {
				checkAgainstTagger(t, tg, d, input, fmt.Sprintf("%s/%s/#%d", g.Name, name, i))
			}
		}
	}
}

func TestDFAMatchesTaggerOnRandomGrammars(t *testing.T) {
	seeds := 15
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		g := workload.RandomGrammar(seed)
		spec := mustSpec(t, g, core.Options{})
		tg := NewTagger(spec)
		d := NewDFA(spec, DFAConfig{})
		for i, input := range diffInputs(spec, seed+3, 4) {
			checkAgainstTagger(t, tg, d, input, fmt.Sprintf("seed%d/#%d", seed, i))
		}
	}
}

// TestDFAChunkingInvariance streams one input in random chunk sizes and
// asserts detections are identical to the whole-buffer pass.
func TestDFAChunkingInvariance(t *testing.T) {
	spec := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	gen := workload.NewGenerator(spec, 5, workload.SentenceOptions{MaxDepth: 8})
	rng := rand.New(rand.NewSource(55))
	d := NewDFA(spec, DFAConfig{})
	for trial := 0; trial < 10; trial++ {
		text, _ := gen.Sentence()
		want := d.Tag(text)
		d.Reset()
		var got []Match
		d.OnMatch = func(m Match) { got = append(got, m) }
		for off := 0; off < len(text); {
			n := 1 + rng.Intn(9)
			if off+n > len(text) {
				n = len(text) - off
			}
			d.Write(text[off : off+n])
			off += n
		}
		d.Close()
		d.OnMatch = nil
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: chunked %v, whole %v", trial, got, want)
		}
	}
}

// TestDFACacheBound forces the tiny cache through its overflow path and
// checks the bound holds at every step while matches stay exact.
func TestDFACacheBound(t *testing.T) {
	spec := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	tg := NewTagger(spec)
	d := NewDFA(spec, DFAConfig{MaxStates: 2})
	if d.MaxStates() != 2 {
		t.Fatalf("MaxStates = %d, want 2", d.MaxStates())
	}
	gen := workload.NewGenerator(spec, 11, workload.SentenceOptions{MaxDepth: 8})
	for trial := 0; trial < 6; trial++ {
		text, _ := gen.Sentence()
		want := tg.Tag(text)
		d.Reset()
		var got []Match
		d.OnMatch = func(m Match) { got = append(got, m) }
		for i := range text {
			d.Write(text[i : i+1])
			if n := d.CacheStates(); n > 2 {
				t.Fatalf("cache grew to %d states, bound 2", n)
			}
		}
		d.Close()
		d.OnMatch = nil
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: bounded dfa %v, nfa %v", trial, got, want)
		}
	}
	if _, _, resets := d.CacheStats(); resets == 0 {
		t.Error("tiny cache saw no resets")
	}
}

// TestDFAWarmCache re-tags the same traffic and checks the second pass is
// served from the cache (misses stop growing) with identical results.
func TestDFAWarmCache(t *testing.T) {
	spec := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	gen := workload.NewGenerator(spec, 23, workload.SentenceOptions{MaxDepth: 8})
	text, _ := gen.Sentence()
	d := NewDFA(spec, DFAConfig{})
	first := d.Tag(text)
	_, coldMisses, _ := d.CacheStats()
	second := d.Tag(text)
	_, warmMisses, _ := d.CacheStats()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("warm pass differs: %v vs %v", second, first)
	}
	if warmMisses != coldMisses {
		t.Errorf("warm pass computed %d new transitions, want 0", warmMisses-coldMisses)
	}
	if hits, _, _ := d.CacheStats(); hits == 0 {
		t.Error("no cache hits recorded")
	}
	if d.CacheStates() > d.MaxStates() {
		t.Errorf("cache holds %d states, bound %d", d.CacheStates(), d.MaxStates())
	}
}

// TestDFACloneSharesEngineNotCache checks clones start cold but agree.
func TestDFACloneSharesEngineNotCache(t *testing.T) {
	spec := mustSpec(t, grammar.IfThenElse(), core.Options{})
	d := NewDFA(spec, DFAConfig{})
	input := []byte("if true then go else stop")
	want := d.Tag(input)
	c := d.Clone()
	if got := c.Tag(input); !reflect.DeepEqual(got, want) {
		t.Fatalf("clone tags %v, want %v", got, want)
	}
	if c.e != d.e {
		t.Error("clone does not share the compiled engine")
	}
	if c.Cache() == d.Cache() {
		t.Error("clone shares the transition cache; want a private one")
	}
}

func TestDFAWriteAfterClose(t *testing.T) {
	spec := mustSpec(t, grammar.IfThenElse(), core.Options{})
	d := NewDFA(spec, DFAConfig{})
	d.Write([]byte("go"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := d.Write([]byte("x")); err == nil {
		t.Error("Write after Close succeeded")
	}
}

// TestByteClassCompression checks the equivalence-class partition: far
// fewer than 256 columns on real grammars, and every byte of a class
// behaves like its representative (guaranteed by construction, spot-checked
// against a fresh full-width interpretation via the tagger itself).
func TestByteClassCompression(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(), grammar.IfThenElse(), grammar.XMLRPC(),
	} {
		spec := mustSpec(t, g, core.Options{})
		tg := NewTagger(spec)
		e := tg.e
		if e.numClasses >= 256 {
			t.Errorf("%s: %d byte classes, want < 256", g.Name, e.numClasses)
		}
		if e.numClasses < 2 {
			t.Errorf("%s: %d byte classes, want >= 2", g.Name, e.numClasses)
		}
		for b := 0; b < 256; b++ {
			c := e.classOf[b]
			if int(c) >= e.numClasses {
				t.Fatalf("%s: byte %d maps to class %d of %d", g.Name, b, c, e.numClasses)
			}
			if e.delimC[c] != spec.Delim.Has(byte(b)) {
				t.Fatalf("%s: byte %d delimiter bit differs from its class", g.Name, b)
			}
		}
	}
}

// accelInputs builds inputs crafted to park the DFA in accelerable
// states: generated sentences stitched together with long delimiter runs,
// long non-matching runs and long token-interior runs.
func accelInputs(spec *core.Spec, seed int64) [][]byte {
	gen := workload.NewGenerator(spec, seed, workload.SentenceOptions{MaxDepth: 6})
	runs := [][]byte{
		bytes.Repeat([]byte(" "), 4096),
		bytes.Repeat([]byte("\n"), 2048),
		bytes.Repeat([]byte("z"), 4096),
		bytes.Repeat([]byte{0xee}, 2048),
		bytes.Repeat([]byte("ab"), 1024),
	}
	var out [][]byte
	for _, run := range runs {
		a, _ := gen.Sentence()
		b, _ := gen.Sentence()
		var buf []byte
		buf = append(buf, run...)
		buf = append(buf, a...)
		buf = append(buf, run...)
		buf = append(buf, b...)
		buf = append(buf, run...)
		out = append(out, buf)
	}
	return out
}

// TestDFAAccelMatchesUnaccelerated runs the full option matrix over
// run-heavy inputs and asserts accelerated DFA == unaccelerated DFA ==
// NFA tagger, matches and counters alike.
func TestDFAAccelMatchesUnaccelerated(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(), grammar.IfThenElse(), grammar.XMLRPC(), grammar.XMLRPCFull(),
	} {
		for name, opts := range optionMatrix() {
			spec := mustSpec(t, g, opts)
			tg := NewTagger(spec)
			acc := NewDFA(spec, DFAConfig{})
			plain := NewDFA(spec, DFAConfig{NoAccel: true})
			for i, input := range accelInputs(spec, 17) {
				label := fmt.Sprintf("%s/%s/run#%d", g.Name, name, i)
				checkAgainstTagger(t, tg, acc, input, label+"/accel")
				checkAgainstTagger(t, tg, plain, input, label+"/noaccel")
			}
		}
	}
}

// TestDFAAccelEngages checks the probe actually marks states on the
// grammar the benches use, and that skipped bytes keep hits+misses equal
// to the bytes processed.
func TestDFAAccelEngages(t *testing.T) {
	spec := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	d := NewDFA(spec, DFAConfig{})
	input := accelInputs(spec, 3)[0]
	matches := d.Tag(input)
	if len(matches) == 0 {
		t.Fatal("crafted input produced no matches at all")
	}
	accelStates := 0
	for _, st := range d.cache.states {
		if st.accel != nil {
			accelStates++
		}
	}
	if accelStates == 0 {
		t.Error("no cached state qualified for skip-ahead on a run-heavy input")
	}
	hits, misses, _ := d.CacheStats()
	if got, want := hits+misses, int64(len(input)); got != want {
		t.Errorf("hits+misses = %d, want %d (every byte accounted for)", got, want)
	}
	plain := NewDFA(spec, DFAConfig{NoAccel: true})
	plain.Tag(input)
	for _, st := range plain.cache.states {
		if st.accel != nil {
			t.Fatal("NoAccel still built a skip-ahead plan")
		}
	}
}

// TestDFAAccelChunkingInvariance streams run-heavy input in random chunk
// sizes: skip-ahead must not depend on where chunk boundaries fall.
func TestDFAAccelChunkingInvariance(t *testing.T) {
	spec := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	d := NewDFA(spec, DFAConfig{})
	rng := rand.New(rand.NewSource(99))
	for trial, text := range accelInputs(spec, 29) {
		want := d.Tag(text)
		d.Reset()
		var got []Match
		d.OnMatch = func(m Match) { got = append(got, m) }
		for off := 0; off < len(text); {
			n := 1 + rng.Intn(300)
			if off+n > len(text) {
				n = len(text) - off
			}
			d.Write(text[off : off+n])
			off += n
		}
		d.Close()
		d.OnMatch = nil
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: chunked %d matches, whole %d", trial, len(got), len(want))
		}
	}
}

// TestDFAAccelTinyCache runs skip-ahead under a 2-state bound: resets must
// not invalidate in-flight acceleration.
func TestDFAAccelTinyCache(t *testing.T) {
	spec := mustSpec(t, grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	tg := NewTagger(spec)
	d := NewDFA(spec, DFAConfig{MaxStates: 2})
	for i, input := range accelInputs(spec, 41) {
		checkAgainstTagger(t, tg, d, input, fmt.Sprintf("tiny/run#%d", i))
	}
}
