package match

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicScan(t *testing.T) {
	m, err := New([]string{"he", "she", "his", "hers"})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Scan([]byte("ushers"))
	// u s h e r s
	// 0 1 2 3 4 5 : "she" ends at 4? no: s(1)h(2)e(3) → "she" ends at 3,
	// "he" ends at 3, "hers" ends at 5.
	want := []Match{{Pattern: 1, End: 3}, {Pattern: 0, End: 3}, {Pattern: 3, End: 5}}
	if len(got) != len(want) {
		t.Fatalf("matches = %v, want %v", got, want)
	}
	// Order within one offset is by suffix-link depth; compare as sets.
	seen := map[Match]bool{}
	for _, g := range got {
		seen[g] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("missing match %v in %v", w, got)
		}
	}
}

func TestOverlapping(t *testing.T) {
	m, err := New([]string{"aa"})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Scan([]byte("aaaa"))
	want := []Match{{0, 1}, {0, 2}, {0, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("overlapping = %v, want %v", got, want)
	}
}

func TestCount(t *testing.T) {
	m, err := New([]string{"ab", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if n := m.Count([]byte("abab")); n != 4 {
		t.Errorf("count = %d, want 4", n)
	}
}

func TestEmptyPatternRejected(t *testing.T) {
	if _, err := New([]string{"a", ""}); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestNoMatches(t *testing.T) {
	m, err := New([]string{"xyz"})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Scan([]byte("abcabc")); len(got) != 0 {
		t.Errorf("matches = %v", got)
	}
}

func TestAgainstStringsCount(t *testing.T) {
	patterns := []string{"ab", "bc", "abc", "ca", "aaa", "b"}
	m, err := New(patterns)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []byte) bool {
		data := make([]byte, len(raw))
		for i := range raw {
			data[i] = "abc"[int(raw[i])%3]
		}
		got := 0
		for _, mt := range m.Scan(data) {
			_ = mt
			got++
		}
		want := 0
		s := string(data)
		for _, p := range patterns {
			for i := 0; i+len(p) <= len(s); i++ {
				if s[i:i+len(p)] == p {
					want++
				}
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStreamingStateReuse(t *testing.T) {
	m, err := New([]string{"abc"})
	if err != nil {
		t.Fatal(err)
	}
	// Feeding byte by byte across chunk boundaries still matches.
	state := int32(0)
	hits := 0
	for _, b := range []byte("xxabcxx") {
		state = m.Step(state, b)
		hits += len(m.Outputs(state))
	}
	if hits != 1 {
		t.Errorf("streaming hits = %d, want 1", hits)
	}
}

func TestContextBlindness(t *testing.T) {
	// The motivating failure: a matcher finds "deposit" anywhere, even
	// outside a methodName context. (The router examples show the tagger
	// does not.)
	m, err := New([]string{"deposit"})
	if err != nil {
		t.Fatal(err)
	}
	inContext := "<methodCall><methodName>deposit</methodName></methodCall>"
	outOfContext := "<methodCall><methodName>list</methodName><params><param><string>deposit</string></param></params></methodCall>"
	if n := m.Count([]byte(inContext)); n != 1 {
		t.Errorf("in-context count = %d", n)
	}
	if n := m.Count([]byte(outOfContext)); n != 1 {
		t.Error("matcher should (blindly) fire out of context too — that is the point")
	}
}

func TestPatternsAccessor(t *testing.T) {
	ps := []string{"a", "b"}
	m, err := New(ps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Patterns(), ps) {
		t.Error("Patterns() mismatch")
	}
}

func TestLongPatternSet(t *testing.T) {
	// A tag-shaped pattern set like the XML-RPC token list.
	var ps []string
	for _, base := range []string{"methodCall", "methodName", "params", "param", "i4", "int", "string"} {
		ps = append(ps, "<"+base+">", "</"+base+">")
	}
	m, err := New(ps)
	if err != nil {
		t.Fatal(err)
	}
	doc := "<methodCall><methodName>hi</methodName><params><param><i4>42</i4></param></params></methodCall>"
	// 10 tags; note "<param>" does not fire inside "<params>" (the 's'
	// precedes the '>').
	n := m.Count([]byte(doc))
	if n != 10 {
		t.Errorf("tag count = %d, want 10", n)
	}
	if !strings.HasPrefix(ps[0], "<") {
		t.Fatal("sanity")
	}
}
