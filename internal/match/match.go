// Package match is the context-free baseline: an Aho–Corasick multi-
// pattern matcher over the grammar's literal tokens. It represents the
// conventional deep-packet-inspection engines of the paper's related work
// (section 2) — fast, but blind to context, so a keyword in the wrong
// place still fires. The NIDS example and the false-positive benches
// compare it against the context-aware tagger.
package match

import (
	"fmt"
	"sort"
)

// Match is one pattern detection.
type Match struct {
	// Pattern indexes the pattern list given to New.
	Pattern int
	// End is the offset of the last byte of the occurrence.
	End int64
}

// Matcher is an Aho–Corasick automaton. It is safe for concurrent readers
// after construction; each stream should use its own cursor via Feed state
// (the zero state is the root, so distinct scans can share the Matcher by
// tracking their own state).
type Matcher struct {
	patterns []string
	next     []map[byte]int32 // goto function per node
	fail     []int32
	// out[node] lists pattern indexes ending at the node (including via
	// suffix links).
	out [][]int32
	// delta is the dense DFA transition table (node*256 + byte), built
	// after the failure links so scanning is a single table walk per byte.
	delta []int32
}

// New builds the automaton. Empty patterns are rejected.
func New(patterns []string) (*Matcher, error) {
	m := &Matcher{patterns: patterns}
	m.next = append(m.next, map[byte]int32{})
	m.fail = append(m.fail, 0)
	m.out = append(m.out, nil)
	for pi, p := range patterns {
		if p == "" {
			return nil, fmt.Errorf("match: pattern %d is empty", pi)
		}
		node := int32(0)
		for i := 0; i < len(p); i++ {
			b := p[i]
			nxt, ok := m.next[node][b]
			if !ok {
				nxt = int32(len(m.next))
				m.next[node][b] = nxt
				m.next = append(m.next, map[byte]int32{})
				m.fail = append(m.fail, 0)
				m.out = append(m.out, nil)
			}
			node = nxt
		}
		m.out[node] = append(m.out[node], int32(pi))
	}
	// BFS for failure links.
	var queue []int32
	for _, n := range m.next[0] {
		queue = append(queue, n)
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for b, child := range m.next[node] {
			queue = append(queue, child)
			f := m.fail[node]
			for {
				if n, ok := m.next[f][b]; ok && n != child {
					m.fail[child] = n
					break
				}
				if f == 0 {
					break
				}
				f = m.fail[f]
			}
			m.out[child] = append(m.out[child], m.out[m.fail[child]]...)
		}
	}
	// Densify into a DFA: delta[s][b] follows goto, falling back through
	// failure links.
	m.delta = make([]int32, len(m.next)*256)
	for s := range m.next {
		for b := 0; b < 256; b++ {
			m.delta[s*256+b] = m.slowStep(int32(s), byte(b))
		}
	}
	return m, nil
}

func (m *Matcher) slowStep(state int32, b byte) int32 {
	for {
		if n, ok := m.next[state][b]; ok {
			return n
		}
		if state == 0 {
			return 0
		}
		state = m.fail[state]
	}
}

// Step advances one byte from the given state, returning the new state.
func (m *Matcher) Step(state int32, b byte) int32 {
	return m.delta[int(state)*256+int(b)]
}

// Outputs returns the pattern indexes detected at a state.
func (m *Matcher) Outputs(state int32) []int32 { return m.out[state] }

// Scan finds every occurrence of every pattern in the buffer.
func (m *Matcher) Scan(data []byte) []Match {
	var out []Match
	state := int32(0)
	for i, b := range data {
		state = m.Step(state, b)
		for _, pi := range m.out[state] {
			out = append(out, Match{Pattern: int(pi), End: int64(i)})
		}
	}
	return out
}

// Count tallies total occurrences without materializing matches — the
// throughput-bench entry point.
func (m *Matcher) Count(data []byte) int {
	n := 0
	state := int32(0)
	for _, b := range data {
		state = m.Step(state, b)
		n += len(m.out[state])
	}
	return n
}

// Patterns returns the pattern list.
func (m *Matcher) Patterns() []string { return m.patterns }
