package parser

import (
	"errors"
	"fmt"

	"cfgtag/internal/firstfollow"
	"cfgtag/internal/grammar"
)

// Acceptor is a streaming LL(1) stack machine over terminal events — the
// software model of the paper's section 5.2 stack extension ("a stack can
// be added to the architecture to give the hardware parser all the power
// of a software parser"). It consumes one terminal at a time, maintains
// the recursion stack the tagging engine deliberately omits, and reports
// exactly which production position consumed each terminal. The stack is
// depth-bounded, as a hardware stack would be.
type Acceptor struct {
	table *Table
	stack []frame
	depth int // high-water mark
	max   int
	done  bool
}

// ErrStackOverflow reports that the bounded hardware stack would have
// overflowed (recursion deeper than the configured capacity).
var ErrStackOverflow = errors.New("parser: stack overflow")

// NewAcceptor starts a recognition at the grammar's start symbol. maxDepth
// bounds the stack (a hardware resource); 0 means 4096.
func (t *Table) NewAcceptor(maxDepth int) *Acceptor {
	if maxDepth == 0 {
		maxDepth = 4096
	}
	a := &Acceptor{table: t, max: maxDepth}
	a.Reset()
	return a
}

// Reset rewinds to the start symbol.
func (a *Acceptor) Reset() {
	g := a.table.spec.Grammar
	a.stack = a.stack[:0]
	a.stack = append(a.stack, frame{
		sym: grammar.Symbol{Kind: grammar.NonTerminal, Name: g.Start}, rule: -1, pos: -1,
	})
	a.depth = 1
	a.done = false
}

// Depth returns the stack high-water mark since the last Reset.
func (a *Acceptor) Depth() int { return a.depth }

// Offer consumes the next terminal and returns the production position
// (rule, pos) that consumed it. An error means the terminal sequence is
// not a prefix of any sentence — the recursion violation the stack-less
// engine cannot see.
func (a *Acceptor) Offer(term string) (rule, pos int, err error) {
	if a.done {
		return 0, 0, fmt.Errorf("parser: terminal %q after a completed sentence", term)
	}
	g := a.table.spec.Grammar
	for {
		if len(a.stack) == 0 {
			return 0, 0, fmt.Errorf("parser: terminal %q after sentence end", term)
		}
		top := a.stack[len(a.stack)-1]
		if top.sym.Kind == grammar.Terminal {
			if top.sym.Name != term {
				return 0, 0, fmt.Errorf("parser: expected %q, got %q", top.sym.Name, term)
			}
			a.stack = a.stack[:len(a.stack)-1]
			return top.rule, top.pos, nil
		}
		ri, ok := a.table.cells[top.sym.Name][term]
		if !ok {
			return 0, 0, fmt.Errorf("parser: %s cannot derive a string starting with %q", top.sym.Name, term)
		}
		a.stack = a.stack[:len(a.stack)-1]
		rhs := g.Rules[ri-1].RHS
		for i := len(rhs) - 1; i >= 0; i-- {
			a.stack = append(a.stack, frame{sym: rhs[i], rule: ri - 1, pos: i})
		}
		if len(a.stack) > a.max {
			return 0, 0, ErrStackOverflow
		}
		if len(a.stack) > a.depth {
			a.depth = len(a.stack)
		}
	}
}

// Finish verifies that the consumed terminals form a complete sentence
// (remaining stack symbols all derive ε).
func (a *Acceptor) Finish() error {
	g := a.table.spec.Grammar
	for len(a.stack) > 0 {
		top := a.stack[len(a.stack)-1]
		if top.sym.Kind == grammar.Terminal {
			return fmt.Errorf("parser: input ended, expected %q", top.sym.Name)
		}
		ri, ok := a.table.cells[top.sym.Name][firstfollow.End]
		if !ok {
			return fmt.Errorf("parser: input ended inside %s", top.sym.Name)
		}
		a.stack = a.stack[:len(a.stack)-1]
		rhs := g.Rules[ri-1].RHS
		for i := len(rhs) - 1; i >= 0; i-- {
			a.stack = append(a.stack, frame{sym: rhs[i], rule: ri - 1, pos: i})
		}
	}
	a.done = true
	return nil
}

// Complete reports whether the terminals consumed so far could end a
// sentence right now (without mutating the acceptor) — the message-
// boundary predicate for stream validation.
func (a *Acceptor) Complete() bool {
	// Walk a copy of the stack applying only ε-derivations.
	stack := append([]frame(nil), a.stack...)
	g := a.table.spec.Grammar
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		if top.sym.Kind == grammar.Terminal {
			return false
		}
		ri, ok := a.table.cells[top.sym.Name][firstfollow.End]
		if !ok {
			return false
		}
		stack = stack[:len(stack)-1]
		rhs := g.Rules[ri-1].RHS
		for i := len(rhs) - 1; i >= 0; i-- {
			stack = append(stack, frame{sym: rhs[i], rule: ri - 1, pos: i})
		}
	}
	return true
}
