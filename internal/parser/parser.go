// Package parser implements the table-driven LL(1) predictive parser — the
// "true parser" the paper's stack-less engine is contrasted with
// (section 3.1). It maintains the recursion stack the hardware deliberately
// omits, so it accepts exactly the grammar's language, rejects
// non-conforming input, and tags every token with the production position
// that consumed it. It doubles as the correctness oracle for the tagger
// and the software-throughput baseline.
//
// The parser drives the reference lexer predictively: at each step only
// the terminals acceptable in the current parse state are tried, the same
// contextual narrowing the hardware achieves with its Follow wiring.
package parser

import (
	"fmt"
	"sort"

	"cfgtag/internal/core"
	"cfgtag/internal/firstfollow"
	"cfgtag/internal/grammar"
	"cfgtag/internal/lexer"
)

// Table is an LL(1) parse table: for each nonterminal, the rule to apply
// on each lookahead terminal.
type Table struct {
	spec *core.Spec
	// cells[nt][term] = rule index + 1 (0 = error).
	cells map[string]map[string]int
	// epsilonOn[nt][term] is set when the chosen rule is an epsilon rule
	// selected via Follow(nt).
	allowed map[string][]int // nt → token indexes acceptable as lookahead
}

// Conflict describes an LL(1) table collision.
type Conflict struct {
	NonTerminal  string
	Terminal     string
	RuleA, RuleB int
}

func (c Conflict) Error() string {
	return fmt.Sprintf("parser: grammar is not LL(1): %s on lookahead %q selects both rule %d and rule %d",
		c.NonTerminal, c.Terminal, c.RuleA, c.RuleB)
}

// BuildTable constructs the LL(1) table from the spec's First/Follow sets,
// failing on any conflict.
func BuildTable(spec *core.Spec) (*Table, error) {
	g := spec.Grammar
	sets := spec.Sets
	t := &Table{
		spec:    spec,
		cells:   make(map[string]map[string]int),
		allowed: make(map[string][]int),
	}
	for _, nt := range g.NonTerminals() {
		t.cells[nt] = make(map[string]int)
	}
	set := func(nt, term string, rule int) error {
		if prev, ok := t.cells[nt][term]; ok && prev != rule+1 {
			return Conflict{NonTerminal: nt, Terminal: term, RuleA: prev - 1, RuleB: rule}
		}
		t.cells[nt][term] = rule + 1
		return nil
	}
	for ri, r := range g.Rules {
		first, nullable := sets.FirstOfSeq(r.RHS)
		for _, term := range first {
			if err := set(r.LHS, term, ri); err != nil {
				return nil, err
			}
		}
		if nullable {
			for _, term := range sets.Follow(r.LHS) {
				if err := set(r.LHS, term, ri); err != nil {
					return nil, err
				}
			}
		}
	}
	for nt, row := range t.cells {
		var idx []int
		for term := range row {
			if term == firstfollow.End {
				continue
			}
			idx = append(idx, g.TokenIndex(term))
		}
		sort.Ints(idx)
		t.allowed[nt] = idx
	}
	return t, nil
}

// Tagged is one parsed token with its grammatical context — directly
// comparable to a tagger instance detection.
type Tagged struct {
	// Rule and Pos locate the production position that consumed the token.
	Rule, Pos int
	// TokenIndex indexes the grammar token list.
	TokenIndex int
	// Start and End delimit the lexeme.
	Start, End int
}

// ParseError reports a syntax error with its input position.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("parser: offset %d: %s", e.Pos, e.Msg)
}

// stack frames carry the symbol plus the production position it came from
// so terminals can be tagged with their context.
type frame struct {
	sym  grammar.Symbol
	rule int
	pos  int
}

// Parse runs the predictive parser over the input, returning every token
// with the production position that consumed it. The input must be a
// complete sentence of the grammar.
func (t *Table) Parse(input []byte) ([]Tagged, error) {
	g := t.spec.Grammar
	lx := lexer.New(t.spec, input)
	var out []Tagged

	var stack []frame
	push := func(ri int, rhs []grammar.Symbol) {
		for i := len(rhs) - 1; i >= 0; i-- {
			stack = append(stack, frame{sym: rhs[i], rule: ri, pos: i})
		}
	}
	stack = append(stack, frame{sym: grammar.Symbol{Kind: grammar.NonTerminal, Name: g.Start}, rule: -1, pos: -1})

	// One-token lookahead cache filled while deciding expansions.
	haveLook := false
	var look lexer.Lexeme
	peek := func(allowed []int) (lexer.Lexeme, error) {
		if haveLook {
			return look, nil
		}
		l, err := lx.Next(allowed)
		if err != nil {
			return lexer.Lexeme{}, err
		}
		look, haveLook = l, true
		return l, nil
	}

	for len(stack) > 0 {
		top := stack[len(stack)-1]
		if top.sym.Kind == grammar.Terminal {
			want := g.TokenIndex(top.sym.Name)
			if !haveLook {
				if _, err := peek([]int{want}); err != nil {
					return out, &ParseError{Pos: lx.Pos(), Msg: fmt.Sprintf("expected %q: %v", top.sym.Name, err)}
				}
			}
			if look.TokenIndex != want {
				return out, &ParseError{Pos: look.Start,
					Msg: fmt.Sprintf("expected %q, found %q", top.sym.Name, g.Tokens[look.TokenIndex].Name)}
			}
			stack = stack[:len(stack)-1]
			out = append(out, Tagged{
				Rule: top.rule, Pos: top.pos,
				TokenIndex: look.TokenIndex, Start: look.Start, End: look.End,
			})
			haveLook = false
			continue
		}

		nt := top.sym.Name
		if lx.EOF() && !haveLook {
			// Only epsilon derivations can complete; pick the rule chosen
			// on the End marker.
			ri, ok := t.cells[nt][firstfollow.End]
			if !ok {
				return out, &ParseError{Pos: lx.Pos(), Msg: fmt.Sprintf("unexpected end of input in %s", nt)}
			}
			stack = stack[:len(stack)-1]
			push(ri-1, g.Rules[ri-1].RHS)
			continue
		}
		l, err := peek(t.allowed[nt])
		if err != nil {
			return out, &ParseError{Pos: lx.Pos(), Msg: fmt.Sprintf("in %s: %v", nt, err)}
		}
		term := g.Tokens[l.TokenIndex].Name
		ri, ok := t.cells[nt][term]
		if !ok {
			return out, &ParseError{Pos: l.Start, Msg: fmt.Sprintf("%s cannot start with %q", nt, term)}
		}
		stack = stack[:len(stack)-1]
		push(ri-1, g.Rules[ri-1].RHS)
	}

	if haveLook {
		return out, &ParseError{Pos: look.Start, Msg: "trailing token after sentence"}
	}
	if !lx.EOF() {
		return out, &ParseError{Pos: lx.Pos(), Msg: "trailing input after sentence"}
	}
	return out, nil
}

// Accepts reports whether the input is a sentence of the grammar.
func (t *Table) Accepts(input []byte) bool {
	_, err := t.Parse(input)
	return err == nil
}
