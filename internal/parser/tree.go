package parser

import (
	"fmt"
	"strings"

	"cfgtag/internal/grammar"
)

// Node is one vertex of a parse tree: a nonterminal with the rule that
// expanded it and its children, or a terminal leaf carrying its lexeme —
// the structure the paper's section 5.1 envisions the tagger feeding ("the
// parser could identify tokens to create a parse tree").
type Node struct {
	// Symbol is the nonterminal or terminal name.
	Symbol string
	// Terminal marks leaves.
	Terminal bool
	// Rule is the grammar rule that expanded a nonterminal node (-1 for
	// leaves).
	Rule int
	// Lexeme is the matched text of a terminal leaf.
	Lexeme string
	// Start and End delimit the leaf's lexeme in the input.
	Start, End int
	// Children are the RHS symbols of the expansion, in order.
	Children []*Node
}

// ParseTree parses the input and builds its parse tree.
func (t *Table) ParseTree(input []byte) (*Node, error) {
	g := t.spec.Grammar
	tags, err := t.Parse(input)
	if err != nil {
		return nil, err
	}
	// Rebuild the derivation from the tagged tokens: replay the LL(1)
	// choices, consuming tags in order.
	root := &Node{Symbol: g.Start, Rule: -1}
	type frame struct {
		sym    grammar.Symbol
		parent *Node
	}
	stack := []frame{{sym: grammar.Symbol{Kind: grammar.NonTerminal, Name: g.Start}, parent: nil}}
	pos := 0
	// The first popped frame is the start symbol and maps onto root.
	firstFrame := true

	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.sym.Kind == grammar.Terminal {
			if pos >= len(tags) {
				return nil, fmt.Errorf("parser: tree replay ran out of tokens at %q", f.sym.Name)
			}
			tag := tags[pos]
			pos++
			leaf := &Node{
				Symbol:   f.sym.Name,
				Terminal: true,
				Rule:     -1,
				Lexeme:   string(input[tag.Start : tag.End+1]),
				Start:    tag.Start,
				End:      tag.End,
			}
			f.parent.Children = append(f.parent.Children, leaf)
			continue
		}
		var node *Node
		if firstFrame {
			node, firstFrame = root, false
		} else {
			node = &Node{Symbol: f.sym.Name, Rule: -1}
			f.parent.Children = append(f.parent.Children, node)
		}
		// Choose the rule the parse used: the next tag's context when it
		// descends from this node, else the epsilon/End rule.
		ri := t.ruleForReplay(node, tags, pos)
		if ri < 0 {
			return nil, fmt.Errorf("parser: tree replay cannot choose a rule for %s", f.sym.Name)
		}
		node.Rule = ri
		rhs := g.Rules[ri].RHS
		for i := len(rhs) - 1; i >= 0; i-- {
			stack = append(stack, frame{sym: rhs[i], parent: node})
		}
	}
	if pos != len(tags) {
		return nil, fmt.Errorf("parser: tree replay consumed %d of %d tokens", pos, len(tags))
	}
	return root, nil
}

// ruleForReplay picks the expansion for a nonterminal during replay using
// the LL(1) table keyed by the next unconsumed tag (or End).
func (t *Table) ruleForReplay(node *Node, tags []Tagged, pos int) int {
	g := t.spec.Grammar
	var term string
	if pos < len(tags) {
		term = g.Tokens[tags[pos].TokenIndex].Name
	}
	if term != "" {
		if ri, ok := t.cells[node.Symbol][term]; ok {
			return ri - 1
		}
	}
	// Fall back to the epsilon derivation chosen on end-of-input.
	if ri, ok := t.cells[node.Symbol]["$end"]; ok {
		return ri - 1
	}
	// Any-follow epsilon: pick the unique nullable rule if present.
	for _, ri := range g.RulesFor(node.Symbol) {
		if len(g.Rules[ri].RHS) == 0 {
			return ri
		}
	}
	return -1
}

// String renders the tree with two-space indentation, leaves as
// symbol=`lexeme`.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if n.Terminal {
		fmt.Fprintf(b, "%s=%q\n", n.Symbol, n.Lexeme)
		return
	}
	fmt.Fprintf(b, "%s\n", n.Symbol)
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// Find returns the first descendant (pre-order, including n) with the
// symbol, or nil.
func (n *Node) Find(symbol string) *Node {
	if n.Symbol == symbol {
		return n
	}
	for _, c := range n.Children {
		if f := c.Find(symbol); f != nil {
			return f
		}
	}
	return nil
}

// Text concatenates the lexemes of all terminal descendants.
func (n *Node) Text() string {
	if n.Terminal {
		return n.Lexeme
	}
	var b strings.Builder
	for _, c := range n.Children {
		b.WriteString(c.Text())
	}
	return b.String()
}
