package parser

import (
	"strings"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

func table(t *testing.T, g *grammar.Grammar) *Table {
	t.Helper()
	s, err := core.Compile(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := BuildTable(s)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestAcceptsConforming(t *testing.T) {
	tbl := table(t, grammar.IfThenElse())
	good := []string{
		"go",
		"stop",
		"if true then go else stop",
		"if false then if true then go else stop else go",
	}
	for _, in := range good {
		if !tbl.Accepts([]byte(in)) {
			t.Errorf("rejected conforming %q", in)
		}
	}
}

func TestRejectsNonConforming(t *testing.T) {
	tbl := table(t, grammar.IfThenElse())
	bad := []string{
		"",
		"then",
		"if true go",
		"if true then go else",
		"go go",
		"if true then go else stop stop",
		"iff true then go else stop",
	}
	for _, in := range bad {
		if tbl.Accepts([]byte(in)) {
			t.Errorf("accepted non-conforming %q", in)
		}
	}
}

func TestBalancedParensExactness(t *testing.T) {
	// The LL(1) parser keeps the stack the hardware drops: it accepts only
	// balanced strings, while the tagger accepts the superset. This pair
	// of tests pins the section 3.1 trade-off from both sides.
	tbl := table(t, grammar.BalancedParens())
	for _, in := range []string{"0", "( 0 )", "( ( ( 0 ) ) )"} {
		if !tbl.Accepts([]byte(in)) {
			t.Errorf("rejected balanced %q", in)
		}
	}
	for _, in := range []string{"( 0", "0 )", "( 0 ) )", "( ( 0 )"} {
		if tbl.Accepts([]byte(in)) {
			t.Errorf("accepted unbalanced %q", in)
		}
	}
}

func TestTagsMatchTagger(t *testing.T) {
	// On conforming input the parser's (rule, pos, end) tags must agree
	// with the stream tagger's instance detections — the oracle property.
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(), grammar.IfThenElse(), grammar.XMLRPC(),
	} {
		s, err := core.Compile(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := BuildTable(s)
		if err != nil {
			t.Fatal(err)
		}
		tg := stream.NewTagger(s)
		gen := workload.NewGenerator(s, 21, workload.SentenceOptions{})
		for trial := 0; trial < 100; trial++ {
			text, _ := gen.Sentence()
			tags, err := tbl.Parse(text)
			if err != nil {
				t.Fatalf("%s trial %d: parser rejected generated sentence %q: %v", g.Name, trial, text, err)
			}
			ms := tg.Tag(text)
			if len(ms) != len(tags) {
				t.Fatalf("%s trial %d: tagger %d vs parser %d tokens\n%q", g.Name, trial, len(ms), len(tags), text)
			}
			for i, tag := range tags {
				in := s.Instances[ms[i].InstanceID]
				if in.Rule != tag.Rule || in.Pos != tag.Pos || ms[i].End != int64(tag.End) {
					t.Fatalf("%s trial %d token %d: tagger (%d,%d,%d) vs parser (%d,%d,%d)\n%q",
						g.Name, trial, i, in.Rule, in.Pos, ms[i].End, tag.Rule, tag.Pos, tag.End, text)
				}
			}
		}
	}
}

func TestXMLRPCParse(t *testing.T) {
	tbl := table(t, grammar.XMLRPC())
	msg := "<methodCall> <methodName>deposit</methodName> <params> " +
		"<param> <i4>42</i4> </param> </params> </methodCall>"
	tags, err := tbl.Parse([]byte(msg))
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 12 {
		t.Errorf("tagged %d tokens, want 12", len(tags))
	}
	// The INT lexeme must be classified INT (not STRING): predictive
	// lexing narrows by parse context exactly like the hardware wiring.
	found := false
	g := grammar.XMLRPC()
	for _, tag := range tags {
		if g.Tokens[tag.TokenIndex].Name == "INT" {
			found = true
		}
		if g.Tokens[tag.TokenIndex].Name == "STRING" && tag.Rule >= 0 &&
			g.Rules[tag.Rule].LHS == "i4" {
			t.Error("42 misclassified as STRING inside i4")
		}
	}
	if !found {
		t.Error("INT token not found")
	}
}

func TestRejectsTruncatedXMLRPC(t *testing.T) {
	tbl := table(t, grammar.XMLRPC())
	msgs := []string{
		"<methodCall> <methodName>hi</methodName>",
		"<methodCall> <methodName>hi</methodName> <params> </methodCall>",
		"<params> </params>",
	}
	for _, m := range msgs {
		if tbl.Accepts([]byte(m)) {
			t.Errorf("accepted malformed %q", m)
		}
	}
}

func TestNonLL1Rejected(t *testing.T) {
	// S : "a" "b" | "a" "c" has a FIRST/FIRST conflict on "a".
	g, err := grammar.Parse("nonll1", "%%\nS : \"a\" \"b\" | \"a\" \"c\" ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Compile(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildTable(s); err == nil {
		t.Error("non-LL(1) grammar accepted")
	} else if !strings.Contains(err.Error(), "not LL(1)") {
		t.Errorf("error = %v", err)
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	tbl := table(t, grammar.IfThenElse())
	_, err := tbl.Parse([]byte("if true go"))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if pe.Pos != 8 {
		t.Errorf("error position = %d, want 8 (the 'go')", pe.Pos)
	}
}

func TestEpsilonAtEOF(t *testing.T) {
	// params may be empty: "<params> </params>" exercises the epsilon-
	// at-lookahead path; a grammar whose sentence can END on a nullable
	// nonterminal exercises the epsilon-at-EOF path.
	g, err := grammar.Parse("trail", "%%\nS : \"x\" Tail ;\nTail : | \"y\" Tail ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Compile(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := BuildTable(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{"x", "x y", "x y y y"} {
		if !tbl.Accepts([]byte(in)) {
			t.Errorf("rejected %q", in)
		}
	}
	if tbl.Accepts([]byte("x y x")) {
		t.Error("accepted trailing garbage")
	}
}
