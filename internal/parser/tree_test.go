package parser

import (
	"strings"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/workload"
)

func TestParseTreeShape(t *testing.T) {
	tbl := table(t, grammar.IfThenElse())
	tree, err := tbl.ParseTree([]byte("if true then go else stop"))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Symbol != "E" || len(tree.Children) != 6 {
		t.Fatalf("root: %s with %d children\n%s", tree.Symbol, len(tree.Children), tree)
	}
	// Child 1 is the condition nonterminal C holding "true".
	c := tree.Children[1]
	if c.Symbol != "C" || len(c.Children) != 1 || c.Children[0].Lexeme != "true" {
		t.Errorf("condition subtree:\n%s", tree)
	}
	// Leaves carry exact lexemes and spans.
	iff := tree.Children[0]
	if !iff.Terminal || iff.Lexeme != "if" || iff.Start != 0 || iff.End != 1 {
		t.Errorf("if leaf = %+v", iff)
	}
	// Text reassembles the token stream.
	if got := tree.Text(); got != "iftruethengoelsestop" {
		t.Errorf("Text = %q", got)
	}
}

func TestParseTreeNested(t *testing.T) {
	tbl := table(t, grammar.BalancedParens())
	tree, err := tbl.ParseTree([]byte("( ( 0 ) )"))
	if err != nil {
		t.Fatal(err)
	}
	// E → ( E ) → ( ( E ) ) → 0: two paren levels then the 0 leaf.
	if len(tree.Children) != 3 {
		t.Fatalf("outer E children = %d\n%s", len(tree.Children), tree)
	}
	inner := tree.Children[1]
	if inner.Symbol != "E" || len(inner.Children) != 3 {
		t.Fatalf("inner E:\n%s", tree)
	}
	leafE := inner.Children[1]
	if len(leafE.Children) != 1 || leafE.Children[0].Lexeme != "0" {
		t.Fatalf("innermost E:\n%s", tree)
	}
	if s := tree.String(); !strings.Contains(s, `0="0"`) {
		t.Errorf("tree render:\n%s", s)
	}
}

func TestParseTreeEpsilon(t *testing.T) {
	tbl := table(t, grammar.XMLRPC())
	tree, err := tbl.ParseTree([]byte("<methodCall> <methodName>hi</methodName> <params> </params> </methodCall>"))
	if err != nil {
		t.Fatal(err)
	}
	// The empty param list derives ε: the param node has no children.
	p := tree.Find("param")
	if p == nil || len(p.Children) != 0 {
		t.Errorf("empty param subtree: %+v", p)
	}
	if mn := tree.Find("methodName"); mn.Children[1].Lexeme != "hi" {
		t.Errorf("methodName lexeme: %q", mn.Children[1].Lexeme)
	}
}

func TestParseTreeErrors(t *testing.T) {
	tbl := table(t, grammar.IfThenElse())
	if _, err := tbl.ParseTree([]byte("if true go")); err == nil {
		t.Error("malformed input produced a tree")
	}
}

// TestParseTreeRandom: on generated sentences, the tree's leaf sequence
// equals the tagged token sequence.
func TestParseTreeRandom(t *testing.T) {
	for _, g := range []*grammar.Grammar{grammar.IfThenElse(), grammar.XMLRPC()} {
		s, err := core.Compile(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := BuildTable(s)
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewGenerator(s, 31, workload.SentenceOptions{})
		for trial := 0; trial < 50; trial++ {
			text, want := gen.Sentence()
			tree, err := tbl.ParseTree(text)
			if err != nil {
				t.Fatalf("%s trial %d: %v\n%q", g.Name, trial, err, text)
			}
			var leaves []*Node
			var walk func(*Node)
			walk = func(n *Node) {
				if n.Terminal {
					leaves = append(leaves, n)
					return
				}
				for _, c := range n.Children {
					walk(c)
				}
			}
			walk(tree)
			if len(leaves) != len(want) {
				t.Fatalf("%s trial %d: %d leaves, want %d tokens", g.Name, trial, len(leaves), len(want))
			}
			for i, leaf := range leaves {
				if int64(leaf.End) != want[i].End {
					t.Fatalf("%s trial %d leaf %d: end %d, want %d", g.Name, trial, i, leaf.End, want[i].End)
				}
			}
		}
	}
}
