package parser

import (
	"errors"
	"strings"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
)

func acceptor(t *testing.T, g *grammar.Grammar, max int) *Acceptor {
	t.Helper()
	s, err := core.Compile(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := BuildTable(s)
	if err != nil {
		t.Fatal(err)
	}
	return tbl.NewAcceptor(max)
}

func offerAll(a *Acceptor, terms ...string) error {
	for _, term := range terms {
		if _, _, err := a.Offer(term); err != nil {
			return err
		}
	}
	return nil
}

func TestAcceptorAcceptsSentence(t *testing.T) {
	a := acceptor(t, grammar.IfThenElse(), 0)
	if err := offerAll(a, "if", "true", "then", "go", "else", "stop"); err != nil {
		t.Fatal(err)
	}
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptorRejectsWrongTerminal(t *testing.T) {
	a := acceptor(t, grammar.IfThenElse(), 0)
	if err := offerAll(a, "if", "true", "go"); err == nil {
		t.Error("'go' where 'then' is due should fail")
	}
}

func TestAcceptorRejectsEarlyEnd(t *testing.T) {
	a := acceptor(t, grammar.IfThenElse(), 0)
	if err := offerAll(a, "if", "true", "then"); err != nil {
		t.Fatal(err)
	}
	if err := a.Finish(); err == nil {
		t.Error("sentence cannot end after 'then'")
	}
}

func TestAcceptorReturnsProductionPositions(t *testing.T) {
	g := grammar.IfThenElse()
	a := acceptor(t, g, 0)
	rule, pos, err := a.Offer("if")
	if err != nil {
		t.Fatal(err)
	}
	if g.Rules[rule].LHS != "E" || pos != 0 {
		t.Errorf("'if' consumed at %s[%d]", g.Rules[rule].LHS, pos)
	}
	rule, pos, err = a.Offer("true")
	if err != nil {
		t.Fatal(err)
	}
	if g.Rules[rule].LHS != "C" || pos != 0 {
		t.Errorf("'true' consumed at %s[%d]", g.Rules[rule].LHS, pos)
	}
}

func TestAcceptorComplete(t *testing.T) {
	a := acceptor(t, grammar.BalancedParens(), 0)
	if a.Complete() {
		t.Error("fresh acceptor should not be complete (E is not nullable)")
	}
	offerAll(a, "(", "0")
	if a.Complete() {
		t.Error("unclosed paren cannot complete")
	}
	a.Offer(")")
	if !a.Complete() {
		t.Error("balanced string should be complete")
	}
	// Complete must be non-destructive.
	if !a.Complete() {
		t.Error("Complete mutated state")
	}
}

func TestAcceptorOverflow(t *testing.T) {
	a := acceptor(t, grammar.BalancedParens(), 5)
	var err error
	for i := 0; i < 20 && err == nil; i++ {
		_, _, err = a.Offer("(")
	}
	if !errors.Is(err, ErrStackOverflow) {
		t.Errorf("err = %v, want stack overflow", err)
	}
}

func TestAcceptorReset(t *testing.T) {
	a := acceptor(t, grammar.IfThenElse(), 0)
	offerAll(a, "go")
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	// Done: further terminals rejected until Reset.
	if _, _, err := a.Offer("stop"); err == nil || !strings.Contains(err.Error(), "completed") {
		t.Errorf("offer after finish: %v", err)
	}
	a.Reset()
	if err := offerAll(a, "stop"); err != nil {
		t.Fatal(err)
	}
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptorDepthGrowsWithNesting(t *testing.T) {
	shallow := acceptor(t, grammar.BalancedParens(), 0)
	offerAll(shallow, "0")
	deep := acceptor(t, grammar.BalancedParens(), 0)
	offerAll(deep, "(", "(", "(", "0", ")", ")", ")")
	if deep.Depth() <= shallow.Depth() {
		t.Errorf("depth deep=%d shallow=%d", deep.Depth(), shallow.Depth())
	}
}

func TestAcceptorEpsilonFinish(t *testing.T) {
	g, err := grammar.Parse("trail", "%%\nS : \"x\" Tail ;\nTail : | \"y\" Tail ;\n")
	if err != nil {
		t.Fatal(err)
	}
	a := acceptor(t, g, 0)
	offerAll(a, "x", "y", "y")
	if !a.Complete() {
		t.Error("trailing nullable should complete")
	}
	if err := a.Finish(); err != nil {
		t.Error(err)
	}
}
