package xmlrpc

import (
	"fmt"
	"strconv"
	"sync"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/parser"
)

// The section 5.1 back-end application in miniature: the parse tree built
// from the tag stream drives a real decoder — XML-RPC text in, typed Go
// values out.

// Kind enumerates XML-RPC value types.
type Kind uint8

// Value kinds, matching the figure 13 DTD's element types.
const (
	KindInt Kind = iota
	KindDouble
	KindString
	KindDateTime
	KindBase64
	KindStruct
	KindArray
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindDateTime:
		return "dateTime"
	case KindBase64:
		return "base64"
	case KindStruct:
		return "struct"
	case KindArray:
		return "array"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is one decoded XML-RPC value.
type Value struct {
	Kind Kind
	// Int holds i4/int values.
	Int int64
	// Double holds double values.
	Double float64
	// Text holds string, dateTime and base64 lexemes.
	Text string
	// Struct holds member name → value.
	Struct map[string]Value
	// Array holds data elements.
	Array []Value
}

// Call is a decoded methodCall.
type Call struct {
	Method string
	Params []Value
}

var (
	decodeOnce sync.Once
	decodeTbl  *parser.Table
	decodeErr  error
)

// Decode parses one figure 14 dialect methodCall message into a Call.
func Decode(msg []byte) (*Call, error) {
	decodeOnce.Do(func() {
		spec, err := core.Compile(grammar.XMLRPC(), core.Options{})
		if err != nil {
			decodeErr = err
			return
		}
		decodeTbl, decodeErr = parser.BuildTable(spec)
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	tree, err := decodeTbl.ParseTree(msg)
	if err != nil {
		return nil, err
	}
	call := &Call{}
	mn := tree.Find("methodName")
	if mn == nil || len(mn.Children) != 3 {
		return nil, fmt.Errorf("xmlrpc: no methodName in parse tree")
	}
	call.Method = mn.Children[1].Lexeme

	params := tree.Find("params")
	if params == nil {
		return nil, fmt.Errorf("xmlrpc: no params in parse tree")
	}
	// params : "<params>" param "</params>" ; param is right-recursive.
	for p := params.Children[1]; p != nil && len(p.Children) == 4; p = p.Children[3] {
		v, err := decodeValue(p.Children[1])
		if err != nil {
			return nil, err
		}
		call.Params = append(call.Params, v)
	}
	return call, nil
}

// decodeValue converts a value node (one typed alternative).
func decodeValue(n *Node) (Value, error) {
	if len(n.Children) != 1 {
		return Value{}, fmt.Errorf("xmlrpc: malformed value node %s", n.Symbol)
	}
	t := n.Children[0]
	switch t.Symbol {
	case "i4", "int":
		i, err := strconv.ParseInt(t.Children[1].Lexeme, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("xmlrpc: %s: %w", t.Symbol, err)
		}
		return Value{Kind: KindInt, Int: i}, nil
	case "double":
		f, err := strconv.ParseFloat(t.Children[1].Lexeme, 64)
		if err != nil {
			return Value{}, fmt.Errorf("xmlrpc: double: %w", err)
		}
		return Value{Kind: KindDouble, Double: f}, nil
	case "string":
		return Value{Kind: KindString, Text: t.Children[1].Lexeme}, nil
	case "base64":
		return Value{Kind: KindBase64, Text: t.Children[1].Lexeme}, nil
	case "dateTime":
		// Children: tag YEAR MONTH DAY T HOUR : MIN : SEC tag
		var text string
		for _, c := range t.Children[1 : len(t.Children)-1] {
			text += c.Lexeme
		}
		return Value{Kind: KindDateTime, Text: text}, nil
	case "struct":
		// struct : "<struct>" member member_list "</struct>"
		out := Value{Kind: KindStruct, Struct: map[string]Value{}}
		if err := decodeMember(t.Children[1], &out); err != nil {
			return Value{}, err
		}
		for ml := t.Children[2]; ml != nil && len(ml.Children) == 2; ml = ml.Children[1] {
			if err := decodeMember(ml.Children[0], &out); err != nil {
				return Value{}, err
			}
		}
		return out, nil
	case "array":
		// array : "<array>" data "</array>" ; data : "<data>" value_list "</data>"
		out := Value{Kind: KindArray}
		data := t.Children[1]
		for vl := data.Children[1]; vl != nil && len(vl.Children) == 2; vl = vl.Children[1] {
			v, err := decodeValue(vl.Children[0])
			if err != nil {
				return Value{}, err
			}
			out.Array = append(out.Array, v)
		}
		return out, nil
	default:
		return Value{}, fmt.Errorf("xmlrpc: unknown value type %s", t.Symbol)
	}
}

// decodeMember adds one member node ("<member>" name value "</member>") to
// a struct value.
func decodeMember(m *Node, out *Value) error {
	if len(m.Children) != 4 {
		return fmt.Errorf("xmlrpc: malformed member node")
	}
	name := m.Children[1].Children[1].Lexeme
	v, err := decodeValue(m.Children[2])
	if err != nil {
		return err
	}
	out.Struct[name] = v
	return nil
}

// Node aliases the parser's tree node for decode helpers.
type Node = parser.Node
