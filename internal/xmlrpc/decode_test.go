package xmlrpc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestDecodeSimple(t *testing.T) {
	msg := "<methodCall> <methodName>deposit</methodName> <params> " +
		"<param> <i4>42</i4> </param> " +
		"<param> <string>savings</string> </param> " +
		"<param> <double>-3.5</double> </param> " +
		"</params> </methodCall>"
	call, err := Decode([]byte(msg))
	if err != nil {
		t.Fatal(err)
	}
	if call.Method != "deposit" {
		t.Errorf("method = %q", call.Method)
	}
	if len(call.Params) != 3 {
		t.Fatalf("params = %+v", call.Params)
	}
	if p := call.Params[0]; p.Kind != KindInt || p.Int != 42 {
		t.Errorf("param 0 = %+v", p)
	}
	if p := call.Params[1]; p.Kind != KindString || p.Text != "savings" {
		t.Errorf("param 1 = %+v", p)
	}
	if p := call.Params[2]; p.Kind != KindDouble || p.Double != -3.5 {
		t.Errorf("param 2 = %+v", p)
	}
}

func TestDecodeEmptyParams(t *testing.T) {
	call, err := Decode([]byte("<methodCall> <methodName>ping</methodName> <params> </params> </methodCall>"))
	if err != nil {
		t.Fatal(err)
	}
	if call.Method != "ping" || len(call.Params) != 0 {
		t.Errorf("call = %+v", call)
	}
}

func TestDecodeStructAndArray(t *testing.T) {
	msg := "<methodCall> <methodName>mix</methodName> <params> " +
		"<param> <struct> " +
		"<member> <name>qty</name> <int>7</int> </member> " +
		"<member> <name>tag</name> <string>x1</string> </member> " +
		"</struct> </param> " +
		"<param> <array> <data> <i4>1</i4> <i4>2</i4> <i4>3</i4> </data> </array> </param> " +
		"</params> </methodCall>"
	call, err := Decode([]byte(msg))
	if err != nil {
		t.Fatal(err)
	}
	st := call.Params[0]
	if st.Kind != KindStruct || len(st.Struct) != 2 {
		t.Fatalf("struct = %+v", st)
	}
	if st.Struct["qty"].Int != 7 || st.Struct["tag"].Text != "x1" {
		t.Errorf("members = %+v", st.Struct)
	}
	arr := call.Params[1]
	if arr.Kind != KindArray || len(arr.Array) != 3 || arr.Array[2].Int != 3 {
		t.Errorf("array = %+v", arr)
	}
}

func TestDecodeNestedStruct(t *testing.T) {
	msg := "<methodCall> <methodName>deep</methodName> <params> " +
		"<param> <struct> <member> <name>outer</name> " +
		"<struct> <member> <name>inner</name> <i4>9</i4> </member> </struct> " +
		"</member> </struct> </param> </params> </methodCall>"
	call, err := Decode([]byte(msg))
	if err != nil {
		t.Fatal(err)
	}
	outer := call.Params[0].Struct["outer"]
	if outer.Kind != KindStruct || outer.Struct["inner"].Int != 9 {
		t.Errorf("nested = %+v", outer)
	}
}

func TestDecodeDateTimeAndBase64(t *testing.T) {
	msg := "<methodCall> <methodName>when</methodName> <params> " +
		"<param> <dateTime.iso8601>19980717T14:08:55</dateTime.iso8601> </param> " +
		"<param> <base64>aGVsbG8=</base64> </param> " +
		"</params> </methodCall>"
	call, err := Decode([]byte(msg))
	if err != nil {
		t.Fatal(err)
	}
	if p := call.Params[0]; p.Kind != KindDateTime || p.Text != "19980717T14:08:55" {
		t.Errorf("dateTime = %+v", p)
	}
	if p := call.Params[1]; p.Kind != KindBase64 || p.Text != "aGVsbG8=" {
		t.Errorf("base64 = %+v", p)
	}
}

func TestDecodeGeneratedMessages(t *testing.T) {
	g := NewGenerator(55, Options{MaxParams: 4, MaxDepth: 2})
	for trial := 0; trial < 150; trial++ {
		msg, svc := g.Message()
		call, err := Decode([]byte(msg))
		if err != nil {
			t.Fatalf("trial %d: %v\nmessage: %s", trial, err, msg)
		}
		if call.Method != svc {
			t.Errorf("trial %d: method %q, want %q", trial, call.Method, svc)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"",
		"<methodCall> </methodCall>",
		"<methodCall> <methodName>hi</methodName> <params>",
		"not xml at all",
	}
	for _, m := range bad {
		if _, err := Decode([]byte(m)); err == nil {
			t.Errorf("decoded malformed %q", m)
		}
	}
}

// TestEncodeDecodeRoundTrip: Decode(Encode(call)) reproduces the call for
// randomly generated value trees.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var randomValue func(depth int) Value
	randomValue = func(depth int) Value {
		kinds := []Kind{KindInt, KindDouble, KindString, KindDateTime, KindBase64}
		if depth > 0 {
			kinds = append(kinds, KindStruct, KindArray)
		}
		switch kinds[rng.Intn(len(kinds))] {
		case KindInt:
			return Value{Kind: KindInt, Int: int64(rng.Intn(2_000_000) - 1_000_000)}
		case KindDouble:
			return Value{Kind: KindDouble, Double: float64(rng.Intn(100000)) / 64}
		case KindString:
			return Value{Kind: KindString, Text: fmt.Sprintf("s%d", rng.Intn(10000))}
		case KindDateTime:
			return Value{Kind: KindDateTime, Text: fmt.Sprintf("%04d%02d%02dT%02d:%02d:%02d",
				2000+rng.Intn(20), 1+rng.Intn(12), 1+rng.Intn(28),
				rng.Intn(24), rng.Intn(60), rng.Intn(60))}
		case KindBase64:
			return Value{Kind: KindBase64, Text: "QUJD" + fmt.Sprint(rng.Intn(100))}
		case KindStruct:
			v := Value{Kind: KindStruct, Struct: map[string]Value{}}
			for i := 0; i <= rng.Intn(3); i++ {
				v.Struct[fmt.Sprintf("k%d", i)] = randomValue(depth - 1)
			}
			return v
		default:
			v := Value{Kind: KindArray}
			for i := 0; i < rng.Intn(4); i++ {
				v.Array = append(v.Array, randomValue(depth-1))
			}
			return v
		}
	}
	for trial := 0; trial < 200; trial++ {
		call := &Call{Method: fmt.Sprintf("m%d", trial)}
		for i := 0; i < rng.Intn(4); i++ {
			call.Params = append(call.Params, randomValue(2))
		}
		text, err := Encode(call)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		back, err := Decode([]byte(text))
		if err != nil {
			t.Fatalf("trial %d: decode: %v\n%s", trial, err, text)
		}
		if !reflect.DeepEqual(call, back) {
			t.Fatalf("trial %d: round trip diverged\nin:  %+v\nout: %+v\ntext: %s", trial, call, back, text)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(&Call{Method: "x", Params: []Value{{Kind: KindStruct}}}); err == nil {
		t.Error("empty struct encoded (DTD requires member+)")
	}
	if _, err := Encode(&Call{Method: "x", Params: []Value{{Kind: Kind(42)}}}); err == nil {
		t.Error("unknown kind encoded")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindInt: "int", KindStruct: "struct", KindArray: "array", Kind(99): "Kind(99)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
}
