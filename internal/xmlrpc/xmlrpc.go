// Package xmlrpc generates and validates XML-RPC messages in the paper's
// figure 14 dialect (value is a pure nonterminal, so no <value> wrapper
// tags appear in the text). The generator drives the router example of
// figure 12 — messages carry a chosen service name in <methodName> — and
// the throughput benches, which need long realistic streams.
package xmlrpc

import (
	"fmt"
	"math/rand"
	"strings"
)

// Fig. 12's two back-end servers and their services.
var (
	// BankServices route to the bank server in the figure 12 example.
	BankServices = []string{"deposit", "withdraw", "acctinfo"}
	// ShoppingServices route to the shopping server.
	ShoppingServices = []string{"buy", "sell", "price"}
)

// Options tune message generation.
type Options struct {
	// Service fixes the methodName; empty picks randomly from the six
	// figure 12 services.
	Service string
	// MaxParams bounds the parameter count (0 means 3).
	MaxParams int
	// MaxDepth bounds struct/array nesting (0 means 2).
	MaxDepth int
	// Compact omits inter-token whitespace where the grammar allows it.
	Compact bool
	// ValueTags wraps every value in <value>/</value> tags — the real
	// XML-RPC wire format recognized by the XMLRPCFull grammar. Off by
	// default to match the paper's figure 14 dialect.
	ValueTags bool
}

// Generator emits random well-formed messages.
type Generator struct {
	rng  *rand.Rand
	opts Options
}

// NewGenerator seeds a generator.
func NewGenerator(seed int64, opts Options) *Generator {
	if opts.MaxParams == 0 {
		opts.MaxParams = 3
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 2
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), opts: opts}
}

// Message produces one XML-RPC methodCall and reports the service it
// carries.
func (g *Generator) Message() (text string, service string) {
	service = g.opts.Service
	if service == "" {
		all := append(append([]string{}, BankServices...), ShoppingServices...)
		service = all[g.rng.Intn(len(all))]
	}
	var b strings.Builder
	sep := " "
	if g.opts.Compact {
		sep = ""
	}
	b.WriteString("<methodCall>" + sep)
	b.WriteString("<methodName>" + service + "</methodName>" + sep)
	b.WriteString("<params>" + sep)
	nParams := g.rng.Intn(g.opts.MaxParams + 1)
	for i := 0; i < nParams; i++ {
		b.WriteString("<param>" + sep)
		g.value(&b, g.opts.MaxDepth, sep)
		b.WriteString(sep + "</param>" + sep)
	}
	b.WriteString("</params>" + sep)
	b.WriteString("</methodCall>")
	return b.String(), service
}

// Corpus produces n messages joined by newlines, with the service of each.
func (g *Generator) Corpus(n int) (string, []string) {
	var msgs []string
	var services []string
	for i := 0; i < n; i++ {
		m, s := g.Message()
		msgs = append(msgs, m)
		services = append(services, s)
	}
	return strings.Join(msgs, "\n"), services
}

func (g *Generator) value(b *strings.Builder, depth int, sep string) {
	if g.opts.ValueTags {
		b.WriteString("<value>" + sep)
		defer b.WriteString(sep + "</value>")
	}
	kinds := []string{"i4", "int", "string", "dateTime", "double", "base64"}
	if depth > 0 {
		kinds = append(kinds, "struct", "array")
	}
	switch kinds[g.rng.Intn(len(kinds))] {
	case "i4":
		fmt.Fprintf(b, "<i4>%s</i4>", g.intLexeme())
	case "int":
		fmt.Fprintf(b, "<int>%s</int>", g.intLexeme())
	case "string":
		fmt.Fprintf(b, "<string>%s</string>", g.stringLexeme())
	case "dateTime":
		fmt.Fprintf(b, "<dateTime.iso8601>%04d%02d%02dT%02d:%02d:%02d</dateTime.iso8601>",
			1990+g.rng.Intn(30), 1+g.rng.Intn(12), 1+g.rng.Intn(28),
			g.rng.Intn(24), g.rng.Intn(60), g.rng.Intn(60))
	case "double":
		fmt.Fprintf(b, "<double>%s%d.%d</double>", g.sign(), g.rng.Intn(1000), g.rng.Intn(1000))
	case "base64":
		fmt.Fprintf(b, "<base64>%s</base64>", g.base64Lexeme())
	case "struct":
		b.WriteString("<struct>" + sep)
		n := 1 + g.rng.Intn(2)
		for i := 0; i < n; i++ {
			b.WriteString("<member>" + sep)
			fmt.Fprintf(b, "<name>%s</name>%s", g.stringLexeme(), sep)
			g.value(b, depth-1, sep)
			b.WriteString(sep + "</member>" + sep)
		}
		b.WriteString("</struct>")
	case "array":
		b.WriteString("<array>" + sep + "<data>" + sep)
		n := g.rng.Intn(3)
		for i := 0; i < n; i++ {
			g.value(b, depth-1, sep)
			b.WriteString(sep)
		}
		b.WriteString("</data>" + sep + "</array>")
	}
}

func (g *Generator) sign() string {
	switch g.rng.Intn(3) {
	case 0:
		return "-"
	case 1:
		return "+"
	default:
		return ""
	}
}

func (g *Generator) intLexeme() string {
	return fmt.Sprintf("%s%d", g.sign(), g.rng.Intn(1_000_000))
}

const alnum = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

func (g *Generator) stringLexeme() string {
	n := 1 + g.rng.Intn(10)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alnum[g.rng.Intn(len(alnum))])
	}
	return sb.String()
}

func (g *Generator) base64Lexeme() string {
	const b64 = alnum + "+/"
	n := 4 * (1 + g.rng.Intn(4))
	var sb strings.Builder
	for i := 0; i < n-2; i++ {
		sb.WriteByte(b64[g.rng.Intn(len(b64))])
	}
	sb.WriteString("==")
	return sb.String()
}

// ServiceDestination reports which figure 12 output port a service routes
// to: 0 for the bank server, 1 for the shopping server, -1 for unknown.
func ServiceDestination(service string) int {
	for _, s := range BankServices {
		if s == service {
			return 0
		}
	}
	for _, s := range ShoppingServices {
		if s == service {
			return 1
		}
	}
	return -1
}
