package xmlrpc

import (
	"strings"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/parser"
)

func ll1(t *testing.T) *parser.Table {
	t.Helper()
	s, err := core.Compile(grammar.XMLRPC(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := parser.BuildTable(s)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestGeneratedMessagesParse validates every generated message against the
// LL(1) parser for the figure 14 grammar — the strongest available
// well-formedness check.
func TestGeneratedMessagesParse(t *testing.T) {
	tbl := ll1(t)
	for _, compact := range []bool{false, true} {
		g := NewGenerator(7, Options{Compact: compact})
		for trial := 0; trial < 200; trial++ {
			msg, svc := g.Message()
			if _, err := tbl.Parse([]byte(msg)); err != nil {
				t.Fatalf("compact=%v trial %d: %v\nmessage: %s", compact, trial, err, msg)
			}
			if !strings.Contains(msg, "<methodName>"+svc+"</methodName>") {
				t.Errorf("service %q not embedded: %s", svc, msg)
			}
		}
	}
}

// TestFullDialect validates ValueTags traffic against the XMLRPCFull
// grammar's LL(1) parser.
func TestFullDialect(t *testing.T) {
	s, err := core.Compile(grammar.XMLRPCFull(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := parser.BuildTable(s)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(9, Options{ValueTags: true})
	for trial := 0; trial < 100; trial++ {
		msg, _ := g.Message()
		if _, err := tbl.Parse([]byte(msg)); err != nil {
			t.Fatalf("trial %d: %v\nmessage: %s", trial, err, msg)
		}
		if strings.Contains(msg, "<i4>") && !strings.Contains(msg, "<value>") {
			t.Fatalf("value tags missing: %s", msg)
		}
	}
	// Figure 14 traffic does not parse under the full grammar (and vice
	// versa): the dialects are distinct.
	fig14 := NewGenerator(9, Options{})
	for trial := 0; trial < 50; trial++ {
		msg, _ := fig14.Message()
		if strings.Contains(msg, "<param>") { // only messages with params differ
			if _, err := tbl.Parse([]byte(msg)); err == nil {
				t.Fatalf("figure 14 message accepted by the full grammar: %s", msg)
			}
			break
		}
	}
}

func TestFixedService(t *testing.T) {
	g := NewGenerator(1, Options{Service: "deposit"})
	for i := 0; i < 10; i++ {
		msg, svc := g.Message()
		if svc != "deposit" || !strings.Contains(msg, ">deposit<") {
			t.Errorf("service = %q in %s", svc, msg)
		}
	}
}

func TestCorpus(t *testing.T) {
	g := NewGenerator(2, Options{})
	text, services := g.Corpus(25)
	if len(services) != 25 {
		t.Fatalf("services = %d", len(services))
	}
	if got := strings.Count(text, "<methodCall>"); got != 25 {
		t.Errorf("%d methodCall opens, want 25", got)
	}
	if got := strings.Count(text, "\n"); got < 24 {
		t.Errorf("messages not newline-separated: %d", got)
	}
}

func TestServiceDestination(t *testing.T) {
	for _, s := range BankServices {
		if ServiceDestination(s) != 0 {
			t.Errorf("%s should route to bank (0)", s)
		}
	}
	for _, s := range ShoppingServices {
		if ServiceDestination(s) != 1 {
			t.Errorf("%s should route to shopping (1)", s)
		}
	}
	if ServiceDestination("nonsense") != -1 {
		t.Error("unknown service should map to -1")
	}
}

func TestNestingRespectsDepth(t *testing.T) {
	g := NewGenerator(3, Options{MaxDepth: 1, MaxParams: 5})
	for i := 0; i < 100; i++ {
		msg, _ := g.Message()
		// Depth 1 permits structs but not structs inside structs: a
		// second <struct> before the first closes would need depth 2.
		depth, max := 0, 0
		for j := 0; j+8 <= len(msg); j++ {
			if strings.HasPrefix(msg[j:], "<struct>") {
				depth++
				if depth > max {
					max = depth
				}
			}
			if strings.HasPrefix(msg[j:], "</struct>") {
				depth--
			}
		}
		if max > 1 {
			t.Fatalf("nested struct at depth %d: %s", max, msg)
		}
	}
}

func TestDateTimeShape(t *testing.T) {
	g := NewGenerator(4, Options{})
	found := false
	for i := 0; i < 300 && !found; i++ {
		msg, _ := g.Message()
		if idx := strings.Index(msg, "<dateTime.iso8601>"); idx >= 0 {
			found = true
			body := msg[idx+len("<dateTime.iso8601>"):]
			end := strings.Index(body, "</dateTime.iso8601>")
			val := body[:end]
			if len(val) != 17 || val[8] != 'T' || val[11] != ':' || val[14] != ':' {
				t.Errorf("dateTime lexeme %q malformed", val)
			}
		}
	}
	if !found {
		t.Skip("no dateTime generated in 300 trials (improbable)")
	}
}
