package xmlrpc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Encode renders a Call back to figure 14 dialect message text — the
// inverse of Decode, used for round-trip testing and for synthesizing
// traffic with exact payloads.
func Encode(c *Call) (string, error) {
	var b strings.Builder
	b.WriteString("<methodCall> <methodName>" + c.Method + "</methodName> <params>")
	for _, p := range c.Params {
		b.WriteString(" <param> ")
		if err := encodeValue(&b, p); err != nil {
			return "", err
		}
		b.WriteString(" </param>")
	}
	b.WriteString(" </params> </methodCall>")
	return b.String(), nil
}

func encodeValue(b *strings.Builder, v Value) error {
	switch v.Kind {
	case KindInt:
		fmt.Fprintf(b, "<i4>%d</i4>", v.Int)
	case KindDouble:
		// The DOUBLE token requires digits on both sides of the dot.
		s := strconv.FormatFloat(v.Double, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		fmt.Fprintf(b, "<double>%s</double>", s)
	case KindString:
		fmt.Fprintf(b, "<string>%s</string>", v.Text)
	case KindDateTime:
		fmt.Fprintf(b, "<dateTime.iso8601>%s</dateTime.iso8601>", v.Text)
	case KindBase64:
		fmt.Fprintf(b, "<base64>%s</base64>", v.Text)
	case KindStruct:
		if len(v.Struct) == 0 {
			return fmt.Errorf("xmlrpc: struct requires at least one member (DTD member+)")
		}
		b.WriteString("<struct>")
		names := make([]string, 0, len(v.Struct))
		for name := range v.Struct {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(b, " <member> <name>%s</name> ", name)
			if err := encodeValue(b, v.Struct[name]); err != nil {
				return err
			}
			b.WriteString(" </member>")
		}
		b.WriteString(" </struct>")
	case KindArray:
		b.WriteString("<array> <data>")
		for _, e := range v.Array {
			b.WriteString(" ")
			if err := encodeValue(b, e); err != nil {
				return err
			}
		}
		b.WriteString(" </data> </array>")
	default:
		return fmt.Errorf("xmlrpc: cannot encode kind %v", v.Kind)
	}
	return nil
}
