package lexer

import (
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
)

func spec(t *testing.T, g *grammar.Grammar) *core.Spec {
	t.Helper()
	s, err := core.Compile(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func names(s *core.Spec, ls []Lexeme) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = s.Grammar.Tokens[l.TokenIndex].Name
	}
	return out
}

func TestScanAll(t *testing.T) {
	s := spec(t, grammar.IfThenElse())
	ls, err := ScanAll(s, []byte("if true then go else stop"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"if", "true", "then", "go", "else", "stop"}
	got := names(s, ls)
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("lexemes = %v, want %v", got, want)
		}
	}
	// Offsets: "if" spans 0..1.
	if ls[0].Start != 0 || ls[0].End != 1 {
		t.Errorf("first lexeme span = %d..%d", ls[0].Start, ls[0].End)
	}
}

func TestLongestMatchWins(t *testing.T) {
	g, err := grammar.Parse("kw", "ID [a-z]+\n%%\nS : \"iff\" | ID ;\n")
	if err != nil {
		t.Fatal(err)
	}
	s := spec(t, g)
	ls, err := ScanAll(s, []byte("iffy"))
	if err != nil {
		t.Fatal(err)
	}
	// "iffy" is longer as ID (4) than the literal "iff" (3).
	if len(ls) != 1 || s.Grammar.Tokens[ls[0].TokenIndex].Name != "ID" {
		t.Errorf("lexemes = %v", names(s, ls))
	}
}

func TestTieBreaksToFirstListed(t *testing.T) {
	// STRING is listed before INT in the XML-RPC grammar, so a bare digit
	// run lexes as STRING — the classic context-free misclassification the
	// tagger avoids (section 1 motivation).
	s := spec(t, grammar.XMLRPC())
	ls, err := ScanAll(s, []byte("42"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 1 || s.Grammar.Tokens[ls[0].TokenIndex].Name != "STRING" {
		t.Errorf("lexemes = %v, want the first-listed class STRING", names(s, ls))
	}
}

func TestAllowedSetRestricts(t *testing.T) {
	s := spec(t, grammar.XMLRPC())
	l := New(s, []byte("42"))
	intIdx := s.Grammar.TokenIndex("INT")
	lx, err := l.Next([]int{intIdx})
	if err != nil {
		t.Fatal(err)
	}
	if lx.TokenIndex != intIdx {
		t.Errorf("allowed-set scan returned token %d", lx.TokenIndex)
	}
}

func TestScanErrors(t *testing.T) {
	s := spec(t, grammar.IfThenElse())
	if _, err := ScanAll(s, []byte("if @ then")); err == nil {
		t.Error("garbage byte should fail")
	}
	l := New(s, []byte("   "))
	if !l.EOF() {
		t.Error("all-delimiter input should be EOF")
	}
	if _, err := l.Next(nil); err == nil {
		t.Error("Next at EOF should fail")
	}
	// Restricted set that cannot match.
	l = New(s, []byte("if"))
	if _, err := l.Next([]int{s.Grammar.TokenIndex("go")}); err == nil {
		t.Error("mismatched allowed set should fail")
	}
}

func TestDelimiterHandling(t *testing.T) {
	s := spec(t, grammar.IfThenElse())
	ls, err := ScanAll(s, []byte("\n\t if\t\t true  \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 2 || ls[0].Start != 3 {
		t.Errorf("lexemes = %+v", ls)
	}
}

func TestXMLRPCScan(t *testing.T) {
	s := spec(t, grammar.XMLRPC())
	msg := "<methodCall><methodName>hi</methodName><params></params></methodCall>"
	ls, err := ScanAll(s, []byte(msg))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<methodCall>", "<methodName>", "STRING", "</methodName>",
		"<params>", "</params>", "</methodCall>"}
	got := names(s, ls)
	if len(got) != len(want) {
		t.Fatalf("lexemes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("lexeme %d = %q, want %q", i, got[i], want[i])
		}
	}
}
