// Package lexer is the reference software scanner: the conventional
// longest-match lexer a software parser would sit on. It serves three
// roles in the reproduction: the front end of the LL(1) baseline parser
// (internal/parser), a correctness oracle for the hardware tokenizers, and
// the exhibit for the paper's motivation — a context-free scanner cannot
// tell which of several overlapping token classes a lexeme belongs to
// (section 1), whereas the tagger's Follow wiring can.
package lexer

import (
	"fmt"

	"cfgtag/internal/core"
)

// Lexeme is one scanned token.
type Lexeme struct {
	// TokenIndex indexes the grammar token list.
	TokenIndex int
	// Start and End delimit the lexeme (End is the offset of the last
	// byte, matching the hardware's end-of-match convention).
	Start, End int
}

// ScanError reports a position where no token (from the allowed set)
// matches.
type ScanError struct {
	Pos     int
	Context string
}

func (e *ScanError) Error() string {
	return fmt.Sprintf("lexer: no token matches at offset %d%s", e.Pos, e.Context)
}

// Lexer scans one input buffer against a spec's token set.
type Lexer struct {
	spec *core.Spec
	data []byte
	pos  int
}

// New returns a lexer over the buffer.
func New(spec *core.Spec, data []byte) *Lexer {
	return &Lexer{spec: spec, data: data}
}

// Pos returns the current offset.
func (l *Lexer) Pos() int { return l.pos }

// SkipDelims advances past delimiter bytes.
func (l *Lexer) SkipDelims() {
	for l.pos < len(l.data) && l.spec.Delim.Has(l.data[l.pos]) {
		l.pos++
	}
}

// EOF reports whether only delimiters remain.
func (l *Lexer) EOF() bool {
	for i := l.pos; i < len(l.data); i++ {
		if !l.spec.Delim.Has(l.data[i]) {
			return false
		}
	}
	return true
}

// Next scans the longest match among the allowed token indexes (nil means
// all tokens). Ties on length break toward the earliest-listed token, the
// classic lex rule. The cursor advances past the lexeme.
func (l *Lexer) Next(allowed []int) (Lexeme, error) {
	l.SkipDelims()
	if l.pos >= len(l.data) {
		return Lexeme{}, &ScanError{Pos: l.pos, Context: " (end of input)"}
	}
	rest := l.data[l.pos:]
	best, bestLen := -1, -1
	try := func(ti int) {
		if n := l.spec.Programs[ti].LongestPrefix(rest); n > bestLen {
			best, bestLen = ti, n
		}
	}
	if allowed == nil {
		for ti := range l.spec.Programs {
			try(ti)
		}
	} else {
		for _, ti := range allowed {
			try(ti)
		}
	}
	if best < 0 || bestLen <= 0 {
		ctx := ""
		if allowed != nil {
			ctx = fmt.Sprintf(" (expecting one of %d tokens)", len(allowed))
		}
		return Lexeme{}, &ScanError{Pos: l.pos, Context: ctx}
	}
	lx := Lexeme{TokenIndex: best, Start: l.pos, End: l.pos + bestLen - 1}
	l.pos += bestLen
	return lx, nil
}

// ScanAll tokenizes the whole buffer context-free (every token allowed
// everywhere) — the conventional scanner baseline.
func ScanAll(spec *core.Spec, data []byte) ([]Lexeme, error) {
	l := New(spec, data)
	var out []Lexeme
	for !l.EOF() {
		lx, err := l.Next(nil)
		if err != nil {
			return out, err
		}
		out = append(out, lx)
	}
	return out, nil
}
