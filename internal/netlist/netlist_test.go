package netlist

import (
	"strings"
	"testing"
)

func TestBuilderBasics(t *testing.T) {
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	x := n.And(a, b)
	y := n.Or(a, b)
	z := n.Not(x)
	r := n.Reg(y, "r")
	n.Output("z", z)
	n.Output("r", r)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.ComputeStats()
	if s.And != 1 || s.Or != 1 || s.Not != 1 || s.Reg != 1 || s.Inputs != 2 || s.Outputs != 2 {
		t.Errorf("stats = %v", s)
	}
}

func TestConstDedup(t *testing.T) {
	n := New()
	t1 := n.Const(true)
	t2 := n.Const(true)
	f1 := n.Const(false)
	if t1 != t2 {
		t.Error("true const not deduplicated")
	}
	if t1 == f1 {
		t.Error("true and false share a wire")
	}
}

func TestInputDedup(t *testing.T) {
	n := New()
	a1 := n.Input("a")
	a2 := n.Input("a")
	if a1 != a2 {
		t.Error("same-named input not deduplicated")
	}
	if len(n.Inputs) != 1 {
		t.Errorf("inputs = %v", n.Inputs)
	}
}

func TestDegenerateGates(t *testing.T) {
	n := New()
	a := n.Input("a")
	if got := n.And(a); got != a {
		t.Error("1-ary And should pass through")
	}
	if got := n.Or(a); got != a {
		t.Error("1-ary Or should pass through")
	}
	if got := n.And(); got != n.Const(true) {
		t.Error("0-ary And should be true")
	}
	if got := n.Or(); got != n.Const(false) {
		t.Error("0-ary Or should be false")
	}
}

func TestValidateErrors(t *testing.T) {
	// Duplicate output name.
	n := New()
	a := n.Input("a")
	n.Output("x", a)
	n.Output("x", a)
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "bound twice") {
		t.Errorf("dup output: %v", err)
	}

	// Out-of-range fanin.
	n = New()
	n.Gates = append(n.Gates, Gate{Op: OpNot, In: []Wire{42}, Enable: Invalid})
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("bad fanin: %v", err)
	}

	// Combinational cycle: two NOTs feeding each other.
	n = New()
	n.Gates = append(n.Gates,
		Gate{Op: OpNot, In: []Wire{1}, Enable: Invalid},
		Gate{Op: OpNot, In: []Wire{0}, Enable: Invalid},
	)
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("comb cycle: %v", err)
	}
}

func TestRegisterBreaksCycle(t *testing.T) {
	// A register in a feedback loop is legal (that is how chains loop for
	// one-or-more patterns).
	n := New()
	a := n.Input("a")
	// r feeds an AND whose output feeds r back.
	// Build in two steps since the wire must exist first.
	r := n.Reg(a, "seed") // placeholder D, patched below
	x := n.And(r, a)
	n.Gates[r].In[0] = x
	n.Output("x", x)
	if err := n.Validate(); err != nil {
		t.Fatalf("register feedback rejected: %v", err)
	}
}

func TestCombOrderRespectsDependencies(t *testing.T) {
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	x := n.And(a, b)
	y := n.Or(x, a)
	z := n.Not(y)
	n.Output("z", z)
	order, err := n.CombOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[Wire]int)
	for i, w := range order {
		pos[w] = i
	}
	if !(pos[x] < pos[y] && pos[y] < pos[z]) {
		t.Errorf("order %v violates dependencies", order)
	}
}

func TestFanoutAndStats(t *testing.T) {
	n := New()
	a := n.Input("hot")
	var ws []Wire
	for i := 0; i < 5; i++ {
		ws = append(ws, n.Not(a))
	}
	en := n.Input("en")
	n.RegEn(ws[0], en, "r")
	fo := n.Fanout()
	if fo[a] != 5 {
		t.Errorf("fanout(a) = %d, want 5", fo[a])
	}
	if fo[en] != 1 {
		t.Errorf("enable fanout = %d, want 1", fo[en])
	}
	s := n.ComputeStats()
	if s.MaxFanout != 5 || s.MaxFanoutLabel != "hot" {
		t.Errorf("stats fanout = %d (%s)", s.MaxFanout, s.MaxFanoutLabel)
	}
}

func TestLabeled(t *testing.T) {
	n := New()
	a := n.Input("a")
	n.Reg(a, "dec/x")
	n.Reg(a, "dec/y")
	n.Reg(a, "tok/z")
	if got := len(n.Labeled("dec/")); got != 2 {
		t.Errorf("Labeled(dec/) = %d, want 2", got)
	}
	if got := len(n.Labeled("tok/")); got != 1 {
		t.Errorf("Labeled(tok/) = %d, want 1", got)
	}
}

func TestOutputLookup(t *testing.T) {
	n := New()
	a := n.Input("a")
	n.Output("out", a)
	if w, ok := n.OutputWire("out"); !ok || w != a {
		t.Error("OutputWire lookup failed")
	}
	if _, ok := n.OutputWire("nope"); ok {
		t.Error("OutputWire found a ghost")
	}
	if w, ok := n.InputWire("a"); !ok || w != a {
		t.Error("InputWire lookup failed")
	}
}
