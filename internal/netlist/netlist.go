// Package netlist defines the gate-level intermediate representation
// produced by the hardware generator: AND/OR/NOT gates, D flip-flops with
// optional clock enables, primary inputs and named output ports. It is the
// software stand-in for the VHDL the paper's generator emits — the same
// structure is simulated cycle-accurately (internal/sim), technology-mapped
// into 4-input LUTs (internal/fpga) and pretty-printed as VHDL
// (internal/vhdl).
package netlist

import (
	"fmt"
	"sort"
)

// Wire identifies a signal; every wire is driven by exactly one gate whose
// index equals the wire value.
type Wire int32

// Invalid is the zero-value sentinel for optional wires (e.g. a register
// without a clock enable).
const Invalid Wire = -1

// Op enumerates gate kinds.
type Op uint8

const (
	// OpConst drives a constant value (Gate.Init).
	OpConst Op = iota
	// OpInput is a primary input set by the simulator each cycle.
	OpInput
	// OpAnd drives the conjunction of its fanin (arbitrary arity ≥ 1).
	OpAnd
	// OpOr drives the disjunction of its fanin (arbitrary arity ≥ 1).
	OpOr
	// OpNot drives the negation of its single fanin.
	OpNot
	// OpReg is a D flip-flop: it drives the value loaded from In[0] at the
	// previous clock edge. If Enable is valid, the register holds its value
	// on cycles where the enable wire is low (the delimiter-hold of
	// section 3.2 uses this).
	OpReg
)

func (o Op) String() string {
	switch o {
	case OpConst:
		return "const"
	case OpInput:
		return "input"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpNot:
		return "not"
	case OpReg:
		return "reg"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Gate is one node of the netlist.
type Gate struct {
	Op     Op
	In     []Wire
	Enable Wire   // OpReg only; Invalid means always enabled
	Init   bool   // OpConst value / OpReg power-on value
	Label  string // optional debug name
}

// Port is a named output of the design.
type Port struct {
	Name string
	Wire Wire
}

// Netlist is a complete design under construction or analysis.
type Netlist struct {
	Gates   []Gate
	Inputs  []Port // primary inputs in declaration order
	Outputs []Port // named outputs in declaration order

	inputByName  map[string]Wire
	outputByName map[string]Wire
}

// New returns an empty netlist.
func New() *Netlist {
	return &Netlist{
		inputByName:  make(map[string]Wire),
		outputByName: make(map[string]Wire),
	}
}

func (n *Netlist) add(g Gate) Wire {
	n.Gates = append(n.Gates, g)
	return Wire(len(n.Gates) - 1)
}

// Const returns a wire driving the constant v. Constants are deduplicated.
func (n *Netlist) Const(v bool) Wire {
	for i, g := range n.Gates {
		if g.Op == OpConst && g.Init == v {
			return Wire(i)
		}
	}
	return n.add(Gate{Op: OpConst, Enable: Invalid, Init: v})
}

// Input declares (or returns the existing) primary input with the name.
func (n *Netlist) Input(name string) Wire {
	if w, ok := n.inputByName[name]; ok {
		return w
	}
	w := n.add(Gate{Op: OpInput, Enable: Invalid, Label: name})
	n.inputByName[name] = w
	n.Inputs = append(n.Inputs, Port{Name: name, Wire: w})
	return w
}

// And returns a wire driving the conjunction of the operands. Zero
// operands yield constant true; one operand is returned unchanged.
func (n *Netlist) And(ws ...Wire) Wire {
	switch len(ws) {
	case 0:
		return n.Const(true)
	case 1:
		return ws[0]
	}
	return n.add(Gate{Op: OpAnd, In: append([]Wire(nil), ws...), Enable: Invalid})
}

// Or returns a wire driving the disjunction of the operands. Zero operands
// yield constant false; one operand is returned unchanged.
func (n *Netlist) Or(ws ...Wire) Wire {
	switch len(ws) {
	case 0:
		return n.Const(false)
	case 1:
		return ws[0]
	}
	return n.add(Gate{Op: OpOr, In: append([]Wire(nil), ws...), Enable: Invalid})
}

// Not returns a wire driving the negation of w.
func (n *Netlist) Not(w Wire) Wire {
	return n.add(Gate{Op: OpNot, In: []Wire{w}, Enable: Invalid})
}

// Reg returns a flip-flop loading d every cycle, initialized to zero.
func (n *Netlist) Reg(d Wire, label string) Wire {
	return n.add(Gate{Op: OpReg, In: []Wire{d}, Enable: Invalid, Label: label})
}

// RegEn returns a flip-flop that loads d on cycles where enable is high and
// holds otherwise.
func (n *Netlist) RegEn(d, enable Wire, label string) Wire {
	return n.add(Gate{Op: OpReg, In: []Wire{d}, Enable: enable, Label: label})
}

// Output binds a name to a wire as a design output. Rebinding a name is an
// error surfaced by Validate.
func (n *Netlist) Output(name string, w Wire) {
	n.outputByName[name] = w
	n.Outputs = append(n.Outputs, Port{Name: name, Wire: w})
}

// OutputWire returns the wire bound to a named output.
func (n *Netlist) OutputWire(name string) (Wire, bool) {
	w, ok := n.outputByName[name]
	return w, ok
}

// InputWire returns the wire of a named primary input.
func (n *Netlist) InputWire(name string) (Wire, bool) {
	w, ok := n.inputByName[name]
	return w, ok
}

// Validate checks structural sanity: fanin wires in range, correct arity,
// unique output names, and the absence of combinational cycles.
func (n *Netlist) Validate() error {
	seen := make(map[string]bool)
	for _, p := range n.Outputs {
		if seen[p.Name] {
			return fmt.Errorf("netlist: output %q bound twice", p.Name)
		}
		seen[p.Name] = true
		if p.Wire < 0 || int(p.Wire) >= len(n.Gates) {
			return fmt.Errorf("netlist: output %q wire %d out of range", p.Name, p.Wire)
		}
	}
	for i, g := range n.Gates {
		for _, in := range g.In {
			if in < 0 || int(in) >= len(n.Gates) {
				return fmt.Errorf("netlist: gate %d (%s) fanin %d out of range", i, g.Op, in)
			}
		}
		switch g.Op {
		case OpConst, OpInput:
			if len(g.In) != 0 {
				return fmt.Errorf("netlist: gate %d (%s) must have no fanin", i, g.Op)
			}
		case OpNot:
			if len(g.In) != 1 {
				return fmt.Errorf("netlist: gate %d (not) must have exactly one fanin", i)
			}
		case OpAnd, OpOr:
			if len(g.In) < 2 {
				return fmt.Errorf("netlist: gate %d (%s) must have ≥ 2 fanin", i, g.Op)
			}
		case OpReg:
			if len(g.In) != 1 {
				return fmt.Errorf("netlist: gate %d (reg) must have exactly one D fanin", i)
			}
			if g.Enable != Invalid && (g.Enable < 0 || int(g.Enable) >= len(n.Gates)) {
				return fmt.Errorf("netlist: gate %d (reg) enable wire %d out of range", i, g.Enable)
			}
		default:
			return fmt.Errorf("netlist: gate %d has unknown op %d", i, g.Op)
		}
	}
	if _, err := n.CombOrder(); err != nil {
		return err
	}
	return nil
}

// CombOrder returns a topological evaluation order over the combinational
// gates (AND/OR/NOT). Registers, inputs and constants are sources. An error
// is returned if a combinational cycle exists.
func (n *Netlist) CombOrder() ([]Wire, error) {
	indeg := make([]int, len(n.Gates))
	fanout := make([][]Wire, len(n.Gates))
	isComb := func(g Gate) bool { return g.Op == OpAnd || g.Op == OpOr || g.Op == OpNot }
	for i, g := range n.Gates {
		if !isComb(g) {
			continue
		}
		for _, in := range g.In {
			if isComb(n.Gates[in]) {
				indeg[i]++
				fanout[in] = append(fanout[in], Wire(i))
			}
		}
	}
	var order []Wire
	var queue []Wire
	for i, g := range n.Gates {
		if isComb(g) && indeg[i] == 0 {
			queue = append(queue, Wire(i))
		}
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		order = append(order, w)
		for _, f := range fanout[w] {
			indeg[f]--
			if indeg[f] == 0 {
				queue = append(queue, f)
			}
		}
	}
	total := 0
	for _, g := range n.Gates {
		if isComb(g) {
			total++
		}
	}
	if len(order) != total {
		return nil, fmt.Errorf("netlist: combinational cycle detected (%d of %d gates ordered)", len(order), total)
	}
	return order, nil
}

// Stats summarizes a netlist for reporting.
type Stats struct {
	Inputs, Outputs          int
	And, Or, Not, Reg, Const int
	// MaxFanout is the largest number of gate fanin references to a single
	// wire (register enables included); the paper's timing analysis found
	// the critical path in exactly this quantity.
	MaxFanout int
	// MaxFanoutLabel names the wire with the largest fanout when it has a
	// label (decoded character wires do).
	MaxFanoutLabel string
}

// ComputeStats tallies gate counts and the fanout profile.
func (n *Netlist) ComputeStats() Stats {
	var s Stats
	s.Inputs = len(n.Inputs)
	s.Outputs = len(n.Outputs)
	fanout := n.Fanout()
	for i, g := range n.Gates {
		switch g.Op {
		case OpAnd:
			s.And++
		case OpOr:
			s.Or++
		case OpNot:
			s.Not++
		case OpReg:
			s.Reg++
		case OpConst:
			s.Const++
		}
		if fanout[i] > s.MaxFanout {
			s.MaxFanout = fanout[i]
			s.MaxFanoutLabel = g.Label
		}
	}
	return s
}

// Fanout returns, per wire, the number of gate fanin references to it
// (register enables count; output port bindings do not).
func (n *Netlist) Fanout() []int {
	fanout := make([]int, len(n.Gates))
	for _, g := range n.Gates {
		for _, in := range g.In {
			fanout[in]++
		}
		if g.Op == OpReg && g.Enable != Invalid {
			fanout[g.Enable]++
		}
	}
	return fanout
}

// Labeled returns all gates carrying the given label prefix, sorted by
// wire. The generator labels functional groups (decoders, token chains),
// which tests and reports use to slice area accounting.
func (n *Netlist) Labeled(prefix string) []Wire {
	var out []Wire
	for i, g := range n.Gates {
		if len(g.Label) >= len(prefix) && g.Label[:len(prefix)] == prefix {
			out = append(out, Wire(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s Stats) String() string {
	return fmt.Sprintf("in=%d out=%d and=%d or=%d not=%d reg=%d maxFanout=%d(%s)",
		s.Inputs, s.Outputs, s.And, s.Or, s.Not, s.Reg, s.MaxFanout, s.MaxFanoutLabel)
}
