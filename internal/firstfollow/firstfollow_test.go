package firstfollow

import (
	"reflect"
	"strings"
	"testing"

	"cfgtag/internal/grammar"
)

// TestFigure10 checks the paper's worked example: the Follow set table for
// every terminal of the if-then-else grammar (figure 9) must match
// figure 10 exactly.
func TestFigure10(t *testing.T) {
	s := Compute(grammar.IfThenElse())
	want := map[string][]string{
		"if":    {"false", "true"},
		"then":  {"go", "if", "stop"},
		"else":  {"go", "if", "stop"},
		"go":    {End, "else"},
		"stop":  {End, "else"},
		"true":  {"then"},
		"false": {"then"},
	}
	for term, w := range want {
		if got := s.Follow(term); !reflect.DeepEqual(got, w) {
			t.Errorf("Follow(%s) = %v, want %v", term, got, w)
		}
	}
	// Start terminals: FIRST(E) = {if, go, stop}.
	if got := s.StartTerminals(); !reflect.DeepEqual(got, []string{"go", "if", "stop"}) {
		t.Errorf("StartTerminals = %v", got)
	}
	if !s.CanEnd("go") || !s.CanEnd("stop") || s.CanEnd("if") {
		t.Error("CanEnd wrong for figure 10 terminals")
	}
}

func TestFirstSets(t *testing.T) {
	s := Compute(grammar.IfThenElse())
	if got := s.First("E"); !reflect.DeepEqual(got, []string{"go", "if", "stop"}) {
		t.Errorf("First(E) = %v", got)
	}
	if got := s.First("C"); !reflect.DeepEqual(got, []string{"false", "true"}) {
		t.Errorf("First(C) = %v", got)
	}
	if got := s.First("if"); !reflect.DeepEqual(got, []string{"if"}) {
		t.Errorf("First(if) = %v, terminals are their own First", got)
	}
}

func TestNullable(t *testing.T) {
	g, err := grammar.Parse("t", `
%%
S : A B "x" ;
A : | "a" ;
B : A A ;
`)
	if err != nil {
		t.Fatal(err)
	}
	s := Compute(g)
	if !s.Nullable("A") {
		t.Error("A should be nullable")
	}
	if !s.Nullable("B") {
		t.Error("B (two nullables) should be nullable")
	}
	if s.Nullable("S") {
		t.Error("S ends in a terminal; not nullable")
	}
	// First(S) must see through the nullables: {a, x}.
	if got := s.First("S"); !reflect.DeepEqual(got, []string{"a", "x"}) {
		t.Errorf("First(S) = %v", got)
	}
	// Follow(A): A is followed by B (nullable) then "x", and inside B by A
	// then end-of-B context. So {a, x}.
	if got := s.Follow("A"); !reflect.DeepEqual(got, []string{"a", "x"}) {
		t.Errorf("Follow(A) = %v", got)
	}
}

func TestBalancedParens(t *testing.T) {
	s := Compute(grammar.BalancedParens())
	// E -> ( E ) | 0
	if got := s.First("E"); !reflect.DeepEqual(got, []string{"(", "0"}) {
		t.Errorf("First(E) = %v", got)
	}
	// "(" is followed by FIRST(E); ")" by FOLLOW(E) = {), $end};
	// "0" by FOLLOW(E) as well.
	if got := s.Follow("("); !reflect.DeepEqual(got, []string{"(", "0"}) {
		t.Errorf("Follow( ( ) = %v", got)
	}
	if got := s.Follow(")"); !reflect.DeepEqual(got, []string{End, ")"}) {
		t.Errorf("Follow( ) ) = %v", got)
	}
	if got := s.Follow("0"); !reflect.DeepEqual(got, []string{End, ")"}) {
		t.Errorf("Follow(0) = %v", got)
	}
}

func TestXMLRPCFollow(t *testing.T) {
	s := Compute(grammar.XMLRPC())
	// After <methodName> comes exactly STRING.
	if got := s.Follow("<methodName>"); !reflect.DeepEqual(got, []string{"STRING"}) {
		t.Errorf("Follow(<methodName>) = %v", got)
	}
	// After </methodName> comes <params>.
	if got := s.Follow("</methodName>"); !reflect.DeepEqual(got, []string{"<params>"}) {
		t.Errorf("Follow(</methodName>) = %v", got)
	}
	// After <params>: param is nullable so either <param> or </params>.
	if got := s.Follow("<params>"); !reflect.DeepEqual(got, []string{"</params>", "<param>"}) {
		t.Errorf("Follow(<params>) = %v", got)
	}
	// </methodCall> ends the document.
	if !s.CanEnd("</methodCall>") {
		t.Error("</methodCall> should end input")
	}
	// A value can start with any of the eight type tags.
	first, nullable := s.FirstOfSeq([]grammar.Symbol{{Kind: grammar.NonTerminal, Name: "value"}})
	if nullable {
		t.Error("value should not be nullable")
	}
	wantFirst := []string{"<array>", "<base64>", "<dateTime.iso8601>", "<double>", "<i4>", "<int>", "<string>", "<struct>"}
	if !reflect.DeepEqual(first, wantFirst) {
		t.Errorf("First(value) = %v", first)
	}
	// Inside dateTime the digit runs chain: YEAR's follow is MONTH.
	if got := s.Follow("YEAR"); !reflect.DeepEqual(got, []string{"MONTH"}) {
		t.Errorf("Follow(YEAR) = %v", got)
	}
	if got := s.Follow("DAY"); !reflect.DeepEqual(got, []string{"T"}) {
		t.Errorf("Follow(DAY) = %v", got)
	}
	// Start terminal is the opening tag only.
	if got := s.StartTerminals(); !reflect.DeepEqual(got, []string{"<methodCall>"}) {
		t.Errorf("StartTerminals = %v", got)
	}
}

func TestFirstOfSeq(t *testing.T) {
	g := grammar.IfThenElse()
	s := Compute(g)
	seq := []grammar.Symbol{
		{Kind: grammar.NonTerminal, Name: "C"},
		{Kind: grammar.Terminal, Name: "then"},
	}
	first, nullable := s.FirstOfSeq(seq)
	if nullable || !reflect.DeepEqual(first, []string{"false", "true"}) {
		t.Errorf("FirstOfSeq = %v nullable=%v", first, nullable)
	}
	first, nullable = s.FirstOfSeq(nil)
	if !nullable || len(first) != 0 {
		t.Errorf("FirstOfSeq(ε) = %v nullable=%v", first, nullable)
	}
}

func TestTerminalFollowTable(t *testing.T) {
	s := Compute(grammar.IfThenElse())
	table := s.TerminalFollowTable()
	for _, want := range []string{
		"if\t{false, true}",
		"go\t{ε, else}",
		"true\t{then}",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestFollowSoundness property: for every rule A -> α x β with x terminal,
// FIRST(β) ⊆ FOLLOW(x), and if β is nullable FOLLOW(A) ⊆ FOLLOW(x).
func TestFollowSoundness(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(), grammar.IfThenElse(), grammar.XMLRPC(),
	} {
		s := Compute(g)
		for _, r := range g.Rules {
			for i, sym := range r.RHS {
				if sym.Kind != grammar.Terminal {
					continue
				}
				follow := toSet(s.Follow(sym.Name))
				beta := r.RHS[i+1:]
				first, nullable := s.FirstOfSeq(beta)
				for _, f := range first {
					if !follow[f] {
						t.Errorf("%s: rule %v: %s missing %s in Follow", g.Name, r, sym.Name, f)
					}
				}
				if nullable {
					for _, f := range s.Follow(r.LHS) {
						if !follow[f] {
							t.Errorf("%s: rule %v: %s missing %s (from Follow(%s))", g.Name, r, sym.Name, f, r.LHS)
						}
					}
				}
			}
		}
	}
}

func toSet(items []string) map[string]bool {
	m := make(map[string]bool, len(items))
	for _, it := range items {
		m[it] = true
	}
	return m
}
