// Package firstfollow implements the nullable / First / Follow set
// computation of figure 8 — the algorithm of predictive parser generators
// that the paper reuses to derive the syntactic control flow between
// tokenizers. Follow sets are computed for terminals as well as
// nonterminals: the per-terminal Follow table (figure 10) is exactly what
// the hardware generator wires (the output of token t enables every
// tokenizer in Follow(t)).
package firstfollow

import (
	"fmt"
	"sort"
	"strings"

	"cfgtag/internal/grammar"
)

// End is the pseudo-terminal marking end of input. It appears in Follow
// sets of symbols that can end a sentence (rendered ε in figure 10).
const End = "$end"

// Sets holds the computed nullable, First and Follow sets of a grammar.
type Sets struct {
	g *grammar.Grammar
	// nullable[nt] reports whether the nonterminal derives ε.
	nullable map[string]bool
	// first[sym] is the set of terminals that can begin a string derived
	// from sym. For a terminal it is the singleton {sym}.
	first map[string]map[string]bool
	// follow[sym] is the set of terminals (or End) that can immediately
	// follow sym in some sentential form derived from the start symbol.
	follow map[string]map[string]bool
}

// Compute runs the figure 8 fixpoint over the grammar's production list.
func Compute(g *grammar.Grammar) *Sets {
	s := &Sets{
		g:        g,
		nullable: make(map[string]bool),
		first:    make(map[string]map[string]bool),
		follow:   make(map[string]map[string]bool),
	}
	// "For each terminal symbol Z, FIRST[Z] = {Z}".
	for _, t := range g.Tokens {
		s.first[t.Name] = map[string]bool{t.Name: true}
		s.follow[t.Name] = make(map[string]bool)
	}
	for _, nt := range g.NonTerminals() {
		s.first[nt] = make(map[string]bool)
		s.follow[nt] = make(map[string]bool)
	}
	// The start symbol can be followed by end of input.
	s.follow[g.Start][End] = true

	// repeat until FIRST, FOLLOW and nullable no longer change.
	for changed := true; changed; {
		changed = false
		add := func(dst map[string]bool, src map[string]bool) {
			for k := range src {
				if !dst[k] {
					dst[k] = true
					changed = true
				}
			}
		}
		for _, r := range g.Rules {
			x, ys := r.LHS, r.RHS
			// if Y1...Yk are all nullable (or k = 0) then nullable[X] = true
			if !s.nullable[x] && s.seqNullable(ys) {
				s.nullable[x] = true
				changed = true
			}
			for i := range ys {
				yi := ys[i].Name
				// if Y1...Yi-1 are all nullable (or i = 1) then
				// FIRST[X] ← FIRST[X] ∪ FIRST[Yi]
				if s.seqNullable(ys[:i]) {
					add(s.first[x], s.first[yi])
				}
				// if Yi+1...Yk are all nullable (or i = k) then
				// FOLLOW[Yi] ← FOLLOW[Yi] ∪ FOLLOW[X]
				if s.seqNullable(ys[i+1:]) {
					add(s.follow[yi], s.follow[x])
				}
				// if Yi+1...Yj-1 are all nullable (or i+1 = j) then
				// FOLLOW[Yi] ← FOLLOW[Yi] ∪ FIRST[Yj]
				for j := i + 1; j < len(ys); j++ {
					if s.seqNullable(ys[i+1 : j]) {
						add(s.follow[yi], s.first[ys[j].Name])
					}
				}
			}
		}
	}
	return s
}

// seqNullable reports whether every symbol in the sequence is nullable
// (trivially true for the empty sequence). Terminals are never nullable.
func (s *Sets) seqNullable(syms []grammar.Symbol) bool {
	for _, sym := range syms {
		if sym.Kind == grammar.Terminal || !s.nullable[sym.Name] {
			return false
		}
	}
	return true
}

// Nullable reports whether the symbol derives the empty string.
func (s *Sets) Nullable(sym string) bool { return s.nullable[sym] }

// First returns FIRST(sym) sorted. For a terminal this is {sym}.
func (s *Sets) First(sym string) []string { return sorted(s.first[sym]) }

// Follow returns FOLLOW(sym) sorted; it may include End.
func (s *Sets) Follow(sym string) []string { return sorted(s.follow[sym]) }

// FirstOfSeq returns FIRST of a symbol sequence and whether the whole
// sequence is nullable.
func (s *Sets) FirstOfSeq(syms []grammar.Symbol) ([]string, bool) {
	set := make(map[string]bool)
	for _, sym := range syms {
		for t := range s.first[sym.Name] {
			set[t] = true
		}
		if sym.Kind == grammar.Terminal || !s.nullable[sym.Name] {
			return sorted(set), false
		}
	}
	return sorted(set), true
}

// StartTerminals returns FIRST(start): the terminals whose tokenizers must
// be enabled at the beginning of the data (section 3.3).
func (s *Sets) StartTerminals() []string { return s.First(s.g.Start) }

// CanEnd reports whether the terminal may be the last token of a sentence
// (Follow contains End — the ε entries of figure 10).
func (s *Sets) CanEnd(term string) bool { return s.follow[term][End] }

// TerminalFollowTable renders the figure 10 table: one line per terminal in
// token-list order with its Follow set, End shown as ε.
func (s *Sets) TerminalFollowTable() string {
	var b strings.Builder
	for _, t := range s.g.Tokens {
		items := s.Follow(t.Name)
		disp := make([]string, len(items))
		for i, it := range items {
			if it == End {
				disp[i] = "ε"
			} else {
				disp[i] = it
			}
		}
		fmt.Fprintf(&b, "%s\t{%s}\n", t.Name, strings.Join(disp, ", "))
	}
	return b.String()
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
