// Package regex implements the token regular-expression subset of the
// paper's lexical scanner (section 3.2): literals, character classes,
// alternation, grouping and the Not / One-or-None / One-or-More /
// Zero-or-More functions of figure 6.
//
// Patterns are compiled to a Glushkov position automaton: one consuming
// position per pattern byte, which is exactly the "one pipeline register per
// pattern character" structure of the hardware string detectors. The same
// Program drives the reference software matcher, the gate-level hardware
// generator and the bit-parallel stream tagger.
//
// Accepted syntax:
//
//	abc          literal characters
//	\c           escaped literal (\n \t \r \0 \xNN \\ \. \[ \] \( \) \| \* \+ \? \- \^ \$)
//	[a-z09\n]    character class with ranges; [^...] negates
//	.            any byte except '\n'
//	(e)          grouping
//	e|e          alternation
//	e*  e+  e?   zero-or-more, one-or-more, one-or-none
//	(?i)         prefix flag: letters match case-insensitively (figure 5 "nocase")
package regex

import (
	"fmt"
	"math/bits"
	"strings"
)

// ByteClass is a set of byte values, the decoder-level unit of the paper's
// lexical scanner: each distinct class becomes one pre-decoded wire
// (figures 4 and 5).
type ByteClass [4]uint64

// Add inserts byte b into the class.
func (c *ByteClass) Add(b byte) { c[b>>6] |= 1 << (b & 63) }

// AddRange inserts every byte in [lo, hi].
func (c *ByteClass) AddRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		c.Add(byte(b))
	}
}

// Has reports whether byte b is in the class.
func (c ByteClass) Has(b byte) bool { return c[b>>6]&(1<<(b&63)) != 0 }

// Negate replaces the class with its complement.
func (c *ByteClass) Negate() {
	for i := range c {
		c[i] = ^c[i]
	}
}

// Union returns the union of two classes.
func (c ByteClass) Union(o ByteClass) ByteClass {
	var out ByteClass
	for i := range c {
		out[i] = c[i] | o[i]
	}
	return out
}

// Intersects reports whether the two classes share any byte.
func (c ByteClass) Intersects(o ByteClass) bool {
	for i := range c {
		if c[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// IsEmpty reports whether the class contains no bytes.
func (c ByteClass) IsEmpty() bool { return c == ByteClass{} }

// Count returns the number of bytes in the class.
func (c ByteClass) Count() int {
	n := 0
	for i := range c {
		n += bits.OnesCount64(c[i])
	}
	return n
}

// Bytes returns the members of the class in ascending order.
func (c ByteClass) Bytes() []byte {
	out := make([]byte, 0, c.Count())
	for b := 0; b < 256; b++ {
		if c.Has(byte(b)) {
			out = append(out, byte(b))
		}
	}
	return out
}

// Single returns the class containing exactly b.
func Single(b byte) ByteClass {
	var c ByteClass
	c.Add(b)
	return c
}

// FoldCase adds the opposite-case letter for every ASCII letter in the
// class, implementing the figure 5 "nocase" decoder.
func (c *ByteClass) FoldCase() {
	for b := byte('a'); b <= 'z'; b++ {
		if c.Has(b) {
			c.Add(b - 'a' + 'A')
		}
	}
	for b := byte('A'); b <= 'Z'; b++ {
		if c.Has(b) {
			c.Add(b - 'A' + 'a')
		}
	}
}

// String renders the class compactly: a bare character for singletons, a
// bracketed range expression otherwise.
func (c ByteClass) String() string {
	n := c.Count()
	if n == 0 {
		return "[]"
	}
	if n == 1 {
		return classChar(c.Bytes()[0])
	}
	if n > 128 {
		inv := c
		inv.Negate()
		return "[^" + rangesString(inv) + "]"
	}
	return "[" + rangesString(c) + "]"
}

func rangesString(c ByteClass) string {
	var sb strings.Builder
	for b := 0; b < 256; {
		if !c.Has(byte(b)) {
			b++
			continue
		}
		start := b
		for b < 256 && c.Has(byte(b)) {
			b++
		}
		end := b - 1
		sb.WriteString(classChar(byte(start)))
		if end > start {
			if end > start+1 {
				sb.WriteByte('-')
			}
			sb.WriteString(classChar(byte(end)))
		}
	}
	return sb.String()
}

func classChar(b byte) string {
	switch b {
	case '\n':
		return `\n`
	case '\t':
		return `\t`
	case '\r':
		return `\r`
	case '\\', '[', ']', '-', '^':
		return `\` + string(b)
	}
	if b >= 0x20 && b < 0x7f {
		return string(b)
	}
	return fmt.Sprintf(`\x%02x`, b)
}
