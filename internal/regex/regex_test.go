package regex

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func TestClassBasics(t *testing.T) {
	var c ByteClass
	if !c.IsEmpty() {
		t.Error("zero class not empty")
	}
	c.Add('a')
	c.AddRange('0', '9')
	if !c.Has('a') || !c.Has('5') || c.Has('b') {
		t.Error("membership wrong")
	}
	if c.Count() != 11 {
		t.Errorf("count = %d, want 11", c.Count())
	}
	c.Negate()
	if c.Has('a') || !c.Has('b') {
		t.Error("negation wrong")
	}
	if c.Count() != 245 {
		t.Errorf("negated count = %d", c.Count())
	}
}

func TestClassFoldCase(t *testing.T) {
	c := Single('a')
	c.FoldCase()
	if !c.Has('A') || !c.Has('a') || c.Count() != 2 {
		t.Errorf("fold of 'a' = %v", c.Bytes())
	}
	d := Single('Z')
	d.FoldCase()
	if !d.Has('z') {
		t.Error("fold of 'Z' misses 'z'")
	}
	e := Single('5')
	e.FoldCase()
	if e.Count() != 1 {
		t.Error("fold of digit changed the class")
	}
}

func TestClassString(t *testing.T) {
	cases := map[string]string{
		"a":        "a",
		"[a-z]":    "[a-z]",
		"[a-cx]":   "[a-cx]",
		`[\n]`:     `\n`,
		"[a-zA-Z]": "[A-Za-z]",
	}
	for pat, want := range cases {
		p := MustCompile(pat)
		if got := p.Classes[0].String(); got != want {
			t.Errorf("class of %q renders %q, want %q", pat, got, want)
		}
	}
}

func TestClassUnionIntersects(t *testing.T) {
	a, b := Single('x'), Single('y')
	u := a.Union(b)
	if !u.Has('x') || !u.Has('y') || u.Count() != 2 {
		t.Error("union wrong")
	}
	if a.Intersects(b) {
		t.Error("disjoint classes intersect")
	}
	if !u.Intersects(a) {
		t.Error("union does not intersect member")
	}
}

func TestCompileStructure(t *testing.T) {
	// a+ : one position, self-loop, first=last={0}, not nullable.
	p := MustCompile("a+")
	if p.Len() != 1 || p.Nullable {
		t.Fatalf("a+ program: %v", p)
	}
	if len(p.First) != 1 || p.First[0] != 0 || !p.IsLast(0) {
		t.Errorf("a+ first/last: %v", p)
	}
	if len(p.Follow[0]) != 1 || p.Follow[0][0] != 0 {
		t.Errorf("a+ follow: %v", p.Follow)
	}

	// a* : same but nullable.
	p = MustCompile("a*")
	if !p.Nullable {
		t.Error("a* not nullable")
	}

	// ab : two positions chained.
	p = MustCompile("ab")
	if p.Len() != 2 || len(p.First) != 1 || p.First[0] != 0 {
		t.Fatalf("ab program: %v", p)
	}
	if p.IsLast(0) || !p.IsLast(1) {
		t.Error("ab last set wrong")
	}
	if len(p.Follow[0]) != 1 || p.Follow[0][0] != 1 || len(p.Follow[1]) != 0 {
		t.Errorf("ab follow: %v", p.Follow)
	}

	// a|b : two first positions, both last.
	p = MustCompile("a|b")
	if len(p.First) != 2 || len(p.Last) != 2 {
		t.Errorf("a|b: %v", p)
	}

	// (ab)+c : follow(b) = {a-pos, c-pos}.
	p = MustCompile("(ab)+c")
	if got := p.Follow[1]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("(ab)+c follow(1) = %v, want [0 2]", got)
	}

	// a?b : first = {a, b}.
	p = MustCompile("a?b")
	if len(p.First) != 2 {
		t.Errorf("a?b first = %v", p.First)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"", "(", "(a", "a)", "[", "[]", "[z-a]", "a\\", "*a", "+", "?",
		"a|", "|a", "a(|)b", "[a", "a**b(", "(?i)",
		`\x`, `\x4`, `\xgg`,
	}
	for _, pat := range bad {
		if _, err := Compile(pat); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", pat)
		}
	}
	// a** is pathological but structurally valid (star of star).
	if _, err := Compile("a**"); err != nil {
		t.Errorf("a**: %v", err)
	}
}

func TestNocaseFlag(t *testing.T) {
	p := MustCompile("(?i)abc")
	for _, s := range []string{"abc", "ABC", "aBc"} {
		if !p.Match([]byte(s)) {
			t.Errorf("(?i)abc does not match %q", s)
		}
	}
	if p.Match([]byte("ab")) {
		t.Error("(?i)abc matches prefix")
	}
	q := MustCompile("(?i)[a-c]+")
	if !q.Match([]byte("AbC")) {
		t.Error("(?i) class fold failed")
	}
}

func TestEscapes(t *testing.T) {
	cases := []struct {
		pat string
		yes []string
		no  []string
	}{
		{`\.`, []string{"."}, []string{"a"}},
		{`a\+b`, []string{"a+b"}, []string{"ab", "aab"}},
		{`[\t\n ]`, []string{"\t", "\n", " "}, []string{"x"}},
		{`\\`, []string{`\`}, []string{"/"}},
		{`\n`, []string{"\n"}, []string{"n"}},
		{`\x41\x42`, []string{"AB"}, []string{"ab", "A"}},
		{`[\x00-\x1f]+`, []string{"\x00\x01\x1f"}, []string{" ", "A"}},
		{`\xFf`, []string{"\xff"}, []string{"f"}},
	}
	for _, tc := range cases {
		p := MustCompile(tc.pat)
		for _, s := range tc.yes {
			if !p.Match([]byte(s)) {
				t.Errorf("%q should match %q", tc.pat, s)
			}
		}
		for _, s := range tc.no {
			if p.Match([]byte(s)) {
				t.Errorf("%q should not match %q", tc.pat, s)
			}
		}
	}
}

// oraclePatterns pairs our pattern syntax with the equivalent Go regexp
// (POSIX leftmost-longest, matching the automaton's longest semantics).
var oraclePatterns = []struct{ ours, gore string }{
	{`[a-zA-Z0-9]+`, `[a-zA-Z0-9]+`},
	{`[+-]?[0-9]+`, `[+-]?[0-9]+`},
	{`[+-]?[0-9]+\.[0-9]+`, `[+-]?[0-9]+\.[0-9]+`},
	{`ab|cd|ef`, `ab|cd|ef`},
	{`a(b|c)*d`, `a(b|c)*d`},
	{`(ab)+`, `(ab)+`},
	{`a?b?c?d`, `a?b?c?d`},
	{`[^ab]+`, `[^ab]+`},
	{`x.y`, `x.y`},
	{`(a|ab)(c|bc)`, `(a|ab)(c|bc)`},
}

func TestMatchAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// No newline: Go's POSIX mode excludes \n from negated classes, which
	// diverges from the hardware decoder semantics this package models.
	alphabet := []byte("abcdef+-.0129xy ")
	for _, pp := range oraclePatterns {
		p := MustCompile(pp.ours)
		// POSIX mode treats ^ and $ as line anchors, so full-match is
		// checked via the span of the leftmost-longest match instead.
		oracle := regexp.MustCompilePOSIX(pp.gore)
		for trial := 0; trial < 2000; trial++ {
			n := rng.Intn(8)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = alphabet[rng.Intn(len(alphabet))]
			}
			got := p.Match(buf)
			loc := oracle.FindIndex(buf)
			want := loc != nil && loc[0] == 0 && loc[1] == len(buf)
			if n == 0 {
				// FindIndex on empty input returns nil for non-nullable
				// patterns and [0 0] for nullable ones; both agree with the
				// span rule above.
				want = loc != nil
			}
			if got != want {
				t.Fatalf("pattern %q input %q: Match=%v oracle=%v", pp.ours, buf, got, want)
			}
		}
	}
}

func TestLongestPrefixAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	alphabet := []byte("abcdef+-.0129xy")
	for _, pp := range oraclePatterns {
		p := MustCompile(pp.ours)
		oracle := regexp.MustCompilePOSIX(pp.gore)
		for trial := 0; trial < 2000; trial++ {
			n := rng.Intn(10)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = alphabet[rng.Intn(len(alphabet))]
			}
			got := p.LongestPrefix(buf)
			want := -1
			if loc := oracle.FindIndex(buf); loc != nil && loc[0] == 0 {
				want = loc[1]
			}
			if got != want {
				t.Fatalf("pattern %q input %q: LongestPrefix=%d oracle=%d", pp.ours, buf, got, want)
			}
		}
	}
}

func TestLongestSuffix(t *testing.T) {
	p := MustCompile(`[0-9]+`)
	cases := map[string]int{
		"abc123": 3,
		"123":    3,
		"abc":    -1,
		"":       -1,
		"1a2":    1,
	}
	for in, want := range cases {
		if got := p.LongestSuffix([]byte(in)); got != want {
			t.Errorf("LongestSuffix(%q, %q) = %d, want %d", p.Source, in, got, want)
		}
	}
	lit := MustCompile(`</methodName>`)
	if got := lit.LongestSuffix([]byte("xx</methodName>")); got != 13 {
		t.Errorf("literal suffix = %d, want 13", got)
	}
}

func TestReverse(t *testing.T) {
	p := MustCompile("abc")
	r := p.Reverse()
	if !r.Match([]byte("cba")) || r.Match([]byte("abc")) {
		t.Error("reverse of abc should match cba only")
	}
	// Reversing twice restores the language.
	rr := r.Reverse()
	if !rr.Match([]byte("abc")) {
		t.Error("double reverse broken")
	}
}

func TestReverseProperty(t *testing.T) {
	// For random inputs, p matches s iff Reverse(p) matches reverse(s).
	p := MustCompile(`a(b|cd)*e?f`)
	r := p.Reverse()
	f := func(s []byte) bool {
		for i := range s {
			s[i] = "abcdef"[int(s[i])%6]
		}
		rev := make([]byte, len(s))
		for i := range s {
			rev[len(s)-1-i] = s[i]
		}
		return p.Match(s) == r.Match(rev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestCanExtend(t *testing.T) {
	p := MustCompile("a+")
	if !p.CanExtend(0, 'a') {
		t.Error("a+ at pos 0 should extend on 'a'")
	}
	if p.CanExtend(0, 'b') {
		t.Error("a+ at pos 0 should not extend on 'b'")
	}
	lit := MustCompile("ab")
	if lit.CanExtend(1, 'a') || lit.CanExtend(1, 'b') {
		t.Error("final position of literal should not extend")
	}
}

func TestNullableDetection(t *testing.T) {
	nullable := []string{"a*", "a?", "a?b?", "(a|b)*", "a*|b"}
	solid := []string{"a", "a+", "ab", "a|b", "a*b"}
	for _, pat := range nullable {
		if !MustCompile(pat).Nullable {
			t.Errorf("%q should be nullable", pat)
		}
	}
	for _, pat := range solid {
		if MustCompile(pat).Nullable {
			t.Errorf("%q should not be nullable", pat)
		}
	}
}

func TestDotExcludesNewline(t *testing.T) {
	p := MustCompile(".")
	if p.Match([]byte("\n")) {
		t.Error(". matched newline")
	}
	if !p.Match([]byte("x")) || !p.Match([]byte{0}) {
		t.Error(". should match non-newline bytes")
	}
}

func TestProgramString(t *testing.T) {
	s := MustCompile("ab").String()
	if !strings.Contains(s, "2 positions") {
		t.Errorf("String() = %q", s)
	}
}

func TestXMLRPCTokenPatterns(t *testing.T) {
	// The actual token patterns from the figure 14 grammar must compile and
	// behave.
	year := MustCompile(`[0-9][0-9][0-9][0-9]`)
	if !year.Match([]byte("1998")) || year.Match([]byte("199")) || year.Match([]byte("19987")) {
		t.Error("YEAR pattern wrong")
	}
	dbl := MustCompile(`[+-]?[0-9]+\.[0-9]+`)
	if !dbl.Match([]byte("-3.14")) || dbl.Match([]byte("3.")) || dbl.Match([]byte(".5")) {
		t.Error("DOUBLE pattern wrong")
	}
	b64 := MustCompile(`[+/=A-Za-z0-9]+`)
	if !b64.Match([]byte("SGVsbG8=")) {
		t.Error("BASE64 pattern wrong")
	}
}
