package regex

import "fmt"

// node is a parsed regular-expression AST node.
type node interface{ isNode() }

type litNode struct{ class ByteClass }
type concatNode struct{ subs []node }
type altNode struct{ subs []node }
type starNode struct{ sub node }
type plusNode struct{ sub node }
type optNode struct{ sub node }

func (litNode) isNode()    {}
func (concatNode) isNode() {}
func (altNode) isNode()    {}
func (starNode) isNode()   {}
func (plusNode) isNode()   {}
func (optNode) isNode()    {}

// SyntaxError reports a malformed pattern with the offending offset.
type SyntaxError struct {
	Pattern string
	Pos     int
	Msg     string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("regex %q at offset %d: %s", e.Pattern, e.Pos, e.Msg)
}

type patternParser struct {
	src    string
	pos    int
	nocase bool
}

func (p *patternParser) errf(format string, args ...any) error {
	return &SyntaxError{Pattern: p.src, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *patternParser) eof() bool  { return p.pos >= len(p.src) }
func (p *patternParser) peek() byte { return p.src[p.pos] }

// parsePattern returns the AST for a pattern source.
func parsePattern(src string) (node, error) {
	p := &patternParser{src: src}
	if len(src) >= 4 && src[:4] == "(?i)" {
		p.nocase = true
		p.pos = 4
	}
	n, err := p.alternation()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, p.errf("unexpected %q", p.peek())
	}
	return n, nil
}

func (p *patternParser) alternation() (node, error) {
	first, err := p.concatenation()
	if err != nil {
		return nil, err
	}
	subs := []node{first}
	for !p.eof() && p.peek() == '|' {
		p.pos++
		n, err := p.concatenation()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	if len(subs) == 1 {
		return first, nil
	}
	return altNode{subs: subs}, nil
}

func (p *patternParser) concatenation() (node, error) {
	var subs []node
	for !p.eof() {
		switch p.peek() {
		case '|', ')':
			goto done
		}
		n, err := p.repeated()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
done:
	switch len(subs) {
	case 0:
		return nil, p.errf("empty expression")
	case 1:
		return subs[0], nil
	}
	return concatNode{subs: subs}, nil
}

func (p *patternParser) repeated() (node, error) {
	n, err := p.atom()
	if err != nil {
		return nil, err
	}
	for !p.eof() {
		switch p.peek() {
		case '*':
			p.pos++
			n = starNode{sub: n}
		case '+':
			p.pos++
			n = plusNode{sub: n}
		case '?':
			p.pos++
			n = optNode{sub: n}
		default:
			return n, nil
		}
	}
	return n, nil
}

func (p *patternParser) atom() (node, error) {
	switch c := p.peek(); c {
	case '(':
		p.pos++
		n, err := p.alternation()
		if err != nil {
			return nil, err
		}
		if p.eof() || p.peek() != ')' {
			return nil, p.errf("missing ')'")
		}
		p.pos++
		return n, nil
	case '[':
		return p.class()
	case '.':
		p.pos++
		var cl ByteClass
		cl.Negate()
		nl := Single('\n')
		for i := range cl {
			cl[i] &^= nl[i]
		}
		return litNode{class: cl}, nil
	case '*', '+', '?':
		return nil, p.errf("repetition operator %q with nothing to repeat", c)
	case '\\':
		b, err := p.escape()
		if err != nil {
			return nil, err
		}
		return p.lit(b), nil
	default:
		p.pos++
		return p.lit(c), nil
	}
}

func (p *patternParser) lit(b byte) node {
	cl := Single(b)
	if p.nocase {
		cl.FoldCase()
	}
	return litNode{class: cl}
}

func (p *patternParser) escape() (byte, error) {
	p.pos++ // consume backslash
	if p.eof() {
		return 0, p.errf("dangling escape")
	}
	c := p.peek()
	p.pos++
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case 'x':
		// \xNN: two hex digits, for binary protocol bytes.
		if p.pos+1 >= len(p.src) {
			return 0, p.errf(`\x needs two hex digits`)
		}
		hi, ok1 := hexVal(p.src[p.pos])
		lo, ok2 := hexVal(p.src[p.pos+1])
		if !ok1 || !ok2 {
			return 0, p.errf(`\x needs two hex digits, got %q`, p.src[p.pos:p.pos+2])
		}
		p.pos += 2
		return hi<<4 | lo, nil
	default:
		return c, nil
	}
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

func (p *patternParser) class() (node, error) {
	p.pos++ // consume '['
	var cl ByteClass
	negate := false
	if !p.eof() && p.peek() == '^' {
		negate = true
		p.pos++
	}
	empty := true
	for {
		if p.eof() {
			return nil, p.errf("missing ']'")
		}
		c := p.peek()
		if c == ']' && !empty {
			p.pos++
			break
		}
		var lo byte
		if c == '\\' {
			b, err := p.escape()
			if err != nil {
				return nil, err
			}
			lo = b
		} else {
			lo = c
			p.pos++
		}
		empty = false
		// Range?
		if !p.eof() && p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++ // consume '-'
			var hi byte
			if p.peek() == '\\' {
				b, err := p.escape()
				if err != nil {
					return nil, err
				}
				hi = b
			} else {
				hi = p.peek()
				p.pos++
			}
			if hi < lo {
				return nil, p.errf("invalid range %q-%q", lo, hi)
			}
			cl.AddRange(lo, hi)
		} else {
			cl.Add(lo)
		}
	}
	if negate {
		cl.Negate()
	}
	if p.nocase {
		cl.FoldCase()
	}
	if cl.IsEmpty() {
		return nil, p.errf("empty character class")
	}
	return litNode{class: cl}, nil
}
