package regex

// Intersects reports whether the languages of two programs share a string.
// It runs a breadth-first search over the product of the two position
// automata. The encoder's conflict analysis (section 3.4) uses this to
// decide which tokenizers can assert their match outputs on the same clock
// cycle and therefore need priority index assignment.
func Intersects(p, q *Program) bool {
	if p.Nullable && q.Nullable {
		return true
	}
	type pair struct{ a, b int }
	seen := make(map[pair]bool)
	var frontier []pair
	// Seed with every (first(p), first(q)) pair sharing a byte.
	for _, a := range p.First {
		for _, b := range q.First {
			if p.Classes[a].Intersects(q.Classes[b]) {
				pr := pair{a, b}
				if !seen[pr] {
					seen[pr] = true
					frontier = append(frontier, pr)
				}
			}
		}
	}
	for len(frontier) > 0 {
		pr := frontier[0]
		frontier = frontier[1:]
		if p.lastSet[pr.a] && q.lastSet[pr.b] {
			// Both automata can end after consuming the same string. The
			// shared byte at each step guarantees a common witness exists.
			return true
		}
		for _, na := range p.Follow[pr.a] {
			for _, nb := range q.Follow[pr.b] {
				if p.Classes[na].Intersects(q.Classes[nb]) {
					np := pair{na, nb}
					if !seen[np] {
						seen[np] = true
						frontier = append(frontier, np)
					}
				}
			}
		}
	}
	return false
}
