package regex

import (
	"fmt"
	"sort"
)

// Program is the Glushkov position automaton of a pattern. Position i
// consumes one input byte matching Classes[i]. The automaton starts before
// any position; a byte b moves it into every position p ∈ First with
// Classes[p].Has(b), and from position q into every p ∈ Follow[q] with
// Classes[p].Has(b). A match ends at any position in Last. Nullable
// programs additionally match the empty string.
//
// This structure is isomorphic to the paper's tokenizer hardware: one
// pipeline register per position, AND-ed with the position's decoded
// character wire, with Follow edges as the wiring between stages
// (figure 6 templates compose into exactly these edges).
type Program struct {
	// Source is the original pattern text.
	Source string
	// Classes holds the byte class consumed by each position.
	Classes []ByteClass
	// First lists the positions a match may start at, ascending.
	First []int
	// Last lists the positions a match may end at, ascending.
	Last []int
	// Follow[q] lists the positions reachable directly after q, ascending.
	Follow [][]int
	// Nullable reports whether the empty string matches.
	Nullable bool

	lastSet []bool
}

// Compile parses and compiles a pattern into its position automaton.
func Compile(pattern string) (*Program, error) {
	ast, err := parsePattern(pattern)
	if err != nil {
		return nil, err
	}
	b := &builder{}
	info := b.build(ast)
	prog := &Program{
		Source:   pattern,
		Classes:  b.classes,
		First:    setToSlice(info.first),
		Last:     setToSlice(info.last),
		Follow:   make([][]int, len(b.classes)),
		Nullable: info.nullable,
	}
	for q := range prog.Follow {
		prog.Follow[q] = setToSlice(b.follow[q])
	}
	prog.lastSet = make([]bool, len(prog.Classes))
	for _, p := range prog.Last {
		prog.lastSet[p] = true
	}
	return prog, nil
}

// MustCompile is Compile for known-good patterns; it panics on error.
func MustCompile(pattern string) *Program {
	p, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the number of consuming positions — the pattern's byte count,
// the paper's area unit.
func (p *Program) Len() int { return len(p.Classes) }

// IsLast reports whether position i may end a match.
func (p *Program) IsLast(i int) bool { return p.lastSet[i] }

// glushkovInfo carries nullable/first/last during the bottom-up build.
type glushkovInfo struct {
	nullable    bool
	first, last map[int]bool
}

type builder struct {
	classes []ByteClass
	follow  []map[int]bool
}

func (b *builder) newPos(cl ByteClass) int {
	b.classes = append(b.classes, cl)
	b.follow = append(b.follow, make(map[int]bool))
	return len(b.classes) - 1
}

func (b *builder) connect(from, to map[int]bool) {
	for q := range from {
		for p := range to {
			b.follow[q][p] = true
		}
	}
}

func (b *builder) build(n node) glushkovInfo {
	switch n := n.(type) {
	case litNode:
		p := b.newPos(n.class)
		s := map[int]bool{p: true}
		return glushkovInfo{nullable: false, first: s, last: s}
	case concatNode:
		info := b.build(n.subs[0])
		for _, sub := range n.subs[1:] {
			right := b.build(sub)
			b.connect(info.last, right.first)
			if info.nullable {
				info.first = union(info.first, right.first)
			}
			if right.nullable {
				info.last = union(info.last, right.last)
			} else {
				info.last = right.last
			}
			info.nullable = info.nullable && right.nullable
		}
		return info
	case altNode:
		info := b.build(n.subs[0])
		for _, sub := range n.subs[1:] {
			right := b.build(sub)
			info.first = union(info.first, right.first)
			info.last = union(info.last, right.last)
			info.nullable = info.nullable || right.nullable
		}
		return info
	case starNode:
		info := b.build(n.sub)
		b.connect(info.last, info.first)
		info.nullable = true
		return info
	case plusNode:
		info := b.build(n.sub)
		b.connect(info.last, info.first)
		return info
	case optNode:
		info := b.build(n.sub)
		info.nullable = true
		return info
	default:
		panic(fmt.Sprintf("regex: unknown node %T", n))
	}
}

func union(a, c map[int]bool) map[int]bool {
	out := make(map[int]bool, len(a)+len(c))
	for k := range a {
		out[k] = true
	}
	for k := range c {
		out[k] = true
	}
	return out
}

func setToSlice(s map[int]bool) []int {
	out := make([]int, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Reverse returns the automaton of the reversed pattern: First and Last
// swap and every Follow edge flips. It is used to recover a lexeme from its
// end position (the hardware reports only where a token ends).
func (p *Program) Reverse() *Program {
	r := &Program{
		Source:   p.Source + " (reversed)",
		Classes:  append([]ByteClass(nil), p.Classes...),
		First:    append([]int(nil), p.Last...),
		Last:     append([]int(nil), p.First...),
		Follow:   make([][]int, len(p.Classes)),
		Nullable: p.Nullable,
	}
	for q, tos := range p.Follow {
		for _, t := range tos {
			r.Follow[t] = append(r.Follow[t], q)
		}
	}
	for q := range r.Follow {
		sort.Ints(r.Follow[q])
	}
	r.lastSet = make([]bool, len(r.Classes))
	for _, q := range r.Last {
		r.lastSet[q] = true
	}
	return r
}

// CanExtend reports whether a match currently ending at position q could be
// extended by byte b — the condition the figure 7 lookahead logic inverts
// to report only the longest match.
func (p *Program) CanExtend(q int, b byte) bool {
	for _, t := range p.Follow[q] {
		if p.Classes[t].Has(b) {
			return true
		}
	}
	return false
}

// String renders a compact description of the automaton for debugging.
func (p *Program) String() string {
	s := fmt.Sprintf("program %q: %d positions, first=%v last=%v nullable=%v",
		p.Source, len(p.Classes), p.First, p.Last, p.Nullable)
	return s
}
