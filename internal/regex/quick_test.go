package regex

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

// randomPattern builds a random pattern from the supported subset whose
// text is also valid Go POSIX syntax, so the stdlib can act as oracle.
func randomPattern(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		return randomAtom(rng)
	}
	switch rng.Intn(6) {
	case 0:
		return randomAtom(rng)
	case 1:
		return randomPattern(rng, depth-1) + randomPattern(rng, depth-1)
	case 2:
		return "(" + randomPattern(rng, depth-1) + "|" + randomPattern(rng, depth-1) + ")"
	case 3:
		return "(" + randomPattern(rng, depth-1) + ")*"
	case 4:
		return "(" + randomPattern(rng, depth-1) + ")+"
	default:
		return "(" + randomPattern(rng, depth-1) + ")?"
	}
}

func randomAtom(rng *rand.Rand) string {
	switch rng.Intn(4) {
	case 0:
		return string(rune('a' + rng.Intn(5)))
	case 1:
		lo := byte('a') + byte(rng.Intn(3))
		return "[" + string(lo) + "-" + string(lo+byte(1+rng.Intn(2))) + "]"
	case 2:
		return string(rune('a'+rng.Intn(5))) + string(rune('a'+rng.Intn(5)))
	default:
		return "[" + strings.Repeat(string(rune('a'+rng.Intn(5))), 1) + string(rune('a'+rng.Intn(5))) + "]"
	}
}

// TestQuickRandomPatternsVsStdlib fuzzes the Glushkov compiler against the
// stdlib's leftmost-longest engine on hundreds of random patterns.
func TestQuickRandomPatternsVsStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	patterns := 400
	if testing.Short() {
		patterns = 50
	}
	for pi := 0; pi < patterns; pi++ {
		pat := randomPattern(rng, 3)
		p, err := Compile(pat)
		if err != nil {
			t.Fatalf("pattern %q: %v", pat, err)
		}
		oracle, err := regexp.CompilePOSIX(pat)
		if err != nil {
			// The subset is chosen to be POSIX-valid; any divergence is a
			// generator bug worth knowing about.
			t.Fatalf("oracle rejected %q: %v", pat, err)
		}
		for trial := 0; trial < 50; trial++ {
			n := rng.Intn(7)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte('a' + rng.Intn(6))
			}
			got := p.Match(buf)
			loc := oracle.FindIndex(buf)
			want := loc != nil && loc[0] == 0 && loc[1] == len(buf)
			if n == 0 {
				want = loc != nil
			}
			if got != want {
				t.Fatalf("pattern %q input %q: Match=%v oracle=%v", pat, buf, got, want)
			}
			gotLP := p.LongestPrefix(buf)
			wantLP := -1
			if loc != nil && loc[0] == 0 {
				wantLP = loc[1]
			}
			if gotLP != wantLP {
				t.Fatalf("pattern %q input %q: LongestPrefix=%d oracle=%d", pat, buf, gotLP, wantLP)
			}
		}
	}
}

// TestQuickReverseInvolution checks Reverse on random patterns: reversing
// the automaton recognizes exactly the reversed strings.
func TestQuickReverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for pi := 0; pi < 200; pi++ {
		pat := randomPattern(rng, 3)
		p, err := Compile(pat)
		if err != nil {
			t.Fatal(err)
		}
		r := p.Reverse()
		for trial := 0; trial < 30; trial++ {
			n := rng.Intn(6)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte('a' + rng.Intn(6))
			}
			rev := make([]byte, n)
			for i := range buf {
				rev[n-1-i] = buf[i]
			}
			if p.Match(buf) != r.Match(rev) {
				t.Fatalf("pattern %q: Match(%q)=%v but reversed Match(%q)=%v",
					pat, buf, p.Match(buf), rev, r.Match(rev))
			}
		}
	}
}

// TestQuickByteClassAlgebra checks the set algebra of ByteClass with
// testing/quick over random 256-bit sets.
func TestQuickByteClassAlgebra(t *testing.T) {
	type cls = ByteClass
	union := func(a, b cls, x byte) bool {
		return a.Union(b).Has(x) == (a.Has(x) || b.Has(x))
	}
	if err := quickCheck(union); err != nil {
		t.Error(err)
	}
	doubleNegate := func(a cls, x byte) bool {
		n := a
		n.Negate()
		n.Negate()
		return n == a
	}
	if err := quickCheck(doubleNegate); err != nil {
		t.Error(err)
	}
	countComplement := func(a cls, _ byte) bool {
		n := a
		n.Negate()
		return a.Count()+n.Count() == 256
	}
	if err := quickCheck(countComplement); err != nil {
		t.Error(err)
	}
	intersectsWitness := func(a, b cls, _ byte) bool {
		want := false
		for x := 0; x < 256; x++ {
			if a.Has(byte(x)) && b.Has(byte(x)) {
				want = true
				break
			}
		}
		return a.Intersects(b) == want
	}
	if err := quickCheck(intersectsWitness); err != nil {
		t.Error(err)
	}
	bytesSorted := func(a cls, _ byte) bool {
		bs := a.Bytes()
		if len(bs) != a.Count() {
			return false
		}
		for i := 1; i < len(bs); i++ {
			if bs[i-1] >= bs[i] {
				return false
			}
		}
		for _, x := range bs {
			if !a.Has(x) {
				return false
			}
		}
		return true
	}
	if err := quickCheck(bytesSorted); err != nil {
		t.Error(err)
	}
}

// quickCheck adapts testing/quick to the function shapes above.
func quickCheck(f interface{}) error {
	return quick.Check(f, &quick.Config{MaxCount: 500})
}

// TestQuickIntersects cross-checks the product-automaton intersection
// against brute-force enumeration of short strings.
func TestQuickIntersects(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	alphabet := []byte("abcdef")
	var all [][]byte
	var gen func(prefix []byte, depth int)
	gen = func(prefix []byte, depth int) {
		all = append(all, append([]byte(nil), prefix...))
		if depth == 0 {
			return
		}
		for _, b := range alphabet {
			gen(append(prefix, b), depth-1)
		}
	}
	gen(nil, 4) // all strings over a-f up to length 4

	for pi := 0; pi < 120; pi++ {
		p, err := Compile(randomPattern(rng, 2))
		if err != nil {
			t.Fatal(err)
		}
		q, err := Compile(randomPattern(rng, 2))
		if err != nil {
			t.Fatal(err)
		}
		got := Intersects(p, q)
		brute := false
		for _, s := range all {
			if p.Match(s) && q.Match(s) {
				brute = true
				break
			}
		}
		// Brute force only sees strings up to length 4: if it found a
		// witness, Intersects must agree; if Intersects says no, brute
		// must not have found one.
		if brute && !got {
			t.Fatalf("%q ∩ %q: witness exists but Intersects=false", p.Source, q.Source)
		}
		if !got && brute {
			t.Fatalf("unreachable")
		}
		// The converse (got && !brute) is legal: the witness may be
		// longer than 4 bytes.
	}
}
