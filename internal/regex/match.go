package regex

// This file implements the reference NFA matcher used as the correctness
// oracle for the hardware tokenizers and the bit-parallel stream engine.

// Match reports whether the program matches the entire input.
func (p *Program) Match(input []byte) bool {
	if len(input) == 0 {
		return p.Nullable
	}
	cur := make([]bool, len(p.Classes))
	next := make([]bool, len(p.Classes))
	for _, q := range p.First {
		if p.Classes[q].Has(input[0]) {
			cur[q] = true
		}
	}
	for _, b := range input[1:] {
		for i := range next {
			next[i] = false
		}
		for q, on := range cur {
			if !on {
				continue
			}
			for _, t := range p.Follow[q] {
				if p.Classes[t].Has(b) {
					next[t] = true
				}
			}
		}
		cur, next = next, cur
	}
	for q, on := range cur {
		if on && p.lastSet[q] {
			return true
		}
	}
	return false
}

// LongestPrefix returns the length of the longest prefix of input matched
// by the program, or -1 if no prefix matches. A nullable program matches
// the empty prefix, so it never returns -1.
func (p *Program) LongestPrefix(input []byte) int {
	best := -1
	if p.Nullable {
		best = 0
	}
	if len(input) == 0 {
		return best
	}
	cur := make([]bool, len(p.Classes))
	next := make([]bool, len(p.Classes))
	any := false
	for _, q := range p.First {
		if p.Classes[q].Has(input[0]) {
			cur[q] = true
			any = true
		}
	}
	if !any {
		return best
	}
	for i := 0; ; i++ {
		for q, on := range cur {
			if on && p.lastSet[q] {
				best = i + 1
				break
			}
		}
		if i+1 >= len(input) {
			return best
		}
		b := input[i+1]
		for j := range next {
			next[j] = false
		}
		any = false
		for q, on := range cur {
			if !on {
				continue
			}
			for _, t := range p.Follow[q] {
				if p.Classes[t].Has(b) {
					next[t] = true
					any = true
				}
			}
		}
		if !any {
			return best
		}
		cur, next = next, cur
	}
}

// LongestSuffix returns the length of the longest suffix of input matched
// by the program, or -1. It runs the reversed automaton over the input
// backwards and is the lexeme-recovery primitive: the hardware reports a
// token's end position, and the longest matching suffix ending there is the
// lexeme.
func (p *Program) LongestSuffix(input []byte) int {
	rev := p.Reverse()
	best := -1
	if rev.Nullable {
		best = 0
	}
	n := len(input)
	if n == 0 {
		return best
	}
	cur := make([]bool, len(rev.Classes))
	next := make([]bool, len(rev.Classes))
	any := false
	for _, q := range rev.First {
		if rev.Classes[q].Has(input[n-1]) {
			cur[q] = true
			any = true
		}
	}
	if !any {
		return best
	}
	for i := 0; ; i++ {
		for q, on := range cur {
			if on && rev.lastSet[q] {
				best = i + 1
				break
			}
		}
		if i+1 >= n {
			return best
		}
		b := input[n-2-i]
		for j := range next {
			next[j] = false
		}
		any = false
		for q, on := range cur {
			if !on {
				continue
			}
			for _, t := range rev.Follow[q] {
				if rev.Classes[t].Has(b) {
					next[t] = true
					any = true
				}
			}
		}
		if !any {
			return best
		}
		cur, next = next, cur
	}
}
