package hwgen

import (
	"fmt"

	"cfgtag/internal/netlist"
	"cfgtag/internal/regex"
)

// decBank is one lane's character-decode column: the nibble pre-decoders,
// per-character ANDs (figure 4) and class OR trees (figure 5), with
// fanout-capped replication pools. The single-byte design has one bank;
// the 2-byte datapath instantiates one per lane.
type decBank struct {
	g      *gen
	data   [8]netlist.Wire
	prefix string

	chars        map[byte]*srcPool
	loNib, hiNib [16]*srcPool
	classes      map[regex.ByteClass]*srcPool
}

func newDecBank(g *gen, data [8]netlist.Wire, prefix string) *decBank {
	return &decBank{
		g:       g,
		data:    data,
		prefix:  prefix,
		chars:   make(map[byte]*srcPool),
		classes: make(map[regex.ByteClass]*srcPool),
	}
}

// charUse returns a decoded wire for one byte value, counting one load:
// the 8-input AND with inversions of figure 4, built from nibble
// pre-decoders (two 4-input ANDs plus a 2-input AND), the pre-decoded CAM
// structure the paper cites. Replicas open when the fanout cap is hit.
func (b *decBank) charUse(by byte) netlist.Wire {
	pool, ok := b.chars[by]
	if !ok {
		pool = newSrcPool(b.g.decoderCap, func() netlist.Wire {
			lo, hi := by&0xf, by>>4
			return b.g.labeled(b.g.n.And(b.nibUse(hi, 4), b.nibUse(lo, 0)),
				fmt.Sprintf("%s/char/%02x", b.prefix, by))
		})
		b.chars[by] = pool
	}
	return pool.take()
}

// nibUse returns a nibble pre-decode wire, counting one load.
func (b *decBank) nibUse(v byte, shift int) netlist.Wire {
	bank := &b.loNib
	if shift == 4 {
		bank = &b.hiNib
	}
	if bank[v] == nil {
		bank[v] = newSrcPool(b.g.decoderCap, func() netlist.Wire { return b.nibble(v, shift) })
	}
	return bank[v].take()
}

// nibble builds the 4-input AND matching one nibble value at a bit offset.
func (b *decBank) nibble(v byte, shift int) netlist.Wire {
	ins := make([]netlist.Wire, 4)
	for i := 0; i < 4; i++ {
		w := b.data[shift+i]
		if v&(1<<i) == 0 {
			w = b.g.n.Not(w)
		}
		ins[i] = w
	}
	return b.g.labeled(b.g.n.And(ins...), fmt.Sprintf("%s/nib%d/%x", b.prefix, shift/4, v))
}

// classUse returns a decoded wire for a byte class, counting one load: a
// char wire for singletons, otherwise an OR tree over the member
// characters (figure 5), or the inverted complement when that is smaller.
func (b *decBank) classUse(c regex.ByteClass) netlist.Wire {
	switch c.Count() {
	case 0:
		return b.g.n.Const(false)
	case 256:
		return b.g.n.Const(true)
	case 1:
		return b.charUse(c.Bytes()[0])
	}
	pool, ok := b.classes[c]
	if !ok {
		pool = newSrcPool(b.g.decoderCap, func() netlist.Wire {
			if c.Count() > 128 {
				inv := c
				inv.Negate()
				return b.g.labeled(b.g.n.Not(b.orChars(inv)), fmt.Sprintf("%s/class/%s", b.prefix, c))
			}
			return b.g.labeled(b.orChars(c), fmt.Sprintf("%s/class/%s", b.prefix, c))
		})
		b.classes[c] = pool
	}
	return pool.take()
}

func (b *decBank) orChars(c regex.ByteClass) netlist.Wire {
	members := c.Bytes()
	ws := make([]netlist.Wire, len(members))
	for i, by := range members {
		ws[i] = b.charUse(by)
	}
	return b.g.orTree(ws, b.prefix+"/or")
}
