package hwgen

import (
	"reflect"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

func wide2Design(t *testing.T, g *grammar.Grammar, copts core.Options) *DesignWide2 {
	t.Helper()
	s, err := core.Compile(g, copts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := GenerateWide2(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func wide2Runner(t *testing.T, d *DesignWide2) *RunnerWide2 {
	t.Helper()
	r, err := NewRunnerWide2(d)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWide2Basic(t *testing.T) {
	d := wide2Design(t, grammar.IfThenElse(), core.Options{})
	r := wide2Runner(t, d)
	tg := stream.NewTagger(d.Spec)
	for _, in := range []string{
		"if true then go else stop", // odd length
		"if true then go else stop ",
		"go",
		"stop",
		" go",
		"if false then if true then go else stop else go",
	} {
		hw := r.Run([]byte(in))
		sw := tg.Tag([]byte(in))
		if !reflect.DeepEqual(hw, sw) {
			t.Errorf("input %q:\nwide2 %v\nsw    %v", in, hw, sw)
		}
	}
}

// TestWide2Equivalence is the full oracle sweep: the 2-byte datapath must
// match the software engine on random conforming sentences of every
// built-in grammar — both parities of input length, adjacent tokens,
// delimiter runs, lane-straddling lexemes.
func TestWide2Equivalence(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(), grammar.IfThenElse(), grammar.XMLRPC(),
	} {
		d := wide2Design(t, g, core.Options{})
		r := wide2Runner(t, d)
		tg := stream.NewTagger(d.Spec)
		gen := workload.NewGenerator(d.Spec, 77, workload.SentenceOptions{})
		trials := 40
		if g.Name == "xml-rpc" {
			trials = 12
		}
		for trial := 0; trial < trials; trial++ {
			text, _ := gen.Sentence()
			hw := r.Run(text)
			sw := tg.Tag(text)
			if !reflect.DeepEqual(hw, sw) {
				t.Fatalf("%s trial %d (len %d):\ninput %q\nwide2 %v\nsw    %v",
					g.Name, trial, len(text), text, hw, sw)
			}
		}
	}
}

func TestWide2EquivalenceOnNoise(t *testing.T) {
	d := wide2Design(t, grammar.IfThenElse(), core.Options{FreeRunningStart: true})
	r := wide2Runner(t, d)
	tg := stream.NewTagger(d.Spec)
	for _, in := range []string{
		"", " ", "x", "go", "gogo", "go go", "iftrue then", "stop stop stop",
		"if  true\tthen\n go", "xxif truexx then go", "if tr ue then go",
	} {
		hw := r.Run([]byte(in))
		sw := tg.Tag([]byte(in))
		if !reflect.DeepEqual(hw, sw) {
			t.Errorf("input %q: wide2 %v != sw %v", in, hw, sw)
		}
	}
}

func TestWide2FuzzGrammars(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		g := workload.RandomGrammar(seed)
		s, err := core.Compile(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		d, err := GenerateWide2(s, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r, err := NewRunnerWide2(d)
		if err != nil {
			t.Fatal(err)
		}
		tg := stream.NewTagger(s)
		gen := workload.NewGenerator(s, seed+900, workload.SentenceOptions{MaxDepth: 6})
		for trial := 0; trial < 5; trial++ {
			text, _ := gen.Sentence()
			hw := r.Run(text)
			sw := tg.Tag(text)
			if !reflect.DeepEqual(hw, sw) {
				t.Fatalf("seed %d trial %d:\ninput %q\nwide2 %v\nsw %v", seed, trial, text, hw, sw)
			}
		}
	}
}

func TestSelfTest(t *testing.T) {
	s, err := core.Compile(grammar.IfThenElse(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := SelfTest(s, 1, 10)
	if err != nil || n != 10 {
		t.Errorf("SelfTest = %d, %v", n, err)
	}
	// With recovery enabled only the single-byte datapath is checked, but
	// the self-test still runs.
	sr, err := core.Compile(grammar.IfThenElse(), core.Options{Recovery: core.RecoveryRestart})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := SelfTest(sr, 1, 5); err != nil || n != 5 {
		t.Errorf("SelfTest with recovery = %d, %v", n, err)
	}
}

func TestWide2RejectsRecovery(t *testing.T) {
	s, err := core.Compile(grammar.IfThenElse(), core.Options{Recovery: core.RecoveryRestart})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateWide2(s, Options{}); err == nil {
		t.Error("recovery should be rejected on the 2-byte datapath")
	}
}

func TestWide2AreaRoughlyDoubles(t *testing.T) {
	s, err := core.Compile(grammar.XMLRPC(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Generate(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	double, err := GenerateWide2(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := single.Netlist.ComputeStats()
	s2 := double.Netlist.ComputeStats()
	comb1 := s1.And + s1.Or + s1.Not
	comb2 := s2.And + s2.Or + s2.Not
	if comb2 < comb1*3/2 || comb2 > comb1*4 {
		t.Errorf("wide2 combinational gates = %d vs single %d; expected ≈2-3×", comb2, comb1)
	}
}
