package hwgen

import (
	"reflect"
	"strings"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/netlist"
	"cfgtag/internal/sim"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

func mustDesign(t *testing.T, g *grammar.Grammar, copts core.Options, hopts Options) *Design {
	t.Helper()
	s, err := core.Compile(g, copts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Generate(s, hopts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func runner(t *testing.T, d *Design) *Runner {
	t.Helper()
	r, err := NewRunner(d)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGenerateValidates(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(), grammar.IfThenElse(), grammar.XMLRPC(),
	} {
		d := mustDesign(t, g, core.Options{}, Options{})
		if err := d.Netlist.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		stats := d.Netlist.ComputeStats()
		// One register per pattern position plus latches and encoder regs.
		if stats.Reg < d.Spec.PatternBytes() {
			t.Errorf("%s: %d regs < %d pattern positions", g.Name, stats.Reg, d.Spec.PatternBytes())
		}
	}
}

func TestHardwareMatchesStreamOnSentence(t *testing.T) {
	d := mustDesign(t, grammar.IfThenElse(), core.Options{}, Options{})
	r := runner(t, d)
	tg := stream.NewTagger(d.Spec)
	input := []byte("if true then if false then go else stop else stop")
	hw := r.Run(input)
	sw := tg.Tag(input)
	if !reflect.DeepEqual(hw, sw) {
		t.Errorf("hardware %v\nsoftware %v", hw, sw)
	}
	if len(hw) == 0 {
		t.Fatal("no matches at all")
	}
}

// TestHardwareSoftwareEquivalence is the central property test: on random
// conforming sentences of every built-in grammar, the gate-level netlist
// and the bit-parallel engine must report identical (instance, offset)
// streams — and both must equal the generator's expectation.
func TestHardwareSoftwareEquivalence(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(), grammar.IfThenElse(), grammar.XMLRPC(),
	} {
		d := mustDesign(t, g, core.Options{}, Options{})
		r := runner(t, d)
		tg := stream.NewTagger(d.Spec)
		gen := workload.NewGenerator(d.Spec, 99, workload.SentenceOptions{})
		trials := 40
		if g.Name == "xml-rpc" {
			trials = 15 // larger netlist, slower cycles
		}
		for trial := 0; trial < trials; trial++ {
			text, want := gen.Sentence()
			hw := r.Run(text)
			sw := tg.Tag(text)
			if !reflect.DeepEqual(hw, sw) {
				t.Fatalf("%s trial %d: hw != sw\ninput %q\nhw %v\nsw %v", g.Name, trial, text, hw, sw)
			}
			if len(hw) != len(want) {
				t.Fatalf("%s trial %d: %d matches, want %d\ninput %q", g.Name, trial, len(hw), len(want), text)
			}
			for i := range want {
				if hw[i].InstanceID != want[i].InstanceID || hw[i].End != want[i].End {
					t.Fatalf("%s trial %d: match %d = %+v, want %+v", g.Name, trial, i, hw[i], want[i])
				}
			}
		}
	}
}

// TestHardwareSoftwareEquivalenceOnNoise feeds non-conforming byte soup:
// the two implementations must still agree bit for bit (the engine accepts
// a superset; what matters is that both accept the same superset).
func TestHardwareSoftwareEquivalenceOnNoise(t *testing.T) {
	d := mustDesign(t, grammar.IfThenElse(), core.Options{FreeRunningStart: true}, Options{})
	r := runner(t, d)
	tg := stream.NewTagger(d.Spec)
	inputs := []string{
		"",
		" ",
		"if",
		"iftrue then",
		"true go stop else if",
		"if  true\tthen\n go",
		"xxif truexx then go",
		"((if true))",
		"if tr\nue then go",
		"stop stop stop",
	}
	for _, in := range inputs {
		hw := r.Run([]byte(in))
		sw := tg.Tag([]byte(in))
		if !reflect.DeepEqual(hw, sw) {
			t.Errorf("input %q: hw %v != sw %v", in, hw, sw)
		}
	}
}

// TestRecoveryEquivalence checks the section 5.2 error-recovery logic in
// gates against the stream engine, on garbage-bearing inputs, for both
// recovery policies.
func TestRecoveryEquivalence(t *testing.T) {
	inputs := [][]byte{
		[]byte("xx if true then go"),
		[]byte("if true bogus stop go stop"),
		[]byte("@@@"),
		[]byte("go @@ stop"),
		[]byte(""),
	}
	for _, mode := range []core.RecoveryMode{core.RecoveryRestart, core.RecoveryResync} {
		d := mustDesign(t, grammar.IfThenElse(), core.Options{Recovery: mode}, Options{})
		r := runner(t, d)
		tg := stream.NewTagger(d.Spec)
		for _, in := range inputs {
			hw := r.Run(in)
			sw := tg.Tag(in)
			if !reflect.DeepEqual(hw, sw) {
				t.Errorf("mode %v input %q: hw %v != sw %v", mode, in, hw, sw)
			}
		}
		// The error output must exist and assert during the garbage run.
		if _, ok := d.Netlist.OutputWire("error"); !ok {
			t.Errorf("mode %v: no error output", mode)
		}
	}
	// XML-RPC with a corrupted tag, resync mode.
	d := mustDesign(t, grammar.XMLRPC(), core.Options{Recovery: core.RecoveryResync}, Options{})
	r := runner(t, d)
	tg := stream.NewTagger(d.Spec)
	msg := []byte("<methodCall> <methodName>buy</methodName> <params> <par#m> <i4>4</i4> </param> </params> </methodCall>")
	if hw, sw := r.Run(msg), tg.Tag(msg); !reflect.DeepEqual(hw, sw) {
		t.Errorf("xml resync: hw %v != sw %v", hw, sw)
	}
}

func TestRecoveryErrorOutputAsserts(t *testing.T) {
	d := mustDesign(t, grammar.IfThenElse(), core.Options{Recovery: core.RecoveryRestart}, Options{})
	sm, err := sim.New(d.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	errWire, err2 := sm.OutputWire("error")
	if err2 != nil {
		t.Fatal(err2)
	}
	input := []byte("@@ go")
	asserted := 0
	for c := 0; c <= len(input); c++ {
		if c < len(input) {
			b := input[c]
			for i := 0; i < 8; i++ {
				sm.SetInputWire(d.DataInputs[i], b&(1<<i) != 0)
			}
			sm.SetInputWire(d.EOF, false)
		} else {
			for i := 0; i < 8; i++ {
				sm.SetInputWire(d.DataInputs[i], false)
			}
			sm.SetInputWire(d.EOF, true)
		}
		sm.Step()
		if sm.Value(errWire) {
			asserted++
		}
	}
	// Dead after '@' at cycle 1 and after the second '@' at cycle 2.
	if asserted != 2 {
		t.Errorf("error asserted %d cycles, want 2", asserted)
	}
}

// TestBinaryProtocolEquivalence runs a TLV-flavored binary grammar (hex
// escapes, NUL delimiters, negated classes) through both engines.
func TestBinaryProtocolEquivalence(t *testing.T) {
	g, err := grammar.Parse("tlv", `
LEN   [\x01-\x08]
DATA  [^\x00]+
%delim [\x00]
%%
msgs  : msg msgs | msg ;
msg   : hdr LEN DATA ;
hdr   : "\x7fTLV" ;
`)
	if err != nil {
		t.Fatal(err)
	}
	d := mustDesign(t, g, core.Options{FreeRunningStart: true}, Options{})
	r := runner(t, d)
	tg := stream.NewTagger(d.Spec)
	inputs := [][]byte{
		{0x7f, 'T', 'L', 'V', 0x03, 'a', 'b', 'c'},
		{0x7f, 'T', 'L', 'V', 0x01, 0xfe, 0x00, 0x7f, 'T', 'L', 'V', 0x02, 'x', 'y'},
		{0x00, 0x00, 0x7f, 'T', 'L', 'V', 0x08, 0xde, 0xad, 0xbe, 0xef},
	}
	for _, in := range inputs {
		hw := r.Run(in)
		sw := tg.Tag(in)
		if !reflect.DeepEqual(hw, sw) {
			t.Errorf("input % x: hw %v != sw %v", in, hw, sw)
		}
		if len(sw) == 0 {
			t.Errorf("input % x: nothing tagged", in)
		}
	}
}

func TestEncoderOutputs(t *testing.T) {
	d := mustDesign(t, grammar.IfThenElse(), core.Options{}, Options{})
	r := runner(t, d)
	tg := stream.NewTagger(d.Spec)
	input := []byte("if true then go else stop")
	events := r.RunEncoder(input)
	sw := stream.GroupByEnd(tg.Tag(input))
	if len(events) != len(sw) {
		t.Fatalf("%d encoder events, want %d\nevents: %+v", len(events), len(sw), events)
	}
	for i, group := range sw {
		want := stream.EncodeIndex(d.Spec, group)
		if events[i].Index != want || events[i].End != group[0].End {
			t.Errorf("event %d = %+v, want index %d end %d", i, events[i], want, group[0].End)
		}
	}
	// msg_end asserts exactly when a CanEnd instance detects: for
	// "if true then go else stop" that is "go" (a valid sentence could end
	// there) and the final "stop".
	for i, group := range sw {
		wantEnd := false
		for _, m := range group {
			wantEnd = wantEnd || d.Spec.Instances[m.InstanceID].CanEnd
		}
		if events[i].MsgEnd != wantEnd {
			t.Errorf("event %d msg_end = %v, want %v", i, events[i].MsgEnd, wantEnd)
		}
	}
	if !events[len(events)-1].MsgEnd {
		t.Error("last event should assert msg_end")
	}
}

func TestEncoderConflictOR(t *testing.T) {
	g, err := grammar.Parse("amb", `
NUM  [0-9]+
WORD [a-z0-9]+
%%
S : NUM | WORD ;
`)
	if err != nil {
		t.Fatal(err)
	}
	d := mustDesign(t, g, core.Options{}, Options{})
	r := runner(t, d)
	events := r.RunEncoder([]byte("42"))
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	// Simultaneous detections OR into the highest-priority index.
	top := d.Spec.InstanceByIndex(events[0].Index)
	if top == nil {
		t.Fatalf("index %d resolves to nothing", events[0].Index)
	}
	set := d.Spec.ConflictSets[0]
	if want := d.Spec.Instances[set[len(set)-1]]; top != want {
		t.Errorf("winner = %v, want highest-priority %v", top, want)
	}
}

func TestNaiveEncoderSameFunction(t *testing.T) {
	input := []byte("if true then go")
	d1 := mustDesign(t, grammar.IfThenElse(), core.Options{}, Options{})
	d2 := mustDesign(t, grammar.IfThenElse(), core.Options{}, Options{NaiveEncoder: true})
	e1 := runner(t, d1).RunEncoder(input)
	e2 := runner(t, d2).RunEncoder(input)
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].Index != e2[i].Index || e1[i].End != e2[i].End || e1[i].MsgEnd != e2[i].MsgEnd {
			t.Errorf("event %d: tree %+v vs naive %+v", i, e1[i], e2[i])
		}
	}
	if d2.EncoderLatency != 1 {
		t.Errorf("naive encoder latency = %d, want 1", d2.EncoderLatency)
	}
}

func TestNoDecoderSharingSameFunction(t *testing.T) {
	input := []byte("if true then go else stop")
	d1 := mustDesign(t, grammar.IfThenElse(), core.Options{}, Options{})
	d2 := mustDesign(t, grammar.IfThenElse(), core.Options{}, Options{NoDecoderSharing: true})
	hw1 := runner(t, d1).Run(input)
	hw2 := runner(t, d2).Run(input)
	if !reflect.DeepEqual(hw1, hw2) {
		t.Error("decoder sharing changed behavior")
	}
	// And it must cost more gates.
	s1, s2 := d1.Netlist.ComputeStats(), d2.Netlist.ComputeStats()
	if s2.And <= s1.And {
		t.Errorf("private decoders should use more ANDs: %d vs %d", s2.And, s1.And)
	}
}

func TestTreeArity(t *testing.T) {
	d2 := mustDesign(t, grammar.XMLRPC(), core.Options{}, Options{TreeArity: 2})
	d4 := mustDesign(t, grammar.XMLRPC(), core.Options{}, Options{TreeArity: 4})
	input := []byte("<methodCall><methodName>hi</methodName><params></params></methodCall>")
	hw2 := runner(t, d2).Run(input)
	hw4 := runner(t, d4).Run(input)
	if !reflect.DeepEqual(hw2, hw4) {
		t.Error("tree arity changed behavior")
	}
	if _, err := Generate(d2.Spec, Options{TreeArity: 1}); err == nil {
		t.Error("arity 1 should be rejected")
	}
}

func TestMaxFanoutReplicationSameFunction(t *testing.T) {
	input := []byte("<methodCall><methodName>hi</methodName><params><param><i4>7</i4></param></params></methodCall>")
	base := mustDesign(t, grammar.XMLRPC(), core.Options{}, Options{})
	capped := mustDesign(t, grammar.XMLRPC(), core.Options{}, Options{MaxFanout: 8})
	hw1 := runner(t, base).Run(input)
	hw2 := runner(t, capped).Run(input)
	if !reflect.DeepEqual(hw1, hw2) {
		t.Error("decoder replication changed behavior")
	}
	// More gates, strictly lower max fanout.
	s1, s2 := base.Netlist.ComputeStats(), capped.Netlist.ComputeStats()
	if s2.And <= s1.And {
		t.Errorf("replication should add decoder gates: %d vs %d", s2.And, s1.And)
	}
	if s2.MaxFanout >= s1.MaxFanout {
		t.Errorf("replication should reduce fanout: %d vs %d", s2.MaxFanout, s1.MaxFanout)
	}
}

func TestSrcPool(t *testing.T) {
	builds := 0
	n := netlist.New()
	p := newSrcPool(2, func() netlist.Wire { builds++; return n.Input(itoa(builds)) })
	w1 := p.take()
	w2 := p.take()
	if w1 != w2 || builds != 1 {
		t.Error("first two loads should share a replica")
	}
	w3 := p.take()
	if w3 == w1 || builds != 2 {
		t.Error("third load should open a second replica")
	}
	if p.replicas() != 2 {
		t.Errorf("replicas = %d", p.replicas())
	}
	// Unbounded pool never replicates.
	builds = 0
	u := newSrcPool(0, func() netlist.Wire { builds++; return n.Input("u" + itoa(builds)) })
	for i := 0; i < 100; i++ {
		u.take()
	}
	if builds != 1 || u.replicas() != 1 {
		t.Errorf("unbounded pool built %d replicas", builds)
	}
}

func TestAreaLabels(t *testing.T) {
	d := mustDesign(t, grammar.XMLRPC(), core.Options{}, Options{})
	for _, prefix := range []string{"dec/", "tok/", "wire/", "enc/"} {
		if len(d.Netlist.Labeled(prefix)) == 0 {
			t.Errorf("no gates labeled %q", prefix)
		}
	}
}

func TestDecodedCharFanoutIsDominant(t *testing.T) {
	// The paper's timing analysis: the critical net is a decoded character
	// wire fanning out to the token logic. Verify our netlist reproduces
	// that shape on a scaled grammar.
	g, err := workload.Scale(grammar.XMLRPC(), 4)
	if err != nil {
		t.Fatal(err)
	}
	d := mustDesign(t, g, core.Options{}, Options{})
	stats := d.Netlist.ComputeStats()
	if !strings.HasPrefix(stats.MaxFanoutLabel, "dec/") {
		t.Errorf("max fanout wire is %q (fanout %d), want a decoder wire",
			stats.MaxFanoutLabel, stats.MaxFanout)
	}
}

func TestScaledGrammarGenerates(t *testing.T) {
	g, err := workload.Scale(grammar.XMLRPC(), 2)
	if err != nil {
		t.Fatal(err)
	}
	d := mustDesign(t, g, core.Options{}, Options{})
	r := runner(t, d)
	tg := stream.NewTagger(d.Spec)
	gen := workload.NewGenerator(d.Spec, 5, workload.SentenceOptions{})
	text, _ := gen.Sentence()
	if !reflect.DeepEqual(r.Run(text), tg.Tag(text)) {
		t.Errorf("scaled design diverges from stream engine on %q", text)
	}
}

func TestDetectWireNaming(t *testing.T) {
	d := mustDesign(t, grammar.IfThenElse(), core.Options{}, Options{})
	for k := range d.Spec.Instances {
		if _, ok := d.Netlist.OutputWire("det/" + itoa(k)); !ok {
			t.Errorf("missing output det/%d", k)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestRegisterCountsMatchArchitecture(t *testing.T) {
	// Registers = pattern positions + 1 held latch per instance +
	// encoder pipeline registers.
	d := mustDesign(t, grammar.IfThenElse(), core.Options{}, Options{})
	stats := d.Netlist.ComputeStats()
	tokRegs := 0
	for _, w := range d.Netlist.Labeled("tok/") {
		if d.Netlist.Gates[w].Op == netlist.OpReg {
			tokRegs++
		}
	}
	if tokRegs != d.Spec.PatternBytes() {
		t.Errorf("chain registers = %d, want exactly one per pattern byte (%d)",
			tokRegs, d.Spec.PatternBytes())
	}
	heldRegs := 0
	for _, w := range d.Netlist.Labeled("wire/held") {
		if d.Netlist.Gates[w].Op == netlist.OpReg {
			heldRegs++
		}
	}
	if heldRegs != len(d.Spec.Instances) {
		t.Errorf("held latches = %d, want one per instance (%d)", heldRegs, len(d.Spec.Instances))
	}
	if stats.Reg <= tokRegs+heldRegs {
		t.Error("encoder contributed no pipeline registers")
	}
}
