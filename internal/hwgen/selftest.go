package hwgen

import (
	"fmt"
	"reflect"

	"cfgtag/internal/core"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

// SelfTest generates both hardware datapaths for the spec and checks them
// against the software engine on randomly generated conforming sentences —
// the push-button confidence check a user runs before trusting emitted
// VHDL for a new grammar. It returns the number of sentences checked.
func SelfTest(spec *core.Spec, seed int64, sentences int) (int, error) {
	if sentences <= 0 {
		sentences = 20
	}
	single, err := Generate(spec, Options{})
	if err != nil {
		return 0, fmt.Errorf("hwgen: selftest generate: %w", err)
	}
	r1, err := NewRunner(single)
	if err != nil {
		return 0, err
	}
	var r2 *RunnerWide2
	if spec.Opts.Recovery == core.RecoveryNone {
		wide, err := GenerateWide2(spec, Options{})
		if err != nil {
			return 0, fmt.Errorf("hwgen: selftest wide2: %w", err)
		}
		if r2, err = NewRunnerWide2(wide); err != nil {
			return 0, err
		}
	}
	tg := stream.NewTagger(spec)
	gen := workload.NewGenerator(spec, seed, workload.SentenceOptions{})
	for i := 0; i < sentences; i++ {
		text, _ := gen.Sentence()
		sw := tg.Tag(text)
		if hw := r1.Run(text); !reflect.DeepEqual(hw, sw) {
			return i, fmt.Errorf("hwgen: selftest sentence %d: single-byte datapath diverges on %q", i, text)
		}
		if r2 != nil {
			if hw := r2.Run(text); !reflect.DeepEqual(hw, sw) {
				return i, fmt.Errorf("hwgen: selftest sentence %d: 2-byte datapath diverges on %q", i, text)
			}
		}
	}
	return sentences, nil
}
