// Package hwgen lowers a compiled tagger specification to a gate-level
// netlist — the role the paper's VHDL code generator plays. The generated
// design contains, exactly as in section 3:
//
//   - nibble-shared character decoders (figure 4) and class decoders
//     (figure 5), labeled "dec/",
//   - one pipelined detection chain per tokenizer instance with one
//     register per pattern position (figure 6 templates composed via the
//     Glushkov construction), the longest-match lookahead (figure 7), and
//     the inverted-delimiter pending latch (section 3.2), labeled "tok/",
//   - the syntactic control-flow wiring between chains (figure 11),
//     labeled "wire/",
//   - the pipelined OR-tree token index encoder (section 3.4, equations
//     1–4), labeled "enc/".
//
// Cycle contract (verified against the stream engine by equivalence
// tests): drive inputs d0..d7 with byte b(c) on cycle c and step; the
// per-instance "det/<k>" outputs assert on cycle c+1 for a token whose
// lexeme ends at byte c. After the last byte, drive "eof" high for one
// cycle to flush tokens ending at stream end. Encoder outputs ("valid",
// "index<i>", "msg_end") lag detects by Design.EncoderLatency cycles.
package hwgen

import (
	"fmt"

	"cfgtag/internal/core"
	"cfgtag/internal/netlist"
	"cfgtag/internal/regex"
)

// Options tune the lowering.
type Options struct {
	// TreeArity is the maximum gate fanin used when building OR/AND trees;
	// 0 means 4, matching a 4-input-LUT target.
	TreeArity int
	// NaiveEncoder replaces the pipelined OR-tree encoder with the long
	// combinational priority chain the paper warns about (section 3.4) —
	// the ablation showing why the tree is needed.
	NaiveEncoder bool
	// NoDecoderSharing gives every pattern position a private character
	// decoder instead of sharing decoded wires — the ablation behind the
	// paper's LUT/byte observation. Equivalent to MaxFanout = 1.
	NoDecoderSharing bool
	// MaxFanout, when > 0, replicates decoders so no decoded wire serves
	// more than this many loads — the section 4.3 routing-delay
	// improvement ("replicating decoders and balancing the fanout across
	// them"). 0 means fully shared decoders, the paper's baseline.
	MaxFanout int
}

// Design is the generated hardware plus its interface metadata.
type Design struct {
	Spec    *core.Spec
	Netlist *netlist.Netlist
	// EncoderLatency is the register depth between a det/<k> assertion and
	// the corresponding valid/index output cycle.
	EncoderLatency int

	// DataInputs are the eight byte-input wires d0..d7, LSB first.
	DataInputs [8]netlist.Wire
	// EOF is the end-of-stream flush input.
	EOF netlist.Wire
	// Detects holds each instance's detect output wire, by instance ID.
	Detects []netlist.Wire
}

// Generate lowers the spec into a netlist design.
func Generate(spec *core.Spec, opts Options) (*Design, error) {
	if opts.TreeArity == 0 {
		opts.TreeArity = 4
	}
	if opts.TreeArity < 2 {
		return nil, fmt.Errorf("hwgen: tree arity must be ≥ 2, got %d", opts.TreeArity)
	}
	decoderCap := opts.MaxFanout
	if opts.NoDecoderSharing {
		decoderCap = 1
	}
	g := &gen{
		spec:       spec,
		opts:       opts,
		decoderCap: decoderCap,
		n:          netlist.New(),
	}
	g.buildInputs()
	g.buildChains()
	g.buildWiring()
	g.buildEncoder()
	if err := g.n.Validate(); err != nil {
		return nil, fmt.Errorf("hwgen: generated netlist invalid: %w", err)
	}
	d := &Design{
		Spec:           spec,
		Netlist:        g.n,
		EncoderLatency: g.encLatency,
		DataInputs:     g.data,
		EOF:            g.eof,
		Detects:        g.detOuts,
	}
	return d, nil
}

type gen struct {
	spec *core.Spec
	opts Options
	n    *netlist.Netlist

	data [8]netlist.Wire
	eof  netlist.Wire

	decoderCap int      // max loads per decoded wire; 0 = unbounded
	dec        *decBank // the single-byte lane's decoders

	// posRegs[k][i] is the pipeline register of instance k's position i.
	posRegs [][]netlist.Wire
	// pendingWire[k] is the instance's inject signal (detect OR + held).
	pendingWire []netlist.Wire
	detects     []netlist.Wire // combinational, for wiring and encoder
	detOuts     []netlist.Wire // registered observable outputs
	encLatency  int
}

func (g *gen) buildInputs() {
	for i := 0; i < 8; i++ {
		g.data[i] = g.n.Input(fmt.Sprintf("d%d", i))
	}
	g.eof = g.n.Input("eof")
	g.dec = newDecBank(g, g.data, "dec")
}

// classUse counts one load of a class decoder on the single lane.
func (g *gen) classUse(c regex.ByteClass) netlist.Wire { return g.dec.classUse(c) }

// orTree builds a combinational OR tree with bounded arity.
func (g *gen) orTree(ws []netlist.Wire, label string) netlist.Wire {
	for len(ws) > 1 {
		var next []netlist.Wire
		for i := 0; i < len(ws); i += g.opts.TreeArity {
			j := i + g.opts.TreeArity
			if j > len(ws) {
				j = len(ws)
			}
			next = append(next, g.labeled(g.n.Or(ws[i:j]...), label))
		}
		ws = next
	}
	return ws[0]
}

// buildChains creates the per-instance pipeline registers. The D input of
// position p is (inject | OR(predecessor registers)) AND class(p); inject
// reaches only first positions. The inject signals (pendingWire) are
// patched in by buildWiring since detects do not exist yet — the registers
// are created with a placeholder D and rewired afterwards.
func (g *gen) buildChains() {
	g.posRegs = make([][]netlist.Wire, len(g.spec.Instances))
	for k, in := range g.spec.Instances {
		p := in.Program
		regs := make([]netlist.Wire, p.Len())
		for i := 0; i < p.Len(); i++ {
			regs[i] = g.n.Reg(g.n.Const(false), fmt.Sprintf("tok/%d/pos%d", k, i))
		}
		g.posRegs[k] = regs
	}
}

// buildWiring constructs the syntactic control flow: per-instance pending
// latches fed by the detect OR of the enabling instances, and the final D
// expressions of every chain register. Detect wires are built first (they
// depend only on chain registers and decoders), then the held latches (the
// error detector needs all of them), then the injection into the chains.
func (g *gen) buildWiring() {
	g.buildDetectWires()
	enablers := g.spec.Enablers()
	g.pendingWire = make([]netlist.Wire, len(g.spec.Instances))

	// Pass 1: held latches (placeholder D, patched in pass 2).
	held := make([]netlist.Wire, len(g.spec.Instances))
	for k, in := range g.spec.Instances {
		held[k] = g.n.Reg(g.n.Const(false), fmt.Sprintf("wire/held%d", k))
		if in.Start && !g.spec.Opts.FreeRunningStart {
			// Anchored start: the held latch powers on set.
			g.n.Gates[held[k]].Init = true
		}
	}

	// Dead-state detector and recovery (section 5.2): the engine is in
	// error when no chain position and no held latch is set; the recovery
	// wire re-arms the chosen pending set combinationally, so behavior
	// matches the stream engine cycle for cycle.
	recoverWire := g.buildRecovery(held)

	// Pass 2: pending wires, held D expressions and chain injection.
	for k, in := range g.spec.Instances {
		var sources []netlist.Wire
		for _, e := range enablers[k] {
			sources = append(sources, g.detects[e])
		}
		var detOr netlist.Wire = g.n.Const(false)
		if len(sources) > 0 {
			detOr = g.orTree(sources, fmt.Sprintf("wire/en%d", k))
		}
		pend := detOr
		if in.Start && g.spec.Opts.FreeRunningStart {
			pend = g.n.Or(pend, g.n.Const(true))
		}
		if w, armed := recoverWire[k]; armed {
			pend = g.n.Or(pend, w)
		}
		// Held register: D = pending AND delim — pending survives
		// delimiter runs and clears on the first non-delimiter byte
		// (the inverted-delimiter enable of section 3.2).
		pending := g.labeled(g.n.Or(pend, held[k]), fmt.Sprintf("wire/pend%d", k))
		g.n.Gates[held[k]].In[0] = g.labeled(g.n.And(pending, g.classUse(g.spec.Delim)), fmt.Sprintf("wire/hold%d", k))
		g.pendingWire[k] = pending

		// Patch chain register D inputs.
		p := in.Program
		firstSet := make(map[int]bool, len(p.First))
		for _, f := range p.First {
			firstSet[f] = true
		}
		preds := make([][]netlist.Wire, p.Len())
		for q, tos := range p.Follow {
			for _, t := range tos {
				preds[t] = append(preds[t], g.posRegs[k][q])
			}
		}
		for i := 0; i < p.Len(); i++ {
			var src []netlist.Wire
			if firstSet[i] {
				src = append(src, pending)
			}
			src = append(src, preds[i]...)
			var d netlist.Wire
			if len(src) == 0 {
				d = g.n.Const(false)
			} else {
				d = g.labeled(
					g.n.And(g.orTree(src, fmt.Sprintf("tok/%d/in%d", k, i)), g.classUse(p.Classes[i])),
					fmt.Sprintf("tok/%d/d%d", k, i))
			}
			g.n.Gates[g.posRegs[k][i]].In[0] = d
		}
	}
}

// buildDetectWires creates det_k = OR over accepting positions p of
// (reg_p AND NOT extend_p), where extend_p ORs the decoded classes of p's
// follow positions and is forced low at EOF — the figure 7 longest-match
// lookahead generalized to arbitrary patterns.
func (g *gen) buildDetectWires() {
	notEOF := g.n.Not(g.eof)
	g.detects = make([]netlist.Wire, len(g.spec.Instances))
	g.detOuts = make([]netlist.Wire, len(g.spec.Instances))
	for k, in := range g.spec.Instances {
		p := in.Program
		var ends []netlist.Wire
		for _, last := range p.Last {
			regW := g.posRegs[k][last]
			if g.spec.Opts.NoLongestMatch || len(p.Follow[last]) == 0 {
				ends = append(ends, regW)
				continue
			}
			var extends []netlist.Wire
			for _, t := range p.Follow[last] {
				extends = append(extends, g.classUse(p.Classes[t]))
			}
			ext := g.n.And(g.orTree(extends, fmt.Sprintf("tok/%d/ext", k)), notEOF)
			ends = append(ends, g.labeled(g.n.And(regW, g.n.Not(ext)), fmt.Sprintf("tok/%d/end%d", k, last)))
		}
		det := g.orTree(ends, fmt.Sprintf("tok/%d/det", k))
		g.detects[k] = det
		// The observable output is registered so every det/<k> port has
		// uniform one-cycle latency regardless of the tree shape (a
		// single-input tree would otherwise expose a chain register
		// directly). Internal wiring and the encoder keep using the
		// combinational wire.
		g.detOuts[k] = g.n.Reg(det, fmt.Sprintf("out/det%d", k))
		g.n.Output(fmt.Sprintf("det/%d", k), g.detOuts[k])
	}
}

// labeled stamps a gate with a group label (no-op for pass-through wires
// that already carry one).
func (g *gen) labeled(w netlist.Wire, label string) netlist.Wire {
	if g.n.Gates[w].Label == "" {
		g.n.Gates[w].Label = label
	}
	return w
}
