package hwgen

import (
	"cfgtag/internal/sim"
	"cfgtag/internal/stream"
)

// RunnerWide2 drives a 2-byte-datapath design through the simulator at two
// input bytes per clock, producing the same stream.Match sequence as the
// single-byte design and the software engine.
type RunnerWide2 struct {
	design *DesignWide2
	sm     *sim.Simulator
}

// NewRunnerWide2 instantiates the simulation.
func NewRunnerWide2(d *DesignWide2) (*RunnerWide2, error) {
	sm, err := sim.New(d.Netlist)
	if err != nil {
		return nil, err
	}
	return &RunnerWide2{design: d, sm: sm}, nil
}

// Run feeds the input two bytes per cycle (plus one flush cycle) and
// returns the detections in byte order.
func (r *RunnerWide2) Run(input []byte) []stream.Match {
	r.sm.Reset()
	d := r.design
	var out []stream.Match
	pairs := (len(input) + 1) / 2
	for c := 0; c <= pairs; c++ {
		var b0, b1 byte
		v1 := false
		if 2*c < len(input) {
			b0 = input[2*c]
		}
		if 2*c+1 < len(input) {
			b1 = input[2*c+1]
			v1 = true
		}
		for i := 0; i < 8; i++ {
			r.sm.SetInputWire(d.Lane0[i], b0&(1<<i) != 0)
			r.sm.SetInputWire(d.Lane1[i], b1&(1<<i) != 0)
		}
		r.sm.SetInputWire(d.V1, v1)
		r.sm.SetInputWire(d.EOF, 2*c >= len(input))
		r.sm.Step()
		// det1 resolves the previous pair's lane-1 endings (byte 2c−1);
		// det0 this pair's lane-0 endings (byte 2c). Emit in byte order,
		// bounded to the real stream.
		for k, w := range d.Det1 {
			if r.sm.Value(w) {
				if end := int64(2*c - 1); end >= 0 && end < int64(len(input)) {
					out = append(out, stream.Match{InstanceID: k, End: end})
				}
			}
		}
		for k, w := range d.Det0 {
			if r.sm.Value(w) {
				if end := int64(2 * c); end < int64(len(input)) {
					out = append(out, stream.Match{InstanceID: k, End: end})
				}
			}
		}
	}
	return out
}
