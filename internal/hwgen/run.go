package hwgen

import (
	"fmt"

	"cfgtag/internal/netlist"
	"cfgtag/internal/sim"
	"cfgtag/internal/stream"
)

// Runner drives a generated design through the cycle-accurate simulator,
// reproducing in gates what the stream engine computes with bitsets. It is
// the reference harness for the hardware/software equivalence tests and
// the gate-level throughput benchmark.
type Runner struct {
	design *Design
	sm     *sim.Simulator

	indexWires []netlist.Wire
	validWire  netlist.Wire
	endWire    netlist.Wire
}

// NewRunner validates and instantiates the simulation.
func NewRunner(d *Design) (*Runner, error) {
	sm, err := sim.New(d.Netlist)
	if err != nil {
		return nil, err
	}
	r := &Runner{design: d, sm: sm}
	for b := 0; b < d.Spec.IndexBits; b++ {
		w, err := sm.OutputWire(fmt.Sprintf("index%d", b))
		if err != nil {
			return nil, err
		}
		r.indexWires = append(r.indexWires, w)
	}
	if r.validWire, err = sm.OutputWire("valid"); err != nil {
		return nil, err
	}
	if r.endWire, err = sm.OutputWire("msg_end"); err != nil {
		return nil, err
	}
	return r, nil
}

// Run feeds the input at one byte per cycle (plus one EOF flush cycle) and
// returns the detect events in stream.Match form: the result is directly
// comparable with the stream engine's output for the same spec.
func (r *Runner) Run(input []byte) []stream.Match {
	r.sm.Reset()
	d := r.design
	var out []stream.Match
	cycles := len(input) + 1
	for c := 0; c < cycles; c++ {
		r.driveCycle(input, c)
		r.sm.Step()
		// Detects settled in cycle c report tokens ending at byte c-1.
		for k, w := range d.Detects {
			if r.sm.Value(w) {
				out = append(out, stream.Match{InstanceID: k, End: int64(c - 1)})
			}
		}
	}
	return out
}

// IndexEvent is one encoder output assertion.
type IndexEvent struct {
	// End is the byte offset the detection refers to, already corrected
	// for the encoder's register latency.
	End int64
	// Index is the emitted token index (the OR of simultaneous indices).
	Index int
	// MsgEnd reports the sentence-boundary output.
	MsgEnd bool
}

// RunEncoder feeds the input and collects the pipelined encoder outputs,
// flushing EncoderLatency extra cycles so trailing detections drain.
func (r *Runner) RunEncoder(input []byte) []IndexEvent {
	r.sm.Reset()
	d := r.design
	var out []IndexEvent
	cycles := len(input) + 1 + d.EncoderLatency
	for c := 0; c < cycles; c++ {
		r.driveCycle(input, c)
		r.sm.Step()
		if r.sm.Value(r.validWire) {
			// The encoder output registers read post-edge after Step(c)
			// carry the detect values of cycle c+1-L, i.e. tokens ending
			// at byte c-L.
			end := int64(c - d.EncoderLatency)
			if end < 0 || end >= int64(len(input)) {
				// Artifacts of the flush cycles (the zero bytes fed after
				// EOF are not part of the stream).
				continue
			}
			idx := 0
			for b, w := range r.indexWires {
				if r.sm.Value(w) {
					idx |= 1 << b
				}
			}
			out = append(out, IndexEvent{
				End:    end,
				Index:  idx,
				MsgEnd: r.sm.Value(r.endWire),
			})
		}
	}
	return out
}

// driveCycle applies byte c of the input, or the EOF flush for cycles past
// the end.
func (r *Runner) driveCycle(input []byte, c int) {
	d := r.design
	if c < len(input) {
		b := input[c]
		for i := 0; i < 8; i++ {
			r.sm.SetInputWire(d.DataInputs[i], b&(1<<i) != 0)
		}
		r.sm.SetInputWire(d.EOF, false)
	} else {
		for i := 0; i < 8; i++ {
			r.sm.SetInputWire(d.DataInputs[i], false)
		}
		r.sm.SetInputWire(d.EOF, true)
	}
}
