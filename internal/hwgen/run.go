package hwgen

import (
	"fmt"

	"cfgtag/internal/netlist"
	"cfgtag/internal/sim"
	"cfgtag/internal/stream"
)

// Runner drives a generated design through the cycle-accurate simulator,
// reproducing in gates what the stream engine computes with bitsets. It is
// the reference harness for the hardware/software equivalence tests and
// the gate-level throughput benchmark.
type Runner struct {
	design *Design
	sm     *sim.Simulator

	indexWires []netlist.Wire
	validWire  netlist.Wire
	endWire    netlist.Wire

	pos int64 // cycles driven since Begin (streaming mode)
}

// NewRunner validates and instantiates the simulation.
func NewRunner(d *Design) (*Runner, error) {
	sm, err := sim.New(d.Netlist)
	if err != nil {
		return nil, err
	}
	r := &Runner{design: d, sm: sm}
	for b := 0; b < d.Spec.IndexBits; b++ {
		w, err := sm.OutputWire(fmt.Sprintf("index%d", b))
		if err != nil {
			return nil, err
		}
		r.indexWires = append(r.indexWires, w)
	}
	if r.validWire, err = sm.OutputWire("valid"); err != nil {
		return nil, err
	}
	if r.endWire, err = sm.OutputWire("msg_end"); err != nil {
		return nil, err
	}
	return r, nil
}

// Run feeds the input at one byte per cycle (plus one EOF flush cycle) and
// returns the detect events in stream.Match form: the result is directly
// comparable with the stream engine's output for the same spec.
func (r *Runner) Run(input []byte) []stream.Match {
	var out []stream.Match
	emit := func(m stream.Match) { out = append(out, m) }
	r.Begin()
	r.Feed(input, emit)
	r.Finish(emit)
	return out
}

// Begin resets the simulation for a new stream; Feed and Finish continue
// it incrementally. Begin / Feed* / Finish is the streaming decomposition
// of Run: the detect events it emits are byte-for-byte identical.
func (r *Runner) Begin() {
	r.sm.Reset()
	r.pos = 0
}

// Feed clocks one cycle per byte of p, emitting each detect event as it
// settles. Detections carry absolute stream offsets, so Feed may be called
// any number of times with arbitrary chunking.
func (r *Runner) Feed(p []byte, emit func(stream.Match)) {
	for _, b := range p {
		r.cycle(b, false, emit)
	}
}

// Finish drives the EOF flush cycle, emitting the final byte's pending
// detections. The stream is complete afterwards; call Begin to reuse.
func (r *Runner) Finish(emit func(stream.Match)) {
	r.cycle(0, true, emit)
}

// cycle drives one clock: apply the input byte (or the EOF flush), settle,
// and report detects. Detects settled in cycle c report tokens ending at
// byte c-1.
func (r *Runner) cycle(b byte, eof bool, emit func(stream.Match)) {
	d := r.design
	for i := 0; i < 8; i++ {
		r.sm.SetInputWire(d.DataInputs[i], !eof && b&(1<<i) != 0)
	}
	r.sm.SetInputWire(d.EOF, eof)
	r.sm.Step()
	for k, w := range d.Detects {
		if r.sm.Value(w) {
			emit(stream.Match{InstanceID: k, End: r.pos - 1})
		}
	}
	r.pos++
}

// IndexEvent is one encoder output assertion.
type IndexEvent struct {
	// End is the byte offset the detection refers to, already corrected
	// for the encoder's register latency.
	End int64
	// Index is the emitted token index (the OR of simultaneous indices).
	Index int
	// MsgEnd reports the sentence-boundary output.
	MsgEnd bool
}

// RunEncoder feeds the input and collects the pipelined encoder outputs,
// flushing EncoderLatency extra cycles so trailing detections drain.
func (r *Runner) RunEncoder(input []byte) []IndexEvent {
	r.sm.Reset()
	d := r.design
	var out []IndexEvent
	cycles := len(input) + 1 + d.EncoderLatency
	for c := 0; c < cycles; c++ {
		r.driveCycle(input, c)
		r.sm.Step()
		if r.sm.Value(r.validWire) {
			// The encoder output registers read post-edge after Step(c)
			// carry the detect values of cycle c+1-L, i.e. tokens ending
			// at byte c-L.
			end := int64(c - d.EncoderLatency)
			if end < 0 || end >= int64(len(input)) {
				// Artifacts of the flush cycles (the zero bytes fed after
				// EOF are not part of the stream).
				continue
			}
			idx := 0
			for b, w := range r.indexWires {
				if r.sm.Value(w) {
					idx |= 1 << b
				}
			}
			out = append(out, IndexEvent{
				End:    end,
				Index:  idx,
				MsgEnd: r.sm.Value(r.endWire),
			})
		}
	}
	return out
}

// driveCycle applies byte c of the input, or the EOF flush for cycles past
// the end.
func (r *Runner) driveCycle(input []byte, c int) {
	d := r.design
	if c < len(input) {
		b := input[c]
		for i := 0; i < 8; i++ {
			r.sm.SetInputWire(d.DataInputs[i], b&(1<<i) != 0)
		}
		r.sm.SetInputWire(d.EOF, false)
	} else {
		for i := 0; i < 8; i++ {
			r.sm.SetInputWire(d.DataInputs[i], false)
		}
		r.sm.SetInputWire(d.EOF, true)
	}
}
