package hwgen

import (
	"fmt"

	"cfgtag/internal/core"
	"cfgtag/internal/netlist"
)

// GenerateWide2 lowers the spec to a 2-bytes-per-clock datapath — the
// section 5.2 scaling ("process 32-bits or 64-bits per clock cycle")
// actually built for the first doubling. Each cycle consumes a byte pair
// (lane 0 then lane 1): the single-byte transition logic is instantiated
// twice, lane 0's results feeding lane 1 combinationally, with registers
// only at the pair boundary. Each lane has its own decoder column.
//
// Detections ending on lane 0 resolve combinationally (the figure 7
// lookahead reads lane 1's decoders); detections ending on lane 1 need the
// next pair's first byte, so their candidates are registered and resolve
// one cycle later — which is exactly when their follow-enables are due.
//
// Interface: inputs a0..a7 (lane 0), b0..b7 (lane 1), "v1" (lane 1 carries
// a byte — low on the final odd byte), "eof" (flush). Outputs "det0/<k>"
// and "det1/<k>" per instance, both registered: after Step(c), det0
// reports a token ending at byte 2c and det1 one ending at byte 2c−1.
//
// Not supported (returns an error): Recovery modes (the dead-state
// detector is single-byte scoped) and the index encoder (use the
// single-byte design; the wide datapath's outputs are the raw detects).
func GenerateWide2(spec *core.Spec, opts Options) (*DesignWide2, error) {
	if opts.TreeArity == 0 {
		opts.TreeArity = 4
	}
	if opts.TreeArity < 2 {
		return nil, fmt.Errorf("hwgen: tree arity must be ≥ 2, got %d", opts.TreeArity)
	}
	if spec.Opts.Recovery != core.RecoveryNone {
		return nil, fmt.Errorf("hwgen: the 2-byte datapath does not implement error recovery")
	}
	decoderCap := opts.MaxFanout
	if opts.NoDecoderSharing {
		decoderCap = 1
	}
	g := &gen{spec: spec, opts: opts, decoderCap: decoderCap, n: netlist.New()}
	w := &wide2{gen: g}
	w.build()
	if err := g.n.Validate(); err != nil {
		return nil, fmt.Errorf("hwgen: wide2 netlist invalid: %w", err)
	}
	return &DesignWide2{
		Spec:    spec,
		Netlist: g.n,
		Lane0:   w.lane0Data,
		Lane1:   w.lane1Data,
		V1:      w.v1,
		EOF:     w.eof0,
		Det0:    w.det0Out,
		Det1:    w.det1Out,
	}, nil
}

// DesignWide2 is the generated 2-byte datapath and its interface.
type DesignWide2 struct {
	Spec    *core.Spec
	Netlist *netlist.Netlist

	Lane0, Lane1 [8]netlist.Wire
	V1           netlist.Wire
	EOF          netlist.Wire
	// Det0[k]/Det1[k]: registered detect outputs per instance for tokens
	// ending on lane 0 / lane 1.
	Det0, Det1 []netlist.Wire
}

type wide2 struct {
	gen *gen

	lane0Data, lane1Data [8]netlist.Wire
	v1, notV1            netlist.Wire
	eof0                 netlist.Wire
	dec0, dec1           *decBank

	// posRegs[k][i]: active after the pair. cand1[k][j]: lane-1 ending
	// candidate for instance k's j-th accepting position. pendReg[k]: the
	// held pending between cycles.
	posRegs [][]netlist.Wire
	cand1   [][]netlist.Wire
	pendReg []netlist.Wire

	det0Out, det1Out []netlist.Wire
}

func (w *wide2) build() {
	g := w.gen
	n := g.n
	spec := g.spec
	for i := 0; i < 8; i++ {
		w.lane0Data[i] = n.Input(fmt.Sprintf("a%d", i))
		w.lane1Data[i] = n.Input(fmt.Sprintf("b%d", i))
	}
	w.v1 = n.Input("v1")
	w.notV1 = n.Not(w.v1)
	w.eof0 = n.Input("eof")
	w.dec0 = newDecBank(g, w.lane0Data, "dec0")
	w.dec1 = newDecBank(g, w.lane1Data, "dec1")

	// Registers first (placeholder D inputs, patched below).
	w.posRegs = make([][]netlist.Wire, len(spec.Instances))
	w.cand1 = make([][]netlist.Wire, len(spec.Instances))
	w.pendReg = make([]netlist.Wire, len(spec.Instances))
	for k, in := range spec.Instances {
		p := in.Program
		w.posRegs[k] = make([]netlist.Wire, p.Len())
		for i := range w.posRegs[k] {
			w.posRegs[k][i] = n.Reg(n.Const(false), fmt.Sprintf("tok/%d/pos%d", k, i))
		}
		w.cand1[k] = make([]netlist.Wire, len(p.Last))
		for j := range w.cand1[k] {
			w.cand1[k][j] = n.Reg(n.Const(false), fmt.Sprintf("tok/%d/cand%d", k, j))
		}
		w.pendReg[k] = n.Reg(n.Const(false), fmt.Sprintf("wire/pend%d", k))
		if in.Start && !spec.Opts.FreeRunningStart {
			n.Gates[w.pendReg[k]].Init = true
		}
	}

	// det1: last pair's lane-1 candidates, killed if this pair's lane-0
	// byte extends them (figure 7 across the cycle boundary).
	notEOF0 := n.Not(w.eof0)
	det1 := make([]netlist.Wire, len(spec.Instances))
	for k, in := range spec.Instances {
		p := in.Program
		var ends []netlist.Wire
		for j, last := range p.Last {
			c := w.cand1[k][j]
			if spec.Opts.NoLongestMatch || len(p.Follow[last]) == 0 {
				ends = append(ends, c)
				continue
			}
			var ext []netlist.Wire
			for _, t := range p.Follow[last] {
				ext = append(ext, w.dec0.classUse(p.Classes[t]))
			}
			e := n.And(g.orTree(ext, fmt.Sprintf("tok/%d/ext1", k)), notEOF0)
			ends = append(ends, g.labeled(n.And(c, n.Not(e)), fmt.Sprintf("tok/%d/end1_%d", k, last)))
		}
		det1[k] = g.orTree(ends, fmt.Sprintf("tok/%d/det1", k))
	}

	enablers := spec.Enablers()
	enableOr := func(dets []netlist.Wire, k int, label string) netlist.Wire {
		var src []netlist.Wire
		for _, e := range enablers[k] {
			src = append(src, dets[e])
		}
		if len(src) == 0 {
			return n.Const(false)
		}
		return g.orTree(src, label)
	}

	delim0 := w.dec0.classUse(spec.Delim)
	delim1 := w.dec1.classUse(spec.Delim)

	// pendA: pending effective at lane 0 — the held register plus the
	// just-resolved lane-1 detections of the previous pair.
	pendA := make([]netlist.Wire, len(spec.Instances))
	for k, in := range spec.Instances {
		pendA[k] = g.labeled(n.Or(w.pendReg[k], enableOr(det1, k, fmt.Sprintf("wire/en1_%d", k))),
			fmt.Sprintf("wire/pendA%d", k))
		if in.Start && spec.Opts.FreeRunningStart {
			pendA[k] = n.Or(pendA[k], n.Const(true))
		}
	}

	// Lane-0 micro-step: activeMid = single-byte transition from the pair
	// registers under dec0, injected from pendA.
	activeMid := w.microStep(w.posRegsAll(), pendA, w.dec0, "mid")

	// det0: tokens ending on lane 0; lane 1's byte is the lookahead (a
	// missing lane-1 byte extends nothing).
	det0 := make([]netlist.Wire, len(spec.Instances))
	for k, in := range spec.Instances {
		p := in.Program
		var ends []netlist.Wire
		for _, last := range p.Last {
			m := activeMid[k][last]
			if spec.Opts.NoLongestMatch || len(p.Follow[last]) == 0 {
				ends = append(ends, m)
				continue
			}
			var ext []netlist.Wire
			for _, t := range p.Follow[last] {
				ext = append(ext, w.dec1.classUse(p.Classes[t]))
			}
			e := n.And(g.orTree(ext, fmt.Sprintf("tok/%d/ext0", k)), w.v1)
			ends = append(ends, g.labeled(n.And(m, n.Not(e)), fmt.Sprintf("tok/%d/end0_%d", k, last)))
		}
		det0[k] = g.orTree(ends, fmt.Sprintf("tok/%d/det0", k))
	}

	// pendMid: pending effective at lane 1 — held through a lane-0
	// delimiter, replaced by lane-0 detections otherwise.
	pendMid := make([]netlist.Wire, len(spec.Instances))
	for k, in := range spec.Instances {
		pendMid[k] = g.labeled(
			n.Or(n.And(pendA[k], delim0), enableOr(det0, k, fmt.Sprintf("wire/en0_%d", k))),
			fmt.Sprintf("wire/pendM%d", k))
		if in.Start && spec.Opts.FreeRunningStart {
			pendMid[k] = n.Or(pendMid[k], n.Const(true))
		}
	}

	// Lane-1 micro-step from activeMid under dec1.
	activeNext := w.microStep(activeMid, pendMid, w.dec1, "nxt")

	// Commit: with a lane-1 byte the pair advances two steps; on the final
	// odd byte it advances one (activeMid).
	holdTerm := n.Or(n.And(delim1, w.v1), w.notV1)
	for k, in := range spec.Instances {
		p := in.Program
		for i := 0; i < p.Len(); i++ {
			d := n.Or(n.And(activeNext[k][i], w.v1), n.And(activeMid[k][i], w.notV1))
			n.Gates[w.posRegs[k][i]].In[0] = g.labeled(d, fmt.Sprintf("tok/%d/d%d", k, i))
		}
		for j, last := range p.Last {
			n.Gates[w.cand1[k][j]].In[0] = n.And(activeNext[k][last], w.v1)
		}
		// Pending carries across the cycle when lane 1 was a delimiter or
		// absent; fresh enables arrive via the det paths.
		n.Gates[w.pendReg[k]].In[0] = g.labeled(
			n.And(pendMid[k], holdTerm), fmt.Sprintf("wire/hold%d", k))
	}

	// Registered observable outputs.
	w.det0Out = make([]netlist.Wire, len(spec.Instances))
	w.det1Out = make([]netlist.Wire, len(spec.Instances))
	for k := range spec.Instances {
		w.det0Out[k] = n.Reg(det0[k], fmt.Sprintf("out/det0_%d", k))
		w.det1Out[k] = n.Reg(det1[k], fmt.Sprintf("out/det1_%d", k))
		n.Output(fmt.Sprintf("det0/%d", k), w.det0Out[k])
		n.Output(fmt.Sprintf("det1/%d", k), w.det1Out[k])
	}
}

// posRegsAll adapts the register matrix to the microStep source shape.
func (w *wide2) posRegsAll() [][]netlist.Wire { return w.posRegs }

// microStep instantiates one lane's transition: for each instance position
// p, out[p] = (OR of predecessors' source bits | pending-if-first) AND
// dec(class(p)) — the exact single-byte chain logic, with the source taken
// from registers (lane 0) or the previous micro-step (lane 1).
func (w *wide2) microStep(src [][]netlist.Wire, pending []netlist.Wire, dec *decBank, tag string) [][]netlist.Wire {
	g := w.gen
	n := g.n
	out := make([][]netlist.Wire, len(g.spec.Instances))
	for k, in := range g.spec.Instances {
		p := in.Program
		firstSet := make(map[int]bool, len(p.First))
		for _, f := range p.First {
			firstSet[f] = true
		}
		preds := make([][]netlist.Wire, p.Len())
		for q, tos := range p.Follow {
			for _, t := range tos {
				preds[t] = append(preds[t], src[k][q])
			}
		}
		out[k] = make([]netlist.Wire, p.Len())
		for i := 0; i < p.Len(); i++ {
			var ins []netlist.Wire
			if firstSet[i] {
				ins = append(ins, pending[k])
			}
			ins = append(ins, preds[i]...)
			if len(ins) == 0 {
				out[k][i] = n.Const(false)
				continue
			}
			out[k][i] = g.labeled(
				n.And(g.orTree(ins, fmt.Sprintf("tok/%d/%s_in%d", k, tag, i)), dec.classUse(p.Classes[i])),
				fmt.Sprintf("tok/%d/%s%d", k, tag, i))
		}
	}
	return out
}
