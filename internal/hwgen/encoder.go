package hwgen

import (
	"fmt"

	"cfgtag/internal/netlist"
)

// buildEncoder creates the token index encoder of section 3.4. Each index
// output bit is the OR of the detect wires whose assigned index has that
// bit set (equations 1–4 are the special case of consecutive indices); a
// "valid" output ORs every detect and a "msg_end" output ORs the detects
// of instances that may end a sentence.
//
// The default encoder is the pipelined OR tree: one gate level between
// registers, so the critical path stays at a single LUT regardless of the
// rule count. All outputs are padded to the same register depth, recorded
// as the design's EncoderLatency. The NaiveEncoder option instead builds
// the long 2-input combinational chain the paper warns about, with a
// single output register.
func (g *gen) buildEncoder() {
	spec := g.spec
	var bitInputs = make([][]netlist.Wire, spec.IndexBits)
	var all, enders []netlist.Wire
	for k, in := range spec.Instances {
		det := g.detects[k]
		all = append(all, det)
		if in.CanEnd {
			enders = append(enders, det)
		}
		for b := 0; b < spec.IndexBits; b++ {
			if in.Index&(1<<b) != 0 {
				bitInputs[b] = append(bitInputs[b], det)
			}
		}
	}

	if g.opts.NaiveEncoder {
		g.encLatency = 1
		emit := func(name string, ins []netlist.Wire) {
			acc := g.n.Const(false)
			for _, w := range ins {
				acc = g.labeled(g.n.Or(acc, w), "enc/chain")
			}
			g.n.Output(name, g.n.Reg(acc, "enc/out/"+name))
		}
		for b := 0; b < spec.IndexBits; b++ {
			emit(fmt.Sprintf("index%d", b), bitInputs[b])
		}
		emit("valid", all)
		emit("msg_end", enders)
		return
	}

	// Pipelined trees: compute every tree, then pad to the deepest.
	type tree struct {
		name  string
		wire  netlist.Wire
		depth int
	}
	var trees []tree
	add := func(name string, ins []netlist.Wire) {
		w, d := g.pipeOrTree(ins, "enc/"+name)
		trees = append(trees, tree{name, w, d})
	}
	for b := 0; b < spec.IndexBits; b++ {
		add(fmt.Sprintf("index%d", b), bitInputs[b])
	}
	add("valid", all)
	add("msg_end", enders)

	max := 1
	for _, t := range trees {
		if t.depth > max {
			max = t.depth
		}
	}
	for _, t := range trees {
		w := t.wire
		for d := t.depth; d < max; d++ {
			w = g.n.Reg(w, "enc/pad/"+t.name)
		}
		g.n.Output(t.name, w)
	}
	g.encLatency = max
}

// pipeOrTree builds an OR tree with a register after every level, the
// "one level of logic between pipelined registers" structure of
// section 3.4. The returned depth counts register stages; an empty input
// list yields a constant-false wire behind one register.
func (g *gen) pipeOrTree(ws []netlist.Wire, label string) (netlist.Wire, int) {
	if len(ws) == 0 {
		return g.n.Reg(g.n.Const(false), label), 1
	}
	depth := 0
	for {
		var next []netlist.Wire
		for i := 0; i < len(ws); i += g.opts.TreeArity {
			j := i + g.opts.TreeArity
			if j > len(ws) {
				j = len(ws)
			}
			var node netlist.Wire
			if j-i == 1 {
				node = ws[i]
			} else {
				node = g.labeled(g.n.Or(ws[i:j]...), label)
			}
			next = append(next, g.n.Reg(node, label))
		}
		depth++
		ws = next
		if len(ws) == 1 {
			return ws[0], depth
		}
	}
}
