package hwgen

import (
	"cfgtag/internal/core"
	"cfgtag/internal/netlist"
)

// buildRecovery implements the section 5.2 error detection and recovery in
// gates. The error signal is the NOR of every chain position register and
// every held latch — asserted exactly when the engine is dead. It is wired
// combinationally into the pending signal of the recovery set (the start
// instances under RecoveryRestart, every instance under RecoveryResync),
// so the re-arm takes effect on the very byte after the engine died,
// matching the stream engine. The returned map gives the recovery wire for
// each instance that receives it; it is empty when recovery is off.
//
// The detector is also exported as the "error" design output so a back-end
// can count or log recovery events.
func (g *gen) buildRecovery(held []netlist.Wire) map[int]netlist.Wire {
	out := make(map[int]netlist.Wire)
	mode := g.spec.Opts.Recovery
	if mode == core.RecoveryNone || g.spec.Opts.FreeRunningStart {
		// Under FreeRunningStart the start set is always pending: the
		// engine is never dead and the detector would never fire.
		return out
	}
	var state []netlist.Wire
	for _, regs := range g.posRegs {
		state = append(state, regs...)
	}
	state = append(state, held...)
	alive := g.orTree(state, "rec/alive")
	errWire := g.labeled(g.n.Not(alive), "rec/error")
	g.n.Output("error", errWire)

	for k, in := range g.spec.Instances {
		if mode == core.RecoveryRestart && !in.Start {
			continue
		}
		out[k] = errWire
	}
	return out
}
