package hwgen

import "cfgtag/internal/netlist"

// Decoder replication implements the improvement the paper's own timing
// analysis calls for (section 4.3): "the critical paths ... are entirely
// routing delay associated with the large fanout of the decoded character
// bits ... possibilities for improving the routing delay include a
// register tree to pipeline the fanout, or replicating decoders and
// balancing the fanout across them." With Options.MaxFanout > 0 every
// decoded wire (nibble, character, class) is drawn from a pool that opens
// a fresh replica once the current one has served MaxFanout loads, bounding
// any single decoded net's fanout at the cost of duplicated decode LUTs.

// srcPool hands out replicas of one logical signal, each serving at most
// cap loads. cap <= 0 means a single unbounded replica.
type srcPool struct {
	cap   int
	build func() netlist.Wire
	ws    []netlist.Wire
	loads []int
}

func newSrcPool(cap int, build func() netlist.Wire) *srcPool {
	return &srcPool{cap: cap, build: build}
}

// take returns a replica with remaining capacity, creating one on demand,
// and records the load.
func (p *srcPool) take() netlist.Wire {
	n := len(p.ws)
	if n > 0 && (p.cap <= 0 || p.loads[n-1] < p.cap) {
		p.loads[n-1]++
		return p.ws[n-1]
	}
	w := p.build()
	p.ws = append(p.ws, w)
	p.loads = append(p.loads, 1)
	return w
}

// replicas reports how many copies were instantiated.
func (p *srcPool) replicas() int { return len(p.ws) }
