package earley

import (
	"errors"
	"fmt"
)

// ErrBudget is the sentinel under every BudgetError: recognition stopped
// because the chart hit a configured resource bound, not because the input
// was rejected. Test with errors.Is.
var ErrBudget = errors.New("earley: resource budget exhausted")

// Config bounds one recognition's resource consumption. The zero value is
// unlimited — the behavior of New.
//
// Earley charts grow superlinearly on ambiguous grammars (O(n³) worst
// case), so an adversarial input can otherwise pin a CPU and balloon
// memory without bound. Marpa-style deployments bound the chart
// explicitly; these knobs are that bound.
type Config struct {
	// MaxChartItems caps the total Earley items across all chart sets of
	// one recognition (0 = unlimited). The cap is exact: recognition stops
	// before inserting the item that would exceed it.
	MaxChartItems int
	// MaxWorkPerByte caps recognition work — worklist steps, cause
	// recordings and scanner automaton steps — at MaxWorkPerByte ×
	// (len(input)+1) units (0 = unlimited). Unambiguous grammars need a
	// small constant per byte; a trip means the input is adversarially
	// ambiguous for this grammar.
	MaxWorkPerByte int
	// MemDelta, when set, observes the chart's estimated memory: charged
	// per item as the chart grows and discharged in one call when the
	// recognition's chart is released. Deltas are bytes; the callback must
	// be safe for concurrent use when the Recognizer is shared.
	MemDelta func(delta int64)
}

// earleyItemBytes is the per-item memory estimate MemDelta is charged
// with: the item struct, its map entry and the amortized share of set
// bookkeeping. An estimate, not an accounting — it only needs to scale
// with real usage.
const earleyItemBytes = 192

// BudgetError reports a recognition stopped by Config bounds, carrying the
// consumption at the stop. It wraps ErrBudget.
type BudgetError struct {
	Grammar  string
	Items    int
	MaxItems int
	Work     int64
	MaxWork  int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("earley: %s: budget exhausted (items %d/%d, work %d/%d)",
		e.Grammar, e.Items, e.MaxItems, e.Work, e.MaxWork)
}

func (e *BudgetError) Unwrap() error { return ErrBudget }
