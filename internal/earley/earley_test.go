package earley

import (
	"errors"
	"strings"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/parser"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
)

func compile(t *testing.T, g *grammar.Grammar, opts core.Options) (*core.Spec, *Recognizer) {
	t.Helper()
	spec, err := core.Compile(g, opts)
	if err != nil {
		t.Fatalf("compile %s: %v", g.Name, err)
	}
	rec, err := New(spec)
	if err != nil {
		t.Fatalf("recognizer %s: %v", g.Name, err)
	}
	return spec, rec
}

func parse(t *testing.T, name, src string) *grammar.Grammar {
	t.Helper()
	g, err := grammar.Parse(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return g
}

// tagsAsMatches projects earley tags to the (instance, end) pairs the
// stream engine reports.
func tagsAsMatches(spec *core.Spec, tags []Tag) map[stream.Match]bool {
	out := make(map[stream.Match]bool, len(tags))
	for _, tag := range tags {
		in := spec.InstanceAt(tag.Rule, tag.Pos)
		out[stream.Match{InstanceID: in.ID, End: int64(tag.End)}] = true
	}
	return out
}

// TestAgainstParserOnBuiltins: on LL(1) grammars the oracle and the
// predictive parser recognize the same language with the same tags.
func TestAgainstParserOnBuiltins(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.BalancedParens(),
		grammar.IfThenElse(),
		grammar.XMLRPC(),
	} {
		t.Run(g.Name, func(t *testing.T) {
			spec, rec := compile(t, g, core.Options{})
			table, err := parser.BuildTable(spec)
			if err != nil {
				t.Fatalf("LL(1) table: %v", err)
			}
			gen := workload.NewGenerator(spec, 11, workload.SentenceOptions{MaxDepth: 8})
			for trial := 0; trial < 25; trial++ {
				text, _ := gen.Sentence()
				want, err := table.Parse(text)
				if err != nil {
					t.Fatalf("parser rejected conforming %q: %v", text, err)
				}
				got, err := rec.Tags(text)
				if err != nil {
					t.Fatalf("earley rejected conforming %q: %v", text, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%q: earley %d tags, parser %d\nearley %v\nparser %v", text, len(got), len(want), got, want)
				}
				for i := range got {
					w := Tag(want[i])
					if got[i] != w {
						t.Fatalf("%q tag %d: earley %+v, parser %+v", text, i, got[i], w)
					}
				}
			}
		})
	}
}

// TestSubsetOfStream: earley tags are always among the FSA path's tags —
// the direction that makes the oracle a precision bound.
func TestSubsetOfStream(t *testing.T) {
	for _, g := range []*grammar.Grammar{
		grammar.IfThenElse(),
		grammar.XMLRPC(),
		grammar.English(),
	} {
		t.Run(g.Name, func(t *testing.T) {
			spec, rec := compile(t, g, core.Options{})
			gen := workload.NewGenerator(spec, 7, workload.SentenceOptions{MaxDepth: 8})
			for trial := 0; trial < 25; trial++ {
				text, _ := gen.Sentence()
				tags, err := rec.Tags(text)
				if err != nil {
					t.Fatalf("earley rejected conforming %q: %v", text, err)
				}
				fsa := make(map[stream.Match]bool)
				for _, m := range stream.NewTagger(spec).Tag(text) {
					fsa[m] = true
				}
				for m := range tagsAsMatches(spec, tags) {
					if !fsa[m] {
						t.Fatalf("%q: earley tag %v missing from stream tags", text, m)
					}
				}
			}
		})
	}
}

// TestAmbiguousUnion: tags are the union over all derivations, not one
// parse's worth.
func TestAmbiguousUnion(t *testing.T) {
	g := parse(t, "amb", `
%%
s : a | b ;
a : "x" ;
b : "x" ;
`)
	_, rec := compile(t, g, core.Options{})
	tags, err := rec.Tags([]byte("x"))
	if err != nil {
		t.Fatalf("reject: %v", err)
	}
	// Rules: 0 s:a, 1 s:b, 2 a:"x", 3 b:"x". Both occurrences tag.
	if len(tags) != 2 || tags[0].Rule != 2 || tags[1].Rule != 3 {
		t.Fatalf("tags = %+v, want both x occurrences", tags)
	}
}

// TestLexicalAmbiguity: one (start, terminal) scan can end at several
// offsets when the pattern holds a non-extendable accepting position
// mid-run — the per-position figure 7 lookahead, not global longest match.
func TestLexicalAmbiguity(t *testing.T) {
	g := parse(t, "lex", `
T (ab)|a
%%
s : T T ;
`)
	_, rec := compile(t, g, core.Options{})
	// "aab" must split as a + ab ("a"+"a" leaves the b unconsumed).
	tags, err := rec.Tags([]byte("aab"))
	if err != nil {
		t.Fatalf("reject aab: %v", err)
	}
	if len(tags) != 2 || tags[0].End != 0 || tags[1].End != 2 {
		t.Fatalf("aab tags = %+v, want ends 0 and 2", tags)
	}
	// "ab" cannot split into two tokens: "ab" is one lexeme, and after
	// "a" no T starts at b.
	if rec.Accepts([]byte("ab")) {
		t.Fatal("accepted ab, want reject")
	}
	// "a ab": both tokens, delimiter-separated.
	if !rec.Accepts([]byte("a ab")) {
		t.Fatal("rejected a ab")
	}
}

// TestLeoRightRecursion: chart growth on a right-recursive list stays
// linear (Leo), not quadratic.
func TestLeoRightRecursion(t *testing.T) {
	g := parse(t, "rlist", `
ITEM [a-z]+
%%
list : ITEM ";" list | ITEM ;
`)
	_, rec := compile(t, g, core.Options{})
	input := func(n int) []byte {
		return []byte(strings.Repeat("a;", n-1) + "a")
	}
	if !rec.Accepts(input(400)) {
		t.Fatal("rejected 400-item list")
	}
	small, big := rec.chartItems(input(100)), rec.chartItems(input(400))
	if ratio := float64(big) / float64(small); ratio > 5.5 {
		t.Fatalf("chart grew superlinearly: %d items at n=100, %d at n=400 (ratio %.1f)", small, big, ratio)
	}
	tags, err := rec.Tags(input(5))
	if err != nil {
		t.Fatalf("reject: %v", err)
	}
	if len(tags) != 9 { // 5 items + 4 separators
		t.Fatalf("5-item list yielded %d tags: %+v", len(tags), tags)
	}
}

// TestUnitCycle: unit-production cycles terminate (the Leo cycle guard)
// and still tag correctly.
func TestUnitCycle(t *testing.T) {
	g := parse(t, "cycle", `
%%
a : b ;
b : a | "x" ;
`)
	_, rec := compile(t, g, core.Options{})
	tags, err := rec.Tags([]byte("x"))
	if err != nil {
		t.Fatalf("reject: %v", err)
	}
	if len(tags) != 1 || tags[0].Rule != 2 || tags[0].Pos != 0 {
		t.Fatalf("tags = %+v", tags)
	}
	if rec.Accepts([]byte("y")) {
		t.Fatal("accepted y")
	}
}

// TestNullableAndDelims: empty derivations, leading/trailing delimiter
// runs, and all-delimiter input.
func TestNullableAndDelims(t *testing.T) {
	g := parse(t, "dyck", `
%%
s : | "(" s ")" s ;
`)
	_, rec := compile(t, g, core.Options{})
	for _, in := range []string{"", "  ", "()", " ( ) ", "(())()", "( ( ) ) ( )  "} {
		if !rec.Accepts([]byte(in)) {
			t.Fatalf("rejected %q", in)
		}
	}
	for _, in := range []string{"(", ")", "(()", "())", "x"} {
		if rec.Accepts([]byte(in)) {
			t.Fatalf("accepted %q", in)
		}
	}
	tags, err := rec.Tags([]byte("  "))
	if err != nil || len(tags) != 0 {
		t.Fatalf("all-delim input: tags %v, err %v", tags, err)
	}
}

// TestRejectPosition: the reject error reports the furthest token start.
func TestRejectPosition(t *testing.T) {
	_, rec := compile(t, grammar.IfThenElse(), core.Options{})
	in := "if true then go else @@"
	_, err := rec.Tags([]byte(in))
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want RejectError", err)
	}
	if want := strings.Index(in, "@"); rej.Pos != want {
		t.Fatalf("reject pos %d, want %d", rej.Pos, want)
	}
}

// TestNoLongestMatch: with the figure 7 lookahead disabled every accepting
// step is a valid lexeme end, and the language grows accordingly.
func TestNoLongestMatch(t *testing.T) {
	g := parse(t, "nolm", `
A [a-z]+
%%
s : A A ;
`)
	spec, rec := compile(t, g, core.Options{NoLongestMatch: true})
	// Under longest match "ab" is a single lexeme, so s : A A rejects it;
	// without it, "a"+"b" is a valid split.
	tags, err := rec.Tags([]byte("ab"))
	if err != nil {
		t.Fatalf("rejected ab without longest match: %v", err)
	}
	fsa := make(map[stream.Match]bool)
	for _, m := range stream.NewTagger(spec).Tag([]byte("ab")) {
		fsa[m] = true
	}
	for m := range tagsAsMatches(spec, tags) {
		if !fsa[m] {
			t.Fatalf("earley tag %v missing from stream tags", m)
		}
	}

	_, recLM := compile(t, g, core.Options{})
	if recLM.Accepts([]byte("ab")) {
		t.Fatal("longest-match recognizer accepted ab")
	}
	if !recLM.Accepts([]byte("ab cd")) {
		t.Fatal("longest-match recognizer rejected ab cd")
	}
}

// TestUnsupportedOptions: engine modes with no exact language are refused.
func TestUnsupportedOptions(t *testing.T) {
	g := grammar.IfThenElse()
	for _, opts := range []core.Options{
		{FreeRunningStart: true},
		{AllEnabled: true},
		{Recovery: core.RecoveryRestart},
	} {
		spec, err := core.Compile(g, opts)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		if _, err := New(spec); err == nil {
			t.Fatalf("New accepted options %+v", opts)
		}
	}
}

// TestLeftRecursion: the grammar package admits left recursion the LL(1)
// parser cannot handle; the oracle must.
func TestLeftRecursion(t *testing.T) {
	g := parse(t, "leftrec", `
NUM [0-9]+
%%
e : e "+" NUM | NUM ;
`)
	spec, rec := compile(t, g, core.Options{})
	if _, err := parser.BuildTable(spec); err == nil {
		t.Fatal("left-recursive grammar unexpectedly LL(1)")
	}
	for _, in := range []string{"1", "1 + 2", "1 + 2 + 3", "12+34+56"} {
		if !rec.Accepts([]byte(in)) {
			t.Fatalf("rejected %q", in)
		}
	}
	for _, in := range []string{"+", "1 +", "+ 1", "1 2"} {
		if rec.Accepts([]byte(in)) {
			t.Fatalf("accepted %q", in)
		}
	}
}
