package earley

import (
	"errors"
	"sync"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
)

// fuzzRig holds budget-capped recognizers over the two worst-case grammar
// shapes: the exponentially ambiguous s : s s | "x" (completion fan-out
// grows the chart fastest) and a right-recursive lexeme list (deep Leo
// chains). Budgets span tight to roomy so the fuzzer exercises both the
// trip path and the complete path on the same inputs.
type fuzzRig struct {
	recs []*Recognizer
	caps []int
}

var (
	fuzzOnce sync.Once
	fuzzR    fuzzRig
	fuzzErr  error
)

func buildFuzzRig() {
	grammars := []struct{ name, src string }{
		{"amb", "\n%%\ns : s s | \"x\" ;\n"},
		{"list", "ITEM [a-z]+\n%%\nlist : ITEM \";\" list | ITEM ;\n"},
	}
	budgets := []int{48, 300, 2048}
	for _, gs := range grammars {
		g, err := grammar.Parse(gs.name, gs.src)
		if err != nil {
			fuzzErr = err
			return
		}
		spec, err := core.Compile(g, core.Options{})
		if err != nil {
			fuzzErr = err
			return
		}
		for _, max := range budgets {
			rec, err := NewWithConfig(spec, Config{MaxChartItems: max, MaxWorkPerByte: 512})
			if err != nil {
				fuzzErr = err
				return
			}
			fuzzR.recs = append(fuzzR.recs, rec)
			fuzzR.caps = append(fuzzR.caps, max)
		}
	}
}

// FuzzEarleyResourceBound throws arbitrary bytes at budget-capped
// recognizers: every recognition must end in exactly one of three
// verdicts — tags, *RejectError, or a *BudgetError wrapping ErrBudget —
// without panicking, and a budget trip must report a chart no larger
// than MaxChartItems (the cap is exact; the overload contract allows at
// most 2x and this pins the stronger bound). Accepts must agree with
// Tags on every input, budget-tripped ones included.
//
// Seed corpus: testdata/fuzz/FuzzEarleyResourceBound.
func FuzzEarleyResourceBound(f *testing.F) {
	f.Add([]byte("x"))
	f.Add([]byte("xx xx"))
	f.Add([]byte("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
	f.Add([]byte("a;b;c"))
	f.Add([]byte("item;item;item;item;item;item;item;item;item;item;item;item"))
	f.Add([]byte(";;;;"))
	f.Add([]byte{0, 255, 'x', 0xC3, 0x28})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return // work budget already linearizes; keep iterations fast
		}
		fuzzOnce.Do(buildFuzzRig)
		if fuzzErr != nil {
			t.Fatal(fuzzErr)
		}
		for i, rec := range fuzzR.recs {
			tags, err := rec.Tags(data)
			accepted := rec.Accepts(data)
			switch {
			case err == nil:
				if !accepted {
					t.Fatalf("rec %d: Tags accepted %q (%d tags) but Accepts rejects", i, data, len(tags))
				}
			case errors.Is(err, ErrBudget):
				var be *BudgetError
				if !errors.As(err, &be) {
					t.Fatalf("rec %d: ErrBudget without BudgetError detail: %v", i, err)
				}
				if be.Items > fuzzR.caps[i] {
					t.Fatalf("rec %d: budget trip reports %d chart items, cap %d", i, be.Items, fuzzR.caps[i])
				}
				if accepted {
					t.Fatalf("rec %d: budget-tripped %q but Accepts claims proof", i, data)
				}
			default:
				var re *RejectError
				if !errors.As(err, &re) {
					t.Fatalf("rec %d: verdict on %q is neither tags, budget, nor reject: %v", i, data, err)
				}
				if accepted {
					t.Fatalf("rec %d: Tags rejected %q but Accepts accepts", i, data)
				}
			}
		}
	})
}
