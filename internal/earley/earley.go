// Package earley implements a general context-free recognizer over a
// compiled tagging spec — the exact-language oracle the FSA execution paths
// are measured against.
//
// The paper's engine deliberately collapses the grammar's push-down
// automaton into a finite automaton that accepts a *superset* of the
// language (section 3.1, figure 2). The recognizer here accepts the
// language exactly, for every grammar class the grammar package admits —
// left recursion, right recursion, ambiguity — so it can judge inputs the
// LL(1) parser baseline cannot.
//
// It is an Earley recognizer in the style of Marpa: chart sets live at
// token-start byte offsets, completions are memoized per set, and Leo's
// right-recursion optimization keeps deterministic right-recursive
// derivations linear instead of quadratic. Scanning is hardware-faithful
// rather than lexer-faithful: a lexeme starting at byte s is valid up to
// byte e exactly when the terminal's Glushkov automaton holds an accepting
// position at e whose own follow set cannot consume the byte at e+1 (the
// per-position figure 7 lookahead), so one (start, terminal) pair can
// yield several valid ends — the same ambiguous-lexicon scanning the
// stream engine performs in parallel. Under Options.NoLongestMatch every
// accepting step is a valid end. Tokens start at the first non-delimiter
// byte after the previous lexeme (the pending latch is consumed there) and
// leading/trailing delimiter runs are skipped, mirroring the inverted
// delimiter enable of section 3.2.
//
// Tags returns the union of terminal tags over *all* derivations: every
// item records its causes (scan, completion, or a Leo chain) and a
// backward reachability pass from the accepting item keeps exactly the
// scans that participate in some full parse. An Earley item (rule, dot,
// origin) in a given set spans fixed byte offsets, so alternative causes
// of one item are interchangeable sub-derivations and the union is exact.
package earley

import (
	"fmt"
	"sort"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
)

// Tag is one terminal occurrence used by a successful derivation: the
// grammar rule index and RHS position of the occurrence (the same
// coordinates core.Spec.InstanceAt resolves), the token index, and the
// inclusive byte span of the lexeme. For ambiguous grammars the tag list
// is the union over all derivations.
type Tag struct {
	Rule, Pos  int
	TokenIndex int
	Start, End int
}

// RejectError reports input that is not a sentence of the grammar.
type RejectError struct {
	Grammar string
	// Pos is the furthest token-start byte offset recognition reached —
	// the first position no derivation could move past.
	Pos int
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("earley: %s: input rejected at byte %d", e.Grammar, e.Pos)
}

// symbol is one RHS element with interned identity: a token index when
// terminal, a nonterminal id otherwise.
type symbol struct {
	terminal bool
	idx      int
}

// prod is one interned production. gri is the grammar rule index (-1 for
// the augmented start production), preserved so tags carry the occurrence
// coordinates of the source grammar.
type prod struct {
	lhs int
	rhs []symbol
	gri int
}

// Recognizer is the reusable, immutable compilation of one spec. It is
// safe for concurrent use; each Tags call builds its own chart.
type Recognizer struct {
	spec    *core.Spec
	cfg     Config
	prods   []prod
	ntRules [][]int // nonterminal id -> prod indices
	aug     int     // augmented production index
}

// New compiles a recognizer for the spec's grammar. Options that change
// the engine's *intent* away from "recognize one anchored sentence" —
// FreeRunningStart, AllEnabled, error recovery — have no exact-language
// counterpart and are rejected; NoLongestMatch and NoContextDuplication
// are supported.
func New(spec *core.Spec) (*Recognizer, error) {
	return NewWithConfig(spec, Config{})
}

// NewWithConfig compiles a recognizer whose recognitions are bounded by
// cfg (see Config). Negative bounds are rejected.
func NewWithConfig(spec *core.Spec, cfg Config) (*Recognizer, error) {
	if cfg.MaxChartItems < 0 {
		return nil, fmt.Errorf("earley: MaxChartItems must be >= 0 (0 = unlimited), got %d", cfg.MaxChartItems)
	}
	if cfg.MaxWorkPerByte < 0 {
		return nil, fmt.Errorf("earley: MaxWorkPerByte must be >= 0 (0 = unlimited), got %d", cfg.MaxWorkPerByte)
	}
	o := spec.Opts
	switch {
	case o.FreeRunningStart:
		return nil, fmt.Errorf("earley: FreeRunningStart specs scan for sentences at every boundary; the oracle recognizes anchored sentences only")
	case o.AllEnabled:
		return nil, fmt.Errorf("earley: AllEnabled specs discard the syntactic wiring; there is no language to recognize exactly")
	case o.Recovery != core.RecoveryNone:
		return nil, fmt.Errorf("earley: recovery mode %v resumes after errors; the oracle rejects non-sentences", o.Recovery)
	}
	g := spec.Grammar
	ids := make(map[string]int)
	nts := g.NonTerminals()
	for _, nt := range nts {
		ids[nt] = len(ids)
	}
	r := &Recognizer{spec: spec, cfg: cfg, ntRules: make([][]int, len(nts)+1)}
	for gri, gr := range g.Rules {
		p := prod{lhs: ids[gr.LHS], gri: gri}
		for _, s := range gr.RHS {
			if s.Kind == grammar.Terminal {
				p.rhs = append(p.rhs, symbol{terminal: true, idx: g.TokenIndex(s.Name)})
			} else {
				p.rhs = append(p.rhs, symbol{idx: ids[s.Name]})
			}
		}
		r.ntRules[p.lhs] = append(r.ntRules[p.lhs], len(r.prods))
		r.prods = append(r.prods, p)
	}
	augNT := len(nts)
	r.aug = len(r.prods)
	r.prods = append(r.prods, prod{lhs: augNT, rhs: []symbol{{idx: ids[g.Start]}}, gri: -1})
	r.ntRules[augNT] = []int{r.aug}
	return r, nil
}

// itemKey identifies an Earley item within one set: a dotted production
// and the index of the set the item originated in.
type itemKey struct{ prod, dot, origin int }

type causeKind uint8

const (
	causeScan causeKind = iota
	causeComplete
	causeLeo
)

// cause records how an item instance arose, for the backward tag pass.
type cause struct {
	kind  causeKind
	prev  *item    // the item whose dot advanced (scan, complete)
	sub   *item    // the completed child (complete, leo)
	chain *leoItem // leo: bottom link of the transitive chain
	tag   Tag      // scan: the consumed lexeme
}

type item struct {
	key    itemKey
	causes []cause
}

// leoItem memoizes Leo's transitive completion for (set, nonterminal):
// when exactly one item in the set expects B as its final symbol, every
// completion of B may jump straight to the topmost item of the chain. The
// penult links let the tag pass recover the skipped intermediate
// derivation steps.
type leoItem struct {
	penult    *item
	parent    *leoItem
	topProd   int
	topOrigin int
}

// earleySet is the chart column at one canonical byte position (a token
// start, or end of input).
type earleySet struct {
	idx       int
	pos       int
	items     []*item // insertion order doubles as the worklist
	index     map[itemKey]*item
	postdot   map[int][]*item // nonterminal id -> items expecting it
	predicted map[int]bool
	nullDone  map[int][]*item // empty-span completions by LHS id
	leo       map[int]*leoItem
	leoTried  map[int]bool
	scans     []*item // items expecting a terminal
}

// run is the per-input chart state.
type run struct {
	r        *Recognizer
	input    []byte
	sets     []*earleySet
	byPos    map[int]*earleySet
	scanMemo map[int][]int

	// Resource-budget state (see Config). exhausted latches the first
	// bound violation; once set no further items are inserted and the
	// parse loop stops, so the chart never exceeds the caps.
	items     int
	work      int64
	maxWork   int64
	charged   int64
	exhausted bool
}

// parse builds the full chart for input. Sets are processed in increasing
// byte position; scans only ever target strictly later positions, so every
// set is complete before anything reads it. The caller must release() the
// run when done with the chart (discharges MemDelta).
func (r *Recognizer) parse(input []byte) *run {
	p := &run{r: r, input: input, byPos: make(map[int]*earleySet), scanMemo: make(map[int][]int)}
	if r.cfg.MaxWorkPerByte > 0 {
		p.maxWork = int64(r.cfg.MaxWorkPerByte) * int64(len(input)+1)
	}
	s0 := p.setAt(p.skipDelims(0))
	p.add(s0, itemKey{r.aug, 0, 0}, cause{}, false)
	for pos := 0; pos <= len(input); pos++ {
		if p.exhausted {
			break
		}
		if s, ok := p.byPos[pos]; ok {
			p.process(s)
			p.scan(s)
		}
	}
	return p
}

// spend charges n work units, latching exhaustion past the budget.
func (p *run) spend(n int64) {
	p.work += n
	if p.maxWork > 0 && p.work > p.maxWork {
		p.exhausted = true
	}
}

// release discharges the chart's MemDelta charge; safe to call once the
// chart is no longer read.
func (p *run) release() {
	if p.charged > 0 {
		p.r.cfg.MemDelta(-p.charged)
		p.charged = 0
	}
}

// budgetErr reports the consumption that tripped the budget.
func (p *run) budgetErr() *BudgetError {
	return &BudgetError{
		Grammar:  p.r.spec.Grammar.Name,
		Items:    p.items,
		MaxItems: p.r.cfg.MaxChartItems,
		Work:     p.work,
		MaxWork:  p.maxWork,
	}
}

// Tags recognizes input and returns the union of terminal tags over all
// derivations, sorted by (End, Rule, Pos). A non-nil error carries no
// tags: it is a *RejectError for non-sentences, or a *BudgetError
// (wrapping ErrBudget) when recognition hit a Config resource bound
// before reaching a verdict.
func (r *Recognizer) Tags(input []byte) ([]Tag, error) {
	p := r.parse(input)
	defer p.release()
	if p.exhausted {
		return nil, p.budgetErr()
	}
	var goal *item
	if fs, ok := p.byPos[len(input)]; ok {
		goal = fs.index[itemKey{r.aug, 1, 0}]
	}
	if goal == nil {
		return nil, &RejectError{Grammar: r.spec.Grammar.Name, Pos: p.furthest()}
	}
	return p.extract(goal), nil
}

// Accepts reports whether input is a sentence of the grammar. A
// recognition stopped by a Config resource bound reports false (the chart
// is incomplete, so acceptance cannot be proven); use Tags to distinguish
// a budget trip from a rejection.
func (r *Recognizer) Accepts(input []byte) bool {
	p := r.parse(input)
	defer p.release()
	fs, ok := p.byPos[len(input)]
	return ok && !p.exhausted && fs.index[itemKey{r.aug, 1, 0}] != nil
}

func (p *run) skipDelims(pos int) int {
	for pos < len(p.input) && p.r.spec.Delim.Has(p.input[pos]) {
		pos++
	}
	return pos
}

func (p *run) setAt(pos int) *earleySet {
	if s, ok := p.byPos[pos]; ok {
		return s
	}
	s := &earleySet{
		idx:       len(p.sets),
		pos:       pos,
		index:     make(map[itemKey]*item),
		postdot:   make(map[int][]*item),
		predicted: make(map[int]bool),
		nullDone:  make(map[int][]*item),
		leo:       make(map[int]*leoItem),
		leoTried:  make(map[int]bool),
	}
	p.sets = append(p.sets, s)
	p.byPos[pos] = s
	return s
}

// add inserts the item if new and appends the cause. Re-adding an existing
// key only accumulates the cause: item effects depend on the key alone, so
// nothing is reprocessed, which is what terminates cyclic grammars. Once
// the budget is exhausted add is a no-op, so MaxChartItems is an exact cap
// even mid-way through a completion fan-out.
func (p *run) add(s *earleySet, k itemKey, c cause, hasCause bool) {
	if p.exhausted {
		return
	}
	it, ok := s.index[k]
	if !ok {
		if max := p.r.cfg.MaxChartItems; max > 0 && p.items >= max {
			p.exhausted = true
			return
		}
		p.items++
		if p.r.cfg.MemDelta != nil {
			p.r.cfg.MemDelta(earleyItemBytes)
			p.charged += earleyItemBytes
		}
		it = &item{key: k}
		s.index[k] = it
		s.items = append(s.items, it)
	}
	if hasCause {
		p.spend(1)
		it.causes = append(it.causes, c)
	}
}

// process runs the predict/complete worklist of one set to fixpoint.
func (p *run) process(s *earleySet) {
	for i := 0; i < len(s.items); i++ {
		p.spend(1)
		if p.exhausted {
			return
		}
		it := s.items[i]
		pr := &p.r.prods[it.key.prod]
		if it.key.dot == len(pr.rhs) {
			p.complete(s, it, pr)
			continue
		}
		sym := pr.rhs[it.key.dot]
		if sym.terminal {
			s.scans = append(s.scans, it)
			continue
		}
		b := sym.idx
		s.postdot[b] = append(s.postdot[b], it)
		if !s.predicted[b] {
			s.predicted[b] = true
			for _, ri := range p.r.ntRules[b] {
				p.add(s, itemKey{ri, 0, s.idx}, cause{}, false)
			}
		}
		// Aycock–Horspool: if b already completed over an empty span in
		// this set, advance immediately — each (expecter, completion)
		// pair fires exactly once between this loop and complete's.
		for _, c := range s.nullDone[b] {
			p.add(s, itemKey{it.key.prod, it.key.dot + 1, it.key.origin}, cause{kind: causeComplete, prev: it, sub: c}, true)
		}
	}
}

// complete advances every item expecting the finished nonterminal, or the
// memoized Leo top item when the origin set qualifies.
func (p *run) complete(s *earleySet, it *item, pr *prod) {
	b := pr.lhs
	if it.key.origin == s.idx {
		// Empty span: the origin set is still being built, so advance
		// current expecters here and let later ones replay from nullDone.
		s.nullDone[b] = append(s.nullDone[b], it)
		for _, x := range s.postdot[b] {
			p.add(s, itemKey{x.key.prod, x.key.dot + 1, x.key.origin}, cause{kind: causeComplete, prev: x, sub: it}, true)
		}
		return
	}
	os := p.sets[it.key.origin]
	if l := p.leoFor(os, b); l != nil {
		top := &p.r.prods[l.topProd]
		p.add(s, itemKey{l.topProd, len(top.rhs), l.topOrigin}, cause{kind: causeLeo, sub: it, chain: l}, true)
		return
	}
	for _, x := range os.postdot[b] {
		p.add(s, itemKey{x.key.prod, x.key.dot + 1, x.key.origin}, cause{kind: causeComplete, prev: x, sub: it}, true)
	}
}

// leoFor computes (memoized) the Leo transitive item for nonterminal b in
// set s: defined when exactly one item in s expects b and that item
// completes on advancing. leoTried doubles as the cycle guard for unit
// cycles (A→B, B→A): re-entry observes nil and breaks the chain there,
// which merely shortens the jump — the intermediate completion then
// proceeds as its own item.
func (p *run) leoFor(s *earleySet, b int) *leoItem {
	if s.leoTried[b] {
		return s.leo[b]
	}
	s.leoTried[b] = true
	if len(s.postdot[b]) != 1 {
		return nil
	}
	x := s.postdot[b][0]
	pr := &p.r.prods[x.key.prod]
	if x.key.dot+1 != len(pr.rhs) {
		return nil
	}
	l := &leoItem{penult: x, topProd: x.key.prod, topOrigin: x.key.origin}
	if parent := p.leoFor(p.sets[x.key.origin], pr.lhs); parent != nil {
		l.parent = parent
		l.topProd = parent.topProd
		l.topOrigin = parent.topOrigin
	}
	s.leo[b] = l
	return l
}

// scan advances every terminal-expecting item of s over each valid lexeme
// end, landing in the set at the next token-start position.
func (p *run) scan(s *earleySet) {
	if s.pos >= len(p.input) {
		return
	}
	for _, it := range s.scans {
		if p.exhausted {
			return
		}
		pr := &p.r.prods[it.key.prod]
		tok := pr.rhs[it.key.dot].idx
		for _, end := range p.matchEnds(s.pos, tok) {
			ns := p.setAt(p.skipDelims(end + 1))
			tag := Tag{Rule: pr.gri, Pos: it.key.dot, TokenIndex: tok, Start: s.pos, End: end}
			p.add(ns, itemKey{it.key.prod, it.key.dot + 1, it.key.origin}, cause{kind: causeScan, prev: it, tag: tag}, true)
		}
	}
}

// matchEnds simulates the token's position automaton from pos and returns
// every hardware-valid lexeme end: offsets holding an accepting position
// whose own follow set cannot consume the next byte (every accepting
// offset under NoLongestMatch). Memoized per (pos, token).
func (p *run) matchEnds(pos, tok int) []int {
	key := pos*len(p.r.spec.Programs) + tok
	if ends, ok := p.scanMemo[key]; ok {
		return ends
	}
	prog := p.r.spec.Programs[tok]
	noLongest := p.r.spec.Opts.NoLongestMatch
	var ends []int
	first := p.input[pos]
	cur := make([]int, 0, len(prog.First))
	for _, q := range prog.First {
		if prog.Classes[q].Has(first) {
			cur = append(cur, q)
		}
	}
	inNext := make([]bool, prog.Len())
	for off := pos; len(cur) > 0; off++ {
		p.spend(int64(len(cur)))
		if p.exhausted {
			break
		}
		var next byte
		hasNext := off+1 < len(p.input)
		if hasNext {
			next = p.input[off+1]
		}
		for _, q := range cur {
			if !prog.IsLast(q) {
				continue
			}
			if noLongest || !hasNext || !prog.CanExtend(q, next) {
				ends = append(ends, off)
				break
			}
		}
		if !hasNext {
			break
		}
		var nxt []int
		for _, q := range cur {
			for _, t := range prog.Follow[q] {
				if !inNext[t] && prog.Classes[t].Has(next) {
					inNext[t] = true
					nxt = append(nxt, t)
				}
			}
		}
		for _, t := range nxt {
			inNext[t] = false
		}
		cur = nxt
	}
	if !p.exhausted {
		// A budget trip mid-simulation leaves ends partial; don't memoize
		// it (recognition is aborting anyway).
		p.scanMemo[key] = ends
	}
	return ends
}

// furthest is the largest token-start position any item reached.
func (p *run) furthest() int {
	f := 0
	for _, s := range p.sets {
		if s.pos > f {
			f = s.pos
		}
	}
	return f
}

// extract walks causes backward from the accepting item, keeping every
// scan that participates in some complete derivation.
func (p *run) extract(goal *item) []Tag {
	var out []Tag
	tagSeen := make(map[Tag]bool)
	seen := make(map[*item]bool)
	stack := []*item{goal}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[it] {
			continue
		}
		seen[it] = true
		for _, c := range it.causes {
			switch c.kind {
			case causeScan:
				if !tagSeen[c.tag] {
					tagSeen[c.tag] = true
					out = append(out, c.tag)
				}
				stack = append(stack, c.prev)
			case causeComplete:
				stack = append(stack, c.prev, c.sub)
			case causeLeo:
				stack = append(stack, c.sub)
				for l := c.chain; l != nil; l = l.parent {
					stack = append(stack, l.penult)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Pos < b.Pos
	})
	return out
}

// chartItems reports the total item count of the last chart a fresh parse
// of input would build; tests use it to pin Leo's linear growth on right
// recursion.
func (r *Recognizer) chartItems(input []byte) int {
	p := r.parse(input)
	defer p.release()
	n := 0
	for _, s := range p.sets {
		n += len(s.items)
	}
	return n
}
