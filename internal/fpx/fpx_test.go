package fpx

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"cfgtag/internal/router"
	"cfgtag/internal/xmlrpc"
)

var testKey = FlowKey{
	Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2},
	SrcPort: 40000, DstPort: 8700,
}

func TestParseBuildRoundTrip(t *testing.T) {
	payload := []byte("hello tagger")
	pkt := BuildIPv4TCP(testKey, 1234, FlagACK|FlagPSH, payload)
	ip, ipPayload, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Protocol != ProtoTCP || ip.Src != testKey.Src || ip.Dst != testKey.Dst {
		t.Errorf("ip = %+v", ip)
	}
	tcp, data, err := ParseTCP(ipPayload)
	if err != nil {
		t.Fatal(err)
	}
	if tcp.SrcPort != 40000 || tcp.DstPort != 8700 || tcp.Seq != 1234 {
		t.Errorf("tcp = %+v", tcp)
	}
	if tcp.Flags != FlagACK|FlagPSH {
		t.Errorf("flags = %02x", tcp.Flags)
	}
	if !bytes.Equal(data, payload) {
		t.Errorf("payload = %q", data)
	}
}

func TestParseIPv4Errors(t *testing.T) {
	good := BuildIPv4TCP(testKey, 1, FlagSYN, nil)
	cases := map[string][]byte{
		"short":        good[:10],
		"bad version":  append([]byte{6<<4 | 5}, good[1:]...),
		"bad ihl":      append([]byte{4<<4 | 2}, good[1:]...),
		"bad checksum": flipByte(good, 12),
		"bad totallen": flipByte(good, 2),
	}
	for name, pkt := range cases {
		if _, _, err := ParseIPv4(pkt); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func flipByte(pkt []byte, i int) []byte {
	out := append([]byte(nil), pkt...)
	out[i] ^= 0xff
	return out
}

func TestParseTCPErrors(t *testing.T) {
	if _, _, err := ParseTCP(make([]byte, 10)); err == nil {
		t.Error("short segment accepted")
	}
	seg := make([]byte, 20)
	seg[12] = 2 << 4 // data offset below minimum
	if _, _, err := ParseTCP(seg); err == nil {
		t.Error("bad data offset accepted")
	}
}

func TestChecksum16(t *testing.T) {
	// Known vector: RFC 1071 style.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum16(b); got != 0x220d {
		t.Errorf("checksum = %04x, want 220d", got)
	}
	// A buffer with its checksum inserted sums to zero.
	pkt := BuildIPv4TCP(testKey, 1, FlagSYN, nil)
	if Checksum16(pkt[:20]) != 0 {
		t.Error("header+checksum does not sum to zero")
	}
}

// sinkBuf collects a flow's delivered bytes.
type sinkBuf struct {
	bytes.Buffer
	closed bool
}

func (s *sinkBuf) Close() error { s.closed = true; return nil }

func splitInto(t *testing.T, pkts [][]byte) (*Splitter, map[FlowKey]*sinkBuf) {
	t.Helper()
	sinks := make(map[FlowKey]*sinkBuf)
	sp := NewSplitter()
	sp.NewFlow = func(key FlowKey) io.WriteCloser {
		b := &sinkBuf{}
		sinks[key] = b
		return b
	}
	for _, p := range pkts {
		if err := sp.Process(p); err != nil {
			t.Fatal(err)
		}
	}
	return sp, sinks
}

func TestInOrderDelivery(t *testing.T) {
	stream := []byte("the quick brown fox jumps over the lazy dog")
	pkts := Segmentize(testKey, 7000, stream, 8)
	sp, sinks := splitInto(t, pkts)
	got := sinks[testKey]
	if got == nil || !bytes.Equal(got.Bytes(), stream) {
		t.Fatalf("delivered %q", got.Bytes())
	}
	if !got.closed {
		t.Error("FIN did not close the sink")
	}
	st := sp.Stats()
	if st.Delivered != int64(len(stream)) || st.FlowsClosed != 1 || st.OutOfOrder != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReorderedDelivery(t *testing.T) {
	stream := make([]byte, 2000)
	rng := rand.New(rand.NewSource(5))
	for i := range stream {
		stream[i] = byte('a' + rng.Intn(26))
	}
	pkts := Segmentize(testKey, 1, stream, 100)
	// Shuffle the data segments (keep SYN first so the ISN is known).
	data := pkts[1 : len(pkts)-1]
	rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	sp, sinks := splitInto(t, pkts)
	if !bytes.Equal(sinks[testKey].Bytes(), stream) {
		t.Fatal("reordered stream reassembled wrong")
	}
	if sp.Stats().OutOfOrder == 0 {
		t.Error("shuffle produced no out-of-order segments?")
	}
}

func TestRetransmissionsAndOverlap(t *testing.T) {
	stream := []byte("abcdefghijklmnopqrstuvwxyz")
	pkts := Segmentize(testKey, 100, stream, 10)
	// Duplicate a data segment and add an overlapping retransmission.
	dup := pkts[1]
	overlap := BuildIPv4TCP(testKey, 101+5, FlagACK, stream[5:15]) // covers old+new
	all := [][]byte{pkts[0], pkts[1], dup, overlap, pkts[2], pkts[3], pkts[4]}
	sp, sinks := splitInto(t, all)
	if !bytes.Equal(sinks[testKey].Bytes(), stream) {
		t.Fatalf("delivered %q", sinks[testKey].Bytes())
	}
	if sp.Stats().Duplicates == 0 {
		t.Error("duplicate not counted")
	}
}

func TestMidStreamPickup(t *testing.T) {
	// No SYN seen (capture started late): synchronize on first segment.
	stream := []byte("0123456789")
	pkt := BuildIPv4TCP(testKey, 5555, FlagACK, stream)
	_, sinks := splitInto(t, [][]byte{pkt})
	if !bytes.Equal(sinks[testKey].Bytes(), stream) {
		t.Errorf("delivered %q", sinks[testKey].Bytes())
	}
}

func TestRSTAbortsFlow(t *testing.T) {
	pkts := [][]byte{
		BuildIPv4TCP(testKey, 1, FlagSYN, nil),
		BuildIPv4TCP(testKey, 2, FlagACK, []byte("partial")),
		BuildIPv4TCP(testKey, 9, FlagRST, nil),
		BuildIPv4TCP(testKey, 9, FlagACK, []byte("after reset")),
	}
	sp, sinks := splitInto(t, pkts)
	if got := sinks[testKey].String(); got != "partial" {
		t.Errorf("delivered %q", got)
	}
	if !sinks[testKey].closed {
		t.Error("RST did not close")
	}
	if sp.Stats().FlowsClosed != 1 {
		t.Errorf("stats = %+v", sp.Stats())
	}
}

func TestBufferBound(t *testing.T) {
	sp := NewSplitter()
	sp.MaxBuffered = 16
	var sink sinkBuf
	sp.NewFlow = func(FlowKey) io.WriteCloser { return &sink }
	sp.Process(BuildIPv4TCP(testKey, 1, FlagSYN, nil))
	// Out-of-order segments beyond the bound are dropped.
	sp.Process(BuildIPv4TCP(testKey, 100, FlagACK, bytes.Repeat([]byte("x"), 12)))
	sp.Process(BuildIPv4TCP(testKey, 200, FlagACK, bytes.Repeat([]byte("y"), 12)))
	if sp.Stats().Overflowed != 1 {
		t.Errorf("stats = %+v", sp.Stats())
	}
}

func TestTwoInterleavedFlows(t *testing.T) {
	key2 := testKey
	key2.SrcPort = 40001
	a := Segmentize(testKey, 10, []byte("flow-A-bytes"), 4)
	b := Segmentize(key2, 90, []byte("flow-B-payload"), 5)
	var mixed [][]byte
	for i := 0; i < len(a) || i < len(b); i++ {
		if i < len(a) {
			mixed = append(mixed, a[i])
		}
		if i < len(b) {
			mixed = append(mixed, b[i])
		}
	}
	sp, sinks := splitInto(t, mixed)
	if got := sinks[testKey].String(); got != "flow-A-bytes" {
		t.Errorf("flow A = %q", got)
	}
	if got := sinks[key2].String(); got != "flow-B-payload" {
		t.Errorf("flow B = %q", got)
	}
	if sp.Stats().Flows != 2 {
		t.Errorf("flows = %d", sp.Stats().Flows)
	}
}

func TestNonTCPSkipped(t *testing.T) {
	pkt := BuildIPv4TCP(testKey, 1, FlagSYN, nil)
	pkt[9] = ProtoUDP
	// Recompute the header checksum after the protocol edit.
	pkt[10], pkt[11] = 0, 0
	cs := Checksum16(pkt[:20])
	pkt[10], pkt[11] = byte(cs>>8), byte(cs)
	sp := NewSplitter()
	if err := sp.Process(pkt); err != nil {
		t.Fatal(err)
	}
	if sp.Stats().NonTCP != 1 {
		t.Errorf("stats = %+v", sp.Stats())
	}
}

func TestPcapRoundTrip(t *testing.T) {
	stream := []byte("round trip payload across the capture format")
	pkts := Segmentize(testKey, 9, stream, 7)
	var buf bytes.Buffer
	if err := WritePcap(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("packets = %d, want %d", len(got), len(pkts))
	}
	for i := range pkts {
		if !bytes.Equal(got[i], pkts[i]) {
			t.Fatalf("packet %d diverged", i)
		}
	}
	// The reread capture still reassembles.
	_, sinks := splitInto(t, got)
	if !bytes.Equal(sinks[testKey].Bytes(), stream) {
		t.Error("reread capture did not reassemble")
	}
}

func TestPcapErrors(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("short header accepted")
	}
	bad := make([]byte, 24)
	if _, err := ReadPcap(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Wrong linktype (Ethernet = 1).
	var buf bytes.Buffer
	WritePcap(&buf, nil)
	hdr := buf.Bytes()
	hdr[20] = 1
	if _, err := ReadPcap(bytes.NewReader(hdr)); err == nil {
		t.Error("ethernet linktype accepted")
	}
	// Truncated record body.
	buf.Reset()
	WritePcap(&buf, [][]byte{BuildIPv4TCP(testKey, 1, FlagSYN, nil)})
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadPcap(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated capture accepted")
	}
}

// TestPacketsToRouter is the full section 5.2 FPX story: XML-RPC messages
// ride TCP flows as raw packets; the splitter reassembles each flow and a
// per-flow figure 12 router switches the messages — network packets in,
// routed messages out.
func TestPacketsToRouter(t *testing.T) {
	gen := xmlrpc.NewGenerator(11, xmlrpc.Options{})
	corpus, services := gen.Corpus(12)

	routedPorts := make(map[FlowKey][]int)
	sp := NewSplitter()
	sp.NewFlow = func(key FlowKey) io.WriteCloser {
		r, err := router.New(router.FigureTwelve(), -1)
		if err != nil {
			t.Fatal(err)
		}
		r.OnRoute = func(port int, service string, message []byte) {
			routedPorts[key] = append(routedPorts[key], port)
		}
		return r
	}
	pkts := Segmentize(testKey, 42, []byte(corpus+"\n"), 128)
	// Light reordering to exercise reassembly in the same pass.
	if len(pkts) > 6 {
		pkts[3], pkts[5] = pkts[5], pkts[3]
	}
	for _, p := range pkts {
		if err := sp.Process(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.CloseAll(); err != nil {
		t.Fatal(err)
	}
	got := routedPorts[testKey]
	if len(got) != len(services) {
		t.Fatalf("routed %d messages, want %d", len(got), len(services))
	}
	for i, svc := range services {
		if got[i] != xmlrpc.ServiceDestination(svc) {
			t.Errorf("message %d (%s): port %d", i, svc, got[i])
		}
	}
}
